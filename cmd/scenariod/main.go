// Command scenariod is the simulation daemon: a long-running HTTP/JSON
// service that accepts scenario submissions from many clients and
// serves them all out of one shared scenario store — coalescing
// duplicate in-flight work across clients, batching same-warmup-family
// jobs so a fleet-submitted sweep warms each checkpoint once, and
// bounding concurrent execution with an admission queue that rejects
// (HTTP 503) instead of buffering without limit.
//
// Usage:
//
//	scenariod [-addr HOST:PORT] [-cache-dir DIR] [-workers N] [-queue-depth N]
//	          [-measure-parallel N] [-no-ckpt-fork] [-no-family-batch]
//	          [-addr-file PATH]
//
// -addr defaults to 127.0.0.1:8344; :0 picks a free port. -addr-file
// writes the bound address to PATH once listening (how scripts and CI
// discover a :0 port). -cache-dir persists results as content-addressed
// blobs shared with cmd/figures — a daemon pointed at a warm figure
// cache serves those sweeps without simulating.
//
// Endpoints: POST /v1/run, /v1/measure, /v1/static; GET /metrics,
// /healthz. See internal/serve for the wire structs and semantics.
//
// SIGINT/SIGTERM shut down gracefully: stop accepting, finish in-flight
// simulations, fail queued-but-unstarted work.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/scenario"
	"repro/internal/serve"
)

func main() {
	os.Exit(realMain())
}

func realMain() int {
	var (
		addr            = flag.String("addr", "127.0.0.1:8344", "listen address (use :0 for a free port)")
		addrFile        = flag.String("addr-file", "", "write the bound address to this file once listening")
		cacheDir        = flag.String("cache-dir", "", "persistent blob cache directory (empty: memory only)")
		workers         = flag.Int("workers", 0, "execution pool workers (0: GOMAXPROCS)")
		queueDepth      = flag.Int("queue-depth", 0, "admission queue bound (0: 4x workers)")
		measureParallel = flag.Int("measure-parallel", 0, "fan-out inside one measure job (0: 1)")
		noCkptFork      = flag.Bool("no-ckpt-fork", false, "disable warm-checkpoint forking")
		noFamilyBatch   = flag.Bool("no-family-batch", false, "disable warmup-family batching")
	)
	flag.Parse()

	store, err := scenario.NewStore(*cacheDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scenariod:", err)
		return 1
	}
	if *noCkptFork {
		store.DisableCheckpointForking()
	}
	srv, err := serve.New(serve.Options{
		Store:           store,
		Workers:         *workers,
		QueueDepth:      *queueDepth,
		MeasureParallel: *measureParallel,
		// Family batching parks followers to wait for a checkpoint that,
		// with forking off, will never exist — keep the two knobs tied.
		NoFamilyBatching: *noFamilyBatch || *noCkptFork,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "scenariod:", err)
		return 1
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scenariod:", err)
		return 1
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "scenariod:", err)
			return 1
		}
	}
	fmt.Fprintln(os.Stderr, "scenariod: listening on", bound)

	httpSrv := &http.Server{Handler: srv.Handler()}
	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintln(os.Stderr, "scenariod: shutting down on", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "scenariod: shutdown:", err)
		}
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "scenariod:", err)
			return 1
		}
	}
	fmt.Fprintln(os.Stderr, "scenariod:", srv.Store().Metrics())
	return 0
}
