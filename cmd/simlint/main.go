// Command simlint runs the repository's determinism and simulator-invariant
// static analyzer (internal/lint) over package patterns.
//
// Usage:
//
//	simlint [-json] [-suppressions] [-rules R1,R3] [packages...]
//
// Patterns default to ./... and support the "./dir/..." form. Output is one
// compiler-style line per finding (file:line:col: message [RULE]); with
// -json a machine-readable summary in the style of cmd/benchjson is written
// to stdout instead, including a suppressions census of every //lint:ignore
// site. -suppressions prints that census human-readably and exits 0.
//
// Exit codes: 0 clean, 1 diagnostics reported, 2 load/usage error. The
// rule catalog and the //lint:ignore suppression syntax are documented in
// LINT.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/lint"
)

// JSONDiagnostic is one finding in -json output.
type JSONDiagnostic struct {
	Rule    string `json:"rule"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

// JSONSuppression is one //lint:ignore site in the -json suppression census.
type JSONSuppression struct {
	File   string   `json:"file"`
	Line   int      `json:"line"`
	Rules  []string `json:"rules"`
	Reason string   `json:"reason"`
}

// Suppressions is the census of //lint:ignore directives: every suppressed
// diagnostic is a standing claim that needs auditing, so the -json output
// makes the full list (and per-rule totals) machine-readable.
type Suppressions struct {
	Total  int               `json:"total"`
	ByRule map[string]int    `json:"by_rule"`
	Sites  []JSONSuppression `json:"sites"`
}

// Summary is the -json file layout, mirroring cmd/benchjson's envelope.
type Summary struct {
	Tool         string           `json:"tool"`
	GoVersion    string           `json:"go_version"`
	Date         string           `json:"date"`
	Module       string           `json:"module"`
	Packages     []string         `json:"packages"`
	Rules        []string         `json:"rules"`
	Diagnostics  []JSONDiagnostic `json:"diagnostics"`
	Suppressions Suppressions     `json:"suppressions"`
}

func main() {
	var (
		asJSON  = flag.Bool("json", false, "emit a machine-readable JSON summary on stdout")
		ruleSel = flag.String("rules", "", "comma-separated rule IDs to run (default: all)")
		census  = flag.Bool("suppressions", false, "print the //lint:ignore census instead of diagnostics and exit 0")
	)
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	diags, summary, err := run(patterns, *ruleSel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		os.Exit(2)
	}
	if *census {
		printCensus(summary.Suppressions)
		return
	}
	if *asJSON {
		data, err := json.MarshalIndent(summary, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			os.Exit(2)
		}
		fmt.Printf("%s\n", data)
	} else {
		for _, d := range diags {
			fmt.Println(shorten(d))
		}
	}
	if len(diags) > 0 {
		if !*asJSON {
			fmt.Fprintf(os.Stderr, "simlint: %d diagnostic(s)\n", len(diags))
		}
		os.Exit(1)
	}
}

func run(patterns []string, ruleSel string) ([]lint.Diagnostic, *Summary, error) {
	loader, err := lint.NewLoader(".")
	if err != nil {
		return nil, nil, err
	}
	rules := lint.AllRules()
	if ruleSel != "" {
		rules = rules[:0:0]
		for _, id := range strings.Split(ruleSel, ",") {
			r := lint.RuleByID(strings.TrimSpace(id))
			if r == nil {
				return nil, nil, fmt.Errorf("unknown rule %q", id)
			}
			rules = append(rules, r)
		}
	}
	paths, err := loader.Expand(patterns)
	if err != nil {
		return nil, nil, err
	}
	var pkgs []*lint.Package
	for _, p := range paths {
		pkg, err := loader.Load(p)
		if err != nil {
			return nil, nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	diags := lint.Run(pkgs, rules)

	s := &Summary{
		Tool:      "simlint",
		GoVersion: runtime.Version(),
		Date:      time.Now().UTC().Format(time.RFC3339),
		Module:    loader.ModulePath,
		Packages:  paths,
	}
	for _, r := range rules {
		s.Rules = append(s.Rules, r.ID)
	}
	s.Diagnostics = []JSONDiagnostic{}
	for _, d := range diags {
		s.Diagnostics = append(s.Diagnostics, JSONDiagnostic{
			Rule:    d.Rule,
			File:    relPath(d.Pos.Filename),
			Line:    d.Pos.Line,
			Col:     d.Pos.Column,
			Message: d.Message,
		})
	}
	s.Suppressions = Suppressions{ByRule: map[string]int{}, Sites: []JSONSuppression{}}
	for _, dir := range lint.IgnoreDirectives(pkgs) {
		s.Suppressions.Total++
		for _, r := range dir.Rules {
			s.Suppressions.ByRule[r]++
		}
		s.Suppressions.Sites = append(s.Suppressions.Sites, JSONSuppression{
			File:   relPath(dir.Pos.Filename),
			Line:   dir.Pos.Line,
			Rules:  dir.Rules,
			Reason: dir.Reason,
		})
	}
	return diags, s, nil
}

// printCensus writes the human-readable //lint:ignore census: one line
// per site, then per-rule totals. Suppression creep shows up here before
// it shows up as a debugging session.
func printCensus(s Suppressions) {
	for _, site := range s.Sites {
		fmt.Printf("%s:%d: %s: %s\n", site.File, site.Line, strings.Join(site.Rules, ","), site.Reason)
	}
	var rules []string
	for r := range s.ByRule {
		rules = append(rules, r)
	}
	sort.Strings(rules)
	parts := make([]string, 0, len(rules))
	for _, r := range rules {
		parts = append(parts, fmt.Sprintf("%s=%d", r, s.ByRule[r]))
	}
	fmt.Printf("simlint: %d suppression(s)", s.Total)
	if len(parts) > 0 {
		fmt.Printf(" (%s)", strings.Join(parts, " "))
	}
	fmt.Println()
}

// shorten rewrites a diagnostic with a cwd-relative file path.
func shorten(d lint.Diagnostic) string {
	d.Pos.Filename = relPath(d.Pos.Filename)
	return d.String()
}

func relPath(name string) string {
	wd, err := os.Getwd()
	if err != nil {
		return name
	}
	rel, err := filepath.Rel(wd, name)
	if err != nil || strings.HasPrefix(rel, "..") {
		return name
	}
	return rel
}
