// Command simlint runs the repository's determinism and simulator-invariant
// static analyzer (internal/lint) over package patterns.
//
// Usage:
//
//	simlint [-json] [-explain] [-suppressions] [-rules R1,R3]
//	        [-baseline FILE] [-write-baseline FILE] [packages...]
//
// Patterns default to ./... and support the "./dir/..." form. Output is one
// compiler-style line per finding (file:line:col: message [RULE]); -explain
// adds the interprocedural call chain under each finding that has one. With
// -json a machine-readable summary in the style of cmd/benchjson is written
// to stdout instead, including censuses of every //lint:ignore suppression
// and every //lint:exempt-field manifest entry. -suppressions prints both
// censuses human-readably and exits 0.
//
// -baseline compares the census totals against a committed baseline file
// (lint_baseline.json at the repo root): any drift — a new suppression or
// exemption, or one removed without updating the baseline — fails the run.
// -write-baseline regenerates that file from the current tree.
//
// Exit codes: 0 clean, 1 diagnostics reported or baseline drift, 2
// load/usage error. The rule catalog, the directive syntax and the baseline
// workflow are documented in LINT.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/lint"
)

// JSONDiagnostic is one finding in -json output. Chain, when present, is
// the interprocedural witness path from the flagged call down to the
// direct source (tier 3 rules only).
type JSONDiagnostic struct {
	Rule    string         `json:"rule"`
	File    string         `json:"file"`
	Line    int            `json:"line"`
	Col     int            `json:"col"`
	Message string         `json:"message"`
	Chain   []JSONChainHop `json:"chain,omitempty"`
}

// JSONChainHop is one step of a diagnostic's witness chain.
type JSONChainHop struct {
	Name string `json:"name"`
	File string `json:"file"`
	Line int    `json:"line"`
}

// JSONSuppression is one //lint:ignore site in the -json suppression census.
type JSONSuppression struct {
	File   string   `json:"file"`
	Line   int      `json:"line"`
	Rules  []string `json:"rules"`
	Reason string   `json:"reason"`
}

// Suppressions is the census of //lint:ignore directives: every suppressed
// diagnostic is a standing claim that needs auditing, so the -json output
// makes the full list (and per-rule totals) machine-readable.
type Suppressions struct {
	Total  int               `json:"total"`
	ByRule map[string]int    `json:"by_rule"`
	Sites  []JSONSuppression `json:"sites"`
}

// JSONExemption is one //lint:exempt-field site in the -json census.
type JSONExemption struct {
	File   string `json:"file"`
	Line   int    `json:"line"`
	Rule   string `json:"rule"`
	Type   string `json:"type"`
	Field  string `json:"field"`
	Reason string `json:"reason"`
}

// Exemptions is the census of //lint:exempt-field manifest entries —
// the same standing-claim audit as Suppressions, for the field rules.
type Exemptions struct {
	Total  int             `json:"total"`
	ByRule map[string]int  `json:"by_rule"`
	Sites  []JSONExemption `json:"sites"`
}

// Summary is the -json file layout, mirroring cmd/benchjson's envelope.
type Summary struct {
	Tool         string           `json:"tool"`
	GoVersion    string           `json:"go_version"`
	Date         string           `json:"date"`
	Module       string           `json:"module"`
	Packages     []string         `json:"packages"`
	Rules        []string         `json:"rules"`
	Diagnostics  []JSONDiagnostic `json:"diagnostics"`
	Suppressions Suppressions     `json:"suppressions"`
	Exemptions   Exemptions       `json:"exemptions"`
}

// CensusCounts is the baseline's view of one census: totals only, no
// positions, so moving a directive within a file is not drift but adding
// or removing one is.
type CensusCounts struct {
	Total  int            `json:"total"`
	ByRule map[string]int `json:"by_rule"`
}

// Baseline is the committed lint_baseline.json layout: the expected
// suppression and exemption censuses for the tree.
type Baseline struct {
	Suppressions CensusCounts `json:"suppressions"`
	Exemptions   CensusCounts `json:"exemptions"`
}

func main() {
	var (
		asJSON   = flag.Bool("json", false, "emit a machine-readable JSON summary on stdout")
		explain  = flag.Bool("explain", false, "print the interprocedural call chain under each finding that has one")
		ruleSel  = flag.String("rules", "", "comma-separated rule IDs to run (default: all)")
		census   = flag.Bool("suppressions", false, "print the //lint:ignore and //lint:exempt-field censuses instead of diagnostics and exit 0")
		baseline = flag.String("baseline", "", "compare census totals against this baseline file; drift fails the run")
		writeBl  = flag.String("write-baseline", "", "write the current census totals to this baseline file and exit")
	)
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	diags, summary, err := run(patterns, *ruleSel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		os.Exit(2)
	}
	if *writeBl != "" {
		if err := writeBaseline(*writeBl, summary); err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			os.Exit(2)
		}
		return
	}
	if *census {
		printCensus(summary.Suppressions, summary.Exemptions)
		return
	}
	drift, err := checkBaseline(*baseline, summary)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		os.Exit(2)
	}
	if *asJSON {
		data, err := json.MarshalIndent(summary, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			os.Exit(2)
		}
		fmt.Printf("%s\n", data)
	} else {
		for _, d := range diags {
			fmt.Println(shorten(d))
			if *explain {
				for _, h := range d.Chain {
					fmt.Printf("\tvia %s at %s:%d\n", h.Name, relPath(h.Pos.Filename), h.Pos.Line)
				}
			}
		}
	}
	for _, line := range drift {
		fmt.Fprintln(os.Stderr, "simlint:", line)
	}
	if len(diags) > 0 || len(drift) > 0 {
		if len(diags) > 0 && !*asJSON {
			fmt.Fprintf(os.Stderr, "simlint: %d diagnostic(s)\n", len(diags))
		}
		os.Exit(1)
	}
}

// writeBaseline regenerates the committed census baseline from the
// current tree.
func writeBaseline(path string, s *Summary) error {
	b := Baseline{
		Suppressions: CensusCounts{Total: s.Suppressions.Total, ByRule: s.Suppressions.ByRule},
		Exemptions:   CensusCounts{Total: s.Exemptions.Total, ByRule: s.Exemptions.ByRule},
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// checkBaseline compares the run's census totals against the committed
// baseline and returns one human-readable line per drift. An unreadable
// or unparsable baseline is an error (exit 2); drift is the caller's
// exit-1 condition, so a new suppression cannot land silently.
func checkBaseline(path string, s *Summary) ([]string, error) {
	if path == "" {
		return nil, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("parse baseline %s: %v", path, err)
	}
	var drift []string
	drift = append(drift, diffCensus("suppression", b.Suppressions,
		CensusCounts{Total: s.Suppressions.Total, ByRule: s.Suppressions.ByRule})...)
	drift = append(drift, diffCensus("exemption", b.Exemptions,
		CensusCounts{Total: s.Exemptions.Total, ByRule: s.Exemptions.ByRule})...)
	if len(drift) > 0 {
		drift = append(drift, fmt.Sprintf(
			"census drift against %s; if intended, regenerate it with -write-baseline %s", path, path))
	}
	return drift, nil
}

// diffCensus reports per-rule and total count differences between the
// baseline and the current tree.
func diffCensus(kind string, want, got CensusCounts) []string {
	var out []string
	rules := map[string]bool{}
	for r := range want.ByRule {
		rules[r] = true
	}
	for r := range got.ByRule {
		rules[r] = true
	}
	var order []string
	for r := range rules {
		order = append(order, r)
	}
	sort.Strings(order)
	for _, r := range order {
		if want.ByRule[r] != got.ByRule[r] {
			out = append(out, fmt.Sprintf("%s census drift for %s: baseline %d, tree %d",
				kind, r, want.ByRule[r], got.ByRule[r]))
		}
	}
	if want.Total != got.Total {
		out = append(out, fmt.Sprintf("%s census drift: baseline total %d, tree total %d",
			kind, want.Total, got.Total))
	}
	return out
}

func run(patterns []string, ruleSel string) ([]lint.Diagnostic, *Summary, error) {
	loader, err := lint.NewLoader(".")
	if err != nil {
		return nil, nil, err
	}
	rules := lint.AllRules()
	if ruleSel != "" {
		rules = rules[:0:0]
		for _, id := range strings.Split(ruleSel, ",") {
			r := lint.RuleByID(strings.TrimSpace(id))
			if r == nil {
				return nil, nil, fmt.Errorf("unknown rule %q", id)
			}
			rules = append(rules, r)
		}
	}
	paths, err := loader.Expand(patterns)
	if err != nil {
		return nil, nil, err
	}
	var pkgs []*lint.Package
	for _, p := range paths {
		pkg, err := loader.Load(p)
		if err != nil {
			return nil, nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	diags := lint.Run(pkgs, rules)

	s := &Summary{
		Tool:      "simlint",
		GoVersion: runtime.Version(),
		Date:      time.Now().UTC().Format(time.RFC3339),
		Module:    loader.ModulePath,
		Packages:  paths,
	}
	for _, r := range rules {
		s.Rules = append(s.Rules, r.ID)
	}
	s.Diagnostics = []JSONDiagnostic{}
	for _, d := range diags {
		jd := JSONDiagnostic{
			Rule:    d.Rule,
			File:    relPath(d.Pos.Filename),
			Line:    d.Pos.Line,
			Col:     d.Pos.Column,
			Message: d.Message,
		}
		for _, h := range d.Chain {
			jd.Chain = append(jd.Chain, JSONChainHop{
				Name: h.Name,
				File: relPath(h.Pos.Filename),
				Line: h.Pos.Line,
			})
		}
		s.Diagnostics = append(s.Diagnostics, jd)
	}
	s.Suppressions = Suppressions{ByRule: map[string]int{}, Sites: []JSONSuppression{}}
	for _, dir := range lint.IgnoreDirectives(pkgs) {
		s.Suppressions.Total++
		for _, r := range dir.Rules {
			s.Suppressions.ByRule[r]++
		}
		s.Suppressions.Sites = append(s.Suppressions.Sites, JSONSuppression{
			File:   relPath(dir.Pos.Filename),
			Line:   dir.Pos.Line,
			Rules:  dir.Rules,
			Reason: dir.Reason,
		})
	}
	s.Exemptions = Exemptions{ByRule: map[string]int{}, Sites: []JSONExemption{}}
	for _, dir := range lint.ExemptDirectives(pkgs) {
		s.Exemptions.Total++
		s.Exemptions.ByRule[dir.Rule]++
		s.Exemptions.Sites = append(s.Exemptions.Sites, JSONExemption{
			File:   relPath(dir.Pos.Filename),
			Line:   dir.Pos.Line,
			Rule:   dir.Rule,
			Type:   dir.Type,
			Field:  dir.Field,
			Reason: dir.Reason,
		})
	}
	return diags, s, nil
}

// printCensus writes the human-readable //lint:ignore and
// //lint:exempt-field censuses: one line per site, then per-rule totals.
// Directive creep shows up here before it shows up as a debugging
// session.
func printCensus(s Suppressions, e Exemptions) {
	for _, site := range s.Sites {
		fmt.Printf("%s:%d: %s: %s\n", site.File, site.Line, strings.Join(site.Rules, ","), site.Reason)
	}
	fmt.Printf("simlint: %d suppression(s)%s\n", s.Total, ruleTotals(s.ByRule))
	for _, site := range e.Sites {
		fmt.Printf("%s:%d: %s: %s.%s: %s\n", site.File, site.Line, site.Rule, site.Type, site.Field, site.Reason)
	}
	fmt.Printf("simlint: %d field exemption(s)%s\n", e.Total, ruleTotals(e.ByRule))
}

// ruleTotals renders a per-rule count map as " (R3=2 R4=8)".
func ruleTotals(byRule map[string]int) string {
	var rules []string
	for r := range byRule {
		rules = append(rules, r)
	}
	sort.Strings(rules)
	parts := make([]string, 0, len(rules))
	for _, r := range rules {
		parts = append(parts, fmt.Sprintf("%s=%d", r, byRule[r]))
	}
	if len(parts) == 0 {
		return ""
	}
	return " (" + strings.Join(parts, " ") + ")"
}

// shorten rewrites a diagnostic with a cwd-relative file path.
func shorten(d lint.Diagnostic) string {
	d.Pos.Filename = relPath(d.Pos.Filename)
	return d.String()
}

func relPath(name string) string {
	wd, err := os.Getwd()
	if err != nil {
		return name
	}
	rel, err := filepath.Rel(wd, name)
	if err != nil || strings.HasPrefix(rel, "..") {
		return name
	}
	return rel
}
