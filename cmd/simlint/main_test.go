package main

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/lint"
)

// TestRunCleanPackage checks the happy path and the JSON summary shape on
// a package that must be lint-clean (the analyzer's own package).
func TestRunCleanPackage(t *testing.T) {
	diags, summary, err := run([]string{"./internal/lint"}, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("internal/lint should be clean, got %v", diags)
	}
	if summary.Tool != "simlint" || summary.Module != "repro" {
		t.Errorf("summary envelope: %+v", summary)
	}
	if len(summary.Rules) != len(lint.AllRules()) {
		t.Errorf("summary rules %v, want all %d", summary.Rules, len(lint.AllRules()))
	}
	if summary.Diagnostics == nil {
		t.Error("Diagnostics must marshal as [] rather than null")
	}
	data, err := json.Marshal(summary)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"diagnostics": []`) && !strings.Contains(string(data), `"diagnostics":[]`) {
		t.Errorf("JSON output missing empty diagnostics array: %s", data)
	}
	if summary.Suppressions.Sites == nil || summary.Suppressions.ByRule == nil {
		t.Error("Suppressions sites/by_rule must marshal as empty, not null")
	}
}

// TestRunSuppressionCensus checks that the -json summary carries the
// //lint:ignore census for the loaded packages.
func TestRunSuppressionCensus(t *testing.T) {
	_, summary, err := run([]string{"./internal/mem"}, "")
	if err != nil {
		t.Fatal(err)
	}
	sup := summary.Suppressions
	if sup.Total == 0 || sup.ByRule["R3"] == 0 {
		t.Fatalf("internal/mem carries a known R3 suppression, census got %+v", sup)
	}
	if len(sup.Sites) != sup.Total {
		t.Errorf("sites (%d) and total (%d) disagree", len(sup.Sites), sup.Total)
	}
	for _, site := range sup.Sites {
		if site.File == "" || site.Line == 0 || len(site.Rules) == 0 || site.Reason == "" {
			t.Errorf("incomplete suppression site: %+v", site)
		}
	}
}

// TestRunRuleSelection covers -rules filtering and its error path.
func TestRunRuleSelection(t *testing.T) {
	_, summary, err := run([]string{"./internal/lint"}, "R1,R3")
	if err != nil {
		t.Fatal(err)
	}
	if len(summary.Rules) != 2 || summary.Rules[0] != "R1" || summary.Rules[1] != "R3" {
		t.Errorf("rule selection got %v, want [R1 R3]", summary.Rules)
	}
	if _, _, err := run([]string{"./internal/lint"}, "R99"); err == nil {
		t.Error("unknown rule must be an error")
	}
}
