package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

// TestMain lets the test binary impersonate the simlint executable: the
// exit-code tests re-exec it with SIMLINT_MAIN=1 so os.Exit paths can be
// observed without building a separate binary.
func TestMain(m *testing.M) {
	if os.Getenv("SIMLINT_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// TestRunCleanPackage checks the happy path and the JSON summary shape on
// a package that must be lint-clean (the analyzer's own package).
func TestRunCleanPackage(t *testing.T) {
	diags, summary, err := run([]string{"./internal/lint"}, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("internal/lint should be clean, got %v", diags)
	}
	if summary.Tool != "simlint" || summary.Module != "repro" {
		t.Errorf("summary envelope: %+v", summary)
	}
	if len(summary.Rules) != len(lint.AllRules()) {
		t.Errorf("summary rules %v, want all %d", summary.Rules, len(lint.AllRules()))
	}
	if summary.Diagnostics == nil {
		t.Error("Diagnostics must marshal as [] rather than null")
	}
	data, err := json.Marshal(summary)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"diagnostics": []`) && !strings.Contains(string(data), `"diagnostics":[]`) {
		t.Errorf("JSON output missing empty diagnostics array: %s", data)
	}
	if summary.Suppressions.Sites == nil || summary.Suppressions.ByRule == nil {
		t.Error("Suppressions sites/by_rule must marshal as empty, not null")
	}
}

// TestRunSuppressionCensus checks that the -json summary carries the
// //lint:ignore census for the loaded packages.
func TestRunSuppressionCensus(t *testing.T) {
	_, summary, err := run([]string{"./internal/mem"}, "")
	if err != nil {
		t.Fatal(err)
	}
	sup := summary.Suppressions
	if sup.Total == 0 || sup.ByRule["R3"] == 0 {
		t.Fatalf("internal/mem carries a known R3 suppression, census got %+v", sup)
	}
	if len(sup.Sites) != sup.Total {
		t.Errorf("sites (%d) and total (%d) disagree", len(sup.Sites), sup.Total)
	}
	for _, site := range sup.Sites {
		if site.File == "" || site.Line == 0 || len(site.Rules) == 0 || site.Reason == "" {
			t.Errorf("incomplete suppression site: %+v", site)
		}
	}
}

// TestRunRuleSelection covers -rules filtering and its error path.
func TestRunRuleSelection(t *testing.T) {
	_, summary, err := run([]string{"./internal/lint"}, "R1,R3")
	if err != nil {
		t.Fatal(err)
	}
	if len(summary.Rules) != 2 || summary.Rules[0] != "R1" || summary.Rules[1] != "R3" {
		t.Errorf("rule selection got %v, want [R1 R3]", summary.Rules)
	}
	if _, _, err := run([]string{"./internal/lint"}, "R99"); err == nil {
		t.Error("unknown rule must be an error")
	}
}

// execSimlint re-runs this test binary as simlint inside dir and returns
// its combined output and exit code.
func execSimlint(t *testing.T, dir string, args ...string) (string, int) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "SIMLINT_MAIN=1")
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	err = cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatal(err)
	}
	return out.String(), code
}

// writeTestModule lays out a throwaway module rooted at a temp dir.
func writeTestModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestExitCodes pins the documented exit-code contract end to end:
// 0 clean, 1 diagnostics, 2 load or usage errors.
func TestExitCodes(t *testing.T) {
	clean := map[string]string{
		"go.mod":             "module tmpmod\n\ngo 1.22\n",
		"internal/sim/ok.go": "package sim\n\n// Cycles is fine.\nfunc Cycles() int { return 1 }\n",
	}
	t.Run("clean-exits-0", func(t *testing.T) {
		out, code := execSimlint(t, writeTestModule(t, clean), "./...")
		if code != 0 {
			t.Fatalf("exit %d, output:\n%s", code, out)
		}
	})
	t.Run("diagnostics-exit-1", func(t *testing.T) {
		dir := writeTestModule(t, map[string]string{
			"go.mod": "module tmpmod\n\ngo 1.22\n",
			"internal/sim/bad.go": "package sim\n\nimport \"time\"\n\n" +
				"// Now leaks the wall clock.\nfunc Now() int64 { return time.Now().UnixNano() }\n",
		})
		out, code := execSimlint(t, dir, "./...")
		if code != 1 {
			t.Fatalf("exit %d, want 1; output:\n%s", code, out)
		}
		if !strings.Contains(out, "[R2]") {
			t.Errorf("output missing the R2 finding:\n%s", out)
		}
	})
	t.Run("malformed-source-exits-2", func(t *testing.T) {
		dir := writeTestModule(t, map[string]string{
			"go.mod":              "module tmpmod\n\ngo 1.22\n",
			"internal/sim/bad.go": "package sim\n\nfunc oops( {\n",
		})
		out, code := execSimlint(t, dir, "./...")
		if code != 2 {
			t.Fatalf("exit %d, want 2; output:\n%s", code, out)
		}
		if !strings.Contains(out, "bad.go") {
			t.Errorf("error output does not name the offending file:\n%s", out)
		}
	})
	t.Run("unknown-rule-exits-2", func(t *testing.T) {
		out, code := execSimlint(t, writeTestModule(t, clean), "-rules", "R99", "./...")
		if code != 2 {
			t.Fatalf("exit %d, want 2; output:\n%s", code, out)
		}
		if !strings.Contains(out, "unknown rule") {
			t.Errorf("error output does not mention the unknown rule:\n%s", out)
		}
	})
	t.Run("baseline-drift-exits-1", func(t *testing.T) {
		dir := writeTestModule(t, clean)
		bl := filepath.Join(dir, "baseline.json")
		if err := os.WriteFile(bl, []byte(`{"suppressions":{"total":3,"by_rule":{"R3":3}},"exemptions":{"total":0,"by_rule":{}}}`), 0o644); err != nil {
			t.Fatal(err)
		}
		out, code := execSimlint(t, dir, "-baseline", bl, "./...")
		if code != 1 {
			t.Fatalf("exit %d, want 1; output:\n%s", code, out)
		}
		if !strings.Contains(out, "census drift") {
			t.Errorf("output missing drift report:\n%s", out)
		}
	})
	t.Run("missing-baseline-exits-2", func(t *testing.T) {
		dir := writeTestModule(t, clean)
		_, code := execSimlint(t, dir, "-baseline", filepath.Join(dir, "nope.json"), "./...")
		if code != 2 {
			t.Fatalf("exit %d, want 2", code)
		}
	})
}
