// Command scenarioload load-tests a scenariod daemon with the traffic
// shape of a sweep-submitting fleet: a duplicate-heavy phase (many
// clients racing for few distinct specs — the cross-client coalescing
// case), a checkpoint-share phase (distinct specs in one warmup family
// — the batching case), and a cold-miss phase (the overhead floor).
// It reports per-phase throughput, latency percentiles, and the
// daemon store's hit/coalesce/miss deltas.
//
// Usage:
//
//	scenarioload -server URL | -spawn
//	             [-clients N] [-requests N] [-distinct N] [-seed S]
//	             [-quick] [-compare] [-min-speedup X]
//
// -spawn starts an in-process daemon on a loopback port instead of
// targeting a running one (self-contained smoke mode for scripts and
// CI). -compare replays the duplicate-heavy mix as per-client direct
// execution — no daemon, no shared store — and prints the aggregate
// throughput ratio; -min-speedup fails the run (exit 1) when that
// ratio falls below X.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"

	"repro/internal/serve"
	"repro/internal/serve/client"
	"repro/internal/serve/loadgen"
)

func main() {
	os.Exit(realMain())
}

func realMain() int {
	var (
		server     = flag.String("server", "", "scenariod base URL (e.g. http://127.0.0.1:8344)")
		spawn      = flag.Bool("spawn", false, "start an in-process daemon on a loopback port")
		clients    = flag.Int("clients", 8, "concurrent submitting clients")
		requests   = flag.Int("requests", 96, "requests per phase")
		distinct   = flag.Int("distinct", 2, "distinct specs in the duplicate-heavy mix")
		seed       = flag.Int64("seed", 1, "workload seed offset (vary to defeat a warm cache)")
		quick      = flag.Bool("quick", false, "small workloads for smoke tests")
		compare    = flag.Bool("compare", false, "replay the duplicate-heavy mix as direct per-client execution")
		minSpeedup = flag.Float64("min-speedup", 0, "fail unless daemon/direct throughput ratio reaches X (implies -compare)")
	)
	flag.Parse()
	if *minSpeedup > 0 {
		*compare = true
	}
	if (*server == "") == !*spawn {
		fmt.Fprintln(os.Stderr, "scenarioload: exactly one of -server or -spawn is required")
		return 2
	}

	base := *server
	if *spawn {
		srv, err := serve.New(serve.Options{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "scenarioload:", err)
			return 1
		}
		defer srv.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, "scenarioload:", err)
			return 1
		}
		httpSrv := &http.Server{Handler: srv.Handler()}
		go httpSrv.Serve(ln)
		defer httpSrv.Close()
		base = "http://" + ln.Addr().String()
		fmt.Fprintln(os.Stderr, "scenarioload: spawned daemon on", base)
	}

	rep, err := loadgen.Run(context.Background(), loadgen.Options{
		Client:   client.New(base),
		Clients:  *clients,
		Requests: *requests,
		Distinct: *distinct,
		Seed:     *seed,
		Quick:    *quick,
		Compare:  *compare,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "scenarioload:", err)
		return 1
	}
	fmt.Print(rep)
	for _, p := range rep.Phases {
		if p.Errors > 0 {
			fmt.Fprintf(os.Stderr, "scenarioload: %d request errors in %s phase\n", p.Errors, p.Name)
			return 1
		}
	}
	if *minSpeedup > 0 && rep.Speedup < *minSpeedup {
		fmt.Fprintf(os.Stderr, "scenarioload: speedup %.1fx below required %.1fx\n", rep.Speedup, *minSpeedup)
		return 1
	}
	return 0
}
