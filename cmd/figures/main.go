// Command figures regenerates every figure of the paper's evaluation and
// writes the rendered text plus CSV data.
//
// Usage:
//
//	figures [-fig all|2|3|4|5|6|7|8|staticerr|devcross] [-out DIR] [-matmul-n N] [-quick] [-parallel N]
//	        [-cache-dir DIR] [-no-cache] [-no-ckpt-fork]
//	        [-static-prune] [-prune-topk K] [-prune-audit N] [-prune-seed S]
//
// Figures 2, 3, 7 and 8 are analytical (instant); figures 4, 5 and 6
// simulate baseline and accelerated programs in all four TCA modes on the
// cycle-level core (seconds to minutes depending on -matmul-n). Simulated
// sweeps fan out across -parallel workers (default: GOMAXPROCS); results
// are collected in input order, so the stdout artifacts are bit-identical
// at any worker count. Timing goes to stderr to keep stdout byte-stable.
//
// Every simulation routes through a scenario store (internal/scenario):
// identical runs within and across figures execute once and share the
// result. -cache-dir persists results as content-addressed JSON blobs so
// reruns skip unchanged simulations entirely; -no-cache disables the
// store. The store also forks sweep variants from shared warm-state
// checkpoints instead of re-simulating each warmup prefix;
// -no-ckpt-fork disables that path. The stdout artifact is
// byte-identical with the cache off, cold, or warm, and with
// checkpoint forking on or off — the store's hit/miss/fork report goes
// to stderr.
//
// -static-prune enables the StaticRank pre-pass on the Fig 4 and Fig 5
// sweeps: every point is first ranked by the analytical fast-path tier
// (internal/staticmodel, microseconds per config), and only the
// -prune-topk frontier plus a -prune-audit random audit sample is
// cycle-simulated. Off by default; stock runs are byte-identical to a
// run with the flag absent. The prune report goes to stderr.
// -fig staticerr (never part of "all") emits the static-vs-simulated
// accuracy table that justifies the oracle.
// -fig devcross (never part of "all") emits the device-engine mode
// crossover for the DAE and loop-accelerator families.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	// Deferred profile writers must run before the process exits, so the
	// exit code travels out of realMain instead of calling os.Exit there.
	os.Exit(realMain())
}

func realMain() int {
	var (
		fig      = flag.String("fig", "all", "figure to regenerate: all, 2, 3, 4, 5, 6, 7, 8, e1, e2, e3, e4, e5, a1, a2, staticerr, devcross")
		out      = flag.String("out", "", "directory for CSV output (default: none, stdout only)")
		matmulN  = flag.Int("matmul-n", 64, "matrix edge for Fig 6 (paper: 512)")
		quick    = flag.Bool("quick", false, "shrink simulated sweeps for a fast smoke run")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker count for simulated sweeps (1 = serial)")
		cacheDir = flag.String("cache-dir", "", "persist simulation results as content-addressed blobs in this directory")
		noCache  = flag.Bool("no-cache", false, "disable the scenario store (results are identical, just slower)")
		noFork   = flag.Bool("no-ckpt-fork", false, "disable warm-checkpoint forking in the store (results are identical, just slower)")
		cpuProf  = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProf  = flag.String("memprofile", "", "write a pprof heap profile at exit to this file")

		staticPrune = flag.Bool("static-prune", false, "rank Fig 4/5 sweep points with the static model and simulate only the frontier")
		pruneTopK   = flag.Int("prune-topk", 4, "with -static-prune: simulate the K statically best-ranked points")
		pruneAudit  = flag.Int("prune-audit", 2, "with -static-prune: also simulate this many random pruned points as an audit sample")
		pruneSeed   = flag.Int64("prune-seed", 1, "with -static-prune: seed for the audit sample")
	)
	flag.Parse()

	var prune *experiments.StaticPruneConfig
	if *staticPrune {
		prune = &experiments.StaticPruneConfig{TopK: *pruneTopK, Audit: *pruneAudit, Seed: *pruneSeed}
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "figures:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the profile shows live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "figures:", err)
			}
		}()
	}

	var store *scenario.Store
	if !*noCache {
		var err error
		store, err = scenario.NewStore(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			return 1
		}
		if *noFork {
			store.DisableCheckpointForking()
		}
	}

	start := time.Now()
	if err := run(*fig, *out, *matmulN, *quick, *parallel, store, prune); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "figures: total %v (parallel=%d)\n",
		time.Since(start).Round(time.Millisecond), *parallel)
	if store != nil {
		fmt.Fprintln(os.Stderr, "figures:", store.Metrics())
	}
	return 0
}

func run(fig, out string, matmulN int, quick bool, parallel int, store *scenario.Store, prune *experiments.StaticPruneConfig) error {
	want := func(id string) bool { return fig == "all" || fig == id }
	saveCSV := func(name, data string) error {
		if out == "" {
			return nil
		}
		if err := os.MkdirAll(out, 0o755); err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(out, name), []byte(data), 0o644)
	}
	// Per-figure timing goes to stderr when the next section opens (and
	// once more at return), keeping the stdout artifact byte-stable.
	var secTitle string
	var secStart time.Time
	closeSection := func() {
		if secTitle != "" {
			fmt.Fprintf(os.Stderr, "figures: %v  %s\n",
				time.Since(secStart).Round(time.Millisecond), secTitle)
		}
		secTitle = ""
	}
	defer closeSection()
	section := func(title string) {
		closeSection()
		secTitle, secStart = title, time.Now()
		fmt.Printf("\n%s\n%s\n\n", title, strings.Repeat("=", len(title)))
	}

	if want("2") {
		section("Figure 2 — speedup vs accelerator granularity (analytical)")
		res, err := experiments.Fig2(experiments.DefaultFig2())
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		if err := saveCSV("fig2.csv", res.CSV()); err != nil {
			return err
		}
	}

	if want("3") {
		section("Figure 3 — per-mode interval timelines (illustrative)")
		p := core.HPCore().Apply(core.Params{
			AcceleratableFrac: 0.3, InvocationFreq: 0.003, AccelFactor: 3,
		})
		txt, err := experiments.Fig3(p)
		if err != nil {
			return err
		}
		fmt.Print(txt)
	}

	if want("4") {
		section("Figure 4 — model error on the synthetic microbenchmark (simulated)")
		cfg := experiments.DefaultFig4()
		cfg.Parallel = parallel
		cfg.Store = store
		cfg.Prune = prune
		if quick {
			cfg.RegionCounts = []int{5, 40, 320}
		}
		res, err := experiments.Fig4(cfg)
		if err != nil {
			return err
		}
		if res.Prune != nil {
			fmt.Fprintln(os.Stderr, "figures: fig4", res.Prune)
		}
		fmt.Print(res.Render())
		fmt.Printf("\nmax |error| across sweep: %.1f%%\n", 100*res.MaxAbsError())
		if err := saveCSV("fig4.csv", res.CSV()); err != nil {
			return err
		}
	}

	if want("5") {
		section("Figure 5 — heap manager TCA validation (simulated)")
		cfg := experiments.DefaultFig5()
		cfg.Parallel = parallel
		cfg.Store = store
		cfg.Prune = prune
		if quick {
			cfg.Operations = 200
			cfg.FillerCounts = []int{0, 20, 160}
		}
		res, err := experiments.Fig5(cfg)
		if err != nil {
			return err
		}
		if res.Prune != nil {
			fmt.Fprintln(os.Stderr, "figures: fig5", res.Prune)
		}
		fmt.Print(res.Render())
		fmt.Printf("\nmax |error| across sweep: %.1f%%\n", 100*res.MaxAbsError())
		if err := saveCSV("fig5.csv", res.CSV()); err != nil {
			return err
		}
	}

	if want("6") {
		section("Figure 6 — DGEMM TCA validation (simulated)")
		cfg := experiments.DefaultFig6()
		cfg.Parallel = parallel
		cfg.Store = store
		cfg.N = matmulN
		if quick {
			cfg.N = 32
			cfg.Block = 16
		}
		res, err := experiments.Fig6(cfg)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		fmt.Printf("\nmax |error| across tiles/modes: %.1f%%\n", 100*res.MaxAbsError())
		if err := saveCSV("fig6.csv", res.CSV()); err != nil {
			return err
		}
	}

	if want("7") {
		section("Figure 7 — design-space heatmaps (analytical)")
		res, err := experiments.Fig7(experiments.DefaultFig7())
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		if err := saveCSV("fig7.csv", res.CSV()); err != nil {
			return err
		}
		// Spot-check the red/blue boundary on the simulator.
		svCfg := experiments.DefaultFig7Sim()
		svCfg.Parallel = parallel
		svCfg.Store = store
		sv, err := experiments.Fig7Sim(svCfg)
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Print(sv.Render())
	}

	if want("8") {
		section("Figure 8 — concurrency: speedup vs coverage (analytical)")
		res, err := experiments.Fig8(experiments.DefaultFig8())
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		if err := saveCSV("fig8.csv", res.CSV()); err != nil {
			return err
		}
	}

	if want("e1") {
		section("Extension E1 — LogCA vs the TCA model (analytical)")
		res, err := experiments.E1(experiments.DefaultE1())
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		if err := saveCSV("e1.csv", res.CSV()); err != nil {
			return err
		}
	}

	if want("e2") {
		section("Extension E2 — Pareto study of mode hardware costs (analytical)")
		res, err := experiments.E2(core.HPCore(), []float64{30, 100, 300, 1e3, 1e4, 1e6})
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		if err := saveCSV("e2.csv", res.CSV()); err != nil {
			return err
		}
	}

	if want("e3") {
		section("Extension E3 — confidence-gated partial TCA speculation (simulated)")
		cfg := experiments.DefaultE3()
		cfg.Parallel = parallel
		cfg.Store = store
		if quick {
			cfg.Iterations = 150
			cfg.SkipEvery = []int{3, 8}
		}
		res, err := experiments.E3(cfg)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		if err := saveCSV("e3.csv", res.CSV()); err != nil {
			return err
		}
	}

	if want("e4") {
		section("Extension E4 — hash-map and string-compare TCA validation (simulated)")
		cfg := experiments.DefaultE4()
		cfg.Parallel = parallel
		cfg.Store = store
		if quick {
			cfg.Operations = 200
			cfg.FillerCounts = []int{5, 80}
		}
		res, err := experiments.E4(cfg)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		fmt.Printf("\nmax |error| across study: %.1f%%\n", 100*res.MaxAbsError())
		if err := saveCSV("e4.csv", res.CSV()); err != nil {
			return err
		}
	}

	if want("e5") {
		section("Extension E5 — heterogeneous multi-TCA complex (simulated)")
		cfg := experiments.DefaultE5()
		cfg.Parallel = parallel
		cfg.Store = store
		if quick {
			cfg.Calls = 60
			cfg.FillerCounts = []int{50, 800}
		}
		res, err := experiments.E5(cfg)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		fmt.Printf("\nmax |error| across study: %.1f%%\n", 100*res.MaxAbsError())
		if err := saveCSV("e5.csv", res.CSV()); err != nil {
			return err
		}
	}

	// The accuracy table is on-demand only (fig == "staticerr", never
	// part of "all"): it re-simulates the Fig 4/5 sweeps, and keeping it
	// out of "all" keeps the stock artifact byte-stable.
	if fig == "staticerr" {
		section("Static tier — static-vs-simulated speedup error (Fig 4 + Fig 5 points)")
		cfg := experiments.DefaultStaticErr()
		cfg.Parallel = parallel
		cfg.Store = store
		if quick {
			cfg.Fig4.RegionCounts = []int{5, 40, 320}
			cfg.Fig5.Operations = 200
			cfg.Fig5.FillerCounts = []int{0, 20, 160}
		}
		res, err := experiments.StaticErr(cfg)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		if err := saveCSV("staticerr.csv", res.CSV()); err != nil {
			return err
		}
	}

	// The device-family crossover is on-demand only (fig == "devcross",
	// never part of "all"), like staticerr: keeping new studies out of
	// "all" keeps the stock artifact byte-stable.
	if fig == "devcross" {
		section("Device engine — DAE and loop-accelerator mode crossover (simulated)")
		cfg := experiments.DefaultDevCross()
		cfg.Parallel = parallel
		cfg.Store = store
		if quick {
			cfg.DAE.Streams = 6
			cfg.DAEWords = []int{4, 64}
			cfg.Loop.Calls = 6
			cfg.LoopTrips = []int{2, 8}
		}
		res, err := experiments.DevCross(cfg)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		if err := saveCSV("devcross.csv", res.CSV()); err != nil {
			return err
		}
	}

	if want("a1") || want("a2") {
		section("Ablations — drain estimation (A1) and LSQ disambiguation (A2)")
		w, err := workload.Heap(workload.HeapConfig{
			Operations: 400, FillerPerCall: 40, Prefill: 512, Seed: 11,
		})
		if err != nil {
			return err
		}
		if want("a1") {
			res, err := experiments.MeasureWorkloadStore(store, sim.HighPerfConfig(), w, parallel)
			if err != nil {
				return err
			}
			rows, err := experiments.DrainAblation(res)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderDrainAblation(rows))
			fmt.Println()
		}
		if want("a2") {
			ab, err := experiments.LoadOrderingStore(store, sim.HighPerfConfig(), w, parallel)
			if err != nil {
				return err
			}
			fmt.Print(ab.Render())
		}
	}
	return nil
}
