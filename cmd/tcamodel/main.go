// Command tcamodel evaluates the analytical TCA performance model at one
// parameter point and prints the per-mode breakdown — the quickest way to
// ask "what does mode choice cost for this accelerator on this core?".
//
// Usage:
//
//	tcamodel -a 0.3 -g 100 -A 3 [-core hp|lp|a72] [-ipc N] [-rob N]
//	         [-width N] [-commit N] [-latency CYCLES] [-drain CYCLES]
//
// Either -g (granularity, instructions per invocation) or -v (invocation
// frequency) selects the invocation rate.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/accel"
	"repro/internal/core"
)

func main() {
	var (
		a       = flag.Float64("a", 0.3, "acceleratable fraction of dynamic instructions (0..1)")
		g       = flag.Float64("g", 100, "granularity: baseline instructions per invocation")
		v       = flag.Float64("v", 0, "invocation frequency (overrides -g when set)")
		aFactor = flag.Float64("A", 3, "acceleration factor A")
		latency = flag.Float64("latency", 0, "explicit accelerator latency in cycles (overrides -A)")
		drain   = flag.Float64("drain", 0, "explicit window drain time in cycles")
		coreSel = flag.String("core", "hp", "core preset: hp, lp, a72")
		ipc     = flag.Float64("ipc", 0, "override baseline IPC")
		rob     = flag.Int("rob", 0, "override ROB size")
		width   = flag.Int("width", 0, "override issue width")
		commit  = flag.Float64("commit", -1, "override commit stall cycles")
	)
	flag.Parse()

	arch, err := preset(*coreSel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tcamodel:", err)
		os.Exit(2)
	}
	if *ipc > 0 {
		arch.IPC = *ipc
	}
	if *rob > 0 {
		arch.ROBSize = *rob
	}
	if *width > 0 {
		arch.IssueWidth = *width
	}
	if *commit >= 0 {
		arch.CommitStall = *commit
	}

	freq := *v
	if freq == 0 {
		freq = *a / *g
	}
	p := arch.Apply(core.Params{
		AcceleratableFrac: *a,
		InvocationFreq:    freq,
		AccelFactor:       *aFactor,
		AccelLatency:      *latency,
		DrainTime:         *drain,
	})
	b, err := p.Evaluate()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tcamodel:", err)
		os.Exit(1)
	}

	fmt.Printf("core: IPC=%.2f ROB=%d width=%d t_commit=%.0f\n",
		p.IPC, p.ROBSize, p.IssueWidth, p.CommitStall)
	fmt.Printf("accel: a=%.3f v=%.3g (granularity %.1f instr), A_eff=%.2f\n",
		p.AcceleratableFrac, p.InvocationFreq, p.Granularity(), p.EffectiveAccelFactor())
	fmt.Printf("interval terms (cycles): baseline=%.1f non_accl=%.1f accl=%.1f drain=%.1f rob_fill=%.1f commit=%.1f\n\n",
		b.TBaseline, b.TNonAccl, b.TAccl, b.TDrain, b.TROBFill, b.TCommit)
	fmt.Printf("%-6s  %12s  %8s\n", "mode", "t/interval", "speedup")
	for _, m := range accel.AllModes {
		t := b.Times.Get(m)
		fmt.Printf("%-6s  %12.1f  %8.3f\n", m, t, b.TBaseline/t)
	}
	fmt.Printf("\nL_T concurrency bound: A+1 = %.2f (peak at a* = %.3f)\n",
		core.MaxConcurrentSpeedup(p.EffectiveAccelFactor()),
		core.PeakAcceleratableFrac(p.EffectiveAccelFactor()))
}

func preset(name string) (core.CoreParams, error) {
	switch name {
	case "hp":
		return core.HPCore(), nil
	case "lp":
		return core.LPCore(), nil
	case "a72":
		return core.A72Core(), nil
	default:
		return core.CoreParams{}, fmt.Errorf("unknown core preset %q (want hp, lp or a72)", name)
	}
}
