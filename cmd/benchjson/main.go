// Command benchjson runs a benchmark selection with -benchmem and writes
// a machine-readable JSON summary, so perf changes can be tracked without
// scraping `go test` text output.
//
// Usage:
//
//	benchjson [-bench REGEX] [-pkg PKG] [-benchtime T] [-count N] [-out FILE]
//
// The summary records iterations plus every value/unit pair the benchmark
// reported (ns/op, B/op, allocs/op, and any custom metrics).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Extra holds any additional value/unit pairs (custom metrics).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Summary is the file layout.
type Summary struct {
	Command    string      `json:"command"`
	GoVersion  string      `json:"go_version"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	Date       string      `json:"date"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	var (
		bench     = flag.String("bench", ".", "benchmark selection regex (go test -bench)")
		pkg       = flag.String("pkg", ".", "package pattern to benchmark")
		benchtime = flag.String("benchtime", "1x", "go test -benchtime value")
		count     = flag.Int("count", 1, "go test -count value")
		out       = flag.String("out", "BENCH_PR6.json", "output JSON path")
	)
	flag.Parse()

	if err := run(*bench, *pkg, *benchtime, *count, *out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(bench, pkg, benchtime string, count int, out string) error {
	args := []string{
		"test", "-run", "^$", "-bench", bench, "-benchmem",
		"-benchtime", benchtime, "-count", strconv.Itoa(count), pkg,
	}
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("go %s: %w", strings.Join(args, " "), err)
	}
	benches := parse(string(raw))
	if len(benches) == 0 {
		return fmt.Errorf("no benchmark lines matched -bench %q in %s", bench, pkg)
	}
	s := Summary{
		Command:    "go " + strings.Join(args, " "),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Date:       time.Now().UTC().Format(time.RFC3339),
		Benchmarks: benches,
	}
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(benches), out)
	return nil
}

// parse extracts benchmark result lines of the form
//
//	BenchmarkName-4   10   12345 ns/op   678 B/op   9 allocs/op
//
// tolerating any number of trailing value/unit pairs.
func parse(output string) []Benchmark {
	var benches []Benchmark
	for _, line := range strings.Split(output, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Name: fields[0], Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			default:
				if b.Extra == nil {
					b.Extra = make(map[string]float64)
				}
				b.Extra[fields[i+1]] = v
			}
		}
		benches = append(benches, b)
	}
	return benches
}
