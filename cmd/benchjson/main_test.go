package main

import "testing"

func TestParse(t *testing.T) {
	out := `goos: linux
goarch: amd64
pkg: repro
BenchmarkFig4SyntheticSweep-4   	       2	 512345678 ns/op	 1234567 B/op	    8901 allocs/op
BenchmarkSimulator   	      10	  12345 ns/op	  42.5 custom/op
PASS
ok  	repro	1.234s
`
	benches := parse(out)
	if len(benches) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(benches))
	}
	b := benches[0]
	if b.Name != "BenchmarkFig4SyntheticSweep-4" || b.Iterations != 2 {
		t.Errorf("bench 0 header = %q/%d", b.Name, b.Iterations)
	}
	if b.NsPerOp != 512345678 || b.BytesPerOp != 1234567 || b.AllocsPerOp != 8901 {
		t.Errorf("bench 0 metrics = %v %v %v", b.NsPerOp, b.BytesPerOp, b.AllocsPerOp)
	}
	c := benches[1]
	if c.NsPerOp != 12345 {
		t.Errorf("bench 1 ns/op = %v", c.NsPerOp)
	}
	if got := c.Extra["custom/op"]; got != 42.5 {
		t.Errorf("bench 1 custom metric = %v, want 42.5", got)
	}
}

func TestParseEmpty(t *testing.T) {
	if benches := parse("PASS\nok  \trepro\t0.1s\n"); len(benches) != 0 {
		t.Fatalf("parsed %d benchmarks from benchless output", len(benches))
	}
}
