// Command tcasim runs one of the paper's workloads on the cycle-level
// out-of-order simulator and prints pipeline statistics, for baseline and
// any TCA integration mode.
//
// Usage:
//
//	tcasim -workload synthetic|heap|matmul|kvstore|stringmatch|regexmatch|
//	                 multitca|daestream|loopnest
//	       [-mode L_T|NL_T|L_NT|NL_NT|baseline] [-core hp|lp|a72]
//	       [workload flags...]
//
// Examples:
//
//	tcasim -workload heap -mode L_T -heap-filler 20
//	tcasim -workload matmul -mode NL_NT -matmul-n 64 -matmul-tile 4
//	tcasim -workload synthetic -mode baseline
//	tcasim -workload kvstore -mode L_T -kv-ops 400
//	tcasim -workload stringmatch -mode NL_T -str-comparisons 300
//	tcasim -workload regexmatch -mode L_T -re-pattern '[ab]*abb'
//	tcasim -workload multitca -mode L_T -mtca-calls 120
//	tcasim -workload daestream -mode L_T -dae-words 64
//	tcasim -workload loopnest -mode L_T -loop-trips 8 -loop-depth 2
//
// -dump-scenario prints the canonical scenario description and
// content digest of the run the flags select — the identity the
// scenario store caches under — without simulating anything.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/accel"
	"repro/internal/isa"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	var (
		wl      = flag.String("workload", "synthetic", "workload: synthetic, heap, matmul, kvstore, stringmatch, regexmatch, multitca, daestream, loopnest")
		mode    = flag.String("mode", "L_T", "TCA mode (L_T, NL_T, L_NT, NL_NT) or 'baseline'")
		coreSel = flag.String("core", "hp", "core preset: hp, lp, a72")
		seed    = flag.Int64("seed", 1, "workload seed")
		trace   = flag.Int("trace", 0, "render a pipeline diagram for the first N committed instructions")
		noFF    = flag.Bool("no-fast-forward", false, "simulate every cycle instead of event-horizon skipping (results are identical; for debugging and A/B timing)")
		dump    = flag.Bool("dump-scenario", false, "print the canonical scenario spec and digest for this run, then exit without simulating")

		synUnits   = flag.Int("syn-units", 400, "synthetic: filler units")
		synRegions = flag.Int("syn-regions", 40, "synthetic: acceleratable regions")
		synLatency = flag.Int("syn-latency", 12, "synthetic: TCA latency")

		heapOps    = flag.Int("heap-ops", 600, "heap: malloc/free operations")
		heapFiller = flag.Int("heap-filler", 20, "heap: filler instructions per call")

		matN    = flag.Int("matmul-n", 64, "matmul: matrix edge")
		matBlk  = flag.Int("matmul-block", 32, "matmul: blocking factor")
		matTile = flag.Int("matmul-tile", 4, "matmul: TCA tile (2, 4, 8)")

		kvOps    = flag.Int("kv-ops", 400, "kvstore: insert/lookup operations")
		kvFiller = flag.Int("kv-filler", 40, "kvstore: filler instructions per op")

		strComparisons = flag.Int("str-comparisons", 300, "stringmatch: dictionary comparisons")
		strFiller      = flag.Int("str-filler", 40, "stringmatch: filler instructions per comparison")

		rePattern = flag.String("re-pattern", "[ab]*abb", "regexmatch: pattern to compile")
		reMatches = flag.Int("re-matches", 300, "regexmatch: inputs matched")
		reFiller  = flag.Int("re-filler", 40, "regexmatch: filler instructions per match")

		mtcaCalls  = flag.Int("mtca-calls", 120, "multitca: accelerated calls across the GreenDroid function set")
		mtcaFiller = flag.Int("mtca-filler", 200, "multitca: filler instructions per call")

		daeStreams = flag.Int("dae-streams", 12, "daestream: reductions (one invocation each)")
		daeWords   = flag.Int("dae-words", 32, "daestream: words per reduced array")
		daeChunk   = flag.Int("dae-chunk", 8, "daestream: burst length in words (1..8)")

		loopCalls = flag.Int("loop-calls", 12, "loopnest: nest executions (one invocation each)")
		loopTrips = flag.Int("loop-trips", 8, "loopnest: trip count per nest level")
		loopDepth = flag.Int("loop-depth", 2, "loopnest: nest depth")
	)
	flag.Parse()

	cfg, err := corePreset(*coreSel)
	if err != nil {
		fail(err)
	}

	var w *workload.Workload
	switch *wl {
	case "synthetic":
		w, err = workload.Synthetic(workload.SyntheticConfig{
			Units: *synUnits, UnitLen: 25, Regions: *synRegions, RegionLen: 60,
			AccelLatency: *synLatency, Seed: *seed,
		})
	case "heap":
		w, err = workload.Heap(workload.HeapConfig{
			Operations: *heapOps, FillerPerCall: *heapFiller, Prefill: 512, Seed: *seed,
		})
	case "matmul":
		w, err = workload.MatMul(workload.MatMulConfig{
			N: *matN, Block: *matBlk, Tile: *matTile, Seed: *seed,
		})
	case "kvstore":
		w, err = workload.KVStore(workload.KVStoreConfig{
			Operations: *kvOps, FillerPerOp: *kvFiller,
			Buckets: 256, Keys: 128, LookupPct: 70, KeyWords: 4, Seed: *seed,
		})
	case "stringmatch":
		w, err = workload.StringMatch(workload.StringMatchConfig{
			Comparisons: *strComparisons, FillerPerOp: *strFiller,
			Dictionary: 32, MinWords: 4, MaxWords: 24, SharedPrefix: 3, Seed: *seed,
		})
	case "regexmatch":
		w, err = workload.RegexMatch(workload.RegexMatchConfig{
			Pattern: *rePattern, Matches: *reMatches, FillerPerOp: *reFiller,
			Inputs: 32, MaxLen: 28, Seed: *seed,
		})
	case "multitca":
		mcfg := workload.DefaultMultiTCA()
		mcfg.Calls = *mtcaCalls
		mcfg.FillerPerCall = *mtcaFiller
		mcfg.Seed = *seed
		w, err = workload.MultiTCA(mcfg)
	case "daestream":
		w, err = workload.DAEStream(workload.DAEStreamConfig{
			Streams: *daeStreams, WordsPerStream: *daeWords, FillerPerOp: 30,
			ChunkWords: *daeChunk, ComputePerChunk: 4, Startup: 40, Seed: *seed,
		})
	case "loopnest":
		w, err = workload.LoopNest(workload.LoopNestConfig{
			Calls: *loopCalls, FillerPerOp: 25, Trips: *loopTrips, Depth: *loopDepth,
			IterLatency: 1, ConfigLatency: 20, Seed: *seed,
		})
	default:
		err = fmt.Errorf("unknown workload %q", *wl)
	}
	if err != nil {
		fail(err)
	}

	prog := w.Accelerated
	var dev isa.AccelDevice
	newDev := w.NewDevice
	devKey := w.DeviceKey
	if *mode == "baseline" {
		prog = w.Baseline
		newDev, devKey = nil, ""
	} else {
		m, perr := accel.ParseMode(*mode)
		if perr != nil {
			fail(perr)
		}
		cfg.Mode = m
		dev = w.NewDevice()
	}

	if *dump {
		cfg.PipeTraceLimit = *trace
		cfg.NoFastForward = *noFF
		spec := scenario.Spec{
			Config:    cfg,
			Program:   prog,
			NewDevice: newDev,
			DeviceKey: devKey,
			MaxCycles: 1 << 40,
		}
		if err := spec.Validate(); err != nil {
			fail(err)
		}
		fmt.Printf("workload:    %s — %s\n", w.Name, w.Description)
		spec.Describe(os.Stdout)
		return
	}

	fmt.Printf("workload: %s — %s\n", w.Name, w.Description)
	fmt.Printf("baseline accounting: %d instructions, a=%.3f, v=%.3g, granularity %.1f\n\n",
		w.BaselineInstructions, w.CoverageFrac(), w.InvocationFreq(), w.Granularity())

	cfg.PipeTraceLimit = *trace
	cfg.NoFastForward = *noFF
	c, err := sim.New(cfg, prog, dev)
	if err != nil {
		fail(err)
	}
	res, err := c.Run(1 << 40)
	if err != nil {
		fail(err)
	}
	fmt.Printf("core %s, mode %s:\n%s\nmemory: %s\n", cfg.Name, *mode, res.Stats, c.Hierarchy())
	if *trace > 0 {
		fmt.Println()
		fmt.Print(sim.RenderPipeTrace(res.Stats.PipeTrace, 120))
	}
}

func corePreset(name string) (sim.Config, error) {
	switch name {
	case "hp":
		return sim.HighPerfConfig(), nil
	case "lp":
		return sim.LowPerfConfig(), nil
	case "a72":
		return sim.A72Config(), nil
	default:
		return sim.Config{}, fmt.Errorf("unknown core preset %q (want hp, lp or a72)", name)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tcasim:", err)
	os.Exit(1)
}
