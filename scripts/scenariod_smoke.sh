#!/bin/sh
# scenariod_smoke.sh — the real two-process flow: build the daemon (race
# detector on, so handler races surface) and the load generator, start
# the daemon on an ephemeral loopback port, drive it through the
# three-phase quick mix with a direct-execution comparison, and shut it
# down with SIGTERM to exercise graceful drain. CI runs this; check.sh
# covers the faster in-process -spawn variant.
set -eu

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
sd_pid=""
cleanup() {
    [ -n "$sd_pid" ] && kill "$sd_pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

echo "==> building scenariod (-race) and scenarioload"
go build -race -o "$tmp/scenariod" ./cmd/scenariod
go build -o "$tmp/scenarioload" ./cmd/scenarioload

echo "==> starting scenariod on an ephemeral loopback port"
"$tmp/scenariod" -addr 127.0.0.1:0 -addr-file "$tmp/addr" -cache-dir "$tmp/blobs" &
sd_pid=$!

i=0
while [ ! -s "$tmp/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "scenariod never wrote its address file" >&2
        exit 1
    fi
    sleep 0.2
done
addr=$(cat "$tmp/addr")

echo "==> scenarioload -quick -compare against http://$addr"
"$tmp/scenarioload" -server "http://$addr" -quick -compare

echo "==> graceful shutdown (SIGTERM)"
kill -TERM "$sd_pid"
wait "$sd_pid"
sd_pid=""

echo "OK"
