#!/bin/sh
# check.sh — the repo's full verification gate: vet, build, and the whole
# test suite under the race detector. Run from the repo root.
set -eu

cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> simlint ./... (determinism & invariant rules, see LINT.md)"
go run ./cmd/simlint -baseline lint_baseline.json ./...

# Every //lint:ignore and //lint:exempt-field is a standing claim that a
# diagnostic is a false positive. The -baseline gate above fails the run
# if the counts drift from the committed lint_baseline.json (regenerate
# with -write-baseline when a change is intended); the census below keeps
# the individual sites visible in review.
echo "==> simlint suppression & exemption census"
go run ./cmd/simlint -suppressions ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

# The scenario-store contract: figure artifacts are byte-identical with
# the cache off, cold, and warm, at any worker count, and with
# warm-checkpoint forking on (the default) or off. Warm runs must not
# re-simulate and forked runs must not re-warm, so they are also the
# fast paths — but identity, not speed, is what gates the merge.
echo "==> figure byte-identity: cache off / cold / warm / no-ckpt-fork"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/figures" ./cmd/figures
"$tmp/figures" -fig all -quick -parallel 8 -no-cache              >"$tmp/off.txt"
"$tmp/figures" -fig all -quick -parallel 8 -cache-dir "$tmp/blobs" >"$tmp/cold.txt"
"$tmp/figures" -fig all -quick -parallel 1 -cache-dir "$tmp/blobs" >"$tmp/warm.txt"
"$tmp/figures" -fig all -quick -parallel 8 -no-ckpt-fork           >"$tmp/nofork.txt"
cmp "$tmp/off.txt" "$tmp/cold.txt"
cmp "$tmp/cold.txt" "$tmp/warm.txt"
cmp "$tmp/cold.txt" "$tmp/nofork.txt"

# The device-engine contract: the devcross study (DAE + loop-accelerator
# families, engine schedules, DeviceKey-cached runs) is byte-identical
# with the cache off, cold, and warm.
echo "==> devcross byte-identity: cache off / cold / warm"
"$tmp/figures" -fig devcross -quick -parallel 8 -no-cache                 >"$tmp/dev-off.txt"
"$tmp/figures" -fig devcross -quick -parallel 8 -cache-dir "$tmp/devblobs" >"$tmp/dev-cold.txt"
"$tmp/figures" -fig devcross -quick -parallel 1 -cache-dir "$tmp/devblobs" >"$tmp/dev-warm.txt"
cmp "$tmp/dev-off.txt" "$tmp/dev-cold.txt"
cmp "$tmp/dev-cold.txt" "$tmp/dev-warm.txt"

# The static-prune contract: the flag is opt-in, so a run with
# -static-prune explicitly disabled must be byte-identical to a run
# where the flag was never mentioned (the stock artifact above).
echo "==> figure byte-identity: -static-prune=false vs flag absent"
"$tmp/figures" -fig all -quick -parallel 8 -no-cache -static-prune=false >"$tmp/pruneoff.txt"
cmp "$tmp/off.txt" "$tmp/pruneoff.txt"

# The scenario-service contract: a spawned loopback daemon survives the
# three-phase load mix with zero request errors, and the duplicate-heavy
# mix beats per-client direct execution by at least 5x aggregate
# throughput (cross-client coalescing + shared store doing their job).
echo "==> scenariod smoke: spawned daemon, duplicate-heavy >= 5x direct"
go run ./cmd/scenarioload -spawn -quick -min-speedup 5

echo "OK"
