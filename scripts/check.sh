#!/bin/sh
# check.sh — the repo's full verification gate: vet, build, and the whole
# test suite under the race detector. Run from the repo root.
set -eu

cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> simlint ./... (determinism & invariant rules, see LINT.md)"
go run ./cmd/simlint ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

echo "OK"
