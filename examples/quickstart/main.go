// Quickstart: evaluate the analytical TCA model for an accelerator you are
// sketching, before writing any simulator code.
//
// Scenario: you want to accelerate a hash-table probe routine of about 40
// instructions that makes up 25% of your program, and your accelerator
// design should be ~4x faster than the core on that code. Is it worth
// building rollback hardware (L modes)? Dependency-check hardware (T
// modes)?
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/accel"
	"repro/internal/core"
)

func main() {
	// Describe the target core. Presets exist for the paper's
	// high-performance and low-performance cores plus an A72-like
	// mid-range; or fill core.Params fields directly.
	arch := core.HPCore()

	// Describe the accelerator and workload: coverage a, invocation
	// frequency v (one invocation per 40-instruction routine call), and
	// the acceleration factor A.
	p := arch.Apply(core.Params{
		AcceleratableFrac: 0.25,
		InvocationFreq:    0.25 / 40,
		AccelFactor:       4,
	})

	b, err := p.Evaluate()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("hash-probe TCA on a high-performance core")
	fmt.Printf("interval: baseline %.0f cycles, accel work %.1f cycles, drain %.1f cycles\n\n",
		b.TBaseline, b.TAccl, b.TDrain)

	fmt.Printf("%-6s %9s   %s\n", "mode", "speedup", "hardware required")
	hardware := map[accel.Mode]string{
		accel.LT:   "rollback + dependency checks (full OoO)",
		accel.NLT:  "dependency checks only",
		accel.LNT:  "rollback only",
		accel.NLNT: "none (drain + dispatch barrier)",
	}
	for _, m := range accel.AllModes {
		fmt.Printf("%-6s %9.3f   %s\n", m, b.TBaseline/b.Times.Get(m), hardware[m])
	}

	// The headline concurrency result: with full OoO support the program
	// can beat the accelerator's own speedup factor, up to A+1.
	fmt.Printf("\nupper bound with full OoO overlap: %.1fx at %.0f%% coverage\n",
		core.MaxConcurrentSpeedup(p.AccelFactor),
		100*core.PeakAcceleratableFrac(p.AccelFactor))

	// A one-line view of where each mode spends the interval (Fig. 3).
	fmt.Println("\ninterval timelines ('#' dispatching, '.' stalled):")
	for _, m := range accel.AllModes {
		tl, err := p.Timeline(m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(tl)
	}
}
