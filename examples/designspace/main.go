// Designspace: explore where a planned accelerator lands on the paper's
// Fig. 7 speedup/slowdown map, for a custom core.
//
// The scenario: an energy-motivated accelerator (A = 1.5, like GreenDroid)
// is being considered for both a big and a little core of a mobile SoC.
// The map shows where each (coverage, invocation-frequency) operating point
// falls — red (speedup, rendered .:*#) or blue (slowdown, rendered ~-=) —
// per integration mode, and places some candidate routines on it.
//
// Run with: go run ./examples/designspace
package main

import (
	"fmt"
	"log"

	"repro/internal/accel"
	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	cfg := experiments.Fig7Config{
		Cores: []core.CoreParams{
			{IPC: 2.0, ROBSize: 320, IssueWidth: 6, CommitStall: 4}, // big core
			{IPC: 0.8, ROBSize: 48, IssueWidth: 2, CommitStall: 2},  // little core
		},
		AccelFactor: 1.5,
		VMin:        1e-5,
		VMax:        0.5,
		ASteps:      16,
		VSteps:      56,
	}
	res, err := experiments.Fig7(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Render())

	// Candidate routines for acceleration, with their sizes.
	candidates := []struct {
		name string
		gran float64 // instructions per invocation
		a    float64 // achievable coverage
	}{
		{"utf8 validation", 45, 0.12},
		{"small memcpy", 25, 0.20},
		{"json number parse", 180, 0.08},
		{"crc32 block", 900, 0.15},
	}
	fmt.Println("candidate routines on the map (per mode: speedup on big core):")
	for _, c := range candidates {
		p := cfg.Cores[0].Apply(core.Params{
			AcceleratableFrac: c.a,
			InvocationFreq:    c.a / c.gran,
			AccelFactor:       cfg.AccelFactor,
		})
		s, err := p.Speedups()
		if err != nil {
			log.Fatal(err)
		}
		verdict := "safe in all modes"
		if s.NLNT < 1 {
			verdict = "NEEDS L/T support: barrier-only design slows the program"
		}
		fmt.Printf("  %-18s g=%4.0f a=%.2f  L_T %.3f  NL_T %.3f  L_NT %.3f  NL_NT %.3f  -> %s\n",
			c.name, c.gran, c.a, s.LT, s.NLT, s.LNT, s.NLNT, verdict)
	}

	// The slowdown-share summary quantifies the paper's "HP cores are
	// more sensitive" observation for these two cores.
	share := res.SlowdownShare()
	fmt.Println("\nslowdown share of the map (fraction of operating points that LOSE performance):")
	for _, c := range cfg.Cores {
		fmt.Printf("  IPC %.1f core: NL_NT %5.1f%%   L_NT %5.1f%%   NL_T %5.1f%%   L_T %5.1f%%\n",
			c.IPC,
			100*share[key(c, accel.NLNT)], 100*share[key(c, accel.LNT)],
			100*share[key(c, accel.NLT)], 100*share[key(c, accel.LT)])
	}
}

func key(c core.CoreParams, m accel.Mode) string {
	return fmt.Sprintf("ipc%.1f-%s", c.IPC, m)
}
