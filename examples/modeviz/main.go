// Modeviz: see the four TCA integration modes in the pipeline.
//
// This example runs one tiny accelerator-bearing loop through the
// cycle-level simulator in each mode with pipeline tracing on, printing
// the diagrams side by side — the simulated realization of the paper's
// Fig. 3 timelines. The NL modes visibly delay the 'A' span until older
// instructions drain; the NT modes visibly freeze dispatch behind it.
//
// Run with: go run ./examples/modeviz
package main

import (
	"fmt"
	"log"

	"repro/internal/accel"
	"repro/internal/isa"
	"repro/internal/sim"
)

func main() {
	// A single interval: leading work, one 12-cycle TCA invocation,
	// trailing work.
	b := isa.NewBuilder()
	for i := 0; i < 6; i++ {
		b.AddI(isa.R(1+i), isa.RZero, int64(i)) // leading
	}
	b.Accel(isa.R(10), 0, isa.R(1))
	for i := 0; i < 6; i++ {
		b.AddI(isa.R(11+i), isa.RZero, int64(i)) // trailing
	}
	b.Halt()
	prog := b.MustBuild()

	for _, m := range []accel.Mode{accel.NLNT, accel.LNT, accel.NLT, accel.LT} {
		cfg := sim.HighPerfConfig()
		cfg.Mode = m
		cfg.PipeTraceLimit = 16
		core, err := sim.New(cfg, prog, accel.NewFixedLatency(12))
		if err != nil {
			log.Fatal(err)
		}
		res, err := core.Run(100000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== mode %s — %d cycles, dispatch: %s\n",
			m, res.Stats.Cycles, res.Stats.CPIStack())
		fmt.Print(sim.RenderPipeTrace(res.Stats.PipeTrace, 100))
		fmt.Println()
	}
	fmt.Println("Read the 'A' rows: NL modes start it late (drain); NT modes push every")
	fmt.Println("trailing row's 'D' past the accelerator's 'C' (dispatch barrier).")
}
