// Heapaccel: the paper's low-memory-bandwidth case study end to end.
//
// This example builds the §V-B heap-manager benchmark (random malloc/free
// over TCMalloc size classes), runs the software baseline and the
// single-cycle heap TCA in all four integration modes on the cycle-level
// simulator, calibrates the analytical model from the baseline via interval
// analysis, and prints predicted vs. measured speedups — the complete
// methodology of the paper in one program.
//
// Run with: go run ./examples/heapaccel
package main

import (
	"fmt"
	"log"

	"repro/internal/accel"
	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	// A mid-frequency operating point: one malloc/free call per ~70
	// instructions of application work.
	w, err := workload.Heap(workload.HeapConfig{
		Operations:    800,
		FillerPerCall: 40,
		Prefill:       512,
		Seed:          2026,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %s\n", w.Description)
	fmt.Printf("baseline: %d instructions; coverage a=%.3f; invocation freq v=%.4f\n",
		w.BaselineInstructions, w.CoverageFrac(), w.InvocationFreq())
	fmt.Printf("software costs inlined per call: malloc %d uops, free %d uops (paper's measured TCMalloc costs)\n\n",
		69, 37)

	// MeasureWorkload runs baseline + 4 modes and calibrates the model.
	res, err := experiments.MeasureWorkload(sim.HighPerfConfig(), w)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("baseline run: %d cycles at IPC %.2f\n\n", res.BaselineCycles, res.BaselineIPC)
	fmt.Printf("%-6s %12s %12s %10s\n", "mode", "simulated", "model", "error")
	for _, m := range accel.AllModes {
		mm := res.Mode(m)
		fmt.Printf("%-6s %11.2fx %11.2fx %+9.1f%%\n",
			m, mm.SimSpeedup, mm.ModelSpeedup, 100*mm.Error)
	}

	// The design takeaway the paper draws for fine-grained accelerators:
	lt, nlnt := res.Mode(accel.LT), res.Mode(accel.NLNT)
	fmt.Printf("\nFine-grained invocations make mode choice matter: full OoO support buys %.1f%%\n",
		100*(lt.SimSpeedup/nlnt.SimSpeedup-1))
	fmt.Println("over the barrier-only design — hardware the heap TCA's 1-cycle latency cannot excuse.")
}
