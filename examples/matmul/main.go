// Matmul: the paper's high-memory-bandwidth case study end to end.
//
// This example runs the §V-C dense matrix multiplication (blocked DGEMM)
// with tensor-core-style t×t multiply-accumulate TCAs that operate through
// memory, comparing 2×2, 4×4 and 8×8 accelerators across all four
// integration modes, and demonstrates the paper's amortization finding:
// bigger tiles amortize drain/barrier penalties, so mode choice matters
// most for the smallest accelerator.
//
// Run with: go run ./examples/matmul   (about a minute of simulation)
package main

import (
	"fmt"
	"log"

	"repro/internal/accel"
	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	const (
		n     = 64 // matrix edge; the paper uses 512 with the same blocking
		block = 32 // 32x32 blocking: 24 KiB of tiles, L1-resident
	)
	fmt.Printf("%dx%d DGEMM through %dx%d L1-resident blocks\n\n", n, n, block, block)

	for _, tile := range []int{2, 4, 8} {
		w, err := workload.MatMul(workload.MatMulConfig{N: n, Block: block, Tile: tile, Seed: 9})
		if err != nil {
			log.Fatal(err)
		}
		res, err := experiments.MeasureWorkload(sim.HighPerfConfig(), w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%dx%d TCA: %d invocations, measured service latency %.1f cycles\n",
			tile, tile, w.Invocations, res.MeasuredAccelLatency)
		for _, m := range accel.AllModes {
			mm := res.Mode(m)
			fmt.Printf("  %-6s simulated %7.2fx   model %7.2fx\n", m, mm.SimSpeedup, mm.ModelSpeedup)
		}
		lt, nlnt := res.Mode(accel.LT).SimSpeedup, res.Mode(accel.NLNT).SimSpeedup
		fmt.Printf("  mode gap (L_T vs NL_NT): %.1f%%\n\n", 100*(lt/nlnt-1))
	}
	fmt.Println("Note how the relative mode gap shrinks as the tile grows: coarse TCAs")
	fmt.Println("amortize the drain and fill penalties that dominate fine-grained designs.")
}
