package isa

// This file defines the contract between OpAccel instructions and the
// tightly-coupled accelerator device that services them. Both the functional
// interpreter and the cycle simulator call the same device, so functional
// behaviour is defined once; the simulator additionally charges the timing
// reported in AccelResult — either a scalar compute latency plus memory
// traffic, or a multi-phase device-engine schedule (AccelPhase) — with every
// memory operation routed through the core's LSQ and cache hierarchy,
// arbitrated by age as in the paper's methodology.

// AccelMemOp is one memory word access performed by an accelerator
// invocation. Size is in bytes (at most 64, the paper's assumed maximum
// contiguous request width, same as an AVX-512 register); accesses wider
// than 8 bytes describe contiguous words starting at Addr.
//
// Serial marks an access whose address depends on the previous access's
// data (pointer chasing, DFA table walks): the simulator starts it only
// after the preceding operation in the list completes, instead of
// overlapping it.
type AccelMemOp struct {
	Addr   uint64
	Size   int
	Store  bool
	Serial bool
}

// AccelPhase is one step of a device engine's occupancy schedule. The
// simulator executes a schedule's phases strictly in order; within one phase
// it issues the phase's loads at the phase start (each one arbitrated
// through the shared memory ports, Serial loads chaining behind their
// predecessor), charges Compute cycles, then issues the phase's stores, and
// the next phase begins when everything in this one has finished.
//
// Overlap decouples the phase's memory time from its compute time: the
// phase ends at max(loads done, start + Compute) instead of
// loadsDone + Compute. This is how a decoupled access/execute device
// expresses its access slice running ahead of the execute slice — the
// loads of chunk i+1 stream under the compute of chunk i, so a phase costs
// whichever slice is slower, never the sum. Stores still wait for both
// (they carry results the execute slice produced from the loaded data).
type AccelPhase struct {
	// Compute is the phase's pure compute occupancy in cycles.
	Compute int
	// Overlap, when set, lets the phase's memory time hide under Compute
	// (and vice versa) instead of serializing after it.
	Overlap bool
	// MemOps is the phase's memory traffic, issued through the same
	// port/MSHR arbitration as scalar-contract traffic.
	MemOps []AccelMemOp
}

// AccelResult describes one accelerator invocation: the value written to the
// destination register, and its timing under one of two contracts.
//
// Scalar contract (the paper's monolithic TCA): Latency is the pure compute
// time in cycles and MemOps the memory traffic; the simulator issues all
// loads at invocation start, charges Latency, then issues the stores. A
// scalar result is exactly equivalent to the one-phase schedule
// {{Compute: Latency, MemOps: MemOps}} — the simulator executes both
// through the same engine path, bit-identically (pinned by the engine
// differential suite in internal/sim).
//
// Engine contract: Schedule, when non-nil, is a deterministic multi-phase
// occupancy schedule and takes precedence; Latency and MemOps are then
// ignored by the simulator. Schedules let a device express structure a
// scalar latency cannot: decoupled access/execute streaming (loads of the
// next chunk hidden under compute of the current one), one-time
// configuration cost amortized over a loop nest, staged writeback.
//
// Under either contract the device performs its stores via AccelStorer, not
// on the memory passed to Invoke; MemOps entries are the timing-visible
// trace of the accesses. Functional callers may ignore timing entirely.
type AccelResult struct {
	Value    uint64
	Latency  int
	MemOps   []AccelMemOp
	Schedule []AccelPhase
}

// AccelCall carries the operand values of an OpAccel instruction to the
// device. Kind is the instruction's immediate; Args are the values of
// Src1..Src3 at invocation time.
type AccelCall struct {
	Kind int64
	Args [3]uint64
}

// WordReader is the memory view an accelerator reads during an invocation.
// The interpreter passes the architectural Memory; the simulator passes an
// overlay that includes older, not-yet-committed stores so speculative
// invocations observe program-order memory state.
type WordReader interface {
	Load(addr uint64) uint64
	LoadFloat(addr uint64) float64
}

// AccelDevice is a tightly-coupled accelerator. Invoke must be
// deterministic for a given (call, memory) pair: the simulator may only
// invoke it once per committed instruction, but the invocation can happen
// speculatively in L modes, so devices must not keep externally visible
// state beyond what they write through mem (the simulator defers those
// writes until the invocation is non-speculative in the functional image).
//
// Implementations live in internal/accel.
type AccelDevice interface {
	// Name identifies the device in statistics and error messages.
	Name() string
	// Invoke performs the accelerator operation functionally against mem
	// and reports its timing. Loads read mem directly; stores must NOT be
	// applied by the device — they are described in AccelResult.MemOps
	// and returned through AccelStorer so the caller can apply them with
	// correct speculation semantics.
	Invoke(call AccelCall, mem WordReader) AccelResult
}

// AccelMemoryUser is implemented by devices whose invocations read or write
// program memory. The simulator orders such invocations against the
// load/store queue; devices that work purely on register operands (the heap
// manager's hardware tables, fixed-latency compute blocks) skip that
// ordering.
type AccelMemoryUser interface {
	UsesProgramMemory() bool
}

// AccelJournal is implemented by devices with internal state (such as the
// heap manager's free-list tables) that may be invoked speculatively in the
// L modes. Mark snapshots a position; Rewind undoes every state change made
// by invocations after that mark, implementing the misspeculation-rollback
// hardware the paper's L modes require.
type AccelJournal interface {
	Mark() int
	Rewind(mark int)
}

// AccelSnapshotter is implemented by devices whose state must survive a
// simulator checkpoint/resume cycle. SnapshotState returns an opaque,
// deterministic byte encoding of the device's mutable state (counters,
// tables, journals); RestoreState reconstructs that state in a freshly built
// device of the same configuration. A device without mutable state need not
// implement the interface — the checkpoint layer then requires the device to
// be pristine (never invoked) at snapshot time.
type AccelSnapshotter interface {
	SnapshotState() []byte
	RestoreState(data []byte) error
}

// AccelStore is a pending accelerator store: a word address and the data to
// write. Devices that need to write memory return these via the
// AccelStorer interface.
type AccelStore struct {
	Addr uint64
	Data uint64
}

// AccelStorer is implemented by devices whose invocations write memory.
// PendingStores returns the word-granularity stores of the most recent
// Invoke call. The interpreter applies them immediately; the simulator
// applies them when the OpAccel instruction commits.
type AccelStorer interface {
	PendingStores() []AccelStore
}

// InvokeAndCollect runs one accelerator invocation and returns the result
// together with any pending stores, without applying them.
func InvokeAndCollect(dev AccelDevice, call AccelCall, mem WordReader) (AccelResult, []AccelStore) {
	res := dev.Invoke(call, mem)
	if s, ok := dev.(AccelStorer); ok {
		return res, s.PendingStores()
	}
	return res, nil
}

// ApplyStores writes a batch of accelerator stores to memory.
func ApplyStores(mem *Memory, stores []AccelStore) {
	for _, s := range stores {
		mem.Store(s.Addr, s.Data)
	}
}
