package isa

// This file defines the contract between OpAccel instructions and the
// tightly-coupled accelerator device that services them. Both the functional
// interpreter and the cycle simulator call the same device, so functional
// behaviour is defined once; the simulator additionally charges the timing
// reported in AccelResult (compute latency plus the memory operations routed
// through the core's LSQ and cache hierarchy, arbitrated by age as in the
// paper's methodology).

// AccelMemOp is one memory word access performed by an accelerator
// invocation. Size is in bytes (at most 64, the paper's assumed maximum
// contiguous request width, same as an AVX-512 register); accesses wider
// than 8 bytes describe contiguous words starting at Addr.
//
// Serial marks an access whose address depends on the previous access's
// data (pointer chasing, DFA table walks): the simulator starts it only
// after the preceding operation in the list completes, instead of
// overlapping it.
type AccelMemOp struct {
	Addr   uint64
	Size   int
	Store  bool
	Serial bool
}

// AccelResult describes one accelerator invocation: the value written to the
// destination register, the pure compute latency in cycles (excluding memory
// time, which the simulator derives from MemOps), and the memory traffic.
//
// The device performs its stores on the Memory passed to Invoke; MemOps is
// the timing-visible trace of those accesses. Functional callers may ignore
// MemOps entirely.
type AccelResult struct {
	Value   uint64
	Latency int
	MemOps  []AccelMemOp
}

// AccelCall carries the operand values of an OpAccel instruction to the
// device. Kind is the instruction's immediate; Args are the values of
// Src1..Src3 at invocation time.
type AccelCall struct {
	Kind int64
	Args [3]uint64
}

// WordReader is the memory view an accelerator reads during an invocation.
// The interpreter passes the architectural Memory; the simulator passes an
// overlay that includes older, not-yet-committed stores so speculative
// invocations observe program-order memory state.
type WordReader interface {
	Load(addr uint64) uint64
	LoadFloat(addr uint64) float64
}

// AccelDevice is a tightly-coupled accelerator. Invoke must be
// deterministic for a given (call, memory) pair: the simulator may only
// invoke it once per committed instruction, but the invocation can happen
// speculatively in L modes, so devices must not keep externally visible
// state beyond what they write through mem (the simulator defers those
// writes until the invocation is non-speculative in the functional image).
//
// Implementations live in internal/accel.
type AccelDevice interface {
	// Name identifies the device in statistics and error messages.
	Name() string
	// Invoke performs the accelerator operation functionally against mem
	// and reports its timing. Loads read mem directly; stores must NOT be
	// applied by the device — they are described in AccelResult.MemOps
	// and returned through AccelStorer so the caller can apply them with
	// correct speculation semantics.
	Invoke(call AccelCall, mem WordReader) AccelResult
}

// AccelMemoryUser is implemented by devices whose invocations read or write
// program memory. The simulator orders such invocations against the
// load/store queue; devices that work purely on register operands (the heap
// manager's hardware tables, fixed-latency compute blocks) skip that
// ordering.
type AccelMemoryUser interface {
	UsesProgramMemory() bool
}

// AccelJournal is implemented by devices with internal state (such as the
// heap manager's free-list tables) that may be invoked speculatively in the
// L modes. Mark snapshots a position; Rewind undoes every state change made
// by invocations after that mark, implementing the misspeculation-rollback
// hardware the paper's L modes require.
type AccelJournal interface {
	Mark() int
	Rewind(mark int)
}

// AccelSnapshotter is implemented by devices whose state must survive a
// simulator checkpoint/resume cycle. SnapshotState returns an opaque,
// deterministic byte encoding of the device's mutable state (counters,
// tables, journals); RestoreState reconstructs that state in a freshly built
// device of the same configuration. A device without mutable state need not
// implement the interface — the checkpoint layer then requires the device to
// be pristine (never invoked) at snapshot time.
type AccelSnapshotter interface {
	SnapshotState() []byte
	RestoreState(data []byte) error
}

// AccelStore is a pending accelerator store: a word address and the data to
// write. Devices that need to write memory return these via the
// AccelStorer interface.
type AccelStore struct {
	Addr uint64
	Data uint64
}

// AccelStorer is implemented by devices whose invocations write memory.
// PendingStores returns the word-granularity stores of the most recent
// Invoke call. The interpreter applies them immediately; the simulator
// applies them when the OpAccel instruction commits.
type AccelStorer interface {
	PendingStores() []AccelStore
}

// InvokeAndCollect runs one accelerator invocation and returns the result
// together with any pending stores, without applying them.
func InvokeAndCollect(dev AccelDevice, call AccelCall, mem WordReader) (AccelResult, []AccelStore) {
	res := dev.Invoke(call, mem)
	if s, ok := dev.(AccelStorer); ok {
		return res, s.PendingStores()
	}
	return res, nil
}

// ApplyStores writes a batch of accelerator stores to memory.
func ApplyStores(mem *Memory, stores []AccelStore) {
	for _, s := range stores {
		mem.Store(s.Addr, s.Data)
	}
}
