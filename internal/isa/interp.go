package isa

import (
	"errors"
	"fmt"
	"math"
)

// ErrFuelExhausted is returned when the interpreter hits its step limit
// before the program halts.
var ErrFuelExhausted = errors.New("isa: interpreter fuel exhausted")

// InterpStats summarizes one functional execution.
type InterpStats struct {
	// Retired is the number of instructions executed, including the halt.
	Retired uint64
	// Branches and Taken count executed conditional branches.
	Branches uint64
	Taken    uint64
	// Loads and Stores count explicit memory instructions (not accel
	// traffic).
	Loads  uint64
	Stores uint64
	// AccelInvocations counts OpAccel executions.
	AccelInvocations uint64
	// AccelMemOps counts word accesses performed by accelerator
	// invocations.
	AccelMemOps uint64
}

// Interp executes programs functionally, in order, one instruction at a
// time. It is the architectural golden model the out-of-order simulator is
// verified against.
type Interp struct {
	Prog  *Program
	Mem   *Memory
	Accel AccelDevice // may be nil when the program has no OpAccel

	// Regs is the architectural register file: 0..31 integer (R0 zero),
	// 32..63 floating point (as float64 bit patterns).
	Regs [NumRegs]uint64

	PC    int
	Stats InterpStats

	// Ranges counts dynamic instructions executed inside static PC
	// ranges (used to measure acceleratable-region coverage). Configure
	// with CountRange before running.
	Ranges []RangeCounter

	// rangeOf maps each PC to its range index (-1 = none); built by
	// CountRange so per-step accounting is O(1) even with hundreds of
	// registered ranges. Later registrations win on overlap.
	rangeOf []int32

	halted bool
}

// RangeCounter tallies dynamic executions within [Lo, Hi).
type RangeCounter struct {
	Lo, Hi int
	Count  uint64
}

// CountRange registers a static PC range whose dynamic execution count is
// tracked during Run, returning its index for RangeCount.
func (it *Interp) CountRange(lo, hi int) int {
	if it.rangeOf == nil {
		it.rangeOf = make([]int32, len(it.Prog.Code))
		for i := range it.rangeOf {
			it.rangeOf[i] = -1
		}
	}
	idx := len(it.Ranges)
	it.Ranges = append(it.Ranges, RangeCounter{Lo: lo, Hi: hi})
	for pc := lo; pc < hi && pc < len(it.rangeOf); pc++ {
		it.rangeOf[pc] = int32(idx)
	}
	return idx
}

// RangeCount returns the dynamic execution count of a registered range.
func (it *Interp) RangeCount(idx int) uint64 { return it.Ranges[idx].Count }

// RangeTotal returns the dynamic count summed over all registered ranges.
func (it *Interp) RangeTotal() uint64 {
	var total uint64
	for _, r := range it.Ranges {
		total += r.Count
	}
	return total
}

// NewInterp prepares an interpreter over a fresh memory image of prog.
func NewInterp(prog *Program, dev AccelDevice) *Interp {
	return &Interp{Prog: prog, Mem: prog.NewMemoryImage(), Accel: dev}
}

// Reg reads an architectural register (R0 reads as zero).
func (it *Interp) Reg(r Reg) uint64 {
	if r == RZero {
		return 0
	}
	return it.Regs[r]
}

// SetReg writes an architectural register (writes to R0 are discarded).
func (it *Interp) SetReg(r Reg, v uint64) {
	if r == RZero {
		return
	}
	it.Regs[r] = v
}

// FloatReg reads a floating-point register as a float64.
func (it *Interp) FloatReg(r Reg) float64 { return fromBits(it.Reg(r)) }

// Halted reports whether the program has executed OpHalt.
func (it *Interp) Halted() bool { return it.halted }

// Run executes until halt or until maxSteps instructions have retired.
func (it *Interp) Run(maxSteps uint64) error {
	for !it.halted {
		if it.Stats.Retired >= maxSteps {
			return fmt.Errorf("%w after %d instructions at pc=%d", ErrFuelExhausted, it.Stats.Retired, it.PC)
		}
		if err := it.Step(); err != nil {
			return err
		}
	}
	return nil
}

// Step executes a single instruction.
func (it *Interp) Step() error {
	if it.halted {
		return nil
	}
	if it.PC < 0 || it.PC >= len(it.Prog.Code) {
		return fmt.Errorf("isa: pc %d out of range [0,%d)", it.PC, len(it.Prog.Code))
	}
	if it.rangeOf != nil {
		if idx := it.rangeOf[it.PC]; idx >= 0 {
			it.Ranges[idx].Count++
		}
	}
	in := it.Prog.Code[it.PC]
	next := it.PC + 1
	switch in.Op {
	case OpNop:
	case OpHalt:
		it.halted = true
	case OpMovI:
		it.SetReg(in.Dst, uint64(in.Imm))
	case OpAddI:
		it.SetReg(in.Dst, it.Reg(in.Src1)+uint64(in.Imm))
	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpShl, OpShr, OpSlt:
		it.SetReg(in.Dst, EvalALU(in.Op, it.Reg(in.Src1), it.Reg(in.Src2)))
	case OpFMovI:
		it.SetReg(in.Dst, uint64(in.Imm))
	case OpFAdd, OpFSub, OpFMul, OpFDiv:
		it.SetReg(in.Dst, EvalFP(in.Op, it.Reg(in.Src1), it.Reg(in.Src2)))
	case OpFMA:
		r := math.FMA(fromBits(it.Reg(in.Src1)), fromBits(it.Reg(in.Src2)), fromBits(it.Reg(in.Src3)))
		it.SetReg(in.Dst, toBits(r))
	case OpLoad, OpFLoad:
		addr := it.Reg(in.Src1) + uint64(in.Imm)
		it.SetReg(in.Dst, it.Mem.Load(addr))
		it.Stats.Loads++
	case OpStore, OpFStore:
		addr := it.Reg(in.Src1) + uint64(in.Imm)
		it.Mem.Store(addr, it.Reg(in.Src2))
		it.Stats.Stores++
	case OpBeq, OpBne, OpBlt, OpBge:
		it.Stats.Branches++
		if EvalBranch(in.Op, it.Reg(in.Src1), it.Reg(in.Src2)) {
			it.Stats.Taken++
			next = int(in.Imm)
		}
	case OpJmp:
		next = int(in.Imm)
	case OpAccel:
		if it.Accel == nil {
			return fmt.Errorf("isa: accel instruction at pc=%d but no device attached", it.PC)
		}
		call := AccelCall{Kind: in.Imm, Args: [3]uint64{it.Reg(in.Src1), it.Reg(in.Src2), it.Reg(in.Src3)}}
		res, stores := InvokeAndCollect(it.Accel, call, it.Mem)
		ApplyStores(it.Mem, stores)
		it.SetReg(in.Dst, res.Value)
		it.Stats.AccelInvocations++
		it.Stats.AccelMemOps += uint64(len(res.MemOps))
	default:
		return fmt.Errorf("isa: unimplemented opcode %s at pc=%d", in.Op, it.PC)
	}
	it.Stats.Retired++
	it.PC = next
	return nil
}

// EvalALU computes an integer ALU result. Division and remainder by zero
// yield zero (defined behaviour so wrong-path execution in the simulator is
// safe).
func EvalALU(op Op, a, b uint64) uint64 {
	switch op {
	case OpAdd:
		return a + b
	case OpSub:
		return a - b
	case OpMul:
		return a * b
	case OpDiv:
		if b == 0 {
			return 0
		}
		if int64(a) == math.MinInt64 && int64(b) == -1 {
			return a // overflow wraps, matching hardware saturating-free div
		}
		return uint64(int64(a) / int64(b))
	case OpRem:
		if b == 0 {
			return 0
		}
		if int64(a) == math.MinInt64 && int64(b) == -1 {
			return 0
		}
		return uint64(int64(a) % int64(b))
	case OpAnd:
		return a & b
	case OpOr:
		return a | b
	case OpXor:
		return a ^ b
	case OpShl:
		return a << (b & 63)
	case OpShr:
		return a >> (b & 63)
	case OpSlt:
		if int64(a) < int64(b) {
			return 1
		}
		return 0
	}
	panic(fmt.Sprintf("isa: EvalALU on non-ALU op %s", op))
}

// EvalFP computes a floating-point result over float64 bit patterns.
func EvalFP(op Op, a, b uint64) uint64 {
	x, y := fromBits(a), fromBits(b)
	switch op {
	case OpFAdd:
		return toBits(x + y)
	case OpFSub:
		return toBits(x - y)
	case OpFMul:
		return toBits(x * y)
	case OpFDiv:
		return toBits(x / y)
	}
	panic(fmt.Sprintf("isa: EvalFP on non-FP op %s", op))
}

// EvalBranch reports whether a conditional branch is taken.
func EvalBranch(op Op, a, b uint64) bool {
	switch op {
	case OpBeq:
		return a == b
	case OpBne:
		return a != b
	case OpBlt:
		return int64(a) < int64(b)
	case OpBge:
		return int64(a) >= int64(b)
	}
	panic(fmt.Sprintf("isa: EvalBranch on non-branch op %s", op))
}

func toBits(f float64) uint64   { return math.Float64bits(f) }
func fromBits(b uint64) float64 { return math.Float64frombits(b) }
