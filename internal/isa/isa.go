// Package isa defines the register-machine instruction set shared by the
// functional interpreter and the cycle-level out-of-order simulator.
//
// The ISA is a small RISC-style load/store architecture with 32 integer
// registers (R0 hardwired to zero), 32 floating-point registers, and one
// special instruction, OpAccel, that invokes a tightly-coupled accelerator
// (TCA). A TCA invocation occupies a single architectural instruction and a
// single reorder-buffer entry, exactly as the paper's TCA definition
// requires: "invoked via a dedicated ISA instruction, reserves an entry in
// the reorder buffer, has in-order commit semantics".
//
// Values are 64-bit. Integer registers hold two's-complement integers;
// floating-point registers hold IEEE-754 float64 bit patterns. Memory is
// byte-addressed but accessed at 8-byte word granularity by OpLoad/OpStore.
package isa

import "fmt"

// Reg names one of the 64 architectural registers. Registers 0..31 are the
// integer file (R0 reads as zero and ignores writes); registers 32..63 are
// the floating-point file.
type Reg uint8

// Register file layout.
const (
	NumIntRegs = 32
	NumFPRegs  = 32
	NumRegs    = NumIntRegs + NumFPRegs

	// RZero is the hardwired zero register.
	RZero Reg = 0
)

// R returns the n'th integer register. It panics if n is out of range.
func R(n int) Reg {
	if n < 0 || n >= NumIntRegs {
		panic(fmt.Sprintf("isa: integer register %d out of range", n))
	}
	return Reg(n)
}

// F returns the n'th floating-point register. It panics if n is out of range.
func F(n int) Reg {
	if n < 0 || n >= NumFPRegs {
		panic(fmt.Sprintf("isa: fp register %d out of range", n))
	}
	return Reg(NumIntRegs + n)
}

// IsFP reports whether r belongs to the floating-point file.
func (r Reg) IsFP() bool { return r >= NumIntRegs }

// String renders the register in assembly form (r7, f3, zero).
func (r Reg) String() string {
	switch {
	case r == RZero:
		return "zero"
	case r < NumIntRegs:
		return fmt.Sprintf("r%d", int(r))
	case r < NumRegs:
		return fmt.Sprintf("f%d", int(r)-NumIntRegs)
	default:
		return fmt.Sprintf("reg?%d", int(r))
	}
}

// Op enumerates the instruction opcodes.
type Op uint8

// Opcodes. Semantics are documented per group; Dst/Src1/Src2/Src3 refer to
// Instruction fields and Imm to the immediate.
const (
	// OpNop does nothing.
	OpNop Op = iota
	// OpHalt stops the program.
	OpHalt

	// Integer ALU.
	OpMovI // Dst = Imm
	OpAddI // Dst = Src1 + Imm
	OpAdd  // Dst = Src1 + Src2
	OpSub  // Dst = Src1 - Src2
	OpMul  // Dst = Src1 * Src2
	OpDiv  // Dst = Src1 / Src2 (signed; x/0 == 0)
	OpRem  // Dst = Src1 % Src2 (signed; x%0 == 0)
	OpAnd  // Dst = Src1 & Src2
	OpOr   // Dst = Src1 | Src2
	OpXor  // Dst = Src1 ^ Src2
	OpShl  // Dst = Src1 << (Src2 & 63)
	OpShr  // Dst = Src1 >> (Src2 & 63) (logical)
	OpSlt  // Dst = 1 if Src1 < Src2 (signed) else 0

	// Floating point (operands in the FP file unless noted).
	OpFMovI // Dst = float64 from Imm bit pattern
	OpFAdd  // Dst = Src1 + Src2
	OpFSub  // Dst = Src1 - Src2
	OpFMul  // Dst = Src1 * Src2
	OpFDiv  // Dst = Src1 / Src2
	OpFMA   // Dst = Src3 + Src1*Src2 (fused multiply-add)

	// Memory (8-byte words; effective address Src1 + Imm).
	OpLoad   // Dst = M[Src1+Imm] (integer file)
	OpStore  // M[Src1+Imm] = Src2 (integer file)
	OpFLoad  // Dst = M[Src1+Imm] (fp file)
	OpFStore // M[Src1+Imm] = Src2 (fp file)

	// Control flow. Branch target is Imm (absolute instruction index).
	OpBeq // if Src1 == Src2 goto Imm
	OpBne // if Src1 != Src2 goto Imm
	OpBlt // if Src1 <  Src2 goto Imm (signed)
	OpBge // if Src1 >= Src2 goto Imm (signed)
	OpJmp // goto Imm

	// OpAccel invokes the program's tightly-coupled accelerator.
	// Dst receives the accelerator result value (may be RZero when the
	// device produces none); Src1..Src3 carry argument values (typically
	// base addresses); Imm holds the device-specific operation kind.
	OpAccel

	numOps
)

var opNames = [numOps]string{
	OpNop: "nop", OpHalt: "halt",
	OpMovI: "movi", OpAddI: "addi", OpAdd: "add", OpSub: "sub",
	OpMul: "mul", OpDiv: "div", OpRem: "rem",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpShr: "shr", OpSlt: "slt",
	OpFMovI: "fmovi", OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv", OpFMA: "fma",
	OpLoad: "ld", OpStore: "st", OpFLoad: "fld", OpFStore: "fst",
	OpBeq: "beq", OpBne: "bne", OpBlt: "blt", OpBge: "bge", OpJmp: "jmp",
	OpAccel: "accel",
}

// String returns the assembly mnemonic for the opcode.
func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op?%d", int(op))
}

// IsBranch reports whether the opcode is a control-flow instruction
// (conditional branch or unconditional jump).
func (op Op) IsBranch() bool {
	switch op {
	case OpBeq, OpBne, OpBlt, OpBge, OpJmp:
		return true
	}
	return false
}

// IsCondBranch reports whether the opcode is a conditional branch.
func (op Op) IsCondBranch() bool {
	switch op {
	case OpBeq, OpBne, OpBlt, OpBge:
		return true
	}
	return false
}

// IsMem reports whether the opcode directly accesses memory
// (loads and stores; OpAccel traffic is reported by the device instead).
func (op Op) IsMem() bool {
	switch op {
	case OpLoad, OpStore, OpFLoad, OpFStore:
		return true
	}
	return false
}

// IsLoad reports whether the opcode reads memory.
func (op Op) IsLoad() bool { return op == OpLoad || op == OpFLoad }

// IsStore reports whether the opcode writes memory.
func (op Op) IsStore() bool { return op == OpStore || op == OpFStore }

// IsFP reports whether the opcode executes on the floating-point unit.
func (op Op) IsFP() bool {
	switch op {
	case OpFMovI, OpFAdd, OpFSub, OpFMul, OpFDiv, OpFMA, OpFLoad, OpFStore:
		return true
	}
	return false
}

// Instruction is one decoded instruction. The interpretation of the operand
// fields depends on the opcode; unused fields are zero.
type Instruction struct {
	Op   Op
	Dst  Reg
	Src1 Reg
	Src2 Reg
	Src3 Reg // third source: OpFMA accumulator, OpAccel third argument
	Imm  int64
}

// HasDst reports whether the instruction produces a register result.
func (in Instruction) HasDst() bool {
	switch in.Op {
	case OpNop, OpHalt, OpStore, OpFStore, OpBeq, OpBne, OpBlt, OpBge, OpJmp:
		return false
	case OpAccel:
		return in.Dst != RZero
	}
	return in.Dst != RZero
}

// Sources returns the registers the instruction reads, excluding RZero.
func (in Instruction) Sources() []Reg {
	return in.SourcesInto(nil)
}

// SourcesInto is Sources appending into a caller-provided buffer
// (truncated first), so tight analysis loops — the static-model walker
// reads sources for every instruction of multi-megabyte programs — can
// reuse one allocation. The returned slice aliases buf when capacity
// allows.
func (in Instruction) SourcesInto(buf []Reg) []Reg {
	srcs := buf[:0]
	add := func(r Reg) {
		if r != RZero {
			srcs = append(srcs, r)
		}
	}
	switch in.Op {
	case OpNop, OpHalt, OpMovI, OpFMovI, OpJmp:
		// no register sources
	case OpAddI, OpLoad, OpFLoad:
		add(in.Src1)
	case OpStore, OpFStore:
		add(in.Src1)
		add(in.Src2)
	case OpFMA:
		add(in.Src1)
		add(in.Src2)
		add(in.Src3)
	case OpAccel:
		add(in.Src1)
		add(in.Src2)
		add(in.Src3)
	default:
		add(in.Src1)
		add(in.Src2)
	}
	return srcs
}

// String renders the instruction in assembly form.
func (in Instruction) String() string {
	switch in.Op {
	case OpNop, OpHalt:
		return in.Op.String()
	case OpMovI, OpFMovI:
		return fmt.Sprintf("%s %s, %d", in.Op, in.Dst, in.Imm)
	case OpAddI:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Dst, in.Src1, in.Imm)
	case OpLoad, OpFLoad:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Dst, in.Imm, in.Src1)
	case OpStore, OpFStore:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Src2, in.Imm, in.Src1)
	case OpBeq, OpBne, OpBlt, OpBge:
		return fmt.Sprintf("%s %s, %s, @%d", in.Op, in.Src1, in.Src2, in.Imm)
	case OpJmp:
		return fmt.Sprintf("%s @%d", in.Op, in.Imm)
	case OpFMA:
		return fmt.Sprintf("%s %s, %s, %s, %s", in.Op, in.Dst, in.Src1, in.Src2, in.Src3)
	case OpAccel:
		return fmt.Sprintf("%s %s, %s, %s, %s, kind=%d", in.Op, in.Dst, in.Src1, in.Src2, in.Src3, in.Imm)
	default:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Dst, in.Src1, in.Src2)
	}
}
