package isa

import (
	"errors"
	"strings"
	"testing"
)

// buildSumLoop builds: sum integers 1..n into r1, store to memory[0x100].
func buildSumLoop(n int64) *Program {
	b := NewBuilder()
	b.MovI(R(1), 0) // sum
	b.MovI(R(2), 1) // i
	b.MovI(R(3), n) // limit
	b.Label("loop")
	b.Add(R(1), R(1), R(2))
	b.AddI(R(2), R(2), 1)
	b.Bge(R(3), R(2), "loop")
	b.MovI(R(4), 0x100)
	b.Store(R(1), R(4), 0)
	b.Halt()
	return b.MustBuild()
}

func TestInterpSumLoop(t *testing.T) {
	prog := buildSumLoop(100)
	it := NewInterp(prog, nil)
	if err := it.Run(100000); err != nil {
		t.Fatal(err)
	}
	if got := it.Reg(R(1)); got != 5050 {
		t.Errorf("sum = %d, want 5050", got)
	}
	if got := it.Mem.Load(0x100); got != 5050 {
		t.Errorf("mem[0x100] = %d, want 5050", got)
	}
	if it.Stats.Branches != 100 || it.Stats.Taken != 99 {
		t.Errorf("branches = %d taken = %d, want 100/99", it.Stats.Branches, it.Stats.Taken)
	}
	if it.Stats.Stores != 1 {
		t.Errorf("stores = %d, want 1", it.Stats.Stores)
	}
}

func TestInterpFuel(t *testing.T) {
	b := NewBuilder()
	b.Label("spin")
	b.Jmp("spin")
	b.Halt()
	prog := b.MustBuild()
	it := NewInterp(prog, nil)
	err := it.Run(1000)
	if !errors.Is(err, ErrFuelExhausted) {
		t.Errorf("err = %v, want ErrFuelExhausted", err)
	}
	if it.Stats.Retired != 1000 {
		t.Errorf("retired = %d, want 1000", it.Stats.Retired)
	}
}

func TestInterpRZero(t *testing.T) {
	b := NewBuilder()
	b.MovI(RZero, 77) // write discarded
	b.AddI(R(1), RZero, 5)
	b.Halt()
	it := NewInterp(b.MustBuild(), nil)
	if err := it.Run(100); err != nil {
		t.Fatal(err)
	}
	if it.Reg(RZero) != 0 {
		t.Error("R0 must read as zero")
	}
	if it.Reg(R(1)) != 5 {
		t.Errorf("r1 = %d, want 5", it.Reg(R(1)))
	}
}

func TestInterpFloatKernel(t *testing.T) {
	// r10 -> x[0..3], f-regs compute dot product of x with itself.
	b := NewBuilder()
	for i := 0; i < 4; i++ {
		b.InitFloat(uint64(0x200+8*i), float64(i+1))
	}
	b.MovI(R(10), 0x200)
	b.FMovI(F(0), 0) // acc
	for i := 0; i < 4; i++ {
		b.FLoad(F(1), R(10), int64(8*i))
		b.FMA(F(0), F(1), F(1), F(0))
	}
	b.MovI(R(11), 0x300)
	b.FStore(F(0), R(11), 0)
	b.Halt()
	it := NewInterp(b.MustBuild(), nil)
	if err := it.Run(1000); err != nil {
		t.Fatal(err)
	}
	if got := it.Mem.LoadFloat(0x300); got != 30 { // 1+4+9+16
		t.Errorf("dot = %v, want 30", got)
	}
	if got := it.FloatReg(F(0)); got != 30 {
		t.Errorf("f0 = %v, want 30", got)
	}
}

func TestInterpAccelWithoutDevice(t *testing.T) {
	b := NewBuilder()
	b.Accel(R(1), 0)
	b.Halt()
	it := NewInterp(b.MustBuild(), nil)
	if err := it.Run(10); err == nil {
		t.Error("expected error for accel without device")
	}
}

// echoDevice returns its first argument plus the kind, and stores its second
// argument to the address in its third.
type echoDevice struct{ pending []AccelStore }

func (d *echoDevice) Name() string { return "echo" }
func (d *echoDevice) Invoke(call AccelCall, mem WordReader) AccelResult {
	d.pending = nil
	var ops []AccelMemOp
	if call.Args[2] != 0 {
		d.pending = append(d.pending, AccelStore{Addr: call.Args[2], Data: call.Args[1]})
		ops = append(ops, AccelMemOp{Addr: call.Args[2], Size: 8, Store: true})
	}
	return AccelResult{Value: call.Args[0] + uint64(call.Kind), Latency: 3, MemOps: ops}
}
func (d *echoDevice) PendingStores() []AccelStore { return d.pending }

func TestInterpAccelInvocation(t *testing.T) {
	b := NewBuilder()
	b.MovI(R(1), 40)
	b.MovI(R(2), 99)
	b.MovI(R(3), 0x500)
	b.Accel(R(4), 2, R(1), R(2), R(3))
	b.Halt()
	dev := &echoDevice{}
	it := NewInterp(b.MustBuild(), dev)
	if err := it.Run(100); err != nil {
		t.Fatal(err)
	}
	if got := it.Reg(R(4)); got != 42 {
		t.Errorf("accel result = %d, want 42", got)
	}
	if got := it.Mem.Load(0x500); got != 99 {
		t.Errorf("accel store = %d, want 99", got)
	}
	if it.Stats.AccelInvocations != 1 || it.Stats.AccelMemOps != 1 {
		t.Errorf("accel stats = %+v", it.Stats)
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder()
	b.Jmp("nowhere")
	b.Halt()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "undefined label") {
		t.Errorf("err = %v, want undefined label", err)
	}
}

func TestBuilderDuplicateLabel(t *testing.T) {
	b := NewBuilder()
	b.Label("x")
	b.Nop()
	b.Label("x")
	b.Halt()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "duplicate label") {
		t.Errorf("err = %v, want duplicate label", err)
	}
}

func TestValidateRejectsBadPrograms(t *testing.T) {
	cases := []struct {
		name string
		prog Program
	}{
		{"empty", Program{}},
		{"no-halt", Program{Code: []Instruction{{Op: OpNop}}}},
		{"bad-branch", Program{Code: []Instruction{
			{Op: OpBeq, Src1: R(1), Src2: R(2), Imm: 99},
			{Op: OpHalt},
		}}},
		{"fp-class-violation", Program{Code: []Instruction{
			{Op: OpFAdd, Dst: R(1), Src1: F(0), Src2: F(1)},
			{Op: OpHalt},
		}}},
		{"int-class-violation", Program{Code: []Instruction{
			{Op: OpAdd, Dst: F(1), Src1: R(0), Src2: R(1)},
			{Op: OpHalt},
		}}},
		{"load-base-fp", Program{Code: []Instruction{
			{Op: OpLoad, Dst: R(1), Src1: F(0)},
			{Op: OpHalt},
		}}},
	}
	for _, c := range cases {
		if err := c.prog.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid program", c.name)
		}
	}
}

func TestDisassembleContainsLabels(t *testing.T) {
	prog := buildSumLoop(3)
	asm := prog.Disassemble()
	if !strings.Contains(asm, "loop:") {
		t.Errorf("disassembly missing label:\n%s", asm)
	}
	if !strings.Contains(asm, "bge") {
		t.Errorf("disassembly missing branch:\n%s", asm)
	}
}

func TestProgramNewMemoryImage(t *testing.T) {
	b := NewBuilder()
	b.InitWord(0x80, 11)
	b.Halt()
	prog := b.MustBuild()
	m := prog.NewMemoryImage()
	if m.Load(0x80) != 11 {
		t.Error("init word not applied")
	}
	if m.Writes != 0 {
		t.Error("init must not count as execution writes")
	}
	// Image is fresh each time.
	m.Store(0x80, 99)
	if prog.NewMemoryImage().Load(0x80) != 11 {
		t.Error("NewMemoryImage must return a fresh image")
	}
}
