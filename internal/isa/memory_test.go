package isa

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMemoryZeroFill(t *testing.T) {
	m := NewMemory()
	if got := m.Load(0x1000); got != 0 {
		t.Errorf("untouched memory = %d, want 0", got)
	}
	if m.Footprint() != 0 {
		t.Errorf("loads must not allocate pages, footprint = %d", m.Footprint())
	}
}

func TestMemoryStoreLoad(t *testing.T) {
	m := NewMemory()
	m.Store(0x40, 123)
	m.Store(0x48, 456)
	if got := m.Load(0x40); got != 123 {
		t.Errorf("Load(0x40) = %d, want 123", got)
	}
	if got := m.Load(0x48); got != 456 {
		t.Errorf("Load(0x48) = %d, want 456", got)
	}
	// Word granularity: addresses within the same word alias.
	if got := m.Load(0x43); got != 123 {
		t.Errorf("Load(0x43) = %d, want 123 (same word as 0x40)", got)
	}
}

func TestMemoryFloat(t *testing.T) {
	m := NewMemory()
	m.StoreFloat(0x100, 3.14159)
	if got := m.LoadFloat(0x100); got != 3.14159 {
		t.Errorf("LoadFloat = %v, want 3.14159", got)
	}
	m.StoreFloat(0x108, math.Inf(-1))
	if got := m.LoadFloat(0x108); !math.IsInf(got, -1) {
		t.Errorf("LoadFloat = %v, want -Inf", got)
	}
}

func TestMemoryAccessCounters(t *testing.T) {
	m := NewMemory()
	m.Store(0, 1)
	m.Store(8, 2)
	_ = m.Load(0)
	if m.Writes != 2 || m.Reads != 1 {
		t.Errorf("counters = (r=%d, w=%d), want (1, 2)", m.Reads, m.Writes)
	}
}

func TestMemoryCloneIndependence(t *testing.T) {
	m := NewMemory()
	m.Store(0x2000, 7)
	c := m.Clone()
	c.Store(0x2000, 9)
	if m.Load(0x2000) != 7 {
		t.Error("mutating clone affected original")
	}
	if c.Load(0x2000) != 9 {
		t.Error("clone lost its own write")
	}
}

func TestMemoryEqual(t *testing.T) {
	a, b := NewMemory(), NewMemory()
	if !a.Equal(b) {
		t.Error("two empty memories must be equal")
	}
	a.Store(0x10, 5)
	if a.Equal(b) {
		t.Error("memories with different contents reported equal")
	}
	b.Store(0x10, 5)
	if !a.Equal(b) {
		t.Error("identical contents reported unequal")
	}
	// A zero store allocates a page but must still compare equal to an
	// absent page.
	b.Store(0x9000, 0)
	if !a.Equal(b) || !b.Equal(a) {
		t.Error("explicit zero store must equal absent page")
	}
}

func TestMemoryCrossPage(t *testing.T) {
	m := NewMemory()
	// Adjacent words straddling a 4 KiB page boundary.
	m.Store(4096-8, 1)
	m.Store(4096, 2)
	if m.Load(4096-8) != 1 || m.Load(4096) != 2 {
		t.Error("cross-page adjacent words corrupted")
	}
	if m.Footprint() != 2 {
		t.Errorf("footprint = %d, want 2 pages", m.Footprint())
	}
}

// Property: a random sequence of stores behaves like a map from word-aligned
// address to value.
func TestMemoryMatchesMapModel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m := NewMemory()
	model := make(map[uint64]uint64)
	for i := 0; i < 10000; i++ {
		addr := uint64(rng.Intn(1<<16)) &^ 7
		if rng.Intn(2) == 0 {
			v := rng.Uint64()
			m.Store(addr, v)
			model[addr] = v
		} else if got, want := m.Load(addr), model[addr]; got != want {
			t.Fatalf("Load(%#x) = %d, want %d", addr, got, want)
		}
	}
}

// Property: Clone is always Equal to its source.
func TestMemoryClonePropertyQuick(t *testing.T) {
	f := func(addrs []uint16, vals []uint64) bool {
		m := NewMemory()
		for i, a := range addrs {
			var v uint64 = 1
			if i < len(vals) {
				v = vals[i]
			}
			m.Store(uint64(a), v)
		}
		return m.Clone().Equal(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
