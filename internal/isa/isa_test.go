package isa

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRegNaming(t *testing.T) {
	cases := []struct {
		r    Reg
		want string
	}{
		{RZero, "zero"},
		{R(1), "r1"},
		{R(31), "r31"},
		{F(0), "f0"},
		{F(31), "f31"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("Reg(%d).String() = %q, want %q", c.r, got, c.want)
		}
	}
	if R(5).IsFP() {
		t.Error("R(5) reported as FP")
	}
	if !F(5).IsFP() {
		t.Error("F(5) not reported as FP")
	}
}

func TestRegConstructorsPanicOutOfRange(t *testing.T) {
	for _, f := range []func(){
		func() { R(-1) }, func() { R(32) },
		func() { F(-1) }, func() { F(32) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for out-of-range register")
				}
			}()
			f()
		}()
	}
}

func TestOpClassification(t *testing.T) {
	if !OpBeq.IsBranch() || !OpJmp.IsBranch() || OpAdd.IsBranch() {
		t.Error("IsBranch misclassifies")
	}
	if !OpBeq.IsCondBranch() || OpJmp.IsCondBranch() {
		t.Error("IsCondBranch misclassifies")
	}
	if !OpLoad.IsMem() || !OpFStore.IsMem() || OpAccel.IsMem() {
		t.Error("IsMem misclassifies")
	}
	if !OpLoad.IsLoad() || OpStore.IsLoad() {
		t.Error("IsLoad misclassifies")
	}
	if !OpFStore.IsStore() || OpFLoad.IsStore() {
		t.Error("IsStore misclassifies")
	}
	if !OpFMA.IsFP() || OpAdd.IsFP() {
		t.Error("IsFP misclassifies")
	}
}

func TestInstructionSources(t *testing.T) {
	cases := []struct {
		in   Instruction
		want int
	}{
		{Instruction{Op: OpNop}, 0},
		{Instruction{Op: OpMovI, Dst: R(1), Imm: 5}, 0},
		{Instruction{Op: OpAddI, Dst: R(1), Src1: R(2)}, 1},
		{Instruction{Op: OpAddI, Dst: R(1), Src1: RZero}, 0},
		{Instruction{Op: OpAdd, Dst: R(1), Src1: R(2), Src2: R(3)}, 2},
		{Instruction{Op: OpStore, Src1: R(2), Src2: R(3)}, 2},
		{Instruction{Op: OpFMA, Dst: F(0), Src1: F(1), Src2: F(2), Src3: F(3)}, 3},
		{Instruction{Op: OpAccel, Dst: R(1), Src1: R(2), Src2: R(3), Src3: R(4)}, 3},
		{Instruction{Op: OpJmp, Imm: 0}, 0},
	}
	for _, c := range cases {
		if got := len(c.in.Sources()); got != c.want {
			t.Errorf("%v Sources() returned %d regs, want %d", c.in, got, c.want)
		}
	}
}

func TestHasDst(t *testing.T) {
	if (Instruction{Op: OpStore, Src1: R(1), Src2: R(2)}).HasDst() {
		t.Error("store has no dst")
	}
	if (Instruction{Op: OpAdd, Dst: RZero, Src1: R(1), Src2: R(2)}).HasDst() {
		t.Error("write to RZero is not a dst")
	}
	if !(Instruction{Op: OpLoad, Dst: R(3), Src1: R(1)}).HasDst() {
		t.Error("load has a dst")
	}
}

func negU64(v int64) uint64 { return uint64(-v) }

// minI64U is math.MinInt64 reinterpreted as uint64.
const minI64U = 1 << 63

func TestEvalALU(t *testing.T) {
	cases := []struct {
		op   Op
		a, b uint64
		want uint64
	}{
		{OpAdd, 2, 3, 5},
		{OpSub, 2, 3, ^uint64(0)}, // -1
		{OpMul, 7, 6, 42},
		{OpDiv, 42, 6, 7},
		{OpDiv, negU64(42), 6, negU64(7)},
		{OpDiv, 1, 0, 0},
		{OpDiv, minI64U, negU64(1), minI64U},
		{OpRem, 43, 6, 1},
		{OpRem, 1, 0, 0},
		{OpRem, minI64U, negU64(1), 0},
		{OpAnd, 0b1100, 0b1010, 0b1000},
		{OpOr, 0b1100, 0b1010, 0b1110},
		{OpXor, 0b1100, 0b1010, 0b0110},
		{OpShl, 1, 4, 16},
		{OpShl, 1, 64, 1}, // shift amount masked to 6 bits
		{OpShr, 16, 4, 1},
		{OpSlt, 1, 2, 1},
		{OpSlt, 2, 1, 0},
		{OpSlt, negU64(1), 0, 1},
	}
	for _, c := range cases {
		if got := EvalALU(c.op, c.a, c.b); got != c.want {
			t.Errorf("EvalALU(%s, %d, %d) = %d, want %d", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestEvalFP(t *testing.T) {
	bits := math.Float64bits
	cases := []struct {
		op   Op
		a, b float64
		want float64
	}{
		{OpFAdd, 1.5, 2.25, 3.75},
		{OpFSub, 1.5, 2.25, -0.75},
		{OpFMul, 1.5, 2.0, 3.0},
		{OpFDiv, 3.0, 2.0, 1.5},
	}
	for _, c := range cases {
		if got := EvalFP(c.op, bits(c.a), bits(c.b)); got != bits(c.want) {
			t.Errorf("EvalFP(%s, %v, %v) = %v, want %v",
				c.op, c.a, c.b, math.Float64frombits(got), c.want)
		}
	}
	// Division by zero produces +Inf, as IEEE-754 requires.
	if got := math.Float64frombits(EvalFP(OpFDiv, bits(1.0), bits(0.0))); !math.IsInf(got, 1) {
		t.Errorf("1.0/0.0 = %v, want +Inf", got)
	}
}

func TestEvalBranch(t *testing.T) {
	neg := negU64(5)
	cases := []struct {
		op   Op
		a, b uint64
		want bool
	}{
		{OpBeq, 4, 4, true}, {OpBeq, 4, 5, false},
		{OpBne, 4, 5, true}, {OpBne, 4, 4, false},
		{OpBlt, neg, 3, true}, {OpBlt, 3, neg, false},
		{OpBge, 3, 3, true}, {OpBge, neg, 3, false},
	}
	for _, c := range cases {
		if got := EvalBranch(c.op, c.a, c.b); got != c.want {
			t.Errorf("EvalBranch(%s, %d, %d) = %v, want %v", c.op, c.a, c.b, got, c.want)
		}
	}
}

// Property: EvalALU add/sub are inverses, and logical ops match Go operators.
func TestEvalALUProperties(t *testing.T) {
	if err := quick.Check(func(a, b uint64) bool {
		if EvalALU(OpSub, EvalALU(OpAdd, a, b), b) != a {
			return false
		}
		if EvalALU(OpXor, EvalALU(OpXor, a, b), b) != a {
			return false
		}
		return EvalALU(OpAnd, a, b) == a&b && EvalALU(OpOr, a, b) == a|b
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestInstructionString(t *testing.T) {
	cases := []struct {
		in   Instruction
		want string
	}{
		{Instruction{Op: OpNop}, "nop"},
		{Instruction{Op: OpMovI, Dst: R(1), Imm: -3}, "movi r1, -3"},
		{Instruction{Op: OpAddI, Dst: R(2), Src1: R(1), Imm: 8}, "addi r2, r1, 8"},
		{Instruction{Op: OpLoad, Dst: R(2), Src1: R(1), Imm: 16}, "ld r2, 16(r1)"},
		{Instruction{Op: OpStore, Src1: R(1), Src2: R(2), Imm: 8}, "st r2, 8(r1)"},
		{Instruction{Op: OpBne, Src1: R(1), Src2: RZero, Imm: 7}, "bne r1, zero, @7"},
		{Instruction{Op: OpJmp, Imm: 3}, "jmp @3"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}
