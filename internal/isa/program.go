package isa

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Program is an executable unit: a code sequence plus an initial memory
// image description. Branch targets are absolute instruction indices
// ("addresses" in units of instructions).
type Program struct {
	Code []Instruction

	// Init is applied to memory before execution starts.
	Init []MemInit

	// Labels maps symbolic names to instruction indices (for diagnostics).
	//lint:exempt-field R8 Program.Labels diagnostics only; execution and identity depend on Code/Init alone
	Labels map[string]int
}

// MemInit seeds one 8-byte memory word before the program runs.
type MemInit struct {
	Addr uint64
	Data uint64
}

// NewMemoryImage returns a fresh Memory with the program's initial image
// applied. Access counters are reset afterwards so they reflect execution
// only.
func (p *Program) NewMemoryImage() *Memory {
	m := NewMemory()
	for _, mi := range p.Init {
		m.Store(mi.Addr, mi.Data)
	}
	m.Reads, m.Writes = 0, 0
	return m
}

// Validate checks structural invariants: branch targets in range, register
// classes consistent with opcodes, and a reachable halt. It returns the
// first violation found.
func (p *Program) Validate() error {
	n := len(p.Code)
	if n == 0 {
		return fmt.Errorf("isa: empty program")
	}
	sawHalt := false
	for i, in := range p.Code {
		if in.Op >= numOps {
			return fmt.Errorf("isa: @%d: invalid opcode %d", i, int(in.Op))
		}
		if in.Op == OpHalt {
			sawHalt = true
		}
		if in.Op.IsBranch() {
			if in.Imm < 0 || in.Imm >= int64(n) {
				return fmt.Errorf("isa: @%d: branch target %d out of range [0,%d)", i, in.Imm, n)
			}
		}
		if err := checkRegClasses(in); err != nil {
			return fmt.Errorf("isa: @%d (%s): %w", i, in, err)
		}
	}
	if !sawHalt {
		return fmt.Errorf("isa: program has no halt instruction")
	}
	return nil
}

func checkRegClasses(in Instruction) error {
	wantFP := func(r Reg, what string) error {
		if !r.IsFP() {
			return fmt.Errorf("%s must be an fp register, got %s", what, r)
		}
		return nil
	}
	wantInt := func(r Reg, what string) error {
		if r.IsFP() {
			return fmt.Errorf("%s must be an integer register, got %s", what, r)
		}
		return nil
	}
	switch in.Op {
	case OpFMovI:
		return wantFP(in.Dst, "dst")
	case OpFAdd, OpFSub, OpFMul, OpFDiv:
		for _, c := range []struct {
			r    Reg
			what string
		}{{in.Dst, "dst"}, {in.Src1, "src1"}, {in.Src2, "src2"}} {
			if err := wantFP(c.r, c.what); err != nil {
				return err
			}
		}
	case OpFMA:
		for _, c := range []struct {
			r    Reg
			what string
		}{{in.Dst, "dst"}, {in.Src1, "src1"}, {in.Src2, "src2"}, {in.Src3, "src3"}} {
			if err := wantFP(c.r, c.what); err != nil {
				return err
			}
		}
	case OpFLoad:
		if err := wantFP(in.Dst, "dst"); err != nil {
			return err
		}
		return wantInt(in.Src1, "base")
	case OpFStore:
		if err := wantFP(in.Src2, "value"); err != nil {
			return err
		}
		return wantInt(in.Src1, "base")
	case OpLoad:
		if err := wantInt(in.Dst, "dst"); err != nil {
			return err
		}
		return wantInt(in.Src1, "base")
	case OpStore:
		if err := wantInt(in.Src2, "value"); err != nil {
			return err
		}
		return wantInt(in.Src1, "base")
	case OpMovI, OpAddI, OpAdd, OpSub, OpMul, OpDiv, OpRem,
		OpAnd, OpOr, OpXor, OpShl, OpShr, OpSlt:
		if err := wantInt(in.Dst, "dst"); err != nil {
			return err
		}
		if err := wantInt(in.Src1, "src1"); err != nil {
			return err
		}
		return wantInt(in.Src2, "src2")
	case OpBeq, OpBne, OpBlt, OpBge:
		if err := wantInt(in.Src1, "src1"); err != nil {
			return err
		}
		return wantInt(in.Src2, "src2")
	}
	return nil
}

// Disassemble renders the whole program, one instruction per line, with
// label annotations.
func (p *Program) Disassemble() string {
	names := make([]string, 0, len(p.Labels))
	for name := range p.Labels {
		names = append(names, name)
	}
	sort.Strings(names)
	byIndex := make(map[int][]string, len(p.Labels))
	for _, name := range names {
		byIndex[p.Labels[name]] = append(byIndex[p.Labels[name]], name)
	}
	var b strings.Builder
	for i, in := range p.Code {
		for _, l := range byIndex[i] {
			fmt.Fprintf(&b, "%s:\n", l)
		}
		fmt.Fprintf(&b, "  @%-5d %s\n", i, in)
	}
	return b.String()
}

// Builder assembles a Program with symbolic labels. Forward references are
// resolved at Build time. The zero value is not usable; call NewBuilder.
type Builder struct {
	code   []Instruction
	labels map[string]int
	// fixups[i] names the label the branch at index i targets.
	fixups map[int]string
	init   []MemInit
	errs   []error
}

// NewBuilder returns an empty program builder.
func NewBuilder() *Builder {
	return &Builder{
		labels: make(map[string]int),
		fixups: make(map[int]string),
	}
}

// Len returns the number of instructions emitted so far (the index of the
// next instruction).
func (b *Builder) Len() int { return len(b.code) }

// Label binds name to the next instruction index.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("isa: duplicate label %q", name))
		return
	}
	b.labels[name] = len(b.code)
}

// Emit appends a raw instruction and returns its index.
func (b *Builder) Emit(in Instruction) int {
	b.code = append(b.code, in)
	return len(b.code) - 1
}

// InitWord seeds the initial memory image with an 8-byte word.
func (b *Builder) InitWord(addr uint64, data uint64) {
	b.init = append(b.init, MemInit{Addr: addr, Data: data})
}

// InitFloat seeds the initial memory image with a float64.
func (b *Builder) InitFloat(addr uint64, v float64) {
	b.InitWord(addr, math.Float64bits(v))
}

// Convenience emitters. Branch emitters take a label name.

func (b *Builder) Nop()  { b.Emit(Instruction{Op: OpNop}) }
func (b *Builder) Halt() { b.Emit(Instruction{Op: OpHalt}) }

func (b *Builder) MovI(dst Reg, imm int64) { b.Emit(Instruction{Op: OpMovI, Dst: dst, Imm: imm}) }
func (b *Builder) AddI(dst, src Reg, imm int64) {
	b.Emit(Instruction{Op: OpAddI, Dst: dst, Src1: src, Imm: imm})
}
func (b *Builder) Add(dst, s1, s2 Reg) { b.emit3(OpAdd, dst, s1, s2) }
func (b *Builder) Sub(dst, s1, s2 Reg) { b.emit3(OpSub, dst, s1, s2) }
func (b *Builder) Mul(dst, s1, s2 Reg) { b.emit3(OpMul, dst, s1, s2) }
func (b *Builder) Div(dst, s1, s2 Reg) { b.emit3(OpDiv, dst, s1, s2) }
func (b *Builder) Rem(dst, s1, s2 Reg) { b.emit3(OpRem, dst, s1, s2) }
func (b *Builder) And(dst, s1, s2 Reg) { b.emit3(OpAnd, dst, s1, s2) }
func (b *Builder) Or(dst, s1, s2 Reg)  { b.emit3(OpOr, dst, s1, s2) }
func (b *Builder) Xor(dst, s1, s2 Reg) { b.emit3(OpXor, dst, s1, s2) }
func (b *Builder) Shl(dst, s1, s2 Reg) { b.emit3(OpShl, dst, s1, s2) }
func (b *Builder) Shr(dst, s1, s2 Reg) { b.emit3(OpShr, dst, s1, s2) }
func (b *Builder) Slt(dst, s1, s2 Reg) { b.emit3(OpSlt, dst, s1, s2) }

func (b *Builder) FMovI(dst Reg, v float64) {
	b.Emit(Instruction{Op: OpFMovI, Dst: dst, Imm: int64(math.Float64bits(v))})
}
func (b *Builder) FAdd(dst, s1, s2 Reg) { b.emit3(OpFAdd, dst, s1, s2) }
func (b *Builder) FSub(dst, s1, s2 Reg) { b.emit3(OpFSub, dst, s1, s2) }
func (b *Builder) FMul(dst, s1, s2 Reg) { b.emit3(OpFMul, dst, s1, s2) }
func (b *Builder) FDiv(dst, s1, s2 Reg) { b.emit3(OpFDiv, dst, s1, s2) }
func (b *Builder) FMA(dst, s1, s2, acc Reg) {
	b.Emit(Instruction{Op: OpFMA, Dst: dst, Src1: s1, Src2: s2, Src3: acc})
}

func (b *Builder) Load(dst, base Reg, off int64) {
	b.Emit(Instruction{Op: OpLoad, Dst: dst, Src1: base, Imm: off})
}
func (b *Builder) Store(val, base Reg, off int64) {
	b.Emit(Instruction{Op: OpStore, Src1: base, Src2: val, Imm: off})
}
func (b *Builder) FLoad(dst, base Reg, off int64) {
	b.Emit(Instruction{Op: OpFLoad, Dst: dst, Src1: base, Imm: off})
}
func (b *Builder) FStore(val, base Reg, off int64) {
	b.Emit(Instruction{Op: OpFStore, Src1: base, Src2: val, Imm: off})
}

func (b *Builder) Beq(s1, s2 Reg, label string) { b.branch(OpBeq, s1, s2, label) }
func (b *Builder) Bne(s1, s2 Reg, label string) { b.branch(OpBne, s1, s2, label) }
func (b *Builder) Blt(s1, s2 Reg, label string) { b.branch(OpBlt, s1, s2, label) }
func (b *Builder) Bge(s1, s2 Reg, label string) { b.branch(OpBge, s1, s2, label) }
func (b *Builder) Jmp(label string) {
	idx := b.Emit(Instruction{Op: OpJmp})
	b.fixups[idx] = label
}

// Accel emits an accelerator invocation.
func (b *Builder) Accel(dst Reg, kind int64, args ...Reg) {
	in := Instruction{Op: OpAccel, Dst: dst, Imm: kind}
	if len(args) > 3 {
		b.errs = append(b.errs, fmt.Errorf("isa: accel takes at most 3 register args, got %d", len(args)))
		args = args[:3]
	}
	regs := []*Reg{&in.Src1, &in.Src2, &in.Src3}
	for i, a := range args {
		*regs[i] = a
	}
	b.Emit(in)
}

func (b *Builder) emit3(op Op, dst, s1, s2 Reg) {
	b.Emit(Instruction{Op: op, Dst: dst, Src1: s1, Src2: s2})
}

func (b *Builder) branch(op Op, s1, s2 Reg, label string) {
	idx := b.Emit(Instruction{Op: op, Src1: s1, Src2: s2})
	b.fixups[idx] = label
}

// Build resolves labels and returns the validated program.
func (b *Builder) Build() (*Program, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	code := make([]Instruction, len(b.code))
	copy(code, b.code)
	idxs := make([]int, 0, len(b.fixups))
	for idx := range b.fixups {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	for _, idx := range idxs {
		label := b.fixups[idx]
		target, ok := b.labels[label]
		if !ok {
			return nil, fmt.Errorf("isa: undefined label %q at @%d", label, idx)
		}
		code[idx].Imm = int64(target)
	}
	labels := make(map[string]int, len(b.labels))
	for k, v := range b.labels {
		labels[k] = v
	}
	p := &Program{Code: code, Init: append([]MemInit(nil), b.init...), Labels: labels}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build that panics on error, for tests and generators whose
// inputs are statically known to be valid.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
