package isa

import "sort"

// Memory is the functional (architectural) memory image shared by the
// interpreter and the simulator. It is a sparse, paged store of 8-byte words
// over a 64-bit byte address space. Reads of untouched memory return zero.
//
// Memory holds architectural state only; timing (caches, DRAM) is modeled
// separately in internal/mem. Addresses are byte addresses but storage is at
// word granularity: accesses use the word containing the address, so callers
// should keep 8-byte alignment for predictable overlap semantics.
type Memory struct {
	pages map[uint64]*page

	// Reads and Writes count functional word accesses (useful in tests).
	Reads  uint64
	Writes uint64
}

const (
	pageWords = 512 // 4 KiB pages
	pageShift = 12
)

type page [pageWords]uint64

// NewMemory returns an empty memory image.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*page)}
}

func wordIndex(addr uint64) (pageID uint64, idx int) {
	return addr >> pageShift, int((addr >> 3) & (pageWords - 1))
}

// Load returns the 8-byte word containing byte address addr.
func (m *Memory) Load(addr uint64) uint64 {
	m.Reads++
	pid, idx := wordIndex(addr)
	p := m.pages[pid]
	if p == nil {
		return 0
	}
	return p[idx]
}

// Store writes the 8-byte word containing byte address addr.
func (m *Memory) Store(addr uint64, val uint64) {
	m.Writes++
	pid, idx := wordIndex(addr)
	p := m.pages[pid]
	if p == nil {
		p = new(page)
		m.pages[pid] = p
	}
	p[idx] = val
}

// LoadFloat returns the float64 stored at addr.
func (m *Memory) LoadFloat(addr uint64) float64 { return fromBits(m.Load(addr)) }

// StoreFloat writes a float64 at addr.
func (m *Memory) StoreFloat(addr uint64, v float64) { m.Store(addr, toBits(v)) }

// Clone returns a deep copy of the memory image (access counters reset).
// It is used by tests that compare interpreter and simulator final states
// starting from identical initial images.
func (m *Memory) Clone() *Memory {
	c := NewMemory()
	for pid, p := range m.pages {
		cp := *p
		c.pages[pid] = &cp
	}
	return c
}

// PageState is one resident page of a MemoryState snapshot.
type PageState struct {
	ID   uint64
	Data [pageWords]uint64
}

// MemoryState is a deterministic deep snapshot of a Memory image, including
// the access counters (unlike Clone, which resets them — checkpoint resume
// must reproduce counter values bit-identically). Pages are sorted by ID so
// two snapshots of equal images are deeply equal regardless of map iteration
// order.
type MemoryState struct {
	Pages  []PageState
	Reads  uint64
	Writes uint64
}

// Snapshot captures the full memory image, counters included.
func (m *Memory) Snapshot() MemoryState {
	s := MemoryState{Reads: m.Reads, Writes: m.Writes}
	ids := make([]uint64, 0, len(m.pages))
	for pid := range m.pages {
		ids = append(ids, pid)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, pid := range ids {
		s.Pages = append(s.Pages, PageState{ID: pid, Data: *m.pages[pid]})
	}
	return s
}

// RestoreMemory builds a Memory image from a snapshot.
func RestoreMemory(s MemoryState) *Memory {
	m := NewMemory()
	m.Reads, m.Writes = s.Reads, s.Writes
	for _, p := range s.Pages {
		cp := page(p.Data)
		m.pages[p.ID] = &cp
	}
	return m
}

// Equal reports whether two memory images hold identical word contents.
// Zero-filled pages are treated the same as absent pages.
func (m *Memory) Equal(o *Memory) bool {
	return m.contains(o) && o.contains(m)
}

// contains reports whether every nonzero word of o matches m.
func (m *Memory) contains(o *Memory) bool {
	for pid, op := range o.pages {
		mp := m.pages[pid]
		for i, w := range op {
			var mw uint64
			if mp != nil {
				mw = mp[i]
			}
			if w != mw {
				return false
			}
		}
	}
	return true
}

// Footprint returns the number of resident pages (diagnostics).
func (m *Memory) Footprint() int { return len(m.pages) }
