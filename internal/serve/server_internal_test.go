package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/workload"
)

func newTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// wedge occupies one worker with a call that blocks until the returned
// release func runs.
func wedge(t *testing.T, s *Server, key string) (release func()) {
	t.Helper()
	block := make(chan struct{})
	started := make(chan struct{})
	c, _, err := s.admit(key, 0, scenario.Digest{}, false, func(*call) {
		close(started)
		<-block
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("wedge never started")
	}
	return func() {
		close(block)
		<-c.done
	}
}

// TestAdmitCoalesces: a duplicate key joins the in-flight call instead
// of creating a second one.
func TestAdmitCoalesces(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	block := make(chan struct{})
	started := make(chan struct{})
	ran := 0
	c1, joined1, err := s.admit("k", 0, scenario.Digest{}, false, func(*call) {
		ran++
		close(started)
		<-block
	})
	if err != nil || joined1 {
		t.Fatalf("leader: joined=%v err=%v", joined1, err)
	}
	<-started
	c2, joined2, err := s.admit("k", 0, scenario.Digest{}, false, func(*call) { ran++ })
	if err != nil || !joined2 {
		t.Fatalf("duplicate: joined=%v err=%v", joined2, err)
	}
	if c1 != c2 {
		t.Fatal("duplicate got a different call")
	}
	close(block)
	<-c1.done
	if ran != 1 {
		t.Fatalf("run executed %d times, want 1", ran)
	}
	if got := s.coalesced.Load(); got != 1 {
		t.Fatalf("coalesced = %d, want 1", got)
	}
	// The call left the map: a later identical key is a fresh call.
	s.mu.Lock()
	_, still := s.calls["k"]
	s.mu.Unlock()
	if still {
		t.Fatal("completed call still in coalescing map")
	}
}

// TestFamilyParking: while a warmup family's leader is in flight, a
// second job of the same family parks outside the pool, then flushes
// when the leader completes.
func TestFamilyParking(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	fam := scenario.Digest{1}
	block := make(chan struct{})
	started := make(chan struct{})
	c1, _, err := s.admit("lead", 0, fam, true, func(*call) {
		close(started)
		<-block
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started

	followerRan := make(chan struct{})
	c2, joined, err := s.admit("follow", 0, fam, true, func(*call) { close(followerRan) })
	if err != nil || joined {
		t.Fatalf("follower: joined=%v err=%v", joined, err)
	}
	if got := s.parked.Load(); got != 1 {
		t.Fatalf("parked = %d, want 1", got)
	}
	// Parked means not in the pool: only the leader was submitted.
	if m := s.pool.Metrics(); m.Submitted != 1 {
		t.Fatalf("pool submitted = %d, want 1 (follower must be parked)", m.Submitted)
	}
	select {
	case <-followerRan:
		t.Fatal("follower ran while family was still warming")
	case <-time.After(20 * time.Millisecond):
	}

	close(block)
	<-c1.done
	select {
	case <-followerRan:
	case <-time.After(10 * time.Second):
		t.Fatal("follower never flushed after leader completed")
	}
	<-c2.done

	// The family is warm now: a third job schedules straight away.
	c3, _, err := s.admit("third", 0, fam, true, func(*call) {})
	if err != nil {
		t.Fatal(err)
	}
	<-c3.done
	if got := s.parked.Load(); got != 1 {
		t.Fatalf("parked = %d after warm family, want still 1", got)
	}
}

// TestAbandonedCallSkipsExecution: when every waiter leaves before the
// job reaches a worker, the worker completes it without running the
// work.
func TestAbandonedCallSkipsExecution(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	release := wedge(t, s, "wedge")

	ran := false
	c, _, err := s.admit("x", 0, scenario.Digest{}, false, func(*call) { ran = true })
	if err != nil {
		t.Fatal(err)
	}
	s.leave(c)
	if got := s.abandoned.Load(); got != 1 {
		t.Fatalf("abandoned = %d, want 1", got)
	}
	release()
	<-c.done
	if ran {
		t.Fatal("abandoned call still executed")
	}
	if !errors.Is(c.err, context.Canceled) {
		t.Fatalf("abandoned call err = %v, want context.Canceled", c.err)
	}
}

// TestAbandonedCallRevivedByNewWaiter: a duplicate arriving after the
// last waiter left (but before execution) revives the scheduled call.
func TestAbandonedCallRevivedByNewWaiter(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	release := wedge(t, s, "wedge")

	ran := false
	c1, _, err := s.admit("x", 0, scenario.Digest{}, false, func(*call) { ran = true })
	if err != nil {
		t.Fatal(err)
	}
	s.leave(c1)
	c2, joined, err := s.admit("x", 0, scenario.Digest{}, false, func(*call) {})
	if err != nil || !joined || c2 != c1 {
		t.Fatalf("revival: joined=%v err=%v same=%v", joined, err, c2 == c1)
	}
	release()
	<-c1.done
	if !ran {
		t.Fatal("revived call did not execute")
	}
	if c1.err != nil {
		t.Fatal(c1.err)
	}
}

// TestAdmitAfterClose fails cleanly.
func TestAdmitAfterClose(t *testing.T) {
	s, err := New(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, _, err := s.admit("k", 0, scenario.Digest{}, false, func(*call) {}); err == nil {
		t.Fatal("admit after Close succeeded")
	}
}

func testRunBody(t *testing.T, seed int64) []byte {
	t.Helper()
	cfg := workload.SyntheticConfig{
		Units: 8, UnitLen: 12, Regions: 4, RegionLen: 30,
		AccelLatency: 12, Seed: seed,
	}
	body, err := json.Marshal(RunRequest{
		Config:   sim.HighPerfConfig(),
		Workload: WorkloadSpec{Kind: "synthetic", Synthetic: &cfg},
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestRunQueueFull503: with the worker wedged and the queue at
// capacity, a new submission is rejected with 503 — deterministically,
// because nothing can drain until the wedge releases.
func TestRunQueueFull503(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1, QueueDepth: 1})
	release := wedge(t, s, "wedge")
	if _, _, err := s.admit("fill", 0, scenario.Digest{}, false, func(*call) {}); err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader(testRunBody(t, 1)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	var er ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil || er.Error == "" {
		t.Fatalf("503 body: %q err %v", er.Error, err)
	}
	if got := s.rejected.Load(); got != 1 {
		t.Fatalf("rejected = %d, want 1", got)
	}
	release()
}

// TestRunClientGone499: a request whose context ends while its job is
// still queued gets 499 and abandons the call.
func TestRunClientGone499(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1, QueueDepth: 4})
	release := wedge(t, s, "wedge")

	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest(http.MethodPost, "/v1/run", bytes.NewReader(testRunBody(t, 2))).WithContext(ctx)
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Handler().ServeHTTP(rec, req)
	}()
	// Wait until the request's job is queued behind the wedge, then
	// pull the client away.
	deadline := time.Now().Add(10 * time.Second)
	for s.pool.Metrics().Submitted < 2 {
		if time.Now().After(deadline) {
			t.Fatal("request never reached the pool")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	<-done
	if rec.Code != statusClientGone {
		t.Fatalf("status %d, want %d", rec.Code, statusClientGone)
	}
	if got := s.abandoned.Load(); got != 1 {
		t.Fatalf("abandoned = %d, want 1", got)
	}
	release()
}

// TestDecodeValidation: the handlers reject malformed requests with
// 400s and wrong methods with 405, before any scheduling.
func TestDecodeValidation(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(path, body string) int {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := post("/v1/run", `{"bogus_field": 1}`); code != http.StatusBadRequest {
		t.Errorf("unknown field: %d, want 400", code)
	}
	if code := post("/v1/run", `{"config": {}, "workload": {"kind": "nope"}}`); code != http.StatusBadRequest {
		t.Errorf("unknown workload kind: %d, want 400", code)
	}
	if code := post("/v1/run", `{not json`); code != http.StatusBadRequest {
		t.Errorf("bad json: %d, want 400", code)
	}
	var rr RunRequest
	if err := json.Unmarshal(testRunBody(t, 3), &rr); err != nil {
		t.Fatal(err)
	}
	rr.Program = "sideways"
	b, _ := json.Marshal(rr)
	if code := post("/v1/run", string(b)); code != http.StatusBadRequest {
		t.Errorf("unknown program: %d, want 400", code)
	}
	resp, err := http.Get(ts.URL + "/v1/run")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/run: %d, want 405", resp.StatusCode)
	}
	if s.pool.Metrics().Submitted != 0 {
		t.Error("invalid requests reached the pool")
	}
}

// TestBuildWorkloadMemoized: one spec, spelled twice, builds once and
// returns the same pointer (program-digest memoization depends on it).
func TestBuildWorkloadMemoized(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	cfg := workload.SyntheticConfig{
		Units: 8, UnitLen: 12, Regions: 4, RegionLen: 30,
		AccelLatency: 12, Seed: 9,
	}
	a, err := s.buildWorkload(WorkloadSpec{Kind: "synthetic", Synthetic: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	b, err := s.buildWorkload(WorkloadSpec{Kind: "synthetic", Synthetic: &cfg2})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("identical specs built distinct workloads")
	}
}
