// Package client is the thin typed client for a scenariod daemon: it
// marshals the wire structs from internal/serve, posts them, and
// decodes responses — no retries, no caching, no cleverness. Anything
// smarter (deduplication, batching, checkpoint sharing) lives
// server-side, which is the point of having a daemon.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/internal/serve"
)

// Client talks to one scenariod daemon.
type Client struct {
	// BaseURL locates the daemon, e.g. "http://127.0.0.1:8344".
	BaseURL string
	// HTTP is the transport; nil selects http.DefaultClient. Share one
	// across goroutines — connection reuse matters under load.
	HTTP *http.Client
}

// New returns a client for the daemon at baseURL.
func New(baseURL string) *Client { return &Client{BaseURL: baseURL} }

// StatusError is a non-2xx daemon reply: the HTTP status plus the
// decoded ErrorResponse message.
type StatusError struct {
	Status  int
	Message string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("scenariod: HTTP %d: %s", e.Status, e.Message)
}

// IsQueueFull reports the 503 backpressure reply — the one status a
// load-shedding caller should treat as "retry later", not "broken".
func IsQueueFull(err error) bool {
	se, ok := err.(*StatusError)
	return ok && se.Status == http.StatusServiceUnavailable
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// post round-trips one JSON request/response pair.
func (c *Client) post(ctx context.Context, path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("client: encode %s: %w", path, err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("client: %s: %w", path, err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := c.httpClient().Do(hreq)
	if err != nil {
		return fmt.Errorf("client: %s: %w", path, err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		return decodeError(hresp)
	}
	if err := json.NewDecoder(hresp.Body).Decode(resp); err != nil {
		return fmt.Errorf("client: decode %s: %w", path, err)
	}
	return nil
}

func decodeError(hresp *http.Response) error {
	var er serve.ErrorResponse
	if err := json.NewDecoder(io.LimitReader(hresp.Body, 1<<16)).Decode(&er); err != nil || er.Error == "" {
		er.Error = hresp.Status
	}
	return &StatusError{Status: hresp.StatusCode, Message: er.Error}
}

// Run submits one simulator run and waits for its Stats.
func (c *Client) Run(ctx context.Context, req serve.RunRequest) (serve.RunResponse, error) {
	var resp serve.RunResponse
	err := c.post(ctx, "/v1/run", req, &resp)
	return resp, err
}

// Measure submits one full measure evaluation and waits for its record.
func (c *Client) Measure(ctx context.Context, req serve.MeasureRequest) (serve.MeasureResponse, error) {
	var resp serve.MeasureResponse
	err := c.post(ctx, "/v1/measure", req, &resp)
	return resp, err
}

// Static asks for an analytical fast-path prediction.
func (c *Client) Static(ctx context.Context, req serve.StaticRequest) (serve.StaticResponse, error) {
	var resp serve.StaticResponse
	err := c.post(ctx, "/v1/static", req, &resp)
	return resp, err
}

// Metrics fetches the daemon's three-layer metrics snapshot.
func (c *Client) Metrics(ctx context.Context) (serve.MetricsSnapshot, error) {
	var snap serve.MetricsSnapshot
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/metrics", nil)
	if err != nil {
		return snap, fmt.Errorf("client: /metrics: %w", err)
	}
	hresp, err := c.httpClient().Do(hreq)
	if err != nil {
		return snap, fmt.Errorf("client: /metrics: %w", err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		return snap, decodeError(hresp)
	}
	if err := json.NewDecoder(hresp.Body).Decode(&snap); err != nil {
		return snap, fmt.Errorf("client: decode /metrics: %w", err)
	}
	return snap, nil
}

// Health reports whether the daemon answers /healthz.
func (c *Client) Health(ctx context.Context) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/healthz", nil)
	if err != nil {
		return fmt.Errorf("client: /healthz: %w", err)
	}
	hresp, err := c.httpClient().Do(hreq)
	if err != nil {
		return fmt.Errorf("client: /healthz: %w", err)
	}
	io.Copy(io.Discard, hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		return &StatusError{Status: hresp.StatusCode, Message: "healthz failed"}
	}
	return nil
}
