package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/experiments"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Options configures a Server.
type Options struct {
	// Store backs every simulation; nil creates a fresh memory-only
	// store. One store per daemon is the whole point: every client
	// shares its memory cache, disk blobs, singleflight, and warm
	// checkpoints.
	Store *scenario.Store
	// Workers sizes the execution pool (<= 0 selects GOMAXPROCS).
	Workers int
	// QueueDepth bounds the admission queue (<= 0 selects 4x workers).
	// A full queue rejects with HTTP 503 — backpressure, not buffering.
	QueueDepth int
	// MeasureParallel is the fan-out width of the five constituent runs
	// inside one measure job (<= 0 selects 1). The default keeps one
	// admitted job on one worker; cross-request parallelism comes from
	// the pool.
	MeasureParallel int
	// NoFamilyBatching disables warmup-family batching: with it set,
	// same-family jobs are scheduled independently and simply block on
	// the store's checkpoint singleflight. The default (batching on)
	// parks a family's followers outside the workers until the shared
	// warm checkpoint exists. Set it when the store has checkpoint
	// forking disabled.
	NoFamilyBatching bool
}

// Server coalesces, schedules, and executes scenario submissions. Its
// handler is safe for arbitrary concurrency; every mutable structure
// is either lock-guarded or atomic.
type Server struct {
	store           *scenario.Store
	pool            *runner.Pool
	measureParallel int
	familyBatch     bool

	mu sync.Mutex
	// calls coalesces identical in-flight requests across clients: one
	// entry per (kind, digest) currently queued or executing. Completed
	// calls leave the map — later duplicates become store memory hits.
	calls map[string]*call
	// families implements warmup batching (see admit).
	families map[scenario.Digest]*family

	// workloads memoizes built workloads by canonical spec so duplicate
	// submissions share one *workload.Workload — and with it the
	// program pointers whose digests the scenario layer memoizes per
	// pointer. It grows with the number of *distinct* specs the daemon
	// has seen, exactly like the store itself.
	wlMu      sync.Mutex
	workloads map[string]*wlEntry

	uncacheableSeq atomic.Int64

	reqRun     atomic.Int64
	reqMeasure atomic.Int64
	reqStatic  atomic.Int64
	coalesced  atomic.Int64
	rejected   atomic.Int64
	abandoned  atomic.Int64
	parked     atomic.Int64
	errored    atomic.Int64
}

// call is one scheduled unit of work and the clients waiting on it.
type call struct {
	key string
	// fam/hasFam tie the call to a warmup family for batching.
	fam    scenario.Digest
	hasFam bool

	done chan struct{}

	// waiters and abandoned are guarded by the server mutex. A call
	// whose last waiter leaves before execution starts is abandoned:
	// the worker (or Close) completes it without simulating. A new
	// duplicate arriving before then revives it.
	waiters   int
	abandoned bool
	started   bool

	// Result fields are written once, before done closes.
	stats sim.Stats
	rec   scenario.MeasureRecord
	err   error
}

// family tracks warmup-batching state for one checkpoint family.
type family struct {
	// ready flips when the family's first job has completed (and with
	// it the shared warm checkpoint, or the knowledge that none is
	// possible). Until then followers park in pending.
	ready   bool
	warming bool
	pending []parkedJob
}

type parkedJob struct {
	priority int
	job      runner.PoolJob
}

// New builds a Server and starts its worker pool.
func New(opts Options) (*Server, error) {
	store := opts.Store
	if store == nil {
		var err error
		store, err = scenario.NewStore("")
		if err != nil {
			return nil, err
		}
	}
	mp := opts.MeasureParallel
	if mp <= 0 {
		mp = 1
	}
	return &Server{
		store:           store,
		pool:            runner.NewPool(opts.Workers, opts.QueueDepth),
		measureParallel: mp,
		familyBatch:     !opts.NoFamilyBatching,
		calls:           make(map[string]*call),
		families:        make(map[scenario.Digest]*family),
		workloads:       make(map[string]*wlEntry),
	}, nil
}

// Store exposes the daemon's shared store (for /metrics and tests).
func (s *Server) Store() *scenario.Store { return s.store }

// Close drains the pool. Queued-but-unstarted jobs complete with an
// error; in-flight simulations finish.
func (s *Server) Close() {
	s.pool.Close()
	// Parked jobs never reached the pool; fail them too.
	s.mu.Lock()
	fams := make([]scenario.Digest, 0, len(s.families))
	for d := range s.families {
		fams = append(fams, d)
	}
	sort.Slice(fams, func(i, j int) bool { return bytes.Compare(fams[i][:], fams[j][:]) < 0 })
	var pending []parkedJob
	for _, d := range fams {
		f := s.families[d]
		pending = append(pending, f.pending...)
		f.pending = nil
		f.ready = true
	}
	s.mu.Unlock()
	for _, pj := range pending {
		pj.job(true)
	}
}

// errShutdown completes calls that were cancelled by Close.
var errShutdown = errors.New("serve: server shutting down")

// admit coalesces the request onto an existing in-flight call or
// creates, gates, and enqueues a new one. run executes the work and
// must fill the call's result fields. The returned joined flag reports
// coalescing (for the response and the metrics).
func (s *Server) admit(key string, priority int, fam scenario.Digest, hasFam bool, run func(c *call)) (*call, bool, error) {
	s.mu.Lock()
	if c, ok := s.calls[key]; ok {
		c.waiters++
		// Revive a call whose previous waiters all left before it ran:
		// it is still scheduled, and now wanted again.
		c.abandoned = false
		s.mu.Unlock()
		s.coalesced.Add(1)
		return c, true, nil
	}
	c := &call{key: key, fam: fam, hasFam: hasFam, done: make(chan struct{}), waiters: 1}
	s.calls[key] = c
	job := func(cancelled bool) {
		if cancelled {
			s.finish(c, func() { c.err = errShutdown })
			return
		}
		s.mu.Lock()
		if c.abandoned {
			s.mu.Unlock()
			s.finish(c, func() { c.err = context.Canceled })
			return
		}
		c.started = true
		s.mu.Unlock()
		s.finish(c, func() { run(c) })
	}

	// Warmup-family batching: the first job of a cold family goes
	// through and produces the shared checkpoint; followers park here
	// instead of occupying workers that would all block on the same
	// singleflighted warmup. They flush the moment the leader finishes.
	if hasFam && s.familyBatch {
		f := s.families[fam]
		if f == nil {
			f = &family{}
			s.families[fam] = f
		}
		if f.warming && !f.ready {
			f.pending = append(f.pending, parkedJob{priority: priority, job: job})
			s.mu.Unlock()
			s.parked.Add(1)
			return c, false, nil
		}
		f.warming = true
	}
	s.mu.Unlock()

	if err := s.pool.Submit(priority, job); err != nil {
		s.mu.Lock()
		delete(s.calls, key)
		s.mu.Unlock()
		s.rejected.Add(1)
		return nil, false, err
	}
	return c, false, nil
}

// finish publishes a call's result: run the fill closure, take the
// call out of the coalescing map, release waiters, and flush any jobs
// parked on its warmup family.
func (s *Server) finish(c *call, fill func()) {
	fill()
	if c.err != nil && !errors.Is(c.err, errShutdown) && !errors.Is(c.err, context.Canceled) {
		s.errored.Add(1)
	}
	s.mu.Lock()
	delete(s.calls, c.key)
	var flush []parkedJob
	if c.hasFam && s.familyBatch {
		if f := s.families[c.fam]; f != nil && !f.ready {
			f.ready = true
			flush = f.pending
			f.pending = nil
		}
	}
	s.mu.Unlock()
	close(c.done)
	for _, pj := range flush {
		if err := s.pool.SubmitAdmitted(pj.priority, pj.job); err != nil {
			// Pool closed mid-flush: complete the job as cancelled.
			pj.job(true)
		}
	}
}

// leave drops one waiter from a call after its client gave up. If that
// was the last waiter and the work has not started, the call is marked
// abandoned so the worker can skip the simulation.
func (s *Server) leave(c *call) {
	s.mu.Lock()
	c.waiters--
	if c.waiters <= 0 && !c.started {
		c.abandoned = true
		s.abandoned.Add(1)
	}
	s.mu.Unlock()
}

// await blocks until the call completes or the request context ends.
func (s *Server) await(ctx context.Context, c *call) error {
	select {
	case <-c.done:
		return nil
	case <-ctx.Done():
		s.leave(c)
		return ctx.Err()
	}
}

type wlEntry struct {
	once sync.Once
	w    *workload.Workload
	err  error
}

// buildWorkload returns the canonical built workload for a spec,
// building each distinct spec exactly once per server.
func (s *Server) buildWorkload(ws WorkloadSpec) (*workload.Workload, error) {
	key, err := ws.cacheKey()
	if err != nil {
		return nil, err
	}
	s.wlMu.Lock()
	e, ok := s.workloads[key]
	if !ok {
		e = &wlEntry{}
		s.workloads[key] = e
	}
	s.wlMu.Unlock()
	e.once.Do(func() {
		e.w, e.err = ws.Build()
	})
	return e.w, e.err
}

// Handler returns the daemon's HTTP mux:
//
//	POST /v1/run     — one simulator run        (RunRequest → RunResponse)
//	POST /v1/measure — one measure evaluation   (MeasureRequest → MeasureResponse)
//	POST /v1/static  — one static prediction    (StaticRequest → StaticResponse)
//	GET  /metrics    — MetricsSnapshot
//	GET  /healthz    — 200 "ok"
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/run", s.handleRun)
	mux.HandleFunc("/v1/measure", s.handleMeasure)
	mux.HandleFunc("/v1/static", s.handleStatic)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

// decodePost parses a JSON POST body, rejecting other methods and
// unknown fields (a typoed field silently changing the sweep would be
// worse than an error).
func decodePost[T any](w http.ResponseWriter, r *http.Request, dst *T) bool {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("serve: %s needs POST", r.URL.Path))
		return false
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad request: %w", err))
		return false
	}
	return true
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if !decodePost(w, r, &req) {
		return
	}
	s.reqRun.Add(1)

	wl, err := s.buildWorkload(req.Workload)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	spec := scenario.Spec{
		Config:    req.Config,
		MaxCycles: req.MaxCycles,
	}
	if spec.MaxCycles == 0 {
		spec.MaxCycles = DefaultMaxCycles
	}
	switch req.Program {
	case "", "accelerated":
		spec.Program = wl.Accelerated
		spec.NewDevice = wl.NewDevice
		spec.DeviceKey = wl.DeviceKey
	case "baseline":
		spec.Program = wl.Baseline
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: unknown program %q", req.Program))
		return
	}
	if err := spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	var key, digest string
	if spec.Cacheable() {
		digest = spec.Digest().String()
		key = "run:" + digest
	} else {
		// Uncacheable work never coalesces; give it a unique key so it
		// still flows through admission control.
		key = fmt.Sprintf("run-uncacheable:%d", s.uncacheableSeq.Add(1))
	}
	fam, hasFam := spec.WarmupFamily()
	c, joined, err := s.admit(key, req.Priority, fam, hasFam, func(c *call) {
		c.stats, c.err = s.store.RunStats(spec)
	})
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	if err := s.await(r.Context(), c); err != nil {
		writeError(w, statusClientGone, err)
		return
	}
	if c.err != nil {
		writeError(w, http.StatusUnprocessableEntity, c.err)
		return
	}
	writeJSON(w, http.StatusOK, RunResponse{Stats: c.stats, Digest: digest, Coalesced: joined})
}

func (s *Server) handleMeasure(w http.ResponseWriter, r *http.Request) {
	var req MeasureRequest
	if !decodePost(w, r, &req) {
		return
	}
	s.reqMeasure.Add(1)

	wl, err := s.buildWorkload(req.Workload)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	mspec := scenario.MeasureSpec{Config: req.Config, Workload: wl, MaxCycles: DefaultMaxCycles}
	if err := mspec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	var key, digest string
	if mspec.Cacheable() {
		digest = mspec.Digest().String()
		key = "measure:" + digest
	} else {
		key = fmt.Sprintf("measure-uncacheable:%d", s.uncacheableSeq.Add(1))
	}
	// The measure's five runs share the accelerated spec's warmup
	// family; gate the whole job on it so a fleet-submitted sweep warms
	// once before fanning out.
	fam, hasFam := scenario.Spec{
		Config:    req.Config,
		Program:   wl.Accelerated,
		NewDevice: wl.NewDevice,
		DeviceKey: wl.DeviceKey,
		MaxCycles: DefaultMaxCycles,
	}.WarmupFamily()
	c, joined, err := s.admit(key, req.Priority, fam, hasFam, func(c *call) {
		res, err := experiments.MeasureWorkloadStore(s.store, req.Config, wl, s.measureParallel)
		if err != nil {
			c.err = err
			return
		}
		c.rec = res.MeasureRecord
	})
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	if err := s.await(r.Context(), c); err != nil {
		writeError(w, statusClientGone, err)
		return
	}
	if c.err != nil {
		writeError(w, http.StatusUnprocessableEntity, c.err)
		return
	}
	writeJSON(w, http.StatusOK, MeasureResponse{Record: c.rec, Digest: digest, Coalesced: joined})
}

func (s *Server) handleStatic(w http.ResponseWriter, r *http.Request) {
	var req StaticRequest
	if !decodePost(w, r, &req) {
		return
	}
	s.reqStatic.Add(1)

	wl, err := s.buildWorkload(req.Workload)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	mspec := scenario.MeasureSpec{Config: req.Config, Workload: wl, MaxCycles: DefaultMaxCycles}
	if err := mspec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var digest string
	if mspec.Cacheable() {
		digest = mspec.Digest().String()
	}
	// Static predictions cost microseconds — served inline, no queue.
	pred, err := experiments.StaticPredictWorkloadStore(s.store, req.Config, wl)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, StaticResponse{Prediction: pred, Digest: digest})
}

// statusClientGone is reported when the client's context ended before
// the result was ready (499 in nginx tradition; the client has usually
// stopped listening by then anyway).
const statusClientGone = 499

// ServerMetrics counts server-level request handling. Coalesced here
// means "joined another client's in-flight call" — the cross-client
// singleflight; the store's own Coalesced counters additionally cover
// concurrent joins inside one compound job.
type ServerMetrics struct {
	RunRequests     int64 `json:"run_requests"`
	MeasureRequests int64 `json:"measure_requests"`
	StaticRequests  int64 `json:"static_requests"`
	Coalesced       int64 `json:"coalesced"`
	Rejected        int64 `json:"rejected"`
	Abandoned       int64 `json:"abandoned"`
	Parked          int64 `json:"parked"`
	Errored         int64 `json:"errored"`
}

// MetricsSnapshot is the /metrics payload: the one scenario.Metrics
// source of truth plus pool and server counters.
type MetricsSnapshot struct {
	Store  scenario.Metrics   `json:"store"`
	Pool   runner.PoolMetrics `json:"pool"`
	Server ServerMetrics      `json:"server"`
}

// Metrics snapshots all three layers.
func (s *Server) Metrics() MetricsSnapshot {
	return MetricsSnapshot{
		Store: s.store.Metrics(),
		Pool:  s.pool.Metrics(),
		Server: ServerMetrics{
			RunRequests:     s.reqRun.Load(),
			MeasureRequests: s.reqMeasure.Load(),
			StaticRequests:  s.reqStatic.Load(),
			Coalesced:       s.coalesced.Load(),
			Rejected:        s.rejected.Load(),
			Abandoned:       s.abandoned.Load(),
			Parked:          s.parked.Load(),
			Errored:         s.errored.Load(),
		},
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("serve: /metrics needs GET"))
		return
	}
	writeJSON(w, http.StatusOK, s.Metrics())
}
