package serve_test

import (
	"context"
	"testing"

	"repro/internal/experiments"
	"repro/internal/serve"
	"repro/internal/workload"
)

// The differential suite pins the service layer's core guarantee:
// routing a figure sweep through a loopback scenariod produces
// byte-identical rendered artifacts (Render and CSV) to local
// no-store execution. The daemon may coalesce, batch, checkpoint-fork,
// and cache however it likes — the bytes that reach the figure files
// must not move.

// quickFig4 is cmd/figures' -quick Fig 4 sweep.
func quickFig4() experiments.Fig4Config {
	cfg := experiments.DefaultFig4()
	cfg.RegionCounts = []int{5, 40, 320}
	cfg.Parallel = 1
	return cfg
}

// quickFig5 is cmd/figures' -quick Fig 5 sweep.
func quickFig5() experiments.Fig5Config {
	cfg := experiments.DefaultFig5()
	cfg.Operations = 200
	cfg.FillerCounts = []int{0, 20, 160}
	cfg.Parallel = 1
	return cfg
}

func TestFig4ThroughDaemonByteIdentical(t *testing.T) {
	cfg := quickFig4()
	local, err := experiments.Fig4(cfg) // Store nil: the -no-cache path
	if err != nil {
		t.Fatal(err)
	}

	_, cl := startDaemon(t, serve.Options{Workers: 2})
	ctx := context.Background()
	remote := &experiments.Fig4Result{}
	for i, n := range cfg.RegionCounts {
		wcfg := workload.SyntheticConfig{
			Units:        cfg.Units,
			UnitLen:      cfg.UnitLen,
			Regions:      n,
			RegionLen:    cfg.RegionLen,
			AccelLatency: cfg.AccelLatency,
			Seed:         cfg.Seed + int64(i),
		}
		resp, err := cl.Measure(ctx, serve.MeasureRequest{
			Config:   cfg.Core,
			Workload: serve.WorkloadSpec{Kind: "synthetic", Synthetic: &wcfg},
		})
		if err != nil {
			t.Fatalf("point %d: %v", n, err)
		}
		remote.Rows = append(remote.Rows, experiments.Fig4Row{
			AccelInstructions: n,
			Result:            &experiments.WorkloadResult{MeasureRecord: resp.Record},
		})
	}

	if got, want := remote.Render(), local.Render(); got != want {
		t.Errorf("Fig4 Render differs through daemon:\n got:\n%s\nwant:\n%s", got, want)
	}
	if got, want := remote.CSV(), local.CSV(); got != want {
		t.Errorf("Fig4 CSV differs through daemon:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestFig5ThroughDaemonByteIdentical(t *testing.T) {
	cfg := quickFig5()
	local, err := experiments.Fig5(cfg)
	if err != nil {
		t.Fatal(err)
	}

	_, cl := startDaemon(t, serve.Options{Workers: 2})
	ctx := context.Background()
	remote := &experiments.Fig5Result{}
	for _, filler := range cfg.FillerCounts {
		wcfg := workload.HeapConfig{
			Operations:    cfg.Operations,
			FillerPerCall: filler,
			Prefill:       cfg.Prefill,
			Seed:          cfg.Seed,
			WarmupFiller:  cfg.WarmupFiller,
		}
		resp, err := cl.Measure(ctx, serve.MeasureRequest{
			Config:   cfg.Core,
			Workload: serve.WorkloadSpec{Kind: "heap", Heap: &wcfg},
		})
		if err != nil {
			t.Fatalf("point %d: %v", filler, err)
		}
		remote.Rows = append(remote.Rows, experiments.Fig5Row{
			FillerPerCall: filler,
			Result:        &experiments.WorkloadResult{MeasureRecord: resp.Record},
		})
	}

	if got, want := remote.Render(), local.Render(); got != want {
		t.Errorf("Fig5 Render differs through daemon:\n got:\n%s\nwant:\n%s", got, want)
	}
	if got, want := remote.CSV(), local.CSV(); got != want {
		t.Errorf("Fig5 CSV differs through daemon:\n got:\n%s\nwant:\n%s", got, want)
	}
}
