package serve_test

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"repro/internal/experiments"
	"repro/internal/scenario"
	"repro/internal/serve"
	"repro/internal/serve/client"
	"repro/internal/sim"
	"repro/internal/workload"
)

// startDaemon runs an in-process daemon on a loopback listener and
// returns a typed client for it.
func startDaemon(t *testing.T, opts serve.Options) (*serve.Server, *client.Client) {
	t.Helper()
	srv, err := serve.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, client.New(ts.URL)
}

func synthSpec(seed int64) serve.WorkloadSpec {
	cfg := workload.SyntheticConfig{
		Units: 8, UnitLen: 12, Regions: 4, RegionLen: 30,
		AccelLatency: 12, Seed: seed,
	}
	return serve.WorkloadSpec{Kind: "synthetic", Synthetic: &cfg}
}

// TestRunMatchesLocalExecution: the daemon's Stats for a request are
// byte-identical (as JSON) to executing the same spec locally with no
// store at all.
func TestRunMatchesLocalExecution(t *testing.T) {
	_, cl := startDaemon(t, serve.Options{Workers: 2})
	req := serve.RunRequest{Config: sim.HighPerfConfig(), Workload: synthSpec(1)}
	resp, err := cl.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}

	wl, err := req.Workload.Build()
	if err != nil {
		t.Fatal(err)
	}
	var noStore *scenario.Store
	want, err := noStore.RunStats(scenario.Spec{
		Config:    req.Config,
		Program:   wl.Accelerated,
		NewDevice: wl.NewDevice,
		DeviceKey: wl.DeviceKey,
		MaxCycles: serve.DefaultMaxCycles,
	})
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, _ := json.Marshal(resp.Stats)
	wantJSON, _ := json.Marshal(want)
	if string(gotJSON) != string(wantJSON) {
		t.Error("daemon stats differ from local execution")
	}
	if resp.Digest == "" {
		t.Error("cacheable run came back without a digest")
	}

	// The baseline program runs deviceless and must also match.
	req.Program = "baseline"
	bresp, err := cl.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	bwant, err := noStore.RunStats(scenario.Spec{
		Config: req.Config, Program: wl.Baseline, MaxCycles: serve.DefaultMaxCycles,
	})
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, _ = json.Marshal(bresp.Stats)
	wantJSON, _ = json.Marshal(bwant)
	if string(gotJSON) != string(wantJSON) {
		t.Error("daemon baseline stats differ from local execution")
	}
}

// TestConcurrentDuplicatesCostOneSimulation: N clients submitting the
// identical request produce one store miss; everyone gets the same
// bytes.
func TestConcurrentDuplicatesCostOneSimulation(t *testing.T) {
	srv, cl := startDaemon(t, serve.Options{Workers: 2})
	const n = 8
	req := serve.RunRequest{Config: sim.HighPerfConfig(), Workload: synthSpec(2)}

	results := make([]serve.RunResponse, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = cl.Run(context.Background(), req)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	first, _ := json.Marshal(results[0].Stats)
	for i := 1; i < n; i++ {
		b, _ := json.Marshal(results[i].Stats)
		if string(b) != string(first) {
			t.Fatalf("client %d saw different stats", i)
		}
	}

	m := srv.Metrics()
	if m.Store.RunMisses != 1 {
		t.Errorf("store misses = %d, want 1 (one simulation for %d clients)", m.Store.RunMisses, n)
	}
	served := m.Server.Coalesced + m.Store.RunHits + m.Store.RunCoalesced
	if served != n-1 {
		t.Errorf("coalesced %d + hits %d + store-coalesced %d = %d, want %d duplicates served",
			m.Server.Coalesced, m.Store.RunHits, m.Store.RunCoalesced, served, n-1)
	}
}

// TestMeasureMatchesLocal: a daemon-served measure record equals the
// local harness's record exactly.
func TestMeasureMatchesLocal(t *testing.T) {
	_, cl := startDaemon(t, serve.Options{Workers: 2})
	req := serve.MeasureRequest{Config: sim.HighPerfConfig(), Workload: synthSpec(3)}
	resp, err := cl.Measure(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	wl, err := req.Workload.Build()
	if err != nil {
		t.Fatal(err)
	}
	want, err := experiments.MeasureWorkload(req.Config, wl)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, _ := json.Marshal(resp.Record)
	wantJSON, _ := json.Marshal(want.MeasureRecord)
	if string(gotJSON) != string(wantJSON) {
		t.Error("daemon measure record differs from local harness")
	}
	if resp.Digest == "" {
		t.Error("cacheable measure came back without a digest")
	}
}

// TestStaticMatchesLocal: the inline static endpoint returns the local
// fast-path prediction.
func TestStaticMatchesLocal(t *testing.T) {
	_, cl := startDaemon(t, serve.Options{Workers: 1})
	req := serve.StaticRequest{Config: sim.HighPerfConfig(), Workload: synthSpec(4)}
	resp, err := cl.Static(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	wl, err := req.Workload.Build()
	if err != nil {
		t.Fatal(err)
	}
	want, err := experiments.StaticPredictWorkload(req.Config, wl)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Prediction == nil || !reflect.DeepEqual(*resp.Prediction, *want) {
		t.Errorf("static prediction differs:\n got %+v\nwant %+v", resp.Prediction, want)
	}
}

// TestMetricsAndHealth: the observability endpoints answer.
func TestMetricsAndHealth(t *testing.T) {
	_, cl := startDaemon(t, serve.Options{Workers: 1})
	if err := cl.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Run(context.Background(), serve.RunRequest{Config: sim.HighPerfConfig(), Workload: synthSpec(5)}); err != nil {
		t.Fatal(err)
	}
	snap, err := cl.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if snap.Server.RunRequests != 1 || snap.Store.RunMisses != 1 || snap.Pool.Executed != 1 {
		t.Errorf("snapshot %+v: want 1 request / 1 miss / 1 executed", snap)
	}
}

// TestRepeatRequestIsHit: a sequential duplicate (arriving after the
// first completed) is served from store memory, not re-executed.
func TestRepeatRequestIsHit(t *testing.T) {
	srv, cl := startDaemon(t, serve.Options{Workers: 1})
	req := serve.RunRequest{Config: sim.HighPerfConfig(), Workload: synthSpec(6)}
	if _, err := cl.Run(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Run(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	m := srv.Metrics()
	if m.Store.RunMisses != 1 || m.Store.RunHits+m.Store.RunCoalesced != 1 {
		t.Errorf("repeat request: %+v, want 1 miss and 1 served duplicate", m.Store)
	}
}
