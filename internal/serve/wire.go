// Package serve is the simulation-as-a-service layer: a long-running
// HTTP/JSON daemon (cmd/scenariod) that accepts scenario submissions
// from many clients, coalesces duplicate in-flight work across them,
// batches compatible jobs onto a shared runner.Pool behind a bounded
// admission queue, and serves everything out of one warm
// scenario.Store — so a sweep submitted by a fleet of clients costs
// one warmup, one simulation per distinct point, and cache reads for
// everyone else.
//
// The wire protocol does not ship programs or device closures. A
// request names a workload *generator* and its configuration
// (WorkloadSpec); the server regenerates the workload, which is
// deterministic in its config, so the server-side scenario digests —
// and therefore the returned results — are bit-identical to what the
// client would have computed locally. The differential suite pins
// that: a figure sweep routed through a loopback daemon renders
// byte-identical artifacts to local -no-cache execution.
package serve

import (
	"encoding/json"
	"fmt"

	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/staticmodel"
	"repro/internal/workload"
)

// DefaultMaxCycles bounds a run when the request leaves MaxCycles
// zero. It matches the bound the experiments harness uses for every
// figure simulation, so daemon-served runs and locally-swept runs
// digest identically.
const DefaultMaxCycles = 4_000_000_000

// WorkloadSpec names one deterministic workload generator plus its
// configuration — the wire form of a workload. Kind selects the
// generator; exactly the matching config field must be set. Building
// the same spec twice yields behaviorally identical workloads (the
// generators are deterministic in their seeds), which is what lets
// digests computed server-side stand for the client's intent.
type WorkloadSpec struct {
	// Kind is one of "synthetic", "heap", "matmul", "kvstore",
	// "stringmatch", "regexmatch", "multitca", "daestream", "loopnest".
	Kind string `json:"kind"`

	Synthetic   *workload.SyntheticConfig   `json:"synthetic,omitempty"`
	Heap        *workload.HeapConfig        `json:"heap,omitempty"`
	MatMul      *workload.MatMulConfig      `json:"matmul,omitempty"`
	KVStore     *workload.KVStoreConfig     `json:"kvstore,omitempty"`
	StringMatch *workload.StringMatchConfig `json:"stringmatch,omitempty"`
	RegexMatch  *workload.RegexMatchConfig  `json:"regexmatch,omitempty"`
	MultiTCA    *workload.MultiTCAConfig    `json:"multitca,omitempty"`
	DAEStream   *workload.DAEStreamConfig   `json:"daestream,omitempty"`
	LoopNest    *workload.LoopNestConfig    `json:"loopnest,omitempty"`
}

// Build regenerates the workload the spec names.
func (ws WorkloadSpec) Build() (*workload.Workload, error) {
	switch ws.Kind {
	case "synthetic":
		if ws.Synthetic == nil {
			return nil, fmt.Errorf("serve: workload kind %q without config", ws.Kind)
		}
		return workload.Synthetic(*ws.Synthetic)
	case "heap":
		if ws.Heap == nil {
			return nil, fmt.Errorf("serve: workload kind %q without config", ws.Kind)
		}
		return workload.Heap(*ws.Heap)
	case "matmul":
		if ws.MatMul == nil {
			return nil, fmt.Errorf("serve: workload kind %q without config", ws.Kind)
		}
		return workload.MatMul(*ws.MatMul)
	case "kvstore":
		if ws.KVStore == nil {
			return nil, fmt.Errorf("serve: workload kind %q without config", ws.Kind)
		}
		return workload.KVStore(*ws.KVStore)
	case "stringmatch":
		if ws.StringMatch == nil {
			return nil, fmt.Errorf("serve: workload kind %q without config", ws.Kind)
		}
		return workload.StringMatch(*ws.StringMatch)
	case "regexmatch":
		if ws.RegexMatch == nil {
			return nil, fmt.Errorf("serve: workload kind %q without config", ws.Kind)
		}
		return workload.RegexMatch(*ws.RegexMatch)
	case "multitca":
		if ws.MultiTCA == nil {
			return nil, fmt.Errorf("serve: workload kind %q without config", ws.Kind)
		}
		return workload.MultiTCA(*ws.MultiTCA)
	case "daestream":
		if ws.DAEStream == nil {
			return nil, fmt.Errorf("serve: workload kind %q without config", ws.Kind)
		}
		return workload.DAEStream(*ws.DAEStream)
	case "loopnest":
		if ws.LoopNest == nil {
			return nil, fmt.Errorf("serve: workload kind %q without config", ws.Kind)
		}
		return workload.LoopNest(*ws.LoopNest)
	default:
		return nil, fmt.Errorf("serve: unknown workload kind %q", ws.Kind)
	}
}

// cacheKey is the canonical string form of the spec, keying the
// server's built-workload cache. Re-marshaling the parsed struct (not
// the request's raw bytes) normalizes field order and whitespace, so
// every spelling of the same spec shares one built workload — and
// therefore one program pointer, which keeps the scenario layer's
// per-pointer program-digest memoization effective and bounded in a
// long-running daemon.
func (ws WorkloadSpec) cacheKey() (string, error) {
	b, err := json.Marshal(ws)
	if err != nil {
		return "", fmt.Errorf("serve: workload spec: %w", err)
	}
	return string(b), nil
}

// RunRequest submits one simulator run: a core configuration, a
// workload, and which of its matched pair of programs to execute.
type RunRequest struct {
	Config   sim.Config   `json:"config"`
	Workload WorkloadSpec `json:"workload"`
	// Program selects "baseline" or "accelerated" (the default). The
	// accelerated program runs with the workload's device; the baseline
	// runs deviceless.
	Program string `json:"program,omitempty"`
	// MaxCycles bounds the run; zero selects DefaultMaxCycles.
	MaxCycles int64 `json:"max_cycles,omitempty"`
	// Priority orders admission: higher values run first, FIFO within
	// one value. Zero is the default class.
	Priority int `json:"priority,omitempty"`
}

// RunResponse carries the run's Stats. Digest is the scenario content
// address the result is cached under ("" for uncacheable specs);
// Coalesced reports that this request joined an execution or queue
// entry another client started.
type RunResponse struct {
	Stats     sim.Stats `json:"stats"`
	Digest    string    `json:"digest,omitempty"`
	Coalesced bool      `json:"coalesced,omitempty"`
}

// MeasureRequest submits one full measure-workload evaluation —
// baseline plus all four accelerated modes, reduced to a
// MeasureRecord, exactly the record the figure sweeps cache. The run
// bound is the harness's own (DefaultMaxCycles); it is part of the
// measure methodology, not a per-request knob.
type MeasureRequest struct {
	Config   sim.Config   `json:"config"`
	Workload WorkloadSpec `json:"workload"`
	Priority int          `json:"priority,omitempty"`
}

// MeasureResponse carries the measurement record.
type MeasureResponse struct {
	Record    scenario.MeasureRecord `json:"record"`
	Digest    string                 `json:"digest,omitempty"`
	Coalesced bool                   `json:"coalesced,omitempty"`
}

// StaticRequest asks for an analytical fast-path prediction — no cycle
// simulation. Served inline (microseconds), bypassing the admission
// queue.
type StaticRequest struct {
	Config   sim.Config   `json:"config"`
	Workload WorkloadSpec `json:"workload"`
}

// StaticResponse carries the prediction.
type StaticResponse struct {
	Prediction *staticmodel.Prediction `json:"prediction"`
	Digest     string                  `json:"digest,omitempty"`
}

// ErrorResponse is the JSON body of every non-2xx reply.
type ErrorResponse struct {
	Error string `json:"error"`
}
