// Package loadgen drives a scenariod daemon the way a fleet of sweep
// clients would, and measures what the service layer buys. It runs
// three phases — duplicate-heavy (many clients, few distinct specs:
// the coalescing case), checkpoint-share (distinct specs in one warmup
// family: the batching case), and cold-miss (every request distinct:
// the overhead floor) — and can replay the duplicate-heavy mix as
// per-client direct execution (no daemon, no shared store) for an
// aggregate-throughput comparison.
//
// Wall-clock readings here are observability, never simulation inputs:
// every result still comes out of the deterministic scenario layer.
package loadgen

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/accel"
	"repro/internal/scenario"
	"repro/internal/serve"
	"repro/internal/serve/client"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Options configures one load run.
type Options struct {
	// Client talks to the daemon under load.
	Client *client.Client
	// Clients is the number of concurrent submitting goroutines
	// (<= 0 selects 8).
	Clients int
	// Requests is the total request count per phase (<= 0 selects 96).
	Requests int
	// Distinct is the number of distinct specs in the duplicate-heavy
	// mix (<= 0 selects 2). Requests/Distinct is the duplication factor.
	Distinct int
	// Seed offsets every workload seed, so two runs against one daemon
	// can be made cache-cold relative to each other.
	Seed int64
	// Quick shrinks workload sizes for smoke tests and CI.
	Quick bool
	// Compare replays the duplicate-heavy mix as per-client direct
	// execution (nil store, no daemon) and reports the aggregate
	// throughput ratio.
	Compare bool
}

func (o Options) clients() int {
	if o.Clients <= 0 {
		return 8
	}
	return o.Clients
}

func (o Options) requests() int {
	if o.Requests <= 0 {
		return 96
	}
	return o.Requests
}

func (o Options) distinct() int {
	if o.Distinct <= 0 {
		return 2
	}
	return o.Distinct
}

// Percentiles summarizes a phase's request latencies.
type Percentiles struct {
	P50, P90, P99 time.Duration
}

// Phase is the measured outcome of one load phase.
type Phase struct {
	Name     string
	Requests int
	// Errors counts failed requests; Shed counts HTTP 503 backpressure
	// rejections that were retried (and are not errors); Coalesced
	// counts responses that report joining another client's in-flight
	// call.
	Errors    int
	Shed      int
	Coalesced int
	Duration  time.Duration
	// Throughput is aggregate requests per second across all clients.
	Throughput float64
	Latency    Percentiles
	// Store is the daemon store's activity during this phase
	// (post-phase snapshot minus pre-phase snapshot).
	Store scenario.Metrics
}

// Report is the full load-run outcome.
type Report struct {
	Phases []Phase
	// Direct is the wall time of the duplicate-heavy mix executed
	// per-client with no daemon and no shared store (zero when Compare
	// was off); DupServer is the same mix through the daemon.
	Direct    time.Duration
	DupServer time.Duration
	// Speedup is aggregate server throughput over direct throughput on
	// the duplicate-heavy mix.
	Speedup float64
}

// synthCfg sizes the synthetic workload so one simulation costs enough
// to make deduplication visible over HTTP round-trip overhead.
func (o Options) synthCfg(regions int, seed int64) workload.SyntheticConfig {
	units, unitLen := 2000, 40
	if o.Quick {
		units, unitLen = 500, 25
	}
	return workload.SyntheticConfig{
		Units:        units,
		UnitLen:      unitLen,
		Regions:      regions,
		RegionLen:    60,
		AccelLatency: 12,
		Seed:         seed,
	}
}

// dupMix is the duplicate-heavy phase: Requests submissions cycling
// over Distinct specs, so Requests/Distinct clients race for each
// digest.
func (o Options) dupMix() []serve.RunRequest {
	reqs := make([]serve.RunRequest, o.requests())
	for i := range reqs {
		k := i % o.distinct()
		cfg := o.synthCfg(40+20*k, o.Seed+int64(k))
		reqs[i] = serve.RunRequest{
			Config:   sim.HighPerfConfig(),
			Workload: serve.WorkloadSpec{Kind: "synthetic", Synthetic: &cfg},
		}
	}
	return reqs
}

// ckptMix is the checkpoint-share phase: one heap workload with a long
// scalar warmup, swept across the four integration modes. The four
// digests are distinct but share one warmup family, so the daemon
// warms the checkpoint once and forks it for the rest.
func (o Options) ckptMix() []serve.RunRequest {
	ops, warm := 600, 30000
	if o.Quick {
		ops, warm = 200, 12000
	}
	hcfg := workload.HeapConfig{
		Operations:    ops,
		FillerPerCall: 40,
		Prefill:       512,
		Seed:          o.Seed + 7,
		WarmupFiller:  warm,
	}
	reqs := make([]serve.RunRequest, o.requests())
	for i := range reqs {
		cfg := sim.HighPerfConfig()
		cfg.Mode = accel.AllModes[i%len(accel.AllModes)]
		reqs[i] = serve.RunRequest{
			Config:   cfg,
			Workload: serve.WorkloadSpec{Kind: "heap", Heap: &hcfg},
		}
	}
	return reqs
}

// coldMix is the overhead floor: every request a distinct seed, so
// nothing coalesces and nothing hits (against a fresh daemon).
func (o Options) coldMix() []serve.RunRequest {
	n := o.requests() / 4
	if n < o.clients() {
		n = o.clients()
	}
	reqs := make([]serve.RunRequest, n)
	for i := range reqs {
		cfg := o.synthCfg(40, o.Seed+1000+int64(i))
		reqs[i] = serve.RunRequest{
			Config:   sim.HighPerfConfig(),
			Workload: serve.WorkloadSpec{Kind: "synthetic", Synthetic: &cfg},
		}
	}
	return reqs
}

// Run executes the load phases against opts.Client and returns the
// report. Phases run in order: duplicate-heavy, checkpoint-share,
// cold-miss, then (with Compare) the local direct replay.
func Run(ctx context.Context, opts Options) (*Report, error) {
	if opts.Client == nil {
		return nil, fmt.Errorf("loadgen: no client")
	}
	if err := opts.Client.Health(ctx); err != nil {
		return nil, fmt.Errorf("loadgen: daemon not healthy: %w", err)
	}
	rep := &Report{}
	for _, ph := range []struct {
		name string
		mix  []serve.RunRequest
	}{
		{"duplicate-heavy", opts.dupMix()},
		{"checkpoint-share", opts.ckptMix()},
		{"cold-miss", opts.coldMix()},
	} {
		p, err := opts.runPhase(ctx, ph.name, ph.mix)
		if err != nil {
			return nil, err
		}
		rep.Phases = append(rep.Phases, p)
		if ph.name == "duplicate-heavy" {
			rep.DupServer = p.Duration
		}
	}
	if opts.Compare {
		d, err := opts.runDirect(ctx, opts.dupMix())
		if err != nil {
			return nil, err
		}
		rep.Direct = d
		if rep.DupServer > 0 {
			rep.Speedup = float64(d) / float64(rep.DupServer)
		}
	}
	return rep, nil
}

// runPhase fans the mix out over the client goroutines (round-robin,
// each client submitting its share sequentially) and aggregates
// latency, error, and coalescing counts plus the store delta.
func (o Options) runPhase(ctx context.Context, name string, mix []serve.RunRequest) (Phase, error) {
	before, err := o.Client.Metrics(ctx)
	if err != nil {
		return Phase{}, fmt.Errorf("loadgen: %s: %w", name, err)
	}

	nc := o.clients()
	type outcome struct {
		latency   time.Duration
		shed      int
		coalesced bool
		err       error
	}
	outcomes := make([]outcome, len(mix))
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < nc; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; i < len(mix); i += nc {
				t0 := time.Now()
				var oc outcome
				// A 503 is the daemon's admission queue shedding load —
				// expected under burst, so back off briefly and resubmit
				// (bounded: a daemon that never admits is an error).
				for attempt := 0; ; attempt++ {
					resp, err := o.Client.Run(ctx, mix[i])
					if err != nil && client.IsQueueFull(err) && attempt < 500 && ctx.Err() == nil {
						oc.shed++
						time.Sleep(2 * time.Millisecond)
						continue
					}
					oc.latency, oc.coalesced, oc.err = time.Since(t0), resp.Coalesced, err
					break
				}
				outcomes[i] = oc
			}
		}(c)
	}
	wg.Wait()
	dur := time.Since(start)

	after, err := o.Client.Metrics(ctx)
	if err != nil {
		return Phase{}, fmt.Errorf("loadgen: %s: %w", name, err)
	}

	p := Phase{Name: name, Requests: len(mix), Duration: dur, Store: after.Store.Sub(before.Store)}
	lat := make([]time.Duration, 0, len(mix))
	for _, oc := range outcomes {
		p.Shed += oc.shed
		if oc.err != nil {
			p.Errors++
			continue
		}
		if oc.coalesced {
			p.Coalesced++
		}
		lat = append(lat, oc.latency)
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p.Latency = Percentiles{P50: pct(lat, 0.50), P90: pct(lat, 0.90), P99: pct(lat, 0.99)}
	if dur > 0 {
		p.Throughput = float64(len(mix)) / dur.Seconds()
	}
	return p, nil
}

// runDirect replays the mix with the same client fan-out but no daemon
// and no shared store: each request builds its workload and simulates
// locally, exactly what a fleet without the service layer would do.
func (o Options) runDirect(ctx context.Context, mix []serve.RunRequest) (time.Duration, error) {
	specs := make([]scenario.Spec, len(mix))
	for i, req := range mix {
		wl, err := req.Workload.Build()
		if err != nil {
			return 0, fmt.Errorf("loadgen: direct: %w", err)
		}
		specs[i] = scenario.Spec{
			Config:    req.Config,
			Program:   wl.Accelerated,
			NewDevice: wl.NewDevice,
			DeviceKey: wl.DeviceKey,
			MaxCycles: serve.DefaultMaxCycles,
		}
	}
	nc := o.clients()
	errs := make([]error, nc)
	var noStore *scenario.Store
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < nc; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; i < len(specs); i += nc {
				if ctx.Err() != nil {
					errs[c] = ctx.Err()
					return
				}
				if _, err := noStore.RunStats(specs[i]); err != nil {
					errs[c] = err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	dur := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, fmt.Errorf("loadgen: direct: %w", err)
		}
	}
	return dur, nil
}

// pct reads the q-quantile from an ascending-sorted latency slice.
func pct(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted)-1) + 0.5)
	return sorted[i]
}

// String renders the report as the scenarioload CLI prints it.
func (r *Report) String() string {
	var b strings.Builder
	for _, p := range r.Phases {
		fmt.Fprintf(&b, "%-17s %4d req  %6.1f req/s  p50 %-9s p90 %-9s p99 %-9s coalesced %d  shed %d  errors %d\n",
			p.Name, p.Requests, p.Throughput,
			p.Latency.P50.Round(time.Microsecond),
			p.Latency.P90.Round(time.Microsecond),
			p.Latency.P99.Round(time.Microsecond),
			p.Coalesced, p.Shed, p.Errors)
		fmt.Fprintf(&b, "%-17s store: %d run hits, %d coalesced, %d disk, %d misses | ckpt %d forks, %d warmups\n",
			"", p.Store.RunHits, p.Store.RunCoalesced, p.Store.RunDiskHits, p.Store.RunMisses,
			p.Store.CkptForks, p.Store.CkptWarmups)
	}
	if r.Direct > 0 {
		fmt.Fprintf(&b, "duplicate-heavy mix: daemon %s vs direct %s — %.1fx aggregate throughput\n",
			r.DupServer.Round(time.Millisecond), r.Direct.Round(time.Millisecond), r.Speedup)
	}
	return b.String()
}
