package loadgen

import (
	"testing"
	"time"
)

// TestPctEdgeCases pins the percentile reader on degenerate sample
// counts: an errored-out phase (zero latencies) reports zero rather
// than indexing out of bounds, and a single sample is every quantile.
func TestPctEdgeCases(t *testing.T) {
	if got := pct(nil, 0.99); got != 0 {
		t.Errorf("pct(nil) = %v, want 0", got)
	}
	if got := pct([]time.Duration{}, 0.50); got != 0 {
		t.Errorf("pct(empty) = %v, want 0", got)
	}
	one := []time.Duration{42 * time.Millisecond}
	for _, q := range []float64{0, 0.50, 0.90, 0.99, 1} {
		if got := pct(one, q); got != one[0] {
			t.Errorf("pct(one sample, %v) = %v, want %v", q, got, one[0])
		}
	}
}

// TestPctRoundingAndBounds: the index rounds to nearest on the sorted
// slice and stays in bounds at both extremes.
func TestPctRoundingAndBounds(t *testing.T) {
	two := []time.Duration{10, 20}
	if got := pct(two, 0.50); got != 20 {
		t.Errorf("pct(two, .50) = %v, want 20 (rounds up)", got)
	}
	if got := pct(two, 0); got != 10 {
		t.Errorf("pct(two, 0) = %v, want the minimum", got)
	}
	if got := pct(two, 1); got != 20 {
		t.Errorf("pct(two, 1) = %v, want the maximum", got)
	}
	sorted := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := pct(sorted, 0.50); got != 5 && got != 6 {
		t.Errorf("pct(10 samples, .50) = %v, want a median element", got)
	}
	if got := pct(sorted, 0.99); got != 10 {
		t.Errorf("pct(10 samples, .99) = %v, want 10", got)
	}
	prev := time.Duration(0)
	for _, q := range []float64{0, 0.25, 0.50, 0.75, 0.90, 0.99, 1} {
		v := pct(sorted, q)
		if v < prev {
			t.Fatalf("pct not monotone in q: pct(%v) = %v after %v", q, v, prev)
		}
		prev = v
	}
}
