package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// postRun submits a run request and decodes the status plus the error
// body (empty for 2xx replies).
func postRun(t *testing.T, url string, req RunRequest) (int, string) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		return resp.StatusCode, ""
	}
	var er ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatalf("non-2xx reply without ErrorResponse body: %v", err)
	}
	return resp.StatusCode, er.Error
}

// TestWireKindConfigRequired: every wire kind names exactly one config
// field; a spec that selects a kind but omits its config is rejected
// with 400 and an error naming the kind, before any scheduling.
func TestWireKindConfigRequired(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	kinds := []string{
		"synthetic", "heap", "matmul", "kvstore",
		"stringmatch", "regexmatch", "multitca",
		"daestream", "loopnest",
	}
	for _, kind := range kinds {
		code, msg := postRun(t, ts.URL, RunRequest{
			Config:   sim.HighPerfConfig(),
			Workload: WorkloadSpec{Kind: kind},
		})
		if code != http.StatusBadRequest {
			t.Errorf("kind %q without config: status %d, want 400", kind, code)
		}
		if want := fmt.Sprintf("workload kind %q without config", kind); !strings.Contains(msg, want) {
			t.Errorf("kind %q error %q does not name the missing config (%q)", kind, msg, want)
		}
	}

	code, msg := postRun(t, ts.URL, RunRequest{
		Config:   sim.HighPerfConfig(),
		Workload: WorkloadSpec{Kind: "warp-drive"},
	})
	if code != http.StatusBadRequest || !strings.Contains(msg, `unknown workload kind "warp-drive"`) {
		t.Errorf("unknown kind: status %d, error %q", code, msg)
	}
	if s.pool.Metrics().Submitted != 0 {
		t.Error("rejected specs reached the pool")
	}
}

// TestWireMalformedDeviceConfig: a device-family spec whose config
// fails its own validation is rejected with 400 and the generator's
// named-field error, not a panic or a silent default.
func TestWireMalformedDeviceConfig(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		spec WorkloadSpec
		want string
	}{
		{
			"dae-burst-too-wide",
			WorkloadSpec{Kind: "daestream", DAEStream: &workload.DAEStreamConfig{
				Streams: 2, WordsPerStream: 4, FillerPerOp: 10,
				ChunkWords: 9, ComputePerChunk: 2, Seed: 1,
			}},
			"chunk of 9 words exceeds one 64B burst",
		},
		{
			"loopnest-zero-depth",
			WorkloadSpec{Kind: "loopnest", LoopNest: &workload.LoopNestConfig{
				Calls: 2, FillerPerOp: 10, Trips: 4, Depth: 0,
				IterLatency: 1, Seed: 1,
			}},
			"loopnest needs trips/depth >= 1",
		},
	}
	for _, c := range cases {
		code, msg := postRun(t, ts.URL, RunRequest{Config: sim.HighPerfConfig(), Workload: c.spec})
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", c.name, code)
		}
		if !strings.Contains(msg, c.want) {
			t.Errorf("%s: error %q missing %q", c.name, msg, c.want)
		}
	}
}

// TestWireDeviceFamiliesServed: the two engine-contract families round
// trip through the wire — the daemon regenerates the workload from the
// spec, simulates it with its device, and returns cacheable stats.
func TestWireDeviceFamiliesServed(t *testing.T) {
	s := newTestServer(t, Options{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	specs := []WorkloadSpec{
		{Kind: "daestream", DAEStream: &workload.DAEStreamConfig{
			Streams: 3, WordsPerStream: 8, FillerPerOp: 10,
			ChunkWords: 4, ComputePerChunk: 2, Startup: 10, Seed: 5,
		}},
		{Kind: "loopnest", LoopNest: &workload.LoopNestConfig{
			Calls: 3, FillerPerOp: 10, Trips: 3, Depth: 2,
			IterLatency: 2, ConfigLatency: 20, Seed: 6,
		}},
	}
	for _, spec := range specs {
		body, err := json.Marshal(RunRequest{Config: sim.HighPerfConfig(), Workload: spec})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var rr RunResponse
		if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", spec.Kind, resp.StatusCode)
		}
		if rr.Stats.AccelCommitted != 3 {
			t.Errorf("%s: %d accelerator commits, want 3", spec.Kind, rr.Stats.AccelCommitted)
		}
		if rr.Stats.AccelPhases == 0 {
			t.Errorf("%s: engine executed no schedule phases", spec.Kind)
		}
		if rr.Digest == "" {
			t.Errorf("%s: run not cacheable (empty digest)", spec.Kind)
		}
	}
}
