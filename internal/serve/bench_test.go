package serve_test

import (
	"context"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/serve"
	"repro/internal/serve/client"
	"repro/internal/sim"
)

// benchDaemon starts a loopback daemon without testing.T cleanup
// plumbing (benchmarks own the lifecycle explicitly).
func benchDaemon(b *testing.B, opts serve.Options) (*serve.Server, *client.Client, func()) {
	b.Helper()
	srv, err := serve.New(opts)
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	return srv, client.New(ts.URL), func() {
		ts.Close()
		srv.Close()
	}
}

// BenchmarkScenariodThroughput measures end-to-end daemon request cost
// in three regimes: cold (every request a distinct spec — simulation
// dominates), warm (every request a store memory hit — HTTP round-trip
// dominates), and duplicate-heavy (8 concurrent clients racing for one
// digest — the coalescing path).
func BenchmarkScenariodThroughput(b *testing.B) {
	ctx := context.Background()

	b.Run("cold", func(b *testing.B) {
		_, cl, stop := benchDaemon(b, serve.Options{Workers: 2})
		defer stop()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req := serve.RunRequest{Config: sim.HighPerfConfig(), Workload: synthSpec(int64(10_000 + i))}
			if _, err := cl.Run(ctx, req); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("warm", func(b *testing.B) {
		_, cl, stop := benchDaemon(b, serve.Options{Workers: 2})
		defer stop()
		req := serve.RunRequest{Config: sim.HighPerfConfig(), Workload: synthSpec(1)}
		if _, err := cl.Run(ctx, req); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cl.Run(ctx, req); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("duplicate-heavy", func(b *testing.B) {
		_, cl, stop := benchDaemon(b, serve.Options{Workers: 2})
		defer stop()
		const clients = 8
		b.ReportAllocs()
		b.ResetTimer()
		// Each iteration: one fresh digest, 8 clients racing for it.
		// One simulation serves all eight (coalesce or hit).
		for i := 0; i < b.N; i++ {
			req := serve.RunRequest{Config: sim.HighPerfConfig(), Workload: synthSpec(int64(20_000 + i))}
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					if _, err := cl.Run(ctx, req); err != nil {
						b.Error(err)
					}
				}()
			}
			wg.Wait()
		}
	})
}
