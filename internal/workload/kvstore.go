package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/accel"
	"repro/internal/isa"
)

// KVStoreConfig parameterizes the hash-map benchmark: random lookups and
// inserts against an open-addressing table — the "hash map" accelerator of
// the paper's Fig. 2 (reference [6], server-side scripting workloads).
type KVStoreConfig struct {
	// Operations is the number of lookup/insert calls.
	Operations int
	// FillerPerOp is the non-acceleratable instruction count between
	// calls.
	FillerPerOp int
	// Buckets is the table capacity (power of two).
	Buckets int
	// Keys is the distinct-key universe; keep Keys <= Buckets/2 so the
	// load factor stays moderate and probes stay short.
	Keys int
	// LookupPct is the percentage of operations that are lookups
	// (the rest insert/update).
	LookupPct int
	// KeyWords selects the keying scheme: 0 hashes integer keys directly
	// (cheap calls — the model correctly predicts such probes are too
	// cheap to accelerate); >0 hashes KeyWords words of key data per
	// call, the string-keyed scheme of the paper's reference [6] that
	// gives the Fig. 2 hash-map marker its ~30-instruction granularity.
	KeyWords int
	Seed     int64
}

// Validate reports configuration errors.
func (c KVStoreConfig) Validate() error {
	switch {
	case c.Operations < 2:
		return fmt.Errorf("workload: kvstore needs >= 2 operations")
	case c.FillerPerOp < 0:
		return fmt.Errorf("workload: negative filler")
	case c.Buckets < 4 || c.Buckets&(c.Buckets-1) != 0:
		return fmt.Errorf("workload: buckets %d must be a power of two >= 4", c.Buckets)
	case c.Keys < 1 || c.Keys > c.Buckets/2:
		return fmt.Errorf("workload: keys %d must be in [1, buckets/2=%d]", c.Keys, c.Buckets/2)
	case c.LookupPct < 0 || c.LookupPct > 100:
		return fmt.Errorf("workload: lookup%% %d out of range", c.LookupPct)
	case c.KeyWords < 0 || c.KeyWords > 24:
		return fmt.Errorf("workload: key words %d out of range [0,24]", c.KeyWords)
	}
	return nil
}

// Memory layout.
const (
	kvTableBase   = 0x0040_0000 // hash table (16-byte buckets)
	kvKeyDataBase = 0x0060_0000 // key data for string-keyed tables
	kvKeyStride   = 256         // bytes per key slot (up to 32 words)
)

// Registers of the generated benchmark.
const (
	kvKey  = 1  // key operand (value or key-data pointer)
	kvVal  = 2  // value operand / result
	kvH    = 3  // probe index / hash accumulator
	kvA    = 4  // bucket address
	kvS    = 5  // stored key
	kvW    = 6  // key-data word (string-keyed hashing)
	kvTab  = 18 // table base
	kvMask = 19 // buckets-1
	kvMult = 20 // hash multiplier
	kvFour = 21 // constant 4 (shift for *16)
)

// kvKeyPtr returns the key-data address of a key ID.
func kvKeyPtr(id uint64) uint64 { return kvKeyDataBase + id*kvKeyStride }

// kvOp is one generated operation.
type kvOp struct {
	lookup bool
	key    uint64
	value  uint64
}

// KVStore builds the hash-map benchmark pair. The baseline inlines the
// software probe loop (multiplicative hash, linear probing over 16-byte
// buckets); the accelerated version issues one hash-map TCA invocation per
// call. Both probe identical sequences, so final table state matches.
func KVStore(cfg KVStoreConfig) (*Workload, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Generate key data for string-keyed tables (ID 1..Keys).
	seedMem := isa.NewMemory()
	var keyData [][]uint64
	if cfg.KeyWords > 0 {
		keyData = make([][]uint64, cfg.Keys+1)
		for id := 1; id <= cfg.Keys; id++ {
			words := make([]uint64, cfg.KeyWords)
			for w := range words {
				words[w] = uint64(rng.Intn(1<<16) + 1)
			}
			keyData[id] = words
			for w, v := range words {
				seedMem.Store(kvKeyPtr(uint64(id))+uint64(w)*8, v)
			}
		}
	}

	// Pre-populate half the key universe functionally, then dump the
	// table image as memory init for both program variants.
	seedDev := newKVDevice(cfg)
	for k := 1; k <= cfg.Keys/2; k++ {
		key := kvOpKey(cfg, uint64(k))
		res := seedDev.Invoke(isa.AccelCall{Kind: accel.HashInsert, Args: [3]uint64{key, uint64(k) * 10, 0}}, seedMem)
		isa.ApplyStores(seedMem, seedDev.PendingStores())
		if res.Value != 1 {
			return nil, fmt.Errorf("workload: kvstore prepopulation overflow")
		}
	}

	ops := make([]kvOp, cfg.Operations)
	for i := range ops {
		key := kvOpKey(cfg, uint64(1+rng.Intn(cfg.Keys)))
		if rng.Intn(100) < cfg.LookupPct {
			ops[i] = kvOp{lookup: true, key: key}
		} else {
			ops[i] = kvOp{key: key, value: uint64(rng.Intn(1 << 20))}
		}
	}

	base, baseRanges := buildKVProgram(cfg, seedMem, keyData, ops, false)
	acc, _ := buildKVProgram(cfg, seedMem, keyData, ops, true)

	// Measure baseline accounting on the golden model.
	it := isa.NewInterp(base, nil)
	for _, r := range baseRanges {
		it.CountRange(r[0], r[1])
	}
	if err := it.Run(1 << 40); err != nil {
		return nil, fmt.Errorf("workload: kvstore baseline measurement: %w", err)
	}

	w := &Workload{
		Name: "kvstore",
		Description: fmt.Sprintf("hash map: %d ops (%d%% lookups), %d buckets, %d keys, %d filler/op",
			cfg.Operations, cfg.LookupPct, cfg.Buckets, cfg.Keys, cfg.FillerPerOp),
		Baseline:             base,
		Accelerated:          acc,
		Acceleratable:        it.RangeTotal(),
		Invocations:          uint64(cfg.Operations),
		BaselineInstructions: it.Stats.Retired,
		NewDevice: func() isa.AccelDevice {
			return newKVDevice(cfg)
		},
		DeviceKey: fmt.Sprintf("hashmap:base=0x%x,buckets=%d,keywords=%d",
			kvTableBase, cfg.Buckets, cfg.KeyWords),
		AccelLatency: 0, // probe-dependent; measured from the L_T trace
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}

// newKVDevice builds the device matching the configuration's key scheme.
func newKVDevice(cfg KVStoreConfig) *accel.HashMap {
	if cfg.KeyWords > 0 {
		return accel.NewStringKeyedHashMap(kvTableBase, cfg.Buckets, cfg.KeyWords)
	}
	return accel.NewHashMap(kvTableBase, cfg.Buckets)
}

// kvOpKey converts a key ID to the operand the call passes: the ID itself
// for integer keys, the key-data pointer for string keys.
func kvOpKey(cfg KVStoreConfig, id uint64) uint64 {
	if cfg.KeyWords > 0 {
		return kvKeyPtr(id)
	}
	return id
}

// buildKVProgram emits the benchmark. It returns the PC ranges of the
// software probe sites in the baseline variant.
func buildKVProgram(cfg KVStoreConfig, tableImage *isa.Memory, keyData [][]uint64, ops []kvOp, accelerated bool) (*isa.Program, [][2]int) {
	b := isa.NewBuilder()
	dumpTableInit(b, tableImage, cfg.Buckets)
	for id := 1; id < len(keyData); id++ {
		for w, v := range keyData[id] {
			b.InitWord(kvKeyPtr(uint64(id))+uint64(w)*8, v)
		}
	}

	mult := kvHashMult // runtime conversion: the constant overflows int64
	b.MovI(isa.R(kvTab), kvTableBase)
	b.MovI(isa.R(kvMask), int64(cfg.Buckets-1))
	b.MovI(isa.R(kvMult), int64(mult))
	b.MovI(isa.R(kvFour), 4)
	for i := 0; i < 6; i++ {
		b.MovI(isa.R(22+i), int64(i+3))
	}

	fillRng := rand.New(rand.NewSource(cfg.Seed + 13))
	var ranges [][2]int
	for i, op := range ops {
		emitHeapFiller(b, fillRng, cfg.FillerPerOp) // same filler flavour as the heap benchmark
		b.MovI(isa.R(kvKey), int64(op.key))
		if accelerated {
			if op.lookup {
				b.Accel(isa.R(kvVal), accel.HashLookup, isa.R(kvKey))
			} else {
				b.MovI(isa.R(kvVal), int64(op.value))
				b.Accel(isa.R(kvS), accel.HashInsert, isa.R(kvKey), isa.R(kvVal))
			}
			continue
		}
		lo := b.Len()
		if op.lookup {
			emitSoftwareLookup(b, cfg, i)
		} else {
			b.MovI(isa.R(kvVal), int64(op.value))
			emitSoftwareInsert(b, cfg, i)
		}
		ranges = append(ranges, [2]int{lo, b.Len()})
	}
	b.Halt()
	return b.MustBuild(), ranges
}

// kvHashMult mirrors the device's multiplicative-hash constant. A
// compile-time assertion in the tests keeps them in sync.
const kvHashMult uint64 = 0x9E3779B97F4A7C15

// emitHash computes the home bucket of kvKey into kvH, mirroring the
// device: multiplicative hash for integer keys, an unrolled fold over the
// key data for string keys (accel.FoldHash).
func emitHash(b *isa.Builder, cfg KVStoreConfig) {
	if cfg.KeyWords == 0 {
		b.Mul(isa.R(kvH), isa.R(kvKey), isa.R(kvMult))
		b.And(isa.R(kvH), isa.R(kvH), isa.R(kvMask))
		return
	}
	b.MovI(isa.R(kvH), 0)
	for w := 0; w < cfg.KeyWords; w++ {
		b.Load(isa.R(kvW), isa.R(kvKey), int64(w)*8)
		b.Xor(isa.R(kvH), isa.R(kvH), isa.R(kvW))
		b.Mul(isa.R(kvH), isa.R(kvH), isa.R(kvMult))
	}
	b.And(isa.R(kvH), isa.R(kvH), isa.R(kvMask))
}

// emitProbeAddr computes the bucket address kvA = tab + kvH*16.
func emitProbeAddr(b *isa.Builder) {
	b.Shl(isa.R(kvA), isa.R(kvH), isa.R(kvFour))
	b.Add(isa.R(kvA), isa.R(kvTab), isa.R(kvA))
}

// emitSoftwareLookup inlines the probe loop: result value in kvVal
// (0 when absent).
func emitSoftwareLookup(b *isa.Builder, cfg KVStoreConfig, site int) {
	loop := fmt.Sprintf("kvl%d", site)
	found := fmt.Sprintf("kvlf%d", site)
	miss := fmt.Sprintf("kvlm%d", site)
	done := fmt.Sprintf("kvld%d", site)
	emitHash(b, cfg)
	b.Label(loop)
	emitProbeAddr(b)
	b.Load(isa.R(kvS), isa.R(kvA), 0)
	b.Beq(isa.R(kvS), isa.R(kvKey), found)
	b.Beq(isa.R(kvS), isa.RZero, miss)
	b.AddI(isa.R(kvH), isa.R(kvH), 1)
	b.And(isa.R(kvH), isa.R(kvH), isa.R(kvMask))
	b.Jmp(loop)
	b.Label(found)
	b.Load(isa.R(kvVal), isa.R(kvA), 8)
	b.Jmp(done)
	b.Label(miss)
	b.MovI(isa.R(kvVal), 0)
	b.Label(done)
}

// emitSoftwareInsert inlines the probe loop: inserts {kvKey, kvVal},
// updating in place on a key match.
func emitSoftwareInsert(b *isa.Builder, cfg KVStoreConfig, site int) {
	loop := fmt.Sprintf("kvi%d", site)
	place := fmt.Sprintf("kvip%d", site)
	update := fmt.Sprintf("kviu%d", site)
	emitHash(b, cfg)
	b.Label(loop)
	emitProbeAddr(b)
	b.Load(isa.R(kvS), isa.R(kvA), 0)
	b.Beq(isa.R(kvS), isa.R(kvKey), update)
	b.Beq(isa.R(kvS), isa.RZero, place)
	b.AddI(isa.R(kvH), isa.R(kvH), 1)
	b.And(isa.R(kvH), isa.R(kvH), isa.R(kvMask))
	b.Jmp(loop)
	b.Label(place)
	b.Store(isa.R(kvKey), isa.R(kvA), 0)
	b.Label(update)
	b.Store(isa.R(kvVal), isa.R(kvA), 8)
}

// dumpTableInit seeds the initial table image from the functionally
// pre-populated memory.
func dumpTableInit(b *isa.Builder, image *isa.Memory, buckets int) {
	for i := 0; i < buckets; i++ {
		addr := uint64(kvTableBase) + uint64(i)*16
		if k := image.Load(addr); k != 0 {
			b.InitWord(addr, k)
			b.InitWord(addr+8, image.Load(addr+8))
		}
	}
}
