package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/accel"
	"repro/internal/isa"
)

// MatMulConfig parameterizes the §V-C dense matrix-multiplication
// benchmark: C = A·B over N×N float64 matrices computed through
// Block×Block cache-resident sub-matrices, with the inner kernel either
// element-wise software (baseline) or a Tile×Tile multiply-accumulate TCA.
type MatMulConfig struct {
	// N is the matrix edge. The paper uses 512; smaller sizes preserve
	// the blocking structure and are practical on a software simulator.
	N int
	// Block is the cache-blocking factor (32 in the paper: two input and
	// one output 32x32 float64 tiles are 24 KiB, fitting a 32 KiB L1).
	Block int
	// Tile is the TCA's sub-matrix edge: 2, 4 or 8.
	Tile int
	// Seed drives the matrix contents.
	Seed int64
}

// Validate reports configuration errors.
func (c MatMulConfig) Validate() error {
	switch {
	case c.N < 2 || c.Block < 2 || c.Tile < 2:
		return fmt.Errorf("workload: matmul dims too small (N=%d B=%d t=%d)", c.N, c.Block, c.Tile)
	case c.N%c.Block != 0:
		return fmt.Errorf("workload: N=%d not divisible by block=%d", c.N, c.Block)
	case c.Block%c.Tile != 0:
		return fmt.Errorf("workload: block=%d not divisible by tile=%d", c.Block, c.Tile)
	case c.Tile != 2 && c.Tile != 4 && c.Tile != 8:
		return fmt.Errorf("workload: tile=%d unsupported (want 2/4/8)", c.Tile)
	}
	return nil
}

// Matrix base addresses.
const (
	matABase = 0x0100_0000
	matBBase = 0x0400_0000
	matCBase = 0x0700_0000
)

// Matmul register plan.
const (
	mrBI, mrBJ, mrBK = 1, 2, 3 // block indices (counting down)
	mrI, mrJ, mrK    = 4, 5, 6 // in-block indices (counting down)
	mrRowA           = 8       // &A[row][bk*B]
	mrRowC           = 9       // &C[row][bj*B]
	mrColB           = 10      // &B[bk*B][bj*B + j]
	mrPA, mrPB       = 11, 12  // moving element pointers
	mrPC             = 13      // &C[row][bj*B + j]
	mrT1, mrT2       = 14, 15
	mrBlkA           = 22 // &A[bi*B][bk*B] for the current block triple
	mrBlkB           = 23 // &B[bk*B][bj*B]
	mrBlkC           = 24 // &C[bi*B][bj*B]
	mrStrideN        = 25 // N*8 (row stride in bytes)
	mrConst8         = 26
	mrTileA          = 27 // tile pointers for the accelerated kernel
	mrTileB          = 28
	mrTileC          = 29
)

// MatMul builds the benchmark pair and measures the baseline's dynamic
// instruction accounting with the functional interpreter (the kernel is
// loop-structured, so static counts do not equal dynamic counts).
func MatMul(cfg MatMulConfig) (*Workload, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	base, regionLo, regionHi := buildMatMul(cfg, false)
	acc, _, _ := buildMatMul(cfg, true)

	// Measure total and in-region dynamic counts on the golden model.
	it := isa.NewInterp(base, nil)
	ridx := it.CountRange(regionLo, regionHi)
	if err := it.Run(1 << 62); err != nil {
		return nil, fmt.Errorf("workload: matmul baseline measurement: %w", err)
	}

	nb := cfg.N / cfg.Block
	tilesPerBlock := cfg.Block / cfg.Tile
	invocations := uint64(nb) * uint64(nb) * uint64(nb) *
		uint64(tilesPerBlock) * uint64(tilesPerBlock) * uint64(tilesPerBlock)

	w := &Workload{
		Name: fmt.Sprintf("matmul-%dx%d", cfg.Tile, cfg.Tile),
		Description: fmt.Sprintf("%dx%d DGEMM, %dx%d blocking, %dx%d TCA",
			cfg.N, cfg.N, cfg.Block, cfg.Block, cfg.Tile, cfg.Tile),
		Baseline:             base,
		Accelerated:          acc,
		Acceleratable:        it.RangeCount(ridx),
		Invocations:          invocations,
		BaselineInstructions: it.Stats.Retired,
		NewDevice: func() isa.AccelDevice {
			return accel.NewMatMul(cfg.Tile, uint64(cfg.N)*8)
		},
		DeviceKey: fmt.Sprintf("matmul:tile=%d,stride=%d", cfg.Tile, uint64(cfg.N)*8),
		// Latency is memory-dependent; the harness measures it from the
		// simulator's event trace instead of assuming one.
		AccelLatency: 0,
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}

// buildMatMul emits the blocked kernel. It returns the program and the
// static PC range of the acceleratable region (the in-block multiply) in
// the baseline variant.
func buildMatMul(cfg MatMulConfig, accelerated bool) (prog *isa.Program, regionLo, regionHi int) {
	b := isa.NewBuilder()
	initMatrices(b, cfg)

	n64 := int64(cfg.N)
	blk := int64(cfg.Block)
	nb := int64(cfg.N / cfg.Block)

	b.MovI(isa.R(mrStrideN), n64*8)
	b.MovI(isa.R(mrConst8), 8)

	// Block loops count down from nb to 1; the live index is (nb - reg).
	b.MovI(isa.R(mrBI), nb)
	b.Label("bi")
	b.MovI(isa.R(mrBJ), nb)
	b.Label("bj")
	b.MovI(isa.R(mrBK), nb)
	b.Label("bk")

	// Block base addresses:
	//   blkA = A + ((nb-bi)*B*N + (nb-bk)*B)*8
	//   blkB = B + ((nb-bk)*B*N + (nb-bj)*B)*8
	//   blkC = C + ((nb-bi)*B*N + (nb-bj)*B)*8
	emitBlockBase(b, mrBlkA, matABase, mrBI, mrBK, nb, blk, n64)
	emitBlockBase(b, mrBlkB, matBBase, mrBK, mrBJ, nb, blk, n64)
	emitBlockBase(b, mrBlkC, matCBase, mrBI, mrBJ, nb, blk, n64)

	if accelerated {
		emitTileLoops(b, cfg)
	} else {
		regionLo = b.Len()
		emitBlockMultiply(b, cfg)
		regionHi = b.Len()
	}

	b.AddI(isa.R(mrBK), isa.R(mrBK), -1)
	b.Bne(isa.R(mrBK), isa.RZero, "bk")
	b.AddI(isa.R(mrBJ), isa.R(mrBJ), -1)
	b.Bne(isa.R(mrBJ), isa.RZero, "bj")
	b.AddI(isa.R(mrBI), isa.R(mrBI), -1)
	b.Bne(isa.R(mrBI), isa.RZero, "bi")
	b.Halt()
	return b.MustBuild(), regionLo, regionHi
}

// emitBlockBase computes base + ((nb-rowCtr)*B*N + (nb-colCtr)*B)*8 into
// dst using mrT1/mrT2 as scratch.
func emitBlockBase(b *isa.Builder, dst int, base int64, rowCtr, colCtr int, nb, blk, n int64) {
	b.MovI(isa.R(mrT1), nb)
	b.Sub(isa.R(mrT1), isa.R(mrT1), isa.R(rowCtr)) // nb - rowCtr
	b.MovI(isa.R(mrT2), blk*n*8)
	b.Mul(isa.R(mrT1), isa.R(mrT1), isa.R(mrT2))
	b.MovI(isa.R(mrT2), nb)
	b.Sub(isa.R(mrT2), isa.R(mrT2), isa.R(colCtr)) // nb - colCtr
	b.Mul(isa.R(mrT2), isa.R(mrT2), isa.R(dstScratch))
	b.Add(isa.R(mrT1), isa.R(mrT1), isa.R(mrT2))
	b.MovI(isa.R(dst), base)
	b.Add(isa.R(dst), isa.R(dst), isa.R(mrT1))
}

// dstScratch holds B*8, set once in initMatrices' epilogue.
const dstScratch = 30

// emitBlockMultiply is the software element-wise kernel over one B×B block
// triple: C_blk += A_blk * B_blk. This is the acceleratable region.
func emitBlockMultiply(b *isa.Builder, cfg MatMulConfig) {
	blk := int64(cfg.Block)
	// rowA = blkA; rowC = blkC
	b.Add(isa.R(mrRowA), isa.R(mrBlkA), isa.RZero)
	b.Add(isa.R(mrRowC), isa.R(mrBlkC), isa.RZero)
	b.MovI(isa.R(mrI), blk)
	b.Label("mm_i")
	{
		// colB = blkB; pC = rowC
		b.Add(isa.R(mrColB), isa.R(mrBlkB), isa.RZero)
		b.Add(isa.R(mrPC), isa.R(mrRowC), isa.RZero)
		b.MovI(isa.R(mrJ), blk)
		b.Label("mm_j")
		{
			// acc = *pC; pA = rowA; pB = colB
			b.FLoad(isa.F(0), isa.R(mrPC), 0)
			b.Add(isa.R(mrPA), isa.R(mrRowA), isa.RZero)
			b.Add(isa.R(mrPB), isa.R(mrColB), isa.RZero)
			b.MovI(isa.R(mrK), blk)
			b.Label("mm_k")
			{
				b.FLoad(isa.F(1), isa.R(mrPA), 0)
				b.FLoad(isa.F(2), isa.R(mrPB), 0)
				b.FMA(isa.F(0), isa.F(1), isa.F(2), isa.F(0))
				b.Add(isa.R(mrPA), isa.R(mrPA), isa.R(mrConst8))
				b.Add(isa.R(mrPB), isa.R(mrPB), isa.R(mrStrideN))
				b.AddI(isa.R(mrK), isa.R(mrK), -1)
				b.Bne(isa.R(mrK), isa.RZero, "mm_k")
			}
			b.FStore(isa.F(0), isa.R(mrPC), 0)
			b.Add(isa.R(mrPC), isa.R(mrPC), isa.R(mrConst8))
			b.Add(isa.R(mrColB), isa.R(mrColB), isa.R(mrConst8))
			b.AddI(isa.R(mrJ), isa.R(mrJ), -1)
			b.Bne(isa.R(mrJ), isa.RZero, "mm_j")
		}
		b.Add(isa.R(mrRowA), isa.R(mrRowA), isa.R(mrStrideN))
		b.Add(isa.R(mrRowC), isa.R(mrRowC), isa.R(mrStrideN))
		b.AddI(isa.R(mrI), isa.R(mrI), -1)
		b.Bne(isa.R(mrI), isa.RZero, "mm_i")
	}
}

// emitTileLoops is the accelerated kernel over one B×B block triple: loops
// over t×t tiles invoking the TCA for each (ti, tj, tk).
func emitTileLoops(b *isa.Builder, cfg MatMulConfig) {
	tiles := int64(cfg.Block / cfg.Tile)
	tileBytes := int64(cfg.Tile) * 8
	tileRows := int64(cfg.Tile) * int64(cfg.N) * 8

	// tileA row advances with ti and tk; tileB with tk and tj; tileC
	// with ti and tj. Loop ti (rows of C), tj (cols of C), tk (depth).
	b.MovI(isa.R(mrI), tiles)                      // ti counter
	b.Add(isa.R(mrRowA), isa.R(mrBlkA), isa.RZero) // &A[ti*t][bk*B]
	b.Add(isa.R(mrRowC), isa.R(mrBlkC), isa.RZero) // &C[ti*t][bj*B]
	b.Label("tl_i")
	{
		b.MovI(isa.R(mrJ), tiles) // tj counter
		b.Add(isa.R(mrTileC), isa.R(mrRowC), isa.RZero)
		b.Add(isa.R(mrColB), isa.R(mrBlkB), isa.RZero) // &B[bk*B][tj*t]
		b.Label("tl_j")
		{
			b.MovI(isa.R(mrK), tiles) // tk counter
			b.Add(isa.R(mrTileA), isa.R(mrRowA), isa.RZero)
			b.Add(isa.R(mrTileB), isa.R(mrColB), isa.RZero)
			b.Label("tl_k")
			{
				b.Accel(isa.RZero, accel.MatMulMAC,
					isa.R(mrTileA), isa.R(mrTileB), isa.R(mrTileC))
				b.AddI(isa.R(mrTileA), isa.R(mrTileA), tileBytes)
				b.AddI(isa.R(mrTileB), isa.R(mrTileB), tileRows)
				b.AddI(isa.R(mrK), isa.R(mrK), -1)
				b.Bne(isa.R(mrK), isa.RZero, "tl_k")
			}
			b.AddI(isa.R(mrTileC), isa.R(mrTileC), tileBytes)
			b.AddI(isa.R(mrColB), isa.R(mrColB), tileBytes)
			b.AddI(isa.R(mrJ), isa.R(mrJ), -1)
			b.Bne(isa.R(mrJ), isa.RZero, "tl_j")
		}
		b.AddI(isa.R(mrRowA), isa.R(mrRowA), tileRows)
		b.AddI(isa.R(mrRowC), isa.R(mrRowC), tileRows)
		b.AddI(isa.R(mrI), isa.R(mrI), -1)
		b.Bne(isa.R(mrI), isa.RZero, "tl_i")
	}
}

// initMatrices fills A and B with small deterministic integers (so the
// differently-associated software and TCA accumulations agree exactly in
// float64) and zeroes C implicitly.
func initMatrices(b *isa.Builder, cfg MatMulConfig) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.N
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			off := uint64(i*n+j) * 8
			b.InitFloat(matABase+off, float64(rng.Intn(16)))
			b.InitFloat(matBBase+off, float64(rng.Intn(16)))
		}
	}
	// dstScratch = B*8 for block-base computations.
	b.MovI(isa.R(dstScratch), int64(cfg.Block)*8)
}
