package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/accel"
	"repro/internal/isa"
	"repro/internal/redfa"
)

// RegexMatchConfig parameterizes the regular-expression benchmark — the
// "regex" accelerator of the paper's Fig. 2 (reference [6]): repeated DFA
// matches over a pool of input strings.
type RegexMatchConfig struct {
	// Pattern is the expression (redfa syntax: literals, '.', classes,
	// '*', '+', '?').
	Pattern string
	// Matches is the number of match calls.
	Matches int
	// FillerPerOp is the non-acceleratable instruction count between
	// calls.
	FillerPerOp int
	// Inputs is the pool of input strings; MaxLen their maximum symbol
	// count (pool slots are 512 bytes: up to 63 symbols + terminator).
	Inputs int
	MaxLen int
	Seed   int64
}

// Validate reports configuration errors.
func (c RegexMatchConfig) Validate() error {
	switch {
	case c.Pattern == "":
		return fmt.Errorf("workload: empty pattern")
	case c.Matches < 2:
		return fmt.Errorf("workload: regex needs >= 2 matches")
	case c.FillerPerOp < 0:
		return fmt.Errorf("workload: negative filler")
	case c.Inputs < 2:
		return fmt.Errorf("workload: regex needs >= 2 inputs")
	case c.MaxLen < 1 || c.MaxLen > 60:
		return fmt.Errorf("workload: max length %d out of [1,60]", c.MaxLen)
	}
	return nil
}

// Memory layout.
const (
	reTableBase  = 0x00A0_0000
	reFinalBase  = 0x00B8_0000
	reInputsBase = 0x00C0_0000
	reInputSlot  = 512
)

// Registers of the generated benchmark.
const (
	reRes   = 1  // match result
	reIn    = 2  // input cursor
	reState = 3  // DFA state
	reSym   = 4  // current symbol
	reOff   = 5  // table offset scratch
	reA     = 6  // address scratch
	reTerm  = 17 // terminator bound (256)
	reTab   = 18 // transition table base
	reFin   = 19 // finality table base
	reC8    = 20 // constant 8 (state<<8)
	reC3    = 21 // constant 3 (<<3 = *8)
)

// RegexMatch builds the regex benchmark pair over one compiled pattern.
// Half the input pool is sampled from the DFA's accepted language (random
// accepting walks), half is random noise, so both outcomes and a spread of
// walk lengths are exercised.
func RegexMatch(cfg RegexMatchConfig) (*Workload, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	dfa, err := redfa.Compile(cfg.Pattern)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	inputs := make([][]byte, cfg.Inputs)
	alphabet := patternAlphabet(cfg.Pattern)
	for i := range inputs {
		if i%2 == 0 {
			if s, ok := acceptingWalk(dfa, rng, cfg.MaxLen); ok {
				inputs[i] = s
				continue
			}
		}
		n := 1 + rng.Intn(cfg.MaxLen)
		s := make([]byte, n)
		for j := range s {
			s[j] = alphabet[rng.Intn(len(alphabet))]
		}
		inputs[i] = s
	}
	picks := make([]int, cfg.Matches)
	for i := range picks {
		picks[i] = rng.Intn(cfg.Inputs)
	}

	build := func(accelerated bool) (*isa.Program, [][2]int, redfa.Layout, error) {
		b := isa.NewBuilder()
		layout, err := dfa.Serialize(b, reTableBase, reFinalBase)
		if err != nil {
			return nil, nil, layout, err
		}
		for i, s := range inputs {
			redfa.WriteString(b, reInputsBase+uint64(i)*reInputSlot, s)
		}
		b.MovI(isa.R(reTerm), redfa.Terminator)
		b.MovI(isa.R(reTab), reTableBase)
		b.MovI(isa.R(reFin), reFinalBase)
		b.MovI(isa.R(reC8), 8)
		b.MovI(isa.R(reC3), 3)
		for i := 0; i < 6; i++ {
			b.MovI(isa.R(22+i), int64(i+3))
		}
		fillRng := rand.New(rand.NewSource(cfg.Seed + 31))
		var ranges [][2]int
		for i, pick := range picks {
			emitHeapFiller(b, fillRng, cfg.FillerPerOp)
			b.MovI(isa.R(reIn), int64(reInputsBase+uint64(pick)*reInputSlot))
			if accelerated {
				b.Accel(isa.R(reRes), accel.RegexMatch, isa.R(reIn))
				continue
			}
			lo := b.Len()
			emitSoftwareDFA(b, layout, i)
			ranges = append(ranges, [2]int{lo, b.Len()})
		}
		b.Halt()
		prog, err := b.Build()
		return prog, ranges, layout, err
	}

	base, ranges, layout, err := build(false)
	if err != nil {
		return nil, err
	}
	acc, _, _, err := build(true)
	if err != nil {
		return nil, err
	}

	it := isa.NewInterp(base, nil)
	for _, r := range ranges {
		it.CountRange(r[0], r[1])
	}
	if err := it.Run(1 << 40); err != nil {
		return nil, fmt.Errorf("workload: regex baseline measurement: %w", err)
	}

	w := &Workload{
		Name: "regexmatch",
		Description: fmt.Sprintf("regex %q (%d DFA states): %d matches over %d inputs (<= %d symbols), %d filler/op",
			cfg.Pattern, layout.States, cfg.Matches, cfg.Inputs, cfg.MaxLen, cfg.FillerPerOp),
		Baseline:             base,
		Accelerated:          acc,
		Acceleratable:        it.RangeTotal(),
		Invocations:          uint64(cfg.Matches),
		BaselineInstructions: it.Stats.Retired,
		NewDevice:            func() isa.AccelDevice { return accel.NewRegex(layout) },
		DeviceKey:            fmt.Sprintf("regex:pattern=%q,states=%d", cfg.Pattern, layout.States),
		AccelLatency:         0, // length-dependent; measured from the L_T trace
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}

// emitSoftwareDFA inlines the table-driven matcher: result (0/1) in reRes.
// The walk mirrors accel.Regex symbol for symbol.
func emitSoftwareDFA(b *isa.Builder, layout redfa.Layout, site int) {
	loop := fmt.Sprintf("re%d", site)
	term := fmt.Sprintf("ret%d", site)
	reject := fmt.Sprintf("rer%d", site)
	done := fmt.Sprintf("red%d", site)
	b.MovI(isa.R(reState), int64(layout.Start))
	b.Label(loop)
	b.Load(isa.R(reSym), isa.R(reIn), 0)
	b.Bge(isa.R(reSym), isa.R(reTerm), term)
	// next = table[(state<<8 | sym) << 3]
	b.Shl(isa.R(reOff), isa.R(reState), isa.R(reC8))
	b.Add(isa.R(reOff), isa.R(reOff), isa.R(reSym))
	b.Shl(isa.R(reOff), isa.R(reOff), isa.R(reC3))
	b.Add(isa.R(reA), isa.R(reTab), isa.R(reOff))
	b.Load(isa.R(reState), isa.R(reA), 0)
	b.Beq(isa.R(reState), isa.RZero, reject)
	b.AddI(isa.R(reIn), isa.R(reIn), 8)
	b.Jmp(loop)
	b.Label(term)
	b.Shl(isa.R(reOff), isa.R(reState), isa.R(reC3))
	b.Add(isa.R(reA), isa.R(reFin), isa.R(reOff))
	b.Load(isa.R(reRes), isa.R(reA), 0)
	b.Jmp(done)
	b.Label(reject)
	b.MovI(isa.R(reRes), 0)
	b.Label(done)
}

// patternAlphabet extracts the literal symbols a pattern mentions (plus a
// decoy), for generating plausible inputs.
func patternAlphabet(pattern string) []byte {
	seen := make(map[byte]bool)
	var out []byte
	for i := 0; i < len(pattern); i++ {
		ch := pattern[i]
		switch ch {
		case '*', '+', '?', '.', '[', ']', '^':
			continue
		}
		if !seen[ch] {
			seen[ch] = true
			out = append(out, ch)
		}
	}
	out = append(out, 'z'+1) // a symbol outside most patterns
	return out
}

// acceptingWalk samples a string the DFA accepts by walking random live
// transitions toward a final state, bounded by maxLen.
func acceptingWalk(d *redfa.DFA, rng *rand.Rand, maxLen int) ([]byte, bool) {
	for attempt := 0; attempt < 32; attempt++ {
		var s []byte
		state := d.Start
		for len(s) < maxLen {
			if d.Final[state] && rng.Intn(3) == 0 {
				return s, true
			}
			// Collect live transitions.
			var syms []byte
			for sym := 0; sym < 256; sym++ {
				if d.Next[state][sym] != 0 {
					syms = append(syms, byte(sym))
				}
			}
			if len(syms) == 0 {
				break
			}
			pick := syms[rng.Intn(len(syms))]
			state = d.Next[state][pick]
			s = append(s, pick)
		}
		if d.Final[state] {
			return s, true
		}
	}
	return nil, false
}
