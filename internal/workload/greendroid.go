package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/accel"
	"repro/internal/isa"
)

// OffloadFunction describes one acceleratable function in the multi-TCA
// benchmark: its software size and its dedicated accelerator's latency.
type OffloadFunction struct {
	Name string
	// Instructions is the software body length (straight-line).
	Instructions int
	// AccelLatency is the dedicated TCA's execution time. For an
	// energy-motivated A≈1.5 design (GreenDroid), latency ≈
	// Instructions/(1.5·IPC).
	AccelLatency int
	// Weight is the relative invocation frequency.
	Weight int
}

// GreenDroidFunctions returns nine functions spanning the
// hundreds-of-instructions granularity GreenDroid maps to TCAs, with
// latencies for an A≈1.5, IPC≈2.5 design point.
func GreenDroidFunctions() []OffloadFunction {
	mk := func(name string, n, weight int) OffloadFunction {
		return OffloadFunction{Name: name, Instructions: n, AccelLatency: 1 + n*2/7, Weight: weight}
	}
	return []OffloadFunction{
		mk("memset_like", 120, 8),
		mk("utf8_decode", 180, 6),
		mk("crc_update", 240, 5),
		mk("png_filter", 320, 4),
		mk("dct_block", 400, 3),
		mk("alpha_blend", 520, 3),
		mk("mem_pool_op", 650, 2),
		mk("jpeg_huff", 800, 2),
		mk("regex_step", 950, 1),
	}
}

// MultiTCAConfig parameterizes the heterogeneous-accelerator benchmark:
// many functions, each with its own TCA, invoked with different
// frequencies — the scenario the model collapses into average (a, v)
// parameters.
type MultiTCAConfig struct {
	Functions []OffloadFunction
	// Calls is the total invocation count across functions.
	Calls int
	// FillerPerCall is the non-acceleratable instruction count between
	// calls.
	FillerPerCall int
	Seed          int64
}

// DefaultMultiTCA uses the GreenDroid function set.
func DefaultMultiTCA() MultiTCAConfig {
	return MultiTCAConfig{Functions: GreenDroidFunctions(), Calls: 120, FillerPerCall: 200, Seed: 4}
}

// Validate reports configuration errors.
func (c MultiTCAConfig) Validate() error {
	switch {
	case len(c.Functions) == 0 || len(c.Functions) > 64:
		return fmt.Errorf("workload: need 1..64 functions")
	case c.Calls < 2:
		return fmt.Errorf("workload: need >= 2 calls")
	case c.FillerPerCall < 0:
		return fmt.Errorf("workload: negative filler")
	}
	total := 0
	for _, f := range c.Functions {
		if f.Instructions < 2 || f.AccelLatency < 1 || f.Weight < 1 {
			return fmt.Errorf("workload: function %q invalid (%d instr, %d lat, weight %d)",
				f.Name, f.Instructions, f.AccelLatency, f.Weight)
		}
		total += f.Weight
	}
	if total == 0 {
		return fmt.Errorf("workload: zero total weight")
	}
	return nil
}

// MultiTCA builds the heterogeneous benchmark pair: per call, the baseline
// inlines the sampled function's software body; the accelerated version
// invokes that function's dedicated TCA through an accel.Mux.
func MultiTCA(cfg MultiTCAConfig) (*Workload, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Weighted function sampling.
	var lookup []int
	for i, f := range cfg.Functions {
		for w := 0; w < f.Weight; w++ {
			lookup = append(lookup, i)
		}
	}
	calls := make([]int, cfg.Calls)
	for i := range calls {
		calls[i] = lookup[rng.Intn(len(lookup))]
	}

	build := func(accelerated bool) *isa.Program {
		mixRng := rand.New(rand.NewSource(cfg.Seed + 41))
		b := isa.NewBuilder()
		b.MovI(isa.R(15), 0x6000)
		for i := 0; i < 8; i++ {
			b.MovI(isa.R(16+i), int64(3*i+1))
		}
		for _, fi := range calls {
			emitFiller(mixRng, b, cfg.FillerPerCall)
			f := cfg.Functions[fi]
			if accelerated {
				b.Accel(isa.R(24), accel.MuxKind(fi, 0), isa.R(16))
				emitFiller(mixRng, nil, f.Instructions) // keep streams aligned
			} else {
				emitFiller(mixRng, b, f.Instructions)
			}
		}
		b.Halt()
		return b.MustBuild()
	}
	base := build(false)
	acc := build(true)

	var acceleratable uint64
	for _, fi := range calls {
		acceleratable += uint64(cfg.Functions[fi].Instructions)
	}
	w := &Workload{
		Name: "multitca",
		Description: fmt.Sprintf("multi-TCA (GreenDroid-style): %d calls over %d functions, %d filler/call",
			cfg.Calls, len(cfg.Functions), cfg.FillerPerCall),
		Baseline:             base,
		Accelerated:          acc,
		Acceleratable:        acceleratable,
		Invocations:          uint64(cfg.Calls),
		BaselineInstructions: uint64(len(base.Code)), // straight-line
		NewDevice: func() isa.AccelDevice {
			devs := make([]isa.AccelDevice, len(cfg.Functions))
			for i, f := range cfg.Functions {
				devs[i] = accel.NewFixedLatency(f.AccelLatency)
			}
			mux, err := accel.NewMux(devs...)
			if err != nil {
				panic(err)
			}
			return mux
		},
		DeviceKey: multiTCADeviceKey(cfg),
		// Heterogeneous latencies: feed the model the weighted mean.
		AccelLatency: weightedMeanLatency(cfg, calls),
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}

// multiTCADeviceKey canonically names the mux: the ordered list of
// per-function fixed latencies fully determines its behavior.
func multiTCADeviceKey(cfg MultiTCAConfig) string {
	var b strings.Builder
	b.WriteString("mux:fixed=")
	for i, f := range cfg.Functions {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", f.AccelLatency)
	}
	return b.String()
}

// weightedMeanLatency averages the per-call accelerator latencies of the
// actual call sequence — the model's single-accelerator abstraction of the
// heterogeneous complex.
func weightedMeanLatency(cfg MultiTCAConfig, calls []int) float64 {
	var sum float64
	for _, fi := range calls {
		sum += float64(cfg.Functions[fi].AccelLatency)
	}
	return sum / float64(len(calls))
}
