package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/accel"
	"repro/internal/isa"
)

// StringMatchConfig parameterizes the string-function benchmark: pairwise
// comparisons over a dictionary of variable-length strings — the "string
// fn" accelerator of the paper's Fig. 2 (references [6] and [10]).
type StringMatchConfig struct {
	// Comparisons is the number of strcmp calls.
	Comparisons int
	// FillerPerOp is the non-acceleratable instruction count between
	// calls.
	FillerPerOp int
	// Dictionary is the number of strings; MinWords/MaxWords their
	// length range (in 8-byte words, before the zero terminator).
	Dictionary int
	MinWords   int
	MaxWords   int
	// SharedPrefix biases string contents so comparisons run deep
	// before diverging (0..MaxWords words of common prefix).
	SharedPrefix int
	Seed         int64
}

// Validate reports configuration errors.
func (c StringMatchConfig) Validate() error {
	switch {
	case c.Comparisons < 2:
		return fmt.Errorf("workload: stringmatch needs >= 2 comparisons")
	case c.FillerPerOp < 0:
		return fmt.Errorf("workload: negative filler")
	case c.Dictionary < 2:
		return fmt.Errorf("workload: dictionary needs >= 2 strings")
	case c.MinWords < 1 || c.MaxWords < c.MinWords:
		return fmt.Errorf("workload: bad length range [%d,%d]", c.MinWords, c.MaxWords)
	case c.SharedPrefix < 0 || c.SharedPrefix > c.MinWords:
		return fmt.Errorf("workload: shared prefix %d exceeds min length %d", c.SharedPrefix, c.MinWords)
	}
	return nil
}

// String storage layout.
const (
	smStringsBase = 0x0080_0000
	smStride      = 1 << 12 // one string per 4 KiB slot
)

// Registers of the generated benchmark.
const (
	smA   = 1 // first string pointer
	smB   = 2 // second string pointer
	smWA  = 3 // word from A
	smWB  = 4 // word from B
	smRes = 5 // comparison result (accel.StrEqual/Greater/Less)
)

// StringMatch builds the string-compare benchmark pair. The baseline
// inlines a word-compare loop per call; the accelerated version issues one
// strcmp TCA invocation. Result encoding matches accel.StrCmp exactly, so
// final architectural state agrees.
func StringMatch(cfg StringMatchConfig) (*Workload, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Build the dictionary.
	strings := make([][]uint64, cfg.Dictionary)
	prefix := make([]uint64, cfg.SharedPrefix)
	for i := range prefix {
		prefix[i] = uint64(rng.Intn(200) + 1)
	}
	for i := range strings {
		n := cfg.MinWords + rng.Intn(cfg.MaxWords-cfg.MinWords+1)
		s := make([]uint64, n)
		copy(s, prefix)
		for w := len(prefix); w < n; w++ {
			s[w] = uint64(rng.Intn(200) + 1)
		}
		strings[i] = s
	}

	// Comparison pairs.
	type pair struct{ a, b int }
	pairs := make([]pair, cfg.Comparisons)
	for i := range pairs {
		pairs[i] = pair{a: rng.Intn(cfg.Dictionary), b: rng.Intn(cfg.Dictionary)}
	}

	build := func(accelerated bool) (*isa.Program, [][2]int) {
		b := isa.NewBuilder()
		for i, s := range strings {
			base := smStringsBase + uint64(i)*smStride
			for w, v := range s {
				b.InitWord(base+uint64(w)*8, v)
			}
			// Terminator words are zero by default; no init needed.
		}
		for i := 0; i < 6; i++ {
			b.MovI(isa.R(22+i), int64(i+3))
		}
		fillRng := rand.New(rand.NewSource(cfg.Seed + 29))
		var ranges [][2]int
		for i, p := range pairs {
			emitHeapFiller(b, fillRng, cfg.FillerPerOp)
			b.MovI(isa.R(smA), int64(smStringsBase+uint64(p.a)*smStride))
			b.MovI(isa.R(smB), int64(smStringsBase+uint64(p.b)*smStride))
			if accelerated {
				b.Accel(isa.R(smRes), accel.StrCompare, isa.R(smA), isa.R(smB))
				continue
			}
			lo := b.Len()
			emitSoftwareStrcmp(b, i)
			ranges = append(ranges, [2]int{lo, b.Len()})
		}
		b.Halt()
		return b.MustBuild(), ranges
	}

	base, ranges := build(false)
	acc, _ := build(true)

	it := isa.NewInterp(base, nil)
	for _, r := range ranges {
		it.CountRange(r[0], r[1])
	}
	if err := it.Run(1 << 40); err != nil {
		return nil, fmt.Errorf("workload: stringmatch baseline measurement: %w", err)
	}

	w := &Workload{
		Name: "stringmatch",
		Description: fmt.Sprintf("strcmp: %d comparisons over %d strings of %d-%d words (prefix %d), %d filler/op",
			cfg.Comparisons, cfg.Dictionary, cfg.MinWords, cfg.MaxWords, cfg.SharedPrefix, cfg.FillerPerOp),
		Baseline:             base,
		Accelerated:          acc,
		Acceleratable:        it.RangeTotal(),
		Invocations:          uint64(cfg.Comparisons),
		BaselineInstructions: it.Stats.Retired,
		NewDevice:            func() isa.AccelDevice { return accel.NewStrCmp() },
		DeviceKey:            "strcmp",
		AccelLatency:         0, // length-dependent; measured from the L_T trace
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}

// emitSoftwareStrcmp inlines a word-compare loop over the pointers in
// smA/smB, leaving accel.StrEqual / StrGreater / StrLess in smRes. The
// comparison semantics mirror accel.StrCmp word for word.
func emitSoftwareStrcmp(b *isa.Builder, site int) {
	loop := fmt.Sprintf("sc%d", site)
	diff := fmt.Sprintf("scd%d", site)
	less := fmt.Sprintf("scl%d", site)
	eq := fmt.Sprintf("sce%d", site)
	done := fmt.Sprintf("scx%d", site)
	b.Label(loop)
	b.Load(isa.R(smWA), isa.R(smA), 0)
	b.Load(isa.R(smWB), isa.R(smB), 0)
	b.Bne(isa.R(smWA), isa.R(smWB), diff)
	b.Beq(isa.R(smWA), isa.RZero, eq) // both terminators
	b.AddI(isa.R(smA), isa.R(smA), 8)
	b.AddI(isa.R(smB), isa.R(smB), 8)
	b.Jmp(loop)
	b.Label(diff)
	// Unsigned-style compare via Slt on values < 2^63 (generator keeps
	// words small): A < B (or A terminated) -> less.
	b.Slt(isa.R(smRes), isa.R(smWA), isa.R(smWB))
	b.Bne(isa.R(smRes), isa.RZero, less)
	b.MovI(isa.R(smRes), accel.StrGreater)
	b.Jmp(done)
	b.Label(less)
	b.MovI(isa.R(smRes), accel.StrLess)
	b.Jmp(done)
	b.Label(eq)
	b.MovI(isa.R(smRes), accel.StrEqual)
	b.Label(done)
}
