package workload

import (
	"testing"

	"repro/internal/accel"
	"repro/internal/isa"
	"repro/internal/sim"
)

func daeStreamTestConfig() DAEStreamConfig {
	return DAEStreamConfig{
		Streams: 12, WordsPerStream: 20, FillerPerOp: 25,
		ChunkWords: 8, ComputePerChunk: 6, Startup: 15, Seed: 7,
	}
}

// TestDAEStreamEquivalence runs both program variants on the golden model
// and requires the same reduction totals: the software loops and the DAE
// device implement one function.
func TestDAEStreamEquivalence(t *testing.T) {
	w, err := DAEStream(daeStreamTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	ib := isa.NewInterp(w.Baseline, nil)
	if err := ib.Run(1 << 30); err != nil {
		t.Fatal(err)
	}
	dev := w.NewDevice()
	ia := isa.NewInterp(w.Accelerated, dev)
	if err := ia.Run(1 << 30); err != nil {
		t.Fatal(err)
	}
	if ib.Regs[28] != ia.Regs[28] {
		t.Errorf("totals diverge: baseline %#x, accelerated %#x", ib.Regs[28], ia.Regs[28])
	}
	if ib.Regs[28] == 0 {
		t.Error("reduction total is zero — streams not initialized")
	}
	d := dev.(*accel.DAE)
	if d.Invocations != w.Invocations || d.WordsStreamed != 12*20 {
		t.Errorf("device counters = (%d, %d), want (%d, %d)",
			d.Invocations, d.WordsStreamed, w.Invocations, 12*20)
	}
	if ib.Stats.Retired != w.BaselineInstructions {
		t.Errorf("baseline dynamic %d != recorded %d", ib.Stats.Retired, w.BaselineInstructions)
	}
	if ia.Stats.AccelInvocations != w.Invocations {
		t.Errorf("invocations %d, want %d", ia.Stats.AccelInvocations, w.Invocations)
	}
}

func TestDAEStreamAccounting(t *testing.T) {
	cfg := daeStreamTestConfig()
	w, err := DAEStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Region = base move + accumulator clear + (load, add) per word.
	perStream := uint64(2 + 2*cfg.WordsPerStream)
	if want := uint64(cfg.Streams) * perStream; w.Acceleratable != want {
		t.Errorf("acceleratable = %d, want %d", w.Acceleratable, want)
	}
	if w.Invocations != uint64(cfg.Streams) {
		t.Errorf("invocations = %d, want %d", w.Invocations, cfg.Streams)
	}
	if w.AccelLatency != 0 {
		t.Errorf("accel latency = %v, want 0 (memory-dependent, measured)", w.AccelLatency)
	}
	if w.DeviceKey != "dae:chunk=8,comp=6,start=15" {
		t.Errorf("device key = %q", w.DeviceKey)
	}
}

func TestDAEStreamValidation(t *testing.T) {
	bad := []DAEStreamConfig{
		{Streams: 0, WordsPerStream: 1, FillerPerOp: 1, ChunkWords: 4, ComputePerChunk: 1},
		{Streams: 1, WordsPerStream: 0, FillerPerOp: 1, ChunkWords: 4, ComputePerChunk: 1},
		{Streams: 1, WordsPerStream: 1, FillerPerOp: 0, ChunkWords: 4, ComputePerChunk: 1},
		{Streams: 1, WordsPerStream: 1, FillerPerOp: 1, ChunkWords: 9, ComputePerChunk: 1},
		{Streams: 1, WordsPerStream: 1, FillerPerOp: 1, ChunkWords: 4, ComputePerChunk: 0},
		{Streams: 1, WordsPerStream: 1, FillerPerOp: 1, ChunkWords: 4, ComputePerChunk: 1, Startup: -1},
	}
	for i, cfg := range bad {
		if _, err := DAEStream(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func loopNestTestConfig() LoopNestConfig {
	return LoopNestConfig{
		Calls: 15, FillerPerOp: 25, Trips: 4, Depth: 3,
		IterLatency: 2, ConfigLatency: 40, Seed: 8,
	}
}

// TestLoopNestEquivalence runs both program variants on the golden model:
// the unrolled software recurrence and the accelerator datapath must agree.
func TestLoopNestEquivalence(t *testing.T) {
	w, err := LoopNest(loopNestTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	ib := isa.NewInterp(w.Baseline, nil)
	if err := ib.Run(1 << 30); err != nil {
		t.Fatal(err)
	}
	dev := w.NewDevice()
	ia := isa.NewInterp(w.Accelerated, dev)
	if err := ia.Run(1 << 30); err != nil {
		t.Fatal(err)
	}
	if ib.Regs[28] != ia.Regs[28] {
		t.Errorf("totals diverge: baseline %#x, accelerated %#x", ib.Regs[28], ia.Regs[28])
	}
	d := dev.(*accel.LoopNest)
	if d.Invocations != 15 || d.Iterations != 15*64 {
		t.Errorf("device counters = (%d, %d), want (15, %d)", d.Invocations, d.Iterations, 15*64)
	}
	if ib.Stats.Retired != w.BaselineInstructions {
		t.Errorf("baseline dynamic %d != recorded %d", ib.Stats.Retired, w.BaselineInstructions)
	}
}

func TestLoopNestAccounting(t *testing.T) {
	cfg := loopNestTestConfig()
	w, err := LoopNest(cfg)
	if err != nil {
		t.Fatal(err)
	}
	iters := 64 // 4^3
	if want := uint64(cfg.Calls) * uint64(2+2*iters); w.Acceleratable != want {
		t.Errorf("acceleratable = %d, want %d", w.Acceleratable, want)
	}
	// The closed-form device latency feeds the model's explicit path.
	if want := float64(cfg.ConfigLatency + iters*cfg.IterLatency); w.AccelLatency != want {
		t.Errorf("accel latency = %v, want %v", w.AccelLatency, want)
	}
	if w.DeviceKey != "loopnest:depth=3,iter=2,conf=40" {
		t.Errorf("device key = %q", w.DeviceKey)
	}
}

func TestLoopNestValidation(t *testing.T) {
	bad := []LoopNestConfig{
		{Calls: 0, FillerPerOp: 1, Trips: 2, Depth: 1, IterLatency: 1},
		{Calls: 1, FillerPerOp: 0, Trips: 2, Depth: 1, IterLatency: 1},
		{Calls: 1, FillerPerOp: 1, Trips: 0, Depth: 1, IterLatency: 1},
		{Calls: 1, FillerPerOp: 1, Trips: 2, Depth: 0, IterLatency: 1},
		{Calls: 1, FillerPerOp: 1, Trips: 2, Depth: 1, IterLatency: 0},
		{Calls: 1, FillerPerOp: 1, Trips: 2, Depth: 1, IterLatency: 1, ConfigLatency: -1},
		{Calls: 64, FillerPerOp: 1, Trips: 32, Depth: 4, IterLatency: 1}, // unroll bound
	}
	for i, cfg := range bad {
		if _, err := LoopNest(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// TestEngineWorkloadDeterminism pins byte-identical regeneration for both
// new families.
func TestEngineWorkloadDeterminism(t *testing.T) {
	d1, err := DAEStream(daeStreamTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	d2, _ := DAEStream(daeStreamTestConfig())
	l1, err := LoopNest(loopNestTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	l2, _ := LoopNest(loopNestTestConfig())
	for _, pair := range []struct {
		name string
		a, b *isa.Program
	}{
		{"daestream", d1.Accelerated, d2.Accelerated},
		{"loopnest", l1.Accelerated, l2.Accelerated},
	} {
		if len(pair.a.Code) != len(pair.b.Code) {
			t.Fatalf("%s: non-deterministic generation", pair.name)
		}
		for i := range pair.a.Code {
			if pair.a.Code[i] != pair.b.Code[i] {
				t.Fatalf("%s: instruction %d differs", pair.name, i)
			}
		}
	}
}

// BenchmarkDAEWorkload measures the full DAE pipeline: generate the
// matched pair, then cycle-simulate the accelerated program on the
// high-performance core in L_T mode.
func BenchmarkDAEWorkload(b *testing.B) {
	w, err := DAEStream(DAEStreamConfig{
		Streams: 8, WordsPerStream: 64, FillerPerOp: 30,
		ChunkWords: 8, ComputePerChunk: 4, Startup: 40, Seed: 9,
	})
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.HighPerfConfig()
	cfg.Mode = accel.LT

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core, err := sim.New(cfg, w.Accelerated, w.NewDevice())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.Run(2_000_000_000); err != nil {
			b.Fatal(err)
		}
	}
}
