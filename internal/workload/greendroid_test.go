package workload

import (
	"testing"

	"repro/internal/accel"
	"repro/internal/isa"
)

func TestMultiTCAAccounting(t *testing.T) {
	cfg := DefaultMultiTCA()
	cfg.Calls = 60
	w, err := MultiTCA(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Straight-line: dynamic == static, verified on the golden model.
	it := isa.NewInterp(w.Baseline, nil)
	if err := it.Run(1 << 32); err != nil {
		t.Fatal(err)
	}
	if it.Stats.Retired != w.BaselineInstructions {
		t.Errorf("baseline dynamic %d != recorded %d", it.Stats.Retired, w.BaselineInstructions)
	}
	ia := isa.NewInterp(w.Accelerated, w.NewDevice())
	if err := ia.Run(1 << 32); err != nil {
		t.Fatal(err)
	}
	if ia.Stats.AccelInvocations != uint64(cfg.Calls) {
		t.Errorf("invocations %d, want %d", ia.Stats.AccelInvocations, cfg.Calls)
	}
	// Every function's body was replaced by exactly one instruction:
	// accelerated length = baseline - acceleratable + calls.
	want := w.BaselineInstructions - w.Acceleratable + uint64(cfg.Calls)
	if ia.Stats.Retired != want {
		t.Errorf("accelerated dynamic %d, want %d", ia.Stats.Retired, want)
	}
	// GreenDroid-band granularity: hundreds of instructions.
	if g := w.Granularity(); g < 100 || g > 1000 {
		t.Errorf("granularity %v outside the GreenDroid band", g)
	}
	// Weighted mean latency matches the call mix.
	if w.AccelLatency < 10 || w.AccelLatency > 300 {
		t.Errorf("mean latency %v implausible", w.AccelLatency)
	}
}

func TestMultiTCADistinctDevicesInvoked(t *testing.T) {
	cfg := DefaultMultiTCA()
	cfg.Calls = 100
	w, err := MultiTCA(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dev := w.NewDevice().(*accel.Mux)
	ia := isa.NewInterp(w.Accelerated, dev)
	if err := ia.Run(1 << 32); err != nil {
		t.Fatal(err)
	}
	used := 0
	for i := 0; i < len(cfg.Functions); i++ {
		if fl, ok := dev.Device(i).(*accel.FixedLatency); ok && fl.Invocations > 0 {
			used++
		}
	}
	if used < 5 {
		t.Errorf("only %d of %d function TCAs invoked over 100 calls", used, len(cfg.Functions))
	}
}

func TestMultiTCAValidation(t *testing.T) {
	bad := []MultiTCAConfig{
		{Functions: nil, Calls: 10},
		{Functions: GreenDroidFunctions(), Calls: 1},
		{Functions: []OffloadFunction{{Name: "x", Instructions: 1, AccelLatency: 1, Weight: 1}}, Calls: 10},
		{Functions: []OffloadFunction{{Name: "x", Instructions: 10, AccelLatency: 0, Weight: 1}}, Calls: 10},
	}
	for i, cfg := range bad {
		if _, err := MultiTCA(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
