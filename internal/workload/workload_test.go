package workload

import (
	"testing"

	"repro/internal/accel"
	"repro/internal/isa"
)

func TestSyntheticCounts(t *testing.T) {
	cfg := SyntheticConfig{Units: 50, UnitLen: 20, Regions: 10, RegionLen: 30, AccelLatency: 12, Seed: 1}
	w, err := Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if w.Acceleratable != 300 || w.Invocations != 10 {
		t.Errorf("accounting = %d/%d, want 300/10", w.Acceleratable, w.Invocations)
	}
	// Straight-line: dynamic == static, verified on the golden model.
	it := isa.NewInterp(w.Baseline, nil)
	if err := it.Run(1 << 30); err != nil {
		t.Fatal(err)
	}
	if it.Stats.Retired != w.BaselineInstructions {
		t.Errorf("baseline dynamic %d != recorded %d", it.Stats.Retired, w.BaselineInstructions)
	}
	// Accelerated program is shorter by (RegionLen-1) per region.
	wantAcc := w.BaselineInstructions - uint64(cfg.Regions*(cfg.RegionLen-1))
	ia := isa.NewInterp(w.Accelerated, w.NewDevice())
	if err := ia.Run(1 << 30); err != nil {
		t.Fatal(err)
	}
	if ia.Stats.Retired != wantAcc {
		t.Errorf("accelerated dynamic %d, want %d", ia.Stats.Retired, wantAcc)
	}
	if ia.Stats.AccelInvocations != w.Invocations {
		t.Errorf("invocations %d, want %d", ia.Stats.AccelInvocations, w.Invocations)
	}
	// Derived ratios.
	if g := w.Granularity(); g != 30 {
		t.Errorf("granularity = %v, want 30", g)
	}
	if a := w.CoverageFrac(); a <= 0 || a >= 1 {
		t.Errorf("coverage = %v out of range", a)
	}
}

func TestSyntheticDeterminism(t *testing.T) {
	cfg := SyntheticConfig{Units: 20, UnitLen: 10, Regions: 5, RegionLen: 8, AccelLatency: 4, Seed: 9}
	w1, err := Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w2, _ := Synthetic(cfg)
	if len(w1.Baseline.Code) != len(w2.Baseline.Code) {
		t.Fatal("non-deterministic generation")
	}
	for i := range w1.Baseline.Code {
		if w1.Baseline.Code[i] != w2.Baseline.Code[i] {
			t.Fatalf("instruction %d differs", i)
		}
	}
}

func TestSyntheticValidation(t *testing.T) {
	bad := []SyntheticConfig{
		{Units: 0, UnitLen: 1, Regions: 1, RegionLen: 2, AccelLatency: 1},
		{Units: 1, UnitLen: 1, Regions: 0, RegionLen: 2, AccelLatency: 1},
		{Units: 1, UnitLen: 1, Regions: 1, RegionLen: 1, AccelLatency: 1},
		{Units: 1, UnitLen: 1, Regions: 1, RegionLen: 2, AccelLatency: 0},
	}
	for i, cfg := range bad {
		if _, err := Synthetic(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestHeapRoutineLengths(t *testing.T) {
	// The inlined software routines must match the paper's measured uop
	// counts exactly; the generator panics if the core exceeds the
	// budget, and this test pins the arithmetic.
	cfg := HeapConfig{Operations: 40, FillerPerCall: 5, Prefill: 64, Seed: 3}
	w, err := Heap(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var mallocs, frees uint64
	for _, op := range heapOpSequenceForTest(cfg) {
		if op.malloc {
			mallocs++
		} else {
			frees++
		}
	}
	if want := mallocs*mallocUops + frees*freeUops; w.Acceleratable != want {
		t.Errorf("acceleratable = %d, want %d (%d mallocs, %d frees)",
			w.Acceleratable, want, mallocs, frees)
	}
	if w.Invocations != mallocs+frees {
		t.Errorf("invocations = %d, want %d", w.Invocations, mallocs+frees)
	}
	if w.AccelLatency != 1 {
		t.Errorf("heap TCA latency = %v, want 1 (single-cycle)", w.AccelLatency)
	}
}

func heapOpSequenceForTest(cfg HeapConfig) []heapOp {
	ops, _ := heapOpSequence(cfg)
	return ops
}

func TestHeapBaselineExecutes(t *testing.T) {
	w, err := Heap(HeapConfig{Operations: 200, FillerPerCall: 10, Prefill: 128, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	it := isa.NewInterp(w.Baseline, nil)
	if err := it.Run(1 << 30); err != nil {
		t.Fatal(err)
	}
	if it.Stats.Retired != w.BaselineInstructions {
		t.Errorf("dynamic %d != recorded %d", it.Stats.Retired, w.BaselineInstructions)
	}
	// The software allocator must never pop a null pointer: every
	// allocated pointer pushed to the live stack is within the arena.
	// (A zero pointer would have produced stores to low memory.)
	for addr := uint64(0); addr < 0x100; addr += 8 {
		if it.Mem.Load(addr) != 0 {
			t.Fatalf("stray store near null at %#x — allocator popped an empty list", addr)
		}
	}
}

func TestHeapAcceleratedExecutes(t *testing.T) {
	w, err := Heap(HeapConfig{Operations: 200, FillerPerCall: 10, Prefill: 128, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	dev := w.NewDevice()
	it := isa.NewInterp(w.Accelerated, dev)
	if err := it.Run(1 << 30); err != nil {
		t.Fatal(err)
	}
	if it.Stats.AccelInvocations != w.Invocations {
		t.Errorf("invocations %d, want %d", it.Stats.AccelInvocations, w.Invocations)
	}
	// The benchmark's common-case constraint: the TCA never misses.
	if h, ok := dev.(*accel.Heap); !ok {
		t.Fatal("heap workload must use the heap TCA")
	} else if h.Misses != 0 {
		t.Errorf("TCA misses = %d, want 0 (common-case constraint)", h.Misses)
	}
}

func TestHeapSequenceKeepsFreesValid(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		ops, maxLive := heapOpSequence(HeapConfig{Operations: 500, FillerPerCall: 1, Prefill: 64, Seed: seed})
		live := 0
		for i, op := range ops {
			if op.malloc {
				live++
			} else {
				live--
			}
			if live < 0 {
				t.Fatalf("seed %d: free with nothing live at op %d", seed, i)
			}
			if live > 64 {
				t.Fatalf("seed %d: live %d exceeds prefill cap", seed, live)
			}
		}
		if maxLive > 64 {
			t.Fatalf("seed %d: reported maxLive %d exceeds cap", seed, maxLive)
		}
	}
}

func TestMatMulCorrectness(t *testing.T) {
	cfg := MatMulConfig{N: 16, Block: 8, Tile: 4, Seed: 2}
	w, err := MatMul(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Run both variants functionally and compare every C element against
	// a direct Go computation.
	ib := isa.NewInterp(w.Baseline, nil)
	if err := ib.Run(1 << 32); err != nil {
		t.Fatal(err)
	}
	ia := isa.NewInterp(w.Accelerated, w.NewDevice())
	if err := ia.Run(1 << 32); err != nil {
		t.Fatal(err)
	}
	n := cfg.N
	a := make([]float64, n*n)
	bm := make([]float64, n*n)
	for i := 0; i < n*n; i++ {
		a[i] = ib.Mem.LoadFloat(matABase + uint64(i)*8)
		bm[i] = ib.Mem.LoadFloat(matBBase + uint64(i)*8)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var want float64
			for k := 0; k < n; k++ {
				want += a[i*n+k] * bm[k*n+j]
			}
			off := matCBase + uint64(i*n+j)*8
			if got := ib.Mem.LoadFloat(off); got != want {
				t.Fatalf("baseline C[%d][%d] = %v, want %v", i, j, got, want)
			}
			if got := ia.Mem.LoadFloat(off); got != want {
				t.Fatalf("accelerated C[%d][%d] = %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestMatMulAccounting(t *testing.T) {
	cfg := MatMulConfig{N: 16, Block: 8, Tile: 2, Seed: 2}
	w, err := MatMul(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Invocations: (N/B)^3 * (B/t)^3 = 2^3 * 4^3 = 512.
	if w.Invocations != 512 {
		t.Errorf("invocations = %d, want 512", w.Invocations)
	}
	// The element-wise kernel dominates the baseline: a > 90%.
	if a := w.CoverageFrac(); a < 0.9 {
		t.Errorf("coverage = %v, want > 0.9", a)
	}
	// Interpreter-verified invocation count.
	ia := isa.NewInterp(w.Accelerated, w.NewDevice())
	if err := ia.Run(1 << 32); err != nil {
		t.Fatal(err)
	}
	if ia.Stats.AccelInvocations != w.Invocations {
		t.Errorf("dynamic invocations %d, want %d", ia.Stats.AccelInvocations, w.Invocations)
	}
}

func TestMatMulValidation(t *testing.T) {
	bad := []MatMulConfig{
		{N: 15, Block: 8, Tile: 4},
		{N: 16, Block: 6, Tile: 4},
		{N: 16, Block: 8, Tile: 3},
		{N: 16, Block: 8, Tile: 16},
	}
	for i, cfg := range bad {
		if _, err := MatMul(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestWorkloadValidate(t *testing.T) {
	w := &Workload{Name: "x"}
	if err := w.Validate(); err == nil {
		t.Error("empty workload accepted")
	}
}

func TestTCMallocDeviceMatchesPrefill(t *testing.T) {
	// The TCA-side allocator prefill must cover the benchmark's maximum
	// live count for every class.
	cfg := HeapConfig{Operations: 300, FillerPerCall: 2, Prefill: 32, Seed: 11}
	w, err := Heap(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dev := w.NewDevice()
	it := isa.NewInterp(w.Accelerated, dev)
	if err := it.Run(1 << 30); err != nil {
		t.Fatal(err)
	}
	h := dev.(*accel.Heap)
	if h.Misses != 0 {
		t.Errorf("TCA misses = %d with prefill %d, want 0", h.Misses, cfg.Prefill)
	}
	if h.Alloc.Mallocs == 0 || h.Alloc.Frees == 0 {
		t.Error("device allocator never exercised")
	}
}
