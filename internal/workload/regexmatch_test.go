package workload

import (
	"testing"

	"repro/internal/accel"
	"repro/internal/isa"
	"repro/internal/redfa"
)

func reConfig() RegexMatchConfig {
	return RegexMatchConfig{
		Pattern: "[ab]*abb", Matches: 100, FillerPerOp: 10,
		Inputs: 20, MaxLen: 24, Seed: 6,
	}
}

func TestRegexMatchBaselineAcceleratedAgree(t *testing.T) {
	w, err := RegexMatch(reConfig())
	if err != nil {
		t.Fatal(err)
	}
	ib := isa.NewInterp(w.Baseline, nil)
	if err := ib.Run(1 << 32); err != nil {
		t.Fatal(err)
	}
	ia := isa.NewInterp(w.Accelerated, w.NewDevice())
	if err := ia.Run(1 << 32); err != nil {
		t.Fatal(err)
	}
	if ib.Reg(isa.R(reRes)) != ia.Reg(isa.R(reRes)) {
		t.Errorf("final match results differ: sw %d vs tca %d",
			ib.Reg(isa.R(reRes)), ia.Reg(isa.R(reRes)))
	}
	if ia.Stats.AccelInvocations != w.Invocations {
		t.Errorf("invocations %d, want %d", ia.Stats.AccelInvocations, w.Invocations)
	}
	// Regex matching sits at the coarse end of the fine-grained band
	// (the paper's Fig. 2 regex marker ~300 instructions).
	if g := w.Granularity(); g < 40 || g > 900 {
		t.Errorf("granularity = %v, want regex band", g)
	}
}

// Every pool input must be classified identically by the software walk,
// the device, and the Go DFA.
func TestRegexMatchSemanticsAgainstDFA(t *testing.T) {
	cfg := reConfig()
	cfg.Matches = 2
	w, err := RegexMatch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dfa, err := redfa.Compile(cfg.Pattern)
	if err != nil {
		t.Fatal(err)
	}
	mem := w.Accelerated.NewMemoryImage()
	dev := w.NewDevice()
	for i := 0; i < cfg.Inputs; i++ {
		base := uint64(reInputsBase + i*reInputSlot)
		// Recover the input symbols from the image.
		var in []byte
		for off := uint64(0); ; off += 8 {
			wv := mem.Load(base + off)
			if wv >= redfa.Terminator {
				break
			}
			in = append(in, byte(wv))
		}
		want := uint64(0)
		if dfa.Match(in) {
			want = 1
		}
		res := dev.Invoke(isa.AccelCall{Kind: 0, Args: [3]uint64{base, 0, 0}}, mem)
		if res.Value != want {
			t.Fatalf("input %d (%q): device %d, DFA %v", i, in, res.Value, dfa.Match(in))
		}
	}
}

func TestRegexMatchHasBothOutcomes(t *testing.T) {
	w, err := RegexMatch(reConfig())
	if err != nil {
		t.Fatal(err)
	}
	dev := w.NewDevice()
	ia := isa.NewInterp(w.Accelerated, dev)
	if err := ia.Run(1 << 32); err != nil {
		t.Fatal(err)
	}
	rx, ok := dev.(*accel.Regex)
	if !ok {
		t.Fatal("regex workload must use the regex TCA")
	}
	// The pool must exercise both accept and reject paths.
	if rx.Matches == 0 || rx.Matches == rx.Invocations {
		t.Errorf("one-sided outcomes: %d/%d matches", rx.Matches, rx.Invocations)
	}
	// Serial table walks mean the device consumed at least one symbol
	// per invocation on average.
	if rx.Symbols < rx.Invocations {
		t.Error("device consumed fewer symbols than invocations")
	}
}
