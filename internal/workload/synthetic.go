package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/accel"
	"repro/internal/isa"
)

// SyntheticConfig parameterizes the §V-A adaptive microbenchmark.
type SyntheticConfig struct {
	// Units is the number of non-acceleratable filler units.
	Units int
	// UnitLen is the instruction count of one filler unit.
	UnitLen int
	// Regions is the number of acceleratable regions; sweeping it raises
	// invocation frequency and coverage together, as the paper does.
	Regions int
	// RegionLen is the baseline instruction count of one region.
	RegionLen int
	// AccelLatency is the fixed device latency replacing a region.
	AccelLatency int
	// Seed drives region placement and filler mix.
	Seed int64
}

// Validate reports configuration errors.
func (c SyntheticConfig) Validate() error {
	switch {
	case c.Units < 1 || c.UnitLen < 1:
		return fmt.Errorf("workload: synthetic needs units/unitLen >= 1")
	case c.Regions < 1 || c.RegionLen < 2:
		return fmt.Errorf("workload: synthetic needs regions >= 1, regionLen >= 2")
	case c.AccelLatency < 1:
		return fmt.Errorf("workload: synthetic needs accel latency >= 1")
	}
	return nil
}

// Synthetic builds the adaptive microbenchmark pair. Regions are placed at
// random positions between filler units ("randomly distributed within the
// program to see how our model performs while violating our assumption of
// uniform TCA distribution").
func Synthetic(cfg SyntheticConfig) (*Workload, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Random slot for each region among the Units+Regions sequence
	// positions.
	total := cfg.Units + cfg.Regions
	isRegion := make([]bool, total)
	for _, idx := range rng.Perm(total)[:cfg.Regions] {
		isRegion[idx] = true
	}

	build := func(accelerated bool) *isa.Program {
		// Re-derive the same per-unit instruction mix in both programs.
		mixRng := rand.New(rand.NewSource(cfg.Seed + 1))
		b := isa.NewBuilder()
		emitPrologue(b)
		for _, region := range isRegion {
			if region {
				// The acceleratable region uses the same mix as the
				// filler: the microbenchmark validates the model, whose
				// first-order assumption is that IPC is uniform across
				// acceleratable and non-acceleratable code (§III).
				if accelerated {
					b.Accel(isa.R(24), 0, isa.R(24))
					// Consume the region's random draws so the filler
					// after the region is identical in both variants.
					emitFiller(mixRng, nil, cfg.RegionLen)
				} else {
					emitFiller(mixRng, b, cfg.RegionLen)
				}
				continue
			}
			emitFiller(mixRng, b, cfg.UnitLen)
		}
		b.Halt()
		return b.MustBuild()
	}

	base := build(false)
	acc := build(true)
	w := &Workload{
		Name: "synthetic",
		Description: fmt.Sprintf("adaptive microbenchmark: %d filler units x %d, %d regions x %d, TCA latency %d",
			cfg.Units, cfg.UnitLen, cfg.Regions, cfg.RegionLen, cfg.AccelLatency),
		Baseline:             base,
		Accelerated:          acc,
		Acceleratable:        uint64(cfg.Regions * cfg.RegionLen),
		Invocations:          uint64(cfg.Regions),
		BaselineInstructions: uint64(len(base.Code)), // straight-line: dynamic == static
		NewDevice: func() isa.AccelDevice {
			return accel.NewFixedLatency(cfg.AccelLatency)
		},
		DeviceKey:    fmt.Sprintf("fixed:lat=%d", cfg.AccelLatency),
		AccelLatency: float64(cfg.AccelLatency),
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}

// prologueLen instructions seed the registers both program variants use.
const prologueLen = 10

func emitPrologue(b *isa.Builder) {
	b.MovI(isa.R(15), 0x6000) // scratch memory base
	for i := 0; i < 8; i++ {
		b.MovI(isa.R(16+i), int64(3*i+1))
	}
	b.MovI(isa.R(24), 1) // region chain seed / accel operand
}

// emitFiller produces n instructions of mixed ALU work with occasional
// memory traffic, rotating across r16..r23. A nil builder consumes the
// random stream without emitting, keeping paired program variants aligned.
func emitFiller(rng *rand.Rand, b *isa.Builder, n int) {
	for i := 0; i < n; i++ {
		d := isa.R(16 + rng.Intn(8))
		s1 := isa.R(16 + rng.Intn(8))
		s2 := isa.R(16 + rng.Intn(8))
		// Mostly independent single-cycle ALU work with a sprinkle of
		// multiplies and memory traffic: the baseline saturates the
		// dispatch width, which is the analytical model's operating
		// assumption (useful dispatch = IPC except during TCA stalls).
		kind := rng.Intn(16)
		off := int64(rng.Intn(64)) * 8
		imm := int64(rng.Intn(100))
		if b == nil {
			continue
		}
		switch kind {
		case 0:
			b.Mul(d, s1, s2)
		case 1:
			b.Load(d, isa.R(15), off)
		case 2:
			b.Store(s1, isa.R(15), off)
		case 3, 4:
			b.Xor(d, s1, s2)
		case 5, 6, 7:
			b.AddI(d, s1, imm)
		default:
			b.Add(d, s1, s2)
		}
	}
}
