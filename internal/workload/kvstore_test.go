package workload

import (
	"testing"

	"repro/internal/accel"
	"repro/internal/isa"
)

func kvConfig() KVStoreConfig {
	return KVStoreConfig{
		Operations: 150, FillerPerOp: 15, Buckets: 256, Keys: 100,
		LookupPct: 70, Seed: 5,
	}
}

func TestKVStoreBaselineAcceleratedAgree(t *testing.T) {
	w, err := KVStore(kvConfig())
	if err != nil {
		t.Fatal(err)
	}
	ib := isa.NewInterp(w.Baseline, nil)
	if err := ib.Run(1 << 32); err != nil {
		t.Fatal(err)
	}
	ia := isa.NewInterp(w.Accelerated, w.NewDevice())
	if err := ia.Run(1 << 32); err != nil {
		t.Fatal(err)
	}
	// The software probe and the TCA must leave identical table state.
	for i := 0; i < 256; i++ {
		addr := uint64(kvTableBase) + uint64(i)*16
		if ib.Mem.Load(addr) != ia.Mem.Load(addr) || ib.Mem.Load(addr+8) != ia.Mem.Load(addr+8) {
			t.Fatalf("bucket %d diverged: sw (%d,%d) vs tca (%d,%d)", i,
				ib.Mem.Load(addr), ib.Mem.Load(addr+8),
				ia.Mem.Load(addr), ia.Mem.Load(addr+8))
		}
	}
	if ia.Stats.AccelInvocations != w.Invocations {
		t.Errorf("invocations %d, want %d", ia.Stats.AccelInvocations, w.Invocations)
	}
	if w.BaselineInstructions != ib.Stats.Retired {
		t.Errorf("recorded baseline length %d != %d", w.BaselineInstructions, ib.Stats.Retired)
	}
	// Hash-map probes are the fine-grained regime: ~10-30 instructions
	// per call (the paper's Fig. 2 hash-map marker).
	if g := w.Granularity(); g < 8 || g > 60 {
		t.Errorf("granularity = %v, want the fine-grained band", g)
	}
}

func TestKVStoreHashConstantsInSync(t *testing.T) {
	// The software baseline and the device must hash identically, or
	// their probe sequences (and table layouts) diverge.
	dev := accel.NewHashMap(kvTableBase, 256)
	for key := uint64(1); key < 100; key++ {
		want := int((key * kvHashMult) & 255)
		if got := dev.HashBucket(key); got != want {
			t.Fatalf("hash constants out of sync: device %d vs workload %d", got, want)
		}
	}
}

func TestKVStoreValidation(t *testing.T) {
	bad := []KVStoreConfig{
		{Operations: 1, FillerPerOp: 0, Buckets: 64, Keys: 10, LookupPct: 50},
		{Operations: 10, FillerPerOp: 0, Buckets: 63, Keys: 10, LookupPct: 50},
		{Operations: 10, FillerPerOp: 0, Buckets: 64, Keys: 33, LookupPct: 50},
		{Operations: 10, FillerPerOp: 0, Buckets: 64, Keys: 10, LookupPct: 101},
	}
	for i, cfg := range bad {
		if _, err := KVStore(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestStringMatchBaselineAcceleratedAgree(t *testing.T) {
	cfg := StringMatchConfig{
		Comparisons: 120, FillerPerOp: 10, Dictionary: 24,
		MinWords: 3, MaxWords: 20, SharedPrefix: 2, Seed: 8,
	}
	w, err := StringMatch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ib := isa.NewInterp(w.Baseline, nil)
	if err := ib.Run(1 << 32); err != nil {
		t.Fatal(err)
	}
	ia := isa.NewInterp(w.Accelerated, w.NewDevice())
	if err := ia.Run(1 << 32); err != nil {
		t.Fatal(err)
	}
	// Final comparison result registers must agree (the last op's result
	// survives in smRes).
	if ib.Reg(isa.R(smRes)) != ia.Reg(isa.R(smRes)) {
		t.Errorf("final strcmp results differ: sw %d vs tca %d",
			ib.Reg(isa.R(smRes)), ia.Reg(isa.R(smRes)))
	}
	if ia.Stats.AccelInvocations != w.Invocations {
		t.Errorf("invocations %d, want %d", ia.Stats.AccelInvocations, w.Invocations)
	}
	// Long comparisons with shared prefixes: granularity in the tens to
	// low hundreds of instructions (Fig. 2's string-fn marker).
	if g := w.Granularity(); g < 20 || g > 400 {
		t.Errorf("granularity = %v, want string-function band", g)
	}
}

// Exhaustive semantic check: software strcmp result == device result for
// every dictionary pair.
func TestStringMatchSemanticsMatchDevice(t *testing.T) {
	cfg := StringMatchConfig{
		Comparisons: 2, FillerPerOp: 0, Dictionary: 10,
		MinWords: 1, MaxWords: 6, SharedPrefix: 1, Seed: 42,
	}
	w, err := StringMatch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mem := w.Baseline.NewMemoryImage()
	dev := accel.NewStrCmp()
	for a := 0; a < cfg.Dictionary; a++ {
		for b := 0; b < cfg.Dictionary; b++ {
			aBase := uint64(smStringsBase + a*smStride)
			bBase := uint64(smStringsBase + b*smStride)
			devRes := dev.Invoke(isa.AccelCall{Kind: accel.StrCompare, Args: [3]uint64{aBase, bBase}}, mem)
			swRes := goStrcmp(mem, aBase, bBase)
			if devRes.Value != swRes {
				t.Fatalf("pair (%d,%d): device %d vs reference %d", a, b, devRes.Value, swRes)
			}
		}
	}
}

// goStrcmp is an independent Go reference of the comparison semantics.
func goStrcmp(m *isa.Memory, a, b uint64) uint64 {
	for off := uint64(0); ; off += 8 {
		wa, wb := m.Load(a+off), m.Load(b+off)
		switch {
		case wa == wb && wa == 0:
			return accel.StrEqual
		case wa == wb:
			continue
		case wa < wb:
			return accel.StrLess
		default:
			return accel.StrGreater
		}
	}
}

func TestStringMatchValidation(t *testing.T) {
	bad := []StringMatchConfig{
		{Comparisons: 1, Dictionary: 4, MinWords: 1, MaxWords: 2},
		{Comparisons: 5, Dictionary: 1, MinWords: 1, MaxWords: 2},
		{Comparisons: 5, Dictionary: 4, MinWords: 3, MaxWords: 2},
		{Comparisons: 5, Dictionary: 4, MinWords: 2, MaxWords: 4, SharedPrefix: 3},
	}
	for i, cfg := range bad {
		if _, err := StringMatch(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
