// Package workload generates the paper's evaluation programs in matched
// baseline/accelerated pairs:
//
//   - Synthetic — the §V-A adaptive microbenchmark: ALU filler with
//     randomly placed acceleratable regions; sweeping the region count
//     raises invocation frequency and coverage together (Fig. 4).
//   - Heap — the §V-B heap-manager benchmark: random malloc/free of four
//     TCMalloc size classes; the baseline inlines software allocator
//     routines with the paper's measured uop costs, the accelerated
//     version issues single-cycle heap-TCA instructions (Fig. 5).
//   - MatMul — the §V-C benchmark: N×N double-precision GEMM through B×B
//     cache blocking; accelerated versions replace the element-wise kernel
//     with t×t multiply-accumulate TCA invocations (Fig. 6).
//
// Every generator is deterministic in its seed and returns exact dynamic
// instruction accounting for model calibration.
package workload

import (
	"fmt"

	"repro/internal/isa"
)

// Workload is a matched pair of programs plus the metadata interval
// analysis needs.
type Workload struct {
	//lint:exempt-field R8 Workload.Name presentation only; identity comes from the programs and counts below
	Name string
	//lint:exempt-field R8 Workload.Description presentation only; never influences generated programs
	Description string

	// Baseline is the software-only program; Accelerated replaces the
	// acceleratable regions with TCA invocations.
	Baseline    *isa.Program
	Accelerated *isa.Program

	// Acceleratable is the dynamic baseline instruction count inside
	// acceleratable regions; Invocations is the dynamic TCA invocation
	// count in the accelerated program. BaselineInstructions is the
	// total dynamic baseline length.
	Acceleratable        uint64
	Invocations          uint64
	BaselineInstructions uint64

	// NewDevice builds a fresh accelerator device for one run (devices
	// are stateful). Nil for baseline-only workloads.
	NewDevice func() isa.AccelDevice

	// DeviceKey canonically describes the device NewDevice builds: two
	// workloads with equal keys must produce behaviorally identical
	// devices. The scenario layer folds it into run digests; a workload
	// with a device but no key is treated as uncacheable (never as
	// wrongly shared). Generators in this package always set it.
	DeviceKey string

	// AccelLatency, when positive, is the known per-invocation device
	// latency for the model's explicit-latency path.
	AccelLatency float64
}

// Validate checks the pair's structural consistency.
func (w *Workload) Validate() error {
	if w.Baseline == nil || w.Accelerated == nil {
		return fmt.Errorf("workload %s: missing program", w.Name)
	}
	if err := w.Baseline.Validate(); err != nil {
		return fmt.Errorf("workload %s baseline: %w", w.Name, err)
	}
	if err := w.Accelerated.Validate(); err != nil {
		return fmt.Errorf("workload %s accelerated: %w", w.Name, err)
	}
	if w.Invocations == 0 {
		return fmt.Errorf("workload %s: no invocations", w.Name)
	}
	if w.Acceleratable == 0 || w.Acceleratable >= w.BaselineInstructions {
		return fmt.Errorf("workload %s: acceleratable %d out of range (total %d)",
			w.Name, w.Acceleratable, w.BaselineInstructions)
	}
	return nil
}

// CoverageFrac returns a, the acceleratable fraction of the baseline.
func (w *Workload) CoverageFrac() float64 {
	return float64(w.Acceleratable) / float64(w.BaselineInstructions)
}

// InvocationFreq returns v, invocations per baseline instruction.
func (w *Workload) InvocationFreq() float64 {
	return float64(w.Invocations) / float64(w.BaselineInstructions)
}

// Granularity returns a/v, baseline instructions replaced per invocation.
func (w *Workload) Granularity() float64 {
	return float64(w.Acceleratable) / float64(w.Invocations)
}
