package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/accel"
	"repro/internal/isa"
	"repro/internal/tcmalloc"
)

// HeapConfig parameterizes the §V-B heap-manager benchmark.
type HeapConfig struct {
	// Operations is the number of malloc/free calls.
	Operations int
	// FillerPerCall is the non-acceleratable instruction count between
	// calls; shrinking it raises the call frequency (the Fig. 5 axis).
	FillerPerCall int
	// Prefill is the number of blocks pre-carved per size class, the
	// benchmark's common-case guarantee that malloc always has a pointer
	// and free always has a slot.
	Prefill int
	// Seed drives the malloc/free sequence and class choices.
	Seed int64
	// WarmupFiller prepends this many non-acceleratable instructions
	// (same mix as the inter-call filler) before the first call, in both
	// program variants. It models a long scalar warmup phase ahead of
	// the accelerated region — the shape the scenario store's
	// warm-checkpoint forking exploits. Zero (the default) emits
	// nothing, leaving the generated programs byte-identical to
	// configurations that predate the knob.
	WarmupFiller int
}

// Validate reports configuration errors.
func (c HeapConfig) Validate() error {
	switch {
	case c.Operations < 2:
		return fmt.Errorf("workload: heap needs >= 2 operations")
	case c.FillerPerCall < 0:
		return fmt.Errorf("workload: negative filler")
	case c.Prefill < 1:
		return fmt.Errorf("workload: heap needs prefill >= 1")
	case c.WarmupFiller < 0:
		return fmt.Errorf("workload: negative warmup filler")
	}
	return nil
}

// Memory layout of the software allocator image.
const (
	heapMetaBase  = 0x10000  // free-list heads: heads[class] at +class*8
	heapStatsBase = 0x10040  // per-class counters at +class*8
	heapStackBase = 0x20000  // benchmark-local stack of live pointers
	heapArenaBase = 0x100000 // block storage
	heapPageBits  = 12
	heapPmapBase  = 0x30000 // page -> class map, indexed by arena page
)

// Dedicated registers of the generated benchmark.
const (
	rSize  = 1 // malloc size argument
	rPtr   = 2 // malloc result / free argument
	rTmp1  = 3
	rTmp2  = 4
	rTmp3  = 5
	rMeta  = 18 // heapMetaBase
	rStack = 19 // live-pointer stack base
	rSP    = 20 // live-pointer stack index (words)
	rPmap  = 21 // page-map base
	rOne   = 16 // constant 1 (bookkeeping shift amount)
	rEight = 17 // constant 8 (word size, for stack indexing)
)

// Software routine lengths, matching the paper's measured TCMalloc costs
// (§IV: malloc 69 uops, free 37 uops).
const (
	mallocUops = 69
	freeUops   = 37
)

// Heap builds the heap benchmark pair. The op sequence alternates randomly
// between malloc (of a random class size) and free (of a random live
// pointer tracked through an in-memory stack), never freeing when nothing
// is live — mirroring the paper's "randomly perform malloc and free calls"
// under the common-case constraint.
func Heap(cfg HeapConfig) (*Workload, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ops, maxLive := heapOpSequence(cfg)

	base := buildHeapProgram(cfg, ops, false)
	acc := buildHeapProgram(cfg, ops, true)

	var acceleratable uint64
	for _, op := range ops {
		if op.malloc {
			acceleratable += mallocUops
		} else {
			acceleratable += freeUops
		}
	}
	w := &Workload{
		Name: "heap",
		Description: fmt.Sprintf("heap manager: %d ops, %d filler/call, %d live max",
			cfg.Operations, cfg.FillerPerCall, maxLive),
		Baseline:             base,
		Accelerated:          acc,
		Acceleratable:        acceleratable,
		Invocations:          uint64(len(ops)),
		BaselineInstructions: uint64(len(base.Code)), // straight-line
		NewDevice: func() isa.AccelDevice {
			a := tcmalloc.New(heapArenaBase, 1<<24)
			for class := 0; class < tcmalloc.NumClasses; class++ {
				if err := a.Refill(class, cfg.Prefill); err != nil {
					panic(err)
				}
			}
			return accel.NewHeap(a)
		},
		DeviceKey: fmt.Sprintf("heap:arena=0x%x,size=%d,classes=%d,prefill=%d",
			heapArenaBase, 1<<24, tcmalloc.NumClasses, cfg.Prefill),
		AccelLatency: 1,
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}

// heapOp is one generated call.
type heapOp struct {
	malloc bool
	size   int64 // malloc only
}

// heapOpSequence draws the random call sequence, tracking live count so
// frees always have a target.
func heapOpSequence(cfg HeapConfig) ([]heapOp, int) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	ops := make([]heapOp, 0, cfg.Operations)
	live, maxLive := 0, 0
	for i := 0; i < cfg.Operations; i++ {
		doMalloc := live == 0 || rng.Intn(2) == 0
		// Cap live blocks at the prefilled capacity of the smallest
		// class so the common-case constraint holds.
		if live >= cfg.Prefill {
			doMalloc = false
		}
		if doMalloc {
			class := rng.Intn(tcmalloc.NumClasses)
			lo := class*32 + 1
			ops = append(ops, heapOp{malloc: true, size: int64(lo + rng.Intn(32))})
			live++
			if live > maxLive {
				maxLive = live
			}
		} else {
			ops = append(ops, heapOp{malloc: false})
			live--
		}
	}
	return ops, maxLive
}

// buildHeapProgram emits the benchmark. Both variants share the sequence,
// filler, and pointer-stack bookkeeping; they differ only inside the
// malloc/free regions.
func buildHeapProgram(cfg HeapConfig, ops []heapOp, accelerated bool) *isa.Program {
	b := isa.NewBuilder()
	initHeapImage(b, cfg.Prefill)

	b.MovI(isa.R(rMeta), heapMetaBase)
	b.MovI(isa.R(rStack), heapStackBase)
	b.MovI(isa.R(rSP), 0)
	b.MovI(isa.R(rPmap), heapPmapBase)
	b.MovI(isa.R(rOne), 1)
	b.MovI(isa.R(rEight), 8)
	for i := 0; i < 6; i++ {
		b.MovI(isa.R(22+i), int64(i+3))
	}

	if cfg.WarmupFiller > 0 {
		// A distinct stream keeps the inter-call filler below identical
		// to the WarmupFiller=0 program, so the warmup prefix is purely
		// prepended rather than reshuffling the measured region.
		emitHeapFiller(b, rand.New(rand.NewSource(cfg.Seed+13)), cfg.WarmupFiller)
	}

	fillRng := rand.New(rand.NewSource(cfg.Seed + 7))
	for _, op := range ops {
		emitHeapFiller(b, fillRng, cfg.FillerPerCall)
		if op.malloc {
			b.MovI(isa.R(rSize), op.size)
			if accelerated {
				b.Accel(isa.R(rPtr), accel.HeapMalloc, isa.R(rSize))
			} else {
				emitSoftwareMalloc(b)
			}
			// Push the new pointer onto the live stack (bookkeeping,
			// present in both variants, not acceleratable).
			b.Mul(isa.R(rTmp1), isa.R(rSP), isa.R(rEight))
			b.Add(isa.R(rTmp1), isa.R(rStack), isa.R(rTmp1))
			b.Store(isa.R(rPtr), isa.R(rTmp1), 0)
			b.AddI(isa.R(rSP), isa.R(rSP), 1)
		} else {
			// Pop a live pointer.
			b.AddI(isa.R(rSP), isa.R(rSP), -1)
			b.Mul(isa.R(rTmp1), isa.R(rSP), isa.R(rEight))
			b.Add(isa.R(rTmp1), isa.R(rStack), isa.R(rTmp1))
			b.Load(isa.R(rPtr), isa.R(rTmp1), 0)
			if accelerated {
				b.Accel(isa.R(rTmp1), accel.HeapFree, isa.R(rPtr))
			} else {
				emitSoftwareFree(b)
			}
		}
	}
	b.Halt()
	return b.MustBuild()
}

// initHeapImage seeds the software allocator's memory: linked free lists
// per class, and the page map used by free to recover a block's class.
// The layout matches tcmalloc.Allocator's arena carving order so software
// and TCA runs allocate comparable addresses.
func initHeapImage(b *isa.Builder, prefill int) {
	addr := uint64(heapArenaBase)
	for class := 0; class < tcmalloc.NumClasses; class++ {
		bs := tcmalloc.ClassBytes(class)
		var blocks []uint64
		for i := 0; i < prefill; i++ {
			blocks = append(blocks, addr)
			addr += bs
		}
		// The allocator pops from the tail (LIFO): head points at the
		// last-carved block, each block links to the previously carved
		// one.
		for i, blk := range blocks {
			next := uint64(0)
			if i > 0 {
				next = blocks[i-1]
			}
			b.InitWord(blk, next)
		}
		b.InitWord(heapMetaBase+uint64(class)*8, blocks[len(blocks)-1])
		b.InitWord(heapStatsBase+uint64(class)*8, 0)
	}
	// Page map covering the arena.
	for page := uint64(heapArenaBase) >> heapPageBits; page <= (addr-1)>>heapPageBits; page++ {
		pageStart := page << heapPageBits
		b.InitWord(heapPmapBase+(page-(heapArenaBase>>heapPageBits))*8, uint64(classOfAddr(pageStart, prefill)))
	}
}

// classOfAddr recovers which class a (page-start) address belongs to under
// the sequential carving of initHeapImage. Pages are class-homogeneous in
// practice for the sizes used here; boundary pages take the class of their
// first byte, matching what the software free routine will read.
func classOfAddr(addr uint64, prefill int) int {
	off := addr - heapArenaBase
	for class := 0; class < tcmalloc.NumClasses; class++ {
		span := uint64(prefill) * tcmalloc.ClassBytes(class)
		if off < span {
			return class
		}
		off -= span
	}
	return tcmalloc.NumClasses - 1
}

// emitHeapFiller emits n non-acceleratable instructions between calls.
func emitHeapFiller(b *isa.Builder, rng *rand.Rand, n int) {
	for i := 0; i < n; i++ {
		d := isa.R(22 + rng.Intn(6))
		s1 := isa.R(22 + rng.Intn(6))
		s2 := isa.R(22 + rng.Intn(6))
		switch rng.Intn(8) {
		case 0:
			b.Mul(d, s1, s2)
		case 1:
			b.Xor(d, s1, s2)
		case 2:
			b.AddI(d, s1, int64(rng.Intn(50)))
		default:
			b.Add(d, s1, s2)
		}
	}
}

// emitSoftwareMalloc inlines the TCMalloc fast path: size-class
// computation, free-list pop, and the bookkeeping that brings the routine
// to the measured 69 uops. Input: rSize. Output: rPtr.
func emitSoftwareMalloc(b *isa.Builder) {
	start := b.Len()
	// class = (size-1) >> 5; off = class*8
	b.AddI(isa.R(rTmp1), isa.R(rSize), -1)
	b.MovI(isa.R(rTmp2), 5)
	b.Shr(isa.R(rTmp1), isa.R(rTmp1), isa.R(rTmp2)) // class
	b.MovI(isa.R(rTmp2), 3)
	b.Shl(isa.R(rTmp2), isa.R(rTmp1), isa.R(rTmp2)) // class*8
	b.Add(isa.R(rTmp2), isa.R(rMeta), isa.R(rTmp2)) // &heads[class]
	// ptr = heads[class]; heads[class] = *ptr
	b.Load(isa.R(rPtr), isa.R(rTmp2), 0)
	b.Load(isa.R(rTmp3), isa.R(rPtr), 0)
	b.Store(isa.R(rTmp3), isa.R(rTmp2), 0)
	// stats[class]++
	b.Load(isa.R(rTmp3), isa.R(rTmp2), heapStatsBase-heapMetaBase)
	b.AddI(isa.R(rTmp3), isa.R(rTmp3), 1)
	b.Store(isa.R(rTmp3), isa.R(rTmp2), heapStatsBase-heapMetaBase)
	emitBookkeeping(b, mallocUops-(b.Len()-start))
}

// emitSoftwareFree inlines the TCMalloc free fast path: page-map class
// lookup and free-list push, padded to the measured 37 uops.
// Input: rPtr.
func emitSoftwareFree(b *isa.Builder) {
	start := b.Len()
	// class = pmap[(ptr - arena) >> pageBits]
	b.AddI(isa.R(rTmp1), isa.R(rPtr), -heapArenaBase)
	b.MovI(isa.R(rTmp2), heapPageBits)
	b.Shr(isa.R(rTmp1), isa.R(rTmp1), isa.R(rTmp2))
	b.MovI(isa.R(rTmp2), 3)
	b.Shl(isa.R(rTmp1), isa.R(rTmp1), isa.R(rTmp2))
	b.Add(isa.R(rTmp1), isa.R(rPmap), isa.R(rTmp1))
	b.Load(isa.R(rTmp1), isa.R(rTmp1), 0) // class
	// push: *ptr = heads[class]; heads[class] = ptr
	b.MovI(isa.R(rTmp2), 3)
	b.Shl(isa.R(rTmp2), isa.R(rTmp1), isa.R(rTmp2))
	b.Add(isa.R(rTmp2), isa.R(rMeta), isa.R(rTmp2))
	b.Load(isa.R(rTmp3), isa.R(rTmp2), 0)
	b.Store(isa.R(rTmp3), isa.R(rPtr), 0)
	b.Store(isa.R(rPtr), isa.R(rTmp2), 0)
	emitBookkeeping(b, freeUops-(b.Len()-start))
}

// emitBookkeeping pads a software routine to the measured uop budget with
// the check-and-count work (thread-cache length checks, sampling counters)
// that makes up the rest of TCMalloc's cost. One in four instructions
// extends a dependence chain through the routine's outputs (giving the
// routine latency); the rest are independent, so the padding's ILP matches
// the surrounding code and removing it does not shift the program's
// non-accelerated IPC — the model's §III assumption.
func emitBookkeeping(b *isa.Builder, n int) {
	if n < 0 {
		panic(fmt.Sprintf("workload: software routine exceeds budget by %d uops", -n))
	}
	for i := 0; i < n; i++ {
		switch i % 4 {
		case 0:
			b.Add(isa.R(rTmp3), isa.R(rTmp3), isa.R(rPtr))
		case 1:
			b.AddI(isa.R(22+i%6), isa.R(22+(i+1)%6), 13)
		case 2:
			b.Xor(isa.R(22+(i+2)%6), isa.R(22+(i+3)%6), isa.R(22+(i+4)%6))
		default:
			b.Add(isa.R(22+(i+5)%6), isa.R(22+i%6), isa.R(22+(i+2)%6))
		}
	}
}
