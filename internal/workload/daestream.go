package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/accel"
	"repro/internal/isa"
)

// DAEStreamConfig parameterizes the decoupled access/execute streaming
// benchmark: software reductions over in-memory arrays, accelerated by the
// DAE device whose access slice streams burst loads under the execute
// slice's compute (the first multi-phase engine-contract family).
type DAEStreamConfig struct {
	// Streams is the number of reductions (one TCA invocation each).
	Streams int
	// WordsPerStream is the length of each reduced array in 8-byte words.
	WordsPerStream int
	// FillerPerOp is the non-acceleratable instruction count between
	// reductions.
	FillerPerOp int
	// ChunkWords, ComputePerChunk and Startup configure the device (see
	// accel.DAE); ChunkWords is the burst length in words (1..8).
	ChunkWords      int
	ComputePerChunk int
	Startup         int
	// Seed drives the array contents and filler mix.
	Seed int64
}

// Validate reports configuration errors.
func (c DAEStreamConfig) Validate() error {
	switch {
	case c.Streams < 1:
		return fmt.Errorf("workload: daestream needs streams >= 1")
	case c.WordsPerStream < 1:
		return fmt.Errorf("workload: daestream needs words per stream >= 1")
	case c.FillerPerOp < 1:
		return fmt.Errorf("workload: daestream needs filler >= 1")
	case c.ChunkWords < 1 || c.ChunkWords > 8:
		return fmt.Errorf("workload: daestream chunk of %d words exceeds one 64B burst", c.ChunkWords)
	case c.ComputePerChunk < 1:
		return fmt.Errorf("workload: daestream needs compute per chunk >= 1")
	case c.Startup < 0:
		return fmt.Errorf("workload: daestream needs startup >= 0")
	}
	return nil
}

// daeStreamBase is where the stream arrays live, clear of the filler's
// scratch region at 0x6000.
const daeStreamBase uint64 = 0x40000

// DAEStream builds the streaming-reduction pair. The baseline reduces each
// array in software (one load and one add per word, unrolled straight-line
// like the synthetic microbenchmark, so dynamic == static); the accelerated
// program replaces each reduction with one DAE invocation carrying the
// array's base and length.
func DAEStream(cfg DAEStreamConfig) (*Workload, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	streamAddr := func(s int) uint64 {
		return daeStreamBase + uint64(s*cfg.WordsPerStream)*8
	}

	build := func(accelerated bool) *isa.Program {
		mixRng := rand.New(rand.NewSource(cfg.Seed + 1))
		dataRng := rand.New(rand.NewSource(cfg.Seed))
		b := isa.NewBuilder()
		for s := 0; s < cfg.Streams; s++ {
			for w := 0; w < cfg.WordsPerStream; w++ {
				b.InitWord(streamAddr(s)+uint64(w)*8, uint64(dataRng.Int63n(1<<40)))
			}
		}
		emitPrologue(b)
		b.MovI(isa.R(28), 0) // running total across streams
		for s := 0; s < cfg.Streams; s++ {
			emitFiller(mixRng, b, cfg.FillerPerOp)
			if accelerated {
				b.MovI(isa.R(25), int64(streamAddr(s)))
				b.MovI(isa.R(26), int64(cfg.WordsPerStream))
				b.Accel(isa.R(27), accel.DAEReduce, isa.R(25), isa.R(26))
			} else {
				b.MovI(isa.R(25), int64(streamAddr(s)))
				b.MovI(isa.R(27), 0)
				for w := 0; w < cfg.WordsPerStream; w++ {
					b.Load(isa.R(26), isa.R(25), int64(w)*8)
					b.Add(isa.R(27), isa.R(27), isa.R(26))
				}
			}
			b.Add(isa.R(28), isa.R(28), isa.R(27))
		}
		b.Halt()
		return b.MustBuild()
	}

	base := build(false)
	acc := build(true)
	// The acceleratable region is the software reduction: the base-address
	// move, the accumulator clear, and load+add per word.
	perStream := uint64(2 + 2*cfg.WordsPerStream)
	w := &Workload{
		Name: "daestream",
		Description: fmt.Sprintf("decoupled access/execute streaming: %d streams x %d words, %dw bursts, %dcyc/chunk + %dcyc startup",
			cfg.Streams, cfg.WordsPerStream, cfg.ChunkWords, cfg.ComputePerChunk, cfg.Startup),
		Baseline:             base,
		Accelerated:          acc,
		Acceleratable:        uint64(cfg.Streams) * perStream,
		Invocations:          uint64(cfg.Streams),
		BaselineInstructions: uint64(len(base.Code)), // straight-line: dynamic == static
		NewDevice: func() isa.AccelDevice {
			return accel.NewDAE(cfg.ChunkWords, cfg.ComputePerChunk, cfg.Startup)
		},
		DeviceKey: fmt.Sprintf("dae:chunk=%d,comp=%d,start=%d", cfg.ChunkWords, cfg.ComputePerChunk, cfg.Startup),
		// AccelLatency stays 0 (measure): invocation time depends on the
		// cache behaviour of the streamed bursts, not a fixed constant.
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}
