package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/accel"
	"repro/internal/isa"
)

// The loop accelerator's datapath constants (one 64-bit LCG step per
// innermost iteration); the software baseline inlines the same recurrence.
const (
	loopNestMulConst int64 = 6364136223846793005
	loopNestAddConst int64 = 1442695040888963407
)

// LoopNestConfig parameterizes the loop-accelerator benchmark: repeated
// fixed-trip loop nests iterating a 64-bit recurrence, accelerated by the
// LoopNest device whose one-time configuration cost amortizes over the
// trips^Depth iterations of each invocation.
type LoopNestConfig struct {
	// Calls is the number of nest executions (one TCA invocation each).
	Calls int
	// FillerPerOp is the non-acceleratable instruction count between nests.
	FillerPerOp int
	// Trips is the trip count per nest level and Depth the nest depth, so
	// one call runs Trips^Depth innermost iterations.
	Trips int
	Depth int
	// IterLatency and ConfigLatency configure the device (see
	// accel.LoopNest).
	IterLatency   int
	ConfigLatency int
	// Seed drives the per-call seeds and filler mix.
	Seed int64
}

// loopNestMaxUnroll bounds the baseline's unrolled size (iterations per
// call times calls).
const loopNestMaxUnroll = 1 << 20

// Validate reports configuration errors.
func (c LoopNestConfig) Validate() error {
	switch {
	case c.Calls < 1:
		return fmt.Errorf("workload: loopnest needs calls >= 1")
	case c.FillerPerOp < 1:
		return fmt.Errorf("workload: loopnest needs filler >= 1")
	case c.Trips < 1 || c.Depth < 1:
		return fmt.Errorf("workload: loopnest needs trips/depth >= 1")
	case c.IterLatency < 1:
		return fmt.Errorf("workload: loopnest needs iteration latency >= 1")
	case c.ConfigLatency < 0:
		return fmt.Errorf("workload: loopnest needs config latency >= 0")
	}
	iters := 1
	for l := 0; l < c.Depth; l++ {
		iters *= c.Trips
		if iters > loopNestMaxUnroll/c.Calls {
			return fmt.Errorf("workload: loopnest %d calls x %d^%d iterations too large",
				c.Calls, c.Trips, c.Depth)
		}
	}
	return nil
}

// Iterations returns the innermost iteration count of one call.
func (c LoopNestConfig) Iterations() int {
	iters := 1
	for l := 0; l < c.Depth; l++ {
		iters *= c.Trips
	}
	return iters
}

// LoopNest builds the loop-accelerator pair. The baseline runs each nest in
// software — the recurrence fully unrolled (multiply and add per iteration,
// straight-line like the synthetic microbenchmark, so dynamic == static);
// the accelerated program replaces each nest with one LoopNest invocation
// carrying the trip count and seed. The per-invocation device time has an
// exact closed form (config cost plus iterations times the datapath
// latency), so the workload reports it for the model's explicit-latency
// path instead of requiring measurement.
func LoopNest(cfg LoopNestConfig) (*Workload, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	iters := cfg.Iterations()

	build := func(accelerated bool) *isa.Program {
		mixRng := rand.New(rand.NewSource(cfg.Seed + 1))
		seedRng := rand.New(rand.NewSource(cfg.Seed))
		b := isa.NewBuilder()
		emitPrologue(b)
		b.MovI(isa.R(12), loopNestMulConst)
		b.MovI(isa.R(13), loopNestAddConst)
		b.MovI(isa.R(28), 0) // running total across calls
		for call := 0; call < cfg.Calls; call++ {
			seed := seedRng.Int63()
			emitFiller(mixRng, b, cfg.FillerPerOp)
			if accelerated {
				b.MovI(isa.R(25), int64(cfg.Trips))
				b.MovI(isa.R(26), seed)
				b.Accel(isa.R(27), accel.LoopNestRun, isa.R(25), isa.R(26))
			} else {
				b.MovI(isa.R(25), 0) // matches the accelerated variant's length
				b.MovI(isa.R(27), seed)
				for i := 0; i < iters; i++ {
					b.Mul(isa.R(27), isa.R(27), isa.R(12))
					b.Add(isa.R(27), isa.R(27), isa.R(13))
				}
			}
			b.Add(isa.R(28), isa.R(28), isa.R(27))
		}
		b.Halt()
		return b.MustBuild()
	}

	base := build(false)
	acc := build(true)
	// The acceleratable region is the software nest: two moves plus the
	// multiply-add recurrence per iteration.
	perCall := uint64(2 + 2*iters)
	w := &Workload{
		Name: "loopnest",
		Description: fmt.Sprintf("loop accelerator: %d calls x %d^%d iterations, %dcyc/iter + %dcyc config",
			cfg.Calls, cfg.Trips, cfg.Depth, cfg.IterLatency, cfg.ConfigLatency),
		Baseline:             base,
		Accelerated:          acc,
		Acceleratable:        uint64(cfg.Calls) * perCall,
		Invocations:          uint64(cfg.Calls),
		BaselineInstructions: uint64(len(base.Code)), // straight-line: dynamic == static
		NewDevice: func() isa.AccelDevice {
			return accel.NewLoopNest(cfg.Depth, cfg.IterLatency, cfg.ConfigLatency)
		},
		DeviceKey: fmt.Sprintf("loopnest:depth=%d,iter=%d,conf=%d",
			cfg.Depth, cfg.IterLatency, cfg.ConfigLatency),
		AccelLatency: float64(cfg.ConfigLatency + iters*cfg.IterLatency),
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}
