package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/accel"
	"repro/internal/isa"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/tcmalloc"
	"repro/internal/textplot"
)

// E3Config parameterizes the partial-speculation study (§VIII future
// work): heap-TCA invocations behind a branch of configurable
// predictability.
type E3Config struct {
	Core sim.Config
	// Iterations of the call loop.
	Iterations int
	// SkipEvery makes the guard branch taken once every N iterations
	// (lower = less predictable pressure on speculative invocations).
	SkipEvery []int
	// Parallel is the study's worker count (<= 0 selects GOMAXPROCS).
	Parallel int
	// Store optionally caches and deduplicates runs; nil executes
	// everything directly with identical results.
	Store *scenario.Store
}

// DefaultE3 sweeps branch surprise rates.
func DefaultE3() E3Config {
	return E3Config{
		Core:       sim.HighPerfConfig(),
		Iterations: 400,
		SkipEvery:  []int{2, 3, 4, 8, 16},
	}
}

// E3Point is one (surprise rate, policy) measurement.
type E3Point struct {
	SkipEvery int
	// Cycles per policy.
	FullCycles, PartialCycles, NLCycles int64
	// Squashed speculative invocations per policy (NL squashes none by
	// construction).
	FullSquashed, PartialSquashed uint64
	// ConfidenceHeld counts gate engagements in the partial run.
	ConfidenceHeld int64
}

// E3Result is the study output.
type E3Result struct {
	Config E3Config
	Points []E3Point
}

// e3Program builds the guarded-invocation loop: malloc/free behind a
// branch taken every skipEvery iterations, with a slow divide delaying
// branch resolution so speculation has room to act.
func e3Program(iterations, skipEvery int) *isa.Program {
	b := isa.NewBuilder()
	b.MovI(isa.R(1), 0) // i
	b.MovI(isa.R(2), int64(iterations))
	b.MovI(isa.R(3), 48)
	b.MovI(isa.R(7), int64(skipEvery))
	b.Label("loop")
	b.Rem(isa.R(4), isa.R(1), isa.R(7))
	b.Beq(isa.R(4), isa.RZero, "skip")
	b.Accel(isa.R(5), accel.HeapMalloc, isa.R(3))
	b.Accel(isa.R(6), accel.HeapFree, isa.R(5))
	b.Label("skip")
	b.AddI(isa.R(1), isa.R(1), 1)
	b.Blt(isa.R(1), isa.R(2), "loop")
	b.Halt()
	return b.MustBuild()
}

func e3Device() isa.AccelDevice {
	a := tcmalloc.New(0x100000, 1<<22)
	if err := a.Refill(1, 128); err != nil {
		panic(err)
	}
	return accel.NewHeap(a)
}

// e3DeviceKey canonically names e3Device's construction for the
// scenario store.
const e3DeviceKey = "heap:arena=0x100000,size=4194304,refill=1x128"

// E3 measures full speculation, confidence-gated partial speculation, and
// no speculation on the simulator. Each surprise-rate point is one job;
// the three policy runs inside a point fan out as a nested sweep.
func E3(cfg E3Config) (*E3Result, error) {
	run := func(prog *isa.Program, mode accel.Mode, partial bool) (sim.Stats, error) {
		c := cfg.Core
		c.Mode = mode
		c.PartialSpeculation = partial
		c.Predictor = sim.PredictorConfig{Kind: "bimodal"}
		return cfg.Store.RunStats(scenario.Spec{
			Config:    c,
			Program:   prog,
			NewDevice: e3Device,
			DeviceKey: e3DeviceKey,
			MaxCycles: maxCycles,
		})
	}
	policies := []struct {
		name    string
		mode    accel.Mode
		partial bool
	}{
		{"full", accel.LT, false},
		{"partial", accel.LT, true},
		{"NL", accel.NLT, false},
	}
	points, _, err := runner.Map(context.Background(), cfg.Parallel, cfg.SkipEvery,
		func(_ context.Context, _, se int) (E3Point, error) {
			prog := e3Program(cfg.Iterations, se)
			stats, _, err := runner.Sweep(context.Background(), cfg.Parallel, len(policies),
				func(_ context.Context, i int) (sim.Stats, error) {
					p := policies[i]
					s, err := run(prog, p.mode, p.partial)
					if err != nil {
						return sim.Stats{}, fmt.Errorf("experiments: E3 %s skip=%d: %w", p.name, se, err)
					}
					return s, nil
				})
			if err != nil {
				return E3Point{}, err
			}
			full, part, nl := stats[0], stats[1], stats[2]
			return E3Point{
				SkipEvery:       se,
				FullCycles:      full.Cycles,
				PartialCycles:   part.Cycles,
				NLCycles:        nl.Cycles,
				FullSquashed:    full.AccelSquashed,
				PartialSquashed: part.AccelSquashed,
				ConfidenceHeld:  part.AccelConfidenceWait,
			}, nil
		})
	if err != nil {
		return nil, err
	}
	return &E3Result{Config: cfg, Points: points}, nil
}

// Render tabulates the study.
func (r *E3Result) Render() string {
	var b strings.Builder
	b.WriteString("E3: partial TCA speculation (confidence-gated, §VIII future work)\n")
	b.WriteString("heap TCA behind a branch taken every N iterations; L_T core\n\n")
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("1/%d", p.SkipEvery),
			fmt.Sprintf("%d", p.FullCycles),
			fmt.Sprintf("%d", p.PartialCycles),
			fmt.Sprintf("%d", p.NLCycles),
			fmt.Sprintf("%d", p.FullSquashed),
			fmt.Sprintf("%d", p.PartialSquashed),
			fmt.Sprintf("%d", p.ConfidenceHeld),
		})
	}
	b.WriteString(textplot.Table([]string{
		"surprise", "full-spec cyc", "partial cyc", "no-spec cyc",
		"squashed(full)", "squashed(partial)", "gate holds",
	}, rows))
	b.WriteString("\nPartial speculation lands between L and NL: it trades a little latency\n")
	b.WriteString("for fewer wasted (rolled-back) invocations — less rollback energy, as the\n")
	b.WriteString("paper's future-work section anticipates.\n")
	return b.String()
}

// CSV serializes the study.
func (r *E3Result) CSV() string {
	var b strings.Builder
	b.WriteString("skip_every,full_cycles,partial_cycles,nl_cycles,full_squashed,partial_squashed,gate_holds\n")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%d,%d,%d,%d,%d,%d,%d\n",
			p.SkipEvery, p.FullCycles, p.PartialCycles, p.NLCycles,
			p.FullSquashed, p.PartialSquashed, p.ConfidenceHeld)
	}
	return b.String()
}
