package experiments

import (
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// TestMeasureWorkloadFastForwardInvariant pins the harness-level
// consequence of the event-horizon scheduler's transparency: the entire
// measurement pipeline — baseline calibration, model parameters, and all
// four mode comparisons — produces identical numbers whether the simulator
// skips idle cycles or walks every one.
func TestMeasureWorkloadFastForwardInvariant(t *testing.T) {
	w, err := workload.Heap(workload.HeapConfig{
		Operations: 200, FillerPerCall: 30, Prefill: 128, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}

	measure := func(noFF bool) *WorkloadResult {
		cfg := sim.LowPerfConfig()
		cfg.NoFastForward = noFF
		res, err := MeasureWorkload(cfg, w)
		if err != nil {
			t.Fatalf("MeasureWorkload(noFF=%v): %v", noFF, err)
		}
		return res
	}
	ff := measure(false)
	slow := measure(true)

	// Blank out the one field that legitimately differs (the config
	// carries the flag itself); everything measured must match exactly.
	ff.Config.NoFastForward = false
	slow.Config.NoFastForward = false
	if !reflect.DeepEqual(ff, slow) {
		t.Errorf("measurement diverges under fast-forward:\nfast-forward: %+v\ncycle-by-cycle: %+v", ff, slow)
	}
}
