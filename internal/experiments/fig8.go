package experiments

import (
	"fmt"
	"strings"

	"repro/internal/accel"
	"repro/internal/core"
	"repro/internal/textplot"
)

// Fig8Config parameterizes the coverage study demonstrating core/TCA
// concurrency: a fixed-granularity TCA swept over % acceleratable code.
type Fig8Config struct {
	Arch core.CoreParams
	// Granularity is the TCA task size (paper: 100 instructions).
	Granularity float64
	// AccelFactor is A (paper: 2; the headline is peak speedup A+1=3).
	AccelFactor float64
	Points      int
}

// DefaultFig8 follows the paper's setup.
func DefaultFig8() Fig8Config {
	return Fig8Config{Arch: core.HPCore(), Granularity: 100, AccelFactor: 2, Points: 99}
}

// Fig8Result is the coverage sweep.
type Fig8Result struct {
	Config Fig8Config
	Points []core.SweepPoint
	// PeakA and PeakSpeedup locate the L_T maximum.
	PeakA       float64
	PeakSpeedup float64
}

// Fig8 runs the concurrency study.
func Fig8(cfg Fig8Config) (*Fig8Result, error) {
	base := cfg.Arch.Apply(core.Params{AccelFactor: cfg.AccelFactor})
	pts, err := core.CoverageSweep(base, cfg.Granularity, cfg.Points)
	if err != nil {
		return nil, err
	}
	out := &Fig8Result{Config: cfg, Points: pts}
	for _, p := range pts {
		if p.Speedups.LT > out.PeakSpeedup {
			out.PeakSpeedup = p.Speedups.LT
			out.PeakA = p.Params.AcceleratableFrac
		}
	}
	return out, nil
}

// Chart plots all four modes over coverage.
func (r *Fig8Result) Chart() textplot.Chart {
	ch := textplot.Chart{
		Title: fmt.Sprintf("Fig 8: speedup vs %% acceleratable (g=%.0f instructions, A=%.0f)",
			r.Config.Granularity, r.Config.AccelFactor),
		XLabel: "acceleratable fraction a",
		YLabel: "program speedup",
	}
	for _, m := range accel.AllModes {
		s := textplot.Series{Name: m.String()}
		for _, p := range r.Points {
			s.X = append(s.X, p.Params.AcceleratableFrac)
			s.Y = append(s.Y, p.Speedups.Get(m))
		}
		ch.Series = append(ch.Series, s)
	}
	return ch
}

// Render produces the chart plus the concurrency headline.
func (r *Fig8Result) Render() string {
	var b strings.Builder
	b.WriteString(r.Chart().Render())
	fmt.Fprintf(&b, "\nL_T peak: speedup %.2f at a = %.2f (bound A+1 = %.0f at a* = A/(A+1) = %.3f)\n",
		r.PeakSpeedup, r.PeakA,
		core.MaxConcurrentSpeedup(r.Config.AccelFactor),
		core.PeakAcceleratableFrac(r.Config.AccelFactor))
	return b.String()
}

// CSV serializes the sweep.
func (r *Fig8Result) CSV() string { return r.Chart().CSV() }
