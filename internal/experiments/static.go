package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/staticmodel"
	"repro/internal/workload"
)

// nominalAccelWeight weighs OpAccel critical-path nodes when a workload
// does not declare its accelerator latency (it will be measured during
// simulation, which the static tier by definition has not run).
const nominalAccelWeight = 10

// StaticMachine adapts a simulator configuration into the static
// model's machine description. This is the one sanctioned crossing
// between the cycle-accurate world and the simulation-free prediction
// stack (simlint R11 bans the reverse direction): widths, unit counts,
// and latencies map one-to-one; the effective load latency is derived
// from the memory hierarchy as address generation (one cycle) plus the
// L1D hit time, matching the optimistic all-hits assumption documented
// in DESIGN.md.
func StaticMachine(cfg sim.Config) staticmodel.Machine {
	return staticmodel.Machine{
		DispatchWidth: cfg.DispatchWidth,
		IssueWidth:    cfg.IssueWidth,
		CommitWidth:   cfg.CommitWidth,
		ROBSize:       cfg.ROBSize,
		FrontEndDepth: cfg.FrontEndDepth,
		CommitDelay:   cfg.CommitDelay,
		IntALUs:       cfg.IntALUs,
		IntMuls:       cfg.IntMuls,
		FPUs:          cfg.FPUs,
		MemPorts:      cfg.MemPorts,
		IntMulLatency: cfg.IntMulLatency,
		IntDivLatency: cfg.IntDivLatency,
		FPAddLatency:  cfg.FPAddLatency,
		FPMulLatency:  cfg.FPMulLatency,
		FMALatency:    cfg.FMALatency,
		FPDivLatency:  cfg.FPDivLatency,
		LoadLatency:   1 + float64(cfg.Memory.L1D.HitLatency),
		StoreLatency:  1,
		AccelLatency:  nominalAccelWeight,
	}
}

// StaticPredictWorkload runs the full static pipeline for one
// (config, workload) point: profile both programs, feed the workload's
// known region metadata into the interval model, and predict all four
// mode speedups — microseconds of work, no simulation.
func StaticPredictWorkload(cfg sim.Config, w *workload.Workload) (*staticmodel.Prediction, error) {
	return StaticPredictWorkloadStore(nil, cfg, w)
}

// StaticPredictWorkloadStore is StaticPredictWorkload through a scenario
// store: predictions cache by the same canonical (config, workload)
// digest that keys the point's full measurement. A nil store computes
// directly.
func StaticPredictWorkloadStore(store *scenario.Store, cfg sim.Config, w *workload.Workload) (*staticmodel.Prediction, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	spec := scenario.MeasureSpec{Config: cfg, Workload: w, MaxCycles: maxCycles}
	return store.StaticPrediction(spec, func() (*staticmodel.Prediction, error) {
		m := StaticMachine(cfg)
		if w.AccelLatency > 0 {
			m.AccelLatency = w.AccelLatency
		}
		base, err := staticmodel.NewProfile(w.Baseline)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s baseline profile: %w", w.Name, err)
		}
		acc, err := staticmodel.NewProfile(w.Accelerated)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s accelerated profile: %w", w.Name, err)
		}
		pred, err := staticmodel.Predict(staticmodel.Input{
			Baseline:             base,
			Accelerated:          acc,
			Acceleratable:        w.Acceleratable,
			Invocations:          w.Invocations,
			BaselineInstructions: w.BaselineInstructions,
			AccelLatency:         w.AccelLatency,
		}, m)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s static predict: %w", w.Name, err)
		}
		return pred, nil
	})
}

// StaticPruneConfig parameterizes the StaticRank pre-pass: rank every
// sweep point by its statically predicted best-mode speedup, keep the
// TopK frontier, and cycle-simulate only those plus a seeded random
// audit sample of Audit points from the pruned remainder (the audit
// keeps the oracle honest: its points land in the output table where a
// static misranking would show as a large error).
type StaticPruneConfig struct {
	// TopK is how many statically top-ranked points to simulate.
	TopK int
	// Audit is how many additional pruned points to simulate as a
	// random audit sample.
	Audit int
	// Seed drives the audit sample's deterministic PRNG.
	Seed int64
}

// Validate reports configuration errors.
func (c StaticPruneConfig) Validate() error {
	switch {
	case c.TopK < 1:
		return fmt.Errorf("experiments: static prune requires TopK >= 1")
	case c.Audit < 0:
		return fmt.Errorf("experiments: static prune requires Audit >= 0")
	}
	return nil
}

// PruneReport records what a StaticRank pre-pass kept, for the driver's
// stderr diagnostics (never stdout: pruned sweeps already differ by
// their row set; stock runs must stay byte-identical).
type PruneReport struct {
	// Evaluated is the number of sweep points statically ranked.
	Evaluated int
	// Kept are the simulated point indices in ascending order.
	Kept []int
	// Audited are the subset of Kept chosen by the audit sample.
	Audited []int
}

// String renders the one-line summary.
func (r *PruneReport) String() string {
	return fmt.Sprintf("static prune: ranked %d points, simulating %d (top-%d frontier + %d audit)",
		r.Evaluated, len(r.Kept), len(r.Kept)-len(r.Audited), len(r.Audited))
}

// selectPoints ranks the predictions and returns the indices to
// simulate, ascending. Ranking is by best-mode predicted speedup,
// descending, with index order breaking ties — fully deterministic.
// The audit sample draws without replacement from the pruned remainder
// using the seeded PRNG (simlint R1: no global rand).
func (c StaticPruneConfig) selectPoints(preds []*staticmodel.Prediction) (*PruneReport, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	rep := &PruneReport{Evaluated: len(preds)}
	order := make([]int, len(preds))
	for i := range order {
		order[i] = i
	}
	score := func(i int) float64 {
		p := preds[i]
		return p.Mode(p.BestMode()).Speedup
	}
	sort.SliceStable(order, func(a, b int) bool {
		return score(order[a]) > score(order[b])
	})

	topK := c.TopK
	if topK > len(order) {
		topK = len(order)
	}
	rep.Kept = append(rep.Kept, order[:topK]...)

	rest := order[topK:]
	audit := c.Audit
	if audit > len(rest) {
		audit = len(rest)
	}
	if audit > 0 {
		rng := rand.New(rand.NewSource(c.Seed))
		for _, pi := range rng.Perm(len(rest))[:audit] {
			rep.Kept = append(rep.Kept, rest[pi])
			rep.Audited = append(rep.Audited, rest[pi])
		}
	}
	sort.Ints(rep.Kept)
	sort.Ints(rep.Audited)
	return rep, nil
}
