package experiments

import (
	"strings"
	"testing"

	"repro/internal/accel"
)

func TestE4HashAndStringTCAs(t *testing.T) {
	cfg := DefaultE4()
	// Keep the default operation count: profitability needs the warm
	// steady state (cold tables make the TCA a net loss — which the
	// model also predicts; see EXPERIMENTS.md).
	cfg.FillerCounts = []int{5, 80}
	res, err := E4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 { // 3 workloads x 2 frequencies
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		r := row.Result
		// Both accelerators must be profitable in L_T at steady state.
		if lt := r.Mode(accel.LT).SimSpeedup; lt <= 1 {
			t.Errorf("%s filler=%d: L_T speedup %.2f, want > 1", row.Workload, row.Filler, lt)
		}
		// Simulated mode ordering holds (small tolerance).
		lt, nlnt := r.Mode(accel.LT).SimSpeedup, r.Mode(accel.NLNT).SimSpeedup
		if nlnt > lt+0.02 {
			t.Errorf("%s filler=%d: NL_NT (%.2f) above L_T (%.2f)", row.Workload, row.Filler, nlnt, lt)
		}
		// Granularities sit in the Fig. 2 fine-grained band for these
		// accelerators (tens of instructions).
		if g := r.Params.Granularity(); g < 8 || g > 200 {
			t.Errorf("%s: granularity %.0f outside the fine-grained band", row.Workload, g)
		}
		// Measured latency was captured for the model.
		if r.MeasuredAccelLatency <= 0 {
			t.Errorf("%s: no measured latency", row.Workload)
		}
	}
	// Fine-grained thesis: at high frequency the mode gap is substantial
	// for all three workloads.
	for _, row := range res.Rows[:3] {
		lt := row.Result.Mode(accel.LT).SimSpeedup
		nlnt := row.Result.Mode(accel.NLNT).SimSpeedup
		if (lt-nlnt)/lt < 0.1 {
			t.Errorf("%s: mode gap %.1f%% at high frequency, want >= 10%%",
				row.Workload, 100*(lt-nlnt)/lt)
		}
	}
	out := res.Render()
	for _, wl := range []string{"kvstore", "stringmatch", "regexmatch"} {
		if !strings.Contains(out, wl) {
			t.Errorf("render missing %s", wl)
		}
	}
	if !strings.Contains(res.CSV(), "measured_latency") {
		t.Error("CSV missing header")
	}
}
