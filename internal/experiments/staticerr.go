package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"

	"repro/internal/accel"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/staticmodel"
	"repro/internal/textplot"
	"repro/internal/workload"
)

// StaticErrConfig parameterizes the static-vs-simulated accuracy study:
// every point of the Fig4 and Fig5 sweeps is both statically predicted
// and cycle-simulated, and the per-mode discrepancies are tabulated.
// This is the evidence behind using the static tier as a pruning
// oracle — the table shows how far its speedups drift and how often its
// mode ranking matches the simulator's.
type StaticErrConfig struct {
	Fig4 Fig4Config
	Fig5 Fig5Config
	// Parallel is the worker count for the combined point sweep.
	Parallel int
	// Store optionally caches both tiers; nil computes directly.
	Store *scenario.Store
}

// DefaultStaticErr covers the default Fig4 and Fig5 sweeps.
func DefaultStaticErr() StaticErrConfig {
	return StaticErrConfig{Fig4: DefaultFig4(), Fig5: DefaultFig5()}
}

// StaticErrMode is one (point, mode) comparison.
type StaticErrMode struct {
	Mode accel.Mode
	// SimSpeedup is the cycle-accurate simulated speedup; StaticSpeedup
	// the static tier's prediction; Error is (static - sim) / sim.
	SimSpeedup    float64
	StaticSpeedup float64
	Error         float64
}

// StaticErrRow is one sweep point: all four modes plus whether the
// static tier picked the same best mode as the simulator.
type StaticErrRow struct {
	// Workload names the point, e.g. "synthetic/40" or "heap/160".
	Workload string
	Modes    []StaticErrMode
	// SimBest and StaticBest are each tier's best mode; RankAgree is
	// SimBest == StaticBest.
	SimBest    accel.Mode
	StaticBest accel.Mode
	RankAgree  bool
}

// StaticErrResult is the full accuracy table.
type StaticErrResult struct {
	Rows []StaticErrRow
}

// staticErrPoint pairs a point label with its workload builder.
type staticErrPoint struct {
	name  string
	build func() (*workload.Workload, error)
}

// StaticErr runs the study: both sweeps' points through both tiers.
func StaticErr(cfg StaticErrConfig) (*StaticErrResult, error) {
	points := make([]staticErrPoint, 0, len(cfg.Fig4.RegionCounts)+len(cfg.Fig5.FillerCounts))
	for i, n := range cfg.Fig4.RegionCounts {
		i, n := i, n
		points = append(points, staticErrPoint{
			name:  fmt.Sprintf("synthetic/%d", n),
			build: func() (*workload.Workload, error) { return fig4Workload(cfg.Fig4, i, n) },
		})
	}
	for _, filler := range cfg.Fig5.FillerCounts {
		filler := filler
		points = append(points, staticErrPoint{
			name:  fmt.Sprintf("heap/%d", filler),
			build: func() (*workload.Workload, error) { return fig5Workload(cfg.Fig5, filler) },
		})
	}
	core := func(name string) sim.Config {
		if strings.HasPrefix(name, "heap/") {
			return cfg.Fig5.Core
		}
		return cfg.Fig4.Core
	}

	rows, _, err := runner.Map(context.Background(), cfg.Parallel, points,
		func(_ context.Context, _ int, pt staticErrPoint) (StaticErrRow, error) {
			w, err := pt.build()
			if err != nil {
				return StaticErrRow{}, err
			}
			c := core(pt.name)
			pred, err := StaticPredictWorkloadStore(cfg.Store, c, w)
			if err != nil {
				return StaticErrRow{}, err
			}
			res, err := MeasureWorkloadStore(cfg.Store, c, w, 1)
			if err != nil {
				return StaticErrRow{}, err
			}
			return staticErrRow(pt.name, pred, res), nil
		})
	if err != nil {
		return nil, err
	}
	return &StaticErrResult{Rows: rows}, nil
}

// staticErrRow compares one point's two tiers.
func staticErrRow(name string, pred *staticmodel.Prediction, res *WorkloadResult) StaticErrRow {
	row := StaticErrRow{Workload: name, StaticBest: pred.BestMode()}
	var simBest float64
	for i, m := range accel.AllModes {
		sim := res.Mode(m).SimSpeedup
		st := pred.Mode(m).Speedup
		var e float64
		if sim > 0 {
			e = (st - sim) / sim
		}
		row.Modes = append(row.Modes, StaticErrMode{
			Mode: m, SimSpeedup: sim, StaticSpeedup: st, Error: e,
		})
		if i == 0 || sim > simBest {
			simBest = sim
			row.SimBest = m
		}
	}
	row.RankAgree = row.SimBest == row.StaticBest
	return row
}

// MAE is the mean |error| over every (point, mode) pair.
func (r *StaticErrResult) MAE() float64 {
	var sum float64
	var n int
	for _, row := range r.Rows {
		for _, m := range row.Modes {
			sum += math.Abs(m.Error)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// RankAgreement is the fraction of points whose static best mode
// matches the simulated best mode.
func (r *StaticErrResult) RankAgreement() float64 {
	if len(r.Rows) == 0 {
		return 0
	}
	var agree int
	for _, row := range r.Rows {
		if row.RankAgree {
			agree++
		}
	}
	return float64(agree) / float64(len(r.Rows))
}

// Render produces the per-point table plus the summary line.
func (r *StaticErrResult) Render() string {
	var b strings.Builder
	b.WriteString("Static-vs-simulated speedup error (static tier as pruning oracle)\n\n")
	header := []string{"workload"}
	for _, m := range accel.AllModes {
		header = append(header, "sim "+m.String(), "static "+m.String(), "err "+m.String())
	}
	header = append(header, "sim-best", "static-best", "agree")
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		cells := []string{row.Workload}
		for _, m := range row.Modes {
			cells = append(cells,
				fmt.Sprintf("%.2f", m.SimSpeedup),
				fmt.Sprintf("%.2f", m.StaticSpeedup),
				fmt.Sprintf("%+.1f%%", 100*m.Error))
		}
		agree := "no"
		if row.RankAgree {
			agree = "yes"
		}
		cells = append(cells, row.SimBest.String(), row.StaticBest.String(), agree)
		rows = append(rows, cells)
	}
	b.WriteString(textplot.Table(header, rows))
	fmt.Fprintf(&b, "\nMAE %.1f%% over %d points x %d modes; best-mode ranking agreement %.0f%%\n",
		100*r.MAE(), len(r.Rows), len(accel.AllModes), 100*r.RankAgreement())
	return b.String()
}

// CSV serializes every (point, mode) comparison.
func (r *StaticErrResult) CSV() string {
	var b strings.Builder
	b.WriteString("workload,mode,sim_speedup,static_speedup,error,sim_best,static_best,rank_agree\n")
	for _, row := range r.Rows {
		for _, m := range row.Modes {
			fmt.Fprintf(&b, "%s,%s,%g,%g,%g,%s,%s,%t\n",
				row.Workload, m.Mode, m.SimSpeedup, m.StaticSpeedup, m.Error,
				row.SimBest, row.StaticBest, row.RankAgree)
		}
	}
	return b.String()
}
