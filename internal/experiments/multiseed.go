package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"

	"repro/internal/accel"
	"repro/internal/runner"
	"repro/internal/textplot"
)

// ErrorSample aggregates model-error observations for one mode across
// repeated randomized runs.
type ErrorSample struct {
	Mode accel.Mode
	N    int
	Mean float64
	Std  float64
	Min  float64
	Max  float64
}

// summarize computes the sample statistics.
func summarize(mode accel.Mode, xs []float64) ErrorSample {
	s := ErrorSample{Mode: mode, N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	var sum float64
	for _, x := range xs {
		sum += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = sum / float64(len(xs))
	var sq float64
	for _, x := range xs {
		sq += (x - s.Mean) * (x - s.Mean)
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(sq / float64(len(xs)-1))
	}
	return s
}

// MultiSeedResult is the seed-robustness study: the Fig. 4 validation
// repeated across independently generated workloads, reporting the
// distribution of model errors per mode. The paper validates single
// instances; this quantifies how much the errors move with benchmark
// randomness (region placement and filler mix).
type MultiSeedResult struct {
	Seeds   int
	Samples []ErrorSample
}

// Fig4MultiSeed runs the synthetic validation across seeds, one job per
// seed, and aggregates per-mode errors over all (seed, sweep-point)
// observations in seed order so the statistics stay deterministic.
func Fig4MultiSeed(cfg Fig4Config, seeds int) (*MultiSeedResult, error) {
	if seeds < 2 {
		return nil, fmt.Errorf("experiments: multi-seed study needs >= 2 seeds")
	}
	results, _, err := runner.Sweep(context.Background(), cfg.Parallel, seeds,
		func(_ context.Context, s int) (*Fig4Result, error) {
			c := cfg
			c.Seed = cfg.Seed + int64(1000*s)
			res, err := Fig4(c)
			if err != nil {
				return nil, fmt.Errorf("experiments: multi-seed seed %d: %w", s, err)
			}
			return res, nil
		})
	if err != nil {
		return nil, err
	}
	errs := make(map[accel.Mode][]float64, 4)
	for _, res := range results {
		for _, row := range res.Rows {
			for _, mm := range row.Result.Modes {
				errs[mm.Mode] = append(errs[mm.Mode], mm.Error)
			}
		}
	}
	out := &MultiSeedResult{Seeds: seeds, Samples: make([]ErrorSample, 0, len(accel.AllModes))}
	for _, m := range accel.AllModes {
		out.Samples = append(out.Samples, summarize(m, errs[m]))
	}
	return out, nil
}

// Sample returns the statistics for one mode.
func (r *MultiSeedResult) Sample(m accel.Mode) ErrorSample {
	for _, s := range r.Samples {
		if s.Mode == m {
			return s
		}
	}
	panic(fmt.Sprintf("experiments: no sample for mode %v", m))
}

// Render tabulates the distributions.
func (r *MultiSeedResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Seed-robustness study: model error distribution over %d seeds\n\n", r.Seeds)
	rows := make([][]string, 0, len(r.Samples))
	for _, s := range r.Samples {
		rows = append(rows, []string{
			s.Mode.String(),
			fmt.Sprintf("%d", s.N),
			fmt.Sprintf("%+.1f%%", 100*s.Mean),
			fmt.Sprintf("%.1f%%", 100*s.Std),
			fmt.Sprintf("%+.1f%%", 100*s.Min),
			fmt.Sprintf("%+.1f%%", 100*s.Max),
		})
	}
	b.WriteString(textplot.Table(
		[]string{"mode", "samples", "mean err", "std", "min", "max"}, rows))
	return b.String()
}
