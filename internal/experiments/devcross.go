package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/accel"
	"repro/internal/isa"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/textplot"
	"repro/internal/workload"
)

// DevCrossConfig parameterizes the device-family mode-crossover study: the
// two engine-contract families (DAE streaming and the loop accelerator) are
// swept over invocation granularity, and for every point all four L/T modes
// are cycle-simulated. Small invocations leave the per-invocation overhead
// (the DAE's pipeline fill, the loop nest's configuration cost) exposed and
// favor the speculation-friendly modes; large invocations amortize it and
// the modes converge — the crossover the figure renders. The static tier's
// engine-occupancy term is computed from each device's actual schedule and
// tabulated alongside, showing how a new family plugs into the analytical
// path without per-point measurement.
type DevCrossConfig struct {
	// Core is the simulated core for every point.
	Core sim.Config
	// DAE is the streaming workload template; DAEWords overrides its
	// WordsPerStream per sweep point.
	DAE      workload.DAEStreamConfig
	DAEWords []int
	// Loop is the loop-nest workload template; LoopTrips overrides its
	// Trips per sweep point.
	Loop      workload.LoopNestConfig
	LoopTrips []int
	// Parallel is the worker count for the point sweep.
	Parallel int
	// Store optionally caches every run; nil computes directly.
	Store *scenario.Store
}

// DefaultDevCross sweeps both families across two decades of granularity on
// the high-performance core.
func DefaultDevCross() DevCrossConfig {
	return DevCrossConfig{
		Core: sim.HighPerfConfig(),
		DAE: workload.DAEStreamConfig{
			Streams: 12, WordsPerStream: 16, FillerPerOp: 40,
			ChunkWords: 8, ComputePerChunk: 6, Startup: 60, Seed: 21,
		},
		DAEWords: []int{4, 16, 64, 256},
		Loop: workload.LoopNestConfig{
			Calls: 12, FillerPerOp: 40, Trips: 4, Depth: 2,
			IterLatency: 2, ConfigLatency: 80, Seed: 22,
		},
		LoopTrips: []int{2, 4, 8, 16},
	}
}

// DevCrossMode is one (point, mode) simulated speedup.
type DevCrossMode struct {
	Mode    accel.Mode
	Speedup float64
}

// DevCrossRow is one sweep point of one family.
type DevCrossRow struct {
	// Family is "dae" or "loopnest"; Point the swept value (words per
	// stream, trips per level).
	Family string
	Point  int
	// Granularity is baseline instructions replaced per invocation.
	Granularity float64
	// StaticOccupancy is the static tier's per-invocation engine
	// occupancy, computed from the device's actual schedule.
	StaticOccupancy float64
	Modes           []DevCrossMode
	// Best is the fastest simulated mode.
	Best accel.Mode
}

// DevCrossResult is the full crossover table.
type DevCrossResult struct {
	Rows []DevCrossRow
}

// devCrossPoint pairs a sweep point with its workload builder and the
// device schedule feeding the static occupancy term.
type devCrossPoint struct {
	family   string
	point    int
	build    func() (*workload.Workload, error)
	schedule func() []isa.AccelPhase
}

// devCrossSchedule extracts a device's occupancy schedule by invoking it
// once against a blank memory image — the exact schedule the simulator's
// engine would execute, so the static term cannot drift from the device.
func devCrossSchedule(dev isa.AccelDevice, call isa.AccelCall) []isa.AccelPhase {
	return dev.Invoke(call, isa.NewMemory()).Schedule
}

// DevCross runs the study.
func DevCross(cfg DevCrossConfig) (*DevCrossResult, error) {
	points := make([]devCrossPoint, 0, len(cfg.DAEWords)+len(cfg.LoopTrips))
	for _, words := range cfg.DAEWords {
		wcfg := cfg.DAE
		wcfg.WordsPerStream = words
		points = append(points, devCrossPoint{
			family: "dae",
			point:  words,
			build:  func() (*workload.Workload, error) { return workload.DAEStream(wcfg) },
			schedule: func() []isa.AccelPhase {
				return devCrossSchedule(
					accel.NewDAE(wcfg.ChunkWords, wcfg.ComputePerChunk, wcfg.Startup),
					isa.AccelCall{Kind: accel.DAEReduce, Args: [3]uint64{0x1000, uint64(wcfg.WordsPerStream)}})
			},
		})
	}
	for _, trips := range cfg.LoopTrips {
		lcfg := cfg.Loop
		lcfg.Trips = trips
		points = append(points, devCrossPoint{
			family: "loopnest",
			point:  trips,
			build:  func() (*workload.Workload, error) { return workload.LoopNest(lcfg) },
			schedule: func() []isa.AccelPhase {
				return devCrossSchedule(
					accel.NewLoopNest(lcfg.Depth, lcfg.IterLatency, lcfg.ConfigLatency),
					isa.AccelCall{Kind: accel.LoopNestRun, Args: [3]uint64{uint64(lcfg.Trips), 1}})
			},
		})
	}
	machine := StaticMachine(cfg.Core)

	rows, _, err := runner.Map(context.Background(), cfg.Parallel, points,
		func(_ context.Context, _ int, pt devCrossPoint) (DevCrossRow, error) {
			w, err := pt.build()
			if err != nil {
				return DevCrossRow{}, err
			}
			res, err := MeasureWorkloadStore(cfg.Store, cfg.Core, w, 1)
			if err != nil {
				return DevCrossRow{}, err
			}
			row := DevCrossRow{
				Family:          pt.family,
				Point:           pt.point,
				Granularity:     w.Granularity(),
				StaticOccupancy: machine.EngineOccupancy(pt.schedule()),
			}
			var best float64
			for i, m := range accel.AllModes {
				sp := res.Mode(m).SimSpeedup
				row.Modes = append(row.Modes, DevCrossMode{Mode: m, Speedup: sp})
				if i == 0 || sp > best {
					best = sp
					row.Best = m
				}
			}
			return row, nil
		})
	if err != nil {
		return nil, err
	}
	return &DevCrossResult{Rows: rows}, nil
}

// Render produces the crossover table.
func (r *DevCrossResult) Render() string {
	var b strings.Builder
	b.WriteString("Device-family mode crossover (engine contract: DAE streaming, loop accelerator)\n\n")
	header := []string{"family", "point", "granularity", "static occ"}
	for _, m := range accel.AllModes {
		header = append(header, m.String())
	}
	header = append(header, "best")
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		cells := []string{
			row.Family,
			fmt.Sprintf("%d", row.Point),
			fmt.Sprintf("%.0f", row.Granularity),
			fmt.Sprintf("%.0f", row.StaticOccupancy),
		}
		for _, m := range row.Modes {
			cells = append(cells, fmt.Sprintf("%.2f", m.Speedup))
		}
		cells = append(cells, row.Best.String())
		rows = append(rows, cells)
	}
	b.WriteString(textplot.Table(header, rows))
	b.WriteString("\nSpeedup vs. the software baseline per mode; static occ is the per-invocation\nengine occupancy from the device's schedule on this machine.\n")
	return b.String()
}

// CSV serializes every (point, mode) speedup.
func (r *DevCrossResult) CSV() string {
	var b strings.Builder
	b.WriteString("family,point,granularity,static_occupancy,mode,speedup,best\n")
	for _, row := range r.Rows {
		for _, m := range row.Modes {
			fmt.Fprintf(&b, "%s,%d,%g,%g,%s,%g,%s\n",
				row.Family, row.Point, row.Granularity, row.StaticOccupancy,
				m.Mode, m.Speedup, row.Best)
		}
	}
	return b.String()
}
