package experiments

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

func measuredHeap(t *testing.T) *WorkloadResult {
	t.Helper()
	w, err := workload.Heap(workload.HeapConfig{
		Operations: 200, FillerPerCall: 40, Prefill: 256, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := MeasureWorkload(sim.HighPerfConfig(), w)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestDrainAblation(t *testing.T) {
	res := measuredHeap(t)
	rows, err := DrainAblation(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	byName := map[DrainVariant]DrainAblationRow{}
	for _, r := range rows {
		byName[r.Variant] = r
	}
	// The estimators must actually differ in the drain they charge:
	// zero < measured < full-ROB power law (the cap can tie the last
	// two only when the interval is shorter than the ROB drain).
	z, m, p := byName[DrainZero], byName[DrainMeasured], byName[DrainPowerLaw]
	if !(z.DrainUsed < m.DrainUsed && m.DrainUsed <= p.DrainUsed) {
		t.Errorf("drain ordering wrong: zero=%.1f measured=%.1f powerlaw=%.1f",
			z.DrainUsed, m.DrainUsed, p.DrainUsed)
	}
	// The measured-occupancy estimate must not be the worst of the three
	// for NL_NT (it is the harness default for a reason).
	abs := func(x float64) float64 {
		if x < 0 {
			return -x
		}
		return x
	}
	worst := abs(m.NLNTError)
	if abs(z.NLNTError) < worst && abs(p.NLNTError) < worst {
		t.Errorf("measured-occupancy estimator is the worst: %+v", rows)
	}
	out := RenderDrainAblation(rows)
	if !strings.Contains(out, "power-law-full-rob") {
		t.Error("render missing variant")
	}
}

func TestLoadOrderingAblation(t *testing.T) {
	// The heap baseline has real store->load traffic (free lists),
	// so conservative ordering must cost cycles.
	w, err := workload.Heap(workload.HeapConfig{
		Operations: 300, FillerPerCall: 10, Prefill: 256, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	ab, err := LoadOrdering(sim.HighPerfConfig(), w)
	if err != nil {
		t.Fatal(err)
	}
	if ab.ConservativeCycles < ab.DecoupledCycles {
		t.Errorf("conservative ordering faster (%d < %d)?",
			ab.ConservativeCycles, ab.DecoupledCycles)
	}
	if ab.DecoupledIPC <= ab.ConservativeIPC {
		t.Errorf("decoupled AGU bought nothing: %.3f vs %.3f",
			ab.DecoupledIPC, ab.ConservativeIPC)
	}
	if !strings.Contains(ab.Render(), "decoupled store AGU") {
		t.Error("render missing policy name")
	}
}
