// Package experiments regenerates every figure of the paper's evaluation:
//
//	Fig. 2 — analytical speedup vs. accelerator granularity (A72, a=30%, A=3)
//	Fig. 3 — per-mode interval timelines
//	Fig. 4 — model-vs-simulator error on the synthetic microbenchmark sweep
//	Fig. 5 — heap-manager TCA: model speedup, simulated speedup, error
//	Fig. 6 — DGEMM TCAs (2x2/4x4/8x8): measured vs. estimated speedup
//	Fig. 7 — design-space heatmaps (HP/LP cores x 4 modes) with accelerator
//	         operating curves
//	Fig. 8 — speedup vs. coverage for a 100-instruction A=2 TCA
//
// Each figure function returns typed rows/series that render to an ASCII
// chart and CSV, so `cmd/figures` can regenerate the paper's artifacts in
// one run.
//
// Every simulation a driver issues goes through a scenario.Spec and an
// optional scenario.Store, so identical runs are described identically,
// deduplicated within and across sweeps, and (with a disk-backed store)
// reused across processes. A nil store reproduces the uncached behavior
// exactly — the contract, enforced by tests and scripts/check.sh, is
// byte-identical figure output with the cache off, cold, or warm.
package experiments

import (
	"context"
	"fmt"

	"repro/internal/accel"
	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/workload"
)

// maxCycles bounds every simulation in the harness.
const maxCycles = 4_000_000_000

// ModeMeasurement is one (workload, mode) comparison of the simulator
// against the model. It is the scenario layer's ModeResult: the record
// a store caches is exactly what the drivers report.
type ModeMeasurement = scenario.ModeResult

// WorkloadResult is the full validation record for one workload on one
// core configuration: the cacheable measurement plus the identity it
// was measured under.
type WorkloadResult struct {
	Workload *workload.Workload
	Config   sim.Config

	scenario.MeasureRecord
}

// accelEvents converts the simulator's event trace to the interval
// package's simulation-free record type (simlint R11 keeps sim types out
// of the prediction stack).
func accelEvents(events []sim.AccelEvent) []interval.AccelEvent {
	out := make([]interval.AccelEvent, len(events))
	for i, e := range events {
		out[i] = interval.AccelEvent{
			Seq:      e.Seq,
			Dispatch: e.Dispatch,
			Start:    e.Start,
			Done:     e.Done,
			Commit:   e.Commit,
		}
	}
	return out
}

// archOf extracts the model's architecture constants from a simulator
// configuration.
func archOf(cfg sim.Config) core.CoreParams {
	return core.CoreParams{
		ROBSize:     cfg.ROBSize,
		IssueWidth:  cfg.DispatchWidth,
		CommitStall: float64(cfg.CommitDelay),
	}
}

// measureRun is the outcome of one simulation job inside measureCompute:
// either the baseline run or one accelerated mode.
type measureRun struct {
	stats  sim.Stats
	cycles int64
	// L_T extras: mean ROB occupancy, and the measured mean TCA service
	// time when the run recorded its event trace.
	occupancy   float64
	meanService float64
	hasService  bool
}

// MeasureWorkload runs the full paper methodology for one workload:
// simulate the baseline, calibrate the model from it via interval
// analysis, simulate the accelerated program in all four modes, and
// compare speedups. The five simulations fan out across GOMAXPROCS
// workers; use MeasureWorkloadParallel to control the width.
func MeasureWorkload(cfg sim.Config, w *workload.Workload) (*WorkloadResult, error) {
	return MeasureWorkloadStore(nil, cfg, w, 0)
}

// MeasureWorkloadParallel is MeasureWorkload with an explicit worker
// count (<= 0 selects GOMAXPROCS, 1 forces the serial path).
func MeasureWorkloadParallel(cfg sim.Config, w *workload.Workload, parallel int) (*WorkloadResult, error) {
	return MeasureWorkloadStore(nil, cfg, w, parallel)
}

// MeasureWorkloadStore is the primary entry point: MeasureWorkload
// through a scenario store. The whole measurement caches as one record
// keyed by the canonical (config, workload) digest; on a measure-level
// miss the five constituent runs — baseline plus four modes — go
// through the store's run-level cache individually, so a baseline
// shared between sweeps still executes only once. A nil store executes
// everything directly. Any store state and any worker count produce
// bit-identical results: the five runs are independent, each building
// its own core, memory image, and device.
func MeasureWorkloadStore(store *scenario.Store, cfg sim.Config, w *workload.Workload, parallel int) (*WorkloadResult, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	spec := scenario.MeasureSpec{Config: cfg, Workload: w, MaxCycles: maxCycles}
	rec, err := store.Measure(spec, func() (scenario.MeasureRecord, error) {
		return measureCompute(store, cfg, w, parallel)
	})
	if err != nil {
		return nil, err
	}
	return &WorkloadResult{Workload: w, Config: cfg, MeasureRecord: rec}, nil
}

// measureCompute performs the actual five-run measurement and model
// comparison. Each run is issued as a scenario.Spec through the store.
func measureCompute(store *scenario.Store, cfg sim.Config, w *workload.Workload, parallel int) (scenario.MeasureRecord, error) {
	var rec scenario.MeasureRecord

	// Job 0 is the baseline; jobs 1..4 are the accelerated modes. The
	// L_T run records the event trace so memory-dependent accelerators
	// get a measured latency, and its mean ROB occupancy calibrates the
	// drain estimate: the window the NL modes drain holds the accelerated
	// program's non-accelerated instruction population, whose occupancy
	// the baseline (with its software regions still inline) overstates.
	runs, _, err := runner.Sweep(context.Background(), parallel, 1+len(accel.AllModes),
		func(_ context.Context, i int) (measureRun, error) {
			if i == 0 {
				stats, err := store.RunStats(scenario.Spec{
					Config:    cfg,
					Program:   w.Baseline,
					MaxCycles: maxCycles,
				})
				if err != nil {
					return measureRun{}, fmt.Errorf("experiments: %s baseline: %w", w.Name, err)
				}
				return measureRun{stats: stats}, nil
			}
			m := accel.AllModes[i-1]
			mcfg := cfg
			mcfg.Mode = m
			//lint:ignore R4 exact sentinel: AccelLatency zero means "unset, measure it", never a computed value
			mcfg.RecordAccelEvents = m == accel.LT && w.AccelLatency == 0
			stats, err := store.RunStats(scenario.Spec{
				Config:    mcfg,
				Program:   w.Accelerated,
				NewDevice: w.NewDevice,
				DeviceKey: w.DeviceKey,
				MaxCycles: maxCycles,
			})
			if err != nil {
				return measureRun{}, fmt.Errorf("experiments: %s %s: %w", w.Name, m, err)
			}
			run := measureRun{cycles: stats.Cycles}
			if m == accel.LT {
				run.occupancy = stats.AvgROBOccupancy()
			}
			if mcfg.RecordAccelEvents {
				svc, err := interval.AnalyzeEvents(accelEvents(stats.AccelEvents))
				if err != nil {
					return measureRun{}, fmt.Errorf("experiments: %s: %w", w.Name, err)
				}
				run.meanService = svc.MeanService
				run.hasService = true
			}
			return run, nil
		})
	if err != nil {
		return rec, err
	}

	baseStats := runs[0].stats
	rec.BaselineCycles = baseStats.Cycles
	rec.BaselineIPC = baseStats.IPC()
	simCycles := make(map[accel.Mode]int64, len(accel.AllModes))
	var ltOccupancy float64
	for i, m := range accel.AllModes {
		run := runs[1+i]
		simCycles[m] = run.cycles
		if m == accel.LT {
			ltOccupancy = run.occupancy
		}
		if run.hasService {
			rec.MeasuredAccelLatency = run.meanService
		}
	}

	// Calibrate the model from the baseline measurement.
	lat := w.AccelLatency
	if lat == 0 { //lint:ignore R4 exact sentinel: AccelLatency zero means "unset, use the measured latency"
		lat = rec.MeasuredAccelLatency
	}
	meas := interval.BaselineMeasurement{
		Cycles:                    baseStats.Cycles,
		Instructions:              baseStats.Committed,
		AcceleratableInstructions: w.Acceleratable,
		Invocations:               w.Invocations,
		AvgROBOccupancy:           baseStats.AvgROBOccupancy(),
	}
	if ltOccupancy > 0 {
		meas.AvgROBOccupancy = ltOccupancy
	}
	params, err := interval.Calibrate(meas, archOf(cfg), 0, lat)
	if err != nil {
		return rec, fmt.Errorf("experiments: %s calibrate: %w", w.Name, err)
	}
	rec.Params = params

	model, err := params.Speedups()
	if err != nil {
		return rec, fmt.Errorf("experiments: %s model: %w", w.Name, err)
	}
	rec.Modes = make([]ModeMeasurement, 0, len(accel.AllModes))
	for _, m := range accel.AllModes {
		simSp := float64(baseStats.Cycles) / float64(simCycles[m])
		modSp := model.Get(m)
		rec.Modes = append(rec.Modes, ModeMeasurement{
			Mode:         m,
			SimCycles:    simCycles[m],
			SimSpeedup:   simSp,
			ModelSpeedup: modSp,
			Error:        interval.SpeedupError(modSp, simSp),
		})
	}
	return rec, nil
}
