// Package experiments regenerates every figure of the paper's evaluation:
//
//	Fig. 2 — analytical speedup vs. accelerator granularity (A72, a=30%, A=3)
//	Fig. 3 — per-mode interval timelines
//	Fig. 4 — model-vs-simulator error on the synthetic microbenchmark sweep
//	Fig. 5 — heap-manager TCA: model speedup, simulated speedup, error
//	Fig. 6 — DGEMM TCAs (2x2/4x4/8x8): measured vs. estimated speedup
//	Fig. 7 — design-space heatmaps (HP/LP cores x 4 modes) with accelerator
//	         operating curves
//	Fig. 8 — speedup vs. coverage for a 100-instruction A=2 TCA
//
// Each figure function returns typed rows/series that render to an ASCII
// chart and CSV, so `cmd/figures` can regenerate the paper's artifacts in
// one run.
package experiments

import (
	"context"
	"fmt"

	"repro/internal/accel"
	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/workload"
)

// maxCycles bounds every simulation in the harness.
const maxCycles = 4_000_000_000

// ModeMeasurement is one (workload, mode) comparison of the simulator
// against the model.
type ModeMeasurement struct {
	Mode         accel.Mode
	SimCycles    int64
	SimSpeedup   float64
	ModelSpeedup float64
	// Error is (model - sim) / sim.
	Error float64
}

// WorkloadResult is the full validation record for one workload on one
// core configuration.
type WorkloadResult struct {
	Workload *workload.Workload
	Config   sim.Config

	BaselineCycles int64
	BaselineIPC    float64
	// MeasuredAccelLatency is the mean TCA service time observed in the
	// L_T run's event trace (used for the model when the workload has no
	// intrinsic latency).
	MeasuredAccelLatency float64

	Params core.Params
	Modes  []ModeMeasurement
}

// archOf extracts the model's architecture constants from a simulator
// configuration.
func archOf(cfg sim.Config) core.CoreParams {
	return core.CoreParams{
		ROBSize:     cfg.ROBSize,
		IssueWidth:  cfg.DispatchWidth,
		CommitStall: float64(cfg.CommitDelay),
	}
}

// measureRun is the outcome of one simulation job inside MeasureWorkload:
// either the baseline run or one accelerated mode.
type measureRun struct {
	baseline *sim.Result
	cycles   int64
	// L_T extras: mean ROB occupancy, and the measured mean TCA service
	// time when the run recorded its event trace.
	occupancy   float64
	meanService float64
	hasService  bool
}

// MeasureWorkload runs the full paper methodology for one workload:
// simulate the baseline, calibrate the model from it via interval
// analysis, simulate the accelerated program in all four modes, and
// compare speedups. The five simulations fan out across GOMAXPROCS
// workers; use MeasureWorkloadParallel to control the width.
func MeasureWorkload(cfg sim.Config, w *workload.Workload) (*WorkloadResult, error) {
	return MeasureWorkloadParallel(cfg, w, 0)
}

// MeasureWorkloadParallel is MeasureWorkload with an explicit worker
// count (<= 0 selects GOMAXPROCS, 1 forces the serial path). The five
// runs — baseline plus four modes — are independent: each builds its own
// core, memory image, and device, so any width produces bit-identical
// results.
func MeasureWorkloadParallel(cfg sim.Config, w *workload.Workload, parallel int) (*WorkloadResult, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}

	// Job 0 is the baseline; jobs 1..4 are the accelerated modes. The
	// L_T run records the event trace so memory-dependent accelerators
	// get a measured latency, and its mean ROB occupancy calibrates the
	// drain estimate: the window the NL modes drain holds the accelerated
	// program's non-accelerated instruction population, whose occupancy
	// the baseline (with its software regions still inline) overstates.
	runs, _, err := runner.Sweep(context.Background(), parallel, 1+len(accel.AllModes),
		func(_ context.Context, i int) (measureRun, error) {
			if i == 0 {
				baseCore, err := sim.New(cfg, w.Baseline, nil)
				if err != nil {
					return measureRun{}, fmt.Errorf("experiments: %s baseline: %w", w.Name, err)
				}
				baseRes, err := baseCore.Run(maxCycles)
				if err != nil {
					return measureRun{}, fmt.Errorf("experiments: %s baseline run: %w", w.Name, err)
				}
				return measureRun{baseline: baseRes}, nil
			}
			m := accel.AllModes[i-1]
			mcfg := cfg
			mcfg.Mode = m
			//lint:ignore R4 exact sentinel: AccelLatency zero means "unset, measure it", never a computed value
			mcfg.RecordAccelEvents = m == accel.LT && w.AccelLatency == 0
			c, err := sim.New(mcfg, w.Accelerated, w.NewDevice())
			if err != nil {
				return measureRun{}, fmt.Errorf("experiments: %s %s: %w", w.Name, m, err)
			}
			res, err := c.Run(maxCycles)
			if err != nil {
				return measureRun{}, fmt.Errorf("experiments: %s %s run: %w", w.Name, m, err)
			}
			run := measureRun{cycles: res.Stats.Cycles}
			if m == accel.LT {
				run.occupancy = res.Stats.AvgROBOccupancy()
			}
			if mcfg.RecordAccelEvents {
				svc, err := interval.AnalyzeEvents(res.Stats.AccelEvents)
				if err != nil {
					return measureRun{}, fmt.Errorf("experiments: %s: %w", w.Name, err)
				}
				run.meanService = svc.MeanService
				run.hasService = true
			}
			return run, nil
		})
	if err != nil {
		return nil, err
	}

	baseRes := runs[0].baseline
	out := &WorkloadResult{
		Workload:       w,
		Config:         cfg,
		BaselineCycles: baseRes.Stats.Cycles,
		BaselineIPC:    baseRes.Stats.IPC(),
	}
	simCycles := make(map[accel.Mode]int64, len(accel.AllModes))
	var ltOccupancy float64
	for i, m := range accel.AllModes {
		run := runs[1+i]
		simCycles[m] = run.cycles
		if m == accel.LT {
			ltOccupancy = run.occupancy
		}
		if run.hasService {
			out.MeasuredAccelLatency = run.meanService
		}
	}

	// Calibrate the model from the baseline measurement.
	lat := w.AccelLatency
	if lat == 0 { //lint:ignore R4 exact sentinel: AccelLatency zero means "unset, use the measured latency"
		lat = out.MeasuredAccelLatency
	}
	meas := interval.FromBaselineRun(baseRes, w.Acceleratable, w.Invocations)
	if ltOccupancy > 0 {
		meas.AvgROBOccupancy = ltOccupancy
	}
	params, err := interval.Calibrate(meas, archOf(cfg), 0, lat)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s calibrate: %w", w.Name, err)
	}
	out.Params = params

	model, err := params.Speedups()
	if err != nil {
		return nil, fmt.Errorf("experiments: %s model: %w", w.Name, err)
	}
	out.Modes = make([]ModeMeasurement, 0, len(accel.AllModes))
	for _, m := range accel.AllModes {
		simSp := float64(baseRes.Stats.Cycles) / float64(simCycles[m])
		modSp := model.Get(m)
		out.Modes = append(out.Modes, ModeMeasurement{
			Mode:         m,
			SimCycles:    simCycles[m],
			SimSpeedup:   simSp,
			ModelSpeedup: modSp,
			Error:        interval.SpeedupError(modSp, simSp),
		})
	}
	return out, nil
}

// MaxAbsError returns the largest |error| across modes.
func (r *WorkloadResult) MaxAbsError() float64 {
	var worst float64
	for _, m := range r.Modes {
		e := m.Error
		if e < 0 {
			e = -e
		}
		if e > worst {
			worst = e
		}
	}
	return worst
}

// Mode returns the measurement for one mode.
func (r *WorkloadResult) Mode(m accel.Mode) ModeMeasurement {
	for _, mm := range r.Modes {
		if mm.Mode == m {
			return mm
		}
	}
	panic(fmt.Sprintf("experiments: mode %v not measured", m))
}
