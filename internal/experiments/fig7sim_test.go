package experiments

import (
	"strings"
	"testing"
)

func TestFig7SimSignValidation(t *testing.T) {
	res, err := Fig7Sim(DefaultFig7Sim())
	if err != nil {
		t.Fatal(err)
	}
	slow, fast := 0, 0
	for _, p := range res.Points {
		if !p.SignAgrees {
			t.Errorf("g=%d lat=%d: model %.3f vs sim %.3f disagree on sign",
				p.Granularity, p.AccelLatency, p.ModelSpeedup, p.SimSpeedup)
		}
		if p.SimSpeedup < 1 {
			slow++
		} else {
			fast++
		}
	}
	// The study must actually straddle the boundary: simulated slowdown
	// AND speedup points (the heatmap's blue and red are both real).
	if slow == 0 || fast == 0 {
		t.Errorf("points do not straddle the boundary: %d slow / %d fast", slow, fast)
	}
	if !strings.Contains(res.Render(), "AGREE") {
		t.Error("render missing verdicts")
	}
}
