package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/accel"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/textplot"
	"repro/internal/workload"
)

// Fig7SimPoint is one operating point of the Fig. 7 map checked on the
// simulator: does the NL_NT sign (speedup vs slowdown) match the model's
// prediction?
type Fig7SimPoint struct {
	Granularity  int
	AccelLatency int
	ModelSpeedup float64
	SimSpeedup   float64
	// SignAgrees is true when both sides fall on the same side of 1
	// (with a small dead band around exactly 1).
	SignAgrees bool
}

// Fig7SimConfig parameterizes the sign-validation study.
type Fig7SimConfig struct {
	Core sim.Config
	// Points are (granularity, accelerator latency) pairs chosen to
	// straddle the slowdown boundary: small granularity with weak
	// acceleration lands blue (slowdown), coarse or strong lands red.
	Points []struct{ Granularity, AccelLatency int }
	Seed   int64
	// Parallel is the study's worker count (<= 0 selects GOMAXPROCS).
	Parallel int
	// Store optionally caches and deduplicates runs; nil executes
	// everything directly with identical results.
	Store *scenario.Store
}

// DefaultFig7Sim picks points clearly on either side of the NL_NT
// boundary. Near-boundary cells inherit the model's NL_NT pessimism
// (EXPERIMENTS.md): on this substrate the red/blue frontier sits at
// slightly finer granularity than the model draws it, so a sign check
// needs points away from the line.
func DefaultFig7Sim() Fig7SimConfig {
	return Fig7SimConfig{
		Core: sim.HighPerfConfig(),
		Points: []struct{ Granularity, AccelLatency int }{
			{15, 25},  // weak acceleration, very fine-grained: deep blue
			{20, 15},  // slowdown region
			{400, 20}, // strong acceleration, moderate: red
			{800, 60}, // coarse: barrier amortized, red
		},
		Seed: 23,
	}
}

// Fig7SimResult is the study output.
type Fig7SimResult struct {
	Points []Fig7SimPoint
}

// Fig7Sim builds a synthetic workload per operating point and compares the
// simulated NL_NT outcome against the model's sign prediction — a spot
// check that the heatmap's red/blue boundary is real, not a model
// artifact.
func Fig7Sim(cfg Fig7SimConfig) (*Fig7SimResult, error) {
	pts, _, err := runner.Map(context.Background(), cfg.Parallel, cfg.Points,
		func(_ context.Context, i int, pt struct{ Granularity, AccelLatency int }) (Fig7SimPoint, error) {
			w, err := workload.Synthetic(workload.SyntheticConfig{
				Units:        300,
				UnitLen:      25,
				Regions:      60,
				RegionLen:    pt.Granularity,
				AccelLatency: pt.AccelLatency,
				Seed:         cfg.Seed + int64(i),
			})
			if err != nil {
				return Fig7SimPoint{}, err
			}
			res, err := MeasureWorkloadStore(cfg.Store, cfg.Core, w, cfg.Parallel)
			if err != nil {
				return Fig7SimPoint{}, err
			}
			mm := res.Mode(accel.NLNT)
			const band = 0.02 // treat ±2% as "at the boundary": either sign accepted
			agrees := (mm.ModelSpeedup >= 1-band && mm.SimSpeedup >= 1-band) ||
				(mm.ModelSpeedup <= 1+band && mm.SimSpeedup <= 1+band)
			return Fig7SimPoint{
				Granularity:  pt.Granularity,
				AccelLatency: pt.AccelLatency,
				ModelSpeedup: mm.ModelSpeedup,
				SimSpeedup:   mm.SimSpeedup,
				SignAgrees:   agrees,
			}, nil
		})
	if err != nil {
		return nil, err
	}
	return &Fig7SimResult{Points: pts}, nil
}

// Render tabulates the check.
func (r *Fig7SimResult) Render() string {
	var b strings.Builder
	b.WriteString("Fig 7 sign validation: simulated NL_NT outcome vs model prediction\n\n")
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		verdict := "AGREE"
		if !p.SignAgrees {
			verdict = "DISAGREE"
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Granularity),
			fmt.Sprintf("%d", p.AccelLatency),
			fmt.Sprintf("%.3f", p.ModelSpeedup),
			fmt.Sprintf("%.3f", p.SimSpeedup),
			verdict,
		})
	}
	b.WriteString(textplot.Table(
		[]string{"granularity", "accel latency", "model NL_NT", "sim NL_NT", "sign"}, rows))
	return b.String()
}
