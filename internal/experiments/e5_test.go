package experiments

import (
	"strings"
	"testing"

	"repro/internal/accel"
)

func TestE5MultiTCA(t *testing.T) {
	cfg := DefaultE5()
	cfg.FillerCounts = []int{50, 800}
	res, err := E5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// The heterogeneity must not blow up the model: errors stay within
	// the single-accelerator band observed in Fig. 4/5.
	if e := res.MaxAbsError(); e > 0.35 {
		t.Errorf("max |error| = %.1f%% with 9 TCAs, want <= 35%%", 100*e)
	}
	for _, row := range res.Rows {
		r := row.Result
		// L_T prediction is tight on this workload.
		lt := r.Mode(accel.LT)
		if e := lt.Error; e > 0.15 || e < -0.15 {
			t.Errorf("filler=%d: L_T error %.1f%%, want within 15%%", row.Filler, 100*e)
		}
		// The weak (energy-motivated) acceleration factor keeps NL_NT
		// near or below break-even at high coverage — the Fig. 7
		// GreenDroid story.
		if row.Filler == 50 && r.Mode(accel.NLNT).SimSpeedup > 1.0 {
			t.Errorf("NL_NT speedup %.2f at high coverage, expected near/below 1",
				r.Mode(accel.NLNT).SimSpeedup)
		}
	}
	out := res.Render()
	if !strings.Contains(out, "multi-TCA") || !strings.Contains(out, "est L_T") {
		t.Error("render incomplete")
	}
	if !strings.Contains(res.CSV(), "mean_latency") {
		t.Error("CSV missing header")
	}
}
