package experiments

import (
	"testing"

	"repro/internal/sim"
)

// detFig4 is a sweep sized for the determinism test: three points is
// enough to exercise worker interleaving without a long run.
func detFig4(parallel int) Fig4Config {
	return Fig4Config{
		Core:         sim.HighPerfConfig(),
		Units:        120,
		UnitLen:      25,
		RegionLen:    60,
		AccelLatency: 12,
		RegionCounts: []int{5, 20, 80},
		Seed:         42,
		Parallel:     parallel,
	}
}

func detFig5(parallel int) Fig5Config {
	cfg := DefaultFig5()
	cfg.Operations = 150
	cfg.FillerCounts = []int{0, 40}
	cfg.Parallel = parallel
	return cfg
}

// TestParallelMatchesSerial asserts the acceptance property of the
// parallel runner: any worker count produces byte-identical artifacts to
// the serial path, for both the rendered text and the CSV data.
func TestParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated sweep")
	}

	serial4, err := Fig4(detFig4(1))
	if err != nil {
		t.Fatal(err)
	}
	par4, err := Fig4(detFig4(8))
	if err != nil {
		t.Fatal(err)
	}
	if s, p := serial4.CSV(), par4.CSV(); s != p {
		t.Errorf("Fig4 CSV differs between parallel 1 and 8:\nserial:\n%s\nparallel:\n%s", s, p)
	}
	if s, p := serial4.Render(), par4.Render(); s != p {
		t.Error("Fig4 render differs between parallel 1 and 8")
	}

	serial5, err := Fig5(detFig5(1))
	if err != nil {
		t.Fatal(err)
	}
	par5, err := Fig5(detFig5(8))
	if err != nil {
		t.Fatal(err)
	}
	if s, p := serial5.CSV(), par5.CSV(); s != p {
		t.Errorf("Fig5 CSV differs between parallel 1 and 8:\nserial:\n%s\nparallel:\n%s", s, p)
	}
	if s, p := serial5.Render(), par5.Render(); s != p {
		t.Error("Fig5 render differs between parallel 1 and 8")
	}
}

// TestParallelMatchesSerialMultiSeed exercises the same property across
// several workload seeds: the dynamic counterpart of simlint's static
// determinism rules. A seed that leaked shared state (global rand, map
// order) would make some seed diverge between worker counts even if the
// default seed happened to agree.
func TestParallelMatchesSerialMultiSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated sweep")
	}
	for _, seed := range []int64{7, 42, 1234} {
		serialCfg := detFig4(1)
		serialCfg.Seed = seed
		parCfg := detFig4(8)
		parCfg.Seed = seed

		serial, err := Fig4(serialCfg)
		if err != nil {
			t.Fatalf("seed %d serial: %v", seed, err)
		}
		par, err := Fig4(parCfg)
		if err != nil {
			t.Fatalf("seed %d parallel: %v", seed, err)
		}
		if s, p := serial.CSV(), par.CSV(); s != p {
			t.Errorf("seed %d: Fig4 CSV differs between parallel 1 and 8:\nserial:\n%s\nparallel:\n%s", seed, s, p)
		}
		if s, p := serial.Render(), par.Render(); s != p {
			t.Errorf("seed %d: Fig4 render differs between parallel 1 and 8", seed)
		}
	}
}
