package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/accel"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/textplot"
	"repro/internal/workload"
)

// E4Config parameterizes the extension validation on the paper's other
// motivating fine-grained accelerators (Fig. 2's "hash map", "string fn"
// and "regex" markers, from reference [6]): hash-table probes, string
// compares and DFA matching — memory-using TCAs with data-dependent
// latency.
type E4Config struct {
	Core sim.Config
	// FillerCounts sweeps the invocation frequency for both workloads.
	FillerCounts []int
	Operations   int
	Seed         int64
	// Parallel is the study's worker count (<= 0 selects GOMAXPROCS).
	Parallel int
	// Store optionally caches and deduplicates runs; nil executes
	// everything directly with identical results.
	Store *scenario.Store
}

// DefaultE4 sizes the study for the harness. Operation counts keep the
// tables and key data warm (steady state), matching the paper's
// methodology of measuring the common case.
func DefaultE4() E4Config {
	return E4Config{
		Core:         sim.HighPerfConfig(),
		FillerCounts: []int{5, 20, 80, 320},
		Operations:   600,
		Seed:         17,
	}
}

// E4Row is one (workload, frequency) validation point.
type E4Row struct {
	Workload string
	Filler   int
	Result   *WorkloadResult
}

// E4Result is the study output.
type E4Result struct {
	Rows []E4Row
}

// e4Job is one (workload kind, filler) validation point; the flattened
// job list preserves the study's original row order.
type e4Job struct {
	kind   string
	filler int
}

// E4 measures the three workloads across the frequency sweep, fanning
// every (workload, frequency) pair out as its own job.
func E4(cfg E4Config) (*E4Result, error) {
	jobs := make([]e4Job, 0, 3*len(cfg.FillerCounts))
	for _, filler := range cfg.FillerCounts {
		jobs = append(jobs,
			e4Job{"kvstore", filler}, e4Job{"stringmatch", filler}, e4Job{"regexmatch", filler})
	}
	rows, _, err := runner.Map(context.Background(), cfg.Parallel, jobs,
		func(_ context.Context, _ int, job e4Job) (E4Row, error) {
			var w *workload.Workload
			var err error
			switch job.kind {
			case "kvstore":
				w, err = workload.KVStore(workload.KVStoreConfig{
					Operations: cfg.Operations, FillerPerOp: job.filler,
					Buckets: 256, Keys: 128, LookupPct: 70, KeyWords: 4, Seed: cfg.Seed,
				})
			case "stringmatch":
				w, err = workload.StringMatch(workload.StringMatchConfig{
					Comparisons: cfg.Operations, FillerPerOp: job.filler,
					Dictionary: 32, MinWords: 4, MaxWords: 24, SharedPrefix: 3, Seed: cfg.Seed,
				})
			case "regexmatch":
				w, err = workload.RegexMatch(workload.RegexMatchConfig{
					Pattern: "[ab]*abb", Matches: cfg.Operations, FillerPerOp: job.filler,
					Inputs: 32, MaxLen: 28, Seed: cfg.Seed,
				})
			}
			if err != nil {
				return E4Row{}, err
			}
			res, err := MeasureWorkloadStore(cfg.Store, cfg.Core, w, cfg.Parallel)
			if err != nil {
				return E4Row{}, fmt.Errorf("experiments: E4 %s filler=%d: %w", job.kind, job.filler, err)
			}
			return E4Row{Workload: job.kind, Filler: job.filler, Result: res}, nil
		})
	if err != nil {
		return nil, err
	}
	return &E4Result{Rows: rows}, nil
}

// Render tabulates measured vs estimated speedups per mode.
func (r *E4Result) Render() string {
	var b strings.Builder
	b.WriteString("E4: model validation on hash-map, string-compare and regex TCAs\n")
	b.WriteString("(the rest of the paper's Fig. 2 fine-grained accelerators; memory-using\n")
	b.WriteString("devices with data-dependent latency — the regex TCA's DFA walk is fully\n")
	b.WriteString("serial, one dependent table read per symbol)\n\n")
	header := []string{"workload", "filler", "a", "v", "g", "lat"}
	for _, m := range accel.AllModes {
		header = append(header, "sim "+m.String(), "est "+m.String())
	}
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		res := row.Result
		cells := []string{
			row.Workload,
			fmt.Sprintf("%d", row.Filler),
			fmt.Sprintf("%.2f", res.Params.AcceleratableFrac),
			fmt.Sprintf("%.1e", res.Params.InvocationFreq),
			fmt.Sprintf("%.0f", res.Params.Granularity()),
			fmt.Sprintf("%.1f", res.MeasuredAccelLatency),
		}
		for _, m := range accel.AllModes {
			mm := res.Mode(m)
			cells = append(cells, fmt.Sprintf("%.2f", mm.SimSpeedup), fmt.Sprintf("%.2f", mm.ModelSpeedup))
		}
		rows = append(rows, cells)
	}
	b.WriteString(textplot.Table(header, rows))
	return b.String()
}

// CSV serializes the study.
func (r *E4Result) CSV() string {
	var b strings.Builder
	b.WriteString("workload,filler,a,v,granularity,measured_latency,mode,sim_speedup,model_speedup,error\n")
	for _, row := range r.Rows {
		for _, mm := range row.Result.Modes {
			fmt.Fprintf(&b, "%s,%d,%g,%g,%g,%g,%s,%g,%g,%g\n",
				row.Workload, row.Filler,
				row.Result.Params.AcceleratableFrac,
				row.Result.Params.InvocationFreq,
				row.Result.Params.Granularity(),
				row.Result.MeasuredAccelLatency,
				mm.Mode, mm.SimSpeedup, mm.ModelSpeedup, mm.Error)
		}
	}
	return b.String()
}

// MaxAbsError returns the worst |error| across the study.
func (r *E4Result) MaxAbsError() float64 {
	var worst float64
	for _, row := range r.Rows {
		if e := row.Result.MaxAbsError(); e > worst {
			worst = e
		}
	}
	return worst
}
