package experiments

import (
	"strings"
	"testing"

	"repro/internal/accel"
	"repro/internal/core"
)

func TestE1LogCAComparison(t *testing.T) {
	res, err := E1(DefaultE1())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LogCASpeedup) != len(res.TCA) {
		t.Fatal("mismatched series")
	}
	// LogCA can never exceed the Amdahl bound at A (no overlap), while
	// the TCA L_T curve exceeds LogCA at moderate granularity thanks to
	// host/accelerator concurrency.
	amdahl := 1 / ((1 - res.Config.Coverage) + res.Config.Coverage/res.Config.AccelFactor)
	sawConcurrencyWin := false
	for i, p := range res.TCA {
		if res.LogCASpeedup[i] > amdahl+1e-9 {
			t.Fatalf("LogCA exceeded its Amdahl bound at g=%v", p.Params.Granularity())
		}
		if p.Speedups.LT > res.LogCASpeedup[i]+0.01 {
			sawConcurrencyWin = true
		}
	}
	if !sawConcurrencyWin {
		t.Error("TCA L_T never beat LogCA — overlap term missing?")
	}
	// LogCA predicts no slowdown anywhere; the TCA model does (NL_NT at
	// fine granularity). That divergence is the point of the study.
	fineNLNT := res.TCA[0].Speedups.NLNT
	if fineNLNT >= 1 {
		t.Errorf("expected NL_NT slowdown at fine granularity, got %v", fineNLNT)
	}
	if res.LogCASpeedup[0] < 0.9 {
		t.Errorf("LogCA at fine granularity = %v; near-zero overhead mapping should stay ~>=1", res.LogCASpeedup[0])
	}
	out := res.Render()
	for _, want := range []string{"LogCA", "TCA L_T", "mode spread"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
	if !strings.Contains(res.CSV(), "LogCA") {
		t.Error("CSV missing LogCA column")
	}
}

func TestE2ParetoStudy(t *testing.T) {
	res, err := E2(core.HPCore(), []float64{30, 300, 1e6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Coarse granularity: frontier collapses to NL_NT.
	coarse := res.Rows[2]
	fr := core.Frontier(coarse.Points)
	if len(fr) != 1 || fr[0].Mode != accel.NLNT {
		t.Errorf("coarse frontier = %+v, want only NL_NT", fr)
	}
	// Fine granularity: L_T is on the frontier (it buys real speedup).
	fine := core.Frontier(res.Rows[0].Points)
	foundLT := false
	for _, p := range fine {
		if p.Mode == accel.LT {
			foundLT = true
		}
	}
	if !foundLT {
		t.Error("L_T missing from the fine-grained frontier")
	}
	out := res.Render()
	if !strings.Contains(out, "dominated by") {
		t.Error("render shows no dominated designs")
	}
	if !strings.Contains(res.CSV(), "granularity,mode") {
		t.Error("CSV missing header")
	}
}

func TestE3PartialSpeculationStudy(t *testing.T) {
	cfg := DefaultE3()
	cfg.Iterations = 150
	cfg.SkipEvery = []int{3, 8}
	res, err := E3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		// Sandwich property: full <= partial <= NL (small tolerance for
		// second-order effects).
		if p.PartialCycles < p.FullCycles {
			t.Errorf("skip=%d: partial (%d) faster than full speculation (%d)",
				p.SkipEvery, p.PartialCycles, p.FullCycles)
		}
		if p.PartialCycles > p.NLCycles+p.NLCycles/20 {
			t.Errorf("skip=%d: partial (%d) slower than NL (%d)",
				p.SkipEvery, p.PartialCycles, p.NLCycles)
		}
		// The gate must reduce wasted invocations when surprises exist.
		if p.PartialSquashed > p.FullSquashed {
			t.Errorf("skip=%d: partial squashed more (%d) than full (%d)",
				p.SkipEvery, p.PartialSquashed, p.FullSquashed)
		}
	}
	// At the highest surprise rate the gate must actually engage.
	if res.Points[0].ConfidenceHeld == 0 {
		t.Error("confidence gate never engaged at 1/3 surprise rate")
	}
	if !strings.Contains(res.Render(), "partial cyc") {
		t.Error("render missing columns")
	}
	if !strings.Contains(res.CSV(), "skip_every") {
		t.Error("CSV missing header")
	}
}
