package experiments

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/accel"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/staticmodel"
	"repro/internal/workload"
)

// staticSuite mirrors the differential suite of
// internal/sim/fastforward_test.go: the same seven workloads on the
// same cores, so the static tier is pinned on exactly the programs the
// simulator's own transparency suite exercises.
type staticSuiteEntry struct {
	name string
	cfg  sim.Config
	make func() (*workload.Workload, error)
}

func staticSuite() []staticSuiteEntry {
	return []staticSuiteEntry{
		{"synthetic", sim.HighPerfConfig(), func() (*workload.Workload, error) {
			return workload.Synthetic(workload.SyntheticConfig{
				Units: 40, UnitLen: 30, Regions: 12, RegionLen: 40,
				AccelLatency: 400, Seed: 1,
			})
		}},
		{"heap", sim.LowPerfConfig(), func() (*workload.Workload, error) {
			return workload.Heap(workload.HeapConfig{
				Operations: 120, FillerPerCall: 40, Prefill: 64, Seed: 2,
			})
		}},
		{"matmul", sim.HighPerfConfig(), func() (*workload.Workload, error) {
			return workload.MatMul(workload.MatMulConfig{N: 16, Block: 8, Tile: 4, Seed: 3})
		}},
		{"kvstore", sim.A72Config(), func() (*workload.Workload, error) {
			return workload.KVStore(workload.KVStoreConfig{
				Operations: 100, FillerPerOp: 30, Buckets: 256, Keys: 64,
				LookupPct: 70, KeyWords: 4, Seed: 4,
			})
		}},
		{"regex", sim.HighPerfConfig(), func() (*workload.Workload, error) {
			return workload.RegexMatch(workload.RegexMatchConfig{
				Pattern: "ab*c.d+", Matches: 40, FillerPerOp: 30,
				Inputs: 8, MaxLen: 24, Seed: 5,
			})
		}},
		{"stringmatch", sim.LowPerfConfig(), func() (*workload.Workload, error) {
			return workload.StringMatch(workload.StringMatchConfig{
				Comparisons: 60, FillerPerOp: 30, Dictionary: 12,
				MinWords: 4, MaxWords: 10, SharedPrefix: 3, Seed: 6,
			})
		}},
		{"multitca", sim.HighPerfConfig(), func() (*workload.Workload, error) {
			cfg := workload.DefaultMultiTCA()
			cfg.Calls = 60
			return workload.MultiTCA(cfg)
		}},
	}
}

// staticGolden pins the static tier's per-mode speedups (%.4f) for the
// differential suite. These are regression anchors, not truth: if a
// deliberate model change shifts them, re-pin from the failure output —
// but any drift without a model change is a determinism bug.
var staticGolden = map[string]string{
	// synthetic's regions are *slower* on the device (latency 400 vs ~16
	// cycles of replaced work), so all modes predict a slowdown — a
	// useful pin precisely because the sign must not flip.
	"synthetic":   "L_T=0.0904 NL_T=0.0888 L_NT=0.0843 NL_NT=0.0829",
	"heap":        "L_T=2.1996 NL_T=2.1996 L_NT=1.9392 NL_NT=1.6099",
	"matmul":      "L_T=3.0248 NL_T=2.8680 L_NT=2.8680 NL_NT=2.7267",
	"kvstore":     "L_T=1.6930 NL_T=1.6930 L_NT=1.1665 NL_NT=0.8460",
	"regex":       "L_T=3.0335 NL_T=2.9410 L_NT=1.6716 NL_NT=1.3990",
	"stringmatch": "L_T=1.9772 NL_T=1.9772 L_NT=1.3633 NL_NT=1.1129",
	"multitca":    "L_T=1.4426 NL_T=1.3324 L_NT=0.8981 NL_NT=0.8541",
}

func predictSuiteEntry(t testing.TB, e staticSuiteEntry) *staticmodel.Prediction {
	t.Helper()
	w, err := e.make()
	if err != nil {
		t.Fatal(err)
	}
	pred, err := StaticPredictWorkload(e.cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	return pred
}

// goldenLine renders the pinned representation: all four mode speedups
// in accel.AllModes order.
func goldenLine(pred *staticmodel.Prediction) string {
	parts := make([]string, 0, len(accel.AllModes))
	for _, m := range accel.AllModes {
		parts = append(parts, fmt.Sprintf("%s=%.4f", m, pred.Mode(m).Speedup))
	}
	return strings.Join(parts, " ")
}

// TestStaticGoldenPredictions pins the static predictions for the seven
// differential-suite workloads across all four modes.
func TestStaticGoldenPredictions(t *testing.T) {
	for _, e := range staticSuite() {
		e := e
		t.Run(e.name, func(t *testing.T) {
			got := goldenLine(predictSuiteEntry(t, e))
			want, ok := staticGolden[e.name]
			if !ok {
				t.Fatalf("no golden entry; pin with:\n\t%q: %q,", e.name, got)
			}
			if got != want {
				t.Errorf("static prediction drifted\n got: %s\nwant: %s", got, want)
			}
		})
	}
}

// suiteReports renders the full suite's predictions through a worker
// pool of the given width, through the given store (nil = direct).
func suiteReports(t *testing.T, parallel int, store *scenario.Store) []string {
	t.Helper()
	out, _, err := runner.Map(context.Background(), parallel, staticSuite(),
		func(_ context.Context, _ int, e staticSuiteEntry) (string, error) {
			w, err := e.make()
			if err != nil {
				return "", err
			}
			pred, err := StaticPredictWorkloadStore(store, e.cfg, w)
			if err != nil {
				return "", err
			}
			return pred.String(), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestStaticPurityAndParallelDeterminism: the static tier is pure — the
// same inputs give byte-identical reports run-to-run, at any worker
// width, and with or without the prediction cache in the loop.
func TestStaticPurityAndParallelDeterminism(t *testing.T) {
	serial := suiteReports(t, 1, nil)
	again := suiteReports(t, 1, nil)
	wide := suiteReports(t, 8, nil)
	store, err := scenario.NewStore("")
	if err != nil {
		t.Fatal(err)
	}
	cached := suiteReports(t, 8, store)
	cachedAgain := suiteReports(t, 8, store) // all hits this time
	for i, name := range []string{"repeat", "parallel-8", "store-cold", "store-warm"} {
		other := [][]string{again, wide, cached, cachedAgain}[i]
		for j := range serial {
			if serial[j] != other[j] {
				t.Errorf("%s: report %d differs from serial baseline\n serial:\n%s\n %s:\n%s",
					name, j, serial[j], name, other[j])
			}
		}
	}
	if m := store.Metrics(); m.StaticMisses != int64(len(staticSuite())) ||
		m.StaticHits != int64(len(staticSuite())) {
		t.Errorf("store metrics %+v: want %d static misses and %d hits", m, len(staticSuite()), len(staticSuite()))
	}
}

// TestStaticErrAcceptance bounds the static tier's usefulness as a
// pruning oracle on the (quick-sized) Fig 4 and Fig 5 sweeps: mean
// absolute speedup error within 25%, and the statically chosen best
// mode matching the simulator's on at least 3 of every 4 points. The
// bounds are deliberately loose — the cycle simulator resolves stalls
// the static tier cannot see — but they are the documented floor under
// which frontier pruning stays trustworthy (DESIGN.md, "Analytical
// fast-path tier").
func TestStaticErrAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates the quick Fig4/Fig5 sweeps")
	}
	store, err := scenario.NewStore("")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultStaticErr()
	cfg.Store = store
	cfg.Fig4.RegionCounts = []int{5, 40, 320}
	cfg.Fig5.Operations = 200
	cfg.Fig5.FillerCounts = []int{0, 20, 160}
	res, err := StaticErr(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Rows); got != 6 {
		t.Fatalf("staticerr covered %d points, want 6", got)
	}
	if mae := res.MAE(); mae > 0.25 {
		t.Errorf("static-vs-sim MAE %.1f%% exceeds the 25%% acceptance bound\n%s", 100*mae, res.Render())
	}
	if agree := res.RankAgreement(); agree < 0.75 {
		t.Errorf("best-mode ranking agreement %.0f%% below the 75%% acceptance bound\n%s", 100*agree, res.Render())
	}
}

// TestStaticPruneSelection: the prune pre-pass keeps the statically
// best points plus the seeded audit sample, deterministically.
func TestStaticPruneSelection(t *testing.T) {
	mk := func(best float64) *staticmodel.Prediction {
		return &staticmodel.Prediction{Modes: []staticmodel.ModePrediction{
			{Mode: accel.LT, Speedup: best},
			{Mode: accel.NLNT, Speedup: best / 2},
		}}
	}
	preds := []*staticmodel.Prediction{mk(1.1), mk(3.0), mk(0.9), mk(2.0), mk(1.5), mk(2.5)}
	cfg := StaticPruneConfig{TopK: 2, Audit: 2, Seed: 9}
	rep, err := cfg.selectPoints(preds)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Evaluated != len(preds) || len(rep.Kept) != 4 || len(rep.Audited) != 2 {
		t.Fatalf("report %+v: want 6 evaluated, 4 kept, 2 audited", rep)
	}
	keep := map[int]bool{}
	for _, i := range rep.Kept {
		keep[i] = true
	}
	// The top-2 frontier (indices 1 and 5) must always survive.
	if !keep[1] || !keep[5] {
		t.Errorf("kept %v: frontier indices 1 and 5 must be included", rep.Kept)
	}
	rep2, err := cfg.selectPoints(preds)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(rep) != fmt.Sprint(rep2) {
		t.Errorf("selection not deterministic:\n %v\n %v", rep, rep2)
	}
	if _, err := (StaticPruneConfig{TopK: 0}).selectPoints(preds); err == nil {
		t.Error("TopK 0 accepted, want error")
	}
	if _, err := (StaticPruneConfig{TopK: 1, Audit: -1}).selectPoints(preds); err == nil {
		t.Error("negative Audit accepted, want error")
	}
}

// TestFig4PrunedSubset: a pruned Fig4 run's rows are a subset of the
// unpruned run's rows, byte-identical where they overlap, and the
// frontier point (the largest sweep value, which has the best L_T
// speedup) survives.
func TestFig4PrunedSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates a small Fig4 sweep twice")
	}
	store, err := scenario.NewStore("")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Fig4Config{
		Core: sim.HighPerfConfig(), Units: 40, UnitLen: 25, RegionLen: 60,
		AccelLatency: 12, RegionCounts: []int{2, 6, 18}, Seed: 42, Store: store,
	}
	full, err := Fig4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if full.Prune != nil {
		t.Fatal("unpruned run carries a prune report")
	}
	cfg.Prune = &StaticPruneConfig{TopK: 1, Audit: 1, Seed: 3}
	pruned, err := Fig4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Prune == nil || len(pruned.Rows) != 2 {
		t.Fatalf("pruned run: %d rows, report %v; want 2 rows with a report", len(pruned.Rows), pruned.Prune)
	}
	byCount := map[int]string{}
	for _, row := range full.Rows {
		byCount[row.AccelInstructions] = fmt.Sprintf("%+v", row.Result.MeasureRecord)
	}
	for _, row := range pruned.Rows {
		want, ok := byCount[row.AccelInstructions]
		if !ok {
			t.Fatalf("pruned row %d not in the full sweep", row.AccelInstructions)
		}
		if got := fmt.Sprintf("%+v", row.Result.MeasureRecord); got != want {
			t.Errorf("row %d differs between pruned and full runs", row.AccelInstructions)
		}
	}
	if pruned.Rows[len(pruned.Rows)-1].AccelInstructions != 18 {
		t.Errorf("rows %v: the statically best point (18 regions) must survive pruning",
			pruned.Rows)
	}
}
