package experiments

import (
	"reflect"
	"testing"

	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/workload"
)

// storeTestWorkload is one small synthetic workload for the cache
// equivalence tests.
func storeTestWorkload(t testing.TB) *workload.Workload {
	t.Helper()
	w, err := workload.Synthetic(workload.SyntheticConfig{
		Units: 40, UnitLen: 25, Regions: 8, RegionLen: 60,
		AccelLatency: 12, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestMeasureWorkloadStoreMatchesDirect is the core cache contract at
// the measurement level: nil store, cold store and warm store must
// produce identical records, and the warm request must not simulate.
func TestMeasureWorkloadStoreMatchesDirect(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated measurement")
	}
	w := storeTestWorkload(t)
	cfg := sim.HighPerfConfig()

	direct, err := MeasureWorkload(cfg, w)
	if err != nil {
		t.Fatal(err)
	}

	store, err := scenario.NewStore("")
	if err != nil {
		t.Fatal(err)
	}
	cold, err := MeasureWorkloadStore(store, cfg, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := MeasureWorkloadStore(store, cfg, w, 0)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(direct.MeasureRecord, cold.MeasureRecord) {
		t.Errorf("cold store record differs from direct:\ndirect: %+v\ncold:   %+v",
			direct.MeasureRecord, cold.MeasureRecord)
	}
	if !reflect.DeepEqual(cold.MeasureRecord, warm.MeasureRecord) {
		t.Errorf("warm store record differs from cold:\ncold: %+v\nwarm: %+v",
			cold.MeasureRecord, warm.MeasureRecord)
	}

	m := store.Metrics()
	if m.MeasureMisses != 1 || m.MeasureHits != 1 {
		t.Errorf("measure counters %+v, want exactly 1 miss + 1 hit", m)
	}
	// The miss ran baseline + four modes; the hit ran nothing.
	if m.RunMisses != 5 {
		t.Errorf("run misses %d, want 5 (baseline + 4 modes)", m.RunMisses)
	}
	if m.DedupRatio() <= 0 {
		t.Errorf("dedup ratio %.2f, want > 0 after a warm request", m.DedupRatio())
	}
}

// TestDiskStoreMatchesAcrossProcesses: a figure driver fed from a
// fresh store over a populated directory must render byte-identical
// artifacts while simulating nothing.
func TestDiskStoreMatchesAcrossProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated sweep")
	}
	dir := t.TempDir()

	uncached, err := Fig4(detFig4(1))
	if err != nil {
		t.Fatal(err)
	}

	coldStore, err := scenario.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	coldCfg := detFig4(8)
	coldCfg.Store = coldStore
	cold, err := Fig4(coldCfg)
	if err != nil {
		t.Fatal(err)
	}

	warmStore, err := scenario.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	warmCfg := detFig4(1)
	warmCfg.Store = warmStore
	warm, err := Fig4(warmCfg)
	if err != nil {
		t.Fatal(err)
	}

	if a, b := uncached.CSV(), cold.CSV(); a != b {
		t.Errorf("cold-store CSV differs from uncached:\nuncached:\n%s\ncold:\n%s", a, b)
	}
	if a, b := uncached.CSV(), warm.CSV(); a != b {
		t.Errorf("warm-store CSV differs from uncached:\nuncached:\n%s\nwarm:\n%s", a, b)
	}
	if a, b := uncached.Render(), warm.Render(); a != b {
		t.Error("warm-store render differs from uncached")
	}

	m := warmStore.Metrics()
	if m.RunMisses != 0 || m.MeasureMisses != 0 {
		t.Errorf("warm store simulated: %+v, want zero misses", m)
	}
	if m.MeasureDiskHits == 0 {
		t.Errorf("warm store metrics %+v, want measure-level disk hits", m)
	}
}

// The measurement-level cached-vs-uncached pair: a full five-run
// measurement versus the same request served from a warm store.

func BenchmarkMeasureWorkloadUncached(b *testing.B) {
	w := storeTestWorkload(b)
	cfg := sim.HighPerfConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := MeasureWorkload(cfg, w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMeasureWorkloadWarm(b *testing.B) {
	w := storeTestWorkload(b)
	cfg := sim.HighPerfConfig()
	store, err := scenario.NewStore("")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := MeasureWorkloadStore(store, cfg, w, 0); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MeasureWorkloadStore(store, cfg, w, 0); err != nil {
			b.Fatal(err)
		}
	}
}
