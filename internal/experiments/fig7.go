package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/accel"
	"repro/internal/core"
	"repro/internal/textplot"
)

// GreenDroidFunction is one of the nine mobile-SoC functions GreenDroid
// maps to TCAs. Instruction counts span the "hundreds of instructions"
// granularity the paper cites; names are representative Android hotspot
// functions (the original table is not reproduced in the paper, so these
// are documented estimates — see DESIGN.md).
type GreenDroidFunction struct {
	Name         string
	Instructions float64
}

// GreenDroidFunctions returns the nine reference functions.
func GreenDroidFunctions() []GreenDroidFunction {
	return []GreenDroidFunction{
		{"memset_like", 120},
		{"utf8_decode", 180},
		{"crc_update", 240},
		{"png_filter", 320},
		{"dct_block", 400},
		{"alpha_blend", 520},
		{"mem_pool_op", 650},
		{"jpeg_huff", 800},
		{"regex_step", 950},
	}
}

// Fig7Config parameterizes the design-space heatmaps.
type Fig7Config struct {
	// Cores to map (paper: HP row and LP row).
	Cores []core.CoreParams
	// AccelFactor for the map (paper uses 1.5, GreenDroid's
	// energy-motivated factor).
	AccelFactor float64
	VMin, VMax  float64
	ASteps      int
	VSteps      int
}

// DefaultFig7 follows the paper: HP and LP cores, A=1.5.
func DefaultFig7() Fig7Config {
	return Fig7Config{
		Cores:       []core.CoreParams{core.HPCore(), core.LPCore()},
		AccelFactor: 1.5,
		VMin:        1e-6,
		VMax:        0.5,
		ASteps:      24,
		VSteps:      64,
	}
}

// Fig7Panel is one (core, mode) heatmap.
type Fig7Panel struct {
	Core core.CoreParams
	Mode accel.Mode
	Grid [][]core.HeatmapCell
}

// Fig7Result is the full map plus the overlay operating curves.
type Fig7Result struct {
	Config Fig7Config
	Panels []Fig7Panel
}

// Fig7 computes the 2D speedup/slowdown maps for every core and mode.
func Fig7(cfg Fig7Config) (*Fig7Result, error) {
	out := &Fig7Result{Config: cfg}
	for _, arch := range cfg.Cores {
		base := arch.Apply(core.Params{AccelFactor: cfg.AccelFactor})
		grid, err := core.Heatmap(base, cfg.VMin, cfg.VMax, cfg.ASteps, cfg.VSteps)
		if err != nil {
			return nil, err
		}
		for _, m := range accel.AllModes {
			out.Panels = append(out.Panels, Fig7Panel{Core: arch, Mode: m, Grid: grid})
		}
	}
	return out, nil
}

// heat converts one panel to a render-ready heatmap: rows are coverage
// (top = high a), columns invocation frequency (left = low v).
func (p Fig7Panel) heat() textplot.Heatmap {
	rows := len(p.Grid)
	h := textplot.Heatmap{
		Title: fmt.Sprintf("core IPC=%.1f ROB=%d w=%d, mode %s",
			p.Core.IPC, p.Core.ROBSize, p.Core.IssueWidth, p.Mode),
		XLabel: "invocation frequency v (log)",
		YLabel: "% acceleratable a (top = high)",
		Center: 1,
	}
	h.Cells = make([][]float64, rows)
	for i := range p.Grid {
		row := make([]float64, len(p.Grid[i]))
		for j, cell := range p.Grid[i] {
			if !cell.Valid {
				row[j] = math.NaN()
			} else {
				row[j] = cell.Speedups.Get(p.Mode)
			}
		}
		// Flip: high coverage at the top.
		h.Cells[rows-1-i] = row
	}
	return h
}

// OperatingCurve maps a fixed-function accelerator of granularity g onto
// the (a, v) plane: achieving coverage a requires v = a/g.
type OperatingCurve struct {
	Name        string
	Granularity float64
}

// Fig7Curves returns the overlay curves the paper draws: the heap manager
// and the GreenDroid functions.
func Fig7Curves() []OperatingCurve {
	curves := []OperatingCurve{{"heap manager", 53}}
	for _, f := range GreenDroidFunctions() {
		curves = append(curves, OperatingCurve{"GD " + f.Name, f.Instructions})
	}
	return curves
}

// Render draws every panel plus the operating-curve table.
func (r *Fig7Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig 7: speedup (.:*#) and slowdown (~-=) over (% acceleratable, invocation freq)\n\n")
	for _, p := range r.Panels {
		b.WriteString(p.heat().Render())
		b.WriteString("\n")
	}
	b.WriteString("operating curves (v = a/granularity); NL_NT speedup at a=30% per core:\n")
	header := []string{"accelerator", "granularity"}
	for _, arch := range r.Config.Cores {
		header = append(header, fmt.Sprintf("IPC=%.1f NL_NT", arch.IPC), fmt.Sprintf("IPC=%.1f L_T", arch.IPC))
	}
	rows := make([][]string, 0)
	for _, c := range Fig7Curves() {
		row := []string{c.Name, fmt.Sprintf("%.0f", c.Granularity)}
		for _, arch := range r.Config.Cores {
			p := arch.Apply(core.Params{
				AcceleratableFrac: 0.3,
				InvocationFreq:    0.3 / c.Granularity,
				AccelFactor:       r.Config.AccelFactor,
			})
			s, err := p.Speedups()
			if err != nil {
				row = append(row, "-", "-")
				continue
			}
			row = append(row, fmt.Sprintf("%.2f", s.NLNT), fmt.Sprintf("%.2f", s.LT))
		}
		rows = append(rows, row)
	}
	b.WriteString(textplot.Table(header, rows))
	return b.String()
}

// CSV serializes every panel cell.
func (r *Fig7Result) CSV() string {
	var b strings.Builder
	b.WriteString("core_ipc,rob,mode,a,v,speedup\n")
	for _, p := range r.Panels {
		for _, gridRow := range p.Grid {
			for _, cell := range gridRow {
				if !cell.Valid {
					continue
				}
				fmt.Fprintf(&b, "%g,%d,%s,%g,%g,%g\n",
					p.Core.IPC, p.Core.ROBSize, p.Mode,
					cell.AcceleratableFrac, cell.InvocationFreq,
					cell.Speedups.Get(p.Mode))
			}
		}
	}
	return b.String()
}

// SlowdownShare returns, per panel, the fraction of valid cells in
// slowdown (speedup < 1) — the quantity behind the paper's observations
// about NT modes and HP cores.
func (r *Fig7Result) SlowdownShare() map[string]float64 {
	out := make(map[string]float64, len(r.Panels))
	for _, p := range r.Panels {
		valid, slow := 0, 0
		for _, row := range p.Grid {
			for _, cell := range row {
				if !cell.Valid {
					continue
				}
				valid++
				if cell.Speedups.Get(p.Mode) < 1 {
					slow++
				}
			}
		}
		key := fmt.Sprintf("ipc%.1f-%s", p.Core.IPC, p.Mode)
		if valid > 0 {
			out[key] = float64(slow) / float64(valid)
		}
	}
	return out
}
