package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/staticmodel"
	"repro/internal/textplot"
	"repro/internal/workload"
)

// Fig4Config parameterizes the synthetic-microbenchmark validation sweep.
// The sweep raises the accelerator-instruction count — increasing both
// invocation frequency and coverage together, exactly as §V-A does.
type Fig4Config struct {
	Core sim.Config
	// Units/UnitLen size the fixed filler pool.
	Units   int
	UnitLen int
	// RegionLen is the acceleratable-region size in baseline
	// instructions; AccelLatency the TCA latency replacing it.
	RegionLen    int
	AccelLatency int
	// RegionCounts is the sweep: one workload instance per count.
	RegionCounts []int
	Seed         int64
	// Parallel is the worker count for the sweep (<= 0 selects
	// GOMAXPROCS, 1 forces the serial path). Any width produces
	// bit-identical results; see internal/runner.
	Parallel int
	// Store optionally caches and deduplicates runs; nil executes
	// everything directly with identical results.
	Store *scenario.Store
	// Prune optionally enables the StaticRank pre-pass: every sweep
	// point is ranked by the static model and only the top-K frontier
	// plus a seeded audit sample is cycle-simulated. Nil (the default)
	// simulates every point through the exact unpruned code path.
	Prune *StaticPruneConfig
}

// DefaultFig4 sizes the sweep for the default harness.
func DefaultFig4() Fig4Config {
	return Fig4Config{
		Core:         sim.HighPerfConfig(),
		Units:        400,
		UnitLen:      25,
		RegionLen:    60,
		AccelLatency: 12,
		RegionCounts: []int{5, 10, 20, 40, 80, 160, 320, 640},
		Seed:         42,
	}
}

// Fig4Row is one workload instance of the sweep.
type Fig4Row struct {
	AccelInstructions int
	Result            *WorkloadResult
}

// Fig4Result is the full validation sweep. Prune is non-nil only when
// the StaticRank pre-pass ran; renderers ignore it (a pruned run simply
// has fewer rows) so the driver can report it on stderr.
type Fig4Result struct {
	Rows  []Fig4Row
	Prune *PruneReport
}

// fig4Workload builds sweep point i (region count n).
func fig4Workload(cfg Fig4Config, i, n int) (*workload.Workload, error) {
	return workload.Synthetic(workload.SyntheticConfig{
		Units:        cfg.Units,
		UnitLen:      cfg.UnitLen,
		Regions:      n,
		RegionLen:    cfg.RegionLen,
		AccelLatency: cfg.AccelLatency,
		Seed:         cfg.Seed + int64(i), // vary placement per instance
	})
}

// Fig4 generates the sweep workloads, validates the model against the
// simulator on each, and reports per-mode errors. Sweep points fan out
// across cfg.Parallel workers; each builds its own workload instance.
// With cfg.Prune set, a static pre-pass ranks all points first and only
// the selected frontier is simulated.
func Fig4(cfg Fig4Config) (*Fig4Result, error) {
	if cfg.Prune != nil {
		return fig4Pruned(cfg)
	}
	rows, _, err := runner.Map(context.Background(), cfg.Parallel, cfg.RegionCounts,
		func(_ context.Context, i, n int) (Fig4Row, error) {
			w, err := fig4Workload(cfg, i, n)
			if err != nil {
				return Fig4Row{}, err
			}
			res, err := MeasureWorkloadStore(cfg.Store, cfg.Core, w, cfg.Parallel)
			if err != nil {
				return Fig4Row{}, err
			}
			return Fig4Row{AccelInstructions: n, Result: res}, nil
		})
	if err != nil {
		return nil, err
	}
	return &Fig4Result{Rows: rows}, nil
}

// fig4Pruned is the two-phase path: phase A statically ranks every
// point (microseconds each), phase B cycle-simulates only the kept
// frontier. Workloads are rebuilt in phase B rather than retained so
// the pre-pass memory footprint stays flat across huge sweeps.
func fig4Pruned(cfg Fig4Config) (*Fig4Result, error) {
	preds, _, err := runner.Map(context.Background(), cfg.Parallel, cfg.RegionCounts,
		func(_ context.Context, i, n int) (*staticmodel.Prediction, error) {
			w, err := fig4Workload(cfg, i, n)
			if err != nil {
				return nil, err
			}
			return StaticPredictWorkloadStore(cfg.Store, cfg.Core, w)
		})
	if err != nil {
		return nil, err
	}
	rep, err := cfg.Prune.selectPoints(preds)
	if err != nil {
		return nil, err
	}
	rows, _, err := runner.Map(context.Background(), cfg.Parallel, rep.Kept,
		func(_ context.Context, _, idx int) (Fig4Row, error) {
			n := cfg.RegionCounts[idx]
			w, err := fig4Workload(cfg, idx, n)
			if err != nil {
				return Fig4Row{}, err
			}
			res, err := MeasureWorkloadStore(cfg.Store, cfg.Core, w, cfg.Parallel)
			if err != nil {
				return Fig4Row{}, err
			}
			return Fig4Row{AccelInstructions: n, Result: res}, nil
		})
	if err != nil {
		return nil, err
	}
	return &Fig4Result{Rows: rows, Prune: rep}, nil
}

// Chart plots |error| per mode against the accelerator-instruction count.
func (r *Fig4Result) Chart() textplot.Chart {
	ch := textplot.Chart{
		Title:  "Fig 4: analytical model speedup error vs #accel instructions (synthetic)",
		XLabel: "accelerator instructions (log)",
		YLabel: "error (model-sim)/sim",
		LogX:   true,
	}
	if len(r.Rows) == 0 {
		return ch
	}
	for _, mm := range r.Rows[0].Result.Modes {
		s := textplot.Series{Name: mm.Mode.String()}
		for _, row := range r.Rows {
			s.X = append(s.X, float64(row.AccelInstructions))
			s.Y = append(s.Y, row.Result.Mode(mm.Mode).Error)
		}
		ch.Series = append(ch.Series, s)
	}
	return ch
}

// Render produces the chart plus the per-instance table.
func (r *Fig4Result) Render() string {
	var b strings.Builder
	b.WriteString(r.Chart().Render())
	b.WriteString("\n")
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		res := row.Result
		cells := []string{
			fmt.Sprintf("%d", row.AccelInstructions),
			fmt.Sprintf("%.3f", res.Params.AcceleratableFrac),
			fmt.Sprintf("%.2e", res.Params.InvocationFreq),
			fmt.Sprintf("%.2f", res.BaselineIPC),
		}
		for _, mm := range res.Modes {
			cells = append(cells, fmt.Sprintf("%+.1f%%", 100*mm.Error))
		}
		rows = append(rows, cells)
	}
	header := []string{"#accel", "a", "v", "IPC"}
	for _, mm := range r.Rows[0].Result.Modes {
		header = append(header, "err "+mm.Mode.String())
	}
	b.WriteString(textplot.Table(header, rows))
	return b.String()
}

// CSV serializes every (instance, mode) speedup pair.
func (r *Fig4Result) CSV() string {
	var b strings.Builder
	b.WriteString("accel_instructions,a,v,ipc,mode,sim_speedup,model_speedup,error\n")
	for _, row := range r.Rows {
		for _, mm := range row.Result.Modes {
			fmt.Fprintf(&b, "%d,%g,%g,%g,%s,%g,%g,%g\n",
				row.AccelInstructions,
				row.Result.Params.AcceleratableFrac,
				row.Result.Params.InvocationFreq,
				row.Result.BaselineIPC,
				mm.Mode, mm.SimSpeedup, mm.ModelSpeedup, mm.Error)
		}
	}
	return b.String()
}

// MaxAbsError returns the worst |error| across the sweep.
func (r *Fig4Result) MaxAbsError() float64 {
	var worst float64
	for _, row := range r.Rows {
		if e := row.Result.MaxAbsError(); e > worst {
			worst = e
		}
	}
	return worst
}
