package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/textplot"
	"repro/internal/workload"
)

// Fig4Config parameterizes the synthetic-microbenchmark validation sweep.
// The sweep raises the accelerator-instruction count — increasing both
// invocation frequency and coverage together, exactly as §V-A does.
type Fig4Config struct {
	Core sim.Config
	// Units/UnitLen size the fixed filler pool.
	Units   int
	UnitLen int
	// RegionLen is the acceleratable-region size in baseline
	// instructions; AccelLatency the TCA latency replacing it.
	RegionLen    int
	AccelLatency int
	// RegionCounts is the sweep: one workload instance per count.
	RegionCounts []int
	Seed         int64
	// Parallel is the worker count for the sweep (<= 0 selects
	// GOMAXPROCS, 1 forces the serial path). Any width produces
	// bit-identical results; see internal/runner.
	Parallel int
	// Store optionally caches and deduplicates runs; nil executes
	// everything directly with identical results.
	Store *scenario.Store
}

// DefaultFig4 sizes the sweep for the default harness.
func DefaultFig4() Fig4Config {
	return Fig4Config{
		Core:         sim.HighPerfConfig(),
		Units:        400,
		UnitLen:      25,
		RegionLen:    60,
		AccelLatency: 12,
		RegionCounts: []int{5, 10, 20, 40, 80, 160, 320, 640},
		Seed:         42,
	}
}

// Fig4Row is one workload instance of the sweep.
type Fig4Row struct {
	AccelInstructions int
	Result            *WorkloadResult
}

// Fig4Result is the full validation sweep.
type Fig4Result struct {
	Rows []Fig4Row
}

// Fig4 generates the sweep workloads, validates the model against the
// simulator on each, and reports per-mode errors. Sweep points fan out
// across cfg.Parallel workers; each builds its own workload instance.
func Fig4(cfg Fig4Config) (*Fig4Result, error) {
	rows, _, err := runner.Map(context.Background(), cfg.Parallel, cfg.RegionCounts,
		func(_ context.Context, i, n int) (Fig4Row, error) {
			w, err := workload.Synthetic(workload.SyntheticConfig{
				Units:        cfg.Units,
				UnitLen:      cfg.UnitLen,
				Regions:      n,
				RegionLen:    cfg.RegionLen,
				AccelLatency: cfg.AccelLatency,
				Seed:         cfg.Seed + int64(i), // vary placement per instance
			})
			if err != nil {
				return Fig4Row{}, err
			}
			res, err := MeasureWorkloadStore(cfg.Store, cfg.Core, w, cfg.Parallel)
			if err != nil {
				return Fig4Row{}, err
			}
			return Fig4Row{AccelInstructions: n, Result: res}, nil
		})
	if err != nil {
		return nil, err
	}
	return &Fig4Result{Rows: rows}, nil
}

// Chart plots |error| per mode against the accelerator-instruction count.
func (r *Fig4Result) Chart() textplot.Chart {
	ch := textplot.Chart{
		Title:  "Fig 4: analytical model speedup error vs #accel instructions (synthetic)",
		XLabel: "accelerator instructions (log)",
		YLabel: "error (model-sim)/sim",
		LogX:   true,
	}
	if len(r.Rows) == 0 {
		return ch
	}
	for _, mm := range r.Rows[0].Result.Modes {
		s := textplot.Series{Name: mm.Mode.String()}
		for _, row := range r.Rows {
			s.X = append(s.X, float64(row.AccelInstructions))
			s.Y = append(s.Y, row.Result.Mode(mm.Mode).Error)
		}
		ch.Series = append(ch.Series, s)
	}
	return ch
}

// Render produces the chart plus the per-instance table.
func (r *Fig4Result) Render() string {
	var b strings.Builder
	b.WriteString(r.Chart().Render())
	b.WriteString("\n")
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		res := row.Result
		cells := []string{
			fmt.Sprintf("%d", row.AccelInstructions),
			fmt.Sprintf("%.3f", res.Params.AcceleratableFrac),
			fmt.Sprintf("%.2e", res.Params.InvocationFreq),
			fmt.Sprintf("%.2f", res.BaselineIPC),
		}
		for _, mm := range res.Modes {
			cells = append(cells, fmt.Sprintf("%+.1f%%", 100*mm.Error))
		}
		rows = append(rows, cells)
	}
	header := []string{"#accel", "a", "v", "IPC"}
	for _, mm := range r.Rows[0].Result.Modes {
		header = append(header, "err "+mm.Mode.String())
	}
	b.WriteString(textplot.Table(header, rows))
	return b.String()
}

// CSV serializes every (instance, mode) speedup pair.
func (r *Fig4Result) CSV() string {
	var b strings.Builder
	b.WriteString("accel_instructions,a,v,ipc,mode,sim_speedup,model_speedup,error\n")
	for _, row := range r.Rows {
		for _, mm := range row.Result.Modes {
			fmt.Fprintf(&b, "%d,%g,%g,%g,%s,%g,%g,%g\n",
				row.AccelInstructions,
				row.Result.Params.AcceleratableFrac,
				row.Result.Params.InvocationFreq,
				row.Result.BaselineIPC,
				mm.Mode, mm.SimSpeedup, mm.ModelSpeedup, mm.Error)
		}
	}
	return b.String()
}

// MaxAbsError returns the worst |error| across the sweep.
func (r *Fig4Result) MaxAbsError() float64 {
	var worst float64
	for _, row := range r.Rows {
		if e := row.Result.MaxAbsError(); e > worst {
			worst = e
		}
	}
	return worst
}
