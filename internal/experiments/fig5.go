package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/accel"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/staticmodel"
	"repro/internal/textplot"
	"repro/internal/workload"
)

// Fig5Config parameterizes the heap-manager validation: a sweep over
// malloc/free call frequency (via the filler distance between calls).
type Fig5Config struct {
	Core       sim.Config
	Operations int
	// FillerCounts is the sweep axis: non-acceleratable instructions
	// between consecutive calls (smaller = higher invocation frequency).
	FillerCounts []int
	Prefill      int
	Seed         int64
	// WarmupFiller prepends a scalar warmup phase of this many
	// instructions to every generated program (see
	// workload.HeapConfig.WarmupFiller). Zero, the default, keeps the
	// sweep byte-identical to earlier revisions; warmup-heavy studies
	// set it so the store's warm-checkpoint forking can share the prefix
	// across the four modes of each point.
	WarmupFiller int
	// Parallel is the sweep's worker count (<= 0 selects GOMAXPROCS).
	Parallel int
	// Store optionally caches and deduplicates runs; nil executes
	// everything directly with identical results.
	Store *scenario.Store
	// Prune optionally enables the StaticRank pre-pass (see Fig4Config).
	Prune *StaticPruneConfig
}

// DefaultFig5 sizes the sweep for the default harness.
func DefaultFig5() Fig5Config {
	return Fig5Config{
		Core:         sim.HighPerfConfig(),
		Operations:   600,
		FillerCounts: []int{0, 5, 10, 20, 40, 80, 160, 320},
		Prefill:      512,
		Seed:         7,
	}
}

// Fig5Row is one frequency point.
type Fig5Row struct {
	FillerPerCall int
	Result        *WorkloadResult
}

// Fig5Result is the heap validation sweep: panels (a) model speedup,
// (b) simulated speedup, (c) error, per mode.
type Fig5Result struct {
	Rows  []Fig5Row
	Prune *PruneReport
}

// fig5Workload builds the sweep point with the given filler distance.
func fig5Workload(cfg Fig5Config, filler int) (*workload.Workload, error) {
	return workload.Heap(workload.HeapConfig{
		Operations:    cfg.Operations,
		FillerPerCall: filler,
		Prefill:       cfg.Prefill,
		Seed:          cfg.Seed,
		WarmupFiller:  cfg.WarmupFiller,
	})
}

// Fig5 runs the heap-manager study, fanning the frequency sweep across
// cfg.Parallel workers. With cfg.Prune set, a static pre-pass ranks all
// points first and only the selected frontier is simulated.
func Fig5(cfg Fig5Config) (*Fig5Result, error) {
	if cfg.Prune != nil {
		return fig5Pruned(cfg)
	}
	rows, _, err := runner.Map(context.Background(), cfg.Parallel, cfg.FillerCounts,
		func(_ context.Context, _, filler int) (Fig5Row, error) {
			w, err := fig5Workload(cfg, filler)
			if err != nil {
				return Fig5Row{}, err
			}
			res, err := MeasureWorkloadStore(cfg.Store, cfg.Core, w, cfg.Parallel)
			if err != nil {
				return Fig5Row{}, err
			}
			return Fig5Row{FillerPerCall: filler, Result: res}, nil
		})
	if err != nil {
		return nil, err
	}
	return &Fig5Result{Rows: rows}, nil
}

// fig5Pruned mirrors fig4Pruned: static ranking pass, then simulation
// of the kept frontier only.
func fig5Pruned(cfg Fig5Config) (*Fig5Result, error) {
	preds, _, err := runner.Map(context.Background(), cfg.Parallel, cfg.FillerCounts,
		func(_ context.Context, _, filler int) (*staticmodel.Prediction, error) {
			w, err := fig5Workload(cfg, filler)
			if err != nil {
				return nil, err
			}
			return StaticPredictWorkloadStore(cfg.Store, cfg.Core, w)
		})
	if err != nil {
		return nil, err
	}
	rep, err := cfg.Prune.selectPoints(preds)
	if err != nil {
		return nil, err
	}
	rows, _, err := runner.Map(context.Background(), cfg.Parallel, rep.Kept,
		func(_ context.Context, _, idx int) (Fig5Row, error) {
			filler := cfg.FillerCounts[idx]
			w, err := fig5Workload(cfg, filler)
			if err != nil {
				return Fig5Row{}, err
			}
			res, err := MeasureWorkloadStore(cfg.Store, cfg.Core, w, cfg.Parallel)
			if err != nil {
				return Fig5Row{}, err
			}
			return Fig5Row{FillerPerCall: filler, Result: res}, nil
		})
	if err != nil {
		return nil, err
	}
	return &Fig5Result{Rows: rows, Prune: rep}, nil
}

// panel builds one chart over invocation frequency.
func (r *Fig5Result) panel(title, ylabel string, pick func(ModeMeasurement) float64) textplot.Chart {
	ch := textplot.Chart{Title: title, XLabel: "invocation frequency v (log)", YLabel: ylabel, LogX: true}
	if len(r.Rows) == 0 {
		return ch
	}
	for _, m := range accel.AllModes {
		s := textplot.Series{Name: m.String()}
		for _, row := range r.Rows {
			s.X = append(s.X, row.Result.Params.InvocationFreq)
			s.Y = append(s.Y, pick(row.Result.Mode(m)))
		}
		ch.Series = append(ch.Series, s)
	}
	return ch
}

// ModelChart is panel (a).
func (r *Fig5Result) ModelChart() textplot.Chart {
	return r.panel("Fig 5a: heap TCA analytical model speedup", "model speedup",
		func(m ModeMeasurement) float64 { return m.ModelSpeedup })
}

// SimChart is panel (b).
func (r *Fig5Result) SimChart() textplot.Chart {
	return r.panel("Fig 5b: heap TCA simulated speedup", "sim speedup",
		func(m ModeMeasurement) float64 { return m.SimSpeedup })
}

// ErrorChart is panel (c).
func (r *Fig5Result) ErrorChart() textplot.Chart {
	return r.panel("Fig 5c: heap TCA model error", "(model-sim)/sim",
		func(m ModeMeasurement) float64 { return m.Error })
}

// Render produces all three panels plus a table.
func (r *Fig5Result) Render() string {
	var b strings.Builder
	b.WriteString(r.ModelChart().Render())
	b.WriteString("\n")
	b.WriteString(r.SimChart().Render())
	b.WriteString("\n")
	b.WriteString(r.ErrorChart().Render())
	b.WriteString("\n")
	header := []string{"filler", "v", "a", "IPC"}
	for _, m := range accel.AllModes {
		header = append(header, "sim "+m.String(), "est "+m.String())
	}
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		cells := []string{
			fmt.Sprintf("%d", row.FillerPerCall),
			fmt.Sprintf("%.2e", row.Result.Params.InvocationFreq),
			fmt.Sprintf("%.3f", row.Result.Params.AcceleratableFrac),
			fmt.Sprintf("%.2f", row.Result.BaselineIPC),
		}
		for _, m := range accel.AllModes {
			mm := row.Result.Mode(m)
			cells = append(cells, fmt.Sprintf("%.2f", mm.SimSpeedup), fmt.Sprintf("%.2f", mm.ModelSpeedup))
		}
		rows = append(rows, cells)
	}
	b.WriteString(textplot.Table(header, rows))
	return b.String()
}

// CSV serializes every point.
func (r *Fig5Result) CSV() string {
	var b strings.Builder
	b.WriteString("filler_per_call,v,a,ipc,mode,sim_speedup,model_speedup,error\n")
	for _, row := range r.Rows {
		for _, mm := range row.Result.Modes {
			fmt.Fprintf(&b, "%d,%g,%g,%g,%s,%g,%g,%g\n",
				row.FillerPerCall,
				row.Result.Params.InvocationFreq,
				row.Result.Params.AcceleratableFrac,
				row.Result.BaselineIPC,
				mm.Mode, mm.SimSpeedup, mm.ModelSpeedup, mm.Error)
		}
	}
	return b.String()
}

// MaxAbsError returns the worst |error| across the sweep.
func (r *Fig5Result) MaxAbsError() float64 {
	var worst float64
	for _, row := range r.Rows {
		if e := row.Result.MaxAbsError(); e > worst {
			worst = e
		}
	}
	return worst
}
