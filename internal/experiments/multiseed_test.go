package experiments

import (
	"strings"
	"testing"

	"repro/internal/accel"
)

func TestFig4MultiSeed(t *testing.T) {
	cfg := smallFig4()
	cfg.RegionCounts = []int{10, 60}
	res, err := Fig4MultiSeed(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 4 {
		t.Fatalf("samples for %d modes", len(res.Samples))
	}
	for _, s := range res.Samples {
		if s.N != 8 { // 4 seeds x 2 sweep points
			t.Errorf("%s: %d observations, want 8", s.Mode, s.N)
		}
		if !(s.Min <= s.Mean && s.Mean <= s.Max) {
			t.Errorf("%s: inconsistent stats %+v", s.Mode, s)
		}
		if s.Std < 0 {
			t.Errorf("%s: negative std", s.Mode)
		}
	}
	// The L modes' mean error stays small across seeds; NL_NT carries
	// the known pessimism but must be stable (std below its own bias).
	lt := res.Sample(accel.LT)
	if abs(lt.Mean) > 0.20 {
		t.Errorf("L_T mean error %.1f%% across seeds, want <= 20%%", 100*lt.Mean)
	}
	nlnt := res.Sample(accel.NLNT)
	if nlnt.Std > 0.20 {
		t.Errorf("NL_NT error std %.1f%% across seeds — unstable", 100*nlnt.Std)
	}
	if !strings.Contains(res.Render(), "mean err") {
		t.Error("render missing columns")
	}
}

func TestFig4MultiSeedRejectsSingleSeed(t *testing.T) {
	if _, err := Fig4MultiSeed(smallFig4(), 1); err == nil {
		t.Error("single-seed study accepted")
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
