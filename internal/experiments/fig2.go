package experiments

import (
	"fmt"
	"strings"

	"repro/internal/accel"
	"repro/internal/core"
	"repro/internal/textplot"
)

// AcceleratorMarker is a published accelerator plotted on the Fig. 2
// granularity axis for reference. Granularities are order-of-magnitude
// estimates, as in the paper.
type AcceleratorMarker struct {
	Name string
	// Granularity is the accelerated task size in baseline instructions.
	Granularity float64
}

// Fig2Markers places the accelerators the paper annotates, ordered
// fine to coarse.
func Fig2Markers() []AcceleratorMarker {
	return []AcceleratorMarker{
		{"hash map [6]", 30},
		{"heap mgmt [5][6]", 53}, // (69+37)/2 uops per malloc/free
		{"string fn [6]", 100},
		{"regex [6]", 300},
		{"GreenDroid [9]", 500},
		{"speech STTNI [10]", 5e3},
		{"TPU [8]", 1e6},
		{"H.264 [3]", 1e8},
	}
}

// Fig2Config parameterizes the granularity study.
type Fig2Config struct {
	Arch core.CoreParams
	// Coverage and AccelFactor follow the paper: 30% acceleratable, A=3.
	Coverage    float64
	AccelFactor float64
	MinGran     float64
	MaxGran     float64
	Points      int
}

// DefaultFig2 returns the paper's setup: ARM A72-like core, a=30%, A=3,
// granularity 10..1e9.
func DefaultFig2() Fig2Config {
	return Fig2Config{
		Arch:        core.A72Core(),
		Coverage:    0.30,
		AccelFactor: 3,
		MinGran:     10,
		MaxGran:     1e9,
		Points:      46,
	}
}

// Fig2Result is the granularity sweep plus the reference markers.
type Fig2Result struct {
	Config  Fig2Config
	Points  []core.SweepPoint
	Markers []AcceleratorMarker
}

// Fig2 runs the analytical granularity study of the introduction.
func Fig2(cfg Fig2Config) (*Fig2Result, error) {
	base := cfg.Arch.Apply(core.Params{
		AcceleratableFrac: cfg.Coverage,
		AccelFactor:       cfg.AccelFactor,
		InvocationFreq:    cfg.Coverage / cfg.MinGran, // overwritten by the sweep
	})
	pts, err := core.GranularitySweep(base, cfg.MinGran, cfg.MaxGran, cfg.Points)
	if err != nil {
		return nil, err
	}
	return &Fig2Result{Config: cfg, Points: pts, Markers: Fig2Markers()}, nil
}

// Chart renders the four mode curves on a log-x axis.
func (r *Fig2Result) Chart() textplot.Chart {
	ch := textplot.Chart{
		Title:  "Fig 2: program speedup vs accelerator granularity (a=30%, A=3, A72-like core)",
		XLabel: "granularity (instructions per invocation, log)",
		YLabel: "program speedup",
		LogX:   true,
	}
	for _, m := range accel.AllModes {
		s := textplot.Series{Name: m.String()}
		for _, p := range r.Points {
			s.X = append(s.X, p.Params.Granularity())
			s.Y = append(s.Y, p.Speedups.Get(m))
		}
		ch.Series = append(ch.Series, s)
	}
	return ch
}

// Render produces the full figure: chart plus marker table.
func (r *Fig2Result) Render() string {
	var b strings.Builder
	b.WriteString(r.Chart().Render())
	b.WriteString("\nreference accelerators (approximate granularity):\n")
	rows := make([][]string, 0, len(r.Markers))
	for _, mk := range r.Markers {
		sp := r.speedupsAt(mk.Granularity)
		rows = append(rows, []string{
			mk.Name,
			fmt.Sprintf("%.3g", mk.Granularity),
			fmt.Sprintf("%.2f", sp.LT),
			fmt.Sprintf("%.2f", sp.NLT),
			fmt.Sprintf("%.2f", sp.LNT),
			fmt.Sprintf("%.2f", sp.NLNT),
		})
	}
	b.WriteString(textplot.Table(
		[]string{"accelerator", "granularity", "L_T", "NL_T", "L_NT", "NL_NT"}, rows))
	return b.String()
}

// CSV serializes the sweep.
func (r *Fig2Result) CSV() string { return r.Chart().CSV() }

// speedupsAt evaluates the model exactly at one granularity.
func (r *Fig2Result) speedupsAt(g float64) core.ModeValues {
	p := r.Config.Arch.Apply(core.Params{
		AcceleratableFrac: r.Config.Coverage,
		AccelFactor:       r.Config.AccelFactor,
		InvocationFreq:    r.Config.Coverage / g,
	})
	s, err := p.Speedups()
	if err != nil {
		return core.ModeValues{}
	}
	return s
}

// Fig3 renders the per-mode interval timelines (the paper's illustrative
// Fig. 3) for a representative parameter point.
func Fig3(p core.Params) (string, error) {
	var b strings.Builder
	b.WriteString("Fig 3: effective dispatch over the average interval per TCA mode\n")
	b.WriteString("('#' = useful dispatch at IPC, '.' = stalled/zero dispatch)\n\n")
	for _, m := range []accel.Mode{accel.NLNT, accel.LNT, accel.NLT, accel.LT} {
		tl, err := p.Timeline(m)
		if err != nil {
			return "", err
		}
		b.WriteString(tl.String())
		b.WriteString("\n")
	}
	return b.String(), nil
}
