package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/accel"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestFig2ShapeMatchesPaper(t *testing.T) {
	res, err := Fig2(DefaultFig2())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != DefaultFig2().Points {
		t.Fatalf("points = %d", len(res.Points))
	}
	fine := res.Points[0].Speedups
	coarse := res.Points[len(res.Points)-1].Speedups
	// Paper Fig. 2: NL_NT causes slowdown at fine granularity; all modes
	// converge toward the same speedup at coarse granularity.
	if fine.NLNT >= 1 {
		t.Errorf("fine NL_NT = %v, want < 1", fine.NLNT)
	}
	if fine.LT <= 1 {
		t.Errorf("fine L_T = %v, want > 1", fine.LT)
	}
	if (coarse.LT-coarse.NLNT)/coarse.LT > 1e-3 {
		t.Error("modes did not converge at coarse granularity")
	}
	// Moderate granularity beats very coarse for L_T (ILP exposure).
	mid := res.speedupsAt(1e4)
	if mid.LT <= coarse.LT {
		t.Errorf("mid-granularity L_T %v not above coarse %v", mid.LT, coarse.LT)
	}
	out := res.Render()
	for _, want := range []string{"L_T", "NL_NT", "heap mgmt", "TPU", "H.264"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
	if !strings.Contains(res.CSV(), "L_T") {
		t.Error("CSV missing header")
	}
}

func TestFig3Renders(t *testing.T) {
	p := core.HPCore().Apply(core.Params{
		AcceleratableFrac: 0.3, InvocationFreq: 0.003, AccelFactor: 3,
	})
	out, err := Fig3(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range accel.AllModes {
		if !strings.Contains(out, m.String()) {
			t.Errorf("Fig3 missing mode %s", m)
		}
	}
}

// smallFig4 shrinks the sweep for test runtime.
func smallFig4() Fig4Config {
	cfg := DefaultFig4()
	cfg.Units = 120
	cfg.RegionCounts = []int{4, 16, 64}
	return cfg
}

func TestFig4ValidationErrorsSmall(t *testing.T) {
	res, err := Fig4(smallFig4())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// The paper reports typically <5% error for the synthetic sweep on
	// gem5; on this from-scratch substrate the drain/barrier penalties
	// are partially hidden by front-end slack, so the gate is looser.
	// What must hold exactly is the trend preservation asserted below.
	if e := res.MaxAbsError(); e > 0.30 {
		t.Errorf("max |error| = %.1f%%, want <= 30%%", 100*e)
	}
	// Trend preservation: the model must order the modes the way the
	// simulator does at every point.
	for _, row := range res.Rows {
		for _, pair := range [][2]accel.Mode{{accel.LT, accel.NLNT}, {accel.NLT, accel.NLNT}, {accel.LT, accel.LNT}} {
			simGap := row.Result.Mode(pair[0]).SimSpeedup - row.Result.Mode(pair[1]).SimSpeedup
			modGap := row.Result.Mode(pair[0]).ModelSpeedup - row.Result.Mode(pair[1]).ModelSpeedup
			if simGap < -0.02 {
				t.Errorf("simulator violates mode order %v at %d regions (gap %.3f)",
					pair, row.AccelInstructions, simGap)
			}
			if modGap < -1e-9 {
				t.Errorf("model violates mode order %v", pair)
			}
		}
	}
	out := res.Render()
	if !strings.Contains(out, "err L_T") {
		t.Error("render missing error columns")
	}
	if !strings.Contains(res.CSV(), "sim_speedup") {
		t.Error("CSV missing header")
	}
}

func TestFig5HeapSmall(t *testing.T) {
	cfg := DefaultFig5()
	cfg.Operations = 150
	cfg.FillerCounts = []int{0, 20, 120}
	res, err := Fig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Invocation frequency decreases as filler grows.
	v0 := res.Rows[0].Result.Params.InvocationFreq
	v2 := res.Rows[2].Result.Params.InvocationFreq
	if v0 <= v2 {
		t.Errorf("v(filler=0)=%v not above v(filler=120)=%v", v0, v2)
	}
	// Paper Fig. 5: speedup grows with invocation frequency, and the
	// mode gap is largest at high frequency.
	for _, m := range accel.AllModes {
		if res.Rows[0].Result.Mode(m).SimSpeedup < res.Rows[2].Result.Mode(m).SimSpeedup {
			t.Errorf("%s: speedup not increasing with call frequency", m)
		}
	}
	gapHigh := res.Rows[0].Result.Mode(accel.LT).SimSpeedup - res.Rows[0].Result.Mode(accel.NLNT).SimSpeedup
	gapLow := res.Rows[2].Result.Mode(accel.LT).SimSpeedup - res.Rows[2].Result.Mode(accel.NLNT).SimSpeedup
	if gapHigh <= gapLow {
		t.Errorf("mode gap %v at high freq not above %v at low freq", gapHigh, gapLow)
	}
	// The paper reports up to ~8.5% heap error and notes it grows with
	// invocation frequency; our worst case (filler=0, a=0.92, pure
	// dependent glue between 1-cycle invocations) is the regime the
	// paper's §VI-3 caveat describes, so the gate there is loose. The
	// moderate-frequency points must stay much closer.
	if e := res.MaxAbsError(); e > 0.90 {
		t.Errorf("max |error| = %.1f%%, want <= 90%%", 100*e)
	}
	if e := res.Rows[2].Result.MaxAbsError(); e > 0.35 {
		t.Errorf("low-frequency max |error| = %.1f%%, want <= 35%%", 100*e)
	}
	if !strings.Contains(res.Render(), "Fig 5a") {
		t.Error("render missing panel a")
	}
}

func TestFig6MatMulSmall(t *testing.T) {
	cfg := Fig6Config{Core: sim.HighPerfConfig(), N: 32, Block: 16, Tiles: []int{2, 4, 8}, Seed: 3}
	res, err := Fig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Fig. 6 shape: larger tiles give larger speedups; every
	// accelerator beats software in L_T.
	var prev float64
	for _, row := range res.Rows {
		lt := row.Result.Mode(accel.LT)
		if lt.SimSpeedup <= prev {
			t.Errorf("tile %d: L_T speedup %.2f not above smaller tile's %.2f",
				row.Tile, lt.SimSpeedup, prev)
		}
		prev = lt.SimSpeedup
		if lt.SimSpeedup <= 1 {
			t.Errorf("tile %d: no speedup (%.2f)", row.Tile, lt.SimSpeedup)
		}
		if row.Result.MeasuredAccelLatency <= 0 {
			t.Errorf("tile %d: no measured latency", row.Tile)
		}
	}
	// Mode-gap amortization: the relative L_T/NL_NT gap shrinks from the
	// 2x2 to the 8x8 accelerator (paper: "the larger speedup ...
	// amortizes the cost of the drain and fill penalties").
	relGap := func(r *WorkloadResult) float64 {
		lt := r.Mode(accel.LT).SimSpeedup
		return (lt - r.Mode(accel.NLNT).SimSpeedup) / lt
	}
	if g2, g8 := relGap(res.Rows[0].Result), relGap(res.Rows[2].Result); g2 <= g8 {
		t.Errorf("relative mode gap 2x2 (%.3f) not above 8x8 (%.3f)", g2, g8)
	}
	if !strings.Contains(res.Render(), "Meas L_T") {
		t.Error("render missing measured series")
	}
}

func TestFig7DesignSpace(t *testing.T) {
	res, err := Fig7(DefaultFig7())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Panels) != 8 { // 2 cores x 4 modes
		t.Fatalf("panels = %d, want 8", len(res.Panels))
	}
	share := res.SlowdownShare()
	// Paper observation 1: the HP core is more mode-sensitive — its NT
	// modes have a larger slowdown region than the LP core's.
	if share["ipc1.8-NL_NT"] <= share["ipc0.5-NL_NT"] {
		t.Errorf("HP NL_NT slowdown share %.3f not above LP %.3f",
			share["ipc1.8-NL_NT"], share["ipc0.5-NL_NT"])
	}
	// L_T never slows down.
	if share["ipc1.8-L_T"] != 0 || share["ipc0.5-L_T"] != 0 {
		t.Errorf("L_T shows slowdown cells: %v", share)
	}
	out := res.Render()
	if !strings.Contains(out, "heap manager") || !strings.Contains(out, "GD ") {
		t.Error("render missing operating curves")
	}
	if !strings.Contains(res.CSV(), "speedup") {
		t.Error("CSV missing header")
	}
}

func TestFig8Concurrency(t *testing.T) {
	res, err := Fig8(DefaultFig8())
	if err != nil {
		t.Fatal(err)
	}
	// Paper headline: peak speedup ~3 (= A+1) at ~67% coverage.
	if math.Abs(res.PeakA-2.0/3.0) > 0.03 {
		t.Errorf("peak at a = %v, want ~0.667", res.PeakA)
	}
	if math.Abs(res.PeakSpeedup-3) > 0.1 {
		t.Errorf("peak speedup = %v, want ~3", res.PeakSpeedup)
	}
	// NL_T shows its local-maximum behaviour: the curve is not monotone
	// up to the L_T peak position.
	if !strings.Contains(res.Render(), "peak") {
		t.Error("render missing peak annotation")
	}
}

// TestMeasureWorkloadBasics exercises the shared machinery directly.
func TestMeasureWorkloadBasics(t *testing.T) {
	w, err := workload.Synthetic(workload.SyntheticConfig{
		Units: 80, UnitLen: 20, Regions: 12, RegionLen: 40, AccelLatency: 10, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := MeasureWorkload(sim.LowPerfConfig(), w)
	if err != nil {
		t.Fatal(err)
	}
	if res.BaselineCycles <= 0 || res.BaselineIPC <= 0 {
		t.Error("baseline not measured")
	}
	if len(res.Modes) != 4 {
		t.Fatalf("modes = %d", len(res.Modes))
	}
	for _, mm := range res.Modes {
		if mm.SimSpeedup <= 0 || mm.ModelSpeedup <= 0 {
			t.Errorf("%s: non-positive speedups %+v", mm.Mode, mm)
		}
	}
	// Sim mode ordering must hold here too.
	if res.Mode(accel.LT).SimCycles > res.Mode(accel.NLNT).SimCycles {
		t.Error("L_T slower than NL_NT in simulation")
	}
	if res.MaxAbsError() > 0.35 {
		t.Errorf("error %.1f%% too large on LP core", 100*res.MaxAbsError())
	}
}
