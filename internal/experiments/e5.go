package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/accel"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/textplot"
	"repro/internal/workload"
)

// E5Config parameterizes the heterogeneous multi-TCA study: the
// GreenDroid-style scenario of many function-specific accelerators with
// different sizes and invocation frequencies, which the model abstracts
// into a single average interval. The study quantifies how well that
// abstraction holds.
type E5Config struct {
	Core sim.Config
	// FillerCounts sweeps overall invocation frequency.
	FillerCounts []int
	Calls        int
	Seed         int64
	// Parallel is the study's worker count (<= 0 selects GOMAXPROCS).
	Parallel int
	// Store optionally caches and deduplicates runs; nil executes
	// everything directly with identical results.
	Store *scenario.Store
}

// DefaultE5 sizes the study.
func DefaultE5() E5Config {
	return E5Config{
		Core:         sim.HighPerfConfig(),
		FillerCounts: []int{50, 200, 800},
		Calls:        120,
		Seed:         4,
	}
}

// E5Row is one frequency point.
type E5Row struct {
	Filler int
	Result *WorkloadResult
}

// E5Result is the study output.
type E5Result struct {
	Rows []E5Row
}

// E5 measures the multi-TCA workload across invocation frequencies, one
// job per frequency point.
func E5(cfg E5Config) (*E5Result, error) {
	rows, _, err := runner.Map(context.Background(), cfg.Parallel, cfg.FillerCounts,
		func(_ context.Context, _, filler int) (E5Row, error) {
			mc := workload.DefaultMultiTCA()
			mc.Calls = cfg.Calls
			mc.FillerPerCall = filler
			mc.Seed = cfg.Seed
			w, err := workload.MultiTCA(mc)
			if err != nil {
				return E5Row{}, err
			}
			res, err := MeasureWorkloadStore(cfg.Store, cfg.Core, w, cfg.Parallel)
			if err != nil {
				return E5Row{}, fmt.Errorf("experiments: E5 filler=%d: %w", filler, err)
			}
			return E5Row{Filler: filler, Result: res}, nil
		})
	if err != nil {
		return nil, err
	}
	return &E5Result{Rows: rows}, nil
}

// Render tabulates measured vs estimated speedups per mode.
func (r *E5Result) Render() string {
	var b strings.Builder
	b.WriteString("E5: heterogeneous multi-TCA complex (GreenDroid-style, 9 function\n")
	b.WriteString("accelerators via accel.Mux) vs the model's single-average-interval\n")
	b.WriteString("abstraction\n\n")
	header := []string{"filler", "a", "v", "mean lat"}
	for _, m := range accel.AllModes {
		header = append(header, "sim "+m.String(), "est "+m.String())
	}
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		res := row.Result
		cells := []string{
			fmt.Sprintf("%d", row.Filler),
			fmt.Sprintf("%.2f", res.Params.AcceleratableFrac),
			fmt.Sprintf("%.1e", res.Params.InvocationFreq),
			fmt.Sprintf("%.0f", res.Params.AccelLatency),
		}
		for _, m := range accel.AllModes {
			mm := res.Mode(m)
			cells = append(cells, fmt.Sprintf("%.2f", mm.SimSpeedup), fmt.Sprintf("%.2f", mm.ModelSpeedup))
		}
		rows = append(rows, cells)
	}
	b.WriteString(textplot.Table(header, rows))
	b.WriteString("\nThe model's even-distribution assumption absorbs the heterogeneity:\n")
	b.WriteString("errors stay in the single-accelerator band even with 9 different TCAs.\n")
	return b.String()
}

// CSV serializes the study.
func (r *E5Result) CSV() string {
	var b strings.Builder
	b.WriteString("filler,a,v,mean_latency,mode,sim_speedup,model_speedup,error\n")
	for _, row := range r.Rows {
		for _, mm := range row.Result.Modes {
			fmt.Fprintf(&b, "%d,%g,%g,%g,%s,%g,%g,%g\n",
				row.Filler,
				row.Result.Params.AcceleratableFrac,
				row.Result.Params.InvocationFreq,
				row.Result.Params.AccelLatency,
				mm.Mode, mm.SimSpeedup, mm.ModelSpeedup, mm.Error)
		}
	}
	return b.String()
}

// MaxAbsError returns the worst |error|.
func (r *E5Result) MaxAbsError() float64 {
	var worst float64
	for _, row := range r.Rows {
		if e := row.Result.MaxAbsError(); e > worst {
			worst = e
		}
	}
	return worst
}
