package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/accel"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/textplot"
	"repro/internal/workload"
)

// Fig6Config parameterizes the DGEMM study: one N×N multiplication with
// Block×Block cache blocking, accelerated by 2×2, 4×4 and 8×8 TCAs.
type Fig6Config struct {
	Core  sim.Config
	N     int
	Block int
	Tiles []int
	Seed  int64
	// Parallel is the study's worker count (<= 0 selects GOMAXPROCS).
	Parallel int
	// Store optionally caches and deduplicates runs; nil executes
	// everything directly with identical results.
	Store *scenario.Store
}

// DefaultFig6 keeps the paper's 32×32 blocking on a simulator-practical
// matrix (the paper's 512×512 is available via cmd/figures -matmul-n=512).
func DefaultFig6() Fig6Config {
	return Fig6Config{
		Core:  sim.HighPerfConfig(),
		N:     64,
		Block: 32,
		Tiles: []int{2, 4, 8},
		Seed:  3,
	}
}

// Fig6Row is one accelerator size.
type Fig6Row struct {
	Tile   int
	Result *WorkloadResult
}

// Fig6Result is the matmul study.
type Fig6Result struct {
	Config Fig6Config
	Rows   []Fig6Row
}

// Fig6 runs the DGEMM validation for each tile size, one worker per tile.
func Fig6(cfg Fig6Config) (*Fig6Result, error) {
	rows, _, err := runner.Map(context.Background(), cfg.Parallel, cfg.Tiles,
		func(_ context.Context, _, tile int) (Fig6Row, error) {
			w, err := workload.MatMul(workload.MatMulConfig{
				N: cfg.N, Block: cfg.Block, Tile: tile, Seed: cfg.Seed,
			})
			if err != nil {
				return Fig6Row{}, err
			}
			res, err := MeasureWorkloadStore(cfg.Store, cfg.Core, w, cfg.Parallel)
			if err != nil {
				return Fig6Row{}, err
			}
			return Fig6Row{Tile: tile, Result: res}, nil
		})
	if err != nil {
		return nil, err
	}
	return &Fig6Result{Config: cfg, Rows: rows}, nil
}

// Chart plots measured and estimated speedup per (tile, mode) on a log-y
// axis, matching the figure's presentation.
func (r *Fig6Result) Chart() textplot.Chart {
	ch := textplot.Chart{
		Title:  fmt.Sprintf("Fig 6: %dx%d DGEMM speedup, %dx%d blocking (log scale)", r.Config.N, r.Config.N, r.Config.Block, r.Config.Block),
		XLabel: "TCA tile edge",
		YLabel: "speedup over element-wise software (log)",
		LogY:   true,
	}
	meas := textplot.Series{Name: "Meas L_T"}
	est := textplot.Series{Name: "Est L_T"}
	measW := textplot.Series{Name: "Meas NL_NT"}
	estW := textplot.Series{Name: "Est NL_NT"}
	for _, row := range r.Rows {
		x := float64(row.Tile)
		meas.X, meas.Y = append(meas.X, x), append(meas.Y, row.Result.Mode(accel.LT).SimSpeedup)
		est.X, est.Y = append(est.X, x), append(est.Y, row.Result.Mode(accel.LT).ModelSpeedup)
		measW.X, measW.Y = append(measW.X, x), append(measW.Y, row.Result.Mode(accel.NLNT).SimSpeedup)
		estW.X, estW.Y = append(estW.X, x), append(estW.Y, row.Result.Mode(accel.NLNT).ModelSpeedup)
	}
	ch.Series = []textplot.Series{meas, est, measW, estW}
	return ch
}

// Render produces the chart plus the full per-mode table.
func (r *Fig6Result) Render() string {
	var b strings.Builder
	b.WriteString(r.Chart().Render())
	b.WriteString("\n")
	header := []string{"accel", "mode", "meas", "est", "error", "accel lat (cyc)"}
	rows := make([][]string, 0, len(r.Rows)*4)
	for _, row := range r.Rows {
		for _, mm := range row.Result.Modes {
			rows = append(rows, []string{
				fmt.Sprintf("%dx%d", row.Tile, row.Tile),
				mm.Mode.String(),
				fmt.Sprintf("%.2f", mm.SimSpeedup),
				fmt.Sprintf("%.2f", mm.ModelSpeedup),
				fmt.Sprintf("%+.1f%%", 100*mm.Error),
				fmt.Sprintf("%.1f", row.Result.MeasuredAccelLatency),
			})
		}
	}
	b.WriteString(textplot.Table(header, rows))
	return b.String()
}

// CSV serializes every (tile, mode) pair.
func (r *Fig6Result) CSV() string {
	var b strings.Builder
	b.WriteString("tile,mode,sim_speedup,model_speedup,error,measured_latency\n")
	for _, row := range r.Rows {
		for _, mm := range row.Result.Modes {
			fmt.Fprintf(&b, "%d,%s,%g,%g,%g,%g\n",
				row.Tile, mm.Mode, mm.SimSpeedup, mm.ModelSpeedup, mm.Error,
				row.Result.MeasuredAccelLatency)
		}
	}
	return b.String()
}

// MaxAbsError returns the worst |error| across tiles and modes.
func (r *Fig6Result) MaxAbsError() float64 {
	var worst float64
	for _, row := range r.Rows {
		if e := row.Result.MaxAbsError(); e > worst {
			worst = e
		}
	}
	return worst
}
