package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/accel"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/textplot"
	"repro/internal/workload"
)

// This file holds the ablation studies for the design choices DESIGN.md
// calls out:
//
//	A1 — drain-time estimation: measured-occupancy calibration (the
//	     harness default) vs. the paper's full-ROB power law vs. assuming
//	     zero drain. Quantifies how much the NL-mode predictions depend
//	     on the estimator.
//	A2 — LSQ disambiguation: decoupled store AGU (default) vs.
//	     conservative full-store ordering. Quantifies the baseline-IPC
//	     effect of the simulator's load-ordering design choice.

// DrainVariant names one drain-estimation policy.
type DrainVariant string

// Drain estimation policies.
const (
	DrainMeasured DrainVariant = "measured-occupancy"
	DrainPowerLaw DrainVariant = "power-law-full-rob"
	DrainZero     DrainVariant = "zero"
)

// DrainAblationRow is the NL-mode model error under one policy.
type DrainAblationRow struct {
	Variant   DrainVariant
	DrainUsed float64
	NLTError  float64
	NLNTError float64
}

// DrainAblation recomputes the model's NL-mode predictions for a measured
// workload under each drain-estimation policy and reports the errors
// against the simulated speedups.
func DrainAblation(res *WorkloadResult) ([]DrainAblationRow, error) {
	simNLT := res.Mode(accel.NLT).SimSpeedup
	simNLNT := res.Mode(accel.NLNT).SimSpeedup

	variants := []struct {
		name  DrainVariant
		drain float64 // value for Params.DrainTime; 0 selects power law
	}{
		{DrainMeasured, res.Params.DrainTime},
		{DrainPowerLaw, 0},
		{DrainZero, 1e-9},
	}
	rows, _, err := runner.Map(context.Background(), 0, variants,
		func(_ context.Context, _ int, v struct {
			name  DrainVariant
			drain float64
		}) (DrainAblationRow, error) {
			p := res.Params
			p.DrainTime = v.drain
			b, err := p.Evaluate()
			if err != nil {
				return DrainAblationRow{}, fmt.Errorf("experiments: drain ablation %s: %w", v.name, err)
			}
			return DrainAblationRow{
				Variant:   v.name,
				DrainUsed: b.TDrain,
				NLTError:  (b.TBaseline/b.Times.NLT - simNLT) / simNLT,
				NLNTError: (b.TBaseline/b.Times.NLNT - simNLNT) / simNLNT,
			}, nil
		})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderDrainAblation tabulates the study.
func RenderDrainAblation(rows []DrainAblationRow) string {
	var b strings.Builder
	b.WriteString("A1: drain-estimator ablation (NL-mode model error vs simulator)\n\n")
	tbl := make([][]string, 0, len(rows))
	for _, r := range rows {
		tbl = append(tbl, []string{
			string(r.Variant),
			fmt.Sprintf("%.1f", r.DrainUsed),
			fmt.Sprintf("%+.1f%%", 100*r.NLTError),
			fmt.Sprintf("%+.1f%%", 100*r.NLNTError),
		})
	}
	b.WriteString(textplot.Table([]string{"estimator", "t_drain used", "NL_T error", "NL_NT error"}, tbl))
	return b.String()
}

// LoadOrderingAblation compares baseline cycles with the decoupled store
// AGU (default) against conservative full-store ordering, on a workload
// with memory traffic.
type LoadOrderingAblation struct {
	DecoupledCycles    int64
	ConservativeCycles int64
	DecoupledIPC       float64
	ConservativeIPC    float64
}

// LoadOrdering runs the A2 ablation on the given workload's baseline.
func LoadOrdering(cfg sim.Config, w *workload.Workload) (*LoadOrderingAblation, error) {
	return LoadOrderingStore(nil, cfg, w, 0)
}

// LoadOrderingParallel is LoadOrdering with an explicit worker count
// (<= 0 selects GOMAXPROCS); both policy runs fan out as one job each.
func LoadOrderingParallel(cfg sim.Config, w *workload.Workload, parallel int) (*LoadOrderingAblation, error) {
	return LoadOrderingStore(nil, cfg, w, parallel)
}

// LoadOrderingStore is LoadOrderingParallel through a scenario store:
// the decoupled run is digest-identical to the workload's measurement
// baseline, so with a shared store one of the two executions is free.
func LoadOrderingStore(store *scenario.Store, cfg sim.Config, w *workload.Workload, parallel int) (*LoadOrderingAblation, error) {
	policies := []struct {
		name         string
		conservative bool
	}{
		{"decoupled", false},
		{"conservative", true},
	}
	results, _, err := runner.Map(context.Background(), parallel, policies,
		func(_ context.Context, _ int, p struct {
			name         string
			conservative bool
		}) (sim.Stats, error) {
			c := cfg
			c.ConservativeLoadOrdering = p.conservative
			stats, err := store.RunStats(scenario.Spec{
				Config:    c,
				Program:   w.Baseline,
				MaxCycles: maxCycles,
			})
			if err != nil {
				return sim.Stats{}, fmt.Errorf("experiments: load ordering (%s): %w", p.name, err)
			}
			return stats, nil
		})
	if err != nil {
		return nil, err
	}
	dec, con := results[0], results[1]
	return &LoadOrderingAblation{
		DecoupledCycles:    dec.Cycles,
		ConservativeCycles: con.Cycles,
		DecoupledIPC:       dec.IPC(),
		ConservativeIPC:    con.IPC(),
	}, nil
}

// Render tabulates the A2 ablation.
func (a *LoadOrderingAblation) Render() string {
	var b strings.Builder
	b.WriteString("A2: LSQ disambiguation ablation (baseline run)\n\n")
	b.WriteString(textplot.Table(
		[]string{"policy", "cycles", "IPC"},
		[][]string{
			{"decoupled store AGU", fmt.Sprintf("%d", a.DecoupledCycles), fmt.Sprintf("%.3f", a.DecoupledIPC)},
			{"conservative ordering", fmt.Sprintf("%d", a.ConservativeCycles), fmt.Sprintf("%.3f", a.ConservativeIPC)},
		}))
	fmt.Fprintf(&b, "\ndecoupling the store AGU buys %.1f%% baseline IPC on this workload\n",
		100*(a.DecoupledIPC/a.ConservativeIPC-1))
	return b.String()
}
