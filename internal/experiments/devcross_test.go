package experiments

import (
	"strings"
	"testing"

	"repro/internal/accel"
	"repro/internal/scenario"
)

// devCrossTestConfig shrinks the default study to a two-point sweep per
// family so the test exercises the full pipeline quickly.
func devCrossTestConfig() DevCrossConfig {
	cfg := DefaultDevCross()
	cfg.DAE.Streams = 6
	cfg.DAEWords = []int{4, 64}
	cfg.Loop.Calls = 6
	cfg.LoopTrips = []int{2, 8}
	return cfg
}

func TestDevCross(t *testing.T) {
	res, err := DevCross(devCrossTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("%d rows, want 4", len(res.Rows))
	}
	byFamily := map[string][]DevCrossRow{}
	for _, row := range res.Rows {
		if len(row.Modes) != len(accel.AllModes) {
			t.Fatalf("%s/%d: %d modes", row.Family, row.Point, len(row.Modes))
		}
		for _, m := range row.Modes {
			if m.Speedup <= 0 {
				t.Errorf("%s/%d %s: speedup %v", row.Family, row.Point, m.Mode, m.Speedup)
			}
		}
		if row.StaticOccupancy <= 0 {
			t.Errorf("%s/%d: static occupancy %v", row.Family, row.Point, row.StaticOccupancy)
		}
		byFamily[row.Family] = append(byFamily[row.Family], row)
	}

	// The crossover structure: within each family, growing the invocation
	// granularity amortizes the per-invocation overhead, so the best mode's
	// speedup strictly improves from the small point to the large one, and
	// the static occupancy term grows with the schedule.
	for fam, rows := range byFamily {
		if len(rows) != 2 {
			t.Fatalf("family %s has %d rows", fam, len(rows))
		}
		small, large := rows[0], rows[1]
		if small.Point > large.Point {
			small, large = large, small
		}
		bestOf := func(r DevCrossRow) float64 {
			var best float64
			for _, m := range r.Modes {
				if m.Speedup > best {
					best = m.Speedup
				}
			}
			return best
		}
		if bestOf(large) <= bestOf(small) {
			t.Errorf("%s: best speedup %v at point %d not above %v at point %d — no amortization",
				fam, bestOf(large), large.Point, bestOf(small), small.Point)
		}
		if large.StaticOccupancy <= small.StaticOccupancy {
			t.Errorf("%s: occupancy %v at point %d not above %v at point %d",
				fam, large.StaticOccupancy, large.Point, small.StaticOccupancy, small.Point)
		}
		if large.Granularity <= small.Granularity {
			t.Errorf("%s: granularity did not grow with the sweep", fam)
		}
	}

	out := res.Render()
	for _, want := range []string{"dae", "loopnest", "static occ", "L_T"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
	csv := res.CSV()
	if lines := strings.Count(csv, "\n"); lines != 1+4*len(accel.AllModes) {
		t.Errorf("csv has %d lines, want %d", lines, 1+4*len(accel.AllModes))
	}
}

// TestDevCrossStoreMatchesDirect pins the cache contract for the new device
// families end-to-end: a cold store, a warm store, and no store at all must
// produce identical tables — DeviceKeys make DAE and loop-nest runs
// cacheable without cross-contamination.
func TestDevCrossStoreMatchesDirect(t *testing.T) {
	cfg := devCrossTestConfig()
	direct, err := DevCross(cfg)
	if err != nil {
		t.Fatal(err)
	}
	store, err := scenario.NewStore("")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Store = store
	cold, err := DevCross(cfg)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := DevCross(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Render() != cold.Render() || cold.Render() != warm.Render() {
		t.Error("store state changed the crossover table")
	}
	if direct.CSV() != warm.CSV() {
		t.Error("store state changed the CSV")
	}
	// The warm pass is served at measure level: the whole five-run record
	// keyed by the canonical (config, workload, device-key) digest.
	m := store.Metrics()
	if m.MeasureHits == 0 {
		t.Errorf("warm pass recorded no measure hits (metrics %+v)", m)
	}
}
