package experiments

import (
	"fmt"
	"strings"

	"repro/internal/accel"
	"repro/internal/core"
	"repro/internal/logca"
	"repro/internal/textplot"
)

// This file implements the extension studies beyond the paper's figures:
//
//	E1 — LogCA vs. the TCA model over granularity: why the prior
//	     coarse-grained model (host idle during acceleration, no pipeline
//	     terms) cannot rank TCA design choices.
//	E2 — the §VIII future-work Pareto study: hardware cost vs. speedup
//	     per mode across granularities, marking dominated designs.
//	E3 — the §VIII partial-speculation design point, measured on the
//	     simulator (see PartialSpeculationStudy in partial.go).

// E1Config parameterizes the model-vs-model comparison.
type E1Config struct {
	Arch        core.CoreParams
	Coverage    float64
	AccelFactor float64
	MinGran     float64
	MaxGran     float64
	Points      int
}

// DefaultE1 compares at the paper's Fig. 2 operating point.
func DefaultE1() E1Config {
	return E1Config{
		Arch:        core.A72Core(),
		Coverage:    0.30,
		AccelFactor: 3,
		MinGran:     10,
		MaxGran:     1e7,
		Points:      36,
	}
}

// E1Result is the comparison sweep.
type E1Result struct {
	Config E1Config
	TCA    []core.SweepPoint
	// LogCASpeedup[i] is the LogCA whole-program speedup at the same
	// granularity as TCA[i] (Amdahl-combined over the coverage).
	LogCASpeedup []float64
	// LogCAParams is the mapped parameterization.
	LogCAParams logca.Params
}

// E1 runs both models over the same granularity axis. LogCA predicts the
// accelerated-region speedup; whole-program speedup applies Amdahl's law at
// the configured coverage (LogCA has no overlap, so the host contribution
// is serial).
func E1(cfg E1Config) (*E1Result, error) {
	base := cfg.Arch.Apply(core.Params{
		AcceleratableFrac: cfg.Coverage,
		AccelFactor:       cfg.AccelFactor,
		InvocationFreq:    cfg.Coverage / cfg.MinGran,
	})
	pts, err := core.GranularitySweep(base, cfg.MinGran, cfg.MaxGran, cfg.Points)
	if err != nil {
		return nil, err
	}
	lp := logca.FromTCA(cfg.Arch.IPC, cfg.AccelFactor)
	if err := lp.Validate(); err != nil {
		return nil, err
	}
	out := &E1Result{Config: cfg, TCA: pts, LogCAParams: lp}
	for _, p := range pts {
		g := p.Params.Granularity()
		regional := lp.Speedup(g)
		// Amdahl combination: time = (1-a) + a/regional.
		whole := 1 / ((1 - cfg.Coverage) + cfg.Coverage/regional)
		out.LogCASpeedup = append(out.LogCASpeedup, whole)
	}
	return out, nil
}

// Chart overlays LogCA on the four TCA-mode curves.
func (r *E1Result) Chart() textplot.Chart {
	ch := textplot.Chart{
		Title:  "E1: LogCA vs TCA model over granularity (a=30%, A=3)",
		XLabel: "granularity (instructions per invocation, log)",
		YLabel: "whole-program speedup",
		LogX:   true,
	}
	for _, m := range accel.AllModes {
		s := textplot.Series{Name: "TCA " + m.String()}
		for _, p := range r.TCA {
			s.X = append(s.X, p.Params.Granularity())
			s.Y = append(s.Y, p.Speedups.Get(m))
		}
		ch.Series = append(ch.Series, s)
	}
	lg := textplot.Series{Name: "LogCA"}
	for i, p := range r.TCA {
		lg.X = append(lg.X, p.Params.Granularity())
		lg.Y = append(lg.Y, r.LogCASpeedup[i])
	}
	ch.Series = append(ch.Series, lg)
	return ch
}

// Render produces the chart plus the divergence analysis.
func (r *E1Result) Render() string {
	var b strings.Builder
	b.WriteString(r.Chart().Render())
	b.WriteString("\nwhere the models disagree:\n")
	rows := make([][]string, 0, len(r.TCA))
	for i, p := range r.TCA {
		g := p.Params.Granularity()
		// Report a few decades only.
		if i%6 != 0 {
			continue
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.3g", g),
			fmt.Sprintf("%.3f", r.LogCASpeedup[i]),
			fmt.Sprintf("%.3f", p.Speedups.LT),
			fmt.Sprintf("%.3f", p.Speedups.NLNT),
			fmt.Sprintf("%.3f", p.Speedups.LT-p.Speedups.NLNT),
		})
	}
	b.WriteString(textplot.Table(
		[]string{"granularity", "LogCA", "TCA L_T", "TCA NL_NT", "TCA mode spread"}, rows))
	b.WriteString("\nLogCA sees one curve: it cannot distinguish the four integration choices,\n")
	b.WriteString("predicts no slowdown region, and caps speedup at A (no host/TCA overlap).\n")
	return b.String()
}

// CSV serializes the sweep.
func (r *E1Result) CSV() string { return r.Chart().CSV() }

// E2Row is the Pareto analysis at one granularity.
type E2Row struct {
	Granularity float64
	Points      []core.DesignPoint
}

// E2Result is the cost/performance study.
type E2Result struct {
	Arch core.CoreParams
	Rows []E2Row
}

// E2 runs the Pareto study across granularities for the given core, at the
// Fig. 2 coverage and acceleration factor.
func E2(arch core.CoreParams, granularities []float64) (*E2Result, error) {
	out := &E2Result{Arch: arch}
	for _, g := range granularities {
		p := arch.Apply(core.Params{
			AcceleratableFrac: 0.3,
			InvocationFreq:    0.3 / g,
			AccelFactor:       3,
		})
		pts, err := core.ParetoAnalyze(p, core.DefaultModeCosts())
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, E2Row{Granularity: g, Points: pts})
	}
	return out, nil
}

// Render tabulates every design point with its frontier status.
func (r *E2Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E2: Pareto study (a=30%%, A=3, core IPC=%.1f ROB=%d)\n\n", r.Arch.IPC, r.Arch.ROBSize)
	rows := make([][]string, 0)
	for _, row := range r.Rows {
		for _, pt := range row.Points {
			status := "frontier"
			if pt.Dominated {
				status = "dominated by " + pt.DominatedBy.String()
			}
			rows = append(rows, []string{
				fmt.Sprintf("%.0f", row.Granularity),
				pt.Mode.String(),
				fmt.Sprintf("%.2f", pt.Cost.Area),
				fmt.Sprintf("%.2f", pt.Cost.Power),
				fmt.Sprintf("%.3f", pt.Speedup),
				fmt.Sprintf("%.3f", pt.EnergyEfficiency()),
				status,
			})
		}
	}
	b.WriteString(textplot.Table(
		[]string{"granularity", "mode", "area", "power", "speedup", "perf/W", "status"}, rows))
	b.WriteString("\nCoarse accelerators collapse the frontier to NL_NT (cheapest wins);\n")
	b.WriteString("fine-grained accelerators justify concurrency hardware, as §VIII anticipates.\n")
	return b.String()
}

// CSV serializes the study.
func (r *E2Result) CSV() string {
	var b strings.Builder
	b.WriteString("granularity,mode,area,power,speedup,dominated\n")
	for _, row := range r.Rows {
		for _, pt := range row.Points {
			fmt.Fprintf(&b, "%g,%s,%g,%g,%g,%v\n",
				row.Granularity, pt.Mode, pt.Cost.Area, pt.Cost.Power, pt.Speedup, pt.Dominated)
		}
	}
	return b.String()
}
