package staticmodel

import (
	"fmt"
	"strings"
)

// Report is one profile evaluated against one machine: the
// throughput-bound (port pressure), the latency-bound (critical path),
// their combination, and the resource that binds.
type Report struct {
	// Instructions is the static instruction count of the analyzed pass.
	Instructions uint64

	// ThroughputCycles is the port-pressure lower bound for one pass:
	// the busiest resource's occupancy at full overlap.
	ThroughputCycles float64
	// Bound names that resource: dispatch, alu, mul, fp, mem, or tca.
	Bound string

	// CritPathCycles is the dependence-DAG critical path re-weighted
	// with this machine's latencies.
	CritPathCycles float64

	// LoopIPC is the tightest loop's steady-state IPC bound — body size
	// over max(carried recurrence, body port pressure) — or 0 when the
	// program has no backward branches.
	LoopIPC float64

	// PredictedIPC combines the bounds: the one-pass IPC (instructions
	// over max(throughput, critical path) plus pipeline fill/drain),
	// further capped by LoopIPC when loops exist.
	PredictedIPC float64
	// PredictedCycles is Instructions/PredictedIPC — the predicted run
	// time of one static pass. For looped programs, divide the dynamic
	// instruction count by PredictedIPC instead (Predict does).
	PredictedCycles float64

	// MeanLatency is the mix-weighted mean operation latency; Predict's
	// window-occupancy estimate consumes it.
	MeanLatency float64
}

// pressure returns the port-pressure bound of a mix on m in cycles,
// plus the binding resource. Unpipelined ops occupy their unit for the
// full latency; everything else for one cycle. Comparison order is
// fixed and strictly-greater, so ties bind to the earlier resource —
// deterministic output.
func pressure(mx Mix, m Machine) (float64, string) {
	terms := []struct {
		name   string
		cycles float64
	}{
		{"dispatch", float64(mx.Total) / float64(m.DispatchWidth)},
		{"alu", float64(mx.ALU) / float64(m.IntALUs)},
		{"mul", (float64(mx.Mul) + float64(mx.Div)*float64(m.IntDivLatency)) / float64(m.IntMuls)},
		{"fp", (float64(mx.FP) + float64(mx.FPDiv)*float64(m.FPDivLatency)) / float64(m.FPUs)},
		{"mem", float64(mx.Load+mx.Store) / float64(m.MemPorts)},
		{"tca", float64(mx.Accel) * m.AccelLatency},
	}
	best := terms[0]
	for _, t := range terms[1:] {
		if t.cycles > best.cycles {
			best = t
		}
	}
	return best.cycles, best.name
}

// meanLatency is the mix-weighted mean op latency on m.
func meanLatency(mx Mix, m Machine) float64 {
	if mx.Total == 0 {
		return 0
	}
	sum := float64(mx.ALU) // single-cycle ops, branches included
	// Pipelined FP is a blend of add/mul/fma; weigh it with the mul
	// latency as the representative middle value.
	sum += float64(mx.Mul) * float64(m.IntMulLatency)
	sum += float64(mx.Div) * float64(m.IntDivLatency)
	sum += float64(mx.FP) * float64(m.FPMulLatency)
	sum += float64(mx.FPDiv) * float64(m.FPDivLatency)
	sum += float64(mx.Load) * m.LoadLatency
	sum += float64(mx.Store) * m.StoreLatency
	sum += float64(mx.Accel) * m.AccelLatency
	return sum / float64(mx.Total)
}

// Evaluate re-weights the profile with one machine's widths and
// latencies. It is O(latency classes + loops) — sub-microsecond — and
// read-only on the profile, so one profile serves any number of
// concurrent evaluations.
func (p *Profile) Evaluate(m Machine) Report {
	r := Report{Instructions: p.Mix.Total}
	r.ThroughputCycles, r.Bound = pressure(p.Mix, m)
	r.CritPathCycles = m.Dot(p.CritPath)
	r.MeanLatency = meanLatency(p.Mix, m)

	passCycles := r.ThroughputCycles
	if r.CritPathCycles > passCycles {
		passCycles = r.CritPathCycles
	}
	passCycles += float64(m.FrontEndDepth) + float64(m.CommitDelay)
	flatIPC := float64(p.Mix.Total) / passCycles

	for _, lp := range p.Loops {
		bodyCycles, _ := pressure(lp.Body, m)
		if rec := m.Dot(lp.Recurrence); rec > bodyCycles {
			bodyCycles = rec
		}
		if bodyCycles < 1 {
			bodyCycles = 1
		}
		ipc := float64(lp.Body.Total) / bodyCycles
		if r.LoopIPC <= 0 || ipc < r.LoopIPC {
			r.LoopIPC = ipc
		}
	}

	// Straight-line programs are bounded by the one-pass combination of
	// pressure and critical path. Looped programs execute their bodies
	// many times, so the tightest loop's steady state — where the
	// dynamic instructions actually come from — is the predictor
	// (OSACA's steady-state kernel assumption); the one-pass bound with
	// its unamortized pipeline fill would be far too pessimistic there.
	r.PredictedIPC = flatIPC
	if r.LoopIPC > 0 {
		r.PredictedIPC = r.LoopIPC
	}
	r.PredictedCycles = float64(p.Mix.Total) / r.PredictedIPC
	return r
}

// String renders the report deterministically (golden tests pin it).
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "instructions:  %d\n", r.Instructions)
	fmt.Fprintf(&b, "throughput:    %.4f cycles (bound: %s)\n", r.ThroughputCycles, r.Bound)
	fmt.Fprintf(&b, "critical-path: %.4f cycles\n", r.CritPathCycles)
	if r.LoopIPC > 0 {
		fmt.Fprintf(&b, "loop-ipc:      %.4f\n", r.LoopIPC)
	}
	fmt.Fprintf(&b, "predicted:     %.4f IPC, %.1f cycles\n", r.PredictedIPC, r.PredictedCycles)
	return b.String()
}
