package staticmodel

import (
	"fmt"

	"repro/internal/isa"
)

// nominalLat weighs latency classes during the single profile walk. The
// walk must pick one predecessor per DAG node before any Machine is
// known, so chains are compared under these representative weights and
// re-weighted exactly at Evaluate time. A machine whose latencies
// diverge wildly from these ratios may see a slightly sub-maximal path
// reported — the documented divergence from OSACA's per-machine
// analysis (DESIGN.md "Analytical fast-path tier").
var nominalLat = [NumLatClasses]float64{
	LatUnit:   1,
	LatIntMul: 3,
	LatIntDiv: 12,
	LatFPAdd:  3,
	LatFPMul:  4,
	LatFMA:    4,
	LatFPDiv:  12,
	LatLoad:   3,
	LatStore:  1,
	LatAccel:  10,
}

// latClassOf maps an opcode to its latency class.
func latClassOf(op isa.Op) LatClass {
	switch op {
	case isa.OpMul:
		return LatIntMul
	case isa.OpDiv, isa.OpRem:
		return LatIntDiv
	case isa.OpFAdd, isa.OpFSub, isa.OpFMovI:
		return LatFPAdd
	case isa.OpFMul:
		return LatFPMul
	case isa.OpFMA:
		return LatFMA
	case isa.OpFDiv:
		return LatFPDiv
	case isa.OpLoad, isa.OpFLoad:
		return LatLoad
	case isa.OpStore, isa.OpFStore:
		return LatStore
	case isa.OpAccel:
		return LatAccel
	default:
		return LatUnit
	}
}

// Mix is the instruction-class census of a code region, the input to
// the port-pressure bound.
type Mix struct {
	Total uint64 // every instruction, nops included (they occupy dispatch slots)

	ALU   uint64 // single-cycle integer ops, branches included
	Mul   uint64 // pipelined integer multiplies
	Div   uint64 // unpipelined integer divide/remainder
	FP    uint64 // pipelined FP (add/sub/movi/mul/fma)
	FPDiv uint64 // unpipelined FP divide
	Load  uint64
	Store uint64
	Accel uint64

	Branches     uint64
	CondBranches uint64
}

// add counts one instruction.
func (mx *Mix) add(in isa.Instruction) {
	mx.Total++
	if in.Op.IsBranch() {
		mx.Branches++
		if in.Op.IsCondBranch() {
			mx.CondBranches++
		}
	}
	switch latClassOf(in.Op) {
	case LatIntMul:
		mx.Mul++
	case LatIntDiv:
		mx.Div++
	case LatFPAdd, LatFPMul, LatFMA:
		mx.FP++
	case LatFPDiv:
		mx.FPDiv++
	case LatLoad:
		mx.Load++
	case LatStore:
		mx.Store++
	case LatAccel:
		mx.Accel++
	default:
		mx.ALU++
	}
}

// LoopProfile captures one backward branch's body: its instruction mix
// and the loop-carried recurrence — the per-iteration growth of the
// slowest register dependence chain, as a latency-class vector.
type LoopProfile struct {
	// Head and Branch delimit the body Code[Head..Branch] inclusive.
	Head   int
	Branch int

	Body Mix

	// Recurrence is the latency-class vector of the per-iteration
	// dependence growth. Zero means no loop-carried chain was detected.
	Recurrence PathVec
}

// Profile is the machine-independent result of one analysis walk over a
// program. It is immutable after NewProfile returns; Evaluate and
// Predict only read it, so one Profile may serve many goroutines.
type Profile struct {
	Mix Mix

	// CritPath is the longest register/memory dependence chain of a
	// single linear pass, as class counts (weights applied per machine).
	CritPath PathVec

	// Loops lists every backward branch in program order.
	Loops []LoopProfile
}

// chain is a dependence-DAG node's cost: scalar depth under the nominal
// weights (used only to pick predecessors) plus the exact class vector.
type chain struct {
	depth float64
	vec   PathVec
}

// extend returns the chain grown by one node of class c.
func (ch chain) extend(c LatClass) chain {
	ch.depth += nominalLat[c]
	ch.vec[c]++
	return ch
}

// memKey names a memory word statically: the SSA-style version of the
// base register at the access plus the immediate offset. Two accesses
// with the same key provably reference the same address; accesses with
// different keys are assumed disjoint (the optimistic counterpart of
// the simulator's decoupled store-AGU disambiguation).
type memKey struct {
	baseVer int32
	off     int64
}

// memEnv resolves store chains with an optional copy-on-write overlay,
// so the loop-recurrence re-walk can not corrupt the linear pass.
type memEnv struct {
	base  map[memKey]chain
	local map[memKey]chain // nil outside loop re-walks
}

func (e *memEnv) get(k memKey) (chain, bool) {
	if e.local != nil {
		if ch, ok := e.local[k]; ok {
			return ch, true
		}
	}
	ch, ok := e.base[k]
	return ch, ok
}

func (e *memEnv) put(k memKey, ch chain) {
	if e.local != nil {
		e.local[k] = ch
	} else {
		e.base[k] = ch
	}
}

// walkState carries the dataflow facts of a linear pass: per-register
// chain and definition version, the store environment, and a monotonic
// version counter shared across passes so every definition is unique.
type walkState struct {
	regs [isa.NumRegs]chain
	vers [isa.NumRegs]int32
	mem  memEnv
	next *int32
}

// step folds one instruction into the state and returns its completion
// chain. Predecessor choice is by strictly-greater nominal depth, so
// ties resolve to the earliest source operand — deterministic by
// construction (no map iteration anywhere on the walk).
func (st *walkState) step(in isa.Instruction, srcBuf []isa.Reg) chain {
	cls := latClassOf(in.Op)
	var start chain
	for _, r := range in.SourcesInto(srcBuf) {
		if st.regs[r].depth > start.depth {
			start = st.regs[r]
		}
	}
	if in.Op.IsLoad() {
		k := memKey{baseVer: st.vers[in.Src1], off: in.Imm}
		if ch, ok := st.mem.get(k); ok && ch.depth > start.depth {
			start = ch
		}
	}
	done := start.extend(cls)
	if in.Op.IsStore() {
		st.mem.put(memKey{baseVer: st.vers[in.Src1], off: in.Imm}, done)
	}
	if in.HasDst() {
		st.regs[in.Dst] = done
		*st.next++
		st.vers[in.Dst] = *st.next
	}
	return done
}

// NewProfile analyzes a program in one O(instructions) linear pass:
// instruction mix, register/memory dependence critical path, and — for
// every backward branch — the loop body's mix and carried recurrence
// (the body is re-walked once against the first pass's state; the depth
// growth of the fastest-growing register is the per-iteration
// recurrence). The walk is linear program order: exact for the
// straight-line microbenchmarks the paper sweeps, a steady-state
// approximation (every instruction counted once per pass, both branch
// directions' code included) for looped programs.
func NewProfile(p *isa.Program) (*Profile, error) {
	if p == nil || len(p.Code) == 0 {
		return nil, fmt.Errorf("staticmodel: empty program")
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("staticmodel: %w", err)
	}

	prof := &Profile{}
	var verCounter int32
	st := walkState{mem: memEnv{base: make(map[memKey]chain)}, next: &verCounter}
	// Initial register values are distinct unknowns: give each register
	// a unique negative version so stores through different uninitialized
	// bases never alias.
	for r := range st.vers {
		st.vers[r] = int32(-1 - r)
	}

	srcBuf := make([]isa.Reg, 0, 3)
	var crit chain
	for i, in := range p.Code {
		prof.Mix.add(in)
		done := st.step(in, srcBuf)
		if done.depth > crit.depth {
			crit = done
		}
		if in.Op.IsBranch() && in.Imm >= 0 && in.Imm <= int64(i) {
			prof.Loops = append(prof.Loops, loopProfile(p, int(in.Imm), i, &st, srcBuf))
		}
	}
	prof.CritPath = crit.vec
	return prof, nil
}

// loopProfile re-walks body Code[head..branch] once, starting from the
// linear pass's current state, and reports the body mix plus the
// per-iteration recurrence: the largest depth growth across registers,
// with its chain-vector delta (clamped at zero per class — a chain that
// switches shape between iterations keeps only its growth).
func loopProfile(p *isa.Program, head, branch int, st *walkState, srcBuf []isa.Reg) LoopProfile {
	lp := LoopProfile{Head: head, Branch: branch}

	// Copy-on-write snapshot: arrays copy by value, stores overlay.
	re := *st
	re.mem = memEnv{base: st.mem.base, local: make(map[memKey]chain)}

	for _, in := range p.Code[head : branch+1] {
		lp.Body.add(in)
		re.step(in, srcBuf)
	}

	growth := 0.0
	bestReg := -1
	for r := 0; r < isa.NumRegs; r++ {
		if g := re.regs[r].depth - st.regs[r].depth; g > growth {
			growth = g
			bestReg = r
		}
	}
	if bestReg >= 0 {
		for c := LatClass(0); c < NumLatClasses; c++ {
			if d := re.regs[bestReg].vec[c] - st.regs[bestReg].vec[c]; d > 0 {
				lp.Recurrence[c] = d
			}
		}
	}
	return lp
}
