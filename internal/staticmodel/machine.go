// Package staticmodel predicts steady-state throughput, critical paths,
// and TCA mode deltas from the instruction stream alone — no cycle
// simulation, in the style of OSACA (Laukemann et al., "Automated
// Instruction Stream Throughput Prediction for Intel and AMD
// Microarchitectures" and "Automatic Throughput and Critical Path
// Analysis of x86 and ARM Assembly Kernels").
//
// The analysis is split into two phases so design-space sweeps pay the
// expensive part once:
//
//  1. NewProfile walks an isa.Program one time and produces a
//     machine-independent Profile: per-functional-unit instruction
//     counts, the dependence-DAG critical path as a vector of latency
//     classes (not cycles), and per-loop carried-recurrence vectors.
//  2. Profile.Evaluate re-weights those vectors with one Machine's
//     widths and latencies in O(latency classes) — well under a
//     microsecond — so thousands of configurations rank from one walk.
//
// Predict then combines a baseline and an accelerated Profile with the
// paper's interval model (internal/core via internal/interval) to emit
// per-mode speedup predictions for all four L/T modes.
//
// The package is simulation-free by construction: simlint rule R11
// forbids it (and the rest of the prediction stack) from importing
// internal/sim, internal/mem, or internal/bpred. Cycle-accurate types
// are adapted at the caller's boundary (internal/experiments).
package staticmodel

import "fmt"

// LatClass buckets opcodes by which configurable latency they resolve
// to. Profiles count critical-path members per class; Evaluate turns
// the counts into cycles for one machine. Order is fixed: PathVec
// indexes and renderings depend on it.
type LatClass uint8

const (
	// LatUnit covers single-cycle integer ALU work, including branches.
	LatUnit LatClass = iota
	LatIntMul
	LatIntDiv // div/rem, unpipelined
	LatFPAdd  // fadd/fsub/fmovi
	LatFPMul
	LatFMA
	LatFPDiv // unpipelined
	LatLoad
	LatStore
	LatAccel
	NumLatClasses
)

var latClassNames = [NumLatClasses]string{
	"unit", "imul", "idiv", "fadd", "fmul", "fma", "fdiv", "load", "store", "accel",
}

// String returns the class's short name.
func (c LatClass) String() string {
	if int(c) < len(latClassNames) {
		return latClassNames[c]
	}
	return fmt.Sprintf("lat?%d", int(c))
}

// PathVec counts dependence-chain members per latency class. A critical
// path is stored this way — machine-independent — and re-weighted per
// configuration by Machine.Dot.
type PathVec [NumLatClasses]int64

// Dot weighs the vector with the machine's latencies, yielding cycles.
func (m Machine) Dot(v PathVec) float64 {
	var sum float64
	for c := LatClass(0); c < NumLatClasses; c++ {
		if v[c] != 0 {
			sum += float64(v[c]) * m.Latency(c)
		}
	}
	return sum
}

// Machine holds the architectural constants the static model consumes.
// It mirrors the simulator configuration's timing-relevant fields
// without importing it (simlint R11); internal/experiments adapts a
// sim.Config into one.
type Machine struct {
	// Pipeline widths and depths.
	DispatchWidth int
	IssueWidth    int
	CommitWidth   int
	ROBSize       int
	FrontEndDepth int
	CommitDelay   int

	// Functional unit counts.
	IntALUs  int
	IntMuls  int // multiply/divide units (divide unpipelined)
	FPUs     int // FP add/mul/FMA units (fdiv unpipelined)
	MemPorts int

	// Operation latencies in cycles.
	IntMulLatency int
	IntDivLatency int
	FPAddLatency  int
	FPMulLatency  int
	FMALatency    int
	FPDivLatency  int

	// LoadLatency is the effective issue-to-use latency of a load that
	// hits the first-level cache (address generation + access).
	LoadLatency float64
	// StoreLatency is the latency a dependent load observes through
	// store-to-load forwarding.
	StoreLatency float64
	// AccelLatency weighs OpAccel nodes on the accelerated program's
	// dependence chains and serializes them on the single TCA.
	AccelLatency float64
}

// Validate reports machine errors.
func (m Machine) Validate() error {
	type check struct {
		ok  bool
		msg string
	}
	checks := []check{
		{m.DispatchWidth >= 1, "dispatch width >= 1"},
		{m.IssueWidth >= 1, "issue width >= 1"},
		{m.CommitWidth >= 1, "commit width >= 1"},
		{m.ROBSize >= 2, "rob size >= 2"},
		{m.FrontEndDepth >= 1, "front end depth >= 1"},
		{m.CommitDelay >= 0, "commit delay >= 0"},
		{m.IntALUs >= 1, "int alus >= 1"},
		{m.IntMuls >= 1, "int mul units >= 1"},
		{m.FPUs >= 1, "fp units >= 1"},
		{m.MemPorts >= 1, "mem ports >= 1"},
		{m.IntMulLatency >= 1, "int mul latency >= 1"},
		{m.IntDivLatency >= 1, "int div latency >= 1"},
		{m.FPAddLatency >= 1, "fp add latency >= 1"},
		{m.FPMulLatency >= 1, "fp mul latency >= 1"},
		{m.FMALatency >= 1, "fma latency >= 1"},
		{m.FPDivLatency >= 1, "fp div latency >= 1"},
		{m.LoadLatency >= 1, "load latency >= 1"},
		{m.StoreLatency >= 1, "store latency >= 1"},
		{m.AccelLatency >= 0, "accel latency >= 0"},
	}
	for _, ch := range checks {
		if !ch.ok {
			return fmt.Errorf("staticmodel: machine requires %s", ch.msg)
		}
	}
	return nil
}

// Latency maps a class to this machine's cycle count.
func (m Machine) Latency(c LatClass) float64 {
	switch c {
	case LatIntMul:
		return float64(m.IntMulLatency)
	case LatIntDiv:
		return float64(m.IntDivLatency)
	case LatFPAdd:
		return float64(m.FPAddLatency)
	case LatFPMul:
		return float64(m.FPMulLatency)
	case LatFMA:
		return float64(m.FMALatency)
	case LatFPDiv:
		return float64(m.FPDivLatency)
	case LatLoad:
		return m.LoadLatency
	case LatStore:
		return m.StoreLatency
	case LatAccel:
		return m.AccelLatency
	default:
		return 1
	}
}
