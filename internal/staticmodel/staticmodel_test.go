package staticmodel

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/accel"
	"repro/internal/isa"
)

// testMachine mirrors the high-performance core preset's timing
// constants (kept literal here: staticmodel cannot import internal/sim,
// by simlint R11).
func testMachine() Machine {
	return Machine{
		DispatchWidth: 4, IssueWidth: 4, CommitWidth: 4, ROBSize: 256,
		FrontEndDepth: 8, CommitDelay: 3,
		IntALUs: 4, IntMuls: 2, FPUs: 2, MemPorts: 2,
		IntMulLatency: 3, IntDivLatency: 12,
		FPAddLatency: 3, FPMulLatency: 4, FMALatency: 4, FPDivLatency: 12,
		LoadLatency: 3, StoreLatency: 1, AccelLatency: 10,
	}
}

func TestMachineValidate(t *testing.T) {
	if err := testMachine().Validate(); err != nil {
		t.Fatalf("valid machine rejected: %v", err)
	}
	bad := testMachine()
	bad.MemPorts = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero mem ports accepted")
	}
	bad = testMachine()
	bad.LoadLatency = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero load latency accepted")
	}
}

func TestSerialChainCriticalPath(t *testing.T) {
	b := isa.NewBuilder()
	b.MovI(isa.R(1), 1)
	const k = 20
	for i := 0; i < k; i++ {
		b.Add(isa.R(1), isa.R(1), isa.R(1))
	}
	b.Halt()
	prof, err := NewProfile(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	if got := prof.CritPath[LatUnit]; got != k+1 {
		t.Errorf("critical path units = %d, want %d", got, k+1)
	}
	r := prof.Evaluate(testMachine())
	if r.CritPathCycles != float64(k+1) {
		t.Errorf("critical path cycles = %v, want %d", r.CritPathCycles, k+1)
	}
	// A serial chain is latency-bound: CP dominates the pressure of
	// (k+2) instructions over a 4-wide machine.
	if r.CritPathCycles <= r.ThroughputCycles {
		t.Errorf("expected latency-bound: cp=%v throughput=%v", r.CritPathCycles, r.ThroughputCycles)
	}
}

func TestPortPressureBound(t *testing.T) {
	b := isa.NewBuilder()
	// Eight independent multiplies (sources are the zero register, so
	// no dependence chains form).
	for i := 1; i <= 8; i++ {
		b.Mul(isa.R(i), isa.RZero, isa.RZero)
	}
	b.Halt()
	prof, err := NewProfile(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	if prof.Mix.Mul != 8 || prof.Mix.Total != 9 {
		t.Fatalf("mix = %+v", prof.Mix)
	}
	r := prof.Evaluate(testMachine())
	if r.Bound != "mul" {
		t.Errorf("bound = %q, want mul", r.Bound)
	}
	if r.ThroughputCycles != 4 { // 8 muls over 2 units
		t.Errorf("throughput = %v, want 4", r.ThroughputCycles)
	}
}

func TestStoreLoadDependence(t *testing.T) {
	chained := func(off int64) float64 {
		b := isa.NewBuilder()
		b.MovI(isa.R(15), 0x1000)
		b.MovI(isa.R(1), 7)
		b.Mul(isa.R(2), isa.R(1), isa.R(1)) // long producer
		b.Store(isa.R(2), isa.R(15), 8)     // store depends on mul
		b.Load(isa.R(3), isa.R(15), off)    // aliases iff off == 8
		b.Add(isa.R(4), isa.R(3), isa.R(3))
		b.Halt()
		prof, err := NewProfile(b.MustBuild())
		if err != nil {
			t.Fatal(err)
		}
		return prof.Evaluate(testMachine()).CritPathCycles
	}
	alias, disjoint := chained(8), chained(16)
	if alias <= disjoint {
		t.Errorf("store-to-load dependence not observed: alias cp=%v disjoint cp=%v", alias, disjoint)
	}
}

func TestLoopRecurrence(t *testing.T) {
	b := isa.NewBuilder()
	b.MovI(isa.R(1), 0)
	b.MovI(isa.R(2), 100)
	b.MovI(isa.R(3), 3)
	b.Label("loop")
	b.AddI(isa.R(1), isa.R(1), 1)
	b.Mul(isa.R(3), isa.R(3), isa.R(3)) // loop-carried multiply chain
	b.Bne(isa.R(1), isa.R(2), "loop")
	b.Halt()
	prof, err := NewProfile(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(prof.Loops))
	}
	lp := prof.Loops[0]
	if lp.Head != 3 || lp.Branch != 5 {
		t.Errorf("loop body = [%d,%d], want [3,5]", lp.Head, lp.Branch)
	}
	if lp.Recurrence[LatIntMul] != 1 {
		t.Errorf("recurrence = %v, want one imul", lp.Recurrence)
	}
	r := prof.Evaluate(testMachine())
	// Steady state: 3 body instructions per 3-cycle multiply recurrence.
	if r.LoopIPC != 1 {
		t.Errorf("loop IPC = %v, want 1", r.LoopIPC)
	}
	if r.PredictedIPC != 1 {
		t.Errorf("predicted IPC = %v, want loop-limited 1", r.PredictedIPC)
	}
}

func TestStraightLineHasNoLoops(t *testing.T) {
	b := isa.NewBuilder()
	b.MovI(isa.R(1), 1)
	b.Add(isa.R(2), isa.R(1), isa.R(1))
	b.Halt()
	prof, err := NewProfile(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Loops) != 0 {
		t.Errorf("loops = %d, want 0", len(prof.Loops))
	}
	if r := prof.Evaluate(testMachine()); r.LoopIPC != 0 {
		t.Errorf("loop IPC = %v, want 0", r.LoopIPC)
	}
}

// testProgram builds a deterministic pseudo-random straight-line
// program with an accelerator call, exercising every latency class.
func testProgram(t *testing.T, seed int64, n int) *isa.Program {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := isa.NewBuilder()
	b.MovI(isa.R(15), 0x4000)
	for i := 1; i <= 8; i++ {
		b.MovI(isa.R(15+i), int64(i*3+1))
		b.FMovI(isa.F(i), float64(i)+0.5)
	}
	reg := func() isa.Reg { return isa.R(16 + rng.Intn(8)) }
	freg := func() isa.Reg { return isa.F(1 + rng.Intn(8)) }
	for i := 0; i < n; i++ {
		switch rng.Intn(10) {
		case 0:
			b.Mul(reg(), reg(), reg())
		case 1:
			b.Div(reg(), reg(), reg())
		case 2:
			b.FAdd(freg(), freg(), freg())
		case 3:
			b.FMA(freg(), freg(), freg(), freg())
		case 4:
			b.Load(reg(), isa.R(15), int64(rng.Intn(64))*8)
		case 5:
			b.Store(reg(), isa.R(15), int64(rng.Intn(64))*8)
		case 6:
			b.FDiv(freg(), freg(), freg())
		default:
			b.Add(reg(), reg(), reg())
		}
	}
	b.Accel(isa.R(24), 1, isa.R(15))
	b.Halt()
	return b.MustBuild()
}

func testInput(t *testing.T, prof *Profile) Input {
	t.Helper()
	n := prof.Mix.Total
	return Input{
		Baseline:             prof,
		Accelerated:          prof,
		Acceleratable:        n / 3,
		Invocations:          n / 60,
		BaselineInstructions: n,
		AccelLatency:         12,
	}
}

func TestPredictModes(t *testing.T) {
	prof, err := NewProfile(testProgram(t, 1, 600))
	if err != nil {
		t.Fatal(err)
	}
	pred, err := Predict(testInput(t, prof), testMachine())
	if err != nil {
		t.Fatal(err)
	}
	if len(pred.Modes) != len(accel.AllModes) {
		t.Fatalf("modes = %d, want %d", len(pred.Modes), len(accel.AllModes))
	}
	for i, m := range accel.AllModes {
		if pred.Modes[i].Mode != m {
			t.Errorf("mode[%d] = %v, want %v", i, pred.Modes[i].Mode, m)
		}
		if pred.Modes[i].Speedup <= 0 {
			t.Errorf("%v speedup = %v, want > 0", m, pred.Modes[i].Speedup)
		}
	}
	// The model's structure guarantees L_T is never slower than the
	// stall-bearing modes for the same parameters.
	lt := pred.Mode(accel.LT).Speedup
	for _, m := range []accel.Mode{accel.NLT, accel.LNT, accel.NLNT} {
		if sp := pred.Mode(m).Speedup; sp > lt+1e-12 {
			t.Errorf("%v speedup %v exceeds L_T %v", m, sp, lt)
		}
	}
	if got := pred.BestMode(); got != accel.LT {
		t.Errorf("best mode = %v, want %v", got, accel.LT)
	}
	if pred.Mode(accel.Mode(99)) != nil {
		t.Error("unknown mode lookup should return nil")
	}
}

func TestPredictValidation(t *testing.T) {
	prof, err := NewProfile(testProgram(t, 2, 100))
	if err != nil {
		t.Fatal(err)
	}
	good := testInput(t, prof)
	cases := []struct {
		name string
		mut  func(*Input)
	}{
		{"nil baseline", func(in *Input) { in.Baseline = nil }},
		{"zero instructions", func(in *Input) { in.BaselineInstructions = 0 }},
		{"acceleratable too large", func(in *Input) { in.Acceleratable = in.BaselineInstructions }},
		{"invocations exceed acceleratable", func(in *Input) { in.Invocations = in.Acceleratable + 1 }},
		{"negative latency", func(in *Input) { in.AccelLatency = -1 }},
	}
	for _, tc := range cases {
		in := good
		tc.mut(&in)
		if _, err := Predict(in, testMachine()); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
	if _, err := Predict(good, Machine{}); err == nil {
		t.Error("invalid machine accepted")
	}
}

func TestPredictFactorFallback(t *testing.T) {
	prof, err := NewProfile(testProgram(t, 3, 200))
	if err != nil {
		t.Fatal(err)
	}
	in := testInput(t, prof)
	in.AccelLatency = 0 // no known latency: fall back to A=DefaultAccelFactor
	pred, err := Predict(in, testMachine())
	if err != nil {
		t.Fatal(err)
	}
	if pred.Params.AccelFactor != DefaultAccelFactor {
		t.Errorf("accel factor = %v, want %v", pred.Params.AccelFactor, DefaultAccelFactor)
	}
	in.AccelFactor = 5
	pred, err = Predict(in, testMachine())
	if err != nil {
		t.Fatal(err)
	}
	if pred.Params.AccelFactor != 5 {
		t.Errorf("accel factor = %v, want 5", pred.Params.AccelFactor)
	}
}

// TestPurity: same inputs, byte-identical reports — the package's core
// contract (the scenario layer caches predictions by content address,
// so any nondeterminism would poison the cache).
func TestPurity(t *testing.T) {
	prog := testProgram(t, 4, 2000)
	p1, err := NewProfile(prog)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewProfile(prog)
	if err != nil {
		t.Fatal(err)
	}
	m := testMachine()
	if a, b := p1.Evaluate(m).String(), p2.Evaluate(m).String(); a != b {
		t.Errorf("two walks disagree:\n%s\nvs\n%s", a, b)
	}
	pr1, err := Predict(testInput(t, p1), m)
	if err != nil {
		t.Fatal(err)
	}
	pr2, err := Predict(testInput(t, p2), m)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := pr1.String(), pr2.String(); a != b {
		t.Errorf("two predictions disagree:\n%s\nvs\n%s", a, b)
	}
}

func TestPredictionClone(t *testing.T) {
	prof, err := NewProfile(testProgram(t, 5, 150))
	if err != nil {
		t.Fatal(err)
	}
	pred, err := Predict(testInput(t, prof), testMachine())
	if err != nil {
		t.Fatal(err)
	}
	cl := pred.Clone()
	cl.Modes[0].Speedup = -1
	if pred.Modes[0].Speedup == cl.Modes[0].Speedup {
		t.Error("clone shares the modes slice")
	}
	var nilPred *Prediction
	if nilPred.Clone() != nil {
		t.Error("nil clone should be nil")
	}
}

func TestReportString(t *testing.T) {
	prof, err := NewProfile(testProgram(t, 6, 100))
	if err != nil {
		t.Fatal(err)
	}
	s := prof.Evaluate(testMachine()).String()
	for _, want := range []string{"instructions:", "throughput:", "critical-path:", "predicted:"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

func TestEmptyProgramRejected(t *testing.T) {
	if _, err := NewProfile(nil); err == nil {
		t.Error("nil program accepted")
	}
	if _, err := NewProfile(&isa.Program{}); err == nil {
		t.Error("empty program accepted")
	}
}
