package staticmodel

import (
	"fmt"
	"strings"

	"repro/internal/accel"
	"repro/internal/core"
	"repro/internal/interval"
)

// DefaultAccelFactor is the acceleration factor A assumed when a
// workload provides neither an explicit accelerator latency nor a
// factor — the paper's representative A=3 point.
const DefaultAccelFactor = 3

// Input bundles everything Predict needs about one workload. The
// profiles come from NewProfile; the counts are the workload's known
// region metadata (the same values interval analysis feeds the paper's
// model), so the static tier predicts from exactly the information an
// architect has before any simulation.
type Input struct {
	// Baseline is the software-only program's profile (required).
	Baseline *Profile
	// Accelerated is the accelerated program's profile (optional; when
	// present its evaluation is reported for cross-checking).
	Accelerated *Profile

	// Acceleratable and Invocations are the baseline dynamic instruction
	// counts covered by accelerated regions and the number of
	// invocations replacing them (a·N and v·N).
	Acceleratable uint64
	Invocations   uint64
	// BaselineInstructions is the baseline program's dynamic instruction
	// count N. For straight-line programs it equals the static count;
	// for looped programs it scales the static steady-state IPC to run
	// cycles.
	BaselineInstructions uint64

	// AccelLatency, when positive, is the known per-invocation
	// accelerator service time in cycles. Zero falls back to
	// AccelFactor.
	AccelLatency float64
	// AccelFactor, when positive, is the assumed acceleration factor A
	// used when no latency is known. Zero selects DefaultAccelFactor.
	AccelFactor float64
}

// Validate reports input errors.
func (in Input) Validate() error {
	switch {
	case in.Baseline == nil:
		return fmt.Errorf("staticmodel: input requires a baseline profile")
	case in.BaselineInstructions == 0:
		return fmt.Errorf("staticmodel: input requires baseline instruction count")
	case in.Acceleratable >= in.BaselineInstructions:
		return fmt.Errorf("staticmodel: acceleratable %d must be < baseline instructions %d",
			in.Acceleratable, in.BaselineInstructions)
	case in.Invocations > in.Acceleratable:
		return fmt.Errorf("staticmodel: invocations %d exceed acceleratable instructions %d",
			in.Invocations, in.Acceleratable)
	case in.AccelLatency < 0:
		return fmt.Errorf("staticmodel: accel latency %v must be >= 0", in.AccelLatency)
	}
	return nil
}

// ModePrediction is the static tier's verdict for one TCA mode.
type ModePrediction struct {
	Mode accel.Mode
	// Speedup is the predicted whole-program speedup over baseline.
	Speedup float64
	// PredictedCycles is the predicted accelerated run time.
	PredictedCycles float64
}

// Prediction is the full static verdict for one (workload, machine)
// point: both structural reports, the derived interval-model
// parameters, and per-mode speedups in accel.AllModes order. All fields
// are plain values — it clones, compares, and serializes cleanly.
type Prediction struct {
	Baseline    Report
	Accelerated Report // zero when no accelerated profile was given

	// BaselineCycles is the predicted baseline run time:
	// BaselineInstructions over the statically predicted IPC.
	BaselineCycles float64

	// Params are the interval-model parameters the mode deltas came
	// from — the paper's Table I, fed with static predictions instead
	// of measurements.
	Params core.Params

	Modes []ModePrediction
}

// estimateOccupancy predicts the mean in-flight instruction count that
// calibrates the model's window-drain time (the simulator measures
// AvgROBOccupancy; the static tier estimates it). Little's law gives
// occupancy = IPC × residence; mean residence is the mix-weighted mean
// op latency plus the commit delay, stretched by how far the critical
// path outruns the throughput bound (latency-starved windows back up
// toward the full ROB).
func estimateOccupancy(r Report, m Machine) float64 {
	residence := r.MeanLatency + float64(m.CommitDelay)
	stretch := 1.0
	if r.ThroughputCycles > 0 && r.CritPathCycles > r.ThroughputCycles {
		stretch = r.CritPathCycles / r.ThroughputCycles
	}
	occ := r.PredictedIPC * residence * stretch
	if occ > float64(m.ROBSize) {
		occ = float64(m.ROBSize)
	}
	return occ
}

// Predict runs the full static pipeline for one machine: evaluate the
// baseline profile, derive interval-model parameters from the
// prediction (reusing internal/interval's calibration so the static
// tier and the measured tier share one formula), and emit per-mode
// speedups. Pure and deterministic: same inputs, same bytes.
func Predict(in Input, m Machine) (*Prediction, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}

	p := &Prediction{Baseline: in.Baseline.Evaluate(m)}
	p.BaselineCycles = float64(in.BaselineInstructions) / p.Baseline.PredictedIPC
	if in.Accelerated != nil {
		p.Accelerated = in.Accelerated.Evaluate(m)
	}

	factor := in.AccelFactor
	if factor <= 0 {
		factor = DefaultAccelFactor
	}
	meas := interval.BaselineMeasurement{
		Cycles:                    int64(p.BaselineCycles) + 1, // ceil: Validate needs > 0; IPC is overridden below
		Instructions:              in.BaselineInstructions,
		AcceleratableInstructions: in.Acceleratable,
		Invocations:               in.Invocations,
		AvgROBOccupancy:           estimateOccupancy(p.Baseline, m),
	}
	arch := core.CoreParams{
		ROBSize:     m.ROBSize,
		IssueWidth:  m.DispatchWidth,
		CommitStall: float64(m.CommitDelay),
	}
	params, err := interval.Calibrate(meas, arch, factor, in.AccelLatency)
	if err != nil {
		return nil, fmt.Errorf("staticmodel: %w", err)
	}
	// Calibrate derives IPC from the rounded cycle count; restore the
	// exact static prediction and the drain time that depends on it.
	params.IPC = p.Baseline.PredictedIPC
	if meas.AvgROBOccupancy > 0 {
		params.DrainTime = meas.AvgROBOccupancy / params.IPC
	}
	p.Params = params

	model, err := params.Speedups()
	if err != nil {
		return nil, fmt.Errorf("staticmodel: %w", err)
	}
	p.Modes = make([]ModePrediction, 0, len(accel.AllModes))
	for _, mo := range accel.AllModes {
		sp := model.Get(mo)
		p.Modes = append(p.Modes, ModePrediction{
			Mode:            mo,
			Speedup:         sp,
			PredictedCycles: p.BaselineCycles / sp,
		})
	}
	return p, nil
}

// Clone returns an independent deep copy.
func (p *Prediction) Clone() *Prediction {
	if p == nil {
		return nil
	}
	out := *p
	out.Modes = append([]ModePrediction(nil), p.Modes...)
	return &out
}

// Mode returns the prediction for one mode, or nil if absent.
func (p *Prediction) Mode(m accel.Mode) *ModePrediction {
	for i := range p.Modes {
		if p.Modes[i].Mode == m {
			return &p.Modes[i]
		}
	}
	return nil
}

// BestMode returns the mode with the highest predicted speedup. Ties
// keep the earliest mode in accel.AllModes order (strictly-greater
// comparison), so the choice is deterministic.
func (p *Prediction) BestMode() accel.Mode {
	best := p.Modes[0]
	for _, mp := range p.Modes[1:] {
		if mp.Speedup > best.Speedup {
			best = mp
		}
	}
	return best.Mode
}

// String renders the prediction deterministically (golden tests pin
// it byte-for-byte).
func (p *Prediction) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "baseline: ipc=%.4f cycles=%.1f bound=%s cp=%.1f\n",
		p.Baseline.PredictedIPC, p.BaselineCycles, p.Baseline.Bound, p.Baseline.CritPathCycles)
	if p.Accelerated.Instructions > 0 {
		fmt.Fprintf(&b, "accel:    ipc=%.4f bound=%s cp=%.1f\n",
			p.Accelerated.PredictedIPC, p.Accelerated.Bound, p.Accelerated.CritPathCycles)
	}
	fmt.Fprintf(&b, "params:   a=%.4f v=%.6f ipc=%.4f drain=%.2f\n",
		p.Params.AcceleratableFrac, p.Params.InvocationFreq, p.Params.IPC, p.Params.DrainTime)
	for _, mp := range p.Modes {
		fmt.Fprintf(&b, "%-6s speedup=%.4f cycles=%.1f\n", mp.Mode, mp.Speedup, mp.PredictedCycles)
	}
	return b.String()
}
