package staticmodel

import (
	"math"

	"repro/internal/isa"
)

// EngineOccupancy estimates the per-invocation occupancy in cycles of a
// device-engine schedule on this machine — the analytical counterpart of the
// simulator's engine executor, for the explicit-latency path of the model.
// It mirrors the executor's structure phase by phase under a first-level-hit
// assumption: loads issue one per memory port per cycle starting the cycle
// after the phase begins and complete LoadLatency later (Serial loads chain
// instead of overlapping), Overlap phases cost max(memory, compute) rather
// than the sum, and stores retire through the same ports after compute.
//
// The simulator remains the ground truth — port contention with the core and
// cache misses are invisible here — but for schedules over warm data the two
// agree closely, which is what lets a device family plug into frontier-pruned
// static sweeps without measuring every configuration.
func (m Machine) EngineOccupancy(sched []isa.AccelPhase) float64 {
	var total float64
	for _, ph := range sched {
		var indep, serial, stores int
		for _, op := range ph.MemOps {
			switch {
			case op.Store:
				stores++
			case op.Serial:
				serial++
			default:
				indep++
			}
		}
		var memTime float64
		if indep > 0 {
			memTime = math.Ceil(float64(indep)/float64(m.MemPorts)) + m.LoadLatency
		}
		if serial > 0 {
			if chain := 1 + float64(serial)*m.LoadLatency; chain > memTime {
				memTime = chain
			}
		}
		compute := float64(ph.Compute)
		var phase float64
		if ph.Overlap {
			phase = math.Max(memTime, compute)
		} else {
			phase = memTime + compute
		}
		if stores > 0 {
			phase += math.Ceil(float64(stores)/float64(m.MemPorts)) - 1 + m.StoreLatency
		}
		total += phase
	}
	return total
}
