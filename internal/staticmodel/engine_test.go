package staticmodel

import (
	"testing"

	"repro/internal/isa"
)

func occupancyTestMachine() Machine {
	m := Machine{
		DispatchWidth: 4, IssueWidth: 4, CommitWidth: 4, ROBSize: 128,
		FrontEndDepth: 5, IntALUs: 4, IntMuls: 1, FPUs: 2, MemPorts: 2,
		IntMulLatency: 3, IntDivLatency: 20, FPAddLatency: 3, FPMulLatency: 4,
		FMALatency: 4, FPDivLatency: 20, LoadLatency: 4, StoreLatency: 1,
	}
	if err := m.Validate(); err != nil {
		panic(err)
	}
	return m
}

func TestEngineOccupancy(t *testing.T) {
	m := occupancyTestMachine()
	cases := []struct {
		name  string
		sched []isa.AccelPhase
		want  float64
	}{
		{"empty", nil, 0},
		{"pure compute", []isa.AccelPhase{{Compute: 40}}, 40},
		{"phases sum", []isa.AccelPhase{{Compute: 15}, {Compute: 25}}, 40},
		{
			// 4 independent loads over 2 ports: ceil(4/2) + 4 = 6, plus
			// 10 compute serialized after.
			"loads then compute",
			[]isa.AccelPhase{{Compute: 10, MemOps: []isa.AccelMemOp{
				{Addr: 0, Size: 8}, {Addr: 8, Size: 8}, {Addr: 16, Size: 8}, {Addr: 24, Size: 8},
			}}},
			16,
		},
		{
			// Same traffic overlapped: max(6, 10) = 10 — memory hides.
			"overlap hides memory",
			[]isa.AccelPhase{{Compute: 10, Overlap: true, MemOps: []isa.AccelMemOp{
				{Addr: 0, Size: 8}, {Addr: 8, Size: 8}, {Addr: 16, Size: 8}, {Addr: 24, Size: 8},
			}}},
			10,
		},
		{
			// Overlap with slow memory: max(ceil(6/2)+4, 2) = 7 — compute hides.
			"overlap hides compute",
			[]isa.AccelPhase{{Compute: 2, Overlap: true, MemOps: []isa.AccelMemOp{
				{Addr: 0, Size: 8}, {Addr: 8, Size: 8}, {Addr: 16, Size: 8},
				{Addr: 24, Size: 8}, {Addr: 32, Size: 8}, {Addr: 40, Size: 8},
			}}},
			7,
		},
		{
			// 3 serial loads chain: 1 + 3*4 = 13, plus 5 compute.
			"serial chain",
			[]isa.AccelPhase{{Compute: 5, MemOps: []isa.AccelMemOp{
				{Addr: 0, Size: 8, Serial: true}, {Addr: 8, Size: 8, Serial: true}, {Addr: 16, Size: 8, Serial: true},
			}}},
			18,
		},
		{
			// 3 stores over 2 ports after 6 compute: 6 + ceil(3/2)-1 + 1 = 8.
			"stores after compute",
			[]isa.AccelPhase{{Compute: 6, MemOps: []isa.AccelMemOp{
				{Addr: 0, Size: 8, Store: true}, {Addr: 8, Size: 8, Store: true}, {Addr: 16, Size: 8, Store: true},
			}}},
			8,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := m.EngineOccupancy(c.sched); got != c.want {
				t.Errorf("occupancy = %v, want %v", got, c.want)
			}
		})
	}
}

// TestEngineOccupancyScalarAgreement: a scalar-latency device's synthesized
// one-phase memory-free schedule must cost exactly its latency — the
// analytical term inherits the engine refactor's equivalence guarantee.
func TestEngineOccupancyScalarAgreement(t *testing.T) {
	m := occupancyTestMachine()
	for _, lat := range []int{1, 12, 400} {
		sched := []isa.AccelPhase{{Compute: lat}}
		if got := m.EngineOccupancy(sched); got != float64(lat) {
			t.Errorf("latency %d: occupancy = %v", lat, got)
		}
	}
}
