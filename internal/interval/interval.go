// Package interval connects simulator measurements to analytical-model
// parameters, following the paper's methodology: the model is fed the
// baseline program's measured IPC, the invocation frequency v and coverage
// a of the acceleratable regions, and (optionally) the accelerator's
// measured service latency; its per-mode speedup predictions are then
// compared against simulated speedups.
//
// The package is simulation-free by design (simlint R11): it consumes
// plain measured values, never simulator types, so the prediction stack
// (core, interval, staticmodel) can run without linking the cycle
// simulator. Callers holding sim.Stats convert at their own boundary.
package interval

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// BaselineMeasurement captures what interval analysis extracts from a
// baseline (software-only) execution.
type BaselineMeasurement struct {
	// Cycles and Instructions give the baseline IPC.
	Cycles       int64
	Instructions uint64
	// AcceleratableInstructions is the number of baseline instructions
	// inside regions the accelerator replaces (a·Instructions).
	AcceleratableInstructions uint64
	// Invocations is how many accelerator invocations replace them
	// (v·Instructions).
	Invocations uint64
	// AvgROBOccupancy is the baseline's mean in-flight instruction count.
	// When positive, it calibrates the model's window-drain time as
	// occupancy/IPC (the steady-state time for the in-flight window to
	// retire — Little's law). Without it the model falls back to its
	// full-ROB power-law estimate, which badly overestimates drains for
	// dispatch-limited programs whose ROB never fills.
	AvgROBOccupancy float64
}

// Validate reports measurement errors.
func (m BaselineMeasurement) Validate() error {
	switch {
	case m.Cycles <= 0:
		return fmt.Errorf("interval: cycles %d must be positive", m.Cycles)
	case m.Instructions == 0:
		return fmt.Errorf("interval: no instructions")
	case m.AcceleratableInstructions >= m.Instructions:
		return fmt.Errorf("interval: acceleratable %d must be < total %d",
			m.AcceleratableInstructions, m.Instructions)
	case m.Invocations > m.AcceleratableInstructions:
		return fmt.Errorf("interval: invocations %d exceed acceleratable instructions %d",
			m.Invocations, m.AcceleratableInstructions)
	}
	return nil
}

// IPC returns the measured baseline IPC.
func (m BaselineMeasurement) IPC() float64 {
	return float64(m.Instructions) / float64(m.Cycles)
}

// Calibrate produces model parameters from the measurement and the target
// core's architectural constants. accelLatency > 0 sets an explicit
// per-invocation accelerator time; accelFactor is used otherwise.
func Calibrate(m BaselineMeasurement, arch core.CoreParams, accelFactor, accelLatency float64) (core.Params, error) {
	if err := m.Validate(); err != nil {
		return core.Params{}, err
	}
	p := arch.Apply(core.Params{
		AcceleratableFrac: float64(m.AcceleratableInstructions) / float64(m.Instructions),
		InvocationFreq:    float64(m.Invocations) / float64(m.Instructions),
		AccelFactor:       accelFactor,
		AccelLatency:      accelLatency,
	})
	p.IPC = m.IPC()
	if m.AvgROBOccupancy > 0 {
		p.DrainTime = m.AvgROBOccupancy / p.IPC
	}
	if err := p.Validate(); err != nil {
		return core.Params{}, err
	}
	return p, nil
}

// AccelEvent records the lifetime of one committed TCA invocation
// (cycles are absolute). It mirrors the simulator's event record
// field-for-field without importing it; callers convert at the boundary.
type AccelEvent struct {
	Seq      uint64
	Dispatch int64
	Start    int64 // execution start (after any NL drain wait)
	Done     int64 // all compute and memory micro-ops complete
	Commit   int64
}

// ServiceStats summarizes the accelerator-event trace of an accelerated
// run.
type ServiceStats struct {
	Invocations int
	// MeanService is the average execute time (Done - Start) in cycles.
	MeanService float64
	// MeanDrainWait is the average dispatch-to-start delay.
	MeanDrainWait float64
	// MeanCommitLag is the average Done-to-commit delay.
	MeanCommitLag float64
	// MeanInterval is the average distance between consecutive
	// invocation commits.
	MeanInterval float64
}

// AnalyzeEvents computes service statistics from a recorded event trace.
func AnalyzeEvents(events []AccelEvent) (ServiceStats, error) {
	if len(events) == 0 {
		return ServiceStats{}, fmt.Errorf("interval: no accel events recorded")
	}
	var s ServiceStats
	s.Invocations = len(events)
	for _, e := range events {
		s.MeanService += float64(e.Done - e.Start)
		s.MeanDrainWait += float64(e.Start - e.Dispatch)
		s.MeanCommitLag += float64(e.Commit - e.Done)
	}
	n := float64(len(events))
	s.MeanService /= n
	s.MeanDrainWait /= n
	s.MeanCommitLag /= n
	if len(events) > 1 {
		s.MeanInterval = float64(events[len(events)-1].Commit-events[0].Commit) / (n - 1)
	}
	return s, nil
}

// SpeedupError is the relative error of a model prediction against a
// simulator measurement: (model - sim) / sim.
func SpeedupError(model, simulated float64) float64 {
	if simulated == 0 { //lint:ignore R4 division guard against the exact zero; any nonzero measurement divides fine
		return math.Inf(1)
	}
	return (model - simulated) / simulated
}

// PowerLawFit fits W = alpha * l^beta through (window, criticalPath)
// samples by least squares in log-log space. It is the Eyerman-style fit
// behind the model's default drain estimator.
func PowerLawFit(windows, paths []float64) (alpha, beta float64, err error) {
	if len(windows) != len(paths) || len(windows) < 2 {
		return 0, 0, fmt.Errorf("interval: need >= 2 paired samples, got %d/%d", len(windows), len(paths))
	}
	var sx, sy, sxx, sxy float64
	n := float64(len(windows))
	for i := range windows {
		if windows[i] <= 0 || paths[i] <= 0 {
			return 0, 0, fmt.Errorf("interval: samples must be positive (w=%v l=%v)", windows[i], paths[i])
		}
		x := math.Log(paths[i])
		y := math.Log(windows[i])
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := n*sxx - sx*sx
	//lint:ignore R4 division guard: the degenerate all-equal-samples case yields an exact zero determinant
	if den == 0 {
		return 0, 0, fmt.Errorf("interval: degenerate samples (all critical paths equal)")
	}
	beta = (n*sxy - sx*sy) / den
	alpha = math.Exp((sy - beta*sx) / n)
	return alpha, beta, nil
}
