package interval

import (
	"math"
	"testing"

	"repro/internal/core"
)

func TestBaselineMeasurementValidate(t *testing.T) {
	good := BaselineMeasurement{Cycles: 1000, Instructions: 2000, AcceleratableInstructions: 600, Invocations: 10}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid measurement rejected: %v", err)
	}
	bad := []BaselineMeasurement{
		{Cycles: 0, Instructions: 10},
		{Cycles: 10, Instructions: 0},
		{Cycles: 10, Instructions: 10, AcceleratableInstructions: 10},
		{Cycles: 10, Instructions: 10, AcceleratableInstructions: 5, Invocations: 6},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, m)
		}
	}
}

func TestCalibrate(t *testing.T) {
	m := BaselineMeasurement{Cycles: 1000, Instructions: 1800, AcceleratableInstructions: 540, Invocations: 18}
	p, err := Calibrate(m, core.HPCore(), 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(p.IPC, 1.8) {
		t.Errorf("IPC = %v, want 1.8", p.IPC)
	}
	if !approx(p.AcceleratableFrac, 0.3) {
		t.Errorf("a = %v, want 0.3", p.AcceleratableFrac)
	}
	if !approx(p.InvocationFreq, 0.01) {
		t.Errorf("v = %v, want 0.01", p.InvocationFreq)
	}
	if p.ROBSize != 256 || p.IssueWidth != 4 {
		t.Errorf("arch params not applied: %+v", p)
	}
	// Explicit latency path.
	p, err = Calibrate(m, core.HPCore(), 0, 12)
	if err != nil {
		t.Fatal(err)
	}
	if p.AccelLatency != 12 {
		t.Errorf("latency = %v, want 12", p.AccelLatency)
	}
}

func TestCalibrateRejectsBadMeasurement(t *testing.T) {
	if _, err := Calibrate(BaselineMeasurement{}, core.HPCore(), 3, 0); err == nil {
		t.Error("empty measurement accepted")
	}
}

func TestAnalyzeEvents(t *testing.T) {
	events := []AccelEvent{
		{Seq: 1, Dispatch: 10, Start: 12, Done: 20, Commit: 23},
		{Seq: 2, Dispatch: 30, Start: 30, Done: 42, Commit: 45},
		{Seq: 3, Dispatch: 50, Start: 55, Done: 60, Commit: 67},
	}
	s, err := AnalyzeEvents(events)
	if err != nil {
		t.Fatal(err)
	}
	if s.Invocations != 3 {
		t.Errorf("invocations = %d", s.Invocations)
	}
	if !approx(s.MeanService, (8+12+5)/3.0) {
		t.Errorf("mean service = %v", s.MeanService)
	}
	if !approx(s.MeanDrainWait, (2+0+5)/3.0) {
		t.Errorf("mean drain wait = %v", s.MeanDrainWait)
	}
	if !approx(s.MeanCommitLag, (3+3+7)/3.0) {
		t.Errorf("mean commit lag = %v", s.MeanCommitLag)
	}
	if !approx(s.MeanInterval, (67-23)/2.0) {
		t.Errorf("mean interval = %v", s.MeanInterval)
	}
	if _, err := AnalyzeEvents(nil); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestSpeedupError(t *testing.T) {
	if got := SpeedupError(1.1, 1.0); !approx(got, 0.1) {
		t.Errorf("error = %v, want 0.1", got)
	}
	if got := SpeedupError(0.9, 1.0); !approx(got, -0.1) {
		t.Errorf("error = %v, want -0.1", got)
	}
	if !math.IsInf(SpeedupError(1, 0), 1) {
		t.Error("zero baseline must give +Inf")
	}
}

func TestPowerLawFitRecoversKnownLaw(t *testing.T) {
	// W = 2.5 * l^1.8 exactly.
	var ws, ls []float64
	for l := 2.0; l <= 64; l *= 2 {
		ls = append(ls, l)
		ws = append(ws, 2.5*math.Pow(l, 1.8))
	}
	alpha, beta, err := PowerLawFit(ws, ls)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(alpha-2.5) > 1e-6 || math.Abs(beta-1.8) > 1e-9 {
		t.Errorf("fit = (%v, %v), want (2.5, 1.8)", alpha, beta)
	}
}

func TestPowerLawFitErrors(t *testing.T) {
	if _, _, err := PowerLawFit([]float64{1}, []float64{1}); err == nil {
		t.Error("single sample accepted")
	}
	if _, _, err := PowerLawFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, _, err := PowerLawFit([]float64{1, 2}, []float64{-1, 2}); err == nil {
		t.Error("negative sample accepted")
	}
	if _, _, err := PowerLawFit([]float64{1, 2}, []float64{3, 3}); err == nil {
		t.Error("degenerate samples accepted")
	}
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }
