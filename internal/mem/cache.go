// Package mem models the timing of a cache/DRAM memory hierarchy.
//
// Functional data lives in isa.Memory; this package answers only "when is
// this access done?". The split mirrors how the paper's analytical model
// treats memory: latency shapes the baseline IPC and the accelerator's
// effective service time, while correctness is independent of timing.
//
// The hierarchy is a chain of set-associative, write-back, write-allocate
// caches with LRU replacement and MSHR-limited miss handling, ending in a
// bandwidth-limited fixed-latency DRAM.
package mem

import (
	"fmt"
	"math/bits"
)

// Level is a stage in the memory hierarchy.
type Level interface {
	// Access performs a timing access for the line containing addr,
	// starting no earlier than cycle now, and returns the absolute cycle
	// at which the data is available. write marks the access as a store
	// for dirty-bit bookkeeping; stores complete when the line is owned.
	Access(now int64, addr uint64, write bool) (done int64)
	// Name identifies the level in statistics output.
	Name() string
}

// CacheConfig describes one cache level.
type CacheConfig struct {
	Name       string
	SizeBytes  int // total capacity
	Ways       int // associativity
	LineBytes  int // line size (power of two)
	HitLatency int // cycles from access to data on a hit
	MSHRs      int // max outstanding line fills (0 = unlimited)
	// NextLinePrefetch issues a fill for line N+1 on a demand miss to
	// line N when an MSHR is free. Sequential streams (instruction
	// fetch, blocked-matrix rows) hide most of their miss latency with
	// it.
	NextLinePrefetch bool
}

// Validate reports configuration errors.
func (c CacheConfig) Validate() error {
	switch {
	case c.SizeBytes <= 0 || c.Ways <= 0 || c.LineBytes <= 0:
		return fmt.Errorf("mem: %s: size/ways/line must be positive", c.Name)
	case c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("mem: %s: line size %d not a power of two", c.Name, c.LineBytes)
	case c.SizeBytes%(c.Ways*c.LineBytes) != 0:
		return fmt.Errorf("mem: %s: size %d not divisible by ways*line", c.Name, c.SizeBytes)
	case c.HitLatency < 1:
		return fmt.Errorf("mem: %s: hit latency must be >= 1", c.Name)
	}
	sets := c.SizeBytes / (c.Ways * c.LineBytes)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("mem: %s: set count %d not a power of two", c.Name, sets)
	}
	return nil
}

// CacheStats counts cache events.
type CacheStats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Writebacks uint64
	MSHRMerges uint64 // misses merged into an in-flight fill
	MSHRStalls uint64 // accesses delayed waiting for a free MSHR
	// Prefetches counts next-line fills issued; PrefetchHits counts
	// demand hits on lines a prefetch brought in (accuracy measure).
	Prefetches   uint64
	PrefetchHits uint64
}

// MissRate returns misses per access (0 when idle).
func (s CacheStats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

type cacheLine struct {
	tag        uint64
	valid      bool
	dirty      bool
	prefetched bool   // brought in by the prefetcher, not yet demand-hit
	lru        uint64 // last-use stamp; larger = more recent
}

type inflight struct {
	lineAddr uint64
	done     int64
}

// Cache is one set-associative level. It is not safe for concurrent use;
// the simulator is single-threaded by design.
type Cache struct {
	cfg      CacheConfig
	next     Level
	sets     [][]cacheLine
	setMask  uint64
	lineBits uint
	stamp    uint64
	fills    []inflight // in-flight line fills (bounded by MSHRs)
	stats    CacheStats
}

// NewCache builds a cache over the given next level. It panics on invalid
// configuration (configurations are static, chosen by code not input).
func NewCache(cfg CacheConfig, next Level) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if next == nil {
		panic(fmt.Sprintf("mem: %s: next level must not be nil", cfg.Name))
	}
	numSets := cfg.SizeBytes / (cfg.Ways * cfg.LineBytes)
	sets := make([][]cacheLine, numSets)
	backing := make([]cacheLine, numSets*cfg.Ways)
	for i := range sets {
		sets[i], backing = backing[:cfg.Ways], backing[cfg.Ways:]
	}
	// MSHR occupancy is bounded by the config (or stays small when
	// unlimited), so sizing the list up front keeps Access append-free.
	fillCap := cfg.MSHRs
	if fillCap < 8 {
		fillCap = 8
	}
	return &Cache{
		cfg:      cfg,
		next:     next,
		sets:     sets,
		setMask:  uint64(numSets - 1),
		lineBits: uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		fills:    make([]inflight, 0, fillCap),
	}
}

// Name implements Level.
func (c *Cache) Name() string { return c.cfg.Name }

// Stats returns a copy of the counters.
func (c *Cache) Stats() CacheStats { return c.stats }

// Config returns the cache configuration.
func (c *Cache) Config() CacheConfig { return c.cfg }

func (c *Cache) lineAddr(addr uint64) uint64 { return addr >> c.lineBits }

// Access implements Level.
func (c *Cache) Access(now int64, addr uint64, write bool) int64 {
	c.stats.Accesses++
	c.stamp++
	la := c.lineAddr(addr)
	set := c.sets[la&c.setMask]

	// Hit path. A tag can be resident while its fill is still in flight
	// (tags install at request time); such a hit waits for the data to
	// arrive — this is the MSHR merge.
	for i := range set {
		if set[i].valid && set[i].tag == la {
			c.stats.Hits++
			if set[i].prefetched {
				c.stats.PrefetchHits++
				set[i].prefetched = false
				// Tagged prefetching: a hit on a prefetched line keeps
				// the stream running one line ahead.
				if c.cfg.NextLinePrefetch {
					c.maybePrefetch(la+1, now)
				}
			}
			set[i].lru = c.stamp
			if write {
				set[i].dirty = true
			}
			done := now + int64(c.cfg.HitLatency)
			for _, f := range c.fills {
				if f.lineAddr == la && f.done > done {
					c.stats.MSHRMerges++
					done = f.done
				}
			}
			return done
		}
	}

	// Miss. First check whether the line is already being filled: the
	// request merges into the existing MSHR and completes with it.
	c.stats.Misses++
	c.expireFills(now)
	for _, f := range c.fills {
		if f.lineAddr == la {
			c.stats.MSHRMerges++
			done := f.done + int64(c.cfg.HitLatency)
			c.fill(la, write, done, false)
			return done
		}
	}

	// Allocate an MSHR; if all are busy, the request waits until the
	// earliest fill retires.
	start := now
	if c.cfg.MSHRs > 0 && len(c.fills) >= c.cfg.MSHRs {
		c.stats.MSHRStalls++
		earliest := c.fills[0].done
		for _, f := range c.fills[1:] {
			if f.done < earliest {
				earliest = f.done
			}
		}
		if earliest > start {
			start = earliest
		}
		c.expireFills(start)
	}

	fillDone := c.next.Access(start+int64(c.cfg.HitLatency), la<<c.lineBits, false)
	c.fills = append(c.fills, inflight{lineAddr: la, done: fillDone})
	c.fill(la, write, fillDone, false)

	// Next-line prefetch: launch alongside the demand fill when an MSHR
	// is free and the neighbour is not already resident or in flight.
	if c.cfg.NextLinePrefetch {
		c.maybePrefetch(la+1, start+int64(c.cfg.HitLatency))
	}
	return fillDone
}

// maybePrefetch starts a fill for the given line if capacity allows.
func (c *Cache) maybePrefetch(la uint64, now int64) {
	if c.cfg.MSHRs > 0 && len(c.fills) >= c.cfg.MSHRs {
		return
	}
	for _, l := range c.sets[la&c.setMask] {
		if l.valid && l.tag == la {
			return
		}
	}
	for _, f := range c.fills {
		if f.lineAddr == la {
			return
		}
	}
	c.stats.Prefetches++
	done := c.next.Access(now, la<<c.lineBits, false)
	c.fills = append(c.fills, inflight{lineAddr: la, done: done})
	c.fill(la, false, done, true)
}

// expireFills drops completed fills from the MSHR list.
func (c *Cache) expireFills(now int64) {
	kept := c.fills[:0]
	for _, f := range c.fills {
		if f.done > now {
			kept = append(kept, f)
		}
	}
	c.fills = kept
}

// fill installs the line, evicting the LRU way. Dirty victims are written
// back to the next level; the writeback is charged to the next level's
// bandwidth at the fill time but does not delay the demand request
// (hardware buffers writebacks).
func (c *Cache) fill(la uint64, write bool, when int64, prefetched bool) {
	set := c.sets[la&c.setMask]
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	if set[victim].valid && set[victim].dirty {
		c.stats.Writebacks++
		victimAddr := set[victim].tag << c.lineBits
		_ = c.next.Access(when, victimAddr, true)
	}
	set[victim] = cacheLine{tag: la, valid: true, dirty: write, prefetched: prefetched, lru: c.stamp}
}

// NextFillTime returns the earliest completion cycle strictly after now
// among this cache's in-flight line fills, or -1 when none is pending. It
// is a pure observation used by the simulator's event-horizon scheduler;
// fills themselves only take effect through Access calls.
func (c *Cache) NextFillTime(now int64) int64 {
	next := int64(-1)
	for _, f := range c.fills {
		if f.done > now && (next < 0 || f.done < next) {
			next = f.done
		}
	}
	return next
}

// Contains reports whether the line holding addr is resident (test hook).
func (c *Cache) Contains(addr uint64) bool {
	la := c.lineAddr(addr)
	for _, l := range c.sets[la&c.setMask] {
		if l.valid && l.tag == la {
			return true
		}
	}
	return false
}
