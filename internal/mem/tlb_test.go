package mem

import "testing"

func TestTLBDisabled(t *testing.T) {
	var tlb *TLB // nil = disabled
	if done := tlb.Translate(100, 0xdead); done != 100 {
		t.Errorf("disabled TLB delayed translation to %d", done)
	}
	if !tlb.Covers(0xbeef) {
		t.Error("disabled TLB must cover everything")
	}
	if s := tlb.Stats(); s.Accesses != 0 {
		t.Error("disabled TLB recorded stats")
	}
	if got := NewTLB(TLBConfig{}); got != nil {
		t.Error("zero config must produce a nil TLB")
	}
}

func TestTLBMissThenHit(t *testing.T) {
	tlb := NewTLB(TLBConfig{Entries: 4, PageBits: 12, WalkLatency: 25})
	done := tlb.Translate(0, 0x1000)
	if done != 25 {
		t.Errorf("cold translation done at %d, want 25", done)
	}
	// Same page, different offset: hit, free.
	if done := tlb.Translate(30, 0x1ff8); done != 30 {
		t.Errorf("hit delayed to %d", done)
	}
	s := tlb.Stats()
	if s.Accesses != 2 || s.Misses != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestTLBLRUEviction(t *testing.T) {
	tlb := NewTLB(TLBConfig{Entries: 2, PageBits: 12, WalkLatency: 10})
	tlb.Translate(0, 0x1000)
	tlb.Translate(20, 0x2000)
	tlb.Translate(40, 0x1000) // touch page 1: page 2 is LRU
	tlb.Translate(60, 0x3000) // evicts page 2
	if !tlb.Covers(0x1000) {
		t.Error("recently used page evicted")
	}
	if tlb.Covers(0x2000) {
		t.Error("LRU page survived")
	}
	if !tlb.Covers(0x3000) {
		t.Error("filled page missing")
	}
}

func TestTLBWalkerSerializes(t *testing.T) {
	tlb := NewTLB(TLBConfig{Entries: 8, PageBits: 12, WalkLatency: 20})
	d1 := tlb.Translate(0, 0x1000)
	d2 := tlb.Translate(0, 0x2000) // second walk queues behind the first
	if d1 != 20 || d2 != 40 {
		t.Errorf("walks done at %d, %d; want 20, 40", d1, d2)
	}
}

func TestTLBConfigValidate(t *testing.T) {
	if err := (TLBConfig{}).Validate(); err != nil {
		t.Errorf("disabled config rejected: %v", err)
	}
	bad := []TLBConfig{
		{Entries: -1, PageBits: 12, WalkLatency: 10},
		{Entries: 8, PageBits: 2, WalkLatency: 10},
		{Entries: 8, PageBits: 12, WalkLatency: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestHierarchyTLBIntegration(t *testing.T) {
	cfg := DefaultHierarchy()
	h := NewHierarchy(cfg)
	// Cold access pays walk + full miss path.
	cold := h.Access(0, 0x100000, false)
	wantMin := int64(30 + 2 + 12 + 100)
	if cold < wantMin {
		t.Errorf("cold access with TLB done at %d, want >= %d", cold, wantMin)
	}
	if h.DTLB.Stats().Misses != 1 {
		t.Errorf("dtlb misses = %d, want 1", h.DTLB.Stats().Misses)
	}
	// Warm: same page, same line — 2 cycles.
	if warm := h.Access(cold, 0x100000, false); warm != cold+2 {
		t.Errorf("warm access done at %d, want %d", warm, cold+2)
	}
}
