package mem

import "fmt"

// DRAMConfig describes the main-memory timing model: a fixed access latency
// plus a channel that transfers one cache line every CyclesPerLine cycles
// (the bandwidth limit).
type DRAMConfig struct {
	Latency       int // cycles from request to first data
	CyclesPerLine int // channel occupancy per line transfer
}

// Validate reports configuration errors.
func (c DRAMConfig) Validate() error {
	if c.Latency < 1 || c.CyclesPerLine < 1 {
		return fmt.Errorf("mem: dram latency and cycles/line must be >= 1")
	}
	return nil
}

// DRAMStats counts main-memory events.
type DRAMStats struct {
	Reads  uint64
	Writes uint64
	// BusyCycles is total channel occupancy, for bandwidth-utilization
	// reporting.
	BusyCycles int64
}

// DRAM is the bandwidth-limited terminal level of the hierarchy.
type DRAM struct {
	cfg      DRAMConfig
	nextFree int64
	stats    DRAMStats
}

// NewDRAM builds the terminal memory level. It panics on invalid
// configuration.
func NewDRAM(cfg DRAMConfig) *DRAM {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &DRAM{cfg: cfg}
}

// Name implements Level.
func (d *DRAM) Name() string { return "dram" }

// Stats returns a copy of the counters.
func (d *DRAM) Stats() DRAMStats { return d.stats }

// Access implements Level. Requests serialize on the channel: a request
// arriving while the channel is busy waits for it, modeling finite
// bandwidth.
func (d *DRAM) Access(now int64, addr uint64, write bool) int64 {
	if write {
		d.stats.Writes++
	} else {
		d.stats.Reads++
	}
	start := now
	if d.nextFree > start {
		start = d.nextFree
	}
	d.nextFree = start + int64(d.cfg.CyclesPerLine)
	d.stats.BusyCycles += int64(d.cfg.CyclesPerLine)
	return start + int64(d.cfg.Latency)
}

// HierarchyConfig bundles a typical two-level hierarchy over DRAM. The
// instruction cache is optional: a zero-size L1I disables instruction-side
// timing (fetch is then limited only by the front-end width and depth).
type HierarchyConfig struct {
	L1I  CacheConfig
	L1D  CacheConfig
	L2   CacheConfig
	DRAM DRAMConfig
	// DTLB/ITLB add translation timing to the data and instruction
	// sides; zero Entries disables them.
	DTLB TLBConfig
	ITLB TLBConfig
}

// DefaultHierarchy returns parameters resembling a mid-range core: 32 KiB
// 8-way L1D (2-cycle), 1 MiB 16-way L2 (12-cycle), 100-cycle DRAM. The L1
// size matches the paper's matrix-blocking discussion ("L1 D-cache of
// 32kB").
func DefaultHierarchy() HierarchyConfig {
	return HierarchyConfig{
		L1I: CacheConfig{
			Name: "l1i", SizeBytes: 32 << 10, Ways: 4, LineBytes: 64,
			HitLatency: 1, MSHRs: 4, NextLinePrefetch: true,
		},
		L1D: CacheConfig{
			Name: "l1d", SizeBytes: 32 << 10, Ways: 8, LineBytes: 64,
			HitLatency: 2, MSHRs: 8,
		},
		L2: CacheConfig{
			Name: "l2", SizeBytes: 1 << 20, Ways: 16, LineBytes: 64,
			HitLatency: 12, MSHRs: 16,
		},
		DRAM: DRAMConfig{Latency: 100, CyclesPerLine: 4},
		DTLB: TLBConfig{Entries: 64, PageBits: 12, WalkLatency: 30},
		ITLB: TLBConfig{Entries: 32, PageBits: 12, WalkLatency: 30},
	}
}

// Hierarchy is the assembled memory system: split L1I/L1D over a shared
// L2 and DRAM.
type Hierarchy struct {
	L1I  *Cache // nil when instruction-side timing is disabled
	L1D  *Cache
	L2   *Cache
	DRAM *DRAM
	DTLB *TLB // nil when disabled
	ITLB *TLB
}

// NewHierarchy assembles {L1I, L1D} -> L2 -> DRAM from the configuration.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	dram := NewDRAM(cfg.DRAM)
	l2 := NewCache(cfg.L2, dram)
	h := &Hierarchy{
		L2: l2, DRAM: dram, L1D: NewCache(cfg.L1D, l2),
		DTLB: NewTLB(cfg.DTLB), ITLB: NewTLB(cfg.ITLB),
	}
	if cfg.L1I.SizeBytes > 0 {
		h.L1I = NewCache(cfg.L1I, l2)
	}
	return h
}

// Access performs a data access through the DTLB and L1D.
func (h *Hierarchy) Access(now int64, addr uint64, write bool) int64 {
	return h.L1D.Access(h.DTLB.Translate(now, addr), addr, write)
}

// IFetch performs an instruction-line access through the ITLB and L1I.
// With the instruction side disabled it completes immediately.
func (h *Hierarchy) IFetch(now int64, addr uint64) int64 {
	if h.L1I == nil {
		return now
	}
	return h.L1I.Access(h.ITLB.Translate(now, addr), addr, false)
}

// IFetchEnabled reports whether instruction-side timing is modeled.
func (h *Hierarchy) IFetchEnabled() bool { return h.L1I != nil }

// NextFillTime returns the earliest in-flight line-fill completion
// strictly after now across every cache level, or -1 when nothing is in
// flight. The event-horizon scheduler folds it into its minimum so a skip
// never jumps over a fill return.
func (h *Hierarchy) NextFillTime(now int64) int64 {
	next := int64(-1)
	for _, c := range []*Cache{h.L1I, h.L1D, h.L2} {
		if c == nil {
			continue
		}
		if t := c.NextFillTime(now); t > 0 && (next < 0 || t < next) {
			next = t
		}
	}
	return next
}

// Name implements Level.
func (h *Hierarchy) Name() string { return "hierarchy" }

// String summarizes hit rates for reports.
func (h *Hierarchy) String() string {
	l1, l2, dr := h.L1D.Stats(), h.L2.Stats(), h.DRAM.Stats()
	s := fmt.Sprintf("l1d: %d acc %.1f%% miss | l2: %d acc %.1f%% miss | dram: %d rd %d wr",
		l1.Accesses, 100*l1.MissRate(), l2.Accesses, 100*l2.MissRate(), dr.Reads, dr.Writes)
	if h.L1I != nil {
		i := h.L1I.Stats()
		s = fmt.Sprintf("l1i: %d acc %.1f%% miss | %s", i.Accesses, 100*i.MissRate(), s)
	}
	return s
}

// PerfectMemory is a Level with a fixed latency and no state, used to
// isolate pipeline effects from memory effects in tests and experiments.
type PerfectMemory struct{ Latency int }

// Name implements Level.
func (p PerfectMemory) Name() string { return "perfect" }

// Access implements Level.
func (p PerfectMemory) Access(now int64, _ uint64, _ bool) int64 {
	return now + int64(p.Latency)
}
