package mem

import "fmt"

// TLBConfig describes a translation lookaside buffer. Zero Entries
// disables translation timing entirely (the simulator's ISA is physically
// addressed by default; enabling the TLB adds first-order virtual-memory
// timing: a hit is free, a miss pays a page-walk latency).
type TLBConfig struct {
	Entries     int // fully-associative entry count
	PageBits    int // page size = 1<<PageBits bytes (default 12 = 4 KiB)
	WalkLatency int // cycles to walk the page table on a miss
}

// Validate reports configuration errors.
func (c TLBConfig) Validate() error {
	if c.Entries == 0 {
		return nil // disabled
	}
	switch {
	case c.Entries < 0:
		return fmt.Errorf("mem: tlb entries must be >= 0")
	case c.PageBits < 6 || c.PageBits > 30:
		return fmt.Errorf("mem: tlb page bits %d out of [6,30]", c.PageBits)
	case c.WalkLatency < 1:
		return fmt.Errorf("mem: tlb walk latency must be >= 1")
	}
	return nil
}

// TLBStats counts translation events.
type TLBStats struct {
	Accesses uint64
	Misses   uint64
}

// MissRate returns misses per access.
func (s TLBStats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// TLB is a fully-associative, LRU translation buffer. A nil *TLB is a
// valid disabled TLB (translation is free).
type TLB struct {
	cfg     TLBConfig
	pages   map[uint64]uint64 // page number -> last-use stamp
	stamp   uint64
	walkEnd int64 // single page-walker: busy-until cycle
	stats   TLBStats
}

// NewTLB builds a TLB, or returns nil when the configuration disables it.
func NewTLB(cfg TLBConfig) *TLB {
	if cfg.Entries == 0 {
		return nil
	}
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.PageBits == 0 {
		cfg.PageBits = 12
	}
	return &TLB{cfg: cfg, pages: make(map[uint64]uint64, cfg.Entries)}
}

// Stats returns a copy of the counters (zero for a disabled TLB).
func (t *TLB) Stats() TLBStats {
	if t == nil {
		return TLBStats{}
	}
	return t.stats
}

// Translate returns the cycle at which the translation for addr is
// available, starting no earlier than now. Hits are free; misses pay the
// walk latency and serialize on the single page walker.
func (t *TLB) Translate(now int64, addr uint64) int64 {
	if t == nil {
		return now
	}
	t.stats.Accesses++
	t.stamp++
	page := addr >> t.cfg.PageBits
	if _, ok := t.pages[page]; ok {
		t.pages[page] = t.stamp
		return now
	}
	t.stats.Misses++
	start := now
	if t.walkEnd > start {
		start = t.walkEnd
	}
	done := start + int64(t.cfg.WalkLatency)
	t.walkEnd = done
	t.insert(page)
	return done
}

// insert fills the entry, evicting LRU.
func (t *TLB) insert(page uint64) {
	if len(t.pages) >= t.cfg.Entries {
		var victim uint64
		oldest := ^uint64(0)
		for p, stamp := range t.pages {
			if stamp < oldest {
				oldest = stamp //lint:ignore R3 stamps are unique (t.stamp++ per access), so the argmin is the same in any iteration order
				victim = p
			}
		}
		delete(t.pages, victim)
	}
	t.pages[page] = t.stamp
}

// Covers reports whether the page holding addr is resident (test hook).
func (t *TLB) Covers(addr uint64) bool {
	if t == nil {
		return true
	}
	_, ok := t.pages[addr>>t.cfg.PageBits]
	return ok
}
