package mem

import (
	"math/rand"
	"testing"
)

func tinyCache(next Level) *Cache {
	return NewCache(CacheConfig{
		Name: "t", SizeBytes: 1024, Ways: 2, LineBytes: 64,
		HitLatency: 1, MSHRs: 4,
	}, next)
}

func TestCacheConfigValidate(t *testing.T) {
	bad := []CacheConfig{
		{Name: "x", SizeBytes: 0, Ways: 1, LineBytes: 64, HitLatency: 1},
		{Name: "x", SizeBytes: 1024, Ways: 2, LineBytes: 48, HitLatency: 1}, // line not pow2
		{Name: "x", SizeBytes: 1000, Ways: 2, LineBytes: 64, HitLatency: 1}, // not divisible
		{Name: "x", SizeBytes: 1024, Ways: 2, LineBytes: 64, HitLatency: 0},
		{Name: "x", SizeBytes: 64 * 2 * 3, Ways: 2, LineBytes: 64, HitLatency: 1}, // 3 sets
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if err := (CacheConfig{Name: "ok", SizeBytes: 32 << 10, Ways: 8, LineBytes: 64, HitLatency: 2}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestCacheMissThenHit(t *testing.T) {
	c := tinyCache(PerfectMemory{Latency: 50})
	missDone := c.Access(0, 0x1000, false)
	if missDone < 50 {
		t.Errorf("miss completed at %d, want >= 50", missDone)
	}
	hitDone := c.Access(missDone, 0x1000, false)
	if hitDone != missDone+1 {
		t.Errorf("hit completed at %d, want %d", hitDone, missDone+1)
	}
	// Same line, different word: still a hit.
	if done := c.Access(hitDone, 0x1038, false); done != hitDone+1 {
		t.Errorf("same-line access missed (done=%d)", done)
	}
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 1 || s.Accesses != 3 {
		t.Errorf("stats = %+v, want 2 hits / 1 miss / 3 accesses", s)
	}
}

func TestCacheLRUReplacement(t *testing.T) {
	// 2 ways: three distinct lines mapping to the same set evict the
	// least recently used.
	c := tinyCache(PerfectMemory{Latency: 10})
	// 8 sets of 64B lines; set index = bits [6..9). Lines 0x0000, 0x2000,
	// 0x4000 all map to set 0.
	c.Access(0, 0x0000, false)
	c.Access(100, 0x2000, false)
	c.Access(200, 0x0000, false) // touch 0x0000: 0x2000 becomes LRU
	c.Access(300, 0x4000, false) // evicts 0x2000
	if !c.Contains(0x0000) {
		t.Error("recently used line evicted")
	}
	if c.Contains(0x2000) {
		t.Error("LRU line not evicted")
	}
	if !c.Contains(0x4000) {
		t.Error("filled line not resident")
	}
}

func TestCacheWritebackOnDirtyEviction(t *testing.T) {
	dram := NewDRAM(DRAMConfig{Latency: 10, CyclesPerLine: 1})
	c := tinyCache(dram)
	c.Access(0, 0x0000, true)    // dirty line in set 0
	c.Access(100, 0x2000, false) // fills way 2
	c.Access(200, 0x4000, false) // evicts dirty 0x0000 -> writeback
	if got := c.Stats().Writebacks; got != 1 {
		t.Errorf("writebacks = %d, want 1", got)
	}
	if got := dram.Stats().Writes; got != 1 {
		t.Errorf("dram writes = %d, want 1", got)
	}
	// Clean eviction must not write back.
	c.Access(300, 0x6000, false) // evicts clean 0x2000
	if got := c.Stats().Writebacks; got != 1 {
		t.Errorf("clean eviction wrote back (wb=%d)", got)
	}
}

func TestCacheMSHRMerge(t *testing.T) {
	c := tinyCache(PerfectMemory{Latency: 100})
	d1 := c.Access(0, 0x1000, false)
	d2 := c.Access(1, 0x1008, false) // same line, while fill in flight
	if d2 > d1+int64(c.Config().HitLatency) {
		t.Errorf("merged miss done at %d, want <= %d", d2, d1+1)
	}
	if got := c.Stats().MSHRMerges; got != 1 {
		t.Errorf("merges = %d, want 1", got)
	}
}

func TestCacheMSHRStall(t *testing.T) {
	c := NewCache(CacheConfig{
		Name: "t", SizeBytes: 4096, Ways: 4, LineBytes: 64,
		HitLatency: 1, MSHRs: 2,
	}, PerfectMemory{Latency: 100})
	c.Access(0, 0x0000, false)
	c.Access(0, 0x1000, false)
	done := c.Access(0, 0x2000, false) // both MSHRs busy until ~101
	if done < 200 {
		t.Errorf("stalled miss done at %d, want >= 200 (wait + fill)", done)
	}
	if got := c.Stats().MSHRStalls; got != 1 {
		t.Errorf("stalls = %d, want 1", got)
	}
}

func TestDRAMBandwidthSerialization(t *testing.T) {
	d := NewDRAM(DRAMConfig{Latency: 20, CyclesPerLine: 4})
	d1 := d.Access(0, 0, false)
	d2 := d.Access(0, 64, false)
	d3 := d.Access(0, 128, false)
	if d1 != 20 || d2 != 24 || d3 != 28 {
		t.Errorf("dram done = %d,%d,%d; want 20,24,28", d1, d2, d3)
	}
	if got := d.Stats().BusyCycles; got != 12 {
		t.Errorf("busy cycles = %d, want 12", got)
	}
}

func TestHierarchyInclusionOfLatencies(t *testing.T) {
	h := NewHierarchy(DefaultHierarchy())
	cold := h.Access(0, 0x100000, false)
	wantMin := int64(2 + 12 + 100) // L1 + L2 + DRAM latencies on the miss path
	if cold < wantMin {
		t.Errorf("cold access done at %d, want >= %d", cold, wantMin)
	}
	warm := h.Access(cold, 0x100000, false)
	if warm != cold+2 {
		t.Errorf("warm access done at %d, want %d", warm, cold+2)
	}
	if h.L2.Stats().Accesses == 0 {
		t.Error("L2 never accessed on L1 miss")
	}
}

func TestHierarchyWorkingSetFitsL1(t *testing.T) {
	// Touch a 16 KiB working set twice; second pass must be all hits.
	h := NewHierarchy(DefaultHierarchy())
	now := int64(0)
	for pass := 0; pass < 2; pass++ {
		for addr := uint64(0); addr < 16<<10; addr += 64 {
			now = h.Access(now, addr, false)
		}
	}
	s := h.L1D.Stats()
	if s.Misses != 256 { // one miss per line, first pass only
		t.Errorf("misses = %d, want 256", s.Misses)
	}
}

func TestHierarchyThrashingExceedsL1(t *testing.T) {
	// A 64 KiB streaming set over a 32 KiB L1: second pass misses again.
	h := NewHierarchy(DefaultHierarchy())
	now := int64(0)
	for pass := 0; pass < 2; pass++ {
		for addr := uint64(0); addr < 64<<10; addr += 64 {
			now = h.Access(now, addr, false)
		}
	}
	s := h.L1D.Stats()
	if s.Misses < 2000 { // 2048 line fetches total
		t.Errorf("misses = %d, want ~2048 (thrash)", s.Misses)
	}
	// But L2 holds it: DRAM sees only the first pass.
	if got := h.DRAM.Stats().Reads; got > 1100 {
		t.Errorf("dram reads = %d, want ~1024", got)
	}
}

// Property: completion times are never before now + hit latency, and stats
// remain consistent (hits + misses == accesses) under random traffic.
func TestCacheInvariantsUnderRandomTraffic(t *testing.T) {
	c := tinyCache(PerfectMemory{Latency: 30})
	rng := rand.New(rand.NewSource(7))
	now := int64(0)
	for i := 0; i < 20000; i++ {
		addr := uint64(rng.Intn(1 << 14))
		write := rng.Intn(4) == 0
		done := c.Access(now, addr, write)
		if done < now+1 {
			t.Fatalf("access done at %d before now=%d", done, now)
		}
		if rng.Intn(2) == 0 {
			now = done
		} else {
			now++
		}
	}
	s := c.Stats()
	if s.Hits+s.Misses != s.Accesses {
		t.Errorf("hits %d + misses %d != accesses %d", s.Hits, s.Misses, s.Accesses)
	}
}

func TestPerfectMemory(t *testing.T) {
	p := PerfectMemory{Latency: 5}
	if got := p.Access(10, 0xdead, true); got != 15 {
		t.Errorf("perfect access done at %d, want 15", got)
	}
}
