package mem

import "testing"

func prefetchCache(on bool, next Level) *Cache {
	return NewCache(CacheConfig{
		Name: "p", SizeBytes: 4096, Ways: 4, LineBytes: 64,
		HitLatency: 1, MSHRs: 8, NextLinePrefetch: on,
	}, next)
}

func TestPrefetchStreamingLatency(t *testing.T) {
	// Sequential line stream: with next-line prefetch, every second
	// access finds its line in flight or resident, so total time drops.
	run := func(on bool) (int64, CacheStats) {
		c := prefetchCache(on, PerfectMemory{Latency: 50})
		now := int64(0)
		for i := 0; i < 32; i++ {
			now = c.Access(now, uint64(i)*64, false)
		}
		return now, c.Stats()
	}
	offTime, offStats := run(false)
	onTime, onStats := run(true)
	if onTime >= offTime {
		t.Errorf("prefetch did not help a stream: %d vs %d cycles", onTime, offTime)
	}
	if onStats.Prefetches == 0 {
		t.Error("no prefetches issued on a miss stream")
	}
	if onStats.PrefetchHits == 0 {
		t.Error("no prefetch hits recorded on a sequential stream")
	}
	if offStats.Prefetches != 0 {
		t.Error("prefetches issued with prefetching disabled")
	}
}

func TestPrefetchAccuracyCounting(t *testing.T) {
	c := prefetchCache(true, PerfectMemory{Latency: 20})
	done := c.Access(0, 0, false) // miss line 0, prefetch line 1
	// Demand hit on the prefetched line counts once.
	done = c.Access(done, 64, false)
	c.Access(done, 64, false) // second hit: no longer "prefetched"
	s := c.Stats()
	if s.Prefetches < 1 {
		t.Fatalf("prefetches = %d", s.Prefetches)
	}
	if s.PrefetchHits != 1 {
		t.Errorf("prefetch hits = %d, want exactly 1", s.PrefetchHits)
	}
}

func TestPrefetchRespectsMSHRLimit(t *testing.T) {
	c := NewCache(CacheConfig{
		Name: "p", SizeBytes: 4096, Ways: 4, LineBytes: 64,
		HitLatency: 1, MSHRs: 1, NextLinePrefetch: true,
	}, PerfectMemory{Latency: 100})
	c.Access(0, 0, false) // demand fill occupies the only MSHR
	if got := c.Stats().Prefetches; got != 0 {
		t.Errorf("prefetch issued with no free MSHR (count %d)", got)
	}
}

func TestPrefetchSkipsResidentLine(t *testing.T) {
	c := prefetchCache(true, PerfectMemory{Latency: 10})
	n := c.Access(0, 64, false)   // line 1 resident (prefetches line 2)
	n = c.Access(n+100, 0, false) // miss line 0; line 1 already resident
	_ = n
	s := c.Stats()
	// Exactly two useful prefetches at most: line 2 (from first miss)
	// and line 1 must NOT be refetched.
	if s.Prefetches > 2 {
		t.Errorf("prefetches = %d, want <= 2 (resident line refetched?)", s.Prefetches)
	}
}

func TestPrefetchRandomTrafficInvariants(t *testing.T) {
	// Counters stay consistent under mixed traffic.
	c := prefetchCache(true, PerfectMemory{Latency: 30})
	now := int64(0)
	for i := 0; i < 5000; i++ {
		addr := uint64((i * 2654435761) % (1 << 14))
		now = c.Access(now, addr, i%5 == 0)
	}
	s := c.Stats()
	if s.Hits+s.Misses != s.Accesses {
		t.Errorf("hits %d + misses %d != accesses %d", s.Hits, s.Misses, s.Accesses)
	}
	if s.PrefetchHits > s.Prefetches {
		t.Errorf("prefetch hits %d exceed prefetches %d", s.PrefetchHits, s.Prefetches)
	}
}
