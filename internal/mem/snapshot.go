package mem

import (
	"fmt"
	"sort"
)

// Deterministic snapshot/restore for the timing hierarchy.
//
// The simulator's checkpoint layer (internal/sim.Checkpoint) captures the
// hierarchy at a cycle boundary and later resumes into a freshly built
// Hierarchy of the same configuration. Restore is therefore in-place: it
// fills an object NewHierarchy already wired, preserving the shared-L2
// pointer topology (L1I and L1D chain to the same *Cache) instead of
// reconstructing it from data.

// CacheLineState is one way of one set, in set-major order.
type CacheLineState struct {
	Tag        uint64
	Valid      bool
	Dirty      bool
	Prefetched bool
	LRU        uint64
}

// FillState is one in-flight line fill (MSHR entry), in insertion order.
type FillState struct {
	LineAddr uint64
	Done     int64
}

// CacheState snapshots one cache level.
type CacheState struct {
	Lines []CacheLineState // sets × ways, flattened set-major
	Stamp uint64
	Fills []FillState
	Stats CacheStats
}

// Snapshot captures the cache's mutable state.
func (c *Cache) Snapshot() CacheState {
	s := CacheState{Stamp: c.stamp, Stats: c.stats}
	s.Lines = make([]CacheLineState, 0, len(c.sets)*c.cfg.Ways)
	for _, set := range c.sets {
		for _, l := range set {
			s.Lines = append(s.Lines, CacheLineState{
				Tag: l.tag, Valid: l.valid, Dirty: l.dirty,
				Prefetched: l.prefetched, LRU: l.lru,
			})
		}
	}
	if len(c.fills) == 0 {
		return s
	}
	s.Fills = make([]FillState, len(c.fills))
	for i, f := range c.fills {
		s.Fills[i] = FillState{LineAddr: f.lineAddr, Done: f.done}
	}
	return s
}

// Restore fills the cache's mutable state from a snapshot taken from an
// identically configured cache.
func (c *Cache) Restore(s CacheState) error {
	if want := len(c.sets) * c.cfg.Ways; len(s.Lines) != want {
		return fmt.Errorf("mem: %s: snapshot has %d lines, cache holds %d", c.cfg.Name, len(s.Lines), want)
	}
	i := 0
	for _, set := range c.sets {
		for w := range set {
			l := s.Lines[i]
			set[w] = cacheLine{tag: l.Tag, valid: l.Valid, dirty: l.Dirty, prefetched: l.Prefetched, lru: l.LRU}
			i++
		}
	}
	c.stamp = s.Stamp
	c.fills = c.fills[:0]
	for _, f := range s.Fills {
		c.fills = append(c.fills, inflight{lineAddr: f.LineAddr, done: f.Done})
	}
	c.stats = s.Stats
	return nil
}

// DRAMState snapshots the terminal level.
type DRAMState struct {
	NextFree int64
	Stats    DRAMStats
}

// Snapshot captures the DRAM channel state.
func (d *DRAM) Snapshot() DRAMState { return DRAMState{NextFree: d.nextFree, Stats: d.stats} }

// Restore fills the DRAM channel state from a snapshot.
func (d *DRAM) Restore(s DRAMState) {
	d.nextFree = s.NextFree
	d.stats = s.Stats
}

// TLBPageState is one resident translation, sorted by page number.
type TLBPageState struct {
	Page  uint64
	Stamp uint64
}

// TLBState snapshots one TLB.
type TLBState struct {
	Pages   []TLBPageState
	Stamp   uint64
	WalkEnd int64
	Stats   TLBStats
}

// Snapshot captures the TLB state; a nil (disabled) TLB returns (zero,
// false).
func (t *TLB) Snapshot() (TLBState, bool) {
	if t == nil {
		return TLBState{}, false
	}
	s := TLBState{Stamp: t.stamp, WalkEnd: t.walkEnd, Stats: t.stats}
	pages := make([]TLBPageState, 0, len(t.pages))
	for p, st := range t.pages {
		pages = append(pages, TLBPageState{Page: p, Stamp: st})
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i].Page < pages[j].Page })
	if len(pages) > 0 {
		s.Pages = pages
	}
	return s, true
}

// Restore fills the TLB state from a snapshot. Restoring into a nil TLB is
// an error (configuration mismatch).
func (t *TLB) Restore(s TLBState) error {
	if t == nil {
		return fmt.Errorf("mem: restoring TLB state into a disabled TLB")
	}
	t.stamp = s.Stamp
	t.walkEnd = s.WalkEnd
	t.stats = s.Stats
	t.pages = make(map[uint64]uint64, len(s.Pages))
	for _, p := range s.Pages {
		t.pages[p.Page] = p.Stamp
	}
	return nil
}

// HierarchyState snapshots the full memory system. L1I and the TLBs are
// pointers because those levels are optional (nil = disabled in the source
// configuration).
type HierarchyState struct {
	L1I  *CacheState
	L1D  CacheState
	L2   CacheState
	DRAM DRAMState
	DTLB *TLBState
	ITLB *TLBState
}

// Snapshot captures every level.
func (h *Hierarchy) Snapshot() HierarchyState {
	s := HierarchyState{L1D: h.L1D.Snapshot(), L2: h.L2.Snapshot(), DRAM: h.DRAM.Snapshot()}
	if h.L1I != nil {
		cs := h.L1I.Snapshot()
		s.L1I = &cs
	}
	if ts, ok := h.DTLB.Snapshot(); ok {
		s.DTLB = &ts
	}
	if ts, ok := h.ITLB.Snapshot(); ok {
		s.ITLB = &ts
	}
	return s
}

// Restore fills a hierarchy built from the same configuration. The optional
// levels must match: a snapshot with L1I state cannot restore into a
// hierarchy without an L1I, and vice versa.
func (h *Hierarchy) Restore(s HierarchyState) error {
	if (s.L1I != nil) != (h.L1I != nil) {
		return fmt.Errorf("mem: snapshot/hierarchy L1I presence mismatch")
	}
	if (s.DTLB != nil) != (h.DTLB != nil) {
		return fmt.Errorf("mem: snapshot/hierarchy DTLB presence mismatch")
	}
	if (s.ITLB != nil) != (h.ITLB != nil) {
		return fmt.Errorf("mem: snapshot/hierarchy ITLB presence mismatch")
	}
	if s.L1I != nil {
		if err := h.L1I.Restore(*s.L1I); err != nil {
			return err
		}
	}
	if err := h.L1D.Restore(s.L1D); err != nil {
		return err
	}
	if err := h.L2.Restore(s.L2); err != nil {
		return err
	}
	h.DRAM.Restore(s.DRAM)
	if s.DTLB != nil {
		if err := h.DTLB.Restore(*s.DTLB); err != nil {
			return err
		}
	}
	if s.ITLB != nil {
		if err := h.ITLB.Restore(*s.ITLB); err != nil {
			return err
		}
	}
	return nil
}
