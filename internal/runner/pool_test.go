package runner

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestPoolExecutesAll(t *testing.T) {
	p := NewPool(4, 0)
	var n atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		// SubmitAdmitted so the test never races the queue bound.
		if err := p.SubmitAdmitted(0, func(cancelled bool) {
			defer wg.Done()
			if !cancelled {
				n.Add(1)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	p.Close()
	if got := n.Load(); got != 100 {
		t.Fatalf("executed %d of 100 jobs", got)
	}
	m := p.Metrics()
	if m.Submitted != 100 || m.Executed != 100 || m.Cancelled != 0 {
		t.Fatalf("metrics %+v", m)
	}
}

// TestPoolQueueBound: with workers wedged, submissions past the depth
// bound fail fast with ErrQueueFull and nothing blocks.
func TestPoolQueueBound(t *testing.T) {
	p := NewPool(1, 2)
	release := make(chan struct{})
	started := make(chan struct{})
	if err := p.Submit(0, func(cancelled bool) {
		if !cancelled {
			close(started)
			<-release
		}
	}); err != nil {
		t.Fatal(err)
	}
	<-started // worker occupied; queue now empty

	for i := 0; i < 2; i++ {
		if err := p.Submit(0, func(bool) {}); err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
	}
	if err := p.Submit(0, func(bool) {}); err != ErrQueueFull {
		t.Fatalf("over-depth Submit: got %v, want ErrQueueFull", err)
	}
	// Parked-work resubmission bypasses the bound.
	if err := p.SubmitAdmitted(0, func(bool) {}); err != nil {
		t.Fatalf("SubmitAdmitted: %v", err)
	}
	close(release)
	p.Close()
	if m := p.Metrics(); m.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", m.Rejected)
	}
}

// TestPoolPriorityFIFO: a single wedged worker, then a batch of queued
// jobs — they must drain in priority order, FIFO within a priority.
func TestPoolPriorityFIFO(t *testing.T) {
	p := NewPool(1, 8)
	release := make(chan struct{})
	started := make(chan struct{})
	if err := p.Submit(0, func(cancelled bool) {
		if !cancelled {
			close(started)
			<-release
		}
	}); err != nil {
		t.Fatal(err)
	}
	<-started

	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	enqueue := func(id, prio int) {
		wg.Add(1)
		if err := p.Submit(prio, func(cancelled bool) {
			defer wg.Done()
			if cancelled {
				return
			}
			mu.Lock()
			order = append(order, id)
			mu.Unlock()
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Submission order: low, high, low, high, low.
	enqueue(1, 0)
	enqueue(2, 5)
	enqueue(3, 0)
	enqueue(4, 5)
	enqueue(5, 0)
	close(release)
	wg.Wait()
	p.Close()

	want := []int{2, 4, 1, 3, 5}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != len(want) {
		t.Fatalf("order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

// TestPoolCloseCancelsQueued: queued-but-unstarted jobs complete with
// cancelled=true; Close waits for everything.
func TestPoolCloseCancelsQueued(t *testing.T) {
	p := NewPool(1, 8)
	release := make(chan struct{})
	started := make(chan struct{})
	p.Submit(0, func(cancelled bool) {
		if !cancelled {
			close(started)
			<-release
		}
	})
	<-started

	var ran, cancelled atomic.Int64
	for i := 0; i < 5; i++ {
		if err := p.Submit(0, func(c bool) {
			if c {
				cancelled.Add(1)
			} else {
				ran.Add(1)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan struct{})
	go func() {
		p.Close()
		close(done)
	}()
	close(release)
	<-done

	// The wedged job plus whatever the worker dequeued before Close
	// snapshotted the queue ran normally; the rest were cancelled.
	if total := ran.Load() + cancelled.Load(); total != 5 {
		t.Fatalf("ran %d + cancelled %d != 5", ran.Load(), cancelled.Load())
	}
	if err := p.Submit(0, func(bool) {}); err != ErrPoolClosed {
		t.Fatalf("post-Close Submit: got %v, want ErrPoolClosed", err)
	}
	if err := p.SubmitAdmitted(0, func(bool) {}); err != ErrPoolClosed {
		t.Fatalf("post-Close SubmitAdmitted: got %v, want ErrPoolClosed", err)
	}
}

func TestPoolCloseIdempotent(t *testing.T) {
	p := NewPool(2, 0)
	p.Close()
	p.Close()
}
