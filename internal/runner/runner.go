// Package runner is the parallel experiment engine: a generic worker pool
// that fans independent jobs across goroutines while keeping the output
// indistinguishable from a serial loop.
//
// Every validation artifact in this repository is a sweep of independent
// (workload x mode x sweep-point) simulations — each one deterministic in
// its seed and sharing no mutable state with its siblings (DESIGN.md).
// That makes the sweeps embarrassingly parallel, exactly like batching
// isolated gem5 runs. Map exploits this: jobs execute concurrently, but
//
//   - results are collected into a slice indexed by input position, so the
//     caller observes them in input order regardless of completion order;
//   - each job computes only from its own inputs (no cross-job reads, no
//     reductions inside workers), so every float and every string a job
//     produces is bit-identical to what the serial loop would produce;
//   - the first error (lowest job index) wins deterministically, and the
//     shared context is cancelled promptly so in-flight siblings can stop.
//
// The per-job wall-clock lands in a Report for observability: cmd/figures
// prints it to stderr so stdout artifacts stay byte-stable.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Parallelism resolves a requested worker count: values <= 0 select
// GOMAXPROCS, the engine-wide default.
func Parallelism(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// JobTiming is the measured wall-clock of one job.
type JobTiming struct {
	Index   int
	Elapsed time.Duration
}

// Report describes one Map call for observability: how wide it ran, how
// long the whole call took, and how long each job took.
type Report struct {
	// Parallel is the worker count actually used (after clamping to the
	// job count).
	Parallel int
	// Wall is the wall-clock of the whole Map call.
	Wall time.Duration
	// Jobs holds per-job timings in input order. Jobs skipped after a
	// cancellation keep a zero Elapsed.
	Jobs []JobTiming
}

// Work returns the summed job time — the serial-equivalent cost.
func (r *Report) Work() time.Duration {
	var sum time.Duration
	for _, j := range r.Jobs {
		sum += j.Elapsed
	}
	return sum
}

// Overlap returns Work/Wall, the achieved concurrency (1.0 = serial).
func (r *Report) Overlap() float64 {
	if r.Wall <= 0 {
		return 1
	}
	return float64(r.Work()) / float64(r.Wall)
}

// Slowest returns the longest job timing (zero value when empty).
func (r *Report) Slowest() JobTiming {
	var worst JobTiming
	for _, j := range r.Jobs {
		if j.Elapsed > worst.Elapsed {
			worst = j
		}
	}
	return worst
}

// String summarizes the report in one line.
func (r *Report) String() string {
	s := r.Slowest()
	return fmt.Sprintf("%d jobs on %d workers: wall %v, work %v (%.1fx overlap), slowest job #%d %v",
		len(r.Jobs), r.Parallel, r.Wall.Round(time.Millisecond), r.Work().Round(time.Millisecond),
		r.Overlap(), s.Index, s.Elapsed.Round(time.Millisecond))
}

// Map runs fn over jobs on up to parallel goroutines (<= 0 selects
// GOMAXPROCS) and returns the results in input order. Jobs must be
// independent: fn may not mutate state shared with other jobs. On error,
// the context passed to in-flight jobs is cancelled, no further jobs
// start, and the lowest-index error is returned — so the reported error
// does not depend on goroutine scheduling. parallel == 1 runs the jobs in
// the calling goroutine with no pool at all; any wider setting produces
// byte-identical results because jobs never read each other's output.
func Map[T, R any](ctx context.Context, parallel int, jobs []T, fn func(ctx context.Context, i int, job T) (R, error)) ([]R, *Report, error) {
	start := time.Now()
	parallel = Parallelism(parallel)
	if parallel > len(jobs) {
		parallel = len(jobs)
	}
	report := &Report{Parallel: parallel, Jobs: make([]JobTiming, len(jobs))}
	for i := range report.Jobs {
		report.Jobs[i].Index = i
	}
	results := make([]R, len(jobs))
	if len(jobs) == 0 {
		report.Wall = time.Since(start)
		return results, report, ctx.Err()
	}

	if parallel == 1 {
		for i, job := range jobs {
			if err := ctx.Err(); err != nil {
				report.Wall = time.Since(start)
				return nil, report, err
			}
			t0 := time.Now()
			res, err := fn(ctx, i, job)
			report.Jobs[i].Elapsed = time.Since(t0)
			if err != nil {
				report.Wall = time.Since(start)
				return nil, report, err
			}
			results[i] = res
		}
		report.Wall = time.Since(start)
		return results, report, nil
	}

	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, len(jobs))
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(jobs) || wctx.Err() != nil {
					return
				}
				t0 := time.Now()
				res, err := fn(wctx, i, jobs[i])
				report.Jobs[i].Elapsed = time.Since(t0)
				if err != nil {
					errs[i] = err
					cancel()
					return
				}
				results[i] = res
			}
		}()
	}
	wg.Wait()
	report.Wall = time.Since(start)
	// Lowest-index error wins; a sibling that failed only because the
	// cancellation reached it must not mask the original cause.
	var firstErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if firstErr == nil {
			firstErr = err
		}
		if !errors.Is(err, context.Canceled) {
			return nil, report, err
		}
	}
	if firstErr != nil {
		return nil, report, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, report, err
	}
	return results, report, nil
}

// Sweep runs fn over the index range [0, n) — the common shape of a
// figure sweep, where job i derives everything it needs (seed, sweep
// value) from its position.
func Sweep[R any](ctx context.Context, parallel, n int, fn func(ctx context.Context, i int) (R, error)) ([]R, *Report, error) {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return Map(ctx, parallel, idx, func(ctx context.Context, i, _ int) (R, error) {
		return fn(ctx, i)
	})
}
