package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestMapOrdersResults checks that results land in input order even when
// completion order is scrambled.
func TestMapOrdersResults(t *testing.T) {
	jobs := []int{8, 1, 5, 0, 3, 7, 2, 6, 4}
	for _, parallel := range []int{1, 2, 4, 16} {
		got, rep, err := Map(context.Background(), parallel, jobs,
			func(_ context.Context, i, job int) (string, error) {
				// Later-submitted jobs finish first.
				time.Sleep(time.Duration(len(jobs)-i) * time.Millisecond)
				return fmt.Sprintf("%d:%d", i, job), nil
			})
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		for i, job := range jobs {
			if want := fmt.Sprintf("%d:%d", i, job); got[i] != want {
				t.Errorf("parallel=%d: result[%d] = %q, want %q", parallel, i, got[i], want)
			}
		}
		if len(rep.Jobs) != len(jobs) {
			t.Errorf("parallel=%d: report has %d jobs, want %d", parallel, len(rep.Jobs), len(jobs))
		}
	}
}

// TestMapMatchesSerial checks the determinism contract: any parallelism
// yields exactly the serial results.
func TestMapMatchesSerial(t *testing.T) {
	jobs := make([]int, 64)
	for i := range jobs {
		jobs[i] = i * 31
	}
	fn := func(_ context.Context, i, job int) (float64, error) {
		x := float64(job)
		for k := 0; k < 100; k++ {
			x = x*1.0000001 + float64(i)
		}
		return x, nil
	}
	serial, _, err := Map(context.Background(), 1, jobs, fn)
	if err != nil {
		t.Fatal(err)
	}
	for _, parallel := range []int{2, 8, 64} {
		par, _, err := Map(context.Background(), parallel, jobs, fn)
		if err != nil {
			t.Fatal(err)
		}
		for i := range serial {
			if serial[i] != par[i] {
				t.Fatalf("parallel=%d: result[%d] = %v, want %v (bit-exact)", parallel, i, par[i], serial[i])
			}
		}
	}
}

// TestMapFirstErrorWins checks that the lowest-index error is reported
// regardless of which worker hit an error first, and that later jobs are
// not started after cancellation.
func TestMapFirstErrorWins(t *testing.T) {
	errA := errors.New("job 2 failed")
	errB := errors.New("job 5 failed")
	var started atomic.Int64
	_, _, err := Map(context.Background(), 2, make([]int, 100),
		func(_ context.Context, i, _ int) (int, error) {
			started.Add(1)
			switch i {
			case 2:
				time.Sleep(20 * time.Millisecond) // loses the race...
				return 0, errA
			case 5:
				return 0, errB // ...but still wins the report
			}
			time.Sleep(time.Millisecond)
			return i, nil
		})
	if !errors.Is(err, errA) {
		t.Fatalf("got error %v, want lowest-index error %v", err, errA)
	}
	if n := started.Load(); n > 20 {
		t.Errorf("%d jobs started after early failure; cancellation not prompt", n)
	}
}

// TestMapCancelDoesNotMaskError checks that a sibling failing with the
// cancellation error does not hide the real cause.
func TestMapCancelDoesNotMaskError(t *testing.T) {
	real := errors.New("the real failure")
	_, _, err := Map(context.Background(), 2, []int{0, 1},
		func(ctx context.Context, i, _ int) (int, error) {
			if i == 1 {
				time.Sleep(5 * time.Millisecond)
				return 0, real
			}
			<-ctx.Done() // job 0 aborts only because job 1 failed
			return 0, ctx.Err()
		})
	if !errors.Is(err, real) {
		t.Fatalf("got %v, want %v", err, real)
	}
}

// TestMapContextCancellation checks that an already-cancelled context stops
// the serial path immediately.
func TestMapContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := 0
	_, _, err := Map(ctx, 1, []int{1, 2, 3}, func(context.Context, int, int) (int, error) {
		ran++
		return 0, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if ran != 0 {
		t.Errorf("%d jobs ran under a cancelled context", ran)
	}
}

// TestSweep checks the index-range helper.
func TestSweep(t *testing.T) {
	got, rep, err := Sweep(context.Background(), 4, 10, func(_ context.Context, i int) (int, error) {
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != i*i {
			t.Errorf("sweep[%d] = %d, want %d", i, got[i], i*i)
		}
	}
	if rep.Parallel > 10 {
		t.Errorf("parallel %d not clamped to job count", rep.Parallel)
	}
}

// TestMapEmpty checks the zero-job edge.
func TestMapEmpty(t *testing.T) {
	res, rep, err := Map(context.Background(), 4, nil, func(context.Context, int, int) (int, error) {
		return 0, nil
	})
	if err != nil || len(res) != 0 || len(rep.Jobs) != 0 {
		t.Fatalf("empty map: res=%v rep=%v err=%v", res, rep, err)
	}
}

// TestParallelism checks the default resolution.
func TestParallelism(t *testing.T) {
	if Parallelism(3) != 3 {
		t.Error("explicit parallelism not respected")
	}
	if Parallelism(0) < 1 || Parallelism(-1) < 1 {
		t.Error("defaulted parallelism must be >= 1")
	}
}

// TestReport checks the observability surface.
func TestReport(t *testing.T) {
	_, rep, err := Map(context.Background(), 2, []int{0, 1, 2},
		func(_ context.Context, i, _ int) (int, error) {
			time.Sleep(time.Duration(i+1) * 5 * time.Millisecond)
			return 0, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Work() < rep.Slowest().Elapsed {
		t.Errorf("work %v < slowest %v", rep.Work(), rep.Slowest().Elapsed)
	}
	if rep.Slowest().Index != 2 {
		t.Errorf("slowest job = #%d, want #2", rep.Slowest().Index)
	}
	if s := rep.String(); !strings.Contains(s, "3 jobs on 2 workers") {
		t.Errorf("report string %q missing summary", s)
	}
}
