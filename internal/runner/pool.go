package runner

import (
	"container/heap"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Pool is the persistent sibling of Map: a fixed set of workers draining
// a bounded admission queue. Map fits one sweep whose jobs all exist up
// front; a long-running service (cmd/scenariod) instead receives jobs
// continuously from many clients and needs admission control — a full
// queue must reject new work immediately rather than let goroutines and
// memory grow without bound.
//
// Scheduling is FIFO within priority: higher Priority values run first,
// and jobs of equal priority run in submission order. The pool makes no
// determinism claims beyond that — it executes side-effecting jobs, and
// any result ordering is the caller's concern (the scenario store's
// content addressing is what keeps concurrently-scheduled simulation
// results deterministic).
var (
	// ErrQueueFull rejects a Submit when the admission queue is at
	// capacity. The caller owns backpressure (scenariod maps it to HTTP
	// 503); the pool never blocks a submitter.
	ErrQueueFull = errors.New("runner: admission queue full")
	// ErrPoolClosed rejects work submitted after Close.
	ErrPoolClosed = errors.New("runner: pool closed")
)

// PoolJob is one unit of queued work. The cancelled flag is true when
// the job will never run because the pool shut down first; the job must
// still complete its bookkeeping (release waiters, record the error) —
// quickly and without doing the work.
type PoolJob func(cancelled bool)

// poolItem orders the queue: priority descending, then sequence
// ascending (FIFO within one priority class).
type poolItem struct {
	priority int
	seq      uint64
	job      PoolJob
}

type poolHeap []poolItem

func (h poolHeap) Len() int { return len(h) }
func (h poolHeap) Less(i, j int) bool {
	if h[i].priority != h[j].priority {
		return h[i].priority > h[j].priority
	}
	return h[i].seq < h[j].seq
}
func (h poolHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *poolHeap) Push(x any)   { *h = append(*h, x.(poolItem)) }
func (h *poolHeap) Pop() any     { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

// Pool runs jobs on a fixed worker set behind a bounded priority queue.
type Pool struct {
	depth int

	mu     sync.Mutex
	cond   *sync.Cond
	queue  poolHeap
	seq    uint64
	closed bool
	peak   int

	wg sync.WaitGroup

	submitted atomic.Int64
	executed  atomic.Int64
	rejected  atomic.Int64
	cancelled atomic.Int64
}

// NewPool starts workers (<= 0 selects GOMAXPROCS) draining a queue of
// at most depth pending jobs (<= 0 selects 4x the worker count, a small
// queue by design: admission control beats buffering for a service
// whose jobs each take milliseconds to seconds).
func NewPool(workers, depth int) *Pool {
	workers = Parallelism(workers)
	if depth <= 0 {
		depth = 4 * workers
	}
	p := &Pool{depth: depth}
	p.cond = sync.NewCond(&p.mu)
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.queue) == 0 && p.closed {
			p.mu.Unlock()
			return
		}
		it := heap.Pop(&p.queue).(poolItem)
		p.mu.Unlock()
		it.job(false)
		p.executed.Add(1)
	}
}

// Submit enqueues a job, failing fast with ErrQueueFull when the
// admission queue is at capacity and ErrPoolClosed after Close. It
// never blocks.
func (p *Pool) Submit(priority int, job PoolJob) error {
	return p.push(priority, job, true)
}

// SubmitAdmitted enqueues a job that was already admitted once —
// parked work being flushed back into the pool (scenariod's warmup
// batching holds same-family jobs aside while the family's shared
// checkpoint warms, then re-submits them). It bypasses the depth bound
// so admitted work cannot be rejected late, and fails only when the
// pool is closed.
func (p *Pool) SubmitAdmitted(priority int, job PoolJob) error {
	return p.push(priority, job, false)
}

func (p *Pool) push(priority int, job PoolJob, bounded bool) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrPoolClosed
	}
	if bounded && len(p.queue) >= p.depth {
		p.mu.Unlock()
		p.rejected.Add(1)
		return ErrQueueFull
	}
	p.seq++
	heap.Push(&p.queue, poolItem{priority: priority, seq: p.seq, job: job})
	if len(p.queue) > p.peak {
		p.peak = len(p.queue)
	}
	p.mu.Unlock()
	p.submitted.Add(1)
	p.cond.Signal()
	return nil
}

// Close stops the pool: queued-but-unstarted jobs are completed with
// cancelled=true (synchronously, in queue order), in-flight jobs finish
// normally, and Close returns when every worker has exited. Further
// submissions fail with ErrPoolClosed.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	pending := make([]poolItem, 0, len(p.queue))
	for len(p.queue) > 0 {
		pending = append(pending, heap.Pop(&p.queue).(poolItem))
	}
	p.mu.Unlock()
	p.cond.Broadcast()
	for _, it := range pending {
		it.job(true)
		p.cancelled.Add(1)
	}
	p.wg.Wait()
}

// PoolMetrics is a point-in-time snapshot of pool activity.
type PoolMetrics struct {
	// Submitted counts accepted jobs; Executed those run by a worker;
	// Rejected those refused with ErrQueueFull; Cancelled those
	// completed with cancelled=true at Close.
	Submitted, Executed, Rejected, Cancelled int64
	// QueueLen is the instantaneous queue length, QueuePeak the high
	// watermark, QueueDepth the admission bound.
	QueueLen, QueuePeak, QueueDepth int
}

// Metrics snapshots the counters.
func (p *Pool) Metrics() PoolMetrics {
	p.mu.Lock()
	qlen, peak := len(p.queue), p.peak
	p.mu.Unlock()
	return PoolMetrics{
		Submitted:  p.submitted.Load(),
		Executed:   p.executed.Load(),
		Rejected:   p.rejected.Load(),
		Cancelled:  p.cancelled.Load(),
		QueueLen:   qlen,
		QueuePeak:  peak,
		QueueDepth: p.depth,
	}
}

// String renders the one-line queue report for /metrics logs.
func (m PoolMetrics) String() string {
	return fmt.Sprintf("pool: %d submitted / %d executed / %d rejected / %d cancelled | queue %d now, %d peak, %d cap",
		m.Submitted, m.Executed, m.Rejected, m.Cancelled, m.QueueLen, m.QueuePeak, m.QueueDepth)
}
