package sim

import (
	"fmt"
	"strings"

	"repro/internal/isa"
)

// PipeEvent records the pipeline lifetime of one committed instruction.
type PipeEvent struct {
	Seq      uint64
	PC       int
	Text     string
	Dispatch int64
	Issue    int64
	Complete int64
	Commit   int64
	// Accel marks TCA invocations (rendered distinctly).
	Accel bool
}

// RenderPipeTrace draws a Konata-style text pipeline diagram:
//
//	D dispatched (in the issue queue)   E executing   . done, waiting
//	C commit                            A accelerator executing
//
// Long traces are windowed to the first maxCols cycles of activity.
func RenderPipeTrace(events []PipeEvent, maxCols int) string {
	if len(events) == 0 {
		return "(no pipeline events)\n"
	}
	if maxCols <= 0 {
		maxCols = 100
	}
	start := events[0].Dispatch
	var b strings.Builder
	fmt.Fprintf(&b, "pipeline trace (cycle %d onward; D=dispatched E=executing A=accel .=done C=commit)\n", start)
	for _, e := range events {
		if e.Dispatch-start >= int64(maxCols) {
			fmt.Fprintf(&b, "... trace window ends at cycle %d\n", start+int64(maxCols))
			break
		}
		var line strings.Builder
		for cyc := start; cyc <= e.Commit && cyc-start < int64(maxCols); cyc++ {
			switch {
			case cyc < e.Dispatch:
				line.WriteByte(' ')
			case cyc < e.Issue:
				line.WriteByte('D')
			case cyc < e.Complete:
				if e.Accel {
					line.WriteByte('A')
				} else {
					line.WriteByte('E')
				}
			case cyc < e.Commit:
				line.WriteByte('.')
			default:
				line.WriteByte('C')
			}
		}
		fmt.Fprintf(&b, "%-28s |%s\n", truncate(e.Text, 27), line.String())
	}
	return b.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "~"
}

// recordPipeEvent appends a commit-time trace record if tracing is active.
func (c *Core) recordPipeEvent(h *robHot, e *robEntry) {
	if c.cfg.PipeTraceLimit <= 0 || len(c.stats.PipeTrace) >= c.cfg.PipeTraceLimit {
		return
	}
	c.stats.PipeTrace = append(c.stats.PipeTrace, PipeEvent{
		Seq:      h.seq,
		PC:       e.pc,
		Text:     e.in.String(),
		Dispatch: e.dispatchCycle,
		Issue:    e.issueCycle,
		Complete: h.readyCycle,
		Commit:   c.now,
		Accel:    h.op == isa.OpAccel,
	})
}
