package sim

import (
	"fmt"
	"strings"
)

// StallBreakdown counts cycles in which dispatch made no progress,
// attributed to the oldest blocking cause.
type StallBreakdown struct {
	// Barrier counts cycles stalled on the NT dispatch barrier — the
	// quantity the analytical model's fill penalty estimates.
	Barrier int64
	// ROBFull, IQFull, LSQFull count back-pressure stalls.
	ROBFull int64
	IQFull  int64
	LSQFull int64
	// FrontEnd counts cycles with no fetched instruction available
	// (refill after squash, or fetch stopped at halt).
	FrontEnd int64
}

// Total returns all stall cycles.
func (s StallBreakdown) Total() int64 {
	return s.Barrier + s.ROBFull + s.IQFull + s.LSQFull + s.FrontEnd
}

// AccelEvent records the lifetime of one committed TCA invocation
// (cycles are absolute).
type AccelEvent struct {
	Seq      uint64
	Dispatch int64
	Start    int64 // execution start (after any NL drain wait)
	Done     int64 // all compute and memory micro-ops complete
	Commit   int64
}

// Stats aggregates one simulation run.
type Stats struct {
	Cycles    int64
	Committed uint64
	Fetched   uint64
	Squashed  uint64

	Branches    uint64
	Mispredicts uint64

	Loads          uint64
	Stores         uint64
	LoadsForwarded uint64

	AccelCommitted  uint64
	AccelSquashed   uint64
	AccelBusyCycles int64
	AccelMemOps     uint64
	// AccelDrainWait is total cycles committed accel invocations spent
	// ready-but-held by the NL (execute-at-head) restriction.
	AccelDrainWait int64
	// AccelConfidenceWait counts cycles invocations were held by the
	// partial-speculation confidence gate (Config.PartialSpeculation).
	AccelConfidenceWait int64

	// AccelPhases counts schedule phases executed by engine devices —
	// devices returning an explicit AccelResult.Schedule. Scalar-latency
	// devices run through the same engine as a synthesized single phase
	// but leave this zero, keeping legacy Stats bit-identical.
	AccelPhases uint64
	// AccelOverlapCycles is memory time hidden under compute (or vice
	// versa) by Overlap phases — the cycles a decoupled access/execute
	// device saves over a monolithic TCA with the same traffic. Zero for
	// scalar-latency devices.
	AccelOverlapCycles int64

	DispatchStalls StallBreakdown

	// ROBOccupancySum accumulates per-cycle occupancy for averaging.
	ROBOccupancySum int64

	// FastForwardedCycles counts cycles elided by the event-horizon
	// scheduler (zero under Config.NoFastForward); FastForwardJumps
	// counts the jumps. Every other statistic is independent of them —
	// host-time observability counters, not simulated-machine state.
	FastForwardedCycles int64
	FastForwardJumps    int64

	// AccelEvents is populated when Config.RecordAccelEvents is set.
	//lint:exempt-field R9 Stats.AccelEvents per-invocation trace consumed by interval analysis, too long for String
	AccelEvents []AccelEvent

	// PipeTrace is populated when Config.PipeTraceLimit is set.
	//lint:exempt-field R9 Stats.PipeTrace rendered by RenderPipeTrace, too long for String
	PipeTrace []PipeEvent
}

// IPC returns committed instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}

// MispredictRate returns mispredicts per conditional branch.
func (s Stats) MispredictRate() float64 {
	if s.Branches == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Branches)
}

// AvgROBOccupancy returns the mean number of in-flight instructions.
func (s Stats) AvgROBOccupancy() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.ROBOccupancySum) / float64(s.Cycles)
}

// CPIStack attributes execution cycles Eyerman-style from the front end's
// perspective: each cycle is charged to the cause that ended its dispatch
// (possibly after partial progress), or counted Active when the full width
// dispatched. Shares sum to 1. This is the measured counterpart of the
// model's interval picture (Fig. 3).
type CPIStack struct {
	Cycles     int64
	Dispatched uint64 // committed + squashed instructions

	// Shares of total cycles (0..1).
	Active   float64 // some dispatch happened
	Barrier  float64 // NT dispatch barrier
	ROBFull  float64
	IQFull   float64
	LSQFull  float64
	FrontEnd float64
}

// CPIStack computes the breakdown.
func (s Stats) CPIStack() CPIStack {
	st := CPIStack{Cycles: s.Cycles, Dispatched: s.Committed + s.Squashed}
	if s.Cycles == 0 {
		return st
	}
	f := func(v int64) float64 { return float64(v) / float64(s.Cycles) }
	st.Barrier = f(s.DispatchStalls.Barrier)
	st.ROBFull = f(s.DispatchStalls.ROBFull)
	st.IQFull = f(s.DispatchStalls.IQFull)
	st.LSQFull = f(s.DispatchStalls.LSQFull)
	st.FrontEnd = f(s.DispatchStalls.FrontEnd)
	st.Active = 1 - st.Barrier - st.ROBFull - st.IQFull - st.LSQFull - st.FrontEnd
	return st
}

// String renders the stack as a one-line breakdown.
func (c CPIStack) String() string {
	return fmt.Sprintf("active %.1f%% | barrier %.1f%% | robfull %.1f%% | iqfull %.1f%% | lsqfull %.1f%% | frontend %.1f%%",
		100*c.Active, 100*c.Barrier, 100*c.ROBFull, 100*c.IQFull, 100*c.LSQFull, 100*c.FrontEnd)
}

// String renders a human-readable report.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycles            %d\n", s.Cycles)
	fmt.Fprintf(&b, "committed         %d (IPC %.3f)\n", s.Committed, s.IPC())
	fmt.Fprintf(&b, "fetched/squashed  %d / %d\n", s.Fetched, s.Squashed)
	fmt.Fprintf(&b, "branches          %d (%.2f%% mispredicted)\n", s.Branches, 100*s.MispredictRate())
	fmt.Fprintf(&b, "loads/stores      %d / %d (%d forwarded)\n", s.Loads, s.Stores, s.LoadsForwarded)
	fmt.Fprintf(&b, "rob occupancy     %.1f avg\n", s.AvgROBOccupancy())
	fmt.Fprintf(&b, "dispatch stalls   barrier=%d robfull=%d iqfull=%d lsqfull=%d frontend=%d\n",
		s.DispatchStalls.Barrier, s.DispatchStalls.ROBFull, s.DispatchStalls.IQFull,
		s.DispatchStalls.LSQFull, s.DispatchStalls.FrontEnd)
	if s.AccelCommitted > 0 || s.AccelSquashed > 0 {
		fmt.Fprintf(&b, "accel             %d committed, %d squashed, %d busy cycles, %d mem ops, %d drain-wait cycles\n",
			s.AccelCommitted, s.AccelSquashed, s.AccelBusyCycles, s.AccelMemOps, s.AccelDrainWait)
	}
	if s.AccelConfidenceWait > 0 {
		fmt.Fprintf(&b, "accel conf-wait   %d cycles held by the partial-speculation confidence gate\n",
			s.AccelConfidenceWait)
	}
	if s.AccelPhases > 0 || s.AccelOverlapCycles > 0 {
		fmt.Fprintf(&b, "accel engine      %d schedule phases, %d overlap cycles hidden\n",
			s.AccelPhases, s.AccelOverlapCycles)
	}
	if s.FastForwardJumps > 0 {
		fmt.Fprintf(&b, "fast-forward      %d cycles skipped in %d jumps\n",
			s.FastForwardedCycles, s.FastForwardJumps)
	}
	return b.String()
}
