package sim

import (
	"fmt"
	"testing"

	"repro/internal/accel"
	"repro/internal/isa"
	"repro/internal/proggen"
	"repro/internal/tcmalloc"
)

// partialProgram builds a loop whose accelerator invocations sit behind a
// hard-to-predict (data-dependent alternating) branch, the scenario the
// paper's §VIII partial-speculation proposal targets.
func partialProgram(iters int) *isa.Program {
	b := isa.NewBuilder()
	b.MovI(isa.R(1), 0) // i
	b.MovI(isa.R(2), int64(iters))
	b.MovI(isa.R(3), 48) // malloc size
	b.MovI(isa.R(7), 4)
	b.Label("loop")
	// The skip branch is taken every 4th iteration, so the predictor
	// settles on not-taken (falling through to the invocations) and the
	// occasional taken outcome squashes speculatively started
	// invocations; the slow divide delays resolution long enough for
	// them to start. The 25% surprise rate keeps the counter bouncing,
	// so the confidence gate engages regularly.
	b.Rem(isa.R(4), isa.R(1), isa.R(7))
	b.Beq(isa.R(4), isa.RZero, "skip")
	b.Accel(isa.R(5), accel.HeapMalloc, isa.R(3))
	b.Accel(isa.R(6), accel.HeapFree, isa.R(5))
	b.Label("skip")
	b.AddI(isa.R(1), isa.R(1), 1)
	b.Blt(isa.R(1), isa.R(2), "loop")
	b.Halt()
	return b.MustBuild()
}

func heapDev() isa.AccelDevice {
	a := tcmalloc.New(0x100000, 1<<20)
	if err := a.Refill(1, 64); err != nil {
		panic(err)
	}
	return accel.NewHeap(a)
}

func TestPartialSpeculationReducesSquashedInvocations(t *testing.T) {
	prog := partialProgram(300)
	run := func(partial bool) Stats {
		cfg := HighPerfConfig()
		cfg.Mode = accel.LT
		cfg.PartialSpeculation = partial
		cfg.Predictor = PredictorConfig{Kind: "bimodal"}
		core, err := New(cfg, prog, heapDev())
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Run(10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats
	}
	full := run(false)
	part := run(true)
	if full.AccelCommitted != part.AccelCommitted {
		t.Fatalf("committed invocations differ: %d vs %d", full.AccelCommitted, part.AccelCommitted)
	}
	// The whole point: far fewer speculative invocations are wasted.
	if part.AccelSquashed >= full.AccelSquashed {
		t.Errorf("partial speculation squashed %d invocations, full speculation %d — gate ineffective",
			part.AccelSquashed, full.AccelSquashed)
	}
	if part.AccelConfidenceWait == 0 {
		t.Error("confidence gate never held an invocation on an alternating branch")
	}
	if full.AccelConfidenceWait != 0 {
		t.Error("full speculation must never consult the confidence gate")
	}
}

func TestPartialSpeculationBetweenLAndNL(t *testing.T) {
	prog := partialProgram(300)
	cycles := func(mode accel.Mode, partial bool) int64 {
		cfg := HighPerfConfig()
		cfg.Mode = mode
		cfg.PartialSpeculation = partial
		cfg.Predictor = PredictorConfig{Kind: "bimodal"}
		core, err := New(cfg, prog, heapDev())
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Run(10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.Cycles
	}
	lt := cycles(accel.LT, false)
	plt := cycles(accel.LT, true)
	nlt := cycles(accel.NLT, false)
	// The paper positions the design "somewhere between the L and NL
	// modes": never faster than full speculation, never slower than no
	// speculation (allow a little simulation noise).
	if plt < lt {
		t.Errorf("partial (%d cycles) beat full speculation (%d)", plt, lt)
	}
	slack := nlt + nlt/20
	if plt > slack {
		t.Errorf("partial (%d cycles) slower than NL (%d)", plt, nlt)
	}
}

func TestPartialSpeculationIgnoredInNLModes(t *testing.T) {
	prog := partialProgram(100)
	cfg := HighPerfConfig()
	cfg.Mode = accel.NLT
	cfg.PartialSpeculation = true
	core, err := New(cfg, prog, heapDev())
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.AccelConfidenceWait != 0 {
		t.Error("confidence gate active in an NL mode")
	}
}

// Equivalence must hold with the gate on: partial speculation changes
// timing only, never architectural results.
func TestPartialSpeculationEquivalence(t *testing.T) {
	opt := proggen.DefaultOptions()
	opt.AccelEvery = 2
	opt.HeapAccel = true
	for seed := int64(400); seed < 406; seed++ {
		prog := proggen.Generate(seed, opt)
		for _, m := range []accel.Mode{accel.LT, accel.LNT} {
			t.Run(fmt.Sprintf("seed%d-%s", seed, m), func(t *testing.T) {
				cfg := HighPerfConfig()
				cfg.Mode = m
				cfg.PartialSpeculation = true
				cfg.Predictor = PredictorConfig{Kind: "bimodal"}
				runBoth(t, cfg, prog, func() isa.AccelDevice {
					a := tcmalloc.New(0x200000, 1<<22)
					for c := 0; c < tcmalloc.NumClasses; c++ {
						if err := a.Refill(c, 256); err != nil {
							panic(err)
						}
					}
					return accel.NewHeap(a)
				})
			})
		}
	}
}
