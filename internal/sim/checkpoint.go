package sim

import (
	"fmt"
	"sync"

	"repro/internal/bpred"
	"repro/internal/isa"
	"repro/internal/mem"
)

// Warm-state checkpointing.
//
// A Checkpoint is a deterministic deep snapshot of a paused Core — complete
// architectural state (registers, memory, program position) plus the
// microarchitectural state a bit-identical resume needs: the ROB slabs,
// rename table, fetch queue, completion heap, functional-unit and port
// reservations, cache/TLB/DRAM/predictor state, the TCA store arena and
// busy time, and every Stats counter. Resume (NewFromCheckpoint) rebuilds a
// Core that continues exactly as the original would have — the differential
// suite in checkpoint_test.go asserts byte-identical Stats and pipe traces
// against an uninterrupted run.
//
// Snapshot-legality invariant (see DESIGN.md "Warm-state checkpointing"):
// a Checkpoint may only be taken at a cycle boundary — between Run* calls —
// where the per-cycle scratch (due batch, quiet flag, cycleStall /
// cycleHeldAccel / cycleConfWait trackers, device pending-store scratch,
// the pause plumbing itself) is dead by construction; that scratch is
// deliberately absent from the snapshot.

// RenameEntry is one architectural register's rename-table slot.
type RenameEntry struct {
	Valid bool
	Seq   uint64
}

// Checkpoint is a resumable snapshot of a paused Core. All slice fields are
// deep copies: a Checkpoint is immutable once taken, so any number of forks
// may resume from the same value concurrently.
type Checkpoint struct {
	// Config is the canonical configuration the snapshot was taken under.
	// A resume config must match it — or, when SuffixFree is set, match it
	// up to the warmup-irrelevant suffix fields (Config.WarmupCanonical).
	Config Config
	// ProgHash fingerprints the program (code and initial memory image);
	// resuming under a different program is rejected.
	ProgHash uint64

	Now             int64
	Seq             uint64
	Halted          bool
	LastCommitCycle int64
	// SawAccelFetch records whether an OpAccel has entered fetch (the
	// RunToAccelFetch pause boundary); SuffixFree records that no OpAccel
	// has dispatched yet, i.e. no suffix configuration field (Mode,
	// PartialSpeculation, RecordAccelEvents) has been consulted, which is
	// what licenses cross-mode resume from one warm snapshot.
	SawAccelFetch bool
	SuffixFree    bool

	ARF    [isa.NumRegs]uint64
	Rename [isa.NumRegs]RenameEntry

	// ROBHot/ROBCold are the in-flight window, rebased oldest-first.
	ROBHot  []robHot
	ROBCold []robEntry

	// Arena backs the ROB entries' pending-store spans; LiveStores counts
	// resident invocations holding spans.
	Arena      []isa.AccelStore
	LiveStores int

	IQCount     int
	LSQCount    int
	IssuedCount int

	// FetchQ is the front-end queue, rebased to drop the consumed prefix.
	FetchQ        []fetchedInst
	FetchPC       int
	FetchResumeAt int64
	FetchStopped  bool
	CurFetchLine  int64

	BarrierSeq    uint64
	BarrierActive bool

	FreeUnits [numFUClasses][]int64
	Ports     []int64

	TCABusyUntil int64

	// Pend is the completion min-heap's backing array verbatim (the heap
	// layout is deterministic, so copying it preserves pop order).
	Pend []compRecord

	Stats Stats

	Mem  isa.MemoryState
	Hier mem.HierarchyState
	Pred bpred.State

	// DeviceState is the attached device's snapshot frame (nil when no
	// device is attached); DevicePristine records that the device was
	// never invoked, so a resume may substitute any freshly-constructed
	// device of the same configuration.
	DeviceState    []byte
	DevicePristine bool
}

// progHashes memoizes program fingerprints by pointer. Built programs
// are immutable, so the pointer stands for the content; memoization
// only avoids re-walking a multi-megabyte instruction stream on every
// Checkpoint/NewFromCheckpoint of the same program.
var progHashes sync.Map // *isa.Program -> uint64

// progHashCached returns the memoized fingerprint, computing it on
// first sight of a program.
func progHashCached(p *isa.Program) uint64 {
	if h, ok := progHashes.Load(p); ok {
		return h.(uint64)
	}
	h := progHash(p)
	progHashes.Store(p, h)
	return h
}

// progHash fingerprints a program with FNV-1a over its code and initial
// memory image.
func progHash(p *isa.Program) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	mix(uint64(len(p.Code)))
	for _, in := range p.Code {
		mix(uint64(in.Op) | uint64(in.Dst)<<8 | uint64(in.Src1)<<16 | uint64(in.Src2)<<24 | uint64(in.Src3)<<32)
		mix(uint64(in.Imm))
	}
	mix(uint64(len(p.Init)))
	for _, mi := range p.Init {
		mix(mi.Addr)
		mix(mi.Data)
	}
	return h
}

// Checkpoint captures the core's complete state at the current cycle
// boundary. It fails when the attached device has been invoked but does not
// implement isa.AccelSnapshotter (its state could not be reproduced on
// resume).
func (c *Core) Checkpoint() (*Checkpoint, error) {
	ck := &Checkpoint{
		Config:          c.cfg.Canonical(),
		ProgHash:        progHashCached(c.prog),
		Now:             c.now,
		Seq:             c.seq,
		Halted:          c.halted,
		LastCommitCycle: c.lastCommitCycle,
		SawAccelFetch:   c.sawAccelFetch,
		SuffixFree:      !c.accelDispatched,
		ARF:             c.arf,
		Arena:           append([]isa.AccelStore(nil), c.accelArena...),
		LiveStores:      c.liveStores,
		IQCount:         c.iqCount,
		LSQCount:        c.lsqCount,
		IssuedCount:     c.issuedCount,
		FetchQ:          append([]fetchedInst(nil), c.fetchQ[c.fetchHead:]...),
		FetchPC:         c.fetchPC,
		FetchResumeAt:   c.fetchResumeAt,
		FetchStopped:    c.fetchStopped,
		CurFetchLine:    c.curFetchLine,
		BarrierSeq:      c.barrierSeq,
		BarrierActive:   c.barrierActive,
		Ports:           append([]int64(nil), c.ports...),
		TCABusyUntil:    c.tcaBusyUntil,
		Pend:            append([]compRecord(nil), c.pend...),
		Stats:           c.stats.Clone(),
		Mem:             c.mem.Snapshot(),
		Hier:            c.hier.Snapshot(),
		DevicePristine:  !c.accelEverInvoked,
	}
	for r := range c.rename {
		ck.Rename[r] = RenameEntry{Valid: c.rename[r].valid, Seq: c.rename[r].seq}
	}
	n := c.rob.len()
	ck.ROBHot = make([]robHot, n)
	ck.ROBCold = make([]robEntry, n)
	for i := 0; i < n; i++ {
		ck.ROBHot[i] = *c.rob.hotAt(i)
		ck.ROBCold[i] = *c.rob.at(i)
	}
	for cl := range c.fu {
		ck.FreeUnits[cl] = append([]int64(nil), c.fu[cl]...)
	}
	ps, err := bpred.Snapshot(c.pred)
	if err != nil {
		return nil, fmt.Errorf("sim: checkpoint: %w", err)
	}
	ck.Pred = ps
	if c.dev != nil {
		snap, ok := c.dev.(isa.AccelSnapshotter)
		if !ok {
			if c.accelEverInvoked {
				return nil, fmt.Errorf("sim: checkpoint: device %q has been invoked but does not implement isa.AccelSnapshotter", c.dev.Name())
			}
		} else {
			ck.DeviceState = snap.SnapshotState()
		}
	}
	return ck, nil
}

// compatibleWith reports whether a resume under cfg may use this snapshot:
// either the canonical configs match exactly, or the snapshot predates any
// accel dispatch (SuffixFree) and the configs agree on everything but the
// warmup-irrelevant suffix fields.
func (ck *Checkpoint) compatibleWith(cfg Config) bool {
	want := cfg.Canonical()
	if want == ck.Config {
		return true
	}
	return ck.SuffixFree && want.WarmupCanonical() == ck.Config.WarmupCanonical()
}

// NewFromCheckpoint builds a Core resuming from ck under cfg. The config
// must be checkpoint-compatible (see Checkpoint.Config), the program must
// hash-match the one the snapshot was taken from, and dev must be a fresh
// device of the snapshot's configuration: its state frame is restored when
// the snapshot carries one, otherwise the snapshot must be device-pristine.
// ck itself is never mutated or aliased, so N forks may resume from one
// value concurrently.
func NewFromCheckpoint(cfg Config, prog *isa.Program, dev isa.AccelDevice, ck *Checkpoint) (*Core, error) {
	if !ck.compatibleWith(cfg) {
		return nil, fmt.Errorf("sim: resume config incompatible with checkpoint (taken under %q-canonical form; post-warmup fields may differ only for suffix-free snapshots)", ck.Config.Name)
	}
	if h := progHashCached(prog); h != ck.ProgHash {
		return nil, fmt.Errorf("sim: resume program hash %#x does not match checkpoint %#x", h, ck.ProgHash)
	}
	c, err := New(cfg, prog, dev)
	if err != nil {
		return nil, err
	}
	if err := c.restoreFrom(ck); err != nil {
		return nil, err
	}
	return c, nil
}

// restoreFrom fills a freshly-built Core from a snapshot. It is one of the
// three sanctioned Core.now writers (simlint R6): the clock moves exactly
// once, before any stage runs.
func (c *Core) restoreFrom(ck *Checkpoint) error {
	if len(ck.ROBHot) != len(ck.ROBCold) {
		return fmt.Errorf("sim: corrupt checkpoint: %d hot vs %d cold ROB entries", len(ck.ROBHot), len(ck.ROBCold))
	}
	if len(ck.ROBHot) > c.rob.limit {
		return fmt.Errorf("sim: checkpoint holds %d ROB entries, config allows %d", len(ck.ROBHot), c.rob.limit)
	}
	if len(ck.Ports) != len(c.ports) {
		return fmt.Errorf("sim: checkpoint has %d memory ports, config has %d", len(ck.Ports), len(c.ports))
	}
	for cl := range c.fu {
		if len(ck.FreeUnits[cl]) != len(c.fu[cl]) {
			return fmt.Errorf("sim: checkpoint functional-unit class %d count mismatch", cl)
		}
	}
	c.now = ck.Now
	c.seq = ck.Seq
	c.halted = ck.Halted
	c.lastCommitCycle = ck.LastCommitCycle
	c.sawAccelFetch = ck.SawAccelFetch
	c.accelDispatched = !ck.SuffixFree
	c.arf = ck.ARF
	for r := range c.rename {
		c.rename[r].valid = ck.Rename[r].Valid
		c.rename[r].seq = ck.Rename[r].Seq
	}
	c.rob.head = 0
	c.rob.count = len(ck.ROBHot)
	copy(c.rob.hot, ck.ROBHot)
	copy(c.rob.cold, ck.ROBCold)
	c.accelArena = append(c.accelArena[:0], ck.Arena...)
	c.liveStores = ck.LiveStores
	c.iqCount = ck.IQCount
	c.lsqCount = ck.LSQCount
	c.issuedCount = ck.IssuedCount
	c.fetchQ = append(c.fetchQ[:0], ck.FetchQ...)
	c.fetchHead = 0
	c.fetchPC = ck.FetchPC
	c.fetchResumeAt = ck.FetchResumeAt
	c.fetchStopped = ck.FetchStopped
	c.curFetchLine = ck.CurFetchLine
	c.barrierSeq = ck.BarrierSeq
	c.barrierActive = ck.BarrierActive
	for cl := range c.fu {
		copy(c.fu[cl], ck.FreeUnits[cl])
	}
	copy(c.ports, ck.Ports)
	c.tcaBusyUntil = ck.TCABusyUntil
	c.pend = append(c.pend[:0], ck.Pend...)
	c.stats = ck.Stats.Clone()
	c.mem = isa.RestoreMemory(ck.Mem)
	if err := c.hier.Restore(ck.Hier); err != nil {
		return fmt.Errorf("sim: restore: %w", err)
	}
	if err := bpred.Restore(c.pred, ck.Pred); err != nil {
		return fmt.Errorf("sim: restore: %w", err)
	}
	c.accelEverInvoked = !ck.DevicePristine
	if ck.DeviceState != nil {
		snap, ok := c.dev.(isa.AccelSnapshotter)
		if !ok {
			return fmt.Errorf("sim: checkpoint carries device state but the attached device cannot restore it")
		}
		if err := snap.RestoreState(ck.DeviceState); err != nil {
			return fmt.Errorf("sim: restore: %w", err)
		}
	} else if !ck.DevicePristine {
		return fmt.Errorf("sim: checkpoint device was invoked but no state frame was captured")
	}
	return nil
}

// Clone returns a deep copy sharing no storage with ck.
func (ck *Checkpoint) Clone() *Checkpoint {
	out := *ck
	out.ROBHot = append([]robHot(nil), ck.ROBHot...)
	out.ROBCold = append([]robEntry(nil), ck.ROBCold...)
	out.Arena = append([]isa.AccelStore(nil), ck.Arena...)
	out.FetchQ = append([]fetchedInst(nil), ck.FetchQ...)
	out.FreeUnits = cloneUnitSlices(ck.FreeUnits)
	out.Ports = append([]int64(nil), ck.Ports...)
	out.Pend = append([]compRecord(nil), ck.Pend...)
	out.Stats = ck.Stats.Clone()
	out.Mem = cloneMemoryState(ck.Mem)
	out.Hier = cloneHierarchyState(ck.Hier)
	out.Pred = clonePredState(ck.Pred)
	out.DeviceState = append([]byte(nil), ck.DeviceState...)
	return &out
}

// Clone returns a deep copy of the statistics (the trace slices are the
// only reference fields).
func (s Stats) Clone() Stats {
	out := s
	out.AccelEvents = append([]AccelEvent(nil), s.AccelEvents...)
	out.PipeTrace = append([]PipeEvent(nil), s.PipeTrace...)
	return out
}

func cloneUnitSlices(fu [numFUClasses][]int64) [numFUClasses][]int64 {
	var out [numFUClasses][]int64
	for cl := range fu {
		out[cl] = append([]int64(nil), fu[cl]...)
	}
	return out
}

func cloneMemoryState(s isa.MemoryState) isa.MemoryState {
	out := s
	out.Pages = append([]isa.PageState(nil), s.Pages...)
	return out
}

func cloneCacheState(s mem.CacheState) mem.CacheState {
	out := s
	out.Lines = append([]mem.CacheLineState(nil), s.Lines...)
	out.Fills = append([]mem.FillState(nil), s.Fills...)
	return out
}

func cloneTLBState(s mem.TLBState) mem.TLBState {
	out := s
	out.Pages = append([]mem.TLBPageState(nil), s.Pages...)
	return out
}

func cloneHierarchyState(s mem.HierarchyState) mem.HierarchyState {
	out := s
	if s.L1I != nil {
		l1i := cloneCacheState(*s.L1I)
		out.L1I = &l1i
	}
	out.L1D = cloneCacheState(s.L1D)
	out.L2 = cloneCacheState(s.L2)
	if s.DTLB != nil {
		d := cloneTLBState(*s.DTLB)
		out.DTLB = &d
	}
	if s.ITLB != nil {
		d := cloneTLBState(*s.ITLB)
		out.ITLB = &d
	}
	return out
}

func clonePredState(s bpred.State) bpred.State {
	out := s
	out.Table = append([]uint8(nil), s.Table...)
	out.Pairs = append([]bpred.PredictorPair(nil), s.Pairs...)
	return out
}
