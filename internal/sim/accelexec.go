package sim

import (
	"math"

	"repro/internal/isa"
)

// devUsesMemory reports whether the attached device's invocations read or
// write program memory (and therefore need ordering against the LSQ).
func devUsesMemory(dev isa.AccelDevice) bool {
	if dev == nil {
		return false
	}
	if u, ok := dev.(isa.AccelMemoryUser); ok {
		return u.UsesProgramMemory()
	}
	// A device that writes memory necessarily uses it; reads are implied
	// by the storer interface for the devices in this repo.
	_, stores := dev.(isa.AccelStorer)
	return stores
}

// overlayReader presents architectural memory with older, not-yet-committed
// stores applied, so a (possibly speculative) TCA invocation observes
// program-order memory state. This is the model of the dependency-checking
// hardware the T and L modes require.
type overlayReader struct {
	base    *isa.Memory
	pending map[uint64]uint64 // word address -> data
}

// Load implements isa.WordReader.
func (o *overlayReader) Load(addr uint64) uint64 {
	if v, ok := o.pending[addr>>3]; ok {
		return v
	}
	return o.base.Load(addr)
}

// LoadFloat implements isa.WordReader.
func (o *overlayReader) LoadFloat(addr uint64) float64 {
	return math.Float64frombits(o.Load(addr))
}

// buildOverlay collects the in-flight writes older than ROB position pos.
// Callers guarantee every older store has executed (address and data known)
// and every older TCA invocation has started, so the overlay is complete.
func (c *Core) buildOverlay(pos int) *overlayReader {
	o := &overlayReader{base: c.mem, pending: make(map[uint64]uint64)}
	// Oldest-first so newer writes overwrite older ones to the same word.
	for i := 0; i < pos; i++ {
		switch oh := c.rob.hotAt(i); {
		case oh.op.IsStore():
			if e := c.rob.at(i); e.addrKnown {
				o.pending[e.addr>>3] = e.storeData
			}
		case oh.op == isa.OpAccel:
			if e := c.rob.at(i); e.accelStarted {
				for _, s := range c.accelStoresOf(e) {
					o.pending[s.Addr>>3] = s.Data
				}
			}
		}
	}
	return o
}

// tryStartAccel begins a TCA invocation when the mode and hazards allow:
//
//   - operands ready and the single TCA unit free;
//   - program-order invocation: no older invocation still pending (device
//     state such as the heap manager's free lists must mutate in order);
//   - non-Leading modes: the instruction must be the oldest in flight
//     (every leading instruction committed — the ROB drain);
//   - memory-view safety: every older store executed and, for
//     memory-using devices, every older invocation started.
//
// On start the device is invoked functionally against the overlay view, its
// state journal is marked for possible rollback, and its occupancy schedule
// is executed by the device engine (runEngine): one phase per scalar-latency
// device, arbitrary deterministic phase sequences for engine devices. The
// invocation completes (becomes commit-eligible) when every phase's
// micro-operations have finished, as the paper's methodology requires.
func (c *Core) tryStartAccel(pos int, h *robHot, e *robEntry, olderStorePending, olderAccelPending, olderMemAccelPending, lowConfidencePath bool) bool {
	if h.pendMask != 0 || olderAccelPending {
		return false
	}
	if c.tcaBusyUntil > c.now {
		return false
	}
	if !c.cfg.Mode.Leading() && pos != 0 {
		// Held by the NL restriction while operands were ready. Only the
		// oldest waiting invocation reaches here (younger ones fail the
		// olderAccelPending check above), so at most one entry per cycle
		// records the hold — fastForward replicates it per skipped cycle.
		e.accelHeld++
		c.cycleHeldAccel = e
		return false
	}
	// Partial speculation (§VIII future work): hold speculative starts
	// while a low-confidence branch is unresolved ahead of us.
	if lowConfidencePath && pos != 0 {
		c.stats.AccelConfidenceWait++
		c.cycleConfWait = true
		return false
	}
	// Only devices that read program memory must wait for older writes to
	// resolve; register-operand devices (heap tables, fixed-latency
	// blocks) start as soon as dispatched, as the model assumes.
	if devUsesMemory(c.dev) && (olderStorePending || olderMemAccelPending) {
		return false
	}

	if j, ok := c.dev.(isa.AccelJournal); ok {
		e.accelMark = j.Mark()
		e.accelHasMark = true
	}
	call := isa.AccelCall{
		Kind: e.in.Imm,
		Args: [3]uint64{e.operandValue(0), e.operandValue(1), e.operandValue(2)},
	}
	res, stores := isa.InvokeAndCollect(c.dev, call, c.buildOverlay(pos))
	c.accelEverInvoked = true
	e.accelStarted = true
	e.accelStart = c.now
	e.val = res.Value
	// The invocation's stores go into the shared arena; program-order
	// invocation starts mean squashed spans always form the arena suffix.
	e.storeOff = len(c.accelArena)
	c.accelArena = append(c.accelArena, stores...)
	e.storeCount = len(stores)
	if len(stores) > 0 {
		c.liveStores++
	}
	// Run the device engine: a scalar result is the degenerate one-phase
	// schedule, executed through the same path (runEngine) so the legacy
	// contract and the phased contract cannot drift apart.
	phases := res.Schedule
	if phases == nil {
		var one [1]isa.AccelPhase
		one[0] = isa.AccelPhase{Compute: res.Latency, MemOps: res.MemOps}
		phases = one[:]
	} else {
		c.stats.AccelPhases += uint64(len(phases))
	}
	end, memOps := c.runEngine(phases)
	e.accelMemOps = memOps
	c.stats.AccelMemOps += uint64(memOps)

	h.state = sIssued
	h.readyCycle = end
	c.tcaBusyUntil = end
	c.stats.AccelBusyCycles += end - c.now
	return true
}

// runEngine executes a device engine's occupancy schedule starting at the
// current cycle and returns the completion cycle plus the total memory
// operation count. Per phase: loads first, then compute, then stores. Each
// memory operation is one arbitration through the shared ports into the
// data hierarchy (the paper: "all memory requests required by the
// accelerator pass through arbitration for shared access to the core's LSQ
// and memory hierarchy"). Independent loads overlap; Serial loads chain
// behind their predecessor (address dependence). An Overlap phase hides
// memory time under compute (decoupled access/execute): it completes at
// max(loads done, start + Compute) rather than loadsDone + Compute, and the
// hidden cycles are tallied in Stats.AccelOverlapCycles.
//
// All port grants and hierarchy accesses are resolved now, at invocation
// time, exactly as the scalar contract always did — the schedule is
// deterministic given the invocation cycle, which is what keeps
// tcaBusyUntil a valid event-horizon candidate (events.go) and the
// checkpoint story unchanged (the engine holds no cross-cycle state beyond
// tcaBusyUntil itself).
func (c *Core) runEngine(phases []isa.AccelPhase) (end int64, memOps int) {
	start := c.now
	for _, ph := range phases {
		memOps += len(ph.MemOps)
		loadsDone := start
		prevDone := start
		for _, op := range ph.MemOps {
			if op.Store {
				continue
			}
			earliest := start + 1
			if op.Serial {
				earliest = prevDone
			}
			g := c.portGrant(earliest)
			done := c.hier.Access(g, op.Addr, false)
			prevDone = done
			if done > loadsDone {
				loadsDone = done
			}
		}
		computeDone := loadsDone + int64(ph.Compute)
		if ph.Overlap {
			memTime := loadsDone - start
			compTime := int64(ph.Compute)
			hidden := memTime
			if compTime < hidden {
				hidden = compTime
			}
			if hidden > 0 {
				c.stats.AccelOverlapCycles += hidden
			}
			computeDone -= hidden
		}
		storesDone := computeDone
		for _, op := range ph.MemOps {
			if !op.Store {
				continue
			}
			g := c.portGrant(computeDone)
			if done := c.hier.Access(g, op.Addr, true); done > storesDone {
				storesDone = done
			}
		}
		start = storesDone
	}
	return start, memOps
}

// fmaBits computes a fused multiply-add over float64 bit patterns.
func fmaBits(a, b, acc uint64) uint64 {
	return math.Float64bits(math.FMA(
		math.Float64frombits(a),
		math.Float64frombits(b),
		math.Float64frombits(acc)))
}
