package sim

import (
	"errors"
	"fmt"

	"repro/internal/bpred"
	"repro/internal/isa"
	"repro/internal/mem"
)

// ErrCycleLimit is returned when a run exceeds its cycle budget.
var ErrCycleLimit = errors.New("sim: cycle limit exceeded")

// ErrDeadlock is returned when no instruction commits for a long stretch,
// which indicates a simulator or workload bug rather than a slow program.
var ErrDeadlock = errors.New("sim: no commit progress")

// deadlockWindow is the commit-progress watchdog threshold in cycles. It
// comfortably exceeds any legitimate stall (a full DRAM-bound ROB drain is
// thousands of cycles, not hundreds of thousands).
const deadlockWindow = 500_000

// fetchedInst is one front-end slot.
type fetchedInst struct {
	pc            int
	in            isa.Instruction
	predTaken     bool
	predConfident bool
	availAt       int64 // earliest dispatch cycle (front-end depth)
}

// Result is the outcome of a completed simulation.
type Result struct {
	Stats Stats
	// Regs is the final architectural register file.
	Regs [isa.NumRegs]uint64
	// Mem is the final architectural memory image.
	Mem *isa.Memory
}

// Core is one out-of-order core instance bound to a program. A Core runs a
// single program once; build a new Core for each run.
type Core struct {
	cfg  Config
	prog *isa.Program
	dev  isa.AccelDevice

	mem  *isa.Memory
	hier *mem.Hierarchy
	pred bpred.Predictor

	now int64
	seq uint64

	arf    [isa.NumRegs]uint64
	rename [isa.NumRegs]struct {
		valid bool
		seq   uint64
	}

	rob         *robQueue
	iqCount     int
	lsqCount    int
	issuedCount int // entries in sIssued (executing) state

	// accelArena backs the pending-store spans of in-flight TCA
	// invocations (robEntry.storeOff/storeCount). Invocations start in
	// program order, so squashed spans are always an arena suffix and
	// squash truncates; the arena resets to empty whenever no resident
	// invocation holds stores (liveStores == 0), bounding growth.
	accelArena []isa.AccelStore
	liveStores int

	// fetchQ is consumed from fetchHead instead of re-slicing the front,
	// so dispatch pops keep the backing array (fetch compacts it once the
	// dead prefix grows past the queue capacity).
	fetchQ        []fetchedInst
	fetchHead     int
	fetchPC       int
	fetchResumeAt int64
	fetchStopped  bool  // saw (possibly wrong-path) halt
	curFetchLine  int64 // I-cache line currently feeding fetch (-1 = none)

	// barrierSeq is the NT dispatch barrier: while valid, dispatch is
	// stalled until the accel with this seq commits.
	barrierSeq    uint64
	barrierActive bool

	fu           [numFUClasses][]int64 // per-unit next-free cycle
	ports        []int64               // memory port next-free cycles
	tcaBusyUntil int64

	halted          bool
	lastCommitCycle int64

	// Checkpoint/pause plumbing. pauseAt makes runLoop return (without
	// finalizing) at the first cycle boundary at or after it;
	// pauseOnAccelFetch arms fetch() to set pauseAt when it fetches the
	// first OpAccel. The remaining flags track checkpoint legality:
	// sawAccelFetch (a wrong-path accel fetch counts), accelDispatched
	// (post-warmup configuration fields have been consulted), and
	// accelEverInvoked (the device holds post-construction state).
	pauseAt           int64
	pauseOnAccelFetch bool
	sawAccelFetch     bool
	accelDispatched   bool
	accelEverInvoked  bool

	// pend schedules pending completions (one record per issue); due is
	// the reusable scratch batch complete() drains into each cycle.
	pend compHeap
	due  []compRecord

	// quiet is true while the current cycle has made no state change; the
	// cycle trackers record the per-cycle counter increments that
	// fastForward must replicate for skipped cycles. All four reset at the
	// top of every runLoop iteration.
	quiet          bool
	cycleStall     *int64
	cycleHeldAccel *robEntry
	cycleConfWait  bool

	stats Stats
}

// New builds a core for the program. dev may be nil when the program
// contains no OpAccel instructions.
func New(cfg Config, prog *isa.Program, dev isa.AccelDevice) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	pred, err := cfg.Predictor.Build()
	if err != nil {
		return nil, err
	}
	if dev == nil {
		for _, in := range prog.Code {
			if in.Op == isa.OpAccel {
				return nil, fmt.Errorf("sim: program uses accel instructions but no device attached")
			}
		}
	}
	c := &Core{
		cfg:  cfg,
		prog: prog,
		dev:  dev,
		mem:  prog.NewMemoryImage(),
		hier: mem.NewHierarchy(cfg.Memory),
		pred: pred,
		rob:  newROBQueue(cfg.ROBSize),
	}
	c.curFetchLine = -1
	c.pauseAt = horizonNever
	// Compaction keeps the live window within one capacity of the head,
	// so 2x capacity never reallocates.
	c.fetchQ = make([]fetchedInst, 0, 2*cfg.FetchWidth*(cfg.FrontEndDepth+2))
	// The completion heap and its drain batch are bounded by the in-flight
	// population; sizing them up front keeps the busy loop and fastForward
	// allocation-free.
	c.pend = make(compHeap, 0, cfg.ROBSize)
	c.due = make([]compRecord, 0, cfg.ROBSize)
	c.fu[fuALU] = make([]int64, cfg.IntALUs)
	c.fu[fuMul] = make([]int64, cfg.IntMuls)
	c.fu[fuFP] = make([]int64, cfg.FPUs)
	// fuMem units are unused: memory timing goes through the shared
	// port scheduler so the TCA and core contend for the same bandwidth.
	c.fu[fuMem] = nil
	c.ports = make([]int64, cfg.MemPorts)
	return c, nil
}

// Hierarchy exposes the memory system for statistics inspection.
func (c *Core) Hierarchy() *mem.Hierarchy { return c.hier }

// Cycle returns the current simulation cycle (the clock only advances
// through runLoop/fastForward; this is a read-only observation, used by
// callers sizing checkpoint decisions).
func (c *Core) Cycle() int64 { return c.now }

// Run simulates until the program's halt commits, the cycle budget is
// exhausted, or the deadlock watchdog fires. Run finalizes the statistics;
// it is also the resume path after a paused RunTo/RunToAccelFetch.
func (c *Core) Run(maxCycles int64) (*Result, error) {
	c.pauseAt = horizonNever
	c.pauseOnAccelFetch = false
	if err := c.runLoop(maxCycles); err != nil {
		return nil, err
	}
	c.stats.Cycles = c.now + 1
	return &Result{Stats: c.stats, Regs: c.arf, Mem: c.mem}, nil
}

// RunTo simulates until the first cycle boundary at or after target (or
// until halt/error, whichever comes first) and reports whether the core
// paused there. Fast-forward jumps are not split: a jump over target pauses
// at the jump's landing cycle, so the FastForwardedCycles/Jumps counters
// stay bit-identical with an uninterrupted run. A paused core may be
// checkpointed and must be finished with Run.
func (c *Core) RunTo(maxCycles, target int64) (paused bool, err error) {
	c.pauseAt = target
	c.pauseOnAccelFetch = false
	err = c.runLoop(maxCycles)
	c.pauseAt = horizonNever
	if err != nil {
		return false, err
	}
	return !c.halted, nil
}

// RunToAccelFetch simulates until the cycle boundary after the first OpAccel
// instruction enters the fetch queue — wrong-path fetches count, keeping the
// boundary independent of post-warmup configuration — and reports whether
// the core paused there. If the program halts (or has already halted) before
// any accel fetch, it returns false with the core ready for Run.
func (c *Core) RunToAccelFetch(maxCycles int64) (paused bool, err error) {
	if c.sawAccelFetch {
		return !c.halted, nil
	}
	c.pauseAt = horizonNever
	c.pauseOnAccelFetch = true
	err = c.runLoop(maxCycles)
	c.pauseOnAccelFetch = false
	c.pauseAt = horizonNever
	if err != nil {
		return false, err
	}
	return !c.halted, nil
}

// runLoop is the tick loop shared by Run and the pausing entry points. It
// returns nil when the core halts or reaches pauseAt; the caller finalizes
// (Run) or reports the pause (RunTo/RunToAccelFetch). The pause check runs
// before the budget and watchdog checks so a paused-and-resumed run
// re-raises ErrCycleLimit/ErrDeadlock with bit-identical messages.
func (c *Core) runLoop(maxCycles int64) error {
	ff := !c.cfg.NoFastForward
	for !c.halted {
		if c.now >= c.pauseAt {
			return nil
		}
		if c.now >= maxCycles {
			return fmt.Errorf("%w after %d cycles (%d committed) pc=%d",
				ErrCycleLimit, c.now, c.stats.Committed, c.fetchPC)
		}
		if c.now-c.lastCommitCycle > deadlockWindow {
			return fmt.Errorf("%w for %d cycles at cycle %d: %s",
				ErrDeadlock, c.now-c.lastCommitCycle, c.now, c.describeHead())
		}
		c.quiet = true
		c.cycleStall = nil
		c.cycleHeldAccel = nil
		c.cycleConfWait = false
		c.complete()
		c.commit()
		if c.halted {
			break
		}
		c.issue()
		c.dispatch()
		c.fetch()
		occupancy := int64(c.rob.len())
		c.stats.ROBOccupancySum += occupancy
		c.now++
		if ff && c.quiet {
			c.fastForward(maxCycles, occupancy)
		}
	}
	return nil
}

// accelStoresOf returns the pending-store span of a started invocation.
func (c *Core) accelStoresOf(e *robEntry) []isa.AccelStore {
	if e.storeCount == 0 {
		return nil
	}
	return c.accelArena[e.storeOff : e.storeOff+e.storeCount]
}

// describeHead summarizes the ROB head for deadlock diagnostics.
func (c *Core) describeHead() string {
	if c.rob.len() == 0 {
		return fmt.Sprintf("rob empty, fetchPC=%d, fetchStopped=%v, barrier=%v",
			c.fetchPC, c.fetchStopped, c.barrierActive)
	}
	h := c.rob.hotAt(0)
	e := c.rob.at(0)
	return fmt.Sprintf("rob head seq=%d pc=%d %s state=%d ready=%d srcReady=%v",
		h.seq, e.pc, e.in, h.state, h.readyCycle, h.pendMask == 0)
}

// portGrant reserves the earliest-available memory port at or after start
// and returns the granted cycle. Requests arriving earlier get earlier
// grants, so the oldest-first issue scan yields the age-priority
// arbitration the paper's methodology specifies.
func (c *Core) portGrant(start int64) int64 {
	best := 0
	for i := 1; i < len(c.ports); i++ {
		if c.ports[i] < c.ports[best] {
			best = i
		}
	}
	g := start
	if c.ports[best] > g {
		g = c.ports[best]
	}
	c.ports[best] = g + 1
	return g
}

// grabFU reserves a functional unit of the class if one is free this cycle,
// holding it until busyUntil. It reports whether a unit was available.
func (c *Core) grabFU(class fuClass, busyUntil int64) bool {
	units := c.fu[class]
	for i := range units {
		if units[i] <= c.now {
			units[i] = busyUntil
			return true
		}
	}
	return false
}

// operandValue returns the resolved value of source field i (0-based).
func (e *robEntry) operandValue(i int) uint64 { return e.srcs[i].value }

// complete transitions issued entries whose results have arrived, wakes
// dependents, trains the branch predictor, and handles mispredict squashes.
//
// Pending completions live in the pend min-heap (one record pushed per
// issue via noteIssued), so a cycle with nothing due is an O(1) peek
// instead of an O(ROB) scan. Records are not removed on squash: a popped
// record is acted on only if the resident entry with that sequence number
// is still sIssued with the recorded readyCycle. (Sequence numbers are
// reused after squashes; a coincidental match is still a correct
// completion, since the entry is then genuinely due.) The due batch is
// processed in sequence order — the tick-scan's ROB-position order — so
// predictor update order and the choice of squashing branch are preserved.
func (c *Core) complete() {
	if len(c.pend) == 0 || c.pend[0].cycle > c.now {
		return
	}
	c.due = c.due[:0]
	for len(c.pend) > 0 && c.pend[0].cycle <= c.now {
		c.due = append(c.due, c.popPend())
	}
	sortDueBySeq(c.due)
	for _, r := range c.due {
		pos := c.rob.indexOf(r.seq)
		if pos < 0 {
			continue // squashed
		}
		h := c.rob.hotAt(pos)
		if h.state != sIssued || h.readyCycle != r.cycle {
			continue // duplicate record, or the seq was reused
		}
		h.state = sDone
		c.issuedCount--
		c.quiet = false
		c.wake(pos, h)
		if h.op.IsCondBranch() {
			e := c.rob.at(pos)
			c.pred.Update(uint64(e.pc), e.actualTaken)
			if e.mispredict {
				c.stats.Mispredicts++
				c.squashAfter(pos)
				c.redirect(e.nextPC)
				// The unprocessed remainder of the batch is strictly
				// younger (seq order), hence squashed; drop it.
				return
			}
		}
	}
}

// noteIssued schedules the completion of a newly issued entry.
func (c *Core) noteIssued(h *robHot) {
	c.pushPend(compRecord{cycle: h.readyCycle, seq: h.seq})
}

// wake delivers a completed result to every dependent operand. Dependents
// are strictly younger, so the scan starts after the producer's position
// and stops as soon as the producer's wakeUses consumers are all served.
// The scan reads only the hot slab until a dependent actually matches.
func (c *Core) wake(pos int, h *robHot) {
	val := c.rob.at(pos).val
	for i := pos + 1; h.wakeUses > 0 && i < c.rob.len(); i++ {
		dh := c.rob.hotAt(i)
		if dh.state != sWaiting || dh.pendMask == 0 {
			continue
		}
		d := c.rob.at(i)
		for s := range d.srcs {
			if dh.pendMask&(1<<uint(s)) != 0 && d.srcs[s].producer == h.seq {
				dh.pendMask &^= 1 << uint(s)
				d.srcs[s].value = val
				h.wakeUses--
			}
		}
	}
}

// redirect restarts fetch at pc on the next cycle.
func (c *Core) redirect(pc int) {
	c.fetchQ = c.fetchQ[:0]
	c.fetchHead = 0
	c.fetchPC = pc
	c.fetchResumeAt = c.now + 1
	c.fetchStopped = false
	c.curFetchLine = -1 // the target line must be re-checked in the I-cache
}

// squashAfter removes every entry younger than position keep, rolling back
// accelerator state and rebuilding the rename table.
func (c *Core) squashAfter(keep int) {
	first := keep + 1
	if first >= c.rob.len() {
		return
	}
	// Roll back speculative accelerator invocations: rewinding to the
	// oldest squashed invocation's mark undoes it and everything younger
	// (marks grow in program order because invocations are issued in
	// program order).
	if j, ok := c.dev.(isa.AccelJournal); ok {
		for i := first; i < c.rob.len(); i++ {
			if c.rob.hotAt(i).op != isa.OpAccel {
				continue
			}
			e := c.rob.at(i)
			if e.accelStarted && e.accelHasMark {
				j.Rewind(e.accelMark)
				break
			}
		}
	}
	// Squashed invocations' store spans are an arena suffix (program-order
	// starts); drop them by truncating at the oldest squashed span.
	arenaKeep := len(c.accelArena)
	for i := first; i < c.rob.len(); i++ {
		h := c.rob.hotAt(i)
		e := c.rob.at(i)
		c.stats.Squashed++
		// Release this entry's claims on its producers' wake counters;
		// every producer (surviving or squashed) is still resident here.
		if h.pendMask != 0 {
			for s := range e.srcs {
				if h.pendMask&(1<<uint(s)) != 0 {
					if pi := c.rob.indexOf(e.srcs[s].producer); pi >= 0 {
						c.rob.hotAt(pi).wakeUses--
					}
				}
			}
		}
		switch h.state {
		case sWaiting:
			c.iqCount--
		case sIssued:
			c.issuedCount--
		}
		if h.op.IsMem() {
			c.lsqCount--
		}
		if h.op == isa.OpAccel {
			if e.accelStarted {
				c.stats.AccelSquashed++
				// Free the TCA unit if this invocation was still
				// running.
				if h.readyCycle > c.now {
					c.tcaBusyUntil = c.now
				}
				if e.storeCount > 0 {
					c.liveStores--
					if e.storeOff < arenaKeep {
						arenaKeep = e.storeOff
					}
				}
			}
			if c.barrierActive && c.barrierSeq == h.seq {
				c.barrierActive = false
			}
		}
	}
	c.accelArena = c.accelArena[:arenaKeep]
	c.rob.truncate(first)

	// Rebuild the rename table from the surviving entries.
	for r := range c.rename {
		c.rename[r].valid = false
	}
	for i := 0; i < c.rob.len(); i++ {
		e := c.rob.at(i)
		if e.in.HasDst() {
			c.rename[e.in.Dst].valid = true
			c.rename[e.in.Dst].seq = c.rob.hotAt(i).seq
		}
	}
	c.seq = c.rob.hotAt(c.rob.len()-1).seq + 1
}

// commit retires completed instructions in order, applying architectural
// state.
func (c *Core) commit() {
	for n := 0; n < c.cfg.CommitWidth && c.rob.len() > 0; n++ {
		h := c.rob.hotAt(0)
		if h.state != sDone || h.readyCycle+int64(c.cfg.CommitDelay) > c.now {
			return
		}
		e := c.rob.at(0)
		switch {
		case h.op == isa.OpHalt:
			c.halted = true
		case h.op.IsStore():
			c.mem.Store(e.addr, e.storeData)
			c.stats.Stores++
			// Charge the write to the shared ports and hierarchy.
			g := c.portGrant(c.now)
			_ = c.hier.Access(g, e.addr, true)
		case h.op == isa.OpAccel:
			isa.ApplyStores(c.mem, c.accelStoresOf(e))
			c.stats.AccelCommitted++
			if c.cfg.RecordAccelEvents {
				c.stats.AccelEvents = append(c.stats.AccelEvents, AccelEvent{
					Seq:      h.seq,
					Dispatch: e.dispatchCycle,
					Start:    e.accelStart,
					Done:     h.readyCycle,
					Commit:   c.now,
				})
			}
			c.stats.AccelDrainWait += e.accelHeld
			if e.storeCount > 0 {
				c.liveStores--
				if c.liveStores == 0 {
					c.accelArena = c.accelArena[:0]
				}
			}
			if e.in.HasDst() {
				c.arf[e.in.Dst] = e.val
			}
		case h.op.IsLoad():
			c.stats.Loads++
			if e.forwarded {
				c.stats.LoadsForwarded++
			}
			c.arf[e.in.Dst] = e.val
		case e.in.HasDst():
			c.arf[e.in.Dst] = e.val
		}
		if h.op.IsCondBranch() {
			c.stats.Branches++
		}
		if e.in.HasDst() && c.rename[e.in.Dst].valid && c.rename[e.in.Dst].seq == h.seq {
			c.rename[e.in.Dst].valid = false
		}
		if c.barrierActive && c.barrierSeq == h.seq {
			c.barrierActive = false
		}
		if h.op.IsMem() {
			c.lsqCount--
		}
		c.recordPipeEvent(h, e)
		c.rob.popHead()
		c.quiet = false
		c.stats.Committed++
		c.lastCommitCycle = c.now
		if c.halted {
			return
		}
	}
}
