package sim

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
)

// icacheConfig enables instruction-side timing on the HP preset.
func icacheConfig() Config {
	cfg := HighPerfConfig()
	cfg.Memory = mem.DefaultHierarchy() // includes a 32 KiB L1I
	return cfg
}

// multiLineLoop builds a loop whose body spans several instruction-cache
// lines, iterated enough for steady-state behaviour to dominate the cold
// pass.
func multiLineLoop(iters int64) *isa.Program {
	b := isa.NewBuilder()
	b.MovI(isa.R(1), iters)
	b.Label("loop")
	for i := 0; i < 100; i++ { // ~25 lines of body
		b.AddI(isa.R(2+i%6), isa.RZero, int64(i))
	}
	b.AddI(isa.R(1), isa.R(1), -1)
	b.Bne(isa.R(1), isa.RZero, "loop")
	b.Halt()
	return b.MustBuild()
}

func TestICacheLoopCodeMostlyHits(t *testing.T) {
	// A loop re-fetches the same lines: after the cold pass the I-cache
	// must hit, so the loop runs within a few percent of the
	// I-side-disabled time.
	prog := multiLineLoop(300)
	withI, err := New(icacheConfig(), prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	resI, err := withI.Run(10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	without, _ := New(HighPerfConfig(), prog, nil)
	resN, err := without.Run(10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if resI.Stats.Committed != resN.Stats.Committed {
		t.Fatalf("instruction counts differ: %d vs %d", resI.Stats.Committed, resN.Stats.Committed)
	}
	slack := resN.Stats.Cycles + resN.Stats.Cycles/20 + 200
	if resI.Stats.Cycles > slack {
		t.Errorf("loop with I-cache took %d cycles vs %d without — hits not happening",
			resI.Stats.Cycles, resN.Stats.Cycles)
	}
	istats := withI.Hierarchy().L1I.Stats()
	if istats.Accesses == 0 {
		t.Fatal("I-cache never accessed")
	}
	if istats.MissRate() > 0.01 {
		t.Errorf("loop I-miss rate %.2f%%, want ~0", 100*istats.MissRate())
	}
}

func TestICacheColdStraightLineStalls(t *testing.T) {
	// One-pass straight-line code larger than the L1I: instruction
	// misses must slow fetch down measurably (this is why the validation
	// presets disable the I-side — see presetMemory).
	b := straightLineProgram(12000)
	withI, err := New(icacheConfig(), b, nil)
	if err != nil {
		t.Fatal(err)
	}
	resI, err := withI.Run(10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	without, _ := New(HighPerfConfig(), b, nil)
	resN, err := without.Run(10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if resI.Stats.Cycles <= resN.Stats.Cycles {
		t.Errorf("cold I-side cost nothing: %d vs %d cycles", resI.Stats.Cycles, resN.Stats.Cycles)
	}
	istats := withI.Hierarchy().L1I.Stats()
	if istats.Misses == 0 {
		t.Error("no I-misses on a 48 KiB one-pass program")
	}
	// The next-line prefetcher must be covering part of the stream.
	if istats.Prefetches == 0 || istats.PrefetchHits == 0 {
		t.Errorf("I-prefetcher idle: %+v", istats)
	}
}

// straightLineProgram emits n independent single-cycle instructions plus a
// halt — about 4n bytes of one-pass code.
func straightLineProgram(n int) *isa.Program {
	b := isa.NewBuilder()
	for i := 0; i < n; i++ {
		b.AddI(isa.R(1+i%8), isa.RZero, int64(i))
	}
	b.Halt()
	return b.MustBuild()
}

func TestICacheEquivalenceUnaffected(t *testing.T) {
	// I-side timing must not change architectural results.
	runBoth(t, icacheConfig(), sumProgram(800), nil)
}
