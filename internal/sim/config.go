// Package sim implements a cycle-level out-of-order core simulator — the
// from-scratch stand-in for gem5 that this reproduction validates the
// analytical model against.
//
// The core models the mechanisms the paper's first-order model abstracts:
// an in-order front end of configurable width and depth, register renaming
// onto ROB tags, an issue queue with operand wakeup, limited functional
// units, a load/store queue with store-to-load forwarding, age-prioritized
// memory ports shared between the core and the TCA, branch misprediction
// squash and refill, and in-order commit.
//
// A tightly-coupled accelerator instruction (isa.OpAccel) occupies one ROB
// entry and is integrated per the paper's four modes (accel.Mode):
//
//   - non-Leading (NL): the TCA may not begin execution until it reaches
//     the ROB head, i.e. every leading instruction has committed (the
//     "window drain");
//   - non-Trailing (NT): dispatch stalls from the cycle after the TCA
//     dispatches until the TCA commits (the "dispatch barrier");
//   - L and T lift those restrictions at the cost of rollback hardware
//     (device journals) and dependency checking (the LSQ overlay).
package sim

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/bpred"
	"repro/internal/isa"
	"repro/internal/mem"
)

// PredictorConfig selects the front end's branch predictor.
type PredictorConfig struct {
	// Kind is "gshare", "bimodal", "taken", "not-taken" or "perfect".
	Kind      string
	TableBits int
	HistBits  int
}

// Canonical returns the configuration with Build's implicit defaults made
// explicit (empty Kind means gshare, zero table/history bits select 12/8),
// so two spellings of the same predictor compare and digest identically.
// The mapping is conservative: it never merges configurations that could
// behave differently.
func (p PredictorConfig) Canonical() PredictorConfig {
	if p.Kind == "" {
		p.Kind = "gshare"
	}
	if p.TableBits == 0 {
		p.TableBits = 12
	}
	if p.HistBits == 0 {
		p.HistBits = 8
	}
	return p
}

// Build constructs the predictor.
func (p PredictorConfig) Build() (bpred.Predictor, error) {
	tb := p.TableBits
	if tb == 0 {
		tb = 12
	}
	hb := p.HistBits
	if hb == 0 {
		hb = 8
	}
	switch p.Kind {
	case "", "gshare":
		return bpred.NewGShare(tb, hb), nil
	case "bimodal":
		return bpred.NewBimodal(tb), nil
	case "taken":
		return &bpred.Static{Taken: true}, nil
	case "not-taken":
		return &bpred.Static{Taken: false}, nil
	case "perfect":
		return bpred.NewPerfect(), nil
	default:
		return nil, fmt.Errorf("sim: unknown predictor kind %q", p.Kind)
	}
}

// Config describes one core. The zero value is not valid; start from a
// preset (HighPerfConfig, LowPerfConfig, A72Config) or fill every field.
type Config struct {
	Name string

	// Pipeline widths (instructions per cycle).
	FetchWidth    int
	DispatchWidth int
	IssueWidth    int
	CommitWidth   int

	// Structure sizes.
	ROBSize int
	IQSize  int
	LSQSize int

	// FrontEndDepth is the number of cycles between fetching an
	// instruction and its earliest dispatch; it is also the branch
	// misprediction refill penalty.
	FrontEndDepth int

	// CommitDelay is the back-end depth between an instruction
	// completing execution and becoming eligible to commit — the
	// analytical model's t_commit.
	CommitDelay int

	// Functional unit counts.
	IntALUs  int
	IntMuls  int // multiply/divide units (divide is unpipelined)
	FPUs     int // FP add/mul/FMA units (fdiv unpipelined)
	MemPorts int // LSQ/cache ports, shared with the TCA by age priority

	// Operation latencies in cycles.
	IntMulLatency int
	IntDivLatency int
	FPAddLatency  int
	FPMulLatency  int
	FMALatency    int
	FPDivLatency  int

	// Mode is the TCA integration mode.
	Mode accel.Mode

	// PartialSpeculation implements the paper's §VIII future-work design
	// point between the L and NL modes: in an L mode, the TCA may begin
	// speculative execution only when every older unresolved conditional
	// branch was predicted with high confidence (saturated counter). It
	// reduces TCA squashes — and hence rollback work — at the cost of
	// occasional NL-like waits. Ignored in NL modes and when the
	// predictor cannot estimate confidence.
	PartialSpeculation bool

	// ConservativeLoadOrdering makes loads wait until every older store
	// has fully executed (address AND data) before issuing, instead of
	// the default decoupled store-AGU disambiguation (loads go as soon
	// as all older store addresses are known). This is the ablation knob
	// for the LSQ design choice DESIGN.md calls out; it lowers baseline
	// IPC on store-heavy code.
	ConservativeLoadOrdering bool

	Predictor PredictorConfig

	// Memory is the data hierarchy configuration.
	Memory mem.HierarchyConfig

	// NoFastForward disables the event-horizon scheduler: the core ticks
	// every cycle even through provably idle stall regions. Results and
	// statistics are bit-identical either way (the differential tests
	// assert it); the escape hatch exists for auditing the optimization
	// and for timing comparisons. See DESIGN.md "Event-horizon
	// fast-forward".
	NoFastForward bool

	// RecordAccelEvents enables the per-invocation event trace used by
	// interval analysis (costs memory on long runs).
	RecordAccelEvents bool

	// PipeTraceLimit, when positive, records a pipeline diagram for the
	// first N committed instructions (Stats.PipeTrace, rendered with
	// RenderPipeTrace).
	PipeTraceLimit int
}

// Canonical returns a copy of the configuration with every field that
// cannot influence simulation results normalized away, so semantically
// identical configurations compare and digest identically:
//
//   - Name and the cache Names are presentation-only (they appear in error
//     and diagnostic text, never in Stats);
//   - NoFastForward selects a bit-identical execution strategy by contract
//     (enforced by the differential suite in fastforward_test.go);
//   - the predictor's implicit defaults are made explicit (see
//     PredictorConfig.Canonical).
//
// Every other field is semantic and kept verbatim. internal/scenario
// digests the canonical form; see DESIGN.md "Scenario layer".
func (c Config) Canonical() Config {
	c.Name = ""
	c.NoFastForward = false
	c.Predictor = c.Predictor.Canonical()
	c.Memory.L1I.Name = ""
	c.Memory.L1D.Name = ""
	c.Memory.L2.Name = ""
	return c
}

// WarmupCanonical strips, on top of Canonical, the fields that cannot affect
// simulation before the first OpAccel reaches the pipeline: Mode and
// PartialSpeculation feed only the accel issue path and the NT dispatch
// barrier (armed at OpAccel dispatch), and RecordAccelEvents is consulted
// only at OpAccel commit. Two configs with equal WarmupCanonical therefore
// execute bit-identical warmup prefixes up to the first accel fetch, which
// is what lets one warm checkpoint serve every post-warmup sweep variant.
func (c Config) WarmupCanonical() Config {
	c = c.Canonical()
	c.Mode = 0
	c.PartialSpeculation = false
	c.RecordAccelEvents = false
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	type check struct {
		ok  bool
		msg string
	}
	checks := []check{
		{c.FetchWidth >= 1, "fetch width >= 1"},
		{c.DispatchWidth >= 1, "dispatch width >= 1"},
		{c.IssueWidth >= 1, "issue width >= 1"},
		{c.CommitWidth >= 1, "commit width >= 1"},
		{c.ROBSize >= 2, "rob size >= 2"},
		{c.IQSize >= 1, "iq size >= 1"},
		{c.LSQSize >= 1, "lsq size >= 1"},
		{c.FrontEndDepth >= 1, "front end depth >= 1"},
		{c.CommitDelay >= 0, "commit delay >= 0"},
		{c.IntALUs >= 1, "int alus >= 1"},
		{c.IntMuls >= 1, "int mul units >= 1"},
		{c.FPUs >= 1, "fp units >= 1"},
		{c.MemPorts >= 1, "mem ports >= 1"},
		{c.IntMulLatency >= 1, "int mul latency >= 1"},
		{c.IntDivLatency >= 1, "int div latency >= 1"},
		{c.FPAddLatency >= 1, "fp add latency >= 1"},
		{c.FPMulLatency >= 1, "fp mul latency >= 1"},
		{c.FMALatency >= 1, "fma latency >= 1"},
		{c.FPDivLatency >= 1, "fp div latency >= 1"},
	}
	for _, ch := range checks {
		if !ch.ok {
			return fmt.Errorf("sim: %s: config requires %s", c.Name, ch.msg)
		}
	}
	if c.Memory.L1I.SizeBytes > 0 {
		if err := c.Memory.L1I.Validate(); err != nil {
			return err
		}
	}
	if err := c.Memory.L1D.Validate(); err != nil {
		return err
	}
	if err := c.Memory.L2.Validate(); err != nil {
		return err
	}
	if err := c.Memory.DTLB.Validate(); err != nil {
		return err
	}
	if err := c.Memory.ITLB.Validate(); err != nil {
		return err
	}
	return c.Memory.DRAM.Validate()
}

// HighPerfConfig is the paper's "mid-high performance (HP) OoO core":
// 256-entry ROB, 4-issue (the paper quotes ~1.8 baseline IPC on its
// workloads).
func HighPerfConfig() Config {
	return Config{
		Name:          "hp",
		FetchWidth:    4,
		DispatchWidth: 4,
		IssueWidth:    4,
		CommitWidth:   4,
		ROBSize:       256,
		IQSize:        64,
		LSQSize:       72,
		FrontEndDepth: 8,
		CommitDelay:   3,
		IntALUs:       4,
		IntMuls:       2,
		FPUs:          2,
		MemPorts:      2,
		IntMulLatency: 3,
		IntDivLatency: 12,
		FPAddLatency:  3,
		FPMulLatency:  4,
		FMALatency:    4,
		FPDivLatency:  12,
		Mode:          accel.LT,
		Memory:        presetMemory(),
	}
}

// presetMemory is the default hierarchy with the instruction side
// disabled. The validation microbenchmarks are generated as one-pass
// straight-line code standing in for steady-state loops, so cold
// instruction misses would be a benchmarking artifact, and the analytical
// model subsumes I-side effects in its measured-IPC input anyway. Enable
// cfg.Memory.L1I (mem.DefaultHierarchy has a ready configuration) to model
// the instruction side on loop-structured programs.
func presetMemory() mem.HierarchyConfig {
	m := mem.DefaultHierarchy()
	m.L1I = mem.CacheConfig{}
	return m
}

// LowPerfConfig is the paper's "low performance (LP) OoO core": 64-entry
// ROB, 2-issue (~0.5 baseline IPC).
func LowPerfConfig() Config {
	c := HighPerfConfig()
	c.Name = "lp"
	c.FetchWidth = 2
	c.DispatchWidth = 2
	c.IssueWidth = 2
	c.CommitWidth = 2
	c.ROBSize = 64
	c.IQSize = 16
	c.LSQSize = 24
	c.FrontEndDepth = 5
	c.CommitDelay = 2
	c.IntALUs = 2
	c.IntMuls = 1
	c.FPUs = 1
	c.MemPorts = 1
	return c
}

// A72Config approximates the ARM Cortex-A72 the paper parameterizes Fig. 2
// with: 3-wide dispatch, 128-entry ROB.
func A72Config() Config {
	c := HighPerfConfig()
	c.Name = "a72"
	c.FetchWidth = 3
	c.DispatchWidth = 3
	c.IssueWidth = 3
	c.CommitWidth = 3
	c.ROBSize = 128
	c.IQSize = 48
	c.LSQSize = 48
	c.FrontEndDepth = 7
	c.CommitDelay = 3
	c.IntALUs = 2
	c.MemPorts = 2
	return c
}

// opLatency returns the execution latency of non-memory, non-accel ops.
func (c Config) opLatency(op isa.Op) int {
	switch op {
	case isa.OpMul:
		return c.IntMulLatency
	case isa.OpDiv, isa.OpRem:
		return c.IntDivLatency
	case isa.OpFAdd, isa.OpFSub, isa.OpFMovI:
		return c.FPAddLatency
	case isa.OpFMul:
		return c.FPMulLatency
	case isa.OpFMA:
		return c.FMALatency
	case isa.OpFDiv:
		return c.FPDivLatency
	default:
		return 1
	}
}

// fuClass enumerates functional unit classes.
type fuClass uint8

const (
	fuALU fuClass = iota
	fuMul
	fuFP
	fuMem
	numFUClasses
)

// fuFor maps opcodes to functional units. Loads and stores use memory
// ports; branches and simple integer ops use ALUs.
func fuFor(op isa.Op) fuClass {
	switch {
	case op.IsMem():
		return fuMem
	case op == isa.OpMul || op == isa.OpDiv || op == isa.OpRem:
		return fuMul
	case op.IsFP():
		return fuFP
	default:
		return fuALU
	}
}

// unpipelined reports whether the op occupies its unit for its full latency.
func unpipelined(op isa.Op) bool {
	return op == isa.OpDiv || op == isa.OpRem || op == isa.OpFDiv
}
