package sim

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/accel"
	"repro/internal/isa"
	"repro/internal/workload"
)

// ffCase is one program/device/config combination checked for fast-forward
// transparency.
type ffCase struct {
	name string
	cfg  Config
	prog *isa.Program
	dev  func() isa.AccelDevice // nil for baseline programs
}

// runFFCase runs one simulation with the given NoFastForward setting and
// returns the stats plus final architectural state.
func runFFCase(t *testing.T, c ffCase, noFF bool) *Result {
	t.Helper()
	cfg := c.cfg
	cfg.NoFastForward = noFF
	var dev isa.AccelDevice
	if c.dev != nil {
		dev = c.dev()
	}
	core, err := New(cfg, c.prog, dev)
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	res, err := core.Run(2_000_000_000)
	if err != nil {
		t.Fatalf("sim.Run(noFF=%v): %v", noFF, err)
	}
	return res
}

// assertFFTransparent is the heart of the differential suite: a run with
// the event-horizon scheduler enabled must be indistinguishable — every
// statistic, every register, all of memory — from the same run executed
// cycle by cycle. Only the two fast-forward observability counters may
// differ; they are zeroed before comparison. Returns the cycles skipped so
// callers can assert the scheduler actually engaged.
func assertFFTransparent(t *testing.T, c ffCase) int64 {
	t.Helper()
	ff := runFFCase(t, c, false)
	slow := runFFCase(t, c, true)

	if slow.Stats.FastForwardedCycles != 0 || slow.Stats.FastForwardJumps != 0 {
		t.Errorf("NoFastForward run skipped %d cycles in %d jumps, want none",
			slow.Stats.FastForwardedCycles, slow.Stats.FastForwardJumps)
	}
	skipped := ff.Stats.FastForwardedCycles
	got := ff.Stats
	got.FastForwardedCycles = 0
	got.FastForwardJumps = 0
	if !reflect.DeepEqual(got, slow.Stats) {
		t.Errorf("stats diverge beyond fast-forward counters:\nfast-forward:\n%v\ncycle-by-cycle:\n%v",
			got, slow.Stats)
	}
	if ff.Regs != slow.Regs {
		t.Error("final register files diverge")
	}
	if !ff.Mem.Equal(slow.Mem) {
		t.Error("final memory images diverge")
	}
	return skipped
}

// TestFastForwardTransparentOnWorkloads checks transparency for every
// benchmark workload: the baseline program and the accelerated program in
// all four TCA integration modes.
func TestFastForwardTransparentOnWorkloads(t *testing.T) {
	type build struct {
		name string
		cfg  func() Config
		make func() (*workload.Workload, error)
	}
	builds := []build{
		{"synthetic", HighPerfConfig, func() (*workload.Workload, error) {
			return workload.Synthetic(workload.SyntheticConfig{
				Units: 40, UnitLen: 30, Regions: 12, RegionLen: 40,
				AccelLatency: 400, Seed: 1,
			})
		}},
		{"heap", LowPerfConfig, func() (*workload.Workload, error) {
			return workload.Heap(workload.HeapConfig{
				Operations: 120, FillerPerCall: 40, Prefill: 64, Seed: 2,
			})
		}},
		{"matmul", HighPerfConfig, func() (*workload.Workload, error) {
			return workload.MatMul(workload.MatMulConfig{N: 16, Block: 8, Tile: 4, Seed: 3})
		}},
		{"kvstore", A72Config, func() (*workload.Workload, error) {
			return workload.KVStore(workload.KVStoreConfig{
				Operations: 100, FillerPerOp: 30, Buckets: 256, Keys: 64,
				LookupPct: 70, KeyWords: 4, Seed: 4,
			})
		}},
		{"regex", HighPerfConfig, func() (*workload.Workload, error) {
			return workload.RegexMatch(workload.RegexMatchConfig{
				Pattern: "ab*c.d+", Matches: 40, FillerPerOp: 30,
				Inputs: 8, MaxLen: 24, Seed: 5,
			})
		}},
		{"stringmatch", LowPerfConfig, func() (*workload.Workload, error) {
			return workload.StringMatch(workload.StringMatchConfig{
				Comparisons: 60, FillerPerOp: 30, Dictionary: 12,
				MinWords: 4, MaxWords: 10, SharedPrefix: 3, Seed: 6,
			})
		}},
		{"multitca", HighPerfConfig, func() (*workload.Workload, error) {
			cfg := workload.DefaultMultiTCA()
			cfg.Calls = 60
			return workload.MultiTCA(cfg)
		}},
	}
	var totalSkipped int64
	for _, bld := range builds {
		w, err := bld.make()
		if err != nil {
			t.Fatalf("%s: %v", bld.name, err)
		}
		t.Run(bld.name+"-baseline", func(t *testing.T) {
			totalSkipped += assertFFTransparent(t, ffCase{
				name: bld.name, cfg: bld.cfg(), prog: w.Baseline,
			})
		})
		for _, m := range accel.AllModes {
			t.Run(fmt.Sprintf("%s-%s", bld.name, m), func(t *testing.T) {
				cfg := bld.cfg()
				cfg.Mode = m
				totalSkipped += assertFFTransparent(t, ffCase{
					name: bld.name, cfg: cfg, prog: w.Accelerated, dev: w.NewDevice,
				})
			})
		}
	}
	if totalSkipped == 0 {
		t.Error("fast-forward never engaged across the whole workload suite")
	}
}

// TestFastForwardTransparentPartialSpeculation covers the partial-
// speculation confidence gate, whose per-cycle AccelConfidenceWait counter
// fastForward must replicate.
func TestFastForwardTransparentPartialSpeculation(t *testing.T) {
	prog := partialProgram(300)
	for _, m := range []accel.Mode{accel.LNT, accel.LT} {
		for _, kind := range []string{"bimodal", "gshare"} {
			t.Run(fmt.Sprintf("%s-%s", m, kind), func(t *testing.T) {
				cfg := HighPerfConfig()
				cfg.Mode = m
				cfg.PartialSpeculation = true
				cfg.Predictor = PredictorConfig{Kind: kind}
				assertFFTransparent(t, ffCase{cfg: cfg, prog: prog, dev: heapDev})
			})
		}
	}
}

// TestFastForwardTransparentCoarseGrain drives the scenario the scheduler
// exists for — long-latency invocations under the NL drain and NT barrier,
// where nearly every cycle is idle — and demands substantial skipping.
func TestFastForwardTransparentCoarseGrain(t *testing.T) {
	prog := accelProgram(25, 30)
	for _, m := range accel.AllModes {
		t.Run(m.String(), func(t *testing.T) {
			cfg := LowPerfConfig()
			cfg.Mode = m
			skipped := assertFFTransparent(t, ffCase{
				cfg: cfg, prog: prog,
				dev: func() isa.AccelDevice { return accel.NewFixedLatency(20_000) },
			})
			// 25 invocations x 20000 busy cycles: the overwhelming
			// majority of simulated time is idle in every mode.
			if skipped < 100_000 {
				t.Errorf("skipped only %d cycles on a 20k-cycle-latency TCA", skipped)
			}
		})
	}
}

// TestFastForwardErrorParity pins the clamping behavior: the cycle budget
// and the deadlock watchdog must trip identically with and without
// fast-forwarding, including the cycle counts embedded in the messages.
func TestFastForwardErrorParity(t *testing.T) {
	runErr := func(prog *isa.Program, dev isa.AccelDevice, maxCycles int64, noFF bool) error {
		cfg := LowPerfConfig()
		cfg.Mode = accel.NLNT
		cfg.NoFastForward = noFF
		core, err := New(cfg, prog, dev)
		if err != nil {
			t.Fatal(err)
		}
		_, err = core.Run(maxCycles)
		return err
	}

	// Cycle budget: a coarse-grained run that cannot finish in time.
	prog := accelProgram(25, 30)
	dev := func() isa.AccelDevice { return accel.NewFixedLatency(20_000) }
	ffErr := runErr(prog, dev(), 50_000, false)
	slowErr := runErr(prog, dev(), 50_000, true)
	if ffErr == nil || slowErr == nil {
		t.Fatalf("cycle budget not exhausted: ff=%v slow=%v", ffErr, slowErr)
	}
	if ffErr.Error() != slowErr.Error() {
		t.Errorf("cycle-limit errors diverge:\nfast-forward: %v\ncycle-by-cycle: %v", ffErr, slowErr)
	}

	// Deadlock watchdog: a device that never finishes. The fixed-latency
	// device with a latency beyond the watchdog window behaves as one.
	b := isa.NewBuilder()
	b.MovI(isa.R(1), 5)
	b.Accel(isa.R(10), 0, isa.R(1))
	b.Halt()
	hang := b.MustBuild()
	hangDev := func() isa.AccelDevice { return accel.NewFixedLatency(2_000_000) }
	ffErr = runErr(hang, hangDev(), 100_000_000, false)
	slowErr = runErr(hang, hangDev(), 100_000_000, true)
	if ffErr == nil || slowErr == nil {
		t.Fatalf("watchdog did not trip: ff=%v slow=%v", ffErr, slowErr)
	}
	if ffErr.Error() != slowErr.Error() {
		t.Errorf("deadlock errors diverge:\nfast-forward: %v\ncycle-by-cycle: %v", ffErr, slowErr)
	}
}
