package sim

import (
	"fmt"
	"testing"

	"repro/internal/accel"
	"repro/internal/isa"
	"repro/internal/proggen"
	"repro/internal/tcmalloc"
)

// TestSimEquivalenceRandomPrograms is the load-bearing correctness test for
// the simulator: for random programs, the out-of-order core's final
// architectural state (registers, memory, instruction count) must exactly
// match the in-order functional interpreter's, across core configurations.
func TestSimEquivalenceRandomPrograms(t *testing.T) {
	configs := []func() Config{HighPerfConfig, LowPerfConfig, A72Config}
	for seed := int64(0); seed < 25; seed++ {
		prog := proggen.Generate(seed, proggen.DefaultOptions())
		cfg := configs[int(seed)%len(configs)]()
		t.Run(fmt.Sprintf("seed%d-%s", seed, cfg.Name), func(t *testing.T) {
			runBoth(t, cfg, prog, nil)
		})
	}
}

// TestSimEquivalenceWithFixedAccel repeats the differential test with TCA
// invocations present, across all four integration modes. This exercises
// speculative invocation and squash in the L modes and the drain/barrier
// machinery in the NL/NT modes.
func TestSimEquivalenceWithFixedAccel(t *testing.T) {
	opt := proggen.DefaultOptions()
	opt.AccelEvery = 2
	for seed := int64(100); seed < 112; seed++ {
		prog := proggen.Generate(seed, opt)
		for _, m := range accel.AllModes {
			t.Run(fmt.Sprintf("seed%d-%s", seed, m), func(t *testing.T) {
				cfg := HighPerfConfig()
				cfg.Mode = m
				runBoth(t, cfg, prog, func() isa.AccelDevice {
					return accel.NewFixedLatency(15)
				})
			})
		}
	}
}

// TestSimEquivalenceWithHeapAccel repeats the differential test with the
// stateful heap device, which requires journal rollback for correctness in
// the speculative modes.
func TestSimEquivalenceWithHeapAccel(t *testing.T) {
	opt := proggen.DefaultOptions()
	opt.AccelEvery = 2
	opt.HeapAccel = true
	for seed := int64(200); seed < 212; seed++ {
		prog := proggen.Generate(seed, opt)
		for _, m := range accel.AllModes {
			t.Run(fmt.Sprintf("seed%d-%s", seed, m), func(t *testing.T) {
				cfg := LowPerfConfig()
				cfg.Mode = m
				runBoth(t, cfg, prog, func() isa.AccelDevice {
					a := tcmalloc.New(0x200000, 1<<22)
					for c := 0; c < tcmalloc.NumClasses; c++ {
						if err := a.Refill(c, 256); err != nil {
							panic(err)
						}
					}
					return accel.NewHeap(a)
				})
			})
		}
	}
}

// TestSimEquivalenceWithPartialSpeculation repeats the accelerated
// differential test with the confidence gate active: in the L modes the
// gate delays speculative invocation starts behind low-confidence
// branches, reshaping squash/replay timing without ever being allowed to
// change architectural results.
func TestSimEquivalenceWithPartialSpeculation(t *testing.T) {
	opt := proggen.DefaultOptions()
	opt.AccelEvery = 2
	opt.HeapAccel = true
	for seed := int64(400); seed < 408; seed++ {
		prog := proggen.Generate(seed, opt)
		for _, m := range []accel.Mode{accel.LNT, accel.LT} {
			for _, kind := range []string{"bimodal", "gshare"} {
				t.Run(fmt.Sprintf("seed%d-%s-%s", seed, m, kind), func(t *testing.T) {
					cfg := HighPerfConfig()
					cfg.Mode = m
					cfg.PartialSpeculation = true
					cfg.Predictor = PredictorConfig{Kind: kind}
					runBoth(t, cfg, prog, func() isa.AccelDevice {
						a := tcmalloc.New(0x200000, 1<<22)
						for c := 0; c < tcmalloc.NumClasses; c++ {
							if err := a.Refill(c, 256); err != nil {
								panic(err)
							}
						}
						return accel.NewHeap(a)
					})
				})
			}
		}
	}
}

// TestSimEquivalenceStressSmallStructures shrinks every structure to force
// constant back-pressure (ROB/IQ/LSQ full, port conflicts), which is where
// queue-accounting bugs hide.
func TestSimEquivalenceStressSmallStructures(t *testing.T) {
	cfg := LowPerfConfig()
	cfg.Name = "tiny"
	cfg.ROBSize = 8
	cfg.IQSize = 4
	cfg.LSQSize = 4
	cfg.FetchWidth = 1
	cfg.DispatchWidth = 1
	cfg.IssueWidth = 1
	cfg.CommitWidth = 1
	cfg.IntALUs = 1
	cfg.MemPorts = 1
	for seed := int64(300); seed < 315; seed++ {
		prog := proggen.Generate(seed, proggen.DefaultOptions())
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runBoth(t, cfg, prog, nil)
		})
	}
}
