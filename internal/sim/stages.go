package sim

import (
	"repro/internal/bpred"
	"repro/internal/isa"
)

// issue scans the ROB oldest-first and starts execution of ready
// instructions, up to IssueWidth per cycle. The oldest-first order gives
// age priority at the shared memory ports. The scan touches only the hot
// slab until an entry can actually issue or raises a hazard.
func (c *Core) issue() {
	issued := 0
	sawUnissuedStore := false    // an older store has not produced addr+data yet
	sawStoreAddrUnknown := false // an older store's address is still unknown
	sawUnstartedAccel := false   // an older TCA invocation has not begun
	sawUnstartedMemAccel := false
	sawLowConfBranch := false // an older unresolved low-confidence branch

	partial := c.cfg.PartialSpeculation && c.cfg.Mode.Leading()

	// Only waiting entries can issue or raise ordering hazards, so the
	// scan stops once it has seen them all (iqCount tracks exactly the
	// waiting population).
	remaining := c.iqCount
	for i := 0; i < c.rob.len() && issued < c.cfg.IssueWidth && remaining > 0; i++ {
		h := c.rob.hotAt(i)
		if partial && h.op.IsCondBranch() && h.state != sDone && !c.rob.at(i).predConfident {
			sawLowConfBranch = true
		}
		if h.state != sWaiting {
			continue
		}
		remaining--
		e := c.rob.at(i)
		ok := false
		switch {
		case h.op == isa.OpAccel:
			ok = c.tryStartAccel(i, h, e, sawUnissuedStore, sawUnstartedAccel, sawUnstartedMemAccel, partial && sawLowConfBranch)
		case h.op.IsLoad():
			storeHazard := sawStoreAddrUnknown
			if c.cfg.ConservativeLoadOrdering {
				storeHazard = sawUnissuedStore
			}
			ok = c.tryIssueLoad(i, h, e, storeHazard, sawUnstartedMemAccel)
		case h.op.IsStore():
			// Store address generation is decoupled from the data:
			// the address resolves as soon as the base register is
			// ready, letting younger loads disambiguate early the
			// way real LSQs do.
			if !e.addrKnown && h.pendMask&uint8(use1) == 0 {
				e.addr = e.operandValue(0) + uint64(e.in.Imm)
				e.addrKnown = true
				c.quiet = false // a state change even when the store stays waiting
			}
			ok = c.tryIssueStore(h, e)
		default:
			ok = c.tryIssueSimple(h, e)
		}
		if ok {
			e.issueCycle = c.now
			c.iqCount--
			c.issuedCount++
			c.noteIssued(h)
			c.quiet = false
			issued++
			continue
		}
		// Still waiting: record ordering hazards for younger entries.
		if h.op.IsStore() {
			sawUnissuedStore = true
			if !e.addrKnown {
				sawStoreAddrUnknown = true
			}
		}
		if h.op == isa.OpAccel {
			sawUnstartedAccel = true
			if devUsesMemory(c.dev) {
				sawUnstartedMemAccel = true
			}
		}
	}
}

// tryIssueSimple handles ALU, FP, branch, and immediate-move instructions.
func (c *Core) tryIssueSimple(h *robHot, e *robEntry) bool {
	if h.pendMask != 0 {
		return false
	}
	op := h.op
	lat := int64(c.cfg.opLatency(op))
	busyUntil := c.now + 1
	if unpipelined(op) {
		busyUntil = c.now + lat
	}
	if !c.grabFU(fuFor(op), busyUntil) {
		return false
	}
	h.state = sIssued
	h.readyCycle = c.now + lat

	switch {
	case op.IsCondBranch():
		e.actualTaken = isa.EvalBranch(op, e.operandValue(0), e.operandValue(1))
		if e.actualTaken {
			e.nextPC = int(e.in.Imm)
		} else {
			e.nextPC = e.pc + 1
		}
		predNext := e.pc + 1
		if e.predTaken {
			predNext = int(e.in.Imm)
		}
		e.mispredict = e.nextPC != predNext
	case op == isa.OpMovI || op == isa.OpFMovI:
		e.val = uint64(e.in.Imm)
	case op == isa.OpAddI:
		e.val = e.operandValue(0) + uint64(e.in.Imm)
	case op == isa.OpFMA:
		e.val = fmaBits(e.operandValue(0), e.operandValue(1), e.operandValue(2))
	case op == isa.OpNop || op == isa.OpJmp:
		// no result
	case op.IsFP():
		e.val = isa.EvalFP(op, e.operandValue(0), e.operandValue(1))
	default:
		e.val = isa.EvalALU(op, e.operandValue(0), e.operandValue(1))
	}
	return true
}

// tryIssueStore completes a store's address and data capture; the memory
// write happens at commit.
func (c *Core) tryIssueStore(h *robHot, e *robEntry) bool {
	if h.pendMask != 0 {
		return false
	}
	h.state = sIssued
	h.readyCycle = c.now + 1
	e.addr = e.operandValue(0) + uint64(e.in.Imm)
	e.storeData = e.operandValue(1)
	e.addrKnown = true
	return true
}

// forwardStatus is the outcome of searching older in-flight writes.
type forwardStatus uint8

const (
	fwdNone  forwardStatus = iota // no older write to the word
	fwdHit                        // forwardable value found
	fwdBlock                      // matching older store's data not ready yet
)

// tryIssueLoad issues a load once every older store's address is known
// (decoupled store AGU) and every older memory-using TCA has produced its
// stores. Matching older writes forward their data; otherwise the load
// goes to the cache through a shared port.
func (c *Core) tryIssueLoad(pos int, h *robHot, e *robEntry, olderStoreAddrUnknown, olderMemAccelPending bool) bool {
	if h.pendMask != 0 || olderStoreAddrUnknown || olderMemAccelPending {
		return false
	}
	e.addr = e.operandValue(0) + uint64(e.in.Imm)
	e.addrKnown = true
	word := e.addr >> 3

	// Newest older write to the same word wins.
	v, when, status := c.forwardScan(pos, word)
	switch status {
	case fwdBlock:
		return false
	case fwdHit:
		h.state = sIssued
		e.forwarded = true
		e.val = v
		h.readyCycle = max(c.now+2, when+1)
		return true
	}
	h.state = sIssued
	grant := c.portGrant(c.now + 1) // one AGU cycle, then the port
	h.readyCycle = c.hier.Access(grant, e.addr, false)
	e.val = c.mem.Load(e.addr)
	return true
}

// forwardScan looks newest-first through older in-flight writes for the
// given word address. A matching store that has not captured its data yet
// blocks the load (fwdBlock).
func (c *Core) forwardScan(pos int, word uint64) (val uint64, when int64, status forwardStatus) {
	for i := pos - 1; i >= 0; i-- {
		oh := c.rob.hotAt(i)
		switch {
		case oh.op.IsStore():
			o := c.rob.at(i)
			if !o.addrKnown || o.addr>>3 != word {
				continue
			}
			if oh.state == sWaiting {
				return 0, 0, fwdBlock
			}
			return o.storeData, oh.readyCycle, fwdHit
		case oh.op == isa.OpAccel:
			o := c.rob.at(i)
			if !o.accelStarted {
				continue
			}
			stores := c.accelStoresOf(o)
			for j := len(stores) - 1; j >= 0; j-- {
				if stores[j].Addr>>3 == word {
					return stores[j].Data, oh.readyCycle, fwdHit
				}
			}
		}
	}
	return 0, 0, fwdNone
}

// dispatch moves instructions from the front-end queue into the ROB and
// issue queue, renaming their sources. It models the NT barrier: while a
// non-trailing TCA is in flight, dispatch is frozen.
func (c *Core) dispatch() {
	// Each stall return records the incremented counter: on a quiet cycle
	// dispatch increments exactly one, and the cause is pinned until the
	// event horizon, so fastForward replicates it per skipped cycle.
	for n := 0; n < c.cfg.DispatchWidth; n++ {
		if c.barrierActive {
			c.stats.DispatchStalls.Barrier++
			c.cycleStall = &c.stats.DispatchStalls.Barrier
			return
		}
		if c.fetchHead >= len(c.fetchQ) || c.fetchQ[c.fetchHead].availAt > c.now {
			c.stats.DispatchStalls.FrontEnd++
			c.cycleStall = &c.stats.DispatchStalls.FrontEnd
			return
		}
		if c.rob.full() {
			c.stats.DispatchStalls.ROBFull++
			c.cycleStall = &c.stats.DispatchStalls.ROBFull
			return
		}
		if c.iqCount >= c.cfg.IQSize {
			c.stats.DispatchStalls.IQFull++
			c.cycleStall = &c.stats.DispatchStalls.IQFull
			return
		}
		f := c.fetchQ[c.fetchHead]
		if f.in.Op.IsMem() && c.lsqCount >= c.cfg.LSQSize {
			c.stats.DispatchStalls.LSQFull++
			c.cycleStall = &c.stats.DispatchStalls.LSQFull
			return
		}
		c.fetchHead++
		c.quiet = false

		h, e := c.rob.push()
		*h = robHot{
			seq:        c.seq,
			op:         f.in.Op,
			state:      sWaiting,
			readyCycle: c.now,
		}
		*e = robEntry{
			pc:            f.pc,
			in:            f.in,
			dispatchCycle: c.now,
			predTaken:     f.predTaken,
			predConfident: f.predConfident,
		}
		c.seq++

		// Rename sources.
		m := srcMask(f.in.Op)
		fields := [3]isa.Reg{f.in.Src1, f.in.Src2, f.in.Src3}
		for i, r := range fields {
			if m&(1<<uint(i)) == 0 || r == isa.RZero {
				continue
			}
			if rn := c.rename[r]; rn.valid {
				if pi := c.rob.indexOf(rn.seq); pi >= 0 {
					if ph := c.rob.hotAt(pi); ph.state != sDone {
						e.srcs[i] = operand{producer: rn.seq}
						h.pendMask |= 1 << uint(i)
						ph.wakeUses++
					} else {
						e.srcs[i] = operand{value: c.rob.at(pi).val}
					}
					continue
				}
			}
			e.srcs[i] = operand{value: c.arf[r]}
		}
		if f.in.HasDst() {
			c.rename[f.in.Dst].valid = true
			c.rename[f.in.Dst].seq = h.seq
		}

		switch f.in.Op {
		case isa.OpHalt:
			// Halt needs no execution.
			h.state = sDone
			e.issueCycle = c.now
		case isa.OpAccel:
			c.accelDispatched = true
			c.iqCount++
			if !c.cfg.Mode.Trailing() {
				c.barrierActive = true
				c.barrierSeq = h.seq
			}
		default:
			c.iqCount++
		}
		if f.in.Op.IsMem() {
			c.lsqCount++
		}
	}
}

// Instruction-side addressing: 4 bytes per instruction in a dedicated
// region far above data addresses, so I- and D-lines never alias in the
// shared L2.
const (
	instrBytes = 4
	iSpaceBase = uint64(1) << 40
)

// iLineOf returns the instruction-cache line index holding pc.
func (c *Core) iLineOf(pc int) int64 {
	return int64(pc) * instrBytes / 64
}

// fetch fills the front-end queue along the predicted path, paying
// instruction-cache latency at line boundaries when the I-side is modeled.
func (c *Core) fetch() {
	if c.fetchStopped || c.now < c.fetchResumeAt {
		return
	}
	capacity := c.cfg.FetchWidth * (c.cfg.FrontEndDepth + 2)
	// Reclaim the consumed prefix so appends reuse the backing array.
	if c.fetchHead > 0 {
		if c.fetchHead == len(c.fetchQ) {
			c.fetchQ = c.fetchQ[:0]
			c.fetchHead = 0
		} else if c.fetchHead >= capacity {
			n := copy(c.fetchQ, c.fetchQ[c.fetchHead:])
			c.fetchQ = c.fetchQ[:n]
			c.fetchHead = 0
		}
	}
	for n := 0; n < c.cfg.FetchWidth && len(c.fetchQ)-c.fetchHead < capacity; n++ {
		// Every path below changes state (stop, I-line switch, or an
		// append), so reaching the body at all marks the cycle active.
		c.quiet = false
		if c.fetchPC < 0 || c.fetchPC >= len(c.prog.Code) {
			// Wrong-path fetch ran off the program; stall until a
			// squash redirects fetch.
			c.fetchStopped = true
			return
		}
		if c.hier.IFetchEnabled() {
			if line := c.iLineOf(c.fetchPC); line != c.curFetchLine {
				c.curFetchLine = line
				addr := iSpaceBase + uint64(line)*64
				done := c.hier.IFetch(c.now, addr)
				if wait := done - int64(c.cfg.Memory.L1I.HitLatency); wait > c.now {
					// Line not ready: resume when it arrives. The hit
					// latency itself is folded into FrontEndDepth.
					c.fetchResumeAt = wait
					return
				}
			}
		}
		in := c.prog.Code[c.fetchPC]
		if in.Op == isa.OpAccel {
			// The first accel fetch (wrong-path included) is the warmup
			// boundary RunToAccelFetch pauses at: the appended OpAccel
			// cannot dispatch before the next cycle, so pausing at now+1
			// still precedes every suffix-config-dependent decision.
			c.sawAccelFetch = true
			if c.pauseOnAccelFetch {
				c.pauseAt = c.now + 1
			}
		}
		f := fetchedInst{pc: c.fetchPC, in: in, availAt: c.now + int64(c.cfg.FrontEndDepth)}
		c.stats.Fetched++
		switch {
		case in.Op == isa.OpHalt:
			c.fetchQ = append(c.fetchQ, f)
			c.fetchStopped = true
			return
		case in.Op == isa.OpJmp:
			c.fetchQ = append(c.fetchQ, f)
			c.fetchPC = int(in.Imm)
		case in.Op.IsCondBranch():
			f.predTaken = c.pred.Predict(uint64(c.fetchPC))
			f.predConfident = true
			if ce, ok := c.pred.(bpred.ConfidenceEstimator); ok {
				f.predConfident = ce.Confident(uint64(c.fetchPC))
			}
			c.fetchQ = append(c.fetchQ, f)
			if f.predTaken {
				c.fetchPC = int(in.Imm)
			} else {
				c.fetchPC++
			}
		default:
			c.fetchQ = append(c.fetchQ, f)
			c.fetchPC++
		}
	}
}
