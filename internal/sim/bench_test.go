package sim

import (
	"testing"

	"repro/internal/accel"
	"repro/internal/isa"
)

// benchRun simulates one program/device/mode combination to completion.
// check: "skip" demands the scheduler engaged, "noskip" that it never did,
// "any" imposes nothing.
func benchRun(b *testing.B, cfg Config, prog *isa.Program, dev func() isa.AccelDevice, check string) {
	b.Helper()
	var lastSkipped int64
	for i := 0; i < b.N; i++ {
		var d isa.AccelDevice
		if dev != nil {
			d = dev()
		}
		core, err := New(cfg, prog, d)
		if err != nil {
			b.Fatal(err)
		}
		res, err := core.Run(2_000_000_000)
		if err != nil {
			b.Fatal(err)
		}
		lastSkipped = res.Stats.FastForwardedCycles
	}
	switch check {
	case "skip":
		if lastSkipped == 0 {
			b.Fatal("fast-forward never engaged on a bench built to exercise it")
		}
	case "noskip":
		if lastSkipped != 0 {
			b.Fatalf("NoFastForward bench skipped %d cycles", lastSkipped)
		}
	}
}

// BenchmarkRunFineGrain measures the per-cycle cost on a fine-grained
// workload: short TCA invocations (15 cycles) amid ALU filler, fully
// speculative, so most cycles have real work and fast-forwarding rarely
// engages. This guards the scheduler's overhead on busy code.
func BenchmarkRunFineGrain(b *testing.B) {
	prog := accelProgram(200, 20)
	cfg := HighPerfConfig()
	cfg.Mode = accel.LT
	dev := func() isa.AccelDevice { return accel.NewFixedLatency(15) }
	b.Run("FastForward", func(b *testing.B) {
		benchRun(b, cfg, prog, dev, "any")
	})
	cfgSlow := cfg
	cfgSlow.NoFastForward = true
	b.Run("NoFastForward", func(b *testing.B) {
		benchRun(b, cfgSlow, prog, dev, "noskip")
	})
}

// BenchmarkRunCoarseGrainNL_NT measures the scenario the event-horizon
// scheduler targets: 40 coarse-grained invocations (20k cycles each) under
// the NL drain and NT dispatch barrier, where almost every simulated cycle
// is idle. The FastForward variant must beat NoFastForward by >= 3x — the
// PR's headline acceptance criterion, recorded in BENCH_PR3.json.
func BenchmarkRunCoarseGrainNL_NT(b *testing.B) {
	prog := accelProgram(40, 30)
	cfg := LowPerfConfig()
	cfg.Mode = accel.NLNT
	dev := func() isa.AccelDevice { return accel.NewFixedLatency(20_000) }
	b.Run("FastForward", func(b *testing.B) {
		benchRun(b, cfg, prog, dev, "skip")
	})
	cfgSlow := cfg
	cfgSlow.NoFastForward = true
	b.Run("NoFastForward", func(b *testing.B) {
		benchRun(b, cfgSlow, prog, dev, "noskip")
	})
}
