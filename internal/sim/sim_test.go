package sim

import (
	"testing"

	"repro/internal/accel"
	"repro/internal/isa"
	"repro/internal/tcmalloc"
)

// runBoth executes prog on the interpreter and the simulator and fails the
// test on any architectural divergence. It returns the simulation result.
// devFor builds a fresh device per execution engine (devices are stateful).
func runBoth(t *testing.T, cfg Config, prog *isa.Program, devFor func() isa.AccelDevice) *Result {
	t.Helper()
	var idev, sdev isa.AccelDevice
	if devFor != nil {
		idev, sdev = devFor(), devFor()
	}
	it := isa.NewInterp(prog, idev)
	if err := it.Run(50_000_000); err != nil {
		t.Fatalf("interpreter: %v", err)
	}
	core, err := New(cfg, prog, sdev)
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	res, err := core.Run(200_000_000)
	if err != nil {
		t.Fatalf("sim.Run: %v", err)
	}
	if res.Stats.Committed != it.Stats.Retired {
		t.Errorf("committed %d != retired %d", res.Stats.Committed, it.Stats.Retired)
	}
	for r := 0; r < isa.NumRegs; r++ {
		if res.Regs[r] != it.Regs[r] {
			t.Errorf("reg %s: sim %#x != interp %#x", isa.Reg(r), res.Regs[r], it.Regs[r])
		}
	}
	if !res.Mem.Equal(it.Mem) {
		t.Error("final memory images differ")
	}
	return res
}

func sumProgram(n int64) *isa.Program {
	b := isa.NewBuilder()
	b.MovI(isa.R(1), 0)
	b.MovI(isa.R(2), 1)
	b.MovI(isa.R(3), n)
	b.Label("loop")
	b.Add(isa.R(1), isa.R(1), isa.R(2))
	b.AddI(isa.R(2), isa.R(2), 1)
	b.Bge(isa.R(3), isa.R(2), "loop")
	b.MovI(isa.R(4), 0x1000)
	b.Store(isa.R(1), isa.R(4), 0)
	b.Halt()
	return b.MustBuild()
}

func TestSimMatchesInterpreterOnLoop(t *testing.T) {
	res := runBoth(t, HighPerfConfig(), sumProgram(500), nil)
	if res.Regs[isa.R(1)] != 125250 {
		t.Errorf("sum = %d, want 125250", res.Regs[isa.R(1)])
	}
	if res.Stats.Cycles <= 0 {
		t.Error("no cycles recorded")
	}
}

func TestSimIPCOnIndependentALUWork(t *testing.T) {
	// 4000 independent single-cycle adds on an HP core should sustain an
	// IPC close to the 4-wide dispatch limit.
	b := isa.NewBuilder()
	for i := 0; i < 4000; i++ {
		b.AddI(isa.R(1+i%8), isa.RZero, int64(i))
	}
	b.Halt()
	res := runBoth(t, HighPerfConfig(), b.MustBuild(), nil)
	if ipc := res.Stats.IPC(); ipc < 3.0 {
		t.Errorf("IPC = %.2f, want near 4 on independent work", ipc)
	}
}

func TestSimSerialDependencyChainIPC(t *testing.T) {
	// A pure dependency chain cannot exceed IPC 1.
	b := isa.NewBuilder()
	b.MovI(isa.R(1), 0)
	for i := 0; i < 2000; i++ {
		b.AddI(isa.R(1), isa.R(1), 1)
	}
	b.Halt()
	res := runBoth(t, HighPerfConfig(), b.MustBuild(), nil)
	if ipc := res.Stats.IPC(); ipc > 1.05 {
		t.Errorf("IPC = %.2f on a serial chain, want <= ~1", ipc)
	}
	if res.Regs[isa.R(1)] != 2000 {
		t.Errorf("chain result = %d, want 2000", res.Regs[isa.R(1)])
	}
}

func TestSimStoreToLoadForwarding(t *testing.T) {
	b := isa.NewBuilder()
	b.MovI(isa.R(1), 0x2000)
	b.MovI(isa.R(2), 77)
	b.Store(isa.R(2), isa.R(1), 0)
	b.Load(isa.R(3), isa.R(1), 0) // must forward from the in-flight store
	b.Store(isa.R(3), isa.R(1), 8)
	b.Halt()
	res := runBoth(t, HighPerfConfig(), b.MustBuild(), nil)
	if res.Regs[isa.R(3)] != 77 {
		t.Errorf("forwarded load = %d, want 77", res.Regs[isa.R(3)])
	}
	if res.Stats.LoadsForwarded != 1 {
		t.Errorf("forwarded = %d, want 1", res.Stats.LoadsForwarded)
	}
}

func TestSimBranchMispredictRecovery(t *testing.T) {
	// A data-dependent alternating branch defeats the predictor early;
	// correctness must be unaffected.
	b := isa.NewBuilder()
	b.MovI(isa.R(1), 0)  // i
	b.MovI(isa.R(2), 0)  // acc
	b.MovI(isa.R(3), 64) // limit
	b.Label("loop")
	b.AddI(isa.R(4), isa.RZero, 1)
	b.And(isa.R(4), isa.R(1), isa.R(4)) // i & 1
	b.Beq(isa.R(4), isa.RZero, "even")
	b.AddI(isa.R(2), isa.R(2), 100)
	b.Jmp("next")
	b.Label("even")
	b.AddI(isa.R(2), isa.R(2), 1)
	b.Label("next")
	b.AddI(isa.R(1), isa.R(1), 1)
	b.Blt(isa.R(1), isa.R(3), "loop")
	b.Halt()
	res := runBoth(t, HighPerfConfig(), b.MustBuild(), nil)
	if want := uint64(32*100 + 32); res.Regs[isa.R(2)] != want {
		t.Errorf("acc = %d, want %d", res.Regs[isa.R(2)], want)
	}
	if res.Stats.Mispredicts == 0 {
		t.Error("expected some mispredicts on a data-dependent branch")
	}
	if res.Stats.Squashed == 0 {
		t.Error("mispredicts must squash wrong-path work")
	}
}

// accelProgram interleaves fixed-latency TCA invocations with independent
// ALU filler.
func accelProgram(invocations, fillerPer int) *isa.Program {
	b := isa.NewBuilder()
	b.MovI(isa.R(1), 5)
	for i := 0; i < invocations; i++ {
		for f := 0; f < fillerPer; f++ {
			b.AddI(isa.R(2+f%6), isa.RZero, int64(f))
		}
		b.Accel(isa.R(10), 0, isa.R(1))
	}
	b.Halt()
	return b.MustBuild()
}

func TestSimAccelModesOrdering(t *testing.T) {
	prog := accelProgram(60, 30)
	cycles := make(map[accel.Mode]int64)
	for _, m := range accel.AllModes {
		cfg := HighPerfConfig()
		cfg.Mode = m
		res := runBoth(t, cfg, prog, func() isa.AccelDevice { return accel.NewFixedLatency(40) })
		cycles[m] = res.Stats.Cycles
		if res.Stats.AccelCommitted != 60 {
			t.Fatalf("%s: accel committed = %d, want 60", m, res.Stats.AccelCommitted)
		}
	}
	// The paper's fundamental ordering: more concurrency is never slower.
	if cycles[accel.LT] > cycles[accel.NLT] || cycles[accel.LT] > cycles[accel.LNT] {
		t.Errorf("L_T (%d) must be fastest (NL_T %d, L_NT %d)",
			cycles[accel.LT], cycles[accel.NLT], cycles[accel.LNT])
	}
	if cycles[accel.NLNT] < cycles[accel.LNT] || cycles[accel.NLNT] < cycles[accel.NLT] {
		t.Errorf("NL_NT (%d) must be slowest (L_NT %d, NL_T %d)",
			cycles[accel.NLNT], cycles[accel.LNT], cycles[accel.NLT])
	}
	// Fine-grained invocations must actually separate the modes.
	if cycles[accel.NLNT] == cycles[accel.LT] {
		t.Error("modes indistinguishable; drain/barrier penalties not modeled")
	}
}

func TestSimNTBarrierStalls(t *testing.T) {
	prog := accelProgram(20, 10)
	for _, m := range []accel.Mode{accel.NLNT, accel.LNT} {
		cfg := HighPerfConfig()
		cfg.Mode = m
		core, _ := New(cfg, prog, accel.NewFixedLatency(50))
		res, err := core.Run(10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.DispatchStalls.Barrier == 0 {
			t.Errorf("%s: no barrier stalls recorded", m)
		}
	}
	for _, m := range []accel.Mode{accel.NLT, accel.LT} {
		cfg := HighPerfConfig()
		cfg.Mode = m
		core, _ := New(cfg, prog, accel.NewFixedLatency(50))
		res, err := core.Run(10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.DispatchStalls.Barrier != 0 {
			t.Errorf("%s: barrier stalls in a trailing mode", m)
		}
	}
}

func TestSimNLDrainWait(t *testing.T) {
	prog := accelProgram(20, 40)
	cfg := HighPerfConfig()
	cfg.Mode = accel.NLT
	core, _ := New(cfg, prog, accel.NewFixedLatency(30))
	res, err := core.Run(10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.AccelDrainWait == 0 {
		t.Error("NL mode recorded no drain wait")
	}
}

func TestSimAccelEventTrace(t *testing.T) {
	prog := accelProgram(5, 10)
	cfg := HighPerfConfig()
	cfg.RecordAccelEvents = true
	core, _ := New(cfg, prog, accel.NewFixedLatency(25))
	res, err := core.Run(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats.AccelEvents) != 5 {
		t.Fatalf("events = %d, want 5", len(res.Stats.AccelEvents))
	}
	for _, ev := range res.Stats.AccelEvents {
		if !(ev.Dispatch <= ev.Start && ev.Start < ev.Done && ev.Done <= ev.Commit) {
			t.Errorf("event ordering violated: %+v", ev)
		}
		if ev.Done-ev.Start < 25 {
			t.Errorf("accel executed in %d cycles, latency is 25", ev.Done-ev.Start)
		}
	}
}

func TestSimHeapDeviceWithSpeculation(t *testing.T) {
	// Heap TCA under a mispredicting branch: journal rollback must keep
	// the simulator's allocator state identical to the interpreter's.
	build := func() *isa.Program {
		b := isa.NewBuilder()
		b.MovI(isa.R(1), 0)  // i
		b.MovI(isa.R(3), 48) // malloc size
		b.MovI(isa.R(5), 0x8000)
		b.Label("loop")
		b.AddI(isa.R(4), isa.RZero, 3)
		b.Rem(isa.R(4), isa.R(1), isa.R(4))
		b.Beq(isa.R(4), isa.RZero, "skip") // taken every 3rd iteration
		b.Accel(isa.R(6), accel.HeapMalloc, isa.R(3))
		b.Store(isa.R(6), isa.R(5), 0)
		b.AddI(isa.R(5), isa.R(5), 8)
		b.Accel(isa.R(7), accel.HeapFree, isa.R(6))
		b.Label("skip")
		b.AddI(isa.R(1), isa.R(1), 1)
		b.MovI(isa.R(2), 90)
		b.Blt(isa.R(1), isa.R(2), "loop")
		b.Halt()
		return b.MustBuild()
	}
	mkdev := func() isa.AccelDevice {
		a := tcmalloc.New(0x100000, 1<<20)
		if err := a.Refill(1, 64); err != nil {
			panic(err)
		}
		return accel.NewHeap(a)
	}
	for _, m := range accel.AllModes {
		cfg := HighPerfConfig()
		cfg.Mode = m
		res := runBoth(t, cfg, build(), mkdev)
		if res.Stats.AccelCommitted != 120 { // 60 iterations * 2 calls
			t.Errorf("%s: accel committed = %d, want 120", m, res.Stats.AccelCommitted)
		}
	}
}

func TestSimConfigValidation(t *testing.T) {
	cfg := HighPerfConfig()
	cfg.ROBSize = 0
	if _, err := New(cfg, sumProgram(1), nil); err == nil {
		t.Error("invalid config accepted")
	}
	if err := HighPerfConfig().Validate(); err != nil {
		t.Errorf("HP preset invalid: %v", err)
	}
	if err := LowPerfConfig().Validate(); err != nil {
		t.Errorf("LP preset invalid: %v", err)
	}
	if err := A72Config().Validate(); err != nil {
		t.Errorf("A72 preset invalid: %v", err)
	}
}

func TestSimRejectsAccelWithoutDevice(t *testing.T) {
	if _, err := New(HighPerfConfig(), accelProgram(1, 1), nil); err == nil {
		t.Error("accel program without device accepted")
	}
}

func TestSimCycleLimit(t *testing.T) {
	core, _ := New(HighPerfConfig(), sumProgram(100000), nil)
	if _, err := core.Run(100); err == nil {
		t.Error("expected cycle-limit error")
	}
}

func TestSimLowPerfSlowerThanHighPerf(t *testing.T) {
	prog := sumProgram(2000)
	hp, _ := New(HighPerfConfig(), prog, nil)
	lp, _ := New(LowPerfConfig(), prog, nil)
	hres, err := hp.Run(10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	lres, err := lp.Run(10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if lres.Stats.Cycles <= hres.Stats.Cycles {
		t.Errorf("LP (%d cycles) not slower than HP (%d cycles)",
			lres.Stats.Cycles, hres.Stats.Cycles)
	}
}
