package sim

import "repro/internal/isa"

// entryState tracks an instruction's progress through the backend.
type entryState uint8

const (
	// sWaiting: dispatched, in the issue queue, not yet executing.
	sWaiting entryState = iota
	// sIssued: executing; result arrives at readyCycle.
	sIssued
	// sDone: execution complete; eligible to commit after CommitDelay.
	sDone
)

// operand is one renamed source: either the value is known, or the entry's
// pendMask bit for this source is set and producer names the sequence number
// being waited on.
type operand struct {
	producer uint64
	value    uint64
}

// robHot is the per-entry state the busy-cycle scans actually touch: the
// issue scan reads state and pendMask for every waiting entry, wakeup reads
// state/pendMask/wakeUses, completion matches seq and readyCycle, and the
// horizon probes state/readyCycle/op. Packing these into their own slab
// keeps the scan's working set at a few cache lines per ROB sweep instead
// of dragging the full entry (robEntry, several lines each) through cache.
type robHot struct {
	seq        uint64
	readyCycle int64
	op         isa.Op
	state      entryState
	// pendMask has bit i set while source i waits on a producer
	// (srcs[i].producer in the cold entry). All sources ready == 0.
	pendMask uint8
	// wakeUses counts pending dependent operands waiting on this entry's
	// result, so wake() can stop scanning once every consumer is served
	// (and skip the scan entirely for results nobody waits on).
	wakeUses int32
}

// robEntry is the cold remainder of one in-flight instruction: fields
// touched once or twice per instruction (dispatch, execute, commit) rather
// than per scan cycle.
type robEntry struct {
	pc            int
	in            isa.Instruction
	dispatchCycle int64
	issueCycle    int64

	// srcs correspond to Src1, Src2, Src3; only fields named by srcMask
	// are meaningful.
	srcs [3]operand

	val uint64 // result value

	// Branch bookkeeping.
	predTaken     bool
	predConfident bool // prediction was high confidence at fetch
	actualTaken   bool
	nextPC        int // resolved next pc
	mispredict    bool

	// Memory bookkeeping.
	addrKnown bool
	addr      uint64
	storeData uint64
	forwarded bool

	// Accelerator bookkeeping. The invocation's pending stores live in the
	// core's shared accelStores arena as the range
	// [storeOff, storeOff+storeCount) — see Core.accelStoresOf.
	accelStarted bool
	accelHasMark bool
	accelMark    int
	storeOff     int
	storeCount   int
	accelMemOps  int
	accelStart   int64
	accelHeld    int64 // cycles held ready by the NL restriction
}

// srcUse flags which instruction fields an opcode reads.
type srcUse uint8

const (
	use1 srcUse = 1 << iota
	use2
	use3
)

func srcMask(op isa.Op) srcUse {
	switch op {
	case isa.OpNop, isa.OpHalt, isa.OpMovI, isa.OpFMovI, isa.OpJmp:
		return 0
	case isa.OpAddI, isa.OpLoad, isa.OpFLoad:
		return use1
	case isa.OpFMA, isa.OpAccel:
		return use1 | use2 | use3
	default:
		return use1 | use2
	}
}

// robQueue is a ring buffer of in-flight instructions, oldest first, split
// into parallel hot/cold slabs indexed identically (struct-of-arrays).
// Sequence numbers of resident entries are contiguous, so lookup by seq is
// O(1). The backing arrays are a power of two so position arithmetic is a
// mask, which matters: hotAt() is the simulator's hottest operation.
type robQueue struct {
	hot   []robHot
	cold  []robEntry
	mask  int
	head  int
	count int
	limit int // architectural capacity (<= len(hot))
}

func newROBQueue(capacity int) *robQueue {
	size := 1
	for size < capacity {
		size <<= 1
	}
	return &robQueue{
		hot:   make([]robHot, size),
		cold:  make([]robEntry, size),
		mask:  size - 1,
		limit: capacity,
	}
}

func (q *robQueue) len() int   { return q.count }
func (q *robQueue) full() bool { return q.count == q.limit }

// hotAt returns the i'th oldest entry's hot state (0 = head).
func (q *robQueue) hotAt(i int) *robHot {
	return &q.hot[(q.head+i)&q.mask]
}

// at returns the i'th oldest entry's cold state (0 = head).
func (q *robQueue) at(i int) *robEntry {
	return &q.cold[(q.head+i)&q.mask]
}

// indexOf returns the position (0 = head) of the resident entry with the
// given sequence number, or -1. Residents are seq-contiguous, so this is
// O(1).
func (q *robQueue) indexOf(seq uint64) int {
	if q.count == 0 {
		return -1
	}
	first := q.hotAt(0).seq
	if seq < first || seq >= first+uint64(q.count) {
		return -1
	}
	return int(seq - first)
}

// push appends a new entry and returns both halves for initialization.
func (q *robQueue) push() (*robHot, *robEntry) {
	i := (q.head + q.count) & q.mask
	q.count++
	return &q.hot[i], &q.cold[i]
}

// popHead removes the oldest entry.
func (q *robQueue) popHead() {
	q.head = (q.head + 1) & q.mask
	q.count--
}

// truncate keeps only the n oldest entries (squash).
func (q *robQueue) truncate(n int) {
	q.count = n
}
