package sim

import "repro/internal/isa"

// entryState tracks an instruction's progress through the backend.
type entryState uint8

const (
	// sWaiting: dispatched, in the issue queue, not yet executing.
	sWaiting entryState = iota
	// sIssued: executing; result arrives at readyCycle.
	sIssued
	// sDone: execution complete; eligible to commit after CommitDelay.
	sDone
)

// operand is one renamed source. Either the value is known, or it waits on
// the producer with the given sequence number.
type operand struct {
	pending  bool
	producer uint64
	value    uint64
}

// robEntry is one in-flight instruction.
type robEntry struct {
	seq           uint64
	pc            int
	in            isa.Instruction
	state         entryState
	dispatchCycle int64
	issueCycle    int64
	readyCycle    int64

	// srcs correspond to Src1, Src2, Src3; only fields named by srcMask
	// are meaningful.
	srcs [3]operand

	val uint64 // result value

	// wakeUses counts pending dependent operands waiting on this entry's
	// result, so wake() can stop scanning once every consumer is served
	// (and skip the scan entirely for results nobody waits on).
	wakeUses int

	// Branch bookkeeping.
	predTaken     bool
	predConfident bool // prediction was high confidence at fetch
	actualTaken   bool
	nextPC        int // resolved next pc
	mispredict    bool

	// Memory bookkeeping.
	addrKnown bool
	addr      uint64
	storeData uint64
	forwarded bool

	// Accelerator bookkeeping.
	accelStarted bool
	accelHasMark bool
	accelMark    int
	accelStores  []isa.AccelStore
	accelMemOps  int
	accelStart   int64
	accelHeld    int64 // cycles held ready by the NL restriction
}

// srcUse flags which instruction fields an opcode reads.
type srcUse uint8

const (
	use1 srcUse = 1 << iota
	use2
	use3
)

func srcMask(op isa.Op) srcUse {
	switch op {
	case isa.OpNop, isa.OpHalt, isa.OpMovI, isa.OpFMovI, isa.OpJmp:
		return 0
	case isa.OpAddI, isa.OpLoad, isa.OpFLoad:
		return use1
	case isa.OpFMA, isa.OpAccel:
		return use1 | use2 | use3
	default:
		return use1 | use2
	}
}

// srcReady reports whether all used operands are available.
func (e *robEntry) srcReady() bool {
	m := srcMask(e.in.Op)
	return !(m&use1 != 0 && e.srcs[0].pending ||
		m&use2 != 0 && e.srcs[1].pending ||
		m&use3 != 0 && e.srcs[2].pending)
}

// robQueue is a ring buffer of in-flight instructions, oldest first.
// Sequence numbers of resident entries are contiguous, so lookup by seq is
// O(1). The backing array is a power of two so position arithmetic is a
// mask, which matters: at() is the simulator's hottest operation.
type robQueue struct {
	buf   []robEntry
	mask  int
	head  int
	count int
	limit int // architectural capacity (<= len(buf))
}

func newROBQueue(capacity int) *robQueue {
	size := 1
	for size < capacity {
		size <<= 1
	}
	return &robQueue{buf: make([]robEntry, size), mask: size - 1, limit: capacity}
}

func (q *robQueue) len() int   { return q.count }
func (q *robQueue) full() bool { return q.count == q.limit }

// at returns the i'th oldest entry (0 = head).
func (q *robQueue) at(i int) *robEntry {
	return &q.buf[(q.head+i)&q.mask]
}

// bySeq returns the resident entry with the given sequence number, or nil.
func (q *robQueue) bySeq(seq uint64) *robEntry {
	if i := q.indexOf(seq); i >= 0 {
		return q.at(i)
	}
	return nil
}

// indexOf returns the position (0 = head) of the resident entry with the
// given sequence number, or -1. Residents are seq-contiguous, so this is
// O(1).
func (q *robQueue) indexOf(seq uint64) int {
	if q.count == 0 {
		return -1
	}
	first := q.at(0).seq
	if seq < first || seq >= first+uint64(q.count) {
		return -1
	}
	return int(seq - first)
}

// push appends a new entry and returns it for initialization.
func (q *robQueue) push() *robEntry {
	e := &q.buf[(q.head+q.count)&q.mask]
	q.count++
	return e
}

// popHead removes the oldest entry.
func (q *robQueue) popHead() {
	q.head = (q.head + 1) & q.mask
	q.count--
}

// truncate keeps only the n oldest entries (squash).
func (q *robQueue) truncate(n int) {
	q.count = n
}
