package sim

import (
	"encoding/binary"
	"fmt"

	"repro/internal/accel"
	"repro/internal/bpred"
	"repro/internal/isa"
	"repro/internal/mem"
)

// Binary checkpoint codec: fixed-width little-endian fields, length-prefixed
// slices and strings. The format is self-contained (magic + version header)
// and encodes literally every field of the Checkpoint — exported identity
// fields and unexported slab internals alike — so decode(encode(ck)) is
// deeply equal to ck (asserted by the round-trip test). simlint R8 audits
// the encoder methods below for exported-field exhaustiveness the same way
// it audits the scenario digest encoder.

const (
	ckptMagic = 0x74636b70_73696d31 // "tckp" "sim1"
	// ckptVersion bumps whenever the wire layout changes; the scenario
	// store additionally embeds its SchemeVersion in the blob digest, so
	// stale cached checkpoints are never decoded against a new layout.
	// v2: device-engine statistics (Stats.AccelPhases,
	// Stats.AccelOverlapCycles) joined the stats frame.
	ckptVersion = 2
)

// encoder appends fixed-width little-endian primitives.
type encoder struct {
	buf []byte
}

func (e *encoder) u64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *encoder) i64(v int64)  { e.u64(uint64(v)) }
func (e *encoder) i(v int)      { e.u64(uint64(int64(v))) }
func (e *encoder) u8(v uint8)   { e.buf = append(e.buf, v) }

func (e *encoder) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

func (e *encoder) str(s string) {
	e.i(len(s))
	e.buf = append(e.buf, s...)
}

func (e *encoder) bytes(b []byte) {
	e.i(len(b))
	e.buf = append(e.buf, b...)
}

func (e *encoder) config(c Config) {
	// Name and NoFastForward are erased by Config.Canonical (Checkpoint
	// stores the canonical form), as are the cache Names.
	e.i(c.FetchWidth)
	e.i(c.DispatchWidth)
	e.i(c.IssueWidth)
	e.i(c.CommitWidth)
	e.i(c.ROBSize)
	e.i(c.IQSize)
	e.i(c.LSQSize)
	e.i(c.FrontEndDepth)
	e.i(c.CommitDelay)
	e.i(c.IntALUs)
	e.i(c.IntMuls)
	e.i(c.FPUs)
	e.i(c.MemPorts)
	e.i(c.IntMulLatency)
	e.i(c.IntDivLatency)
	e.i(c.FPAddLatency)
	e.i(c.FPMulLatency)
	e.i(c.FMALatency)
	e.i(c.FPDivLatency)
	e.u64(uint64(c.Mode))
	e.bool(c.PartialSpeculation)
	e.bool(c.ConservativeLoadOrdering)
	e.str(c.Predictor.Kind)
	e.i(c.Predictor.TableBits)
	e.i(c.Predictor.HistBits)
	e.cacheConfig(c.Memory.L1I)
	e.cacheConfig(c.Memory.L1D)
	e.cacheConfig(c.Memory.L2)
	e.i(c.Memory.DRAM.Latency)
	e.i(c.Memory.DRAM.CyclesPerLine)
	e.tlbConfig(c.Memory.DTLB)
	e.tlbConfig(c.Memory.ITLB)
	e.bool(c.RecordAccelEvents)
	e.i(c.PipeTraceLimit)
}

func (e *encoder) cacheConfig(c mem.CacheConfig) {
	e.i(c.SizeBytes)
	e.i(c.Ways)
	e.i(c.LineBytes)
	e.i(c.HitLatency)
	e.i(c.MSHRs)
	e.bool(c.NextLinePrefetch)
}

func (e *encoder) tlbConfig(c mem.TLBConfig) {
	e.i(c.Entries)
	e.i(c.PageBits)
	e.i(c.WalkLatency)
}

func (e *encoder) stats(s Stats) {
	e.i64(s.Cycles)
	e.u64(s.Committed)
	e.u64(s.Fetched)
	e.u64(s.Squashed)
	e.u64(s.Branches)
	e.u64(s.Mispredicts)
	e.u64(s.Loads)
	e.u64(s.Stores)
	e.u64(s.LoadsForwarded)
	e.u64(s.AccelCommitted)
	e.u64(s.AccelSquashed)
	e.i64(s.AccelBusyCycles)
	e.u64(s.AccelMemOps)
	e.i64(s.AccelDrainWait)
	e.i64(s.AccelConfidenceWait)
	e.u64(s.AccelPhases)
	e.i64(s.AccelOverlapCycles)
	e.i64(s.DispatchStalls.Barrier)
	e.i64(s.DispatchStalls.ROBFull)
	e.i64(s.DispatchStalls.IQFull)
	e.i64(s.DispatchStalls.LSQFull)
	e.i64(s.DispatchStalls.FrontEnd)
	e.i64(s.ROBOccupancySum)
	e.i64(s.FastForwardedCycles)
	e.i64(s.FastForwardJumps)
	e.i(len(s.AccelEvents))
	for _, ev := range s.AccelEvents {
		e.u64(ev.Seq)
		e.i64(ev.Dispatch)
		e.i64(ev.Start)
		e.i64(ev.Done)
		e.i64(ev.Commit)
	}
	e.i(len(s.PipeTrace))
	for _, ev := range s.PipeTrace {
		e.u64(ev.Seq)
		e.i(ev.PC)
		e.str(ev.Text)
		e.i64(ev.Dispatch)
		e.i64(ev.Issue)
		e.i64(ev.Complete)
		e.i64(ev.Commit)
		e.bool(ev.Accel)
	}
}

func (e *encoder) instruction(in isa.Instruction) {
	e.u8(uint8(in.Op))
	e.u8(uint8(in.Dst))
	e.u8(uint8(in.Src1))
	e.u8(uint8(in.Src2))
	e.u8(uint8(in.Src3))
	e.i64(in.Imm)
}

func (e *encoder) robSlabs(hot []robHot, cold []robEntry) {
	e.i(len(hot))
	for i := range hot {
		h := &hot[i]
		e.u64(h.seq)
		e.i64(h.readyCycle)
		e.u8(uint8(h.op))
		e.u8(uint8(h.state))
		e.u8(h.pendMask)
		e.i64(int64(h.wakeUses))
	}
	for i := range cold {
		c := &cold[i]
		e.i(c.pc)
		e.instruction(c.in)
		e.i64(c.dispatchCycle)
		e.i64(c.issueCycle)
		for s := range c.srcs {
			e.u64(c.srcs[s].producer)
			e.u64(c.srcs[s].value)
		}
		e.u64(c.val)
		e.bool(c.predTaken)
		e.bool(c.predConfident)
		e.bool(c.actualTaken)
		e.i(c.nextPC)
		e.bool(c.mispredict)
		e.bool(c.addrKnown)
		e.u64(c.addr)
		e.u64(c.storeData)
		e.bool(c.forwarded)
		e.bool(c.accelStarted)
		e.bool(c.accelHasMark)
		e.i(c.accelMark)
		e.i(c.storeOff)
		e.i(c.storeCount)
		e.i(c.accelMemOps)
		e.i64(c.accelStart)
		e.i64(c.accelHeld)
	}
}

func (e *encoder) memState(s isa.MemoryState) {
	e.u64(s.Reads)
	e.u64(s.Writes)
	e.i(len(s.Pages))
	for i := range s.Pages {
		p := &s.Pages[i]
		e.u64(p.ID)
		for _, w := range p.Data {
			e.u64(w)
		}
	}
}

func (e *encoder) cacheState(s mem.CacheState) {
	e.u64(s.Stamp)
	e.u64(s.Stats.Accesses)
	e.u64(s.Stats.Hits)
	e.u64(s.Stats.Misses)
	e.u64(s.Stats.Writebacks)
	e.u64(s.Stats.MSHRMerges)
	e.u64(s.Stats.MSHRStalls)
	e.u64(s.Stats.Prefetches)
	e.u64(s.Stats.PrefetchHits)
	e.i(len(s.Lines))
	for i := range s.Lines {
		ln := &s.Lines[i]
		e.u64(ln.Tag)
		e.bool(ln.Valid)
		e.bool(ln.Dirty)
		e.bool(ln.Prefetched)
		e.u64(ln.LRU)
	}
	e.i(len(s.Fills))
	for _, f := range s.Fills {
		e.u64(f.LineAddr)
		e.i64(f.Done)
	}
}

func (e *encoder) tlbState(s *mem.TLBState) {
	if s == nil {
		e.bool(false)
		return
	}
	e.bool(true)
	e.u64(s.Stamp)
	e.i64(s.WalkEnd)
	e.u64(s.Stats.Accesses)
	e.u64(s.Stats.Misses)
	e.i(len(s.Pages))
	for _, p := range s.Pages {
		e.u64(p.Page)
		e.u64(p.Stamp)
	}
}

func (e *encoder) hierState(s mem.HierarchyState) {
	if s.L1I != nil {
		e.bool(true)
		e.cacheState(*s.L1I)
	} else {
		e.bool(false)
	}
	e.cacheState(s.L1D)
	e.cacheState(s.L2)
	e.i64(s.DRAM.NextFree)
	e.u64(s.DRAM.Stats.Reads)
	e.u64(s.DRAM.Stats.Writes)
	e.i64(s.DRAM.Stats.BusyCycles)
	e.tlbState(s.DTLB)
	e.tlbState(s.ITLB)
}

func (e *encoder) predState(s bpred.State) {
	e.str(s.Kind)
	e.u64(s.History)
	e.bytes(s.Table)
	e.i(len(s.Pairs))
	for _, p := range s.Pairs {
		e.u64(p.PC)
		e.bool(p.Taken)
	}
}

// MarshalBinary serializes the checkpoint.
func (ck *Checkpoint) MarshalBinary() []byte {
	var e encoder
	e.checkpoint(ck)
	return e.buf
}

func (e *encoder) checkpoint(ck *Checkpoint) {
	e.u64(ckptMagic)
	e.u64(ckptVersion)
	e.config(ck.Config)
	e.u64(ck.ProgHash)
	e.i64(ck.Now)
	e.u64(ck.Seq)
	e.bool(ck.Halted)
	e.i64(ck.LastCommitCycle)
	e.bool(ck.SawAccelFetch)
	e.bool(ck.SuffixFree)
	for _, v := range ck.ARF {
		e.u64(v)
	}
	for _, rn := range ck.Rename {
		e.bool(rn.Valid)
		e.u64(rn.Seq)
	}
	e.robSlabs(ck.ROBHot, ck.ROBCold)
	e.i(len(ck.Arena))
	for _, st := range ck.Arena {
		e.u64(st.Addr)
		e.u64(st.Data)
	}
	e.i(ck.LiveStores)
	e.i(ck.IQCount)
	e.i(ck.LSQCount)
	e.i(ck.IssuedCount)
	e.i(len(ck.FetchQ))
	for i := range ck.FetchQ {
		f := &ck.FetchQ[i]
		e.i(f.pc)
		e.instruction(f.in)
		e.bool(f.predTaken)
		e.bool(f.predConfident)
		e.i64(f.availAt)
	}
	e.i(ck.FetchPC)
	e.i64(ck.FetchResumeAt)
	e.bool(ck.FetchStopped)
	e.i64(ck.CurFetchLine)
	e.u64(ck.BarrierSeq)
	e.bool(ck.BarrierActive)
	for cl := range ck.FreeUnits {
		e.i(len(ck.FreeUnits[cl]))
		for _, v := range ck.FreeUnits[cl] {
			e.i64(v)
		}
	}
	e.i(len(ck.Ports))
	for _, v := range ck.Ports {
		e.i64(v)
	}
	e.i64(ck.TCABusyUntil)
	e.i(len(ck.Pend))
	for _, r := range ck.Pend {
		e.i64(r.cycle)
		e.u64(r.seq)
	}
	e.stats(ck.Stats)
	e.memState(ck.Mem)
	e.hierState(ck.Hier)
	e.predState(ck.Pred)
	if ck.DeviceState != nil {
		e.bool(true)
		e.bytes(ck.DeviceState)
	} else {
		e.bool(false)
	}
	e.bool(ck.DevicePristine)
}

// decoder consumes what encoder produced, accumulating the first error.
type decoder struct {
	buf []byte
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("sim: checkpoint decode: "+format, args...)
	}
}

func (d *decoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if len(d.buf) < 8 {
		d.fail("truncated")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf)
	d.buf = d.buf[8:]
	return v
}

func (d *decoder) i64() int64 { return int64(d.u64()) }

func (d *decoder) u8() uint8 {
	if d.err != nil {
		return 0
	}
	if len(d.buf) < 1 {
		d.fail("truncated")
		return 0
	}
	v := d.buf[0]
	d.buf = d.buf[1:]
	return v
}

func (d *decoder) bool() bool { return d.u8() != 0 }

// length decodes a slice length and sanity-bounds it against the remaining
// input so corrupt blobs fail instead of allocating absurdly.
func (d *decoder) length() int {
	n := d.i64()
	if d.err != nil {
		return 0
	}
	if n < 0 || n > int64(len(d.buf)) {
		d.fail("implausible length %d with %d bytes left", n, len(d.buf))
		return 0
	}
	return int(n)
}

// intv decodes an int-typed scalar (no buffer-length bound).
func (d *decoder) intv() int { return int(d.i64()) }

func (d *decoder) str() string {
	n := d.length()
	if d.err != nil {
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

func (d *decoder) bytes() []byte {
	n := d.length()
	if d.err != nil {
		return nil
	}
	b := append([]byte(nil), d.buf[:n]...)
	d.buf = d.buf[n:]
	return b
}

func (d *decoder) config() Config {
	var c Config
	c.FetchWidth = d.intv()
	c.DispatchWidth = d.intv()
	c.IssueWidth = d.intv()
	c.CommitWidth = d.intv()
	c.ROBSize = d.intv()
	c.IQSize = d.intv()
	c.LSQSize = d.intv()
	c.FrontEndDepth = d.intv()
	c.CommitDelay = d.intv()
	c.IntALUs = d.intv()
	c.IntMuls = d.intv()
	c.FPUs = d.intv()
	c.MemPorts = d.intv()
	c.IntMulLatency = d.intv()
	c.IntDivLatency = d.intv()
	c.FPAddLatency = d.intv()
	c.FPMulLatency = d.intv()
	c.FMALatency = d.intv()
	c.FPDivLatency = d.intv()
	c.Mode = accel.Mode(d.u64())
	c.PartialSpeculation = d.bool()
	c.ConservativeLoadOrdering = d.bool()
	c.Predictor.Kind = d.str()
	c.Predictor.TableBits = d.intv()
	c.Predictor.HistBits = d.intv()
	c.Memory.L1I = d.cacheConfig()
	c.Memory.L1D = d.cacheConfig()
	c.Memory.L2 = d.cacheConfig()
	c.Memory.DRAM.Latency = d.intv()
	c.Memory.DRAM.CyclesPerLine = d.intv()
	c.Memory.DTLB = d.tlbConfig()
	c.Memory.ITLB = d.tlbConfig()
	c.RecordAccelEvents = d.bool()
	c.PipeTraceLimit = d.intv()
	return c
}

func (d *decoder) cacheConfig() mem.CacheConfig {
	var c mem.CacheConfig
	c.SizeBytes = d.intv()
	c.Ways = d.intv()
	c.LineBytes = d.intv()
	c.HitLatency = d.intv()
	c.MSHRs = d.intv()
	c.NextLinePrefetch = d.bool()
	return c
}

func (d *decoder) tlbConfig() mem.TLBConfig {
	var c mem.TLBConfig
	c.Entries = d.intv()
	c.PageBits = d.intv()
	c.WalkLatency = d.intv()
	return c
}

func (d *decoder) stats() Stats {
	var s Stats
	s.Cycles = d.i64()
	s.Committed = d.u64()
	s.Fetched = d.u64()
	s.Squashed = d.u64()
	s.Branches = d.u64()
	s.Mispredicts = d.u64()
	s.Loads = d.u64()
	s.Stores = d.u64()
	s.LoadsForwarded = d.u64()
	s.AccelCommitted = d.u64()
	s.AccelSquashed = d.u64()
	s.AccelBusyCycles = d.i64()
	s.AccelMemOps = d.u64()
	s.AccelDrainWait = d.i64()
	s.AccelConfidenceWait = d.i64()
	s.AccelPhases = d.u64()
	s.AccelOverlapCycles = d.i64()
	s.DispatchStalls.Barrier = d.i64()
	s.DispatchStalls.ROBFull = d.i64()
	s.DispatchStalls.IQFull = d.i64()
	s.DispatchStalls.LSQFull = d.i64()
	s.DispatchStalls.FrontEnd = d.i64()
	s.ROBOccupancySum = d.i64()
	s.FastForwardedCycles = d.i64()
	s.FastForwardJumps = d.i64()
	if n := d.length(); n > 0 {
		s.AccelEvents = make([]AccelEvent, n)
		for i := range s.AccelEvents {
			ev := &s.AccelEvents[i]
			ev.Seq = d.u64()
			ev.Dispatch = d.i64()
			ev.Start = d.i64()
			ev.Done = d.i64()
			ev.Commit = d.i64()
		}
	}
	if n := d.length(); n > 0 {
		s.PipeTrace = make([]PipeEvent, n)
		for i := range s.PipeTrace {
			ev := &s.PipeTrace[i]
			ev.Seq = d.u64()
			ev.PC = d.intv()
			ev.Text = d.str()
			ev.Dispatch = d.i64()
			ev.Issue = d.i64()
			ev.Complete = d.i64()
			ev.Commit = d.i64()
			ev.Accel = d.bool()
		}
	}
	return s
}

func (d *decoder) instruction() isa.Instruction {
	var in isa.Instruction
	in.Op = isa.Op(d.u8())
	in.Dst = isa.Reg(d.u8())
	in.Src1 = isa.Reg(d.u8())
	in.Src2 = isa.Reg(d.u8())
	in.Src3 = isa.Reg(d.u8())
	in.Imm = d.i64()
	return in
}

func (d *decoder) robSlabs() ([]robHot, []robEntry) {
	n := d.length()
	if d.err != nil || n == 0 {
		return nil, nil
	}
	hot := make([]robHot, n)
	cold := make([]robEntry, n)
	for i := range hot {
		h := &hot[i]
		h.seq = d.u64()
		h.readyCycle = d.i64()
		h.op = isa.Op(d.u8())
		h.state = entryState(d.u8())
		h.pendMask = d.u8()
		h.wakeUses = int32(d.i64())
	}
	for i := range cold {
		c := &cold[i]
		c.pc = d.intv()
		c.in = d.instruction()
		c.dispatchCycle = d.i64()
		c.issueCycle = d.i64()
		for s := range c.srcs {
			c.srcs[s].producer = d.u64()
			c.srcs[s].value = d.u64()
		}
		c.val = d.u64()
		c.predTaken = d.bool()
		c.predConfident = d.bool()
		c.actualTaken = d.bool()
		c.nextPC = d.intv()
		c.mispredict = d.bool()
		c.addrKnown = d.bool()
		c.addr = d.u64()
		c.storeData = d.u64()
		c.forwarded = d.bool()
		c.accelStarted = d.bool()
		c.accelHasMark = d.bool()
		c.accelMark = d.intv()
		c.storeOff = d.intv()
		c.storeCount = d.intv()
		c.accelMemOps = d.intv()
		c.accelStart = d.i64()
		c.accelHeld = d.i64()
	}
	return hot, cold
}

func (d *decoder) memState() isa.MemoryState {
	var s isa.MemoryState
	s.Reads = d.u64()
	s.Writes = d.u64()
	if n := d.length(); n > 0 {
		s.Pages = make([]isa.PageState, n)
		for i := range s.Pages {
			p := &s.Pages[i]
			p.ID = d.u64()
			for w := range p.Data {
				p.Data[w] = d.u64()
			}
		}
	}
	return s
}

func (d *decoder) cacheState() mem.CacheState {
	var s mem.CacheState
	s.Stamp = d.u64()
	s.Stats.Accesses = d.u64()
	s.Stats.Hits = d.u64()
	s.Stats.Misses = d.u64()
	s.Stats.Writebacks = d.u64()
	s.Stats.MSHRMerges = d.u64()
	s.Stats.MSHRStalls = d.u64()
	s.Stats.Prefetches = d.u64()
	s.Stats.PrefetchHits = d.u64()
	if n := d.length(); n > 0 {
		s.Lines = make([]mem.CacheLineState, n)
		for i := range s.Lines {
			ln := &s.Lines[i]
			ln.Tag = d.u64()
			ln.Valid = d.bool()
			ln.Dirty = d.bool()
			ln.Prefetched = d.bool()
			ln.LRU = d.u64()
		}
	}
	if n := d.length(); n > 0 {
		s.Fills = make([]mem.FillState, n)
		for i := range s.Fills {
			s.Fills[i].LineAddr = d.u64()
			s.Fills[i].Done = d.i64()
		}
	}
	return s
}

func (d *decoder) tlbState() *mem.TLBState {
	if !d.bool() {
		return nil
	}
	s := &mem.TLBState{}
	s.Stamp = d.u64()
	s.WalkEnd = d.i64()
	s.Stats.Accesses = d.u64()
	s.Stats.Misses = d.u64()
	if n := d.length(); n > 0 {
		s.Pages = make([]mem.TLBPageState, n)
		for i := range s.Pages {
			s.Pages[i].Page = d.u64()
			s.Pages[i].Stamp = d.u64()
		}
	}
	return s
}

func (d *decoder) hierState() mem.HierarchyState {
	var s mem.HierarchyState
	if d.bool() {
		cs := d.cacheState()
		s.L1I = &cs
	}
	s.L1D = d.cacheState()
	s.L2 = d.cacheState()
	s.DRAM.NextFree = d.i64()
	s.DRAM.Stats.Reads = d.u64()
	s.DRAM.Stats.Writes = d.u64()
	s.DRAM.Stats.BusyCycles = d.i64()
	s.DTLB = d.tlbState()
	s.ITLB = d.tlbState()
	return s
}

func (d *decoder) predState() bpred.State {
	var s bpred.State
	s.Kind = d.str()
	s.History = d.u64()
	s.Table = d.bytes()
	if n := d.length(); n > 0 {
		s.Pairs = make([]bpred.PredictorPair, n)
		for i := range s.Pairs {
			s.Pairs[i].PC = d.u64()
			s.Pairs[i].Taken = d.bool()
		}
	}
	return s
}

// UnmarshalCheckpoint deserializes a checkpoint produced by MarshalBinary.
func UnmarshalCheckpoint(data []byte) (*Checkpoint, error) {
	d := &decoder{buf: data}
	if m := d.u64(); d.err == nil && m != ckptMagic {
		return nil, fmt.Errorf("sim: checkpoint decode: bad magic %#x", m)
	}
	if v := d.u64(); d.err == nil && v != ckptVersion {
		return nil, fmt.Errorf("sim: checkpoint decode: version %d, want %d", v, ckptVersion)
	}
	ck := &Checkpoint{}
	ck.Config = d.config()
	ck.ProgHash = d.u64()
	ck.Now = d.i64()
	ck.Seq = d.u64()
	ck.Halted = d.bool()
	ck.LastCommitCycle = d.i64()
	ck.SawAccelFetch = d.bool()
	ck.SuffixFree = d.bool()
	for i := range ck.ARF {
		ck.ARF[i] = d.u64()
	}
	for i := range ck.Rename {
		ck.Rename[i].Valid = d.bool()
		ck.Rename[i].Seq = d.u64()
	}
	ck.ROBHot, ck.ROBCold = d.robSlabs()
	if n := d.length(); n > 0 {
		ck.Arena = make([]isa.AccelStore, n)
		for i := range ck.Arena {
			ck.Arena[i].Addr = d.u64()
			ck.Arena[i].Data = d.u64()
		}
	}
	ck.LiveStores = d.intv()
	ck.IQCount = d.intv()
	ck.LSQCount = d.intv()
	ck.IssuedCount = d.intv()
	if n := d.length(); n > 0 {
		ck.FetchQ = make([]fetchedInst, n)
		for i := range ck.FetchQ {
			f := &ck.FetchQ[i]
			f.pc = d.intv()
			f.in = d.instruction()
			f.predTaken = d.bool()
			f.predConfident = d.bool()
			f.availAt = d.i64()
		}
	}
	ck.FetchPC = d.intv()
	ck.FetchResumeAt = d.i64()
	ck.FetchStopped = d.bool()
	ck.CurFetchLine = d.i64()
	ck.BarrierSeq = d.u64()
	ck.BarrierActive = d.bool()
	for cl := range ck.FreeUnits {
		if n := d.length(); n > 0 {
			ck.FreeUnits[cl] = make([]int64, n)
			for i := range ck.FreeUnits[cl] {
				ck.FreeUnits[cl][i] = d.i64()
			}
		}
	}
	if n := d.length(); n > 0 {
		ck.Ports = make([]int64, n)
		for i := range ck.Ports {
			ck.Ports[i] = d.i64()
		}
	}
	ck.TCABusyUntil = d.i64()
	if n := d.length(); n > 0 {
		ck.Pend = make([]compRecord, n)
		for i := range ck.Pend {
			ck.Pend[i].cycle = d.i64()
			ck.Pend[i].seq = d.u64()
		}
	}
	ck.Stats = d.stats()
	ck.Mem = d.memState()
	ck.Hier = d.hierState()
	ck.Pred = d.predState()
	if d.bool() {
		ck.DeviceState = d.bytes()
	}
	ck.DevicePristine = d.bool()
	if d.err != nil {
		return nil, d.err
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("sim: checkpoint decode: %d trailing bytes", len(d.buf))
	}
	return ck, nil
}
