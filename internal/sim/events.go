package sim

// Event-horizon fast-forward.
//
// The tick loop in Run executes every stage every cycle, but on many cycles
// the core is provably idle: an NT dispatch barrier waiting out a
// coarse-grained TCA, a full-ROB stall on a DRAM miss, the NL window drain.
// Because the memory hierarchy is already event-based (Access/IFetch take
// absolute request times and return absolute completion times — nothing in
// internal/mem ticks per cycle), a cycle in which no stage acts changes no
// simulator state except the per-cycle counters. Such cycles can be skipped
// wholesale: jump c.now to the earliest future cycle at which any stage
// *could* act and replicate the per-cycle counters for the cycles elided.
//
// The invariant (see DESIGN.md): skipping is legal iff no stage can act
// before the horizon. eventHorizon therefore takes the min over every
// future cycle at which blocked work can unblock:
//
//   - the completion min-heap top: the next sIssued entry whose result
//     arrives (this also covers functional-unit free times — an occupied
//     unit's busyUntil never exceeds its occupier's readyCycle, and the
//     occupier's heap record survives squashes by lazy deletion);
//   - the ROB head's commit eligibility when it is already sDone;
//   - the fetch-redirect / I-miss resume cycle;
//   - the front-end availability of the next undispatched instruction;
//   - the TCA unit's busy-until cycle (it gates tryStartAccel and the
//     per-cycle accelHeld / AccelConfidenceWait counters);
//   - conservatively, the next in-flight cache fill completion (fills only
//     matter through Access calls, which happen on active cycles, but
//     landing on them is harmless and keeps the horizon auditable);
//   - the deadlock-watchdog and cycle-budget boundaries, so ErrDeadlock
//     and ErrCycleLimit fire at bit-identical cycles.
//
// Memory ports are deliberately absent: portGrant queues requests instead
// of rejecting them, so port occupancy never blocks a stage.

// compRecord schedules one pending completion: the entry with sequence
// number seq is expected to leave sIssued at cycle. Records are never
// removed on squash (lazy deletion); complete() validates on pop that the
// resident entry still matches.
type compRecord struct {
	cycle int64
	seq   uint64
}

// compHeap is a binary min-heap of pending completions ordered by cycle.
// Same-cycle pop order is irrelevant: complete() re-sorts each due batch
// by seq to reproduce the tick loop's ROB-position processing order.
type compHeap []compRecord

// pushPend schedules a completion record.
func (c *Core) pushPend(r compRecord) {
	h := append(c.pend, r)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p].cycle <= h[i].cycle {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	c.pend = h
}

// popPend removes and returns the earliest record. Callers check len first.
func (c *Core) popPend() compRecord {
	h := c.pend
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && h[r].cycle < h[l].cycle {
			m = r
		}
		if h[i].cycle <= h[m].cycle {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	c.pend = h
	return top
}

// sortDueBySeq orders a due batch by sequence number ascending (insertion
// sort: batches are a handful of records). Sequence order equals ROB
// position order among resident entries, which is the order the per-cycle
// scan completed them in — predictor updates and mispredict squash
// selection depend on it.
func sortDueBySeq(due []compRecord) {
	for i := 1; i < len(due); i++ {
		r := due[i]
		j := i - 1
		for j >= 0 && due[j].seq > r.seq {
			due[j+1] = due[j]
			j--
		}
		due[j+1] = r
	}
}

// horizonNever is the "no event" sentinel, far beyond any cycle budget.
const horizonNever = int64(1)<<62 - 1

// eventHorizon returns the earliest future cycle at which any stage could
// act, clamped so the cycle-budget and deadlock checks fire exactly where
// the tick loop would have raised them. Only called on quiet cycles, after
// c.now has advanced past the cycle just executed.
func (c *Core) eventHorizon(maxCycles int64) int64 {
	h := horizonNever
	if len(c.pend) > 0 {
		h = c.pend[0].cycle
	}
	if c.rob.len() > 0 {
		if e := c.rob.hotAt(0); e.state == sDone {
			if t := e.readyCycle + int64(c.cfg.CommitDelay); t < h {
				h = t
			}
		}
	}
	// The >= c.now comparisons below matter: an enabling time equal to the
	// (already advanced) current cycle means the stage can act *this*
	// cycle, so the horizon clamps to c.now and no skip happens. Times
	// strictly below c.now are stale — the stage is blocked by something
	// else whose change is covered by another candidate or by activity
	// detection — and contribute nothing.
	if !c.fetchStopped && c.fetchResumeAt >= c.now && c.fetchResumeAt < h {
		h = c.fetchResumeAt
	}
	if !c.barrierActive && c.fetchHead < len(c.fetchQ) {
		if t := c.fetchQ[c.fetchHead].availAt; t >= c.now && t < h {
			h = t
		}
	}
	if c.tcaBusyUntil >= c.now && c.tcaBusyUntil < h {
		h = c.tcaBusyUntil
	}
	if c.iqCount > 0 {
		// Redundant with the heap records (see file comment) but cheap:
		// a handful of units, and it keeps the legality argument local.
		for _, units := range c.fu {
			for _, free := range units {
				if free >= c.now && free < h {
					h = free
				}
			}
		}
	}
	if t := c.hier.NextFillTime(c.now); t > 0 && t < h {
		h = t
	}
	if w := c.lastCommitCycle + deadlockWindow + 1; w < h {
		h = w
	}
	if maxCycles < h {
		h = maxCycles
	}
	return h
}

// fastForward jumps c.now to the event horizon and replicates the
// per-cycle bookkeeping the elided tick iterations would have performed:
// the ROB occupancy integral, exactly one dispatch-stall counter, and at
// most one of the accel hold counters (an idle cycle increments the same
// set every time, because every condition feeding them is pinned until the
// horizon). This function, the tick loop, and checkpoint restore are the
// only writers of c.now — simlint rule R6 enforces that.
func (c *Core) fastForward(maxCycles, occupancy int64) {
	h := c.eventHorizon(maxCycles)
	if h <= c.now {
		return
	}
	skipped := h - c.now
	c.stats.ROBOccupancySum += occupancy * skipped
	if c.cycleStall != nil {
		*c.cycleStall += skipped
	}
	if c.cycleHeldAccel != nil {
		c.cycleHeldAccel.accelHeld += skipped
	}
	if c.cycleConfWait {
		c.stats.AccelConfidenceWait += skipped
	}
	c.stats.FastForwardedCycles += skipped
	c.stats.FastForwardJumps++
	c.now = h
}
