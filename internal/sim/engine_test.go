package sim

import (
	"encoding/binary"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/accel"
	"repro/internal/isa"
	"repro/internal/workload"
)

// Engine differential suite.
//
// The device-engine refactor replaced the scalar-latency timing path in
// tryStartAccel with runEngine, which executes phased occupancy schedules;
// a scalar AccelResult becomes a synthesized one-phase schedule. The suite
// here pins the refactor's central promise: for every legacy device the
// engine is bit-identical to the scalar contract. It does so by wrapping
// each standard workload's device in schedulerFor — a shim that rewrites
// every scalar result into the equivalent explicit one-phase Schedule — and
// demanding identical Stats (modulo the AccelPhases observability counter),
// registers, and memory across all seven standard workloads and every mode.

// engineShim converts a legacy scalar-contract device into an explicit
// engine device: each Invoke's (Latency, MemOps) is rewritten as a one-phase
// Schedule. Every optional contract surface is forwarded so the simulator's
// hazard logic (devUsesMemory), rollback (AccelJournal), stores
// (AccelStorer) and checkpointing (AccelSnapshotter) behave exactly as they
// would for the wrapped device.
type engineShim struct {
	dev isa.AccelDevice
}

func (s *engineShim) Name() string { return s.dev.Name() }

func (s *engineShim) Invoke(call isa.AccelCall, mem isa.WordReader) isa.AccelResult {
	res := s.dev.Invoke(call, mem)
	res.Schedule = []isa.AccelPhase{{Compute: res.Latency, MemOps: res.MemOps}}
	return res
}

// UsesProgramMemory reproduces devUsesMemory's decision for the wrapped
// device (explicit interface first, storer fallback second), so wrapping
// never changes the memory-ordering hazards the invocation waits on.
func (s *engineShim) UsesProgramMemory() bool {
	if u, ok := s.dev.(isa.AccelMemoryUser); ok {
		return u.UsesProgramMemory()
	}
	_, stores := s.dev.(isa.AccelStorer)
	return stores
}

func (s *engineShim) PendingStores() []isa.AccelStore {
	if st, ok := s.dev.(isa.AccelStorer); ok {
		return st.PendingStores()
	}
	return nil
}

func (s *engineShim) Mark() int {
	if j, ok := s.dev.(isa.AccelJournal); ok {
		return j.Mark()
	}
	return 0
}

func (s *engineShim) Rewind(mark int) {
	if j, ok := s.dev.(isa.AccelJournal); ok {
		j.Rewind(mark)
	}
}

func (s *engineShim) SnapshotState() []byte {
	if sn, ok := s.dev.(isa.AccelSnapshotter); ok {
		return sn.SnapshotState()
	}
	return nil
}

func (s *engineShim) RestoreState(data []byte) error {
	if sn, ok := s.dev.(isa.AccelSnapshotter); ok {
		return sn.RestoreState(data)
	}
	if len(data) != 0 {
		return fmt.Errorf("engineShim: unexpected state for stateless device")
	}
	return nil
}

// engineWorkloads builds the seven standard workloads the differential
// suites pin (the same set fastforward_test.go uses).
func engineWorkloads(t *testing.T) []struct {
	name string
	cfg  Config
	w    *workload.Workload
} {
	t.Helper()
	type build struct {
		name string
		cfg  func() Config
		make func() (*workload.Workload, error)
	}
	builds := []build{
		{"synthetic", HighPerfConfig, func() (*workload.Workload, error) {
			return workload.Synthetic(workload.SyntheticConfig{
				Units: 40, UnitLen: 30, Regions: 12, RegionLen: 40,
				AccelLatency: 400, Seed: 1,
			})
		}},
		{"heap", LowPerfConfig, func() (*workload.Workload, error) {
			return workload.Heap(workload.HeapConfig{
				Operations: 120, FillerPerCall: 40, Prefill: 64, Seed: 2,
			})
		}},
		{"matmul", HighPerfConfig, func() (*workload.Workload, error) {
			return workload.MatMul(workload.MatMulConfig{N: 16, Block: 8, Tile: 4, Seed: 3})
		}},
		{"kvstore", A72Config, func() (*workload.Workload, error) {
			return workload.KVStore(workload.KVStoreConfig{
				Operations: 100, FillerPerOp: 30, Buckets: 256, Keys: 64,
				LookupPct: 70, KeyWords: 4, Seed: 4,
			})
		}},
		{"regex", HighPerfConfig, func() (*workload.Workload, error) {
			return workload.RegexMatch(workload.RegexMatchConfig{
				Pattern: "ab*c.d+", Matches: 40, FillerPerOp: 30,
				Inputs: 8, MaxLen: 24, Seed: 5,
			})
		}},
		{"stringmatch", LowPerfConfig, func() (*workload.Workload, error) {
			return workload.StringMatch(workload.StringMatchConfig{
				Comparisons: 60, FillerPerOp: 30, Dictionary: 12,
				MinWords: 4, MaxWords: 10, SharedPrefix: 3, Seed: 6,
			})
		}},
		{"multitca", HighPerfConfig, func() (*workload.Workload, error) {
			cfg := workload.DefaultMultiTCA()
			cfg.Calls = 60
			return workload.MultiTCA(cfg)
		}},
	}
	out := make([]struct {
		name string
		cfg  Config
		w    *workload.Workload
	}, 0, len(builds))
	for _, bld := range builds {
		w, err := bld.make()
		if err != nil {
			t.Fatalf("%s: %v", bld.name, err)
		}
		out = append(out, struct {
			name string
			cfg  Config
			w    *workload.Workload
		}{bld.name, bld.cfg(), w})
	}
	return out
}

// runEngineCase runs one workload/mode combination, optionally through the
// engine shim.
func runEngineCase(t *testing.T, cfg Config, w *workload.Workload, shim bool) *Result {
	t.Helper()
	var dev isa.AccelDevice = w.NewDevice()
	if shim {
		dev = &engineShim{dev: dev}
	}
	core, err := New(cfg, w.Accelerated, dev)
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	res, err := core.Run(2_000_000_000)
	if err != nil {
		t.Fatalf("sim.Run(shim=%v): %v", shim, err)
	}
	return res
}

// TestEngineScalarScheduleEquivalence is the engine differential suite:
// every standard workload's device, rewritten from the scalar contract into
// an explicit one-phase schedule, must produce bit-identical statistics,
// registers and memory in every mode. Only AccelPhases — the engine
// observability counter, which counts explicit-schedule phases and is
// definitionally zero on the scalar path — is excluded from the comparison.
func TestEngineScalarScheduleEquivalence(t *testing.T) {
	for _, c := range engineWorkloads(t) {
		for _, m := range accel.AllModes {
			t.Run(fmt.Sprintf("%s-%s", c.name, m), func(t *testing.T) {
				cfg := c.cfg
				cfg.Mode = m
				scalar := runEngineCase(t, cfg, c.w, false)
				phased := runEngineCase(t, cfg, c.w, true)

				if scalar.Stats.AccelPhases != 0 {
					t.Errorf("scalar run counted %d engine phases, want 0", scalar.Stats.AccelPhases)
				}
				invoked := phased.Stats.AccelCommitted + phased.Stats.AccelSquashed
				if invoked > 0 && phased.Stats.AccelPhases != invoked {
					t.Errorf("one-phase schedules over %d invocations counted %d phases",
						invoked, phased.Stats.AccelPhases)
				}
				got := phased.Stats
				got.AccelPhases = 0
				if !reflect.DeepEqual(got, scalar.Stats) {
					t.Errorf("stats diverge beyond AccelPhases:\nscalar:\n%v\nphased:\n%v",
						scalar.Stats, got)
				}
				if phased.Regs != scalar.Regs {
					t.Error("final register files diverge")
				}
				if !phased.Mem.Equal(scalar.Mem) {
					t.Error("final memory images diverge")
				}
			})
		}
	}
}

// splitPhases is a test engine device whose fixed compute latency is split
// across a configurable number of equal phases — total occupancy identical
// to a scalar device of the same latency, which TestEnginePhaseSplit pins.
type splitPhases struct {
	latency int
	phases  int
}

func (d *splitPhases) Name() string { return "split-phases" }

func (d *splitPhases) Invoke(call isa.AccelCall, _ isa.WordReader) isa.AccelResult {
	sched := make([]isa.AccelPhase, d.phases)
	per := d.latency / d.phases
	for i := range sched {
		sched[i] = isa.AccelPhase{Compute: per}
	}
	sched[0].Compute += d.latency - per*d.phases
	return isa.AccelResult{Value: call.Args[0], Schedule: sched}
}

// TestEnginePhaseSplit: memory-free compute split across N phases occupies
// exactly as long as the same compute in one scalar invocation, in every
// mode — phase boundaries alone must not cost cycles.
func TestEnginePhaseSplit(t *testing.T) {
	prog := accelProgram(10, 25)
	for _, m := range accel.AllModes {
		for _, phases := range []int{2, 7} {
			t.Run(fmt.Sprintf("%s-%dphases", m, phases), func(t *testing.T) {
				cfg := LowPerfConfig()
				cfg.Mode = m
				run := func(dev isa.AccelDevice) Stats {
					core, err := New(cfg, prog, dev)
					if err != nil {
						t.Fatal(err)
					}
					res, err := core.Run(2_000_000_000)
					if err != nil {
						t.Fatal(err)
					}
					return res.Stats
				}
				scalar := run(accel.NewFixedLatency(700))
				split := run(&splitPhases{latency: 700, phases: phases})
				if scalar.Cycles != split.Cycles {
					t.Errorf("split into %d phases took %d cycles, scalar took %d",
						phases, split.Cycles, scalar.Cycles)
				}
				if split.AccelPhases != uint64(phases)*split.AccelCommitted {
					t.Errorf("counted %d phases over %d invocations x %d",
						split.AccelPhases, split.AccelCommitted, phases)
				}
			})
		}
	}
}

// streamPhases is a test engine device that loads `chunks` bursts of
// `chunkWords` contiguous words, spending `compute` cycles per chunk, with
// or without access/execute overlap.
type streamPhases struct {
	base       uint64
	chunks     int
	chunkWords int
	compute    int
	overlap    bool

	invocations uint64
}

func (d *streamPhases) Name() string            { return "stream-phases" }
func (d *streamPhases) UsesProgramMemory() bool { return true }

// The checkpoint-transparency test snapshots mid-run, so the device's one
// counter travels through a state frame like the real devices' counters do.
func (d *streamPhases) SnapshotState() []byte {
	return binary.LittleEndian.AppendUint64(nil, d.invocations)
}

func (d *streamPhases) RestoreState(data []byte) error {
	if len(data) != 8 {
		return fmt.Errorf("stream-phases: %d-byte state frame, want 8", len(data))
	}
	d.invocations = binary.LittleEndian.Uint64(data)
	return nil
}

func (d *streamPhases) Invoke(call isa.AccelCall, mem isa.WordReader) isa.AccelResult {
	d.invocations++
	var sum uint64
	sched := make([]isa.AccelPhase, d.chunks)
	addr := d.base
	for c := 0; c < d.chunks; c++ {
		ops := make([]isa.AccelMemOp, d.chunkWords)
		for w := 0; w < d.chunkWords; w++ {
			sum += mem.Load(addr)
			ops[w] = isa.AccelMemOp{Addr: addr, Size: 8}
			addr += 8
		}
		sched[c] = isa.AccelPhase{Compute: d.compute, Overlap: d.overlap, MemOps: ops}
	}
	return isa.AccelResult{Value: sum, Schedule: sched}
}

// TestEngineOverlapHidesMemoryTime: an Overlap schedule must finish no later
// than its non-overlapped twin, must record the hidden cycles, and both must
// compute the same value.
func TestEngineOverlapHidesMemoryTime(t *testing.T) {
	const base = 0x9000
	b := isa.NewBuilder()
	for w := 0; w < 64; w++ {
		b.InitWord(base+uint64(w)*8, uint64(w)*3+1)
	}
	b.MovI(isa.R(1), 7)
	b.Accel(isa.R(10), 0, isa.R(1))
	b.Halt()
	prog := b.MustBuild()

	run := func(overlap bool) *Result {
		cfg := LowPerfConfig()
		cfg.Mode = accel.NLNT
		dev := &streamPhases{base: base, chunks: 8, chunkWords: 8, compute: 40, overlap: overlap}
		core, err := New(cfg, prog, dev)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Run(2_000_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(false)
	overlapped := run(true)

	if overlapped.Stats.Cycles >= serial.Stats.Cycles {
		t.Errorf("overlap run took %d cycles, serial took %d — overlap hid nothing",
			overlapped.Stats.Cycles, serial.Stats.Cycles)
	}
	if overlapped.Stats.AccelOverlapCycles <= 0 {
		t.Errorf("overlap run recorded %d hidden cycles, want > 0", overlapped.Stats.AccelOverlapCycles)
	}
	if serial.Stats.AccelOverlapCycles != 0 {
		t.Errorf("serial run recorded %d hidden cycles, want 0", serial.Stats.AccelOverlapCycles)
	}
	saved := serial.Stats.Cycles - overlapped.Stats.Cycles
	if saved != overlapped.Stats.AccelOverlapCycles {
		t.Errorf("saved %d cycles but recorded %d as hidden", saved, overlapped.Stats.AccelOverlapCycles)
	}
	if overlapped.Regs != serial.Regs {
		t.Error("overlap changed the computed value")
	}
}

// TestEngineFastForwardTransparent extends the fast-forward differential
// suite to engine devices: multi-phase and overlapped schedules must be
// transparent to the event-horizon scheduler in every mode, exactly like
// scalar devices.
func TestEngineFastForwardTransparent(t *testing.T) {
	const base = 0xA000
	b := isa.NewBuilder()
	for w := 0; w < 32; w++ {
		b.InitWord(base+uint64(w)*8, uint64(w)*5+2)
	}
	b.MovI(isa.R(1), 3)
	for i := 0; i < 6; i++ {
		b.Accel(isa.R(10), 0, isa.R(1))
		b.Add(isa.R(11), isa.R(11), isa.R(10))
	}
	b.Halt()
	prog := b.MustBuild()

	devs := []struct {
		name string
		make func() isa.AccelDevice
	}{
		{"split", func() isa.AccelDevice { return &splitPhases{latency: 4000, phases: 5} }},
		{"stream", func() isa.AccelDevice {
			return &streamPhases{base: base, chunks: 4, chunkWords: 8, compute: 300, overlap: true}
		}},
	}
	for _, d := range devs {
		for _, m := range accel.AllModes {
			t.Run(fmt.Sprintf("%s-%s", d.name, m), func(t *testing.T) {
				cfg := LowPerfConfig()
				cfg.Mode = m
				assertFFTransparent(t, ffCase{cfg: cfg, prog: prog, dev: d.make})
			})
		}
	}
}

// TestEngineCheckpointTransparent: a run containing engine invocations,
// checkpointed mid-flight and resumed, must finish bit-identically to an
// uninterrupted run — engine occupancy is fully carried by TCABusyUntil and
// the codec's stats frame.
func TestEngineCheckpointTransparent(t *testing.T) {
	const base = 0xB000
	b := isa.NewBuilder()
	for w := 0; w < 32; w++ {
		b.InitWord(base+uint64(w)*8, uint64(w)*9+4)
	}
	b.MovI(isa.R(1), 3)
	for i := 0; i < 8; i++ {
		b.Accel(isa.R(10), 0, isa.R(1))
		b.Add(isa.R(11), isa.R(11), isa.R(10))
	}
	b.Halt()
	prog := b.MustBuild()
	mkDev := func() isa.AccelDevice {
		return &streamPhases{base: base, chunks: 4, chunkWords: 8, compute: 250, overlap: true}
	}

	cfg := LowPerfConfig()
	cfg.Mode = accel.LT

	straight, err := New(cfg, prog, mkDev())
	if err != nil {
		t.Fatal(err)
	}
	want, err := straight.Run(2_000_000_000)
	if err != nil {
		t.Fatal(err)
	}

	paused, err := New(cfg, prog, mkDev())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := paused.RunTo(2_000_000_000, want.Stats.Cycles/2); err != nil {
		t.Fatal(err)
	}
	ck, err := paused.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	ck2, err := UnmarshalCheckpoint(ck.MarshalBinary())
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := NewFromCheckpoint(cfg, prog, mkDev(), ck2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := resumed.Run(2_000_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Stats, want.Stats) {
		t.Errorf("resumed stats diverge:\nresumed:\n%v\nuninterrupted:\n%v", got.Stats, want.Stats)
	}
	if got.Regs != want.Regs {
		t.Error("resumed register file diverges")
	}
	if !got.Mem.Equal(want.Mem) {
		t.Error("resumed memory image diverges")
	}
}

// BenchmarkDeviceEngine measures the engine executor on a multi-phase
// streaming schedule — the hot path every engine-device invocation takes.
func BenchmarkDeviceEngine(b *testing.B) {
	const base = 0xC000
	bd := isa.NewBuilder()
	for w := 0; w < 64; w++ {
		bd.InitWord(base+uint64(w)*8, uint64(w))
	}
	bd.MovI(isa.R(1), 3)
	for i := 0; i < 50; i++ {
		bd.Accel(isa.R(10), 0, isa.R(1))
	}
	bd.Halt()
	prog := bd.MustBuild()
	cfg := HighPerfConfig()
	cfg.Mode = accel.LT

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dev := &streamPhases{base: base, chunks: 8, chunkWords: 8, compute: 30, overlap: true}
		core, err := New(cfg, prog, dev)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.Run(2_000_000_000); err != nil {
			b.Fatal(err)
		}
	}
}
