package sim

import (
	"strings"
	"testing"

	"repro/internal/accel"
	"repro/internal/isa"
)

func TestCPIStackShares(t *testing.T) {
	prog := accelProgram(30, 10)
	cfg := HighPerfConfig()
	cfg.Mode = accel.NLNT
	core, _ := New(cfg, prog, accel.NewFixedLatency(40))
	res, err := core.Run(10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats.CPIStack()
	sum := st.Active + st.Barrier + st.ROBFull + st.IQFull + st.LSQFull + st.FrontEnd
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("shares sum to %v, want 1", sum)
	}
	// NL_NT on a barrier-heavy program: the barrier share dominates.
	if st.Barrier < 0.3 {
		t.Errorf("barrier share %.2f, want the dominant cause", st.Barrier)
	}
	if st.Dispatched != res.Stats.Committed+res.Stats.Squashed {
		t.Error("dispatched accounting wrong")
	}
	if !strings.Contains(st.String(), "barrier") {
		t.Error("render missing fields")
	}
}

func TestCPIStackEmpty(t *testing.T) {
	var s Stats
	st := s.CPIStack()
	if st.Active != 0 || st.Cycles != 0 {
		t.Errorf("zero stats produced %+v", st)
	}
}

// Determinism: identical configuration and program must produce identical
// cycle counts and stats — the property every figure's reproducibility
// rests on.
func TestSimDeterminism(t *testing.T) {
	prog := accelProgram(40, 20)
	run := func() Stats {
		cfg := HighPerfConfig()
		cfg.Mode = accel.NLT
		core, err := New(cfg, prog, accel.NewFixedLatency(17))
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Run(10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.Committed != b.Committed ||
		a.Mispredicts != b.Mispredicts || a.Squashed != b.Squashed ||
		a.DispatchStalls != b.DispatchStalls {
		t.Errorf("nondeterministic simulation:\n%+v\nvs\n%+v", a, b)
	}
}

// ROB occupancy can never exceed the configured size.
func TestROBOccupancyBounded(t *testing.T) {
	cfg := LowPerfConfig()
	cfg.ROBSize = 16
	core, _ := New(cfg, sumProgram(3000), nil)
	res, err := core.Run(10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if avg := res.Stats.AvgROBOccupancy(); avg > 16 {
		t.Errorf("average occupancy %.1f exceeds ROB size 16", avg)
	}
}

// Static predictors still produce correct execution (they just mispredict
// more).
func TestStaticPredictorsCorrectness(t *testing.T) {
	for _, kind := range []string{"taken", "not-taken", "bimodal", "gshare"} {
		cfg := HighPerfConfig()
		cfg.Predictor = PredictorConfig{Kind: kind}
		res := runBoth(t, cfg, sumProgram(400), nil)
		if res.Regs[isa.R(1)] != 80200 {
			t.Errorf("%s: sum = %d, want 80200", kind, res.Regs[isa.R(1)])
		}
	}
	cfg := HighPerfConfig()
	cfg.Predictor = PredictorConfig{Kind: "bogus"}
	if _, err := New(cfg, sumProgram(5), nil); err == nil {
		t.Error("bogus predictor accepted")
	}
}
