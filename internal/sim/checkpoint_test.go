package sim

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/accel"
	"repro/internal/isa"
	"repro/internal/proggen"
	"repro/internal/tcmalloc"
	"repro/internal/workload"
)

const ckptBudget = 2_000_000_000

// ckptCase is one program/device/config combination checked for checkpoint
// transparency.
type ckptCase struct {
	name string
	cfg  Config
	prog *isa.Program
	dev  func() isa.AccelDevice // nil for baseline programs
}

func (c ckptCase) newCore(t *testing.T) *Core {
	t.Helper()
	var dev isa.AccelDevice
	if c.dev != nil {
		dev = c.dev()
	}
	core, err := New(c.cfg, c.prog, dev)
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	return core
}

// assertSameResult demands the interrupted run be indistinguishable from the
// reference: deeply equal statistics (including the accel-event and pipe
// traces), byte-identical stats under the checkpoint codec, and identical
// final architectural state.
func assertSameResult(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if !reflect.DeepEqual(want.Stats, got.Stats) {
		t.Errorf("%s: stats diverge from uninterrupted run:\nuninterrupted:\n%v\n%s:\n%v",
			label, want.Stats, label, got.Stats)
	}
	var ew, eg encoder
	ew.stats(want.Stats)
	eg.stats(got.Stats)
	if !bytes.Equal(ew.buf, eg.buf) {
		t.Errorf("%s: encoded stats are not byte-identical to the uninterrupted run", label)
	}
	if want.Regs != got.Regs {
		t.Errorf("%s: final register files diverge", label)
	}
	if !want.Mem.Equal(got.Mem) {
		t.Errorf("%s: final memory images diverge", label)
	}
}

// assertCheckpointTransparent is the heart of the differential suite: pause
// at cycle k, snapshot, and demand that (a) serialize/deserialize is a deep
// round trip, (b) the paused core, continued, finishes bit-identically to an
// uninterrupted run (taking a checkpoint perturbs nothing), and (c) a fresh
// core resumed from the decoded snapshot with a fresh device finishes
// bit-identically too.
func assertCheckpointTransparent(t *testing.T, c ckptCase, k int64) {
	t.Helper()
	ref, err := c.newCore(t).Run(ckptBudget)
	if err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}

	core := c.newCore(t)
	paused, err := core.RunTo(ckptBudget, k)
	if err != nil {
		t.Fatalf("RunTo(%d): %v", k, err)
	}
	if !paused {
		// A fast-forward jump may land past halt; the run is already
		// complete and must still match the reference.
		res, err := core.Run(ckptBudget)
		if err != nil {
			t.Fatalf("finish after missed pause: %v", err)
		}
		assertSameResult(t, "ran-past-pause", ref, res)
		return
	}
	ck, err := core.Checkpoint()
	if err != nil {
		t.Fatalf("Checkpoint at cycle %d: %v", core.Cycle(), err)
	}

	data := ck.MarshalBinary()
	ck2, err := UnmarshalCheckpoint(data)
	if err != nil {
		t.Fatalf("UnmarshalCheckpoint: %v", err)
	}
	if !reflect.DeepEqual(ck, ck2) {
		t.Fatalf("serialize/deserialize round trip is not deeply equal (cycle %d, %d bytes)", ck.Now, len(data))
	}
	if cl := ck.Clone(); !reflect.DeepEqual(ck, cl) {
		t.Fatalf("Clone is not deeply equal to its source")
	}

	cont, err := core.Run(ckptBudget)
	if err != nil {
		t.Fatalf("continue after checkpoint: %v", err)
	}
	assertSameResult(t, "paused-then-continued", ref, cont)

	var dev isa.AccelDevice
	if c.dev != nil {
		dev = c.dev()
	}
	rcore, err := NewFromCheckpoint(c.cfg, c.prog, dev, ck2)
	if err != nil {
		t.Fatalf("NewFromCheckpoint: %v", err)
	}
	rres, err := rcore.Run(ckptBudget)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	assertSameResult(t, "resumed", ref, rres)
}

// refCycles measures the uninterrupted cycle count so tests can aim k at a
// mid-run boundary.
func refCycles(t *testing.T, c ckptCase) int64 {
	t.Helper()
	res, err := c.newCore(t).Run(ckptBudget)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	return res.Stats.Cycles
}

// TestCheckpointResumeOnWorkloads checks checkpoint/resume transparency for
// every benchmark workload: the baseline program plus all four TCA
// integration modes, snapshotting halfway through the run. Traces are left
// on so the comparison covers the accel-event and pipeline traces, not just
// scalar counters.
func TestCheckpointResumeOnWorkloads(t *testing.T) {
	type build struct {
		name string
		cfg  func() Config
		make func() (*workload.Workload, error)
	}
	builds := []build{
		{"synthetic", HighPerfConfig, func() (*workload.Workload, error) {
			return workload.Synthetic(workload.SyntheticConfig{
				Units: 40, UnitLen: 30, Regions: 12, RegionLen: 40,
				AccelLatency: 400, Seed: 1,
			})
		}},
		{"heap", LowPerfConfig, func() (*workload.Workload, error) {
			return workload.Heap(workload.HeapConfig{
				Operations: 120, FillerPerCall: 40, Prefill: 64, Seed: 2,
			})
		}},
		{"matmul", HighPerfConfig, func() (*workload.Workload, error) {
			return workload.MatMul(workload.MatMulConfig{N: 16, Block: 8, Tile: 4, Seed: 3})
		}},
		{"kvstore", A72Config, func() (*workload.Workload, error) {
			return workload.KVStore(workload.KVStoreConfig{
				Operations: 100, FillerPerOp: 30, Buckets: 256, Keys: 64,
				LookupPct: 70, KeyWords: 4, Seed: 4,
			})
		}},
		{"regex", HighPerfConfig, func() (*workload.Workload, error) {
			return workload.RegexMatch(workload.RegexMatchConfig{
				Pattern: "ab*c.d+", Matches: 40, FillerPerOp: 30,
				Inputs: 8, MaxLen: 24, Seed: 5,
			})
		}},
		{"stringmatch", LowPerfConfig, func() (*workload.Workload, error) {
			return workload.StringMatch(workload.StringMatchConfig{
				Comparisons: 60, FillerPerOp: 30, Dictionary: 12,
				MinWords: 4, MaxWords: 10, SharedPrefix: 3, Seed: 6,
			})
		}},
		{"multitca", HighPerfConfig, func() (*workload.Workload, error) {
			cfg := workload.DefaultMultiTCA()
			cfg.Calls = 60
			return workload.MultiTCA(cfg)
		}},
	}
	for _, bld := range builds {
		w, err := bld.make()
		if err != nil {
			t.Fatalf("%s: %v", bld.name, err)
		}
		traced := func() Config {
			cfg := bld.cfg()
			cfg.RecordAccelEvents = true
			cfg.PipeTraceLimit = 300
			return cfg
		}
		t.Run(bld.name+"-baseline", func(t *testing.T) {
			c := ckptCase{name: bld.name, cfg: traced(), prog: w.Baseline}
			assertCheckpointTransparent(t, c, refCycles(t, c)/2)
		})
		for _, m := range accel.AllModes {
			t.Run(fmt.Sprintf("%s-%s", bld.name, m), func(t *testing.T) {
				cfg := traced()
				cfg.Mode = m
				c := ckptCase{name: bld.name, cfg: cfg, prog: w.Accelerated, dev: w.NewDevice}
				assertCheckpointTransparent(t, c, refCycles(t, c)/2)
			})
		}
	}
}

// TestCheckpointResumeAtManyBoundaries sweeps the snapshot cycle across the
// run — near fetch of the first instructions, mid-run with the ROB full and
// invocations in flight, and just before halt.
func TestCheckpointResumeAtManyBoundaries(t *testing.T) {
	w, err := workload.Heap(workload.HeapConfig{
		Operations: 120, FillerPerCall: 40, Prefill: 64, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := LowPerfConfig()
	cfg.Mode = accel.LT
	cfg.RecordAccelEvents = true
	cfg.PipeTraceLimit = 300
	c := ckptCase{cfg: cfg, prog: w.Accelerated, dev: w.NewDevice}
	total := refCycles(t, c)
	for _, num := range []int64{1, 2, 4, 6, 7} {
		k := total * num / 8
		if k < 1 {
			k = 1
		}
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			assertCheckpointTransparent(t, c, k)
		})
	}
}

// TestCheckpointResumePartialSpeculation repeats the differential test with
// the confidence gate active, over the same random-program seeds the
// equivalence suite uses (the gate's wait counters and predictor-confidence
// state must survive the snapshot).
func TestCheckpointResumePartialSpeculation(t *testing.T) {
	opt := proggen.DefaultOptions()
	opt.AccelEvery = 2
	opt.HeapAccel = true
	heap := func() isa.AccelDevice {
		a := tcmalloc.New(0x200000, 1<<22)
		for c := 0; c < tcmalloc.NumClasses; c++ {
			if err := a.Refill(c, 256); err != nil {
				panic(err)
			}
		}
		return accel.NewHeap(a)
	}
	for seed := int64(400); seed < 408; seed++ {
		prog := proggen.Generate(seed, opt)
		for _, m := range []accel.Mode{accel.LNT, accel.LT} {
			for _, kind := range []string{"bimodal", "gshare"} {
				t.Run(fmt.Sprintf("seed%d-%s-%s", seed, m, kind), func(t *testing.T) {
					cfg := HighPerfConfig()
					cfg.Mode = m
					cfg.PartialSpeculation = true
					cfg.Predictor = PredictorConfig{Kind: kind}
					c := ckptCase{cfg: cfg, prog: prog, dev: heap}
					assertCheckpointTransparent(t, c, refCycles(t, c)/2)
				})
			}
		}
	}
}

// TestCheckpointParallelForks takes ONE warm suffix-free snapshot at the
// accel-fetch boundary and forks eight post-warmup variants from it
// concurrently — the scenario-store fast path. Each fork must match a fresh
// uninterrupted run of its own configuration; the shared Checkpoint is never
// mutated, which the race detector verifies when the suite runs under -race.
func TestCheckpointParallelForks(t *testing.T) {
	w, err := workload.KVStore(workload.KVStoreConfig{
		Operations: 100, FillerPerOp: 30, Buckets: 256, Keys: 64,
		LookupPct: 70, KeyWords: 4, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	base := A72Config()
	warm, err := New(base, w.Accelerated, w.NewDevice())
	if err != nil {
		t.Fatal(err)
	}
	paused, err := warm.RunToAccelFetch(ckptBudget)
	if err != nil {
		t.Fatal(err)
	}
	if !paused {
		t.Fatal("workload halted before any accel fetch")
	}
	ck, err := warm.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if !ck.SuffixFree {
		t.Fatal("snapshot at the accel-fetch boundary should precede any accel dispatch")
	}
	for _, m := range accel.AllModes {
		for _, partial := range []bool{false, true} {
			m, partial := m, partial
			t.Run(fmt.Sprintf("%s-partial=%v", m, partial), func(t *testing.T) {
				t.Parallel()
				cfg := base
				cfg.Mode = m
				cfg.PartialSpeculation = partial
				fork, err := NewFromCheckpoint(cfg, w.Accelerated, w.NewDevice(), ck)
				if err != nil {
					t.Fatalf("NewFromCheckpoint: %v", err)
				}
				got, err := fork.Run(ckptBudget)
				if err != nil {
					t.Fatalf("forked run: %v", err)
				}
				fresh := ckptCase{cfg: cfg, prog: w.Accelerated, dev: w.NewDevice}
				want, err := fresh.newCore(t).Run(ckptBudget)
				if err != nil {
					t.Fatalf("reference run: %v", err)
				}
				assertSameResult(t, "fork", want, got)
			})
		}
	}
}

// bareDevice hides the AccelSnapshotter implementation of the device it
// wraps, modeling a device that cannot be snapshotted.
type bareDevice struct {
	isa.AccelDevice
}

// TestCheckpointValidation pins the rejection paths: suffix-bound snapshots
// refuse cross-mode resume, program mismatches are caught by the hash,
// corrupt bytes fail to decode, and an invoked non-snapshottable device
// refuses to checkpoint (while a pristine one does not).
func TestCheckpointValidation(t *testing.T) {
	w, err := workload.Heap(workload.HeapConfig{
		Operations: 120, FillerPerCall: 40, Prefill: 64, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := LowPerfConfig()
	cfg.Mode = accel.LT
	c := ckptCase{cfg: cfg, prog: w.Accelerated, dev: w.NewDevice}
	total := refCycles(t, c)

	core := c.newCore(t)
	if paused, err := core.RunTo(ckptBudget, total/2); err != nil || !paused {
		t.Fatalf("RunTo: paused=%v err=%v", paused, err)
	}
	ck, err := core.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if ck.SuffixFree {
		t.Fatalf("snapshot halfway through an accel workload should be suffix-bound")
	}

	// Suffix-bound snapshot, different mode: rejected.
	other := cfg
	other.Mode = accel.NLNT
	if _, err := NewFromCheckpoint(other, w.Accelerated, w.NewDevice(), ck); err == nil {
		t.Error("cross-mode resume from a suffix-bound snapshot was not rejected")
	}
	// Same canonical config, different program: rejected by the hash.
	if _, err := NewFromCheckpoint(cfg, w.Baseline, w.NewDevice(), ck); err == nil {
		t.Error("resume under a different program was not rejected")
	}
	// Prefix-identical configs that differ only in erased fields: accepted.
	renamed := cfg
	renamed.Name = "renamed"
	if _, err := NewFromCheckpoint(renamed, w.Accelerated, w.NewDevice(), ck); err != nil {
		t.Errorf("rename-only config change rejected: %v", err)
	}

	// Corrupt and truncated bytes fail to decode.
	data := ck.MarshalBinary()
	if _, err := UnmarshalCheckpoint(data[:len(data)/2]); err == nil {
		t.Error("truncated checkpoint decoded without error")
	}
	garbage := append([]byte(nil), data...)
	garbage[0] ^= 0xff
	if _, err := UnmarshalCheckpoint(garbage); err == nil {
		t.Error("bad magic decoded without error")
	}

	// A non-snapshottable device blocks checkpointing only once invoked.
	bare := c
	bare.dev = func() isa.AccelDevice { return bareDevice{w.NewDevice()} }
	bcore := bare.newCore(t)
	if _, err := bcore.Checkpoint(); err != nil {
		t.Errorf("pristine non-snapshottable device refused to checkpoint: %v", err)
	}
	if paused, err := bcore.RunTo(ckptBudget, total/2); err != nil || !paused {
		t.Fatalf("RunTo: paused=%v err=%v", paused, err)
	}
	if _, err := bcore.Checkpoint(); err == nil {
		t.Error("invoked non-snapshottable device did not refuse to checkpoint")
	}
}
