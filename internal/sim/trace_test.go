package sim

import (
	"strings"
	"testing"

	"repro/internal/accel"
	"repro/internal/isa"
)

func TestPipeTraceRecords(t *testing.T) {
	b := isa.NewBuilder()
	b.MovI(isa.R(1), 5)
	b.AddI(isa.R(2), isa.R(1), 1) // depends on the movi
	b.Accel(isa.R(3), 0, isa.R(2))
	b.Halt()
	cfg := HighPerfConfig()
	cfg.PipeTraceLimit = 10
	core, err := New(cfg, b.MustBuild(), accel.NewFixedLatency(9))
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(100000)
	if err != nil {
		t.Fatal(err)
	}
	ev := res.Stats.PipeTrace
	if len(ev) != 4 {
		t.Fatalf("events = %d, want 4", len(ev))
	}
	for i, e := range ev {
		if !(e.Dispatch <= e.Issue && e.Issue <= e.Complete && e.Complete <= e.Commit) {
			t.Errorf("event %d out of order: %+v", i, e)
		}
	}
	// Program order is commit order.
	for i := 1; i < len(ev); i++ {
		if ev[i].Commit < ev[i-1].Commit {
			t.Error("commit order violated in trace")
		}
	}
	// The dependent add issues no earlier than the movi completes... its
	// producer has 1-cycle latency, so issue >= producer issue + 1.
	if ev[1].Issue < ev[0].Issue+1 {
		t.Errorf("dependent issued at %d, producer issued at %d", ev[1].Issue, ev[0].Issue)
	}
	// The accel event is marked and spans its 9-cycle latency.
	if !ev[2].Accel {
		t.Error("accel event not marked")
	}
	if ev[2].Complete-ev[2].Issue < 9 {
		t.Errorf("accel executed in %d cycles, latency 9", ev[2].Complete-ev[2].Issue)
	}

	out := RenderPipeTrace(ev, 80)
	for _, want := range []string{"movi r1, 5", "accel", "A", "C"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestPipeTraceLimit(t *testing.T) {
	cfg := HighPerfConfig()
	cfg.PipeTraceLimit = 3
	core, _ := New(cfg, sumProgram(100), nil)
	res, err := core.Run(100000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats.PipeTrace) != 3 {
		t.Errorf("trace length = %d, want capped at 3", len(res.Stats.PipeTrace))
	}
}

func TestPipeTraceDisabledByDefault(t *testing.T) {
	core, _ := New(HighPerfConfig(), sumProgram(50), nil)
	res, err := core.Run(100000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats.PipeTrace) != 0 {
		t.Error("trace recorded without being enabled")
	}
}

func TestRenderPipeTraceEmpty(t *testing.T) {
	if out := RenderPipeTrace(nil, 0); !strings.Contains(out, "no pipeline events") {
		t.Errorf("empty render = %q", out)
	}
}
