package textplot

import (
	"math"
	"strings"
	"testing"
)

func twoSeries() Chart {
	return Chart{
		Title:  "t",
		XLabel: "x",
		YLabel: "y",
		Series: []Series{
			{Name: "up", X: []float64{1, 2, 3, 4}, Y: []float64{1, 2, 3, 4}},
			{Name: "down", X: []float64{1, 2, 3, 4}, Y: []float64{4, 3, 2, 1}},
		},
	}
}

func TestChartRenderBasics(t *testing.T) {
	out := twoSeries().Render()
	for _, want := range []string{"t\n", "up", "down", "x: x", "y: y", "*", "o"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Proportional box: every grid row is wrapped in pipes.
	lines := strings.Split(out, "\n")
	boxRows := 0
	for _, l := range lines {
		if strings.Contains(l, "|") {
			boxRows++
		}
	}
	if boxRows != 20 {
		t.Errorf("box rows = %d, want default height 20", boxRows)
	}
}

func TestChartEmpty(t *testing.T) {
	out := Chart{Title: "nothing"}.Render()
	if !strings.Contains(out, "(no data)") {
		t.Errorf("empty chart did not say so: %s", out)
	}
	// NaN/Inf-only series count as empty.
	ch := Chart{Series: []Series{{Name: "bad", X: []float64{1}, Y: []float64{math.NaN()}}}}
	if !strings.Contains(ch.Render(), "(no data)") {
		t.Error("NaN-only series must render as no data")
	}
}

func TestChartConstantSeries(t *testing.T) {
	ch := Chart{Series: []Series{{Name: "flat", X: []float64{1, 2}, Y: []float64{5, 5}}}}
	out := ch.Render()
	if strings.Contains(out, "no data") {
		t.Error("constant series is valid data")
	}
}

func TestChartLogAxes(t *testing.T) {
	ch := Chart{
		LogX: true,
		Series: []Series{
			{Name: "s", X: []float64{10, 100, 1000, 10000}, Y: []float64{1, 2, 3, 4}},
		},
		Width: 30, Height: 8,
	}
	out := ch.Render()
	// In log space the four points are evenly spread; in linear space
	// three of them would collapse into the left 10% of a 30-char box.
	first := -1
	var cols []int
	for _, line := range strings.Split(out, "\n") {
		if i := strings.IndexRune(line, '*'); i >= 0 {
			cols = append(cols, i)
			if first == -1 {
				first = i
			}
		}
	}
	if len(cols) < 4 {
		t.Fatalf("expected 4 plotted points, got %d:\n%s", len(cols), out)
	}
	span := cols[len(cols)-1] - cols[0]
	if span >= 0 { // columns collected top row (y max) downward
		// Even spread: adjacent gaps within 2 chars of each other.
		gaps := make([]int, 0, 3)
		for i := 1; i < len(cols); i++ {
			g := cols[i-1] - cols[i]
			if g < 0 {
				g = -g
			}
			gaps = append(gaps, g)
		}
		for _, g := range gaps[1:] {
			if d := g - gaps[0]; d > 3 || d < -3 {
				t.Errorf("log-x spacing uneven: gaps %v\n%s", gaps, out)
				break
			}
		}
	}
}

func TestChartCSV(t *testing.T) {
	csv := twoSeries().CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if lines[0] != "x,up,down" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != 5 {
		t.Errorf("rows = %d, want 5", len(lines))
	}
	if lines[1] != "1,1,4" {
		t.Errorf("first row = %q, want 1,1,4", lines[1])
	}
	// Missing x values leave empty cells.
	ch := Chart{Series: []Series{
		{Name: "a", X: []float64{1}, Y: []float64{10}},
		{Name: "b", X: []float64{2}, Y: []float64{20}},
	}}
	csv = ch.CSV()
	if !strings.Contains(csv, "1,10,\n") || !strings.Contains(csv, "2,,20\n") {
		t.Errorf("sparse CSV wrong:\n%s", csv)
	}
}

func TestHeatmapRender(t *testing.T) {
	h := Heatmap{
		Title:  "map",
		Center: 1,
		Cells: [][]float64{
			{0.5, 1.0, 2.0},
			{math.NaN(), 1.5, 3.0},
		},
	}
	out := h.Render()
	if !strings.Contains(out, "map") {
		t.Error("missing title")
	}
	lines := strings.Split(out, "\n")
	if len(lines[1]) != 3 || len(lines[2]) != 3 {
		t.Errorf("cell rows wrong width: %q / %q", lines[1], lines[2])
	}
	if lines[2][0] != ' ' {
		t.Error("NaN cell must render blank")
	}
	// Below-center cells use the slowdown ramp, above-center the speedup
	// ramp.
	below := string(rampBelow)
	above := string(rampAbove)
	if !strings.ContainsRune(below, rune(lines[1][0])) {
		t.Errorf("0.5 rendered %q, want slowdown ramp", lines[1][0])
	}
	if !strings.ContainsRune(above, rune(lines[1][2])) {
		t.Errorf("2.0 rendered %q, want speedup ramp", lines[1][2])
	}
}

func TestHeatmapEmpty(t *testing.T) {
	h := Heatmap{Cells: [][]float64{{math.NaN()}}}
	if !strings.Contains(h.Render(), "(no data)") {
		t.Error("all-NaN heatmap must say no data")
	}
}

func TestHeatmapCSV(t *testing.T) {
	h := Heatmap{Center: 1, Cells: [][]float64{{1.5, math.NaN()}, {0.5, 2}}}
	csv := h.CSV()
	if !strings.Contains(csv, "0,0,1.5\n") || !strings.Contains(csv, "1,1,2\n") {
		t.Errorf("CSV wrong:\n%s", csv)
	}
	if strings.Contains(csv, "\n0,1,") {
		t.Error("NaN cell must be omitted from CSV")
	}
}

func TestTable(t *testing.T) {
	out := Table([]string{"name", "val"}, [][]string{
		{"alpha", "1"},
		{"b", "22222"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want 4", len(lines))
	}
	if !strings.HasPrefix(lines[0], "name ") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "-----") {
		t.Errorf("separator = %q", lines[1])
	}
	// Columns aligned: "val" column starts at the same offset everywhere.
	off := strings.Index(lines[0], "val")
	if lines[2][off:off+1] != "1" && lines[3][off:off+1] != "2" {
		t.Errorf("columns misaligned:\n%s", out)
	}
}
