// Package textplot renders small line charts, scatter plots and heatmaps
// as ASCII for terminal output, and serializes the same data as CSV. It is
// the presentation layer for the figure-regeneration harness.
package textplot

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is one named line on a chart.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Chart is a collection of series sharing axes.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	// LogX / LogY plot the axis in log10 space.
	LogX, LogY bool
	Series     []Series

	// Width and Height of the plotting area in characters; zero selects
	// 72x20.
	Width, Height int
}

// seriesMarks assigns one rune per series.
var seriesMarks = []rune{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Render draws the chart.
func (c Chart) Render() string {
	w, h := c.Width, c.Height
	if w == 0 {
		w = 72
	}
	if h == 0 {
		h = 20
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	tx := func(v float64) float64 {
		if c.LogX {
			return math.Log10(v)
		}
		return v
	}
	ty := func(v float64) float64 {
		if c.LogY {
			return math.Log10(v)
		}
		return v
	}
	any := false
	for _, s := range c.Series {
		for i := range s.X {
			x, y := tx(s.X[i]), ty(s.Y[i])
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			any = true
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	if !any {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	// One backing slab for the whole grid instead of a slice per row.
	slab := make([]rune, h*w)
	for i := range slab {
		slab[i] = ' '
	}
	grid := make([][]rune, h)
	for r := range grid {
		grid[r] = slab[r*w : (r+1)*w]
	}
	for si, s := range c.Series {
		mark := seriesMarks[si%len(seriesMarks)]
		for i := range s.X {
			x, y := tx(s.X[i]), ty(s.Y[i])
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			col := int((x - xmin) / (xmax - xmin) * float64(w-1))
			row := h - 1 - int((y-ymin)/(ymax-ymin)*float64(h-1))
			if grid[row][col] == ' ' || grid[row][col] == mark {
				grid[row][col] = mark
			} else {
				grid[row][col] = '?' // overlapping series
			}
		}
	}
	yLab := func(v float64) string {
		if c.LogY {
			return fmt.Sprintf("%9.3g", math.Pow(10, v))
		}
		return fmt.Sprintf("%9.3g", v)
	}
	b.Grow((h + 4) * (w + 16))
	for r := 0; r < h; r++ {
		var label string
		switch r {
		case 0:
			label = yLab(ymax)
		case h - 1:
			label = yLab(ymin)
		default:
			label = strings.Repeat(" ", 9)
		}
		b.WriteString(label)
		b.WriteString(" |")
		for _, ch := range grid[r] {
			b.WriteRune(ch)
		}
		b.WriteString("|\n")
	}
	xl := xmin
	xr := xmax
	if c.LogX {
		xl, xr = math.Pow(10, xmin), math.Pow(10, xmax)
	}
	fmt.Fprintf(&b, "%s  %-*.3g%*.3g\n", strings.Repeat(" ", 9), w/2, xl, w-w/2, xr)
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&b, "%s  x: %s   y: %s\n", strings.Repeat(" ", 9), c.XLabel, c.YLabel)
	}
	for si, s := range c.Series {
		fmt.Fprintf(&b, "  %c %s\n", seriesMarks[si%len(seriesMarks)], s.Name)
	}
	return b.String()
}

// CSV serializes the chart's series as x,<name1>,<name2>,... rows, merging
// series on exact x values.
func (c Chart) CSV() string {
	xs := map[float64]bool{}
	for _, s := range c.Series {
		for _, x := range s.X {
			xs[x] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)
	var b strings.Builder
	b.WriteString("x")
	for _, s := range c.Series {
		fmt.Fprintf(&b, ",%s", s.Name)
	}
	b.WriteString("\n")
	for _, x := range sorted {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range c.Series {
			v, ok := lookup(s, x)
			if ok {
				fmt.Fprintf(&b, ",%g", v)
			} else {
				b.WriteString(",")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

func lookup(s Series, x float64) (float64, bool) {
	for i := range s.X {
		if s.X[i] == x {
			return s.Y[i], true
		}
	}
	return 0, false
}

// Heatmap renders a 2D grid of values with a diverging character ramp
// around a center value (the Fig. 7 style: speedup above 1, slowdown
// below).
type Heatmap struct {
	Title  string
	XLabel string
	YLabel string
	// Cells[row][col]; row 0 renders at the top. NaN cells are blank.
	Cells [][]float64
	// Center divides the two ramp directions (1.0 for speedup maps).
	Center float64
}

// speedup ramp: '-' shades below center, '+' shades above.
var (
	rampBelow = []rune{'~', '-', '=', '%'}
	rampAbove = []rune{'.', ':', '*', '#'}
)

// Render draws the heatmap with a legend.
func (h Heatmap) Render() string {
	var lo, hi float64 = math.Inf(1), math.Inf(-1)
	for _, row := range h.Cells {
		for _, v := range row {
			if math.IsNaN(v) {
				continue
			}
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
	}
	var b strings.Builder
	if h.Title != "" {
		fmt.Fprintf(&b, "%s\n", h.Title)
	}
	if math.IsInf(lo, 1) {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if len(h.Cells) > 0 {
		b.Grow(len(h.Cells)*(len(h.Cells[0])+1) + 160)
	}
	for _, row := range h.Cells {
		for _, v := range row {
			b.WriteRune(h.cellRune(v, lo, hi))
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "min %.3g  center %.3g  max %.3g   below: %s  above: %s\n",
		lo, h.Center, hi, string(rampBelow), string(rampAbove))
	if h.XLabel != "" || h.YLabel != "" {
		fmt.Fprintf(&b, "x: %s   y: %s\n", h.XLabel, h.YLabel)
	}
	return b.String()
}

func (h Heatmap) cellRune(v, lo, hi float64) rune {
	if math.IsNaN(v) {
		return ' '
	}
	if v < h.Center {
		span := h.Center - lo
		if span <= 0 {
			return rampBelow[len(rampBelow)-1]
		}
		idx := int((h.Center - v) / span * float64(len(rampBelow)))
		if idx >= len(rampBelow) {
			idx = len(rampBelow) - 1
		}
		return rampBelow[idx]
	}
	span := hi - h.Center
	if span <= 0 {
		return rampAbove[0]
	}
	idx := int((v - h.Center) / span * float64(len(rampAbove)))
	if idx >= len(rampAbove) {
		idx = len(rampAbove) - 1
	}
	return rampAbove[idx]
}

// CSV serializes the heatmap as row,col,value triples.
func (h Heatmap) CSV() string {
	var b strings.Builder
	b.WriteString("row,col,value\n")
	for r, row := range h.Cells {
		for c, v := range row {
			if math.IsNaN(v) {
				continue
			}
			fmt.Fprintf(&b, "%d,%d,%g\n", r, c, v)
		}
	}
	return b.String()
}

// Table renders aligned columns: header plus rows.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, hcol := range header {
		widths[i] = len(hcol)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	lineWidth := 1
	for _, w := range widths {
		lineWidth += w + 2
	}
	b.Grow(lineWidth * (len(rows) + 2))
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteString("\n")
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}
