package tcmalloc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestClassBytes(t *testing.T) {
	want := []uint64{32, 64, 96, 128}
	for c, w := range want {
		if got := ClassBytes(c); got != w {
			t.Errorf("ClassBytes(%d) = %d, want %d", c, got, w)
		}
	}
}

func TestClassBytesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range class")
		}
	}()
	ClassBytes(4)
}

func TestClassFor(t *testing.T) {
	cases := []struct {
		size  uint64
		class int
		ok    bool
	}{
		{0, 0, true}, {1, 0, true}, {32, 0, true},
		{33, 1, true}, {64, 1, true},
		{65, 2, true}, {96, 2, true},
		{97, 3, true}, {128, 3, true},
		{129, 0, false}, {4096, 0, false},
	}
	for _, c := range cases {
		class, ok := ClassFor(c.size)
		if class != c.class || ok != c.ok {
			t.Errorf("ClassFor(%d) = (%d, %v), want (%d, %v)", c.size, class, ok, c.class, c.ok)
		}
	}
}

func TestMallocFreeRoundTrip(t *testing.T) {
	a := New(0x10000, 1<<20)
	if err := a.Refill(0, 4); err != nil {
		t.Fatal(err)
	}
	p1 := a.Malloc(16)
	p2 := a.Malloc(32)
	if p1 == 0 || p2 == 0 {
		t.Fatal("malloc failed with refilled list")
	}
	if p1 == p2 {
		t.Fatal("malloc returned the same block twice")
	}
	if !a.Allocated(p1) || !a.Allocated(p2) {
		t.Error("allocated blocks not tracked")
	}
	if !a.Free(p1) {
		t.Error("free of live block failed")
	}
	if a.Allocated(p1) {
		t.Error("freed block still live")
	}
	// LIFO reuse: next malloc returns the freed block.
	if p3 := a.Malloc(8); p3 != p1 {
		t.Errorf("expected LIFO reuse of %#x, got %#x", p1, p3)
	}
}

func TestMallocEmptyListReturnsZero(t *testing.T) {
	a := New(0x10000, 1<<20)
	if p := a.Malloc(16); p != 0 {
		t.Errorf("malloc with empty list = %#x, want 0", p)
	}
	if p := a.Malloc(4096); p != 0 {
		t.Errorf("oversized malloc = %#x, want 0", p)
	}
}

func TestFreeUnknownPointer(t *testing.T) {
	a := New(0x10000, 1<<20)
	if a.Free(0xdead) {
		t.Error("free of unknown pointer succeeded")
	}
	// Double free is ignored.
	a.Refill(0, 1)
	p := a.Malloc(8)
	if !a.Free(p) || a.Free(p) {
		t.Error("double free must fail the second time")
	}
}

func TestRefillArenaExhaustion(t *testing.T) {
	a := New(0x20, 64) // room for exactly two 32B blocks
	if err := a.Refill(0, 2); err != nil {
		t.Fatalf("refill within arena failed: %v", err)
	}
	if err := a.Refill(0, 1); err == nil {
		t.Error("refill past arena end must fail")
	}
}

func TestNewValidation(t *testing.T) {
	for _, c := range []struct{ base uint64 }{{0}, {17}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(base=%#x) must panic", c.base)
				}
			}()
			New(c.base, 1024)
		}()
	}
}

func TestClassesDoNotOverlap(t *testing.T) {
	a := New(0x1000, 1<<20)
	for c := 0; c < NumClasses; c++ {
		if err := a.Refill(c, 8); err != nil {
			t.Fatal(err)
		}
	}
	seen := make(map[uint64]uint64) // addr -> size
	for c := 0; c < NumClasses; c++ {
		for i := 0; i < 8; i++ {
			p := a.Malloc(ClassBytes(c))
			if p == 0 {
				t.Fatalf("malloc class %d failed", c)
			}
			for q, sz := range seen {
				if p < q+sz && q < p+ClassBytes(c) {
					t.Fatalf("block %#x(+%d) overlaps %#x(+%d)", p, ClassBytes(c), q, sz)
				}
			}
			seen[p] = ClassBytes(c)
		}
	}
}

func TestMarkRewind(t *testing.T) {
	a := New(0x1000, 1<<20)
	a.Refill(0, 4)
	p0 := a.Malloc(8)
	mark := a.Mark()
	baseLen := a.FreeLen(0)

	p1 := a.Malloc(8)
	a.Free(p0)
	p2 := a.Malloc(8) // reuses p0
	if p2 != p0 {
		t.Fatalf("expected LIFO reuse, got %#x vs %#x", p2, p0)
	}
	a.Rewind(mark)

	if a.FreeLen(0) != baseLen {
		t.Errorf("free list length = %d, want %d after rewind", a.FreeLen(0), baseLen)
	}
	if !a.Allocated(p0) {
		t.Error("p0 must be live again after rewind")
	}
	if a.Allocated(p1) && p1 != p0 {
		t.Error("speculative allocation survived rewind")
	}
	// Determinism: replay after rewind yields the same pointer.
	if got := a.Malloc(8); got != p1 {
		t.Errorf("replay malloc = %#x, want %#x", got, p1)
	}
}

func TestTrimJournal(t *testing.T) {
	a := New(0x1000, 1<<20)
	a.Refill(0, 8)
	for i := 0; i < 5; i++ {
		a.Malloc(8)
	}
	m := a.Mark()
	a.Malloc(8)
	a.TrimJournal(m)
	// After trimming, rewinding to 0 only undoes post-mark ops.
	a.Rewind(0)
	if a.Mallocs != 5 {
		t.Errorf("mallocs = %d, want 5 (trim must anchor rewind)", a.Mallocs)
	}
}

// Property: any random interleaving of malloc/free with a final rewind to an
// initial mark restores free-list lengths and live count exactly.
func TestRewindRestoresStateProperty(t *testing.T) {
	f := func(seed int64, ops []byte) bool {
		a := New(0x1000, 1<<22)
		for c := 0; c < NumClasses; c++ {
			a.Refill(c, 32)
		}
		rng := rand.New(rand.NewSource(seed))
		var live []uint64
		// Pre-phase: non-speculative activity.
		for i := 0; i < 10; i++ {
			if p := a.Malloc(uint64(rng.Intn(128) + 1)); p != 0 {
				live = append(live, p)
			}
		}
		var lens [NumClasses]int
		for c := range lens {
			lens[c] = a.FreeLen(c)
		}
		liveCount := a.LiveBlocks
		mark := a.Mark()

		// Speculative phase driven by fuzz input.
		for _, op := range ops {
			if op%2 == 0 {
				if p := a.Malloc(uint64(op%128) + 1); p != 0 {
					live = append(live, p)
				}
			} else if len(live) > 0 {
				i := int(op) % len(live)
				a.Free(live[i])
				live = append(live[:i], live[i+1:]...)
			}
		}
		a.Rewind(mark)
		if a.LiveBlocks != liveCount {
			return false
		}
		for c := range lens {
			if a.FreeLen(c) != lens[c] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSoftwareCostConstants(t *testing.T) {
	// The paper's §IV numbers; a change here silently invalidates Fig. 5.
	if MallocCost.Uops != 69 || MallocCost.Cycles != 39 {
		t.Errorf("malloc cost = %+v, want 69 uops / 39 cycles", MallocCost)
	}
	if FreeCost.Uops != 37 || FreeCost.Cycles != 20 {
		t.Errorf("free cost = %+v, want 37 uops / 20 cycles", FreeCost)
	}
}
