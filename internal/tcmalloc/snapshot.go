package tcmalloc

import (
	"fmt"
	"sort"
)

// OwnerPair is one live allocation in a State snapshot, sorted by pointer.
type OwnerPair struct {
	Ptr   uint64
	Class int
}

// JournalOp mirrors one undo-journal record.
type JournalOp struct {
	Class int
	Ptr   uint64
	Push  bool
}

// State is a deterministic deep snapshot of an Allocator, including the
// speculation journal (the simulator checkpoints mid-run, while some
// invocations may still be speculative and need Rewind to work after
// resume) and the statistics counters.
type State struct {
	Free    [NumClasses][]uint64
	Arena   uint64
	ArenaHi uint64
	Owner   []OwnerPair
	Journal []JournalOp

	Mallocs    uint64
	Frees      uint64
	Refills    uint64
	LiveBlocks int
}

// Snapshot captures the allocator's complete state.
func (a *Allocator) Snapshot() State {
	s := State{
		Arena: a.arena, ArenaHi: a.arenaHi,
		Mallocs: a.Mallocs, Frees: a.Frees, Refills: a.Refills, LiveBlocks: a.LiveBlocks,
	}
	for c := range a.free {
		s.Free[c] = append([]uint64(nil), a.free[c]...)
	}
	owner := make([]OwnerPair, 0, len(a.owner))
	for ptr, class := range a.owner {
		owner = append(owner, OwnerPair{Ptr: ptr, Class: class})
	}
	sort.Slice(owner, func(i, j int) bool { return owner[i].Ptr < owner[j].Ptr })
	s.Owner = owner
	s.Journal = make([]JournalOp, len(a.journal))
	for i, op := range a.journal {
		s.Journal[i] = JournalOp{Class: op.class, Ptr: op.ptr, Push: op.push}
	}
	return s
}

// Restore fills the allocator from a snapshot, replacing all state.
func (a *Allocator) Restore(s State) error {
	for c := range s.Free {
		for _, ptr := range s.Free[c] {
			if ptr == 0 {
				return fmt.Errorf("tcmalloc: snapshot free list holds nil pointer")
			}
		}
	}
	for c := range a.free {
		a.free[c] = append(a.free[c][:0], s.Free[c]...)
	}
	a.arena, a.arenaHi = s.Arena, s.ArenaHi
	a.owner = make(map[uint64]int, len(s.Owner))
	for _, o := range s.Owner {
		a.owner[o.Ptr] = o.Class
	}
	a.journal = a.journal[:0]
	for _, op := range s.Journal {
		a.journal = append(a.journal, journalOp{class: op.Class, ptr: op.Ptr, push: op.Push})
	}
	a.Mallocs, a.Frees, a.Refills, a.LiveBlocks = s.Mallocs, s.Frees, s.Refills, s.LiveBlocks
	return nil
}
