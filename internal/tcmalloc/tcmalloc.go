// Package tcmalloc implements a TCMalloc-style size-class free-list
// allocator. It is the functional substrate behind two things in this
// reproduction:
//
//   - the heap-manager TCA (internal/accel.Heap), whose hardware tables
//     "store a subset of the free lists tracked by the TCMalloc library"
//     and serve malloc/free in a single cycle, and
//   - the software-baseline malloc/free routines whose costs the paper
//     takes from Gope's measurement of TCMalloc: malloc ≈ 39 cycles /
//     69 x86 uops, free ≈ 20 cycles / 37 uops.
//
// The paper's heap microbenchmark allocates from 4 class sizes (0-32B,
// 33-64B, 65-96B, 97-128B) under the constraint that the accelerator always
// has a pointer for malloc and a free-list entry available for free (the
// common case), so this allocator never needs a slow path during the
// benchmark; Refill exists to pre-populate the lists.
package tcmalloc

import "fmt"

// NumClasses is the number of size classes the paper's benchmark uses.
const NumClasses = 4

// ClassBytes returns the block size of a class (32, 64, 96, 128).
func ClassBytes(class int) uint64 {
	if class < 0 || class >= NumClasses {
		panic(fmt.Sprintf("tcmalloc: class %d out of range", class))
	}
	return uint64(32 * (class + 1))
}

// ClassFor returns the smallest class whose blocks fit size bytes, and
// false if size exceeds the largest class (129+ bytes take the slow path the
// benchmark never exercises).
func ClassFor(size uint64) (int, bool) {
	if size == 0 {
		return 0, true
	}
	if size > 128 {
		return 0, false
	}
	return int((size - 1) / 32), true
}

// journalOp records one mutation for speculative rollback.
type journalOp struct {
	class int
	ptr   uint64
	push  bool // true: ptr was pushed (undo = pop); false: popped (undo = push)
}

// Allocator is a deterministic free-list allocator over a bump-pointer
// arena. It is not safe for concurrent use.
//
// The allocator keeps an undo journal so speculative invocations by the
// heap TCA can be rolled back on branch misspeculation (Mark/Rewind).
type Allocator struct {
	free    [NumClasses][]uint64
	arena   uint64 // next fresh address
	arenaHi uint64 // exclusive arena end
	owner   map[uint64]int

	journal []journalOp

	// Stats.
	Mallocs    uint64
	Frees      uint64
	Refills    uint64
	LiveBlocks int
}

// New returns an allocator over the address range [base, base+size).
// Base must be nonzero (zero is the allocator's failure value) and
// 32-byte aligned.
func New(base, size uint64) *Allocator {
	if base == 0 || base%32 != 0 {
		panic(fmt.Sprintf("tcmalloc: base %#x must be nonzero and 32-byte aligned", base))
	}
	return &Allocator{arena: base, arenaHi: base + size, owner: make(map[uint64]int)}
}

// Refill pushes n fresh blocks onto the free list of class, carving them
// from the arena. It reproduces the "common case" precondition of the
// paper's benchmark: the list always has an entry to return.
func (a *Allocator) Refill(class, n int) error {
	bs := ClassBytes(class)
	for i := 0; i < n; i++ {
		if a.arena+bs > a.arenaHi {
			return fmt.Errorf("tcmalloc: arena exhausted refilling class %d", class)
		}
		a.free[class] = append(a.free[class], a.arena)
		a.arena += bs
		a.Refills++
	}
	return nil
}

// Malloc pops a block of the class fitting size. It returns 0 when size has
// no class or the free list is empty (the benchmark precondition guarantees
// this does not happen in measured runs; callers treat 0 as the slow path).
func (a *Allocator) Malloc(size uint64) uint64 {
	class, ok := ClassFor(size)
	if !ok {
		return 0
	}
	list := a.free[class]
	if len(list) == 0 {
		return 0
	}
	ptr := list[len(list)-1]
	a.free[class] = list[:len(list)-1]
	a.owner[ptr] = class
	a.journal = append(a.journal, journalOp{class: class, ptr: ptr, push: false})
	a.Mallocs++
	a.LiveBlocks++
	return ptr
}

// Free returns a block to its class's free list. Freeing an address that is
// not currently allocated is ignored (matches the benchmark's constraint
// that frees always have an available entry; a robust allocator would trap).
func (a *Allocator) Free(ptr uint64) bool {
	class, ok := a.owner[ptr]
	if !ok {
		return false
	}
	delete(a.owner, ptr)
	a.free[class] = append(a.free[class], ptr)
	a.journal = append(a.journal, journalOp{class: class, ptr: ptr, push: true})
	a.Frees++
	a.LiveBlocks--
	return true
}

// FreeLen returns the current length of a class's free list.
func (a *Allocator) FreeLen(class int) int { return len(a.free[class]) }

// Allocated reports whether ptr is currently live.
func (a *Allocator) Allocated(ptr uint64) bool {
	_, ok := a.owner[ptr]
	return ok
}

// Mark returns a journal position for later Rewind. It implements
// isa.AccelJournal (via the accel.Heap wrapper).
func (a *Allocator) Mark() int { return len(a.journal) }

// Rewind undoes every Malloc/Free performed after the given mark, restoring
// free lists and ownership exactly. Refill is not speculative and need not
// be undone.
func (a *Allocator) Rewind(mark int) {
	for len(a.journal) > mark {
		op := a.journal[len(a.journal)-1]
		a.journal = a.journal[:len(a.journal)-1]
		if op.push {
			// Undo a Free: pop the pushed ptr, mark live again.
			list := a.free[op.class]
			a.free[op.class] = list[:len(list)-1]
			a.owner[op.ptr] = op.class
			a.Frees--
			a.LiveBlocks++
		} else {
			// Undo a Malloc: push the ptr back, clear ownership.
			delete(a.owner, op.ptr)
			a.free[op.class] = append(a.free[op.class], op.ptr)
			a.Mallocs--
			a.LiveBlocks--
		}
	}
}

// TrimJournal discards undo history up to mark (called when the
// corresponding instructions are no longer speculative). Keeping the
// journal bounded matters for long benchmark runs.
func (a *Allocator) TrimJournal(mark int) {
	if mark >= len(a.journal) {
		a.journal = a.journal[:0]
		return
	}
	a.journal = append(a.journal[:0], a.journal[mark:]...)
}

// SoftwareCost gives the paper's measured TCMalloc costs for the software
// baseline: instruction (uop) count and cycles, from Gope's dissertation as
// cited in the paper (§IV: malloc 39 cycles / 69 uops, free 20 cycles /
// 37 uops).
type SoftwareCost struct {
	Uops   int
	Cycles int
}

// Reference software costs.
var (
	MallocCost = SoftwareCost{Uops: 69, Cycles: 39}
	FreeCost   = SoftwareCost{Uops: 37, Cycles: 20}
)
