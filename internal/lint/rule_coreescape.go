package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ruleCoreEscape (R14) is the interprocedural escape check LINT.md
// promised alongside R10: no *sim.Core may be captured by a job closure
// handed to runner.Map/Sweep. A core is mutable simulation scratch —
// ROB slabs, cache state, the cycle heap — and the pool runs the same
// closure concurrently for every index, so a shared core is a data race
// that R10's write heuristics cannot always see (reads mutate caches
// too). Two shapes are flagged:
//
//   - a job function literal whose body references a core declared
//     outside it (direct capture);
//   - a non-literal job argument built by a call like makeJob(core)
//     where the tier-3 escape summary proves the callee stores that
//     parameter inside a function literal it returns.
//
// The sanctioned pattern — constructing the core inside the job from
// immutable inputs, as MeasureWorkload does — is untouched.
var ruleCoreEscape = &Rule{
	ID:   "R14",
	Name: "core-escape",
	Doc:  "*sim.Core must not escape into runner.Map/Sweep job closures; construct cores inside the job from immutable inputs",
	Applies: func(rel string) bool {
		return true
	},
	Check: checkCoreEscape,
}

func checkCoreEscape(pass *Pass) {
	pass.eachFile(func(f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := runnerPoolCall(pass, call)
			if !ok || len(call.Args) == 0 {
				return true
			}
			switch job := call.Args[len(call.Args)-1].(type) {
			case *ast.FuncLit:
				reportCoreCaptures(pass, name, job)
			case *ast.CallExpr:
				reportCoreEscapeViaCall(pass, name, job)
			}
			return true
		})
	})
}

// isCoreType reports whether t is sim.Core or *sim.Core, matching the
// defining package by path suffix so fixture modules work.
func isCoreType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Core" && obj.Pkg() != nil && pathHasSuffix(obj.Pkg().Path(), "internal/sim")
}

// reportCoreCaptures flags free core-typed variables referenced inside
// a job literal, once per variable at its first use.
func reportCoreCaptures(pass *Pass, pool string, lit *ast.FuncLit) {
	seen := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.objOf(id)
		v, isVar := obj.(*types.Var)
		if !isVar || v.IsField() || seen[obj] || !isCoreType(v.Type()) {
			return true
		}
		// Declared outside the literal's extent: a capture, not a local.
		if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
			return true
		}
		seen[obj] = true
		pass.Reportf(id.Pos(),
			"runner.%s job closure captures %q (*sim.Core): cores are mutable simulation state shared across concurrent jobs; construct the core inside the job", pool, obj.Name())
		return true
	})
}

// reportCoreEscapeViaCall flags runner.Map(ctx, p, jobs, makeJob(core))
// when the tier-3 summary proves makeJob lets the core-typed argument
// escape into a function literal (the closure it returns).
func reportCoreEscapeViaCall(pass *Pass, pool string, job *ast.CallExpr) {
	callee := staticCallee(pass.Pkg, job)
	fi := pass.Idx.funcOf(callee)
	if fi == nil {
		return
	}
	report := func(argPos token.Pos, escapePos token.Pos, what string) {
		pass.Reportf(argPos,
			"runner.%s job builder %s lets %s (*sim.Core) escape into a closure (%s); cores are mutable simulation state shared across concurrent jobs",
			pool, funcDisplay(callee), what, pass.Pkg.Fset.Position(escapePos))
	}
	if sel, ok := ast.Unparen(job.Fun).(*ast.SelectorExpr); ok {
		if tv, ok := pass.Pkg.Info.Types[sel.X]; ok && isCoreType(tv.Type) {
			if pos, ok := fi.sum.escaping[-1]; ok {
				report(sel.X.Pos(), pos, "its receiver")
			}
		}
	}
	for i, arg := range job.Args {
		tv, ok := pass.Pkg.Info.Types[arg]
		if !ok || !isCoreType(tv.Type) {
			continue
		}
		if pos, ok := fi.sum.escaping[i]; ok {
			report(arg.Pos(), pos, "its argument")
		}
	}
}
