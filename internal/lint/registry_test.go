package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadModuleAt loads every package of the standalone fixture module
// rooted at dir (which must contain its own go.mod).
func loadModuleAt(t *testing.T, dir string) []*Package {
	t.Helper()
	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := loader.Expand([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*Package
	for _, p := range paths {
		pkg, err := loader.Load(p)
		if err != nil {
			t.Fatalf("load %s: %v", p, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs
}

// TestRegistryCleanModule pins the fixture module as fully wired: every
// family appears in every surface, so the whole rule set is silent.
func TestRegistryCleanModule(t *testing.T) {
	pkgs := loadModuleAt(t, filepath.Join("testdata", "r13mod"))
	diags := Run(pkgs, AllRules())
	if len(diags) != 0 {
		var lines []string
		for _, d := range diags {
			lines = append(lines, d.String())
		}
		t.Fatalf("clean module should produce no diagnostics, got %d:\n%s",
			len(diags), strings.Join(lines, "\n"))
	}
}

// TestRegistryBrokenModule runs R13 over the half-wired module and
// checks the want: markers plus the reported gaps.
func TestRegistryBrokenModule(t *testing.T) {
	dir := filepath.Join("testdata", "r13modbroken")
	pkgs := loadModuleAt(t, dir)
	diags := Run(pkgs, []*Rule{RuleByID("R13")})
	want := wantDiags(t, filepath.Join(dir, "internal", "accel", "devices.go"))
	compareDiags(t, want, diags)
	if len(diags) == 1 {
		for _, frag := range []string{"Gamma", "SnapshotState/RestoreState", "cmd/tcasim registration"} {
			if !strings.Contains(diags[0].Message, frag) {
				t.Errorf("diagnostic %q missing %q", diags[0].Message, frag)
			}
		}
	}
}

// TestRegistrySurfaceDeletion is the acceptance proof for R13: deleting
// any one integration surface of a wired family makes the rule fire.
// Each scenario copies the clean module to a temp dir, drops the lines
// tagged r13drop:<tag> (or whole files), reloads, and asserts exactly
// one R13 diagnostic naming the family and the missing surface.
func TestRegistrySurfaceDeletion(t *testing.T) {
	scenarios := []struct {
		name      string
		tags      []string // drop lines containing r13drop:<tag>
		dropFiles []string // module-relative files to omit entirely
		family    string
		want      string // substring of the R13 message
	}{
		{
			name:   "snapshot-pair",
			tags:   []string{"alpha-snapshot"},
			family: "Alpha",
			want:   "SnapshotState/RestoreState pair",
		},
		{
			name:   "device-key",
			tags:   []string{"alpha-key"},
			family: "Alpha",
			want:   "canonical DeviceKey",
		},
		{
			name:   "serve-wire-kind",
			tags:   []string{"alpha-serve"},
			family: "Alpha",
			want:   "serve wire kind",
		},
		{
			name:   "tcasim-registration",
			tags:   []string{"alpha-tcasim"},
			family: "Alpha",
			want:   "cmd/tcasim registration",
		},
		{
			// Deleting the constructor orphans its callers too, so the
			// serve and tcasim references go with it; the constructor
			// gap is what the message must name.
			name:   "workload-constructor",
			tags:   []string{"alpha-workload", "alpha-serve", "alpha-tcasim"},
			family: "Alpha",
			want:   "workload constructor",
		},
		{
			name:      "engine-occupancy",
			dropFiles: []string{filepath.Join("internal", "experiments", "sweep.go")},
			family:    "Beta",
			want:      "EngineOccupancy",
		},
	}
	src := filepath.Join("testdata", "r13mod")
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			dir := copyModuleDropping(t, src, sc.tags, sc.dropFiles)
			pkgs := loadModuleAt(t, dir)
			diags := Run(pkgs, []*Rule{RuleByID("R13")})
			if len(diags) != 1 {
				var lines []string
				for _, d := range diags {
					lines = append(lines, d.String())
				}
				t.Fatalf("want exactly 1 R13 diagnostic, got %d:\n%s",
					len(diags), strings.Join(lines, "\n"))
			}
			msg := diags[0].Message
			if !strings.Contains(msg, sc.family) {
				t.Errorf("diagnostic %q does not name family %s", msg, sc.family)
			}
			if !strings.Contains(msg, sc.want) {
				t.Errorf("diagnostic %q does not name the missing surface %q", msg, sc.want)
			}
		})
	}
}

// copyModuleDropping copies the module at src into a temp dir, omitting
// the listed files and any line tagged with one of the r13drop tags.
func copyModuleDropping(t *testing.T, src string, tags, dropFiles []string) string {
	t.Helper()
	dst := t.TempDir()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		if info.IsDir() {
			if rel == "." {
				return nil
			}
			return os.MkdirAll(filepath.Join(dst, rel), 0o755)
		}
		for _, drop := range dropFiles {
			if rel == drop {
				return nil
			}
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		var kept []string
		for _, line := range strings.Split(string(data), "\n") {
			dropLine := false
			for _, tag := range tags {
				if strings.Contains(line, "r13drop:"+tag) {
					dropLine = true
					break
				}
			}
			if !dropLine {
				kept = append(kept, line)
			}
		}
		return os.WriteFile(filepath.Join(dst, rel), []byte(strings.Join(kept, "\n")), 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	return dst
}
