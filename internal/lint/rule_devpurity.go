package lint

// ruleDevPurity (R12) holds every device family's Invoke tree — the
// function the engine calls at the accel-fetch boundary, plus
// everything it statically reaches — to absolute determinism: no
// wall-clock read, no global-rand draw, and no map-iteration order
// flowing to a return value. AccelResult is part of the architectural
// contract (its Value lands in a register, its Schedule drives the
// engine's phased occupancy), so any nondeterminism here corrupts
// simulated state itself, not just an experiment artifact. Unlike R2,
// there is no exempt zone: a device calling into runner/ or serve/
// observability would be a layering bug as well as a purity one.
//
// The diagnostics anchor at the Invoke declaration with the full call
// chain in the message: the device is what the reviewer audits, even
// when the source sits two helpers away.
var ruleDevPurity = &Rule{
	ID:   "R12",
	Name: "device-schedule-purity",
	Doc:  "device Invoke paths must be transitively wallclock- and global-rand-free, and map order must not reach AccelResult values or schedules",
	Applies: func(rel string) bool {
		return rel == "internal/accel"
	},
	Check: checkDevicePurity,
}

func checkDevicePurity(pass *Pass) {
	for _, named := range pass.Idx.familiesIn(pass.Pkg) {
		invoke := deviceInvoke(named)
		fi := pass.Idx.funcOf(invoke)
		if fi == nil {
			continue
		}
		name := named.Obj().Name()
		pos := fi.decl.Name.Pos()
		if fi.sum.wallAny.tainted {
			hops := pass.Idx.taintChain(invoke, func(s *summary) taint { return s.wallAny })
			pass.ReportChain(pos, hops,
				"(%s).Invoke transitively reads the wall clock (%s); device results must be pure functions of the call and memory", name, chainText(invoke, hops))
		}
		if fi.sum.randAny.tainted {
			hops := pass.Idx.taintChain(invoke, func(s *summary) taint { return s.randAny })
			pass.ReportChain(pos, hops,
				"(%s).Invoke transitively draws from the global math/rand generator (%s); device results must be pure functions of the call and memory", name, chainText(invoke, hops))
		}
		if fi.sum.mapRet.tainted {
			hops := pass.Idx.taintChain(invoke, func(s *summary) taint { return s.mapRet })
			pass.ReportChain(pos, hops,
				"(%s).Invoke lets map iteration order reach a return value (%s); AccelResult values and schedules must be order-independent", name, chainText(invoke, hops))
		}
	}
}
