package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	Path  string // full import path, e.g. "repro/internal/sim"
	Rel   string // module-relative path, e.g. "internal/sim" ("" for the root)
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	loader *Loader
}

// Dep returns the analyzed module-internal package at the given import
// path — the package itself, or a dependency that was loaded while
// type-checking it. The coverage rules use it to read declarations that
// live next to the types they audit (exemption manifests on field
// declarations, the erasure writes in Canonical methods). Returns nil
// for unknown and non-module paths; callers must tolerate that.
func (p *Package) Dep(path string) *Package {
	if path == p.Path {
		return p
	}
	if p.loader == nil {
		return nil
	}
	return p.loader.modCache[path]
}

// Loader resolves and type-checks packages of one module entirely from
// source: module-internal imports are parsed from the module tree and
// standard-library imports through go/importer's source compiler, so no
// compiled export data, module cache or network is needed. Test files are
// excluded — the contract the rules enforce is about simulation code, and
// tests legitimately use wall clocks and ad-hoc randomness.
type Loader struct {
	ModuleRoot string
	ModulePath string

	fset *token.FileSet
	std  types.ImporterFrom
	// stdCache holds imported non-module packages; modCache holds fully
	// analyzed module packages. Module packages are checked exactly once —
	// re-checking a path would mint a second types.Package for it and
	// break type identity across dependents.
	stdCache map[string]*types.Package
	modCache map[string]*Package
}

// NewLoader locates the module containing dir (walking up to go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer unavailable")
	}
	return &Loader{
		ModuleRoot: root,
		ModulePath: modPath,
		fset:       fset,
		std:        std,
		stdCache:   map[string]*types.Package{},
		modCache:   map[string]*Package{},
	}, nil
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

func findModule(dir string) (root, modPath string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// Expand resolves package patterns relative to the module root. Supported
// forms are "./...", "./dir/...", "./dir" and bare module-relative paths;
// "..." walks directories, skipping testdata, hidden and underscore
// entries. The result is sorted and deduplicated.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	add := func(rel string) {
		path := l.ModulePath
		if rel != "" && rel != "." {
			path += "/" + filepath.ToSlash(rel)
		}
		if !seen[path] {
			seen[path] = true
			out = append(out, path)
		}
	}
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			base := filepath.Join(l.ModuleRoot, filepath.FromSlash(strings.TrimSuffix(rest, "/")))
			err := filepath.Walk(base, func(p string, fi os.FileInfo, err error) error {
				if err != nil {
					return err
				}
				if !fi.IsDir() {
					return nil
				}
				name := fi.Name()
				if p != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if hasGoFiles(p) {
					rel, err := filepath.Rel(l.ModuleRoot, p)
					if err != nil {
						return err
					}
					add(rel)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		if strings.HasPrefix(pat, l.ModulePath) {
			pat = strings.TrimPrefix(strings.TrimPrefix(pat, l.ModulePath), "/")
		}
		add(pat)
	}
	sort.Strings(out)
	return out, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if goSource(e.Name()) {
			return true
		}
	}
	return false
}

func goSource(name string) bool {
	return strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go")
}

// Load parses and type-checks the package at the given import path,
// returning a cached result if the path was already loaded (as a target or
// as a dependency of one).
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.modCache[path]; ok {
		return p, nil
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
	dir := filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", path, err)
	}
	var names []string
	for _, e := range ents {
		if goSource(e.Name()) {
			names = append(names, filepath.Join(dir, e.Name()))
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	pkg, err := l.LoadFiles(path, names)
	if err != nil {
		return nil, err
	}
	l.modCache[path] = pkg
	return pkg, nil
}

// LoadFiles type-checks an explicit file list under the given import path.
// Fixture tests use it to place testdata files at chosen module-relative
// paths so path-scoped rules fire.
func (l *Loader) LoadFiles(path string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Uses:  map[*ast.Ident]types.Object{},
		Defs:  map[*ast.Ident]types.Object{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, typeErrs[0])
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
	return &Package{
		Path:   path,
		Rel:    rel,
		Dir:    filepath.Dir(filenames[0]),
		Fset:   l.fset,
		Files:  files,
		Types:  tpkg,
		Info:   info,
		loader: l,
	}, nil
}

// Import implements types.Importer for dependencies of checked packages.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom routes module-internal imports to the source tree and
// everything else to the standard-library source importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path != l.ModulePath && !strings.HasPrefix(path, l.ModulePath+"/") {
		if p, ok := l.stdCache[path]; ok {
			return p, nil
		}
		p, err := l.std.ImportFrom(path, dir, 0)
		if err != nil {
			return nil, err
		}
		l.stdCache[path] = p
		return p, nil
	}
	pkg, err := l.Load(path)
	if err != nil {
		return nil, err
	}
	return pkg.Types, nil
}
