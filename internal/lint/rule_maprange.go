package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ruleMapRange (R3) flags `range` loops over maps whose bodies do
// order-sensitive work — the classic way Go map iteration order leaks into
// simulator output and breaks bit-identical sweeps. The analysis is
// necessarily heuristic; LINT.md spells out exactly what counts:
//
//   - appending values derived from the loop variables into state declared
//     outside the loop, unless the collecting slice is handed to sort/slices
//     later in the same block (the sanctioned collect-then-sort idiom);
//   - writing output (fmt.Fprint*/Print*, Write* methods) with loop-derived
//     arguments;
//   - selecting into an outer scalar (`best = k`) or accumulating a float
//     or string (`sum += v`) from the loop variables — integer accumulation
//     commutes, float addition does not;
//   - returning a loop-derived value ("pick an arbitrary element").
//
// Keyed writes (`other[k] = v`) commute across iterations and are allowed.
// Genuinely order-independent sites (set fixpoints, unique-key argmin) keep
// a //lint:ignore R3 with the proof obligation written in the reason.
var ruleMapRange = &Rule{
	ID:    "R3",
	Name:  "ordered-map-iteration",
	Doc:   "map iteration order must not reach slices, output, scalar selections or float accumulators without sorting",
	Check: checkMapRange,
}

func checkMapRange(pass *Pass) {
	pass.eachFile(func(f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			block, ok := n.(*ast.BlockStmt)
			if !ok {
				return true
			}
			for i, st := range block.List {
				if ls, ok := st.(*ast.LabeledStmt); ok {
					st = ls.Stmt
				}
				rs, ok := st.(*ast.RangeStmt)
				if !ok || !rangesOverMap(pass, rs) {
					continue
				}
				checkOneMapRange(pass, rs, block.List[i+1:])
			}
			return true
		})
	})
}

func rangesOverMap(pass *Pass, rs *ast.RangeStmt) bool {
	return rangesOverMapPkg(pass.Pkg, rs)
}

// rangesOverMapPkg is rangesOverMap without a Pass, for the tier-3 index.
func rangesOverMapPkg(pkg *Package, rs *ast.RangeStmt) bool {
	tv, ok := pkg.Info.Types[rs.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// collectCandidate is an append into an outer slice that may be excused by
// a later sort.
type collectCandidate struct {
	obj types.Object
	pos token.Pos
}

func checkOneMapRange(pass *Pass, rs *ast.RangeStmt, following []ast.Stmt) {
	loopVars := map[types.Object]bool{}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.Pkg.Info.Defs[id]; obj != nil {
				loopVars[obj] = true
			} else if obj := pass.Pkg.Info.Uses[id]; obj != nil {
				loopVars[obj] = true
			}
		}
	}

	var candidates []collectCandidate

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if st.Tok == token.DEFINE {
				return true
			}
			for i, lhs := range st.Lhs {
				var rhs ast.Expr
				if i < len(st.Rhs) {
					rhs = st.Rhs[i]
				}
				checkMapRangeAssign(pass, rs, st.Tok, lhs, rhs, loopVars, &candidates)
			}
		case *ast.CallExpr:
			checkMapRangeCall(pass, st, loopVars)
		case *ast.ReturnStmt:
			for _, res := range st.Results {
				if refsAnyObject(pass, res, loopVars) {
					pass.Reportf(res.Pos(),
						"returns a value picked by map iteration order; iterate sorted keys or make the result order-independent")
					break
				}
			}
		}
		return true
	})

	// Excuse collect-then-sort: the appended-to slice is passed to a
	// sort or slices call later in the same block.
	sorted := map[types.Object]bool{}
	for _, st := range following {
		ast.Inspect(st, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if _, ok := pkgFuncCall(pass, call, "sort", "slices"); !ok {
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(a ast.Node) bool {
					if id, ok := a.(*ast.Ident); ok {
						if obj := pass.Pkg.Info.Uses[id]; obj != nil {
							sorted[obj] = true
						}
					}
					return true
				})
			}
			return true
		})
	}
	for _, c := range candidates {
		if !sorted[c.obj] {
			pass.Reportf(c.pos,
				"appends %s in map iteration order; sort %s afterwards or iterate sorted keys", c.obj.Name(), c.obj.Name())
		}
	}
}

func checkMapRangeAssign(pass *Pass, rs *ast.RangeStmt, tok token.Token, lhs, rhs ast.Expr, loopVars map[types.Object]bool, candidates *[]collectCandidate) {
	if call, ok := rhs.(*ast.CallExpr); ok && isBuiltinAppend(pass, call) {
		if !refsAnyObject(pass, call, loopVars) {
			return
		}
		if obj := outerScalarTarget(pass, rs, lhs); obj != nil {
			if _, isIdent := lhs.(*ast.Ident); isIdent {
				*candidates = append(*candidates, collectCandidate{obj: obj, pos: lhs.Pos()})
				return
			}
		}
		if isKeyedWrite(pass, lhs, loopVars) || outerScalarTarget(pass, rs, lhs) != nil {
			pass.Reportf(lhs.Pos(),
				"appends in map iteration order into %s; collect keys into a slice and sort first", exprString(lhs))
		}
		return
	}

	obj := outerScalarTarget(pass, rs, lhs)
	if obj == nil || isKeyedWrite(pass, lhs, loopVars) {
		return
	}
	switch {
	case tok == token.ASSIGN:
		if refsAnyObject(pass, rhs, loopVars) {
			pass.Reportf(lhs.Pos(),
				"assigns a loop-dependent value to %s: selection by map iteration order; iterate sorted keys", exprString(lhs))
		}
	default: // compound: +=, -=, *=, ...
		if !refsAnyObject(pass, rhs, loopVars) {
			return
		}
		if t := pass.Pkg.Info.Types[lhs].Type; t != nil {
			if b, ok := t.Underlying().(*types.Basic); ok &&
				(b.Info()&types.IsFloat != 0 || b.Info()&types.IsString != 0 || b.Info()&types.IsComplex != 0) {
				pass.Reportf(lhs.Pos(),
					"accumulates %s over a map in iteration order; float/string reduction does not commute — iterate sorted keys", exprString(lhs))
			}
		}
	}
}

// checkMapRangeCall flags output written in iteration order.
func checkMapRangeCall(pass *Pass, call *ast.CallExpr, loopVars map[types.Object]bool) {
	if !refsAnyObject(pass, call, loopVars) {
		return
	}
	if name, ok := pkgFuncCall(pass, call, "fmt"); ok {
		if strings.HasPrefix(name, "Fprint") || strings.HasPrefix(name, "Print") {
			pass.Reportf(call.Pos(),
				"fmt.%s emits output in map iteration order; iterate sorted keys", name)
		}
		return
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if _, isPkg := pass.Pkg.Info.Uses[rootIdent(sel.X)].(*types.PkgName); !isPkg || rootIdent(sel.X) == nil {
			if strings.HasPrefix(sel.Sel.Name, "Write") {
				pass.Reportf(call.Pos(),
					"%s.%s writes in map iteration order; iterate sorted keys", exprString(sel.X), sel.Sel.Name)
			}
		}
	}
}

func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := pass.Pkg.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// outerScalarTarget resolves an assignment target (ident or selector/index
// chain) to its root object when that object is declared outside the range
// body; nil otherwise.
func outerScalarTarget(pass *Pass, rs *ast.RangeStmt, lhs ast.Expr) types.Object {
	id := rootIdent(lhs)
	if id == nil {
		return nil
	}
	obj := pass.Pkg.Info.Uses[id]
	if obj == nil {
		obj = pass.Pkg.Info.Defs[id]
	}
	if obj == nil {
		return nil
	}
	if obj.Pos() >= rs.Body.Pos() && obj.Pos() < rs.Body.End() {
		return nil // loop-local temporary
	}
	return obj
}

// isKeyedWrite reports whether lhs is an index expression whose index is
// derived from the loop variables — `other[k] = v` commutes and is fine.
func isKeyedWrite(pass *Pass, lhs ast.Expr, loopVars map[types.Object]bool) bool {
	ix, ok := lhs.(*ast.IndexExpr)
	return ok && refsAnyObject(pass, ix.Index, loopVars)
}

// rootIdent walks selector/index/paren/star chains to the base identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// exprString renders small expressions for messages.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	case *ast.ParenExpr:
		return exprString(x.X)
	default:
		return "expression"
	}
}
