package lint

import "go/ast"

// seededConstructors are the math/rand package-level functions that do not
// touch the global generator: they build or parameterize explicitly seeded
// sources, which is exactly what the contract demands.
var seededConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	// math/rand/v2 constructors.
	"NewPCG":     true,
	"NewChaCha8": true,
}

// ruleGlobalRand (R1) forbids the process-global math/rand generator in
// simulation, workload-generation and experiment code. The global source is
// shared mutable state: two sweep jobs drawing from it interleave
// nondeterministically under the parallel runner, so every random stream
// must come from an explicitly seeded *rand.Rand.
//
// Interprocedural (tier 3): a call from in-scope code to any module
// function that transitively reaches the global generator is flagged at
// the call site, with the call chain in the message — one level of
// helper indirection must not launder a global draw past the audit.
var ruleGlobalRand = &Rule{
	ID:   "R1",
	Name: "no-global-rand",
	Doc:  "randomness in sim/workload/experiment code must flow through a seeded *rand.Rand, never the global math/rand functions (directly or through any call chain)",
	Applies: func(rel string) bool {
		return underAny(rel, "internal/sim", "internal/workload", "internal/proggen", "internal/experiments")
	},
	Check: func(pass *Pass) {
		pass.eachFile(func(f *ast.File) {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				name, ok := pkgFuncCall(pass, call, "math/rand", "math/rand/v2")
				if ok && !seededConstructors[name] {
					pass.Reportf(call.Pos(),
						"rand.%s draws from the process-global generator; route randomness through a seeded *rand.Rand", name)
					return true
				}
				if callee := staticCallee(pass.Pkg, call); callee != nil {
					if fi := pass.Idx.funcOf(callee); fi != nil && fi.sum.randAny.tainted {
						hops := pass.Idx.taintChain(callee, func(s *summary) taint { return s.randAny })
						pass.ReportChain(call.Pos(), hops,
							"call transitively draws from the process-global generator (%s); thread a seeded *rand.Rand through the chain",
							chainText(callee, hops))
					}
				}
				return true
			})
		})
	},
}
