package lint

import "go/ast"

// seededConstructors are the math/rand package-level functions that do not
// touch the global generator: they build or parameterize explicitly seeded
// sources, which is exactly what the contract demands.
var seededConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	// math/rand/v2 constructors.
	"NewPCG":     true,
	"NewChaCha8": true,
}

// ruleGlobalRand (R1) forbids the process-global math/rand generator in
// simulation, workload-generation and experiment code. The global source is
// shared mutable state: two sweep jobs drawing from it interleave
// nondeterministically under the parallel runner, so every random stream
// must come from an explicitly seeded *rand.Rand.
var ruleGlobalRand = &Rule{
	ID:   "R1",
	Name: "no-global-rand",
	Doc:  "randomness in sim/workload/experiment code must flow through a seeded *rand.Rand, never the global math/rand functions",
	Applies: func(rel string) bool {
		return underAny(rel, "internal/sim", "internal/workload", "internal/proggen", "internal/experiments")
	},
	Check: func(pass *Pass) {
		pass.eachFile(func(f *ast.File) {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				name, ok := pkgFuncCall(pass, call, "math/rand", "math/rand/v2")
				if ok && !seededConstructors[name] {
					pass.Reportf(call.Pos(),
						"rand.%s draws from the process-global generator; route randomness through a seeded *rand.Rand", name)
				}
				return true
			})
		})
	},
}
