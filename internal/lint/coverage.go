package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the struct-field coverage engine behind R8 and R9: given
// a set of root struct types and a set of "consumer" functions, it
// proves that every exported field — of the roots and of every
// module-internal struct type reachable from them — is read by at least
// one consumer, erased by a Canonical method, or named in an explicit
// exemption manifest. A field that is none of the three is exactly the
// failure the scenario layer cannot see at runtime: a config field that
// never reaches the digest encoder silently aliases two different runs
// to one cached result, and a Stats field that never reaches a clone or
// an emitter silently leaks or disappears.
//
// The exemption manifest is a source-level directive placed next to the
// field (or anywhere in the consumer package):
//
//	//lint:exempt-field R8 Program.Labels diagnostics only, never executed
//
// The rule ID scopes the exemption, the [pkg.]Type.Field token names the
// field, and the reason is mandatory — like //lint:ignore, a directive
// without a reason is reported as R0 and exempts nothing.

// exemptField is one parsed //lint:exempt-field directive.
type exemptField struct {
	Rule   string
	Type   string // "Type" or "pkg.Type"
	Field  string
	Reason string
}

// parseExemptField parses `//lint:exempt-field RULE [pkg.]Type.Field
// reason`. ok is false when any part (including the reason) is missing.
func parseExemptField(text string) (exemptField, bool) {
	fields := strings.Fields(strings.TrimPrefix(text, exemptPrefix))
	if len(fields) < 3 {
		return exemptField{}, false
	}
	sel := fields[1]
	dot := strings.LastIndex(sel, ".")
	if dot <= 0 || dot == len(sel)-1 {
		return exemptField{}, false
	}
	return exemptField{
		Rule:   fields[0],
		Type:   sel[:dot],
		Field:  sel[dot+1:],
		Reason: strings.Join(fields[2:], " "),
	}, true
}

// coverType is one struct type under audit.
type coverType struct {
	named *types.Named
	str   *types.Struct
}

// display renders the type as pkgbase.Name, the form diagnostics and
// exemption directives use.
func (ct *coverType) display() string {
	obj := ct.named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return pkgBase(obj.Pkg().Path()) + "." + obj.Name()
}

func pkgBase(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// coverage accumulates field facts for one consumer set.
type coverage struct {
	pass *Pass
	// types maps the named type to its audit record, in insertion
	// (breadth-first discovery) order via order.
	types map[*types.Named]*coverType
	order []*types.Named
	// reads, erased, exempt are keyed "pkgbase.Type.Field".
	reads  map[string]bool
	erased map[string]bool
	exempt map[string]string // key -> reason
}

func newCoverage(pass *Pass) *coverage {
	return &coverage{
		pass:   pass,
		types:  map[*types.Named]*coverType{},
		reads:  map[string]bool{},
		erased: map[string]bool{},
		exempt: map[string]string{},
	}
}

func fieldKey(ct *coverType, field string) string {
	return ct.display() + "." + field
}

// isExempt honors both the qualified (pkg.Type.Field) and unqualified
// (Type.Field) manifest spellings.
func (c *coverage) isExempt(ct *coverType, field string) bool {
	if _, ok := c.exempt[fieldKey(ct, field)]; ok {
		return true
	}
	_, ok := c.exempt[ct.named.Obj().Name()+"."+field]
	return ok
}

// moduleInternal reports whether the type's defining package belongs to
// the analyzed module tree. Matching on the "internal/" spine keeps the
// check independent of the module name, which fixture packages remap.
func moduleInternal(named *types.Named) bool {
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && strings.Contains(obj.Pkg().Path()+"/", "/internal/")
}

// addRoots seeds the closure and walks it breadth-first: every
// module-internal named struct type reachable through fields (possibly
// behind pointers, slices, arrays or map values) joins the audit set.
// descend filters which fields are followed — the emit check, for
// example, must not descend into a field exempted from emission.
func (c *coverage) addRoots(roots []*types.Named, descend func(ct *coverType, field *types.Var) bool) {
	queue := append([]*types.Named(nil), roots...)
	for len(queue) > 0 {
		named := queue[0]
		queue = queue[1:]
		if named == nil || c.types[named] != nil || !moduleInternal(named) {
			continue
		}
		str, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		ct := &coverType{named: named, str: str}
		c.types[named] = ct
		c.order = append(c.order, named)
		for i := 0; i < str.NumFields(); i++ {
			f := str.Field(i)
			if descend != nil && !descend(ct, f) {
				continue
			}
			if next := structElem(f.Type()); next != nil {
				queue = append(queue, next)
			}
		}
	}
}

// structElem unwraps pointers, slices, arrays and map values down to a
// named struct type, or nil.
func structElem(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		case *types.Map:
			t = u.Elem()
		case *types.Named:
			if _, ok := u.Underlying().(*types.Struct); ok {
				return u
			}
			return nil
		default:
			return nil
		}
	}
}

// namedOf strips pointers and aliases down to the named type of t.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// recordReads walks a consumer body and marks every selector x.F where x
// has one of the audited types. Selector chains are walked in full, so
// c.Memory.DRAM.Latency covers Config.Memory, HierarchyConfig.DRAM and
// DRAMConfig.Latency at once.
func (c *coverage) recordReads(body ast.Node) {
	if body == nil {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		tv, ok := c.pass.Pkg.Info.Types[sel.X]
		if !ok {
			return true
		}
		if named := namedOf(tv.Type); named != nil {
			if ct := c.types[named]; ct != nil {
				c.reads[fieldKey(ct, sel.Sel.Name)] = true
			}
		}
		return true
	})
}

// collectExemptions scans the given packages' comments for well-formed
// //lint:exempt-field directives carrying the given rule ID. Malformed
// directives are R0's business (see suppressions).
func (c *coverage) collectExemptions(ruleID string, pkgs []*Package) {
	for _, pkg := range pkgs {
		if pkg == nil {
			continue
		}
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, cm := range cg.List {
					if !strings.HasPrefix(cm.Text, exemptPrefix) {
						continue
					}
					ex, ok := parseExemptField(cm.Text)
					if !ok || ex.Rule != ruleID {
						continue
					}
					c.exempt[ex.Type+"."+ex.Field] = ex.Reason
				}
			}
		}
	}
}

// definingPackages returns the analyzed packages that define the audited
// types (deduplicated, nil-free), via the loader's dependency cache.
func (c *coverage) definingPackages() []*Package {
	seen := map[string]bool{}
	var out []*Package
	for _, named := range c.order {
		pkg := named.Obj().Pkg()
		if pkg == nil || seen[pkg.Path()] {
			continue
		}
		seen[pkg.Path()] = true
		if p := c.pass.Pkg.Dep(pkg.Path()); p != nil {
			out = append(out, p)
		}
	}
	return out
}

// collectErasures reads the documented erasure list off Canonical
// methods: an assignment inside a method named Canonical that sets a
// field of an audited type to a zero literal ("" / 0 / false / nil)
// declares the field semantically inert, so the digest encoder is right
// to skip it. Normalizations (c.Predictor = c.Predictor.Canonical(), or
// conditional defaults like p.Kind = "gshare") assign non-zero values
// and do not count — a normalized field still has to be encoded.
func (c *coverage) collectErasures() {
	for _, pkg := range c.definingPackages() {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Name.Name != "Canonical" || fd.Recv == nil || fd.Body == nil {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					as, ok := n.(*ast.AssignStmt)
					if !ok || len(as.Lhs) != len(as.Rhs) {
						return true
					}
					for i, lhs := range as.Lhs {
						if !zeroLiteral(as.Rhs[i]) {
							continue
						}
						sel, ok := lhs.(*ast.SelectorExpr)
						if !ok {
							continue
						}
						tv, ok := pkg.Info.Types[sel.X]
						if !ok {
							continue
						}
						if named := namedOf(tv.Type); named != nil {
							if ct := c.types[named]; ct != nil {
								c.erased[fieldKey(ct, sel.Sel.Name)] = true
							}
						}
					}
					return true
				})
			}
		}
	}
}

// zeroLiteral reports whether e spells a zero value: "", 0, 0.0, false
// or nil.
func zeroLiteral(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.BasicLit:
		switch x.Value {
		case `""`, "``", "0", "0.0", "0x0":
			return true
		}
	case *ast.Ident:
		return x.Name == "false" || x.Name == "nil"
	}
	return false
}

// missingFields returns, for one audited type, its exported fields that
// no consumer read and no erasure or exemption excuses, in declaration
// order. skip filters additional fields (e.g. ones another check already
// reported).
func (c *coverage) missingFields(ct *coverType, skip func(f *types.Var) bool) []string {
	var missing []string
	for i := 0; i < ct.str.NumFields(); i++ {
		f := ct.str.Field(i)
		if !f.Exported() {
			continue
		}
		if skip != nil && skip(f) {
			continue
		}
		key := fieldKey(ct, f.Name())
		if c.reads[key] || c.erased[key] || c.isExempt(ct, f.Name()) {
			continue
		}
		missing = append(missing, f.Name())
	}
	return missing
}

// orderedTypes returns the audit set sorted by display name for
// deterministic reporting (discovery order depends on field order, which
// is fine, but name order reads better in multi-type reports).
func (c *coverage) orderedTypes() []*coverType {
	out := make([]*coverType, 0, len(c.order))
	for _, named := range c.order {
		out = append(out, c.types[named])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].display() < out[j].display() })
	return out
}

// bearsReference reports whether t transitively contains a slice, map or
// pointer — i.e. whether a plain value copy of a field of this type
// aliases storage with the original. Named struct types recurse;
// everything else answers directly. seen guards recursive types.
func bearsReference(t types.Type) bool {
	return bearsRef(t, map[types.Type]bool{})
}

func bearsRef(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Map, *types.Pointer, *types.Chan:
		return true
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if bearsRef(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return bearsRef(u.Elem(), seen)
	}
	return false
}

// serializable reports whether a field of this type survives the disk
// store's JSON round trip: funcs and chans marshal as null or fail
// outright, so a cached result would silently drop them.
func serializable(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Signature, *types.Chan:
		return false
	}
	return true
}

// pos of a field's declaration, for positioning serializability
// diagnostics at the offending line.
func fieldPos(f *types.Var) token.Pos { return f.Pos() }
