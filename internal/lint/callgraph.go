package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// This file is the tier-3 call-graph engine: it indexes every function
// declared in the analyzed module slice, resolves static call edges
// between them, and condenses the graph into strongly connected
// components so function summaries (summary.go) can be computed
// bottom-up — callees before callers, cycles as a fixpoint. The graph
// is deliberately static and may-miss: interface calls and function
// values resolve to no edge, which makes the transitive rules (R1/R2
// interprocedural, R12) under-approximate through dynamic dispatch but
// never chase edges that cannot exist. The intra-procedural tiers keep
// covering the direct sites either way.

// Index is the module-wide call-graph + summary index, built once per
// Run over the analysis universe: the target packages plus every
// module-internal package reachable from them through imports.
type Index struct {
	pkgs  []*Package
	byRel map[string]*Package
	funcs map[*types.Func]*funcInfo
	order []*funcInfo // deterministic: sorted packages, file order, decl order

	// familySet holds every exported struct type declared in an
	// "internal/accel" package that implements the device contract
	// (Invoke(AccelCall, WordReader) AccelResult). R12/R13 audit these.
	familySet map[*types.Named]bool
}

// funcInfo is one declared function with a body: its static call edges
// and the bottom-up summary the rules consume.
type funcInfo struct {
	fn    *types.Func
	decl  *ast.FuncDecl
	pkg   *Package
	calls []callEdge
	sum   summary
}

// callEdge is one statically resolved call site.
type callEdge struct {
	callee *types.Func
	pos    token.Pos
}

// buildIndex constructs the tier-3 index for the given target packages.
func buildIndex(targets []*Package) *Index {
	ix := &Index{
		byRel:     map[string]*Package{},
		funcs:     map[*types.Func]*funcInfo{},
		familySet: map[*types.Named]bool{},
	}

	// Analysis universe: targets plus transitively imported module
	// packages. Walking imports (rather than dumping the loader cache)
	// keeps fixture runs self-contained: a fixture package only drags
	// in what it actually imports.
	seen := map[string]bool{}
	queue := append([]*Package{}, targets...)
	for len(queue) > 0 {
		pkg := queue[0]
		queue = queue[1:]
		if pkg == nil || seen[pkg.Path] {
			continue
		}
		seen[pkg.Path] = true
		ix.pkgs = append(ix.pkgs, pkg)
		for _, f := range pkg.Files {
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if dep := pkg.Dep(path); dep != nil && !seen[dep.Path] {
					queue = append(queue, dep)
				}
			}
		}
	}
	sort.Slice(ix.pkgs, func(i, j int) bool { return ix.pkgs[i].Path < ix.pkgs[j].Path })
	for _, pkg := range ix.pkgs {
		ix.byRel[pkg.Rel] = pkg
	}

	// Device families must be known before the summary walk so family
	// references can be attributed.
	for _, pkg := range ix.pkgs {
		if pkg.Rel != "internal/accel" {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || !tn.Exported() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, ok := named.Underlying().(*types.Struct); !ok {
				continue
			}
			if deviceInvoke(named) != nil {
				ix.familySet[named] = true
			}
		}
	}

	// Function declarations, in deterministic order.
	for _, pkg := range ix.pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &funcInfo{fn: fn, decl: fd, pkg: pkg}
				ix.funcs[fn] = fi
				ix.order = append(ix.order, fi)
			}
		}
	}

	// Intra-procedural facts and call edges, then bottom-up closure.
	supOf := map[*Package]suppressionSet{}
	for _, fi := range ix.order {
		sup, ok := supOf[fi.pkg]
		if !ok {
			sup, _ = suppressions(fi.pkg)
			supOf[fi.pkg] = sup
		}
		ix.walkFunc(fi, sup)
	}
	ix.propagate()
	return ix
}

// funcOf returns the index entry for a resolved function, or nil when
// the function is outside the analyzed module slice (or bodiless).
func (ix *Index) funcOf(fn *types.Func) *funcInfo {
	if ix == nil || fn == nil {
		return nil
	}
	return ix.funcs[fn]
}

// familiesIn returns the device families declared in pkg, sorted by
// type name for deterministic rule output.
func (ix *Index) familiesIn(pkg *Package) []*types.Named {
	var out []*types.Named
	for named := range ix.familySet {
		if named.Obj().Pkg() == pkg.Types {
			out = append(out, named)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Obj().Name() < out[j].Obj().Name() })
	return out
}

// funcsIn returns the indexed functions declared in pkg, in index order.
func (ix *Index) funcsIn(pkg *Package) []*funcInfo {
	var out []*funcInfo
	for _, fi := range ix.order {
		if fi.pkg == pkg {
			out = append(out, fi)
		}
	}
	return out
}

// deviceInvoke returns the named type's Invoke method when it has the
// device shape — Invoke(isa.AccelCall, isa.WordReader) isa.AccelResult —
// and nil otherwise. Matching the isa package by path suffix keeps the
// check independent of the module name, which fixture modules remap.
func deviceInvoke(named *types.Named) *types.Func {
	obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, named.Obj().Pkg(), "Invoke")
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 2 || sig.Results().Len() != 1 {
		return nil
	}
	res, ok := sig.Results().At(0).Type().(*types.Named)
	if !ok {
		return nil
	}
	robj := res.Obj()
	if robj.Name() != "AccelResult" || robj.Pkg() == nil || !pathHasSuffix(robj.Pkg().Path(), "internal/isa") {
		return nil
	}
	return fn
}

// staticCallee resolves a call expression to the *types.Func it
// statically invokes: a package-level function, a method on a concrete
// receiver, or a generic instantiation of either. Interface method
// calls and calls through function values return nil — the graph keeps
// no edge for dynamic dispatch.
func staticCallee(pkg *Package, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	switch x := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(x.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(x.X)
	}
	var id *ast.Ident
	switch x := fun.(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return nil
	}
	fn, _ := pkg.Info.Uses[id].(*types.Func)
	if fn == nil {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if _, isIface := sig.Recv().Type().Underlying().(*types.Interface); isIface {
			return nil
		}
	}
	return fn
}

// funcDisplay renders a function the way diagnostics name it:
// pkgbase.Func or pkgbase.Type.Func for methods.
func funcDisplay(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil {
		name = pkgBase(fn.Pkg().Path()) + "." + name
	}
	return name
}

func pathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// sccs returns the strongly connected components of the call graph in
// reverse-topological emission order: every component is emitted after
// all components it calls into, which is exactly the order bottom-up
// summary propagation needs. Standard Tarjan over the deterministic
// node order.
func (ix *Index) sccs() [][]*funcInfo {
	index := map[*funcInfo]int{}
	low := map[*funcInfo]int{}
	onStack := map[*funcInfo]bool{}
	var stack []*funcInfo
	var out [][]*funcInfo
	next := 0

	var strong func(v *funcInfo)
	strong = func(v *funcInfo) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, e := range v.calls {
			w := ix.funcs[e.callee]
			if w == nil {
				continue
			}
			if _, visited := index[w]; !visited {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []*funcInfo
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			out = append(out, scc)
		}
	}
	for _, fi := range ix.order {
		if _, visited := index[fi]; !visited {
			strong(fi)
		}
	}
	return out
}
