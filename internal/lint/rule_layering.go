package lint

import (
	"go/ast"
	"strconv"
	"strings"
)

// predictionStack lists the simulation-free analytical tier: packages
// that predict performance from program structure and closed-form
// models alone. DESIGN.md's "Analytical fast-path tier" section
// documents the contract; keeping these packages free of simulator
// imports is what lets a static prediction rank thousands of configs in
// the time one cycle-accurate run takes, and keeps the two tiers
// honestly comparable (the static tier cannot quietly call the
// simulator it is validated against).
var predictionStack = []string{
	"internal/staticmodel",
	"internal/interval",
	"internal/core",
}

// simulationTier lists the cycle-accurate side: the core simulator and
// its structural-detail dependencies.
var simulationTier = []string{
	"internal/sim",
	"internal/mem",
	"internal/bpred",
}

// ruleLayering (R11) forbids the prediction stack from importing the
// simulation tier. The sanctioned crossing direction is the reverse:
// internal/experiments adapts sim.Config and simulator stats into the
// prediction stack's own types (StaticMachine, interval.AccelEvent).
var ruleLayering = &Rule{
	ID:   "R11",
	Name: "prediction-stack-layering",
	Doc:  "the analytical tier (staticmodel, interval, core) must not import the simulator (sim, mem, bpred)",
	Applies: func(rel string) bool {
		return underAny(rel, predictionStack...)
	},
	Check: func(pass *Pass) {
		pass.eachFile(func(f *ast.File) {
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if banned, ok := simTierImport(path); ok {
					pass.Reportf(imp.Path.Pos(),
						"prediction-stack package imports simulator package %s; adapt via internal/experiments instead", banned)
				}
			}
		})
	},
}

// simTierImport reports whether an import path names a simulation-tier
// package (or a subpackage of one), returning the matched tier root.
// Matching is by module-relative segment so fixture packages, which the
// loader poses under synthetic paths, resolve identically to real ones.
func simTierImport(path string) (string, bool) {
	for _, root := range simulationTier {
		if path == root || strings.HasSuffix(path, "/"+root) ||
			strings.Contains(path, "/"+root+"/") || strings.HasPrefix(path, root+"/") {
			return root, true
		}
	}
	return "", false
}
