package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file computes the per-function summaries of the tier-3 engine:
// one intra-procedural walk per declared function, then a bottom-up
// closure over the SCC condensation (callgraph.go). Each summary
// answers the questions the interprocedural rules ask — "does calling
// this reach a wall clock / the global rand / a map-order-dependent
// return", "which device families does it construct", "which of its
// parameters escape into function literals" — with enough provenance
// (taint witnesses) to print the offending call chain in a diagnostic.

// taint is one transitive boolean fact with a witness: either a direct
// source in the function's own body (what/pos), or the call edge it
// arrived through (via/viaPos). Witnesses chain: following via from
// summary to summary reconstructs caller → ... → source.
type taint struct {
	tainted bool
	what    string      // direct source, e.g. "time.Now" — set iff via is nil
	pos     token.Pos   // direct source position
	via     *types.Func // callee the taint arrived through
	viaPos  token.Pos   // call site of that callee
}

// summary is the bottom-up fact set for one function.
type summary struct {
	// wallAny: transitively reaches time.Now/Since/Until anywhere.
	// R12 uses it — device purity is absolute, no package is excused.
	wallAny taint
	// wallStrict: like wallAny, but functions declared in the packages
	// R2 exempts (internal/runner, internal/serve, cmd/) contribute
	// nothing: their wall-clock reads are sanctioned observability, so
	// calling into them must not taint simulation code.
	wallStrict taint
	// randAny: transitively draws from the global math/rand generator.
	randAny taint
	// mapRet: transitively lets map-iteration order flow to a return
	// value (the R3 "returns a loop-derived value" shape).
	mapRet taint

	// escaping maps parameter index (receiver = -1) to the position
	// where the parameter is first referenced inside a function
	// literal — the R14 "stored in a returned closure" fact.
	escaping map[int]token.Pos

	// families are the device families (Index.familySet) whose type or
	// constructor the function transitively references. R13's
	// integration surfaces are defined in terms of this reachability.
	families map[*types.Named]bool
	// refsAccelPhase: transitively references isa.AccelPhase — the
	// marker that a device family is an engine family (builds phased
	// schedules) rather than a scalar-latency device.
	refsAccelPhase bool
	// refsDeviceKey: transitively writes or constructs a DeviceKey
	// field — the canonical-identity surface of R13.
	refsDeviceKey bool
	// callsEngineOccupancy: transitively calls staticmodel's
	// Machine.EngineOccupancy — the analytical-model surface of R13.
	callsEngineOccupancy bool
}

// wallExemptPkg mirrors R2's Applies scope: packages whose wall-clock
// reads are sanctioned and must not leak taint to callers.
func wallExemptPkg(rel string) bool {
	return underAny(rel, "internal/runner", "internal/serve", "cmd")
}

// walkFunc computes fi's intra-procedural facts and call edges in one
// pass over the body. Function literals are walked as part of the
// enclosing declaration: a closure's wall-clock read or family
// reference belongs to the function that builds the closure.
//
// Suppression-aware seeding: a direct source carrying a well-formed
// //lint:ignore for the matching intra rule (R1/R2/R3) does not seed
// taint — the suppression's written proof covers transitive use, and
// seeding anyway would make every caller un-fixably diagnosed.
func (ix *Index) walkFunc(fi *funcInfo, sup suppressionSet) {
	pkg := fi.pkg
	s := &fi.sum
	s.escaping = map[int]token.Pos{}
	s.families = map[*types.Named]bool{}

	params := paramObjects(pkg, fi.decl)
	suppressed := func(rule string, p token.Pos) bool {
		return sup.covers(rule, pkg.Fset.Position(p))
	}

	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if callee := staticCallee(pkg, x); callee != nil {
				fi.calls = append(fi.calls, callEdge{callee: callee, pos: x.Pos()})
				if callee.Name() == "EngineOccupancy" && callee.Pkg() != nil &&
					pathHasSuffix(callee.Pkg().Path(), "internal/staticmodel") {
					s.callsEngineOccupancy = true
				}
			}
			if name, ok := pkgCallName(pkg, x, "math/rand", "math/rand/v2"); ok &&
				!seededConstructors[name] && !s.randAny.tainted && !suppressed("R1", x.Pos()) {
				s.randAny = taint{tainted: true, what: "rand." + name, pos: x.Pos()}
			}
			if name, ok := pkgCallName(pkg, x, "time"); ok && wallClockFuncs[name] &&
				!suppressed("R2", x.Pos()) {
				t := taint{tainted: true, what: "time." + name, pos: x.Pos()}
				if !s.wallAny.tainted {
					s.wallAny = t
				}
				if !s.wallStrict.tainted && !wallExemptPkg(pkg.Rel) {
					s.wallStrict = t
				}
			}
		case *ast.Ident:
			switch o := pkg.Info.Uses[x].(type) {
			case *types.TypeName:
				if named, ok := o.Type().(*types.Named); ok && ix.familySet[named] {
					s.families[named] = true
				}
				if o.Name() == "AccelPhase" && o.Pkg() != nil && pathHasSuffix(o.Pkg().Path(), "internal/isa") {
					s.refsAccelPhase = true
				}
			case *types.Func:
				// Referencing a constructor marks its result families:
				// accel.NewDAE(...) reaches DAE even though the literal
				// type name never appears at the call site.
				if sig, ok := o.Type().(*types.Signature); ok {
					for i := 0; i < sig.Results().Len(); i++ {
						t := sig.Results().At(i).Type()
						if p, ok := t.(*types.Pointer); ok {
							t = p.Elem()
						}
						if named, ok := t.(*types.Named); ok && ix.familySet[named] {
							s.families[named] = true
						}
					}
				}
			}
		case *ast.KeyValueExpr:
			if id, ok := x.Key.(*ast.Ident); ok && id.Name == "DeviceKey" {
				s.refsDeviceKey = true
			}
		case *ast.SelectorExpr:
			if x.Sel.Name == "DeviceKey" {
				s.refsDeviceKey = true
			}
		case *ast.RangeStmt:
			if !s.mapRet.tainted && rangesOverMapPkg(pkg, x) {
				if pos, ok := mapOrderReturn(pkg, x, suppressed); ok {
					s.mapRet = taint{tainted: true, what: "map-range return", pos: pos}
				}
			}
		case *ast.FuncLit:
			for _, nm := range paramIdentsIn(pkg, x.Body, params) {
				i := params[pkg.Info.Uses[nm]]
				if _, dup := s.escaping[i]; !dup {
					s.escaping[i] = nm.Pos()
				}
			}
		}
		return true
	})
}

// paramObjects maps the declaration's parameter objects to their index;
// the receiver, when present, maps to -1.
func paramObjects(pkg *Package, decl *ast.FuncDecl) map[types.Object]int {
	out := map[types.Object]int{}
	if decl.Recv != nil && len(decl.Recv.List) == 1 && len(decl.Recv.List[0].Names) == 1 {
		if obj := pkg.Info.Defs[decl.Recv.List[0].Names[0]]; obj != nil {
			out[obj] = -1
		}
	}
	idx := 0
	if decl.Type.Params != nil {
		for _, f := range decl.Type.Params.List {
			if len(f.Names) == 0 {
				idx++
				continue
			}
			for _, nm := range f.Names {
				if obj := pkg.Info.Defs[nm]; obj != nil {
					out[obj] = idx
				}
				idx++
			}
		}
	}
	return out
}

// paramIdentsIn returns the identifiers inside body that resolve to one
// of the given parameter objects, in source order.
func paramIdentsIn(pkg *Package, body ast.Node, params map[types.Object]int) []*ast.Ident {
	var out []*ast.Ident
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pkg.Info.Uses[id]; obj != nil {
				if _, isParam := params[obj]; isParam {
					out = append(out, id)
				}
			}
		}
		return true
	})
	return out
}

// mapOrderReturn reports whether the map-range loop returns a value
// derived from its loop variables — R3's "picked by iteration order"
// shape — skipping sites that carry an R3 suppression. Returns inside
// nested literals count too: a closure returning a loop variable still
// publishes iteration order.
func mapOrderReturn(pkg *Package, rs *ast.RangeStmt, suppressed func(string, token.Pos) bool) (token.Pos, bool) {
	loopVars := map[types.Object]bool{}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pkg.Info.Defs[id]; obj != nil {
				loopVars[obj] = true
			} else if obj := pkg.Info.Uses[id]; obj != nil {
				loopVars[obj] = true
			}
		}
	}
	var found token.Pos
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if found.IsValid() {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if refsAnyObjectPkg(pkg, res, loopVars) && !suppressed("R3", res.Pos()) {
				found = res.Pos()
				break
			}
		}
		return true
	})
	return found, found.IsValid()
}

// propagate closes the summaries over the call graph bottom-up: SCCs in
// reverse-topological order, each cycle iterated to fixpoint. All facts
// are monotone booleans (or monotone sets), so the fixpoint is reached
// in at most |SCC| rounds and witness assignment is first-wins.
func (ix *Index) propagate() {
	for _, scc := range ix.sccs() {
		for changed := true; changed; {
			changed = false
			for _, fi := range scc {
				s := &fi.sum
				for _, e := range fi.calls {
					cfi := ix.funcs[e.callee]
					if cfi == nil {
						continue
					}
					cs := &cfi.sum
					if mergeTaint(&s.randAny, cs.randAny, e) {
						changed = true
					}
					if mergeTaint(&s.wallAny, cs.wallAny, e) {
						changed = true
					}
					if !wallExemptPkg(fi.pkg.Rel) && mergeTaint(&s.wallStrict, cs.wallStrict, e) {
						changed = true
					}
					if mergeTaint(&s.mapRet, cs.mapRet, e) {
						changed = true
					}
					for named := range cs.families {
						if !s.families[named] {
							s.families[named] = true
							changed = true
						}
					}
					if cs.refsAccelPhase && !s.refsAccelPhase {
						s.refsAccelPhase = true
						changed = true
					}
					if cs.refsDeviceKey && !s.refsDeviceKey {
						s.refsDeviceKey = true
						changed = true
					}
					if cs.callsEngineOccupancy && !s.callsEngineOccupancy {
						s.callsEngineOccupancy = true
						changed = true
					}
				}
			}
		}
	}
}

func mergeTaint(dst *taint, src taint, e callEdge) bool {
	if dst.tainted || !src.tainted {
		return false
	}
	*dst = taint{tainted: true, via: e.callee, viaPos: e.pos}
	return true
}

// ChainHop is one step of a reconstructed taint chain: the callee (or
// terminal source like "time.Now") and the position of the call that
// reaches it.
type ChainHop struct {
	Name string
	Pos  token.Position
}

// taintChain reconstructs the witness chain from fn down to the direct
// source, selecting the taint field with get. The first hop is fn's
// witness; the last hop names the source itself.
func (ix *Index) taintChain(fn *types.Func, get func(*summary) taint) []ChainHop {
	var hops []ChainHop
	seen := map[*types.Func]bool{}
	for fn != nil && !seen[fn] {
		seen[fn] = true
		fi := ix.funcs[fn]
		if fi == nil {
			break
		}
		t := get(&fi.sum)
		if !t.tainted {
			break
		}
		if t.via == nil {
			hops = append(hops, ChainHop{Name: t.what, Pos: fi.pkg.Fset.Position(t.pos)})
			break
		}
		hops = append(hops, ChainHop{Name: funcDisplay(t.via), Pos: fi.pkg.Fset.Position(t.viaPos)})
		fn = t.via
	}
	return hops
}

// chainText renders "callee → ... → source" for diagnostic messages.
func chainText(fn *types.Func, hops []ChainHop) string {
	parts := []string{funcDisplay(fn)}
	for _, h := range hops {
		parts = append(parts, h.Name)
	}
	return strings.Join(parts, " → ")
}
