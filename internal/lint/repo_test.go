package lint

import (
	"strings"
	"testing"
)

// TestSimlintCleanOnRepo is the lint contract as a tier-1 test: the whole
// module must pass every rule, so `go test ./...` fails on a new
// determinism hazard even when nobody runs `make lint`. Equivalent to
// `go run ./cmd/simlint ./...` exiting 0.
func TestSimlintCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	loader := fixtureLoader(t)
	paths, err := loader.Expand([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 15 {
		t.Fatalf("Expand(./...) found only %d packages — discovery is broken: %v", len(paths), paths)
	}
	var pkgs []*Package
	for _, p := range paths {
		if strings.Contains(p, "testdata") {
			t.Fatalf("Expand must skip testdata, found %s", p)
		}
		pkg, err := loader.Load(p)
		if err != nil {
			t.Fatalf("load %s: %v", p, err)
		}
		pkgs = append(pkgs, pkg)
	}
	diags := Run(pkgs, AllRules())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Errorf("%d diagnostic(s): fix them or add //lint:ignore with a reason (see LINT.md)", len(diags))
	}
}

// TestExpandForms covers the loader's pattern grammar.
func TestExpandForms(t *testing.T) {
	loader := fixtureLoader(t)
	for _, tc := range []struct {
		pattern string
		want    string
	}{
		{"./internal/sim", "repro/internal/sim"},
		{"internal/sim", "repro/internal/sim"},
		{"repro/internal/sim", "repro/internal/sim"},
	} {
		got, err := loader.Expand([]string{tc.pattern})
		if err != nil {
			t.Fatalf("Expand(%q): %v", tc.pattern, err)
		}
		if len(got) != 1 || got[0] != tc.want {
			t.Errorf("Expand(%q) = %v, want [%s]", tc.pattern, got, tc.want)
		}
	}
	walked, err := loader.Expand([]string{"./internal/..."})
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, p := range walked {
		found[p] = true
	}
	for _, want := range []string{"repro/internal/sim", "repro/internal/lint", "repro/internal/mem"} {
		if !found[want] {
			t.Errorf("Expand(./internal/...) missing %s in %v", want, walked)
		}
	}
}
