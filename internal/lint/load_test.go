package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module for loader error-path tests.
// Keys are slash-separated module-relative paths.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestLoadMalformedSource pins the syntax-error path: Load must fail and
// the error must name the offending file, because that message is what
// simlint prints before exiting 2.
func TestLoadMalformedSource(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":              "module broken\n\ngo 1.22\n",
		"internal/sim/bad.go": "package sim\n\nfunc oops( {\n",
	})
	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, err = loader.Load("broken/internal/sim")
	if err == nil {
		t.Fatal("malformed source must fail to load")
	}
	if !strings.Contains(err.Error(), "bad.go") {
		t.Errorf("error %q does not name the offending file", err)
	}
}

// TestLoadTypeError pins the type-check failure path: parseable but
// untypeable source reports a type-checking error naming the package.
func TestLoadTypeError(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":              "module broken\n\ngo 1.22\n",
		"internal/sim/bad.go": "package sim\n\nvar x NoSuchType\n",
	})
	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, err = loader.Load("broken/internal/sim")
	if err == nil {
		t.Fatal("untypeable source must fail to load")
	}
	if !strings.Contains(err.Error(), "type-checking") ||
		!strings.Contains(err.Error(), "broken/internal/sim") {
		t.Errorf("error %q should name the type-checking phase and the package", err)
	}
}

// TestLoadMissingPackage pins the unknown-path error.
func TestLoadMissingPackage(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module broken\n\ngo 1.22\n",
	})
	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loader.Load("broken/internal/nope"); err == nil {
		t.Fatal("missing package directory must fail to load")
	}
}

// TestLoadSkipsTestFiles pins the _test.go exclusion: a violation living
// only in a test file is invisible to the analyzer — test code may use
// wall clocks and global rand freely.
func TestLoadSkipsTestFiles(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module broken\n\ngo 1.22\n",
		"internal/sim/ok.go": "package sim\n\n// Cycles is fine.\nfunc Cycles() int { return 1 }\n",
		"internal/sim/ok_test.go": "package sim\n\nimport \"time\"\n\n" +
			"func helper() int64 { return time.Now().UnixNano() }\n",
	})
	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.Load("broken/internal/sim")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.Files) != 1 {
		t.Fatalf("loaded %d files, want 1 (ok_test.go must be excluded)", len(pkg.Files))
	}
	if diags := Run([]*Package{pkg}, AllRules()); len(diags) != 0 {
		t.Errorf("test-file violation leaked into analysis: %v", diags)
	}
}
