package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
	"testing"
)

// loadDataflowFixture loads testdata/dataflow.go and returns the pass,
// the target function, and the closure literal inside it.
func loadDataflowFixture(t *testing.T) (*Pass, *ast.FuncDecl, *ast.FuncLit) {
	t.Helper()
	loader := fixtureLoader(t)
	file := filepath.Join("testdata", "dataflow.go")
	pkg, err := loader.LoadFiles(loader.ModulePath+"/internal/dataflowfix", []string{file})
	if err != nil {
		t.Fatal(err)
	}
	pass := &Pass{Pkg: pkg}
	var fd *ast.FuncDecl
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if x, ok := d.(*ast.FuncDecl); ok && x.Name.Name == "target" {
				fd = x
			}
		}
	}
	if fd == nil {
		t.Fatal("no target function in fixture")
	}
	var lit *ast.FuncLit
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if x, ok := n.(*ast.FuncLit); ok && lit == nil {
			lit = x
		}
		return true
	})
	if lit == nil {
		t.Fatal("no closure in fixture")
	}
	return pass, fd, lit
}

// objNamed finds the (unique) local variable object with the given name
// declared within node.
func objNamed(t *testing.T, pass *Pass, node ast.Node, name string) types.Object {
	t.Helper()
	var obj types.Object
	ast.Inspect(node, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			if def := pass.Pkg.Info.Defs[id]; def != nil {
				obj = def
			}
		}
		return true
	})
	if obj == nil {
		t.Fatalf("no object named %q", name)
	}
	return obj
}

// sentinelPos locates the token position of the statement carrying the
// given source marker.
func sentinelPos(t *testing.T, pass *Pass, fd *ast.FuncDecl, marker string) token.Pos {
	t.Helper()
	for _, f := range pass.Pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.Contains(c.Text, marker) {
					return c.Pos()
				}
			}
		}
	}
	t.Fatalf("marker %q not found", marker)
	return token.NoPos
}

func TestDefUse(t *testing.T) {
	pass, fd, _ := loadDataflowFixture(t)
	du := defUseOf(pass, fd.Body)
	x := objNamed(t, pass, fd, "x")
	y := objNamed(t, pass, fd, "y")

	// y is defined three times: y := 0, y += i, and y++ in the closure.
	if got := len(du.defs[y]); got != 3 {
		t.Errorf("defs of y = %d, want 3", got)
	}
	// At the sentinel (x = y + 1), only the first two definitions of y
	// can reach — the closure's y++ is later in source order.
	at := sentinelPos(t, pass, fd, "sentinel:")
	if got := len(du.reachingDefs(y, at)); got != 2 {
		t.Errorf("reaching defs of y at sentinel = %d, want 2", got)
	}
	// Both x and y are read by the trailing return.
	if !du.usesAfter(x, at) || !du.usesAfter(y, at) {
		t.Error("usesAfter(x/y, sentinel) = false, want true (return x + y)")
	}
	// Nothing reads out after the end of the function.
	out := objNamed(t, pass, fd, "out")
	end := fd.Body.End()
	if du.usesAfter(out, end) {
		t.Error("usesAfter(out, body end) = true, want false")
	}
}

func TestClosureCaptures(t *testing.T) {
	pass, fd, lit := loadDataflowFixture(t)
	i := objNamed(t, pass, lit, "i") // the closure's own parameter
	facts := closureCaptures(pass, lit, map[types.Object]bool{i: true})

	for _, name := range []string{"out", "x", "y", "n"} {
		if !facts.captured[objNamed(t, pass, fd, name)] {
			t.Errorf("captured[%s] = false, want true", name)
		}
	}
	if facts.captured[i] {
		t.Error("closure's own parameter reported as captured")
	}
	if !facts.addrTaken[objNamed(t, pass, fd, "n")] {
		t.Error("addrTaken[n] = false, want true (q := &n)")
	}

	byObj := map[string]captureWrite{}
	for _, w := range facts.writes {
		byObj[w.obj.Name()] = w
	}
	if w, ok := byObj["out"]; !ok || !w.disjoint {
		t.Errorf("write to out: got %+v, want a disjoint element store", w)
	}
	if w, ok := byObj["y"]; !ok || w.disjoint {
		t.Errorf("write to y: got %+v, want a shared (non-disjoint) write", w)
	}
	if _, ok := byObj["x"]; ok {
		t.Error("x is only read inside the closure; no write expected")
	}
}
