package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// fixtureLoader builds one loader rooted at the real module so fixture
// packages can import repro/internal/... for the type-sensitive rules.
func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	return l
}

var wantMarker = regexp.MustCompile(`want:([A-Z0-9]+)`)

// wantDiags reads `want:RULE` markers from a fixture file: each occurrence
// expects one diagnostic of that rule on that line.
func wantDiags(t *testing.T, filename string) []string {
	t.Helper()
	data, err := os.ReadFile(filename)
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	for i, line := range strings.Split(string(data), "\n") {
		for _, m := range wantMarker.FindAllStringSubmatch(line, -1) {
			want = append(want, fmt.Sprintf("%d:%s", i+1, m[1]))
		}
	}
	return want
}

// gotDiags renders diagnostics as "line:RULE" for comparison.
func gotDiags(diags []Diagnostic) []string {
	var got []string
	for _, d := range diags {
		got = append(got, fmt.Sprintf("%d:%s", d.Pos.Line, d.Rule))
	}
	return got
}

// TestRuleFixtures runs each rule over its deliberately-broken fixture and
// compares against the want: markers embedded in the fixture source —
// the golden contract for R1–R5 and the suppression machinery.
func TestRuleFixtures(t *testing.T) {
	cases := []struct {
		name    string
		file    string
		as      string // module-relative package path the fixture poses as
		ignores bool   // expectations come from markers unless set: expect none
		rules   string // comma-separated rule IDs to run (default: all)
	}{
		{name: "R1-in-scope", file: "r1.go", as: "internal/workload/fixture"},
		{name: "R1-out-of-scope", file: "r1.go", as: "internal/textplot/fixture", ignores: true},
		{name: "R2-in-scope", file: "r2.go", as: "internal/sim/fixture"},
		{name: "R2-allowed-in-cmd", file: "r2.go", as: "cmd/fixture", ignores: true},
		{name: "R2-allowed-in-runner", file: "r2.go", as: "internal/runner/fixture", ignores: true},
		{name: "R3-everywhere", file: "r3.go", as: "internal/anything/fixture"},
		{name: "R4-in-scope", file: "r4.go", as: "internal/core/fixture"},
		{name: "R4-out-of-scope", file: "r4.go", as: "internal/isa/fixture", ignores: true},
		{name: "R5-in-scope", file: "r5.go", as: "internal/experiments/fixture"},
		{name: "R5-allowed-in-defining-pkg", file: "r5.go", as: "internal/sim/fixture", ignores: true},
		{name: "R6-in-scope", file: "r6.go", as: "internal/sim/fixture"},
		{name: "R6-out-of-scope", file: "r6.go", as: "internal/mem/fixture", ignores: true},
		{name: "R7-everywhere", file: "r7.go", as: "internal/experiments/fixture"},
		{name: "R7-in-defining-pkg", file: "r7.go", as: "internal/scenario/fixture"},
		{name: "R8-in-scope", file: "r8.go", as: "internal/scenario/fixture8"},
		{name: "R8-out-of-scope", file: "r8.go", as: "internal/experiments/fixture8", ignores: true},
		{name: "R8R9-checkpoint-in-scope", file: "r8ckpt.go", as: "internal/sim/fixtureckpt"},
		{name: "R8R9-checkpoint-out-of-scope", file: "r8ckpt.go", as: "internal/experiments/fixtureckpt", ignores: true},
		{name: "R9-in-scope", file: "r9.go", as: "internal/sim/fixture9"},
		{name: "R9-out-of-scope", file: "r9.go", as: "internal/textplot/fixture9", ignores: true},
		{name: "R9-devsnap-in-scope", file: "rdevsnap.go", as: "internal/accel/fixturedev"},
		{name: "R9-devsnap-out-of-scope", file: "rdevsnap.go", as: "internal/workload/fixturedev", ignores: true},
		{name: "R10-everywhere", file: "r10.go", as: "internal/anything/fixture10"},
		{name: "R11-in-staticmodel", file: "r11.go", as: "internal/staticmodel/fixture11"},
		{name: "R11-in-interval", file: "r11.go", as: "internal/interval/fixture11"},
		{name: "R11-out-of-scope", file: "r11.go", as: "internal/experiments/fixture11", ignores: true},
		{name: "R1R2-interproc-in-scope", file: "interproc.go", as: "internal/sim/fixtureip"},
		{name: "R1R2-interproc-out-of-scope", file: "interproc.go", as: "cmd/fixtureip", ignores: true},
		{name: "R12-in-accel", file: "r12.go", as: "internal/accel", rules: "R12"},
		{name: "R12-out-of-scope", file: "r12.go", as: "internal/workload/fixtureaccel", ignores: true, rules: "R12"},
		{name: "R14-everywhere", file: "r14.go", as: "internal/experiments/fixture14"},
	}
	loader := fixtureLoader(t)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			file := filepath.Join("testdata", tc.file)
			pkg, err := loader.LoadFiles(loader.ModulePath+"/"+tc.as, []string{file})
			if err != nil {
				t.Fatal(err)
			}
			rules := AllRules()
			if tc.rules != "" {
				rules = nil
				for _, id := range strings.Split(tc.rules, ",") {
					r := RuleByID(id)
					if r == nil {
						t.Fatalf("unknown rule %q in case", id)
					}
					rules = append(rules, r)
				}
			}
			diags := Run([]*Package{pkg}, rules)
			var want []string
			if !tc.ignores {
				want = wantDiags(t, file)
			}
			compareDiags(t, want, diags)
		})
	}
}

// TestSuppressions exercises both //lint:ignore placements, multi-rule
// directives, and the R0 malformed-directive diagnostic.
func TestSuppressions(t *testing.T) {
	loader := fixtureLoader(t)
	file := filepath.Join("testdata", "suppress.go")
	pkg, err := loader.LoadFiles(loader.ModulePath+"/internal/sim/fixture6", []string{file})
	if err != nil {
		t.Fatal(err)
	}
	diags := Run([]*Package{pkg}, AllRules())

	want := wantDiags(t, file)
	// The malformed directive's own line is located by its sentinel token
	// (a marker comment cannot share a line with the directive).
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	for i, line := range strings.Split(string(data), "\n") {
		if strings.Contains(line, "lint:ignore MALFORMEDFIXTURE") {
			want = append(want, fmt.Sprintf("%d:R0", i+1))
		}
	}
	compareDiags(t, want, diags)
}

func compareDiags(t *testing.T, want []string, diags []Diagnostic) {
	t.Helper()
	got := gotDiags(diags)
	sort.Strings(want)
	sort.Strings(got)
	if strings.Join(want, " ") != strings.Join(got, " ") {
		var lines []string
		for _, d := range diags {
			lines = append(lines, d.String())
		}
		t.Errorf("diagnostics mismatch\n want: %v\n  got: %v\nfull output:\n%s",
			want, got, strings.Join(lines, "\n"))
	}
}

// TestRuleMetadata guards the published rule catalog: stable IDs, names
// and docs that LINT.md documents.
func TestRuleMetadata(t *testing.T) {
	wantIDs := []string{"R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9", "R10", "R11", "R12", "R13", "R14"}
	rules := AllRules()
	if len(rules) != len(wantIDs) {
		t.Fatalf("AllRules: got %d rules, want %d", len(rules), len(wantIDs))
	}
	for i, r := range rules {
		if r.ID != wantIDs[i] {
			t.Errorf("rule %d: ID %q, want %q", i, r.ID, wantIDs[i])
		}
		if r.Name == "" || r.Doc == "" {
			t.Errorf("rule %s: empty Name or Doc", r.ID)
		}
		if r.Check == nil {
			t.Errorf("rule %s: nil Check", r.ID)
		}
		if RuleByID(r.ID) != r {
			t.Errorf("RuleByID(%q) did not return the rule", r.ID)
		}
	}
	if RuleByID("nope") != nil {
		t.Error("RuleByID of unknown ID should be nil")
	}
}
