package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// cloneEmitRoots are the cached result types. The scenario store hands
// out Clone()d copies of its canonical in-memory results, so three
// properties must hold for every field: it survives the JSON disk
// round trip (no func/chan), the clone deep-copies it rather than
// aliasing the canonical copy's storage, and something actually reports
// it (a field no emitter reads is dead weight at best and a silently
// dropped measurement at worst).
var cloneEmitRoots = []struct{ pkgSuffix, name string }{
	{"internal/sim", "Stats"},
	{"internal/sim", "Checkpoint"},
	{"internal/scenario", "MeasureRecord"},
}

// ruleCloneCov (R9) runs three sub-checks, partitioned by package so
// each fires exactly once:
//
//   - serializability, in the root's defining package: every exported
//     field reachable from the root must survive the store's JSON round
//     trip (exemptible via //lint:exempt-field R9);
//   - emit coverage, in the defining package, when the root declares a
//     String method (the canonical in-package emitter): every exported
//     direct field must be read by a non-Clone method (String, IPC,
//     CPIStack, ...) or exempted;
//   - clone coverage, wherever a clone function of the root lives
//     (method Clone, or a clone* helper taking the root): reference-
//     bearing fields need an explicit deep-copying assignment — a
//     whole-struct copy or a bare field assignment aliases the slice —
//     and without a whole-struct copy every field must be assigned.
//     Deep-copy correctness is never exemptible; //lint:ignore remains
//     the (visible, counted) escape hatch.
//
// A fourth sub-check, device snapshot coverage, runs under internal/accel
// (see rule_devsnap.go): runtime state a snapshottable device mutates must
// be captured by SnapshotState and restored by RestoreState, or carry an
// exemption manifest — the checkpoint-side mirror of clone coverage.
var ruleCloneCov = &Rule{
	ID:   "R9",
	Name: "clone-and-emit-coverage",
	Doc:  "cached result types (sim.Stats, sim.Checkpoint, scenario.MeasureRecord) must be JSON-serializable, deep-copied field-exhaustively by Clone, and fully read by their reporting methods; device runtime state must be snapshot/restore-covered",
	Applies: func(rel string) bool {
		return underAny(rel, "internal/sim", "internal/scenario", "internal/accel")
	},
	Check: checkCloneCoverage,
}

func checkCloneCoverage(pass *Pass) {
	checkDeviceSnapshots(pass)
	for _, rt := range cloneEmitRoots {
		root := lookupNamed(pass, rt.pkgSuffix, rt.name)
		if root == nil {
			continue
		}
		str, ok := root.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		if root.Obj().Pkg() == pass.Pkg.Types {
			checkSerializable(pass, root)
			checkEmitCoverage(pass, root, str)
		}
		checkCloneFuncs(pass, root, str)
	}
}

// checkSerializable walks the full reachable struct closure and flags
// fields whose types cannot round-trip through the JSON store.
func checkSerializable(pass *Pass, root *types.Named) {
	cov := newCoverage(pass)
	cov.addRoots([]*types.Named{root}, nil)
	cov.collectExemptions("R9", append([]*Package{pass.Pkg}, cov.definingPackages()...))
	for _, ct := range cov.orderedTypes() {
		for i := 0; i < ct.str.NumFields(); i++ {
			f := ct.str.Field(i)
			if !f.Exported() || serializable(f.Type()) || cov.isExempt(ct, f.Name()) {
				continue
			}
			pass.Reportf(fieldPos(f),
				"%s.%s has type %s, which does not survive the JSON result store: a disk cache hit would silently drop it; store a serializable stand-in or exempt with `//lint:exempt-field R9 %s.%s <reason>`",
				ct.display(), f.Name(), f.Type().String(), ct.named.Obj().Name(), f.Name())
		}
	}
}

// checkEmitCoverage requires every exported direct field of the root to
// be read by at least one reporting method (any method of the root
// other than Clone). Roots with no reporting methods are not audited —
// their coverage story lives with their emitters' package.
func checkEmitCoverage(pass *Pass, root *types.Named, str *types.Struct) {
	var consumers []*ast.FuncDecl
	pass.eachFile(func(f *ast.File) {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Name.Name == "Clone" {
				continue
			}
			if recv := receiverType(pass, fd); recv != nil && types.Identical(recv, root) {
				consumers = append(consumers, fd)
			}
		}
	})
	// The audit engages only when the root declares a String method —
	// the canonical in-package emitter. Roots reported solely by other
	// packages (MeasureRecord's fields feed the experiment tables) have
	// no in-package consumer set to prove exhaustive, so their coverage
	// rests on Clone/serializability here plus the figure goldens there.
	var anchor *ast.FuncDecl
	for _, fd := range consumers {
		if fd.Name.Name == "String" {
			anchor = fd
			break
		}
	}
	if anchor == nil {
		return
	}
	cov := newCoverage(pass)
	cov.addRoots([]*types.Named{root}, func(*coverType, *types.Var) bool { return false })
	cov.collectExemptions("R9", append([]*Package{pass.Pkg}, cov.definingPackages()...))
	for _, fd := range consumers {
		cov.recordReads(fd.Body)
	}
	ct := cov.types[root]
	missing := cov.missingFields(ct, func(f *types.Var) bool {
		return !serializable(f.Type()) // already reported by checkSerializable
	})
	if len(missing) > 0 {
		pass.Reportf(anchor.Name.Pos(),
			"no reporting method of %s reads field(s) %s: the measurement is collected but never emitted; print them (e.g. in String) or exempt with `//lint:exempt-field R9 %s.<Field> <reason>`",
			ct.display(), strings.Join(missing, ", "), root.Obj().Name())
	}
}

// checkCloneFuncs locates the root's clone functions in this package and
// audits their field exhaustiveness.
func checkCloneFuncs(pass *Pass, root *types.Named, str *types.Struct) {
	pass.eachFile(func(f *ast.File) {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var src *types.Var
			switch {
			case fd.Recv != nil && fd.Name.Name == "Clone":
				if recv := receiverType(pass, fd); recv != nil && types.Identical(recv, root) {
					src = funcSignature(pass, fd).Recv()
				}
			case fd.Recv == nil && strings.HasPrefix(fd.Name.Name, "clone"):
				sig := funcSignature(pass, fd)
				if sig == nil {
					continue
				}
				for i := 0; i < sig.Params().Len(); i++ {
					p := sig.Params().At(i)
					if types.Identical(stripPtr(p.Type()), root) {
						src = p
						break
					}
				}
			}
			if src == nil {
				continue
			}
			auditCloneFunc(pass, fd, root, str, src)
		}
	})
}

// auditCloneFunc checks one clone function body against the root's
// direct exported fields.
func auditCloneFunc(pass *Pass, fd *ast.FuncDecl, root *types.Named, str *types.Struct, src *types.Var) {
	wholeCopy := false
	fieldAssign := map[string]ast.Expr{} // field name -> RHS of its assignment
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			rhs := as.Rhs[i]
			// out := src (or out := *src) copies every value field at once.
			if _, isIdent := lhs.(*ast.Ident); isIdent && isWholeCopyOf(pass, rhs, src) {
				wholeCopy = true
			}
			if name := isRootSel(pass, lhs, root); name != "" {
				fieldAssign[name] = rhs
			}
		}
		return true
	})
	var valueMissing []string
	for i := 0; i < str.NumFields(); i++ {
		f := str.Field(i)
		if !f.Exported() {
			continue
		}
		rhs, assigned := fieldAssign[f.Name()]
		if bearsReference(f.Type()) && serializable(f.Type()) {
			switch {
			case !assigned:
				pass.Reportf(fd.Name.Pos(),
					"%s does not deep-copy reference field %s.%s: the value copy aliases the cached canonical slice/map, so a caller's mutation corrupts every later cache hit",
					fd.Name.Name, root.Obj().Name(), f.Name())
			default:
				if name := isRootSel(pass, rhs, root); name == f.Name() {
					pass.Reportf(rhs.Pos(),
						"%s assigns %s.%s straight from the source — that aliases the underlying storage; deep-copy it (append([]T(nil), src.%s...) or a clone helper)",
						fd.Name.Name, root.Obj().Name(), f.Name(), f.Name())
				}
			}
			continue
		}
		if !wholeCopy && !assigned {
			valueMissing = append(valueMissing, f.Name())
		}
	}
	if len(valueMissing) > 0 {
		pass.Reportf(fd.Name.Pos(),
			"%s has no whole-struct copy and never assigns %s field(s) %s: they silently zero in every clone",
			fd.Name.Name, root.Obj().Name(), strings.Join(valueMissing, ", "))
	}
}

// isWholeCopyOf reports whether rhs is the bare source variable (or a
// dereference of it) — the idiom that copies all value fields at once.
func isWholeCopyOf(pass *Pass, rhs ast.Expr, src *types.Var) bool {
	if star, ok := rhs.(*ast.StarExpr); ok {
		rhs = star.X
	}
	id, ok := rhs.(*ast.Ident)
	return ok && pass.objOf(id) == src
}

// isRootSel returns the field name when e is a selector x.F with x of
// the root type (pointer stripped), and "" otherwise.
func isRootSel(pass *Pass, e ast.Expr, root *types.Named) string {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	tv, ok := pass.Pkg.Info.Types[sel.X]
	if !ok || tv.Type == nil {
		return ""
	}
	if !types.Identical(stripPtr(tv.Type), root) {
		return ""
	}
	return sel.Sel.Name
}

// receiverType returns the receiver's type with pointers stripped, or nil.
func receiverType(pass *Pass, fd *ast.FuncDecl) types.Type {
	sig := funcSignature(pass, fd)
	if sig == nil || sig.Recv() == nil {
		return nil
	}
	return stripPtr(sig.Recv().Type())
}

func funcSignature(pass *Pass, fd *ast.FuncDecl) *types.Signature {
	fn, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil
	}
	sig, _ := fn.Type().(*types.Signature)
	return sig
}

func stripPtr(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}
