// Fixture for R4 float-equality. Loaded under an in-scope model path
// (internal/core/...).
package fixture4

const eps = 1e-9

func compare(a, b float64) bool {
	if a == b { // want:R4
		return true
	}
	if a != 0 { // want:R4
		return false
	}
	return a-b < eps && b-a < eps // tolerance form: fine
}

// intCompare is exact and fine.
func intCompare(a, b int) bool { return a == b }

// constFold compares two compile-time constants exactly; not flagged.
func constFold() bool { return 0.1+0.2 == 0.3 }

// mixed flags when only one side is floating point.
func mixed(xs []float64) int {
	n := 0
	for _, x := range xs {
		if x == 1.0 { // want:R4
			n++
		}
	}
	return n
}

// suppressed documents an exact-sentinel exception.
func suppressed(v float64) bool {
	//lint:ignore R4 fixture: zero is an exact user-set sentinel here
	return v == 0
}
