// Fixture for R12 device-schedule-purity: a device family's Invoke tree
// must be transitively wallclock- and global-rand-free and must not let
// map iteration order reach a return value. Diagnostics anchor at the
// Invoke declaration with the chain in the message. Loaded as
// internal/accel (the rule's exact scope) with the rule set restricted
// to R12 — the helpers would otherwise also trip R1/R2/R3 at their own
// sites, which is the intended double coverage in real runs but noise
// for these markers.
package fixtureaccel

import (
	"math/rand"
	"time"

	"repro/internal/isa"
)

// Clock reaches the wall clock through a helper: host timing would leak
// into architectural state.
type Clock struct{ base uint64 }

func (d *Clock) Name() string { return "clock" }

func hostLatency() int { return int(time.Now().UnixNano() & 7) }

func (d *Clock) Invoke(call isa.AccelCall, mem isa.WordReader) isa.AccelResult { // want:R12
	return isa.AccelResult{Value: call.Args[0] + d.base, Latency: hostLatency()}
}

// Dice reaches the global generator two helpers deep.
type Dice struct{}

func (d *Dice) Name() string { return "dice" }

func draw() uint64    { return uint64(rand.Intn(64)) }
func viaDraw() uint64 { return draw() + 1 }

func (d *Dice) Invoke(call isa.AccelCall, mem isa.WordReader) isa.AccelResult { // want:R12
	return isa.AccelResult{Value: viaDraw(), Latency: 4}
}

// Pick lets map iteration order choose the returned value.
type Pick struct{ table map[uint64]uint64 }

func (d *Pick) Name() string { return "pick" }

func first(m map[uint64]uint64) uint64 {
	for k := range m {
		return k
	}
	return 0
}

func (d *Pick) Invoke(call isa.AccelCall, mem isa.WordReader) isa.AccelResult { // want:R12
	return isa.AccelResult{Value: first(d.table), Latency: 2}
}

// Pure is the clean case: arithmetic over the call and memory only,
// including a phased schedule, through a helper.
type Pure struct{ chunk int }

func (d *Pure) Name() string { return "pure" }

func pureSchedule(words int, chunk int) []isa.AccelPhase {
	var sched []isa.AccelPhase
	for words > 0 {
		n := chunk
		if words < n {
			n = words
		}
		sched = append(sched, isa.AccelPhase{Compute: n})
		words -= n
	}
	return sched
}

func (d *Pure) Invoke(call isa.AccelCall, mem isa.WordReader) isa.AccelResult {
	sum := mem.Load(call.Args[0]) + mem.Load(call.Args[1])
	return isa.AccelResult{Value: sum, Schedule: pureSchedule(int(call.Args[2]), d.chunk)}
}
