// Fixture for R7 unkeyed-spec-literal. The rule applies everywhere,
// including the defining packages, so the package path does not matter.
package fixture7

import (
	"repro/internal/scenario"
	"repro/internal/sim"
)

// positional literals of the canonical spec types rot silently when a
// field is inserted: every value after the insertion point shifts one
// slot without a compile error. (sim.Config itself has too many fields
// for a positional literal to compile at all — which is the same
// failure mode, just caught later.)
func unkeyed() {
	_ = scenario.Spec{sim.Config{}, nil, nil, "", 0}       // want:R7
	_ = scenario.MeasureSpec{sim.HighPerfConfig(), nil, 0} // want:R7
}

// keyed literals are the sanctioned pattern.
func keyed() scenario.Spec {
	return scenario.Spec{
		Config:    sim.HighPerfConfig(),
		MaxCycles: 1,
	}
}

// zeroValue literals have nothing positional and are fine.
func zeroValue() (scenario.Spec, sim.Config) {
	return scenario.Spec{}, sim.Config{}
}

// otherTypes with positional fields are out of scope.
type pair struct{ a, b int }

func otherTypes() pair {
	return pair{1, 2}
}

// suppressed documents a deliberate positional literal.
func suppressed() scenario.MeasureSpec {
	//lint:ignore R7 fixture: demonstrates a justified exception
	return scenario.MeasureSpec{sim.Config{}, nil, 1}
}
