// Fixture for R3 ordered-map-iteration: every way map order can leak,
// next to the sanctioned order-independent forms.
package fixture3

import (
	"fmt"
	"sort"
	"strings"
)

// leakAppend collects in iteration order and never sorts.
func leakAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want:R3
	}
	return keys
}

// collectThenSort is the sanctioned idiom and must not be flagged.
func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// keyedWrites commute and must not be flagged.
func keyedWrites(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v + 1
	}
	return out
}

// intSum commutes and must not be flagged.
func intSum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// floatSum does not commute.
func floatSum(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want:R3
	}
	return total
}

// selection picks whichever key the runtime serves last.
func selection(m map[string]int) string {
	var best string
	for k, v := range m {
		if v > 0 {
			best = k // want:R3
		}
	}
	return best
}

// emit writes output in iteration order.
func emit(m map[string]int, b *strings.Builder) {
	for k, v := range m {
		fmt.Fprintf(b, "%s=%d\n", k, v) // want:R3
	}
}

// writeMethod hits the Write* method check.
func writeMethod(m map[string]bool, b *strings.Builder) {
	for k := range m {
		b.WriteString(k) // want:R3
	}
}

// arbitrary returns "some element".
func arbitrary(m map[string]int) string {
	for k := range m {
		return k // want:R3
	}
	return ""
}

// constantReturn is order-independent: the result does not depend on
// which iteration returns.
func constantReturn(m map[string]int) bool {
	for range m {
		return true
	}
	return false
}

// appendIntoMap is the Disassemble-style leak: slices inside a map pick up
// iteration order.
func appendIntoMap(m map[string]int) map[int][]string {
	byIdx := make(map[int][]string)
	for name, idx := range m {
		byIdx[idx] = append(byIdx[idx], name) // want:R3
	}
	return byIdx
}

// suppressedWorklist documents an order-independent fixpoint.
func suppressedWorklist(set map[int]bool) []int {
	stack := make([]int, 0, len(set))
	for s := range set {
		//lint:ignore R3 fixture: worklist order does not change the fixpoint
		stack = append(stack, s)
	}
	return stack
}
