// Fixture for R8's checkpoint-codec audit and R9's Checkpoint clone
// audit. Posed as a package under internal/sim, it defines local
// stand-ins for Checkpoint, its nested RenameEntry, and the binary
// codec's encoder. TCABusyUntil is deliberately never encoded — the
// "microarchitectural field added to Core state but forgotten in the
// codec" failure, which would silently zero on every resume — and
// Clone aliases the Ports slice.
package fixtureckpt

type RenameEntry struct {
	Valid bool
	Seq   uint64
}

type Checkpoint struct {
	Now          int64         // encoded: fine
	Seq          uint64        // encoded: fine
	TCABusyUntil int64         // never encoded -> reported (silently zero on resume)
	Rename       []RenameEntry // encoded transitively: fine
	Ports        []int64       // encoded, but aliased by Clone below
	scratch      int64         // unexported: ignored by the digest audit
}

// checkpoint is the first consumer declaration, so aggregated per-type
// diagnostics anchor here.
func (e *encoder) checkpoint(ck *Checkpoint) { // want:R8
	e.push(uint64(ck.Now))
	e.push(ck.Seq)
	for _, rn := range ck.Rename {
		if rn.Valid {
			e.push(1)
		}
		e.push(rn.Seq)
	}
	for _, p := range ck.Ports {
		e.push(uint64(p))
	}
}

type encoder struct{ buf []byte }

func (e *encoder) push(v uint64) {
	e.buf = append(e.buf, byte(v))
}

// MarshalBinary delegates to the encoder; its own reads do NOT count as
// coverage (only encoder methods and Digest funcs are consumers).
func (ck *Checkpoint) MarshalBinary() []byte {
	var e encoder
	e.checkpoint(ck)
	return e.buf
}

// Clone deep-copies Rename but aliases Ports.
func (ck *Checkpoint) Clone() *Checkpoint {
	out := *ck
	out.Rename = append([]RenameEntry(nil), ck.Rename...)
	out.Ports = ck.Ports // want:R9
	return &out
}
