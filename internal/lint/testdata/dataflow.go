// Fixture for the dataflow tier's unit tests (dataflow_test.go). The
// shape is deliberate: three locals with multiple definitions, a
// closure capturing all of them with one disjoint and one shared
// write, and an address capture.
package dataflowfix

func target(n int) int {
	x := 1
	y := 0
	for i := 0; i < n; i++ {
		y += i
	}
	x = y + 1 // sentinel: reaching-defs of y queried here
	out := make([]int, n)
	f := func(i int) {
		out[i] = x // disjoint element store, captures out and x
		y++        // shared captured write
		q := &n    // address capture of n
		_ = q
	}
	f(0)
	return x + y
}
