// Fixture for R1 no-global-rand. Loaded by lint_test.go under an
// in-scope module path (internal/workload/...). Marker comments name the
// lines the rule must flag.
package fixture

import "math/rand"

// globals draws from the process-global generator — every call is a leak.
func globals() int {
	n := rand.Intn(10)                 // want:R1
	f := rand.Float64()                // want:R1
	rand.Shuffle(n, func(i, j int) {}) // want:R1
	return n + int(f)
}

// seeded is the sanctioned pattern: an explicit source, injectable seed.
func seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// suppressed documents a deliberate exception.
func suppressed() int {
	//lint:ignore R1 fixture: demonstrates a justified exception
	return rand.Int()
}
