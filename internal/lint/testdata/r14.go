// Fixture for R14 core-escape: *sim.Core must not be captured by (or
// escape into) runner.Map/Sweep job closures. Cores are mutable
// simulation scratch; the pool runs every job concurrently. Negative
// cases: constructing the core inside the job, and passing a core to a
// helper that does not store it in a closure.
package fixture14

import (
	"context"

	"repro/internal/runner"
	"repro/internal/sim"
)

// shared captures one core across all jobs: every invocation mutates
// the same ROB/cache state concurrently.
func shared(ctx context.Context, core *sim.Core) error {
	_, _, err := runner.Sweep(ctx, 2, 4, func(ctx context.Context, i int) (int, error) {
		_ = core // want:R14
		return i, nil
	})
	return err
}

// makeJob stores its core parameter inside the closure it returns —
// the escape the tier-3 summary records.
func makeJob(core *sim.Core) func(context.Context, int) (int, error) {
	return func(ctx context.Context, i int) (int, error) {
		_ = core
		return i, nil
	}
}

// viaBuilder hands the pool a prebuilt job closing over the core; the
// escape summary flags the argument at the builder call.
func viaBuilder(ctx context.Context, core *sim.Core) error {
	_, _, err := runner.Sweep(ctx, 2, 4, makeJob(core)) // want:R14
	return err
}

// perJob is the sanctioned pattern: each job constructs its own core
// from immutable inputs, so nothing shared escapes.
func perJob(ctx context.Context, cfgs []sim.Config) error {
	_, _, err := runner.Map(ctx, 2, cfgs, func(ctx context.Context, i int, cfg sim.Config) (int, error) {
		var core *sim.Core // declared inside the job: not a capture
		_ = core
		return i, nil
	})
	return err
}

// jobCount reads the core outside any literal: passing a core to it is
// fine, the parameter never escapes.
func jobCount(core *sim.Core) int {
	if core == nil {
		return 2
	}
	return 4
}

func viaCount(ctx context.Context, core *sim.Core) error {
	n := jobCount(core)
	_, _, err := runner.Sweep(ctx, 2, n, func(ctx context.Context, i int) (int, error) {
		return i, nil
	})
	return err
}
