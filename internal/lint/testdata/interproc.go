// Fixture for the tier-3 interprocedural upgrades of R1/R2: a scoped
// package calling a module function that transitively reaches the wall
// clock or the global rand is flagged at the call site, with the call
// chain in the message. Loaded under an in-scope path (internal/sim/...)
// where all markers apply, and under cmd/ where nothing may fire.
package fixtureip

import (
	"context"
	"math/rand"
	"time"

	"repro/internal/runner"
)

// jitter reads the wall clock directly: the intra tier flags the site.
func jitter() int64 {
	return time.Now().UnixNano() // want:R2
}

// viaJitter launders the read through one call level; tier 3 flags the
// call site with the chain (viaJitter → jitter → time.Now).
func viaJitter() int64 {
	return jitter() + 1 // want:R2
}

// twoLevels shows the taint is transitive, not one-hop.
func twoLevels() int64 {
	return viaJitter() * 2 // want:R2
}

// noise draws from the global generator directly.
func noise() int {
	return rand.Intn(6) // want:R1
}

// viaNoise is flagged at the call site with the chain.
func viaNoise() int {
	return noise() + 1 // want:R1
}

// seededHelper threads an explicit source; its callers stay clean.
func seededHelper(r *rand.Rand) int { return r.Intn(6) }

func viaSeeded(seed int64) int {
	return seededHelper(rand.New(rand.NewSource(seed)))
}

// blessed carries a suppression: the written proof covers transitive
// use, so the suppressed site must not seed taint in callers.
func blessed() int64 {
	//lint:ignore R2 fixture: proves suppressed sites do not seed taint
	return time.Now().UnixNano()
}

func viaBlessed() int64 { return blessed() }

// poolUser calls into the exempt runner package, whose per-job wall
// timing is sanctioned observability: the strict taint cuts there, so
// this stays clean even though runner.Sweep reads the clock.
func poolUser(ctx context.Context) error {
	_, _, err := runner.Sweep(ctx, 2, 4, func(ctx context.Context, i int) (int, error) {
		return i, nil
	})
	return err
}
