// Fixture for R10 (parallel-closure-shared-write). Job closures handed
// to runner.Map/Sweep run concurrently for every index, so writes to
// captured variables are races unless each job stores to its own
// element (out[i] = ...). Negative cases: the index-disjoint slice
// store, the index-disjoint store through a struct field, and a
// suppressed reduction.
package fixture10

import (
	"context"

	"repro/internal/runner"
)

// good collects per-job results index-disjointly: no diagnostics.
func good(ctx context.Context) ([]int, error) {
	out := make([]int, 8)
	_, _, err := runner.Sweep(ctx, 4, 8, func(ctx context.Context, i int) (int, error) {
		out[i] = i * i
		return out[i], nil
	})
	return out, err
}

type cell struct{ v int }

// structured stores through a field of an index-selected element —
// still disjoint, no diagnostics.
func structured(ctx context.Context) ([]cell, error) {
	rows := make([]cell, 8)
	_, _, err := runner.Sweep(ctx, 2, 8, func(ctx context.Context, i int) (int, error) {
		rows[i].v = i
		return 0, nil
	})
	return rows, err
}

// bad accumulates into captured variables: every write races.
func bad(ctx context.Context, jobs []int) (int, error) {
	sum := 0
	best := 0
	seen := map[int]bool{}
	_, _, err := runner.Map(ctx, 4, jobs, func(ctx context.Context, i int, job int) (int, error) {
		sum += job       // want:R10
		best = job       // want:R10
		seen[job] = true // want:R10
		return job, nil
	})
	return sum + best, err
}

// keyedMap shows that indexing a map by the job index does not help:
// concurrent map stores fault regardless of key.
func keyedMap(ctx context.Context) (map[int]int, error) {
	m := map[int]int{}
	_, _, err := runner.Sweep(ctx, 4, 8, func(ctx context.Context, i int) (int, error) {
		m[i] = i // want:R10
		return 0, nil
	})
	return m, err
}

// suppressed documents a deliberate exception with the proof obligation
// in the reason.
func suppressed(ctx context.Context) (int, error) {
	total := 0
	_, _, err := runner.Sweep(ctx, 1, 4, func(ctx context.Context, i int) (int, error) {
		//lint:ignore R10 parallel is pinned to 1 by this call site; jobs run sequentially in the calling goroutine
		total += i
		return 0, nil
	})
	return total, err
}
