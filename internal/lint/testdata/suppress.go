// Fixture for the suppression machinery itself: both placements work,
// multiple rules per directive work, and a directive without a reason is
// reported as R0 instead of silently doing nothing.
package fixture6

import "time"

func trailing() time.Time {
	return time.Now() //lint:ignore R2 fixture: trailing placement
}

func above() time.Time {
	//lint:ignore R2 fixture: standalone placement on the line above
	return time.Now()
}

func multiRule() time.Duration {
	//lint:ignore R2,R4 fixture: one directive, several rules
	d := time.Since(time.Now())
	return d
}

// The directive below is malformed (no reason); the test expects R0 on its
// line, located by the MALFORMEDFIXTURE token, and the time.Now it fails
// to suppress still fires.
//
//lint:ignore MALFORMEDFIXTURE
func malformed() time.Time {
	return time.Now() // want:R2
}
