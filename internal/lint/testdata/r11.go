// Fixture for R11 prediction-stack-layering. Loaded by lint_test.go
// under an in-scope module path (internal/staticmodel/...) where the
// simulator imports below must each be flagged, and under an
// out-of-scope path (internal/experiments/...) where the same file is
// clean — experiments is the sanctioned adapter layer.
package fixture

import (
	"repro/internal/accel" // prediction-stack-safe: shared leaf vocabulary
	"repro/internal/bpred" // want:R11
	"repro/internal/mem"   // want:R11
	"repro/internal/sim"   // want:R11
)

// use keeps every import live; the rule fires on the import declaration
// itself, not on use sites.
var use = []any{
	sim.HighPerfConfig(),
	mem.DefaultHierarchy(),
	bpred.NewBimodal(10),
	accel.LT,
}
