// Fixture for R9's device-snapshot sub-check. Posed as a package under
// internal/accel, it defines three snapshottable devices: one that
// captures and restores everything (clean), one that forgets a counter on
// both sides (two diagnostics), and one whose scratch field carries an
// exemption manifest. A fourth type mutates a field but implements no
// snapshot pair, so it is outside the checkpoint protocol and ignored.
package fixturedev

import "encoding/binary"

// Clean captures both counters it mutates; configuration (Latency) is
// constructor-set and correctly absent from the frame.
type Clean struct {
	Latency     int
	Invocations uint64
	Words       uint64
}

func (d *Clean) Invoke(words uint64) {
	d.Invocations++
	d.Words += words
}

func (d *Clean) SnapshotState() []byte {
	var b []byte
	b = binary.LittleEndian.AppendUint64(b, d.Invocations)
	b = binary.LittleEndian.AppendUint64(b, d.Words)
	return b
}

func (d *Clean) RestoreState(data []byte) error {
	d.Invocations = binary.LittleEndian.Uint64(data)
	d.Words = binary.LittleEndian.Uint64(data[8:])
	return nil
}

// Leaky bumps Dropped in Invoke but its frame only carries Invocations:
// the counter silently diverges across checkpoint forks.
type Leaky struct {
	Invocations uint64
	Dropped     uint64
}

func (d *Leaky) Invoke() {
	d.Invocations++
	d.Dropped += 2
}

func (d *Leaky) SnapshotState() []byte { // want:R9
	return binary.LittleEndian.AppendUint64(nil, d.Invocations)
}

func (d *Leaky) RestoreState(data []byte) error { // want:R9
	d.Invocations = binary.LittleEndian.Uint64(data)
	return nil
}

// Exempted mutates Scratch but declares it per-invocation state, dead at
// any cycle boundary — the manifest keeps both sides quiet.
type Exempted struct {
	Invocations uint64
	Scratch     []uint64
}

//lint:exempt-field R9 Exempted.Scratch per-invocation scratch, dead at cycle boundaries

func (d *Exempted) Invoke(v uint64) {
	d.Invocations++
	d.Scratch = append(d.Scratch[:0], v)
}

func (d *Exempted) SnapshotState() []byte {
	return binary.LittleEndian.AppendUint64(nil, d.Invocations)
}

func (d *Exempted) RestoreState(data []byte) error {
	d.Invocations = binary.LittleEndian.Uint64(data)
	return nil
}

// Stateless mutates a counter but has no snapshot pair: it is not in the
// checkpoint protocol (the simulator refuses to checkpoint it once
// invoked), so this audit has nothing to say about it.
type Stateless struct {
	Calls uint64
}

func (d *Stateless) Invoke() { d.Calls++ }
