// Command tcasim deliberately omits the Gamma registration: the CLI
// surface R13 must report as missing.
package main

import "fmt"

func main() {
	fmt.Println("no workloads registered")
}
