module r13broken

go 1.22
