// Package serve wires Gamma into the wire format, so the serve surface
// is present.
package serve

import (
	"fmt"

	"r13broken/internal/workload"
)

// Spec is the wire request.
type Spec struct {
	Kind string
	Lat  uint64
}

// Build constructs the named workload.
func (s Spec) Build() (*workload.Workload, error) {
	if s.Kind == "gamma" {
		return workload.Gamma(s.Lat), nil
	}
	return nil, fmt.Errorf("serve: unknown kind %q", s.Kind)
}
