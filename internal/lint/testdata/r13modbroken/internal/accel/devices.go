// Package accel declares a half-wired device family: Gamma has a
// workload constructor with a DeviceKey and a serve wire kind, but is
// missing its RestoreState (so the snapshot pair is incomplete) and is
// never registered in cmd/tcasim. R13 must report both gaps in one
// diagnostic anchored at the type declaration.
package accel

import "r13broken/internal/isa"

// Gamma is the half-wired family.
type Gamma struct{ lat uint64 } // want:R13

// NewGamma builds a Gamma with a fixed compute latency.
func NewGamma(lat uint64) *Gamma { return &Gamma{lat: lat} }

func (d *Gamma) Name() string { return "gamma" }

func (d *Gamma) Invoke(call isa.AccelCall, mem isa.WordReader) isa.AccelResult {
	return isa.AccelResult{Value: call.Args[0] + d.lat, Latency: int(d.lat)}
}

func (d *Gamma) SnapshotState() []uint64 { return []uint64{d.lat} }
