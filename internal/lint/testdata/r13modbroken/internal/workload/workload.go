// Package workload gives Gamma its constructor and canonical key —
// these two surfaces are wired; the snapshot pair and the tcasim
// registration are not.
package workload

import (
	"fmt"

	"r13broken/internal/accel"
	"r13broken/internal/isa"
)

// Workload is the constructor product.
type Workload struct {
	Name      string
	DeviceKey string
	NewDevice func() isa.AccelDevice
}

// Gamma wires the half-finished family.
func Gamma(lat uint64) *Workload {
	return &Workload{
		Name:      "gamma",
		DeviceKey: fmt.Sprintf("gamma:lat=%d", lat),
		NewDevice: func() isa.AccelDevice { return accel.NewGamma(lat) },
	}
}
