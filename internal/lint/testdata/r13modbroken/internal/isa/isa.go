// Package isa mirrors the accelerator contract shapes for the broken
// registry fixture module.
package isa

// AccelCall carries the operand values of an accelerated instruction.
type AccelCall struct {
	Kind int64
	Args [3]uint64
}

// AccelResult describes one accelerator invocation.
type AccelResult struct {
	Value   uint64
	Latency int
}

// WordReader is the memory view a device reads during an invocation.
type WordReader interface {
	Load(addr uint64) uint64
	LoadFloat(addr uint64) float64
}

// AccelDevice is a tightly-coupled accelerator.
type AccelDevice interface {
	Name() string
	Invoke(call AccelCall, mem WordReader) AccelResult
}
