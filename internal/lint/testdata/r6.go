// Fixture for R6 core-now-write. Loaded under internal/sim/... where the
// rule applies; the same file posed under another tree must report
// nothing. The local Core mirrors the simulator's: a `now` clock plus the
// three sanctioned writer methods.
package fixture7

// Core stands in for the simulator core; only the field names matter.
type Core struct {
	now   int64
	stats struct{ Cycles int64 }
}

// runLoop is a sanctioned clock writer: the tick loop increment.
func (c *Core) runLoop(maxCycles int64) {
	for c.now < maxCycles {
		c.step()
		c.now++
	}
}

// fastForward is the other sanctioned writer: the event-horizon jump.
func (c *Core) fastForward(h int64) {
	if h > c.now {
		c.now = h
	}
}

// restoreFrom is the third sanctioned writer: checkpoint restore sets the
// clock once while the pipeline is empty.
func (c *Core) restoreFrom(at int64) {
	c.now = at
}

// Run drives runLoop and is no longer sanctioned itself.
func (c *Core) Run(maxCycles int64) {
	c.runLoop(maxCycles)
	c.now = maxCycles // want:R6
}

// step only reads the clock, which any stage may do.
func (c *Core) step() {
	c.stats.Cycles = c.now
}

// rewind is not sanctioned, whatever the spelling of the write.
func (c *Core) rewind() {
	c.now = 0         // want:R6
	c.now--           // want:R6
	c.now += 2        // want:R6
	c.now, _ = 3, "x" // want:R6
}

// helper catches writes through a local variable, not just receivers.
func helper(c *Core) {
	c.now++ // want:R6
}

// notTheCore has a now field too, but is not a Core: no reports.
type notTheCore struct{ now int64 }

func (n *notTheCore) bump() {
	n.now++
}

// suppressed documents a deliberate exception.
func suppressed(c *Core) {
	//lint:ignore R6 fixture: demonstrates a justified exception
	c.now = 7
}
