// Package serve mirrors the wire surface: Spec.Kind selects a workload
// family by name, the way scenariod clients request devices.
package serve

import (
	"fmt"

	"r13fix/internal/workload"
)

// Spec is the wire request.
type Spec struct {
	Kind  string
	Lat   uint64
	Chunk int
}

// Build constructs the named workload.
func (s Spec) Build() (*workload.Workload, error) {
	switch s.Kind {
	case "alpha":
		return workload.Alpha(s.Lat), nil // r13drop:alpha-serve
	case "beta":
		return workload.Beta(s.Chunk), nil
	}
	return nil, fmt.Errorf("serve: unknown kind %q", s.Kind)
}
