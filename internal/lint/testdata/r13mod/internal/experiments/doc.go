// Package experiments pairs engine families with the analytical model,
// mirroring the real module's sweep surface. The sweep itself lives in
// sweep.go so the registry tests can delete that one file and watch R13
// notice the missing EngineOccupancy pairing.
package experiments
