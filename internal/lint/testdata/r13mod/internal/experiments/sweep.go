package experiments

import (
	"r13fix/internal/accel"
	"r13fix/internal/isa"
	"r13fix/internal/staticmodel"
)

// BetaSweep pairs the Beta engine family with the analytical model:
// occupancy of a 16-word stream across chunk widths.
func BetaSweep(width int) []float64 {
	m := staticmodel.Machine{Width: width}
	var out []float64
	for chunk := 1; chunk <= 4; chunk++ {
		dev := accel.NewBeta(chunk)
		res := dev.Invoke(isa.AccelCall{Args: [3]uint64{0, 16, 0}}, nil)
		out = append(out, m.EngineOccupancy(res.Schedule))
	}
	return out
}
