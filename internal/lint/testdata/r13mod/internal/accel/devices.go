// Package accel declares the fixture's two device families: Alpha is a
// scalar-latency device, Beta an engine family whose Invoke builds a
// phased schedule. Both are fully wired into every integration surface;
// the registry tests delete one surface at a time (the trailing
// r13drop: tags mark the deletable lines) and assert R13 notices.
package accel

import "r13fix/internal/isa"

// Alpha is the scalar family.
type Alpha struct{ lat uint64 }

// NewAlpha builds an Alpha with a fixed compute latency.
func NewAlpha(lat uint64) *Alpha { return &Alpha{lat: lat} }

func (d *Alpha) Name() string { return "alpha" }

func (d *Alpha) Invoke(call isa.AccelCall, mem isa.WordReader) isa.AccelResult {
	return isa.AccelResult{Value: call.Args[0] + d.lat, Latency: int(d.lat)}
}

func (d *Alpha) SnapshotState() []uint64     { return []uint64{d.lat} } // r13drop:alpha-snapshot
func (d *Alpha) RestoreState(words []uint64) { d.lat = words[0] }       // r13drop:alpha-snapshot

// Beta is the engine family: its schedule chunks the word count.
type Beta struct{ chunk int }

// NewBeta builds a Beta streaming the given chunk width.
func NewBeta(chunk int) *Beta { return &Beta{chunk: chunk} }

func (d *Beta) Name() string { return "beta" }

func (d *Beta) Invoke(call isa.AccelCall, mem isa.WordReader) isa.AccelResult {
	words := int(call.Args[1])
	var sched []isa.AccelPhase
	for words > 0 {
		n := d.chunk
		if words < n {
			n = words
		}
		sched = append(sched, isa.AccelPhase{Compute: n})
		words -= n
	}
	return isa.AccelResult{Value: call.Args[0], Schedule: sched}
}

func (d *Beta) SnapshotState() []uint64     { return []uint64{uint64(d.chunk)} }
func (d *Beta) RestoreState(words []uint64) { d.chunk = int(words[0]) }
