// Package staticmodel mirrors the analytical model's engine-occupancy
// surface, which R13 requires engine families to be paired with.
package staticmodel

import "r13fix/internal/isa"

// Machine is the analytical machine description.
type Machine struct {
	Width int
}

// EngineOccupancy estimates the occupancy in cycles of an engine
// schedule on this machine.
func (m Machine) EngineOccupancy(sched []isa.AccelPhase) float64 {
	var total float64
	for _, ph := range sched {
		total += float64(ph.Compute) / float64(m.Width)
	}
	return total
}
