// Package workload pairs each device family with a canonical identity,
// mirroring the real module's constructor surface.
package workload

import (
	"fmt"

	"r13fix/internal/accel"
	"r13fix/internal/isa"
)

// Workload is the constructor product: a device factory plus the
// canonical DeviceKey the scenario store caches under.
type Workload struct {
	Name      string
	DeviceKey string
	NewDevice func() isa.AccelDevice
}

func keyAlpha(lat uint64) string { return fmt.Sprintf("alpha:lat=%d", lat) }
func keyBeta(chunk int) string   { return fmt.Sprintf("beta:chunk=%d", chunk) }

// Alpha wires the scalar family.
func Alpha(lat uint64) *Workload { // r13drop:alpha-workload
	return &Workload{ // r13drop:alpha-workload
		Name:      "alpha",                                               // r13drop:alpha-workload
		DeviceKey: keyAlpha(lat),                                         // r13drop:alpha-key r13drop:alpha-workload
		NewDevice: func() isa.AccelDevice { return accel.NewAlpha(lat) }, // r13drop:alpha-workload
	} // r13drop:alpha-workload
} // r13drop:alpha-workload

// Beta wires the engine family.
func Beta(chunk int) *Workload {
	return &Workload{
		Name:      "beta",
		DeviceKey: keyBeta(chunk),
		NewDevice: func() isa.AccelDevice { return accel.NewBeta(chunk) },
	}
}
