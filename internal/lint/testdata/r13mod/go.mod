module r13fix

go 1.22
