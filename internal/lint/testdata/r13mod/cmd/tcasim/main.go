// Command tcasim mirrors the real CLI's registration switch — the
// surface R13 requires every family to appear in.
package main

import (
	"fmt"
	"os"

	"r13fix/internal/workload"
)

func main() {
	var w *workload.Workload
	switch os.Args[1] {
	case "alpha":
		w = workload.Alpha(8) // r13drop:alpha-tcasim
	case "beta":
		w = workload.Beta(4)
	default:
		fmt.Fprintln(os.Stderr, "unknown workload")
		os.Exit(2)
	}
	_ = w
}
