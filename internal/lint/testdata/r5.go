// Fixture for R5 config-mutation. Loaded under internal/experiments/...
// (outside the defining packages) so pointer writes to the shared config
// structs are illegal.
package fixture5

import (
	"repro/internal/core"
	"repro/internal/sim"
)

type job struct {
	Cfg *sim.Config
}

func mutatePointer(cfg *sim.Config, p *core.Params) {
	cfg.ROBSize = 128       // want:R5
	cfg.Memory.L1D.Ways = 4 // want:R5
	p.IPC = 1.5             // want:R5
	p.ROBSize++             // want:R5
}

// mutateNested catches pointers buried in a selector chain.
func mutateNested(j job) {
	j.Cfg.IssueWidth = 2 // want:R5
}

// valueCopy is the sanctioned pattern: copy, then specialize the copy.
func valueCopy(cfg sim.Config) sim.Config {
	mcfg := cfg
	mcfg.ROBSize = 64
	mcfg.Name = "copy"
	return mcfg
}

// rebind only repoints the pointer variable; it mutates nothing shared.
func rebind(cfg *sim.Config, other *sim.Config) *sim.Config {
	cfg = other
	return cfg
}

// suppressed documents a deliberate in-place edit.
func suppressed(cfg *sim.Config) {
	//lint:ignore R5 fixture: demonstrates a justified exception
	cfg.Name = "patched"
}
