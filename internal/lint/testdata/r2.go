// Fixture for R2 no-wallclock-in-sim. Loaded once under an in-scope path
// (internal/sim/...) where the markers apply, and once under cmd/ where
// the same calls are legal and nothing may be reported.
package fixture2

import "time"

func wall() time.Duration {
	start := time.Now()      // want:R2
	_ = time.Until(start)    // want:R2
	return time.Since(start) // want:R2
}

// simulatedTime is fine: cycle arithmetic, no host clock.
func simulatedTime(cycles int64) int64 { return cycles + 1 }

func suppressedWall() time.Time {
	//lint:ignore R2 fixture: demonstrates a justified exception
	return time.Now()
}
