// Fixture for R8 (digest-field-coverage). Posed as a package under
// internal/scenario, it defines local stand-ins for the spec types and
// the digest encoder. Config.IQSize and LSQSize are deliberately never
// encoded; Name is erased by Canonical and Note carries an exemption
// manifest entry, so neither of those may be reported.
package fixture8

type Config struct {
	Name    string // erased by Canonical: fine
	Width   int    // encoded: fine
	IQSize  int    // never encoded -> reported (on the anchor line below)
	LSQSize int    // never encoded -> reported (same diagnostic)
	Note    string // exempted: fine
	hidden  int    // unexported: ignored
}

//lint:exempt-field R8 Config.Note presentation only, never affects simulated results

// Canonical erases Name (zero literal) and normalizes Width (non-zero
// assignment — must NOT count as erasure, Width stays encoded).
func (c Config) Canonical() Config {
	c.Name = ""
	if c.Width == 0 {
		c.Width = 4
	}
	return c
}

type Spec struct {
	Config    Config
	MaxCycles int64
}

type encoder struct{ sum uint64 }

// config is the first consumer declaration, so aggregated per-type
// diagnostics anchor here.
func (e *encoder) config(c Config) { // want:R8
	cc := c.Canonical()
	e.add(uint64(cc.Width))
}

func (e *encoder) add(v uint64) { e.sum += v }

func (sp Spec) Digest() uint64 {
	e := &encoder{}
	e.config(sp.Config)
	e.add(uint64(sp.MaxCycles))
	return e.sum
}
