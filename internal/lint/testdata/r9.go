// Fixture for R9 (clone-and-emit-coverage). Posed as a package under
// internal/sim, it defines a local Stats stand-in plus three clone
// shapes: a method that aliases a slice, a helper that forgets a deep
// copy, and one with no whole-struct copy. Negative cases: Notes is
// deep-copied via append, Trace in cloneStats is deep-copied through a
// keyed element-copy helper, Scratch and Trace carry emission
// exemptions, and the unexported field is ignored throughout.
package fixture9

import "strconv"

type Event struct{ Seq uint64 }

type Stats struct {
	Cycles  int64
	Notes   []string
	Trace   []Event
	Scratch int64
	hidden  int64
	Hook    func() // want:R9 (func fields cannot round-trip the JSON store)
}

//lint:exempt-field R9 Stats.Scratch internal workspace, reported by external tooling
//lint:exempt-field R9 Stats.Trace event dump rendered elsewhere, too long for String

// String emits Cycles and Notes; Scratch and Trace are exempted above,
// so nothing is missing and no emit diagnostic may appear here.
func (s Stats) String() string {
	out := strconv.FormatInt(s.Cycles, 10)
	for _, n := range s.Notes {
		out += " " + n
	}
	return out
}

// Clone deep-copies Notes correctly but aliases Trace.
func (s Stats) Clone() Stats {
	out := s
	out.Notes = append([]string(nil), s.Notes...)
	out.Trace = s.Trace // want:R9
	return out
}

// cloneStats deep-copies Trace through a helper (accepted) but forgets
// Notes entirely, relying on the aliasing whole-struct copy.
func cloneStats(st Stats) Stats { // want:R9
	out := st
	out.Trace = cloneEvents(st.Trace)
	return out
}

// cloneBad has no whole-struct copy: the reference fields are handled,
// but Cycles, Scratch and Hook silently zero. (Exemptions cover
// emission only — clone exhaustiveness is never exemptible.)
func cloneBad(st Stats) Stats { // want:R9
	var out Stats
	out.Notes = append([]string(nil), st.Notes...)
	out.Trace = cloneEvents(st.Trace)
	return out
}

// cloneEvents is a keyed element-copy helper; its parameter is not the
// root type, so it is not itself audited as a clone function.
func cloneEvents(evs []Event) []Event {
	out := make([]Event, len(evs))
	for i, e := range evs {
		out[i] = e
	}
	return out
}
