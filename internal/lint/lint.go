// Package lint is a from-scratch static analyzer for this repository's
// determinism and simulator-invariant contracts, built only on the standard
// library's go/ast, go/parser and go/types.
//
// PR 1's parallel experiment engine requires every sweep to be bit-identical
// regardless of worker count. DESIGN.md documents that contract; this package
// enforces it at the source level: all randomness flows through seeded
// *rand.Rand values, no wall-clock reads inside simulation paths, no map
// iteration order leaking into results, no float equality in model code, and
// no mutation of shared configuration after simulators are constructed.
//
// The framework loads and type-checks packages offline (no network, no
// module cache) and applies Rules, each of which reports Diagnostics.
// Diagnostics can be suppressed at the source line with
//
//	//lint:ignore R3 reason why this site is order-independent
//
// placed on the offending line or on the line directly above it. The reason
// is mandatory; a malformed ignore comment is itself reported (rule R0).
// See LINT.md at the repository root for the rule catalog.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned for file:line:col output. Chain
// is non-nil for interprocedural findings: the call-graph witness from
// the reported site down to the direct source (simlint -explain prints
// it hop by hop; the compact form is already part of Message).
type Diagnostic struct {
	Rule    string
	Pos     token.Position
	Message string
	Chain   []ChainHop
}

// String renders the conventional compiler-style line.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Rule)
}

// Rule is one analysis pass. Applies filters by module-relative package
// path ("internal/sim"); a nil Applies runs everywhere.
type Rule struct {
	ID      string // stable short identifier, e.g. "R1"
	Name    string // human slug, e.g. "no-global-rand"
	Doc     string // one-line rationale
	Applies func(relPath string) bool
	Check   func(pass *Pass)
}

// Pass gives a Rule access to one type-checked package, the module-wide
// tier-3 index, and a reporter.
type Pass struct {
	Pkg    *Package
	Idx    *Index
	rule   *Rule
	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Rule:    p.rule.ID,
		Pos:     p.Pkg.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
	})
}

// ReportChain records an interprocedural diagnostic carrying its
// call-graph witness chain.
func (p *Pass) ReportChain(pos token.Pos, chain []ChainHop, format string, args ...any) {
	p.report(Diagnostic{
		Rule:    p.rule.ID,
		Pos:     p.Pkg.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
		Chain:   chain,
	})
}

// Run applies every rule to every package, drops suppressed findings, and
// returns the remainder sorted by file, line, column, rule. The sort keeps
// output stable no matter how packages or rules are ordered — the analyzer
// holds itself to the determinism contract it enforces.
func Run(pkgs []*Package, rules []*Rule) []Diagnostic {
	idx := buildIndex(pkgs)
	var diags []Diagnostic
	for _, pkg := range pkgs {
		sup, supDiags := suppressions(pkg)
		diags = append(diags, supDiags...)
		for _, r := range rules {
			if r.Applies != nil && !r.Applies(pkg.Rel) {
				continue
			}
			pass := &Pass{
				Pkg:  pkg,
				Idx:  idx,
				rule: r,
				report: func(d Diagnostic) {
					if !sup.covers(d.Rule, d.Pos) {
						diags = append(diags, d)
					}
				},
			}
			r.Check(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return diags
}

// suppressionSet maps "file:line" to the rule IDs ignored on that line.
type suppressionSet map[string]map[string]bool

func (s suppressionSet) covers(rule string, pos token.Position) bool {
	rules := s[fmt.Sprintf("%s:%d", pos.Filename, pos.Line)]
	return rules[rule]
}

const (
	ignorePrefix = "//lint:ignore"
	exemptPrefix = "//lint:exempt-field"
)

// parseIgnore splits a well-formed //lint:ignore comment into its rule
// IDs and reason. ok is false when the directive is malformed.
func parseIgnore(text string) (rules []string, reason string, ok bool) {
	fields := strings.Fields(strings.TrimPrefix(text, ignorePrefix))
	if len(fields) < 2 {
		return nil, "", false
	}
	return strings.Split(fields[0], ","), strings.Join(fields[1:], " "), true
}

// suppressions scans a package's comments for //lint:ignore directives.
// A directive names one or more comma-separated rule IDs and a mandatory
// free-text reason; it covers its own line and the line directly below,
// so both trailing and standalone-above placements work. Malformed
// directives — of either //lint:ignore or the coverage rules'
// //lint:exempt-field form — are reported under rule R0 so they cannot
// silently fail to suppress or exempt.
func suppressions(pkg *Package) (suppressionSet, []Diagnostic) {
	set := suppressionSet{}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := pkg.Fset.Position(c.Pos())
				if strings.HasPrefix(c.Text, exemptPrefix) {
					if _, ok := parseExemptField(c.Text); !ok {
						diags = append(diags, Diagnostic{
							Rule:    "R0",
							Pos:     pos,
							Message: "malformed lint:exempt-field: want `//lint:exempt-field RULE [pkg.]Type.Field reason`",
						})
					}
					continue
				}
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rules, _, ok := parseIgnore(c.Text)
				if !ok {
					diags = append(diags, Diagnostic{
						Rule:    "R0",
						Pos:     pos,
						Message: "malformed lint:ignore: want `//lint:ignore RULE[,RULE...] reason`",
					})
					continue
				}
				for _, id := range rules {
					for _, line := range []int{pos.Line, pos.Line + 1} {
						key := fmt.Sprintf("%s:%d", pos.Filename, line)
						if set[key] == nil {
							set[key] = map[string]bool{}
						}
						set[key][id] = true
					}
				}
			}
		}
	}
	return set, diags
}

// Directive is one well-formed //lint:ignore comment, exposed so tooling
// (simlint -json, the suppression census in scripts/check.sh) can watch
// suppression creep.
type Directive struct {
	Rules  []string // rule IDs the directive suppresses
	Pos    token.Position
	Reason string
}

// IgnoreDirectives collects every well-formed //lint:ignore directive in
// the given packages, sorted by file then line so the census output is
// deterministic. Malformed directives are excluded — they appear as R0
// diagnostics instead.
func IgnoreDirectives(pkgs []*Package) []Directive {
	var out []Directive
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, ignorePrefix) {
						continue
					}
					rules, reason, ok := parseIgnore(c.Text)
					if !ok {
						continue
					}
					out = append(out, Directive{
						Rules:  rules,
						Pos:    pkg.Fset.Position(c.Pos()),
						Reason: reason,
					})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return out
}

// ExemptDirective is one well-formed //lint:exempt-field manifest entry,
// exposed for the same census tooling as IgnoreDirectives: every field
// exemption is a standing claim ("this field legitimately never reaches
// the digest/clone path") that needs the same drift watching as
// suppressions.
type ExemptDirective struct {
	Rule   string // rule ID the exemption scopes to (R8, R9)
	Type   string // "Type" or "pkg.Type" as written
	Field  string
	Pos    token.Position
	Reason string
}

// ExemptDirectives collects every well-formed //lint:exempt-field
// directive in the given packages, sorted by file then line. Malformed
// directives are excluded — they appear as R0 diagnostics instead.
func ExemptDirectives(pkgs []*Package) []ExemptDirective {
	var out []ExemptDirective
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, exemptPrefix) {
						continue
					}
					ef, ok := parseExemptField(c.Text)
					if !ok {
						continue
					}
					out = append(out, ExemptDirective{
						Rule:   ef.Rule,
						Type:   ef.Type,
						Field:  ef.Field,
						Pos:    pkg.Fset.Position(c.Pos()),
						Reason: ef.Reason,
					})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return out
}

// eachFile runs fn over every file of the pass's package.
func (p *Pass) eachFile(fn func(*ast.File)) {
	for _, f := range p.Pkg.Files {
		fn(f)
	}
}
