package lint

import (
	"go/types"
	"strings"
)

// ruleRegistry (R13) is the machine-checked integration contract for
// device families: a family declared in internal/accel must statically
// appear in every surface the rest of the system wires devices through.
// PR 9's device-engine layer made "add a device" a multi-file checklist
// (DESIGN.md); this rule replaces the reviewer's copy of that checklist
// so the next family (the SNAX-style programmable streamer on the
// roadmap) cannot land half-wired. The surfaces:
//
//   - a SnapshotState/RestoreState pair, so the checkpoint codec can
//     round-trip the device (always checkable: the methods live on the
//     family type itself);
//   - an exported internal/workload constructor that reaches the family
//     and stamps a canonical DeviceKey — the identity the scenario
//     store caches under;
//   - the serve wire format (internal/serve reaches the family through
//     WorkloadSpec.Build), so scenariod clients can request it;
//   - a cmd/tcasim registration, so the CLI can run it;
//   - for engine families only (Invoke trees that build isa.AccelPhase
//     schedules): an internal/experiments sweep that pairs the family
//     with staticmodel's EngineOccupancy term, keeping the analytical
//     fast path honest about the new schedule shape.
//
// Reachability is the tier-3 transitive "references the family type or
// a constructor returning it" fact, so helper indirection (kvstore's
// newKVDevice) counts. Surfaces whose host package is outside the
// analysis universe are skipped silently: `simlint ./internal/accel`
// checks what it can see, and only the full `simlint ./...` run (CI,
// make lint) enforces the whole contract.
var ruleRegistry = &Rule{
	ID:   "R13",
	Name: "device-registry-consistency",
	Doc:  "a device family must appear in every integration surface: snapshot pair, workload DeviceKey, serve wire kind, tcasim registration, and (engines) a staticmodel EngineOccupancy sweep",
	Applies: func(rel string) bool {
		return rel == "internal/accel"
	},
	Check: checkRegistry,
}

func checkRegistry(pass *Pass) {
	ix := pass.Idx
	for _, named := range ix.familiesIn(pass.Pkg) {
		var missing []string

		if !hasMethod(named, "SnapshotState") || !hasMethod(named, "RestoreState") {
			missing = append(missing, "a SnapshotState/RestoreState pair for the checkpoint codec")
		}

		if wp := ix.byRel["internal/workload"]; wp != nil {
			var anchors []*funcInfo
			for _, fi := range ix.funcsIn(wp) {
				if fi.fn.Exported() && fi.sum.families[named] {
					anchors = append(anchors, fi)
				}
			}
			if len(anchors) == 0 {
				missing = append(missing, "an exported internal/workload constructor that reaches the family")
			} else {
				keyed := false
				for _, fi := range anchors {
					if fi.sum.refsDeviceKey {
						keyed = true
						break
					}
				}
				if !keyed {
					missing = append(missing, "a canonical DeviceKey stamped by its workload constructor")
				}
			}
		}

		if servePkgs := ix.pkgsUnder("internal/serve"); len(servePkgs) > 0 && !anyFuncReaches(ix, servePkgs, named) {
			missing = append(missing, "a serve wire kind (internal/serve must reach the family)")
		}

		if tp := ix.byRel["cmd/tcasim"]; tp != nil && !anyFuncReaches(ix, []*Package{tp}, named) {
			missing = append(missing, "a cmd/tcasim registration")
		}

		// Engine families build phased schedules; their occupancy shape
		// must be represented in an experiments sweep that consults the
		// analytical model.
		if fi := ix.funcOf(deviceInvoke(named)); fi != nil && fi.sum.refsAccelPhase {
			if ep := ix.byRel["internal/experiments"]; ep != nil {
				ok := false
				for _, efi := range ix.funcsIn(ep) {
					if efi.sum.families[named] && efi.sum.callsEngineOccupancy {
						ok = true
						break
					}
				}
				if !ok {
					missing = append(missing, "an internal/experiments sweep pairing the engine family with staticmodel EngineOccupancy")
				}
			}
		}

		if len(missing) > 0 {
			pass.Reportf(named.Obj().Pos(),
				"device family %s is not wired into every integration surface: missing %s (see LINT.md R13)",
				named.Obj().Name(), strings.Join(missing, "; "))
		}
	}
}

// pkgsUnder returns the universe packages at or beneath the given
// module-relative prefix, in deterministic (path-sorted) order.
func (ix *Index) pkgsUnder(prefix string) []*Package {
	var out []*Package
	for _, pkg := range ix.pkgs {
		if underAny(pkg.Rel, prefix) {
			out = append(out, pkg)
		}
	}
	return out
}

// anyFuncReaches reports whether any function declared in the given
// packages transitively references the family.
func anyFuncReaches(ix *Index, pkgs []*Package, named *types.Named) bool {
	for _, pkg := range pkgs {
		for _, fi := range ix.funcsIn(pkg) {
			if fi.sum.families[named] {
				return true
			}
		}
	}
	return false
}

// hasMethod reports whether the named type (or its pointer) declares or
// promotes a method with the given name.
func hasMethod(named *types.Named, name string) bool {
	obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, named.Obj().Pkg(), name)
	_, ok := obj.(*types.Func)
	return ok
}
