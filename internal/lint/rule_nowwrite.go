package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// nowWriterMethods are the only (*Core) methods allowed to advance the
// simulator clock: the tick loop's increment in runLoop, the event-horizon
// jump in fastForward, and checkpoint restore in restoreFrom (which sets the
// clock once, before any stage runs, to the cycle the snapshot was taken
// at). Every other writer would bypass the "skipping is legal iff no stage
// can act before the horizon" invariant documented in DESIGN.md — a stage
// that moved time itself could slide events past a horizon already computed
// from the old clock.
var nowWriterMethods = map[string]bool{
	"runLoop":     true,
	"fastForward": true,
	"restoreFrom": true,
}

// ruleNowWrite (R6) flags writes to the `now` field of a sim Core outside
// the three sanctioned clock writers. Reads are unrestricted — every stage
// consults the clock — but time must only move through the tick loop or
// the event-horizon jump so fast-forwarded and cycle-by-cycle runs stay
// bit-identical (checkpoint restore excepted: it moves the clock exactly
// once while the pipeline is empty).
var ruleNowWrite = &Rule{
	ID:   "R6",
	Name: "core-now-write",
	Doc:  "Core.now advances only in (*Core).runLoop, (*Core).fastForward and (*Core).restoreFrom; other writers break the event-horizon invariant",
	Applies: func(rel string) bool {
		return underAny(rel, "internal/sim")
	},
	Check: func(pass *Pass) {
		pass.eachFile(func(f *ast.File) {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				// Sanctioned writers are skipped wholesale, function
				// literals within them included: a helper closure inside
				// Run is still the tick loop.
				if nowWriterMethods[fd.Name.Name] && recvIsSimCore(pass, fd) {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					switch st := n.(type) {
					case *ast.AssignStmt:
						for _, lhs := range st.Lhs {
							checkNowWrite(pass, lhs)
						}
					case *ast.IncDecStmt:
						checkNowWrite(pass, st.X)
					}
					return true
				})
			}
		})
	},
}

// checkNowWrite reports lhs if it writes the now field of a sim Core.
func checkNowWrite(pass *Pass, lhs ast.Expr) {
	sel, ok := lhs.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "now" {
		return
	}
	if tv, ok := pass.Pkg.Info.Types[sel.X]; ok && isSimCore(tv.Type) {
		pass.Reportf(lhs.Pos(),
			"writes Core.now outside (*Core).runLoop / (*Core).fastForward / (*Core).restoreFrom; the clock may only move through the tick loop, the event-horizon jump, or checkpoint restore (DESIGN.md)")
	}
}

// recvIsSimCore reports whether fd's receiver is a sim Core (by value or
// pointer).
func recvIsSimCore(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) != 1 {
		return false
	}
	tv, ok := pass.Pkg.Info.Types[fd.Recv.List[0].Type]
	return ok && isSimCore(tv.Type)
}

// isSimCore reports whether t is (a pointer to) a named type Core defined
// in a package under internal/sim. Matching by path fragment keeps the
// rule independent of the module name, which fixture packages remap.
func isSimCore(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Name() != "Core" {
		return false
	}
	p := obj.Pkg().Path()
	return strings.HasSuffix(p, "internal/sim") || strings.Contains(p, "internal/sim/")
}
