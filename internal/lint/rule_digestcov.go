package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// digestRoots are the struct types whose transitive exported field set
// must be covered by the canonical digest encoder. A field reachable
// from one of these that never reaches the encoder makes two different
// runs digest-equal — the cache then serves one run's Stats for the
// other, which is the silent-aliasing failure DESIGN.md's scenario
// section rules out. Each root is audited in the package that owns its
// encoder (auditUnder): the scenario digest encoder covers the spec
// types, and the sim checkpoint codec covers Checkpoint — a microarch
// field added to Core state but never serialized would silently zero on
// every resume-from-disk.
var digestRoots = []struct{ pkgSuffix, name, auditUnder string }{
	{"internal/sim", "Config", "internal/scenario"},
	{"internal/scenario", "Spec", "internal/scenario"},
	{"internal/scenario", "MeasureSpec", "internal/scenario"},
	{"internal/sim", "Checkpoint", "internal/sim"},
}

// ruleDigestCov (R8) proves digest exhaustiveness: every exported field
// of the spec types — and of every module-internal struct reachable
// through their fields — must be (a) read by an encoder method or a
// Digest method, (b) erased to a zero value in a Canonical method
// (the documented "cannot influence results" list), or (c) named in a
// //lint:exempt-field R8 manifest directive with a reason.
var ruleDigestCov = &Rule{
	ID:   "R8",
	Name: "digest-field-coverage",
	Doc:  "every field reachable from sim.Config / scenario.Spec / scenario.MeasureSpec / sim.Checkpoint must reach its digest or checkpoint encoder, be erased by Canonical, or carry a //lint:exempt-field R8 manifest entry",
	Applies: func(rel string) bool {
		return underAny(rel, "internal/scenario", "internal/sim")
	},
	Check: checkDigestCoverage,
}

func checkDigestCoverage(pass *Pass) {
	// Consumers: the encoder's methods plus the Digest methods. Describe
	// and friends deliberately do not count — display code reading a
	// field proves nothing about its identity contribution.
	var consumers []*ast.FuncDecl
	pass.eachFile(func(f *ast.File) {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil {
				continue
			}
			if recvTypeName(fd) == "encoder" || fd.Name.Name == "Digest" {
				consumers = append(consumers, fd)
			}
		}
	})
	if len(consumers) == 0 {
		return // no encoder here (e.g. a sub-package); nothing to prove
	}
	anchor := consumers[0]
	for _, fd := range consumers {
		if fd.Pos() < anchor.Pos() {
			anchor = fd
		}
	}
	var roots []*types.Named
	for _, r := range digestRoots {
		if !underAny(pass.Pkg.Rel, r.auditUnder) {
			continue
		}
		if n := lookupNamed(pass, r.pkgSuffix, r.name); n != nil {
			roots = append(roots, n)
		}
	}
	if len(roots) == 0 {
		return
	}
	cov := newCoverage(pass)
	cov.addRoots(roots, nil)
	cov.collectExemptions("R8", append([]*Package{pass.Pkg}, cov.definingPackages()...))
	cov.collectErasures()
	for _, fd := range consumers {
		cov.recordReads(fd.Body)
	}
	for _, ct := range cov.orderedTypes() {
		missing := cov.missingFields(ct, nil)
		if len(missing) == 0 {
			continue
		}
		pass.Reportf(anchor.Pos(),
			"digest encoder never reads %s field(s) %s: two configs differing only there digest identically and alias in the result cache; encode them (and bump SchemeVersion), erase them in Canonical, or add `//lint:exempt-field R8 %s.<Field> <reason>`",
			ct.display(), strings.Join(missing, ", "), ct.named.Obj().Name())
	}
}

// recvTypeName returns the receiver's type name (pointer stripped), or "".
func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if s, ok := t.(*ast.StarExpr); ok {
		t = s.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// lookupNamed resolves a named type by name: first in the pass package's
// own scope (fixtures pose local stand-ins for the real types), then in
// any import whose path matches the module-relative package suffix.
func lookupNamed(pass *Pass, pkgSuffix, name string) *types.Named {
	if tn, ok := pass.Pkg.Types.Scope().Lookup(name).(*types.TypeName); ok {
		if n, ok := tn.Type().(*types.Named); ok {
			return n
		}
	}
	for _, imp := range pass.Pkg.Types.Imports() {
		p := imp.Path()
		if p != pkgSuffix && !strings.HasSuffix(p, "/"+pkgSuffix) {
			continue
		}
		if tn, ok := imp.Scope().Lookup(name).(*types.TypeName); ok {
			if n, ok := tn.Type().(*types.Named); ok {
				return n
			}
		}
	}
	return nil
}
