package lint

import "testing"

// BenchmarkSimlint measures a full analyzer run over the repository —
// loader construction, pattern expansion, parse + type-check of every
// package, tier-3 index construction (call graph, SCCs, summaries) and
// all rules. This is what `make lint` and the CI simlint job pay, so it
// rides the benchmark ledger (BENCH_PR10.json) like the simulator does.
func BenchmarkSimlint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		loader, err := NewLoader(".")
		if err != nil {
			b.Fatal(err)
		}
		paths, err := loader.Expand([]string{"./..."})
		if err != nil {
			b.Fatal(err)
		}
		var pkgs []*Package
		for _, p := range paths {
			pkg, err := loader.Load(p)
			if err != nil {
				b.Fatal(err)
			}
			pkgs = append(pkgs, pkg)
		}
		if diags := Run(pkgs, AllRules()); len(diags) != 0 {
			b.Fatalf("repository must be lint-clean, got %d diagnostics", len(diags))
		}
	}
}
