package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// AllRules returns the project rule set, in ID order. The catalog with
// rationale and suppression guidance lives in LINT.md.
func AllRules() []*Rule {
	return []*Rule{
		ruleGlobalRand,
		ruleWallClock,
		ruleMapRange,
		ruleFloatEq,
		ruleConfigMut,
		ruleNowWrite,
		ruleUnkeyedSpec,
		ruleDigestCov,
		ruleCloneCov,
		ruleParClosure,
		ruleLayering,
		ruleDevPurity,
		ruleRegistry,
		ruleCoreEscape,
	}
}

// RuleByID returns the rule with the given ID, or nil.
func RuleByID(id string) *Rule {
	for _, r := range AllRules() {
		if r.ID == id {
			return r
		}
	}
	return nil
}

// underAny reports whether a module-relative package path equals or sits
// beneath one of the given directory prefixes.
func underAny(rel string, prefixes ...string) bool {
	for _, p := range prefixes {
		if rel == p || strings.HasPrefix(rel, p+"/") {
			return true
		}
	}
	return false
}

// pkgFuncCall matches a call to a package-level function: it returns the
// selector name when fun is pkg.Name with pkg resolving to an import of
// one of the given paths.
func pkgFuncCall(pass *Pass, call *ast.CallExpr, pkgPaths ...string) (string, bool) {
	return pkgCallName(pass.Pkg, call, pkgPaths...)
}

// pkgCallName is pkgFuncCall without a Pass, for the tier-3 index.
func pkgCallName(pkg *Package, call *ast.CallExpr, pkgPaths ...string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := pkg.Info.Uses[id].(*types.PkgName)
	if !ok {
		return "", false
	}
	for _, p := range pkgPaths {
		if pn.Imported().Path() == p {
			return sel.Sel.Name, true
		}
	}
	return "", false
}

// namedPtrTo reports whether t is a pointer to a named type with the given
// name whose defining package path ends in pkgSuffix. Matching by suffix
// keeps rules independent of the module name, which fixture packages remap.
func namedPtrTo(t types.Type, pkgSuffix, name string) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Name() != name {
		return false
	}
	p := obj.Pkg().Path()
	return p == pkgSuffix || strings.HasSuffix(p, "/"+pkgSuffix)
}

// refsAnyObject reports whether node mentions any of the given objects.
func refsAnyObject(pass *Pass, node ast.Node, objs map[types.Object]bool) bool {
	return refsAnyObjectPkg(pass.Pkg, node, objs)
}

// refsAnyObjectPkg is refsAnyObject without a Pass, for the tier-3 index.
func refsAnyObjectPkg(pkg *Package, node ast.Node, objs map[types.Object]bool) bool {
	if node == nil || len(objs) == 0 {
		return false
	}
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pkg.Info.Uses[id]; obj != nil && objs[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}
