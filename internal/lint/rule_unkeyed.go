package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// canonicalSpecTypes are the structs whose field ORDER carries meaning
// beyond the source: sim.Config and the scenario specs feed the
// canonical digest encoder field by field, and every driver builds
// them. An unkeyed (positional) composite literal of one of these
// silently reassigns values when a field is inserted — the compiler
// stays happy while runs get mislabeled configurations and digests
// stop meaning what the caller thinks. Keyed literals turn the same
// evolution into a loud compile error or an obvious no-op.
var canonicalSpecTypes = []struct{ pkgSuffix, name, display string }{
	{"internal/sim", "Config", "sim.Config"},
	{"internal/scenario", "Spec", "scenario.Spec"},
	{"internal/scenario", "MeasureSpec", "scenario.MeasureSpec"},
}

// ruleUnkeyedSpec (R7) flags unkeyed composite literals of the
// canonical spec types, everywhere — including the defining packages,
// whose presets are exactly where a positional literal would rot
// first.
var ruleUnkeyedSpec = &Rule{
	ID:   "R7",
	Name: "unkeyed-spec-literal",
	Doc:  "sim.Config / scenario.Spec / scenario.MeasureSpec literals must use keyed fields; positional literals break silently when the canonical field set evolves",
	Applies: func(rel string) bool {
		return true
	},
	Check: func(pass *Pass) {
		pass.eachFile(func(f *ast.File) {
			ast.Inspect(f, func(n ast.Node) bool {
				lit, ok := n.(*ast.CompositeLit)
				if !ok {
					return true
				}
				if len(lit.Elts) == 0 {
					return true // zero value: nothing positional to rot
				}
				if _, keyed := lit.Elts[0].(*ast.KeyValueExpr); keyed {
					return true
				}
				tv, ok := pass.Pkg.Info.Types[ast.Expr(lit)]
				if !ok || tv.Type == nil {
					return true
				}
				for _, ct := range canonicalSpecTypes {
					if namedValueOf(tv.Type, ct.pkgSuffix, ct.name) {
						pass.Reportf(lit.Pos(),
							"unkeyed composite literal of %s; use keyed fields so the literal survives field-set changes", ct.display)
						return true
					}
				}
				return true
			})
		})
	},
}

// namedValueOf reports whether t is (or aliases) a named struct type
// with the given name whose defining package path ends in pkgSuffix —
// the value-type counterpart of namedPtrTo.
func namedValueOf(t types.Type, pkgSuffix, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Name() != name {
		return false
	}
	p := obj.Pkg().Path()
	return p == pkgSuffix || strings.HasSuffix(p, "/"+pkgSuffix)
}
