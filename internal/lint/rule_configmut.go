package lint

import "go/ast"

// sharedConfigTypes are the configuration structs that sweep jobs share.
// Both are designed to be copied by value (`mcfg := cfg; mcfg.Mode = m`);
// a field write through a pointer mutates state another parallel job may
// be reading, which is exactly the coupling the parallel runner's
// bit-identical guarantee forbids.
var sharedConfigTypes = []struct{ pkgSuffix, name, display string }{
	{"internal/sim", "Config", "sim.Config"},
	{"internal/core", "Params", "core.Params"},
}

// ruleConfigMut (R5) flags field writes through a *sim.Config or
// *core.Params anywhere outside the defining packages (which own
// construction and presets). The whole selector chain is checked, so
// `job.Cfg.ROBSize = n` is caught when job.Cfg is a pointer.
var ruleConfigMut = &Rule{
	ID:   "R5",
	Name: "config-mutation",
	Doc:  "sim.Config / core.Params are copied by value per job; never written through a pointer after construction",
	Applies: func(rel string) bool {
		return !underAny(rel, "internal/sim", "internal/core")
	},
	Check: func(pass *Pass) {
		pass.eachFile(func(f *ast.File) {
			ast.Inspect(f, func(n ast.Node) bool {
				switch st := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range st.Lhs {
						checkConfigWrite(pass, lhs)
					}
				case *ast.IncDecStmt:
					checkConfigWrite(pass, st.X)
				}
				return true
			})
		})
	},
}

// checkConfigWrite walks the selector chain of an assignment target and
// reports if any base along the way is a pointer to a shared config type.
// A write to the pointer variable itself (`cfg = other`) rebinds rather
// than mutates and is fine.
func checkConfigWrite(pass *Pass, lhs ast.Expr) {
	for {
		var base ast.Expr
		switch x := lhs.(type) {
		case *ast.SelectorExpr:
			base = x.X
		case *ast.IndexExpr:
			base = x.X
		case *ast.StarExpr:
			base = x.X
		case *ast.ParenExpr:
			lhs = x.X
			continue
		default:
			return
		}
		if tv, ok := pass.Pkg.Info.Types[base]; ok && tv.Type != nil {
			for _, ct := range sharedConfigTypes {
				if namedPtrTo(tv.Type, ct.pkgSuffix, ct.name) {
					pass.Reportf(lhs.Pos(),
						"writes through a *%s after construction; copy the config by value before changing it", ct.display)
					return
				}
			}
		}
		lhs = base
	}
}
