package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ruleParClosure (R10) guards the parallel engine's byte-identical
// contract at its only weak point: the job closure. runner.Map and
// runner.Sweep run the same closure concurrently for every index, so a
// write through any captured variable is a data race between jobs —
// unless the store is index-disjoint (out[i] = ..., each job its own
// element), which is exactly the pattern the engine itself uses to
// collect results. Map writes are never disjoint: the runtime faults on
// concurrent map stores regardless of key.
var ruleParClosure = &Rule{
	ID:   "R10",
	Name: "parallel-closure-shared-write",
	Doc:  "closures passed to runner.Map/Sweep must not write captured variables except through an index-disjoint element store (out[i] = ...)",
	Applies: func(rel string) bool {
		return true
	},
	Check: checkParallelClosures,
}

func checkParallelClosures(pass *Pass) {
	pass.eachFile(func(f *ast.File) {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var du *defUse // built lazily, once per enclosing function
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				name, ok := runnerPoolCall(pass, call)
				if !ok || len(call.Args) == 0 {
					return true
				}
				lit, ok := call.Args[len(call.Args)-1].(*ast.FuncLit)
				if !ok {
					return true // non-literal job fn: body not visible here
				}
				facts := closureCaptures(pass, lit, jobIndexObjs(pass, lit))
				for _, w := range facts.writes {
					if w.disjoint {
						continue
					}
					if du == nil {
						du = defUseOf(pass, fd.Body)
					}
					after := ""
					if du.usesAfter(w.obj, call.End()) {
						after = ", and its value is read after the call"
					}
					if w.mapWrite {
						pass.Reportf(w.pos,
							"runner.%s job writes captured map %q%s: concurrent map stores race (and fault) regardless of key; collect per-job results and merge after the call",
							name, w.obj.Name(), after)
					} else {
						pass.Reportf(w.pos,
							"runner.%s job writes captured variable %q without an index-disjoint store%s: parallel jobs race and results depend on worker count; store per job (out[i] = ...) or return the value",
							name, w.obj.Name(), after)
					}
				}
				return true
			})
		}
	})
}

// runnerPoolCall matches runner.Map / runner.Sweep calls (with or
// without explicit type instantiation), identifying the runner package
// by module-relative path suffix.
func runnerPoolCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	fun := call.Fun
	switch x := fun.(type) {
	case *ast.IndexExpr:
		fun = x.X
	case *ast.IndexListExpr:
		fun = x.X
	}
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Map" && sel.Sel.Name != "Sweep") {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := pass.Pkg.Info.Uses[id].(*types.PkgName)
	if !ok {
		return "", false
	}
	p := pn.Imported().Path()
	if p == "internal/runner" || strings.HasSuffix(p, "/internal/runner") {
		return sel.Sel.Name, true
	}
	return "", false
}

// jobIndexObjs returns the closure's job-index parameter — the second
// parameter of both pool shapes, func(ctx, i, job) and func(ctx, i) —
// whose value is unique per job and therefore licenses element stores.
func jobIndexObjs(pass *Pass, lit *ast.FuncLit) map[types.Object]bool {
	out := map[types.Object]bool{}
	if lit.Type == nil || lit.Type.Params == nil {
		return out
	}
	var names []*ast.Ident
	for _, f := range lit.Type.Params.List {
		names = append(names, f.Names...)
	}
	if len(names) >= 2 {
		if obj := pass.Pkg.Info.Defs[names[1]]; obj != nil {
			out[obj] = true
		}
	}
	return out
}
