package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the intra-procedural dataflow tier: def-use indexing,
// kill-free reaching definitions, and capture/escape facts for function
// literals. It stays deliberately small — position-ordered may-analysis
// over the AST, no CFG — because the facts the rules need are
// "could this write be observed elsewhere", and over-approximating
// reachability only ever makes the analyzer stricter, never unsound.

// defUse indexes every definition (write) and use (read) of variable
// objects within one function body, in source order.
type defUse struct {
	pass *Pass
	defs map[types.Object][]token.Pos
	uses map[types.Object][]token.Pos
}

// defUseOf builds the def-use index for body. Writes are assignment
// left-hand sides (including := and op=), ++/--, and range clause
// targets; every other identifier resolving to a variable is a use. An
// op= or ++ counts as both. Selector and index paths attribute the
// access to the root variable: w.Stats.Cycles++ defines (and uses) w.
func defUseOf(pass *Pass, body ast.Node) *defUse {
	d := &defUse{
		pass: pass,
		defs: map[types.Object][]token.Pos{},
		uses: map[types.Object][]token.Pos{},
	}
	if body == nil {
		return d
	}
	writes := map[*ast.Ident]bool{}
	markWrite := func(e ast.Expr) {
		if root, _, _ := lhsRoot(pass, e, nil); root != nil {
			writes[root] = true
			if obj := pass.objOf(root); obj != nil {
				d.defs[obj] = append(d.defs[obj], root.Pos())
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				markWrite(lhs)
			}
		case *ast.IncDecStmt:
			markWrite(x.X)
		case *ast.RangeStmt:
			if x.Tok == token.ASSIGN {
				if x.Key != nil {
					markWrite(x.Key)
				}
				if x.Value != nil {
					markWrite(x.Value)
				}
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		// Skip selector field names: w.Cycles uses w, not a variable
		// named Cycles.
		if sel, ok := n.(*ast.SelectorExpr); ok {
			ast.Inspect(sel.X, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					d.recordUse(id, writes)
				}
				return true
			})
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			d.recordUse(id, writes)
		}
		return true
	})
	return d
}

func (d *defUse) recordUse(id *ast.Ident, writes map[*ast.Ident]bool) {
	obj := d.pass.objOf(id)
	if obj == nil {
		return
	}
	if v, ok := obj.(*types.Var); !ok || v.IsField() {
		return
	}
	// A pure definition (x := e, or the x of x = e) is not a use; op=
	// and ++ were recorded as defs but still read the old value, and
	// plain = roots like out[i] read the container, so only suppress
	// the use when the ident is a := definition site.
	if writes[id] && d.pass.Pkg.Info.Defs[id] != nil {
		return
	}
	d.uses[obj] = append(d.uses[obj], id.Pos())
}

// objOf resolves an identifier to its object, whether the ident uses or
// defines it.
func (p *Pass) objOf(id *ast.Ident) types.Object {
	if obj := p.Pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return p.Pkg.Info.Defs[id]
}

// reachingDefs returns the definitions of obj at or before pos, in
// source order. Kill-free: a later unconditional redefinition does not
// remove earlier ones, which over-approximates "may reach" — exactly
// the conservative direction for race and staleness questions.
func (d *defUse) reachingDefs(obj types.Object, pos token.Pos) []token.Pos {
	var out []token.Pos
	for _, p := range d.defs[obj] {
		if p <= pos {
			out = append(out, p)
		}
	}
	return out
}

// usesAfter reports whether obj is read anywhere after pos.
func (d *defUse) usesAfter(obj types.Object, pos token.Pos) bool {
	for _, p := range d.uses[obj] {
		if p > pos {
			return true
		}
	}
	return false
}

// captureWrite is one write inside a function literal whose target root
// is a variable declared outside the literal.
type captureWrite struct {
	obj      types.Object
	pos      token.Pos
	disjoint bool // the write lands in a slice/array element selected by an index object
	mapWrite bool // the write path indexes a map — never disjoint, concurrent map writes fault
}

// closureFacts are the capture/escape facts for one function literal.
type closureFacts struct {
	captured  map[types.Object]bool // free variables the literal references
	writes    []captureWrite        // writes whose root is a free variable
	addrTaken map[types.Object]bool // free variables whose address the literal takes
}

// closureCaptures analyzes a function literal. indexObjs names the
// variables (typically the literal's own job-index parameter) that make
// a slice/array element store disjoint across jobs: out[i] = ... writes
// a distinct element per job and is safe; sum += x, best = job and
// seen[k] = true are not.
func closureCaptures(pass *Pass, lit *ast.FuncLit, indexObjs map[types.Object]bool) *closureFacts {
	facts := &closureFacts{
		captured:  map[types.Object]bool{},
		addrTaken: map[types.Object]bool{},
	}
	if lit == nil || lit.Body == nil {
		return facts
	}
	free := func(obj types.Object) bool {
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			return false
		}
		// Declared outside the literal's extent — a parameter or local
		// of an enclosing function, or a package-level variable.
		return obj.Pos() < lit.Pos() || obj.Pos() >= lit.End()
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectorExpr:
			// Only the operand can capture; the field name cannot.
			ast.Inspect(x.X, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if obj := pass.objOf(id); obj != nil && free(obj) {
						facts.captured[obj] = true
					}
				}
				return true
			})
			return false
		case *ast.Ident:
			if obj := pass.objOf(x); obj != nil && free(obj) {
				facts.captured[obj] = true
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if root, _, _ := lhsRoot(pass, x.X, nil); root != nil {
					if obj := pass.objOf(root); obj != nil && free(obj) {
						facts.addrTaken[obj] = true
					}
				}
			}
		}
		return true
	})
	record := func(e ast.Expr) {
		root, disjoint, mapIndexed := lhsRoot(pass, e, indexObjs)
		if root == nil {
			return
		}
		obj := pass.objOf(root)
		if obj == nil || !free(obj) {
			return
		}
		facts.writes = append(facts.writes, captureWrite{
			obj:      obj,
			pos:      root.Pos(),
			disjoint: disjoint && !mapIndexed,
			mapWrite: mapIndexed,
		})
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				record(lhs)
			}
		case *ast.IncDecStmt:
			record(x.X)
		case *ast.RangeStmt:
			if x.Tok == token.ASSIGN {
				if x.Key != nil {
					record(x.Key)
				}
				if x.Value != nil {
					record(x.Value)
				}
			}
		case *ast.FuncLit:
			if x != lit {
				// Nested literals: their bodies still execute on the
				// job's goroutine, so keep descending — capture extent
				// is measured against the outer literal.
				return true
			}
		}
		return true
	})
	return facts
}

// lhsRoot walks an assignable expression down to its root identifier.
// disjoint reports whether the path stores into a slice/array element
// selected by an expression mentioning one of indexObjs; mapIndexed
// reports whether any step indexes a map (concurrent map stores fault
// regardless of the key, so a map write is never disjoint).
func lhsRoot(pass *Pass, e ast.Expr, indexObjs map[types.Object]bool) (root *ast.Ident, disjoint, mapIndexed bool) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			if tv, ok := pass.Pkg.Info.Types[x.X]; ok && tv.Type != nil {
				switch tv.Type.Underlying().(type) {
				case *types.Map:
					mapIndexed = true
				default:
					if len(indexObjs) > 0 && refsAnyObject(pass, x.Index, indexObjs) {
						disjoint = true
					}
				}
			}
			e = x.X
		case *ast.Ident:
			return x, disjoint, mapIndexed
		default:
			return nil, disjoint, mapIndexed
		}
	}
}
