package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ruleFloatEq (R4) forbids ==/!= between floating-point operands in model
// and experiment code. IPC, speedup and error figures come out of divisions
// and power laws; exact equality on them is either a bug (rounding makes it
// flaky) or a sentinel test against an exact stored constant — the latter
// keeps a //lint:ignore R4 explaining why bit-exact comparison is sound.
// Comparisons where both operands are compile-time constants fold exactly
// and are not flagged.
var ruleFloatEq = &Rule{
	ID:   "R4",
	Name: "float-equality",
	Doc:  "float64 comparisons in model/experiment code use tolerances, not ==/!=",
	Applies: func(rel string) bool {
		return underAny(rel,
			"internal/core", "internal/sim", "internal/experiments",
			"internal/interval", "internal/logca", "internal/staticmodel")
	},
	Check: func(pass *Pass) {
		pass.eachFile(func(f *ast.File) {
			ast.Inspect(f, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				xt, yt := pass.Pkg.Info.Types[be.X], pass.Pkg.Info.Types[be.Y]
				if xt.Value != nil && yt.Value != nil {
					return true // constant-folded, exact
				}
				if isFloat(xt.Type) || isFloat(yt.Type) {
					pass.Reportf(be.OpPos,
						"%s on floating-point operands; compare with a tolerance (|a-b| <= eps)", be.Op)
				}
				return true
			})
		})
	},
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
