package lint

import "go/ast"

// wallClockFuncs are the time package entry points that read the host
// clock. Timers and sleeps are caught by the same list: any of them makes
// behavior depend on scheduling.
var wallClockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// ruleWallClock (R2) forbids wall-clock reads outside the experiment
// runner, the serving layer, and the CLI layer. Simulated time is the
// core's cycle counter; a time.Now in a model path either leaks host
// timing into results or tempts someone to seed randomness from it.
// Only internal/runner (which reports per-job wall timing),
// internal/serve (request latency and load-phase observability — never
// simulation inputs; results always come out of the scenario store),
// and cmd/ (which prints it) may look at the host clock.
//
// Interprocedural (tier 3): a call from in-scope code to any module
// function that transitively reaches the wall clock is flagged at the
// call site with the chain in the message. The taint is the strict
// variant — functions declared in the exempt packages contribute
// nothing, so calling runner.Map (whose per-job wall timing is
// sanctioned observability) stays legal.
var ruleWallClock = &Rule{
	ID:   "R2",
	Name: "no-wallclock-in-sim",
	Doc:  "time.Now/Since/Until only in internal/runner, internal/serve and cmd/; simulation code keeps to simulated cycles (directly or through any call chain)",
	Applies: func(rel string) bool {
		return !underAny(rel, "internal/runner", "internal/serve", "cmd")
	},
	Check: func(pass *Pass) {
		pass.eachFile(func(f *ast.File) {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if name, ok := pkgFuncCall(pass, call, "time"); ok && wallClockFuncs[name] {
					pass.Reportf(call.Pos(),
						"time.%s reads the wall clock in simulation code; timing belongs to internal/runner or cmd/", name)
					return true
				}
				if callee := staticCallee(pass.Pkg, call); callee != nil {
					if fi := pass.Idx.funcOf(callee); fi != nil && fi.sum.wallStrict.tainted {
						hops := pass.Idx.taintChain(callee, func(s *summary) taint { return s.wallStrict })
						pass.ReportChain(call.Pos(), hops,
							"call transitively reads the wall clock (%s); simulation code keeps to simulated cycles",
							chainText(callee, hops))
					}
				}
				return true
			})
		})
	},
}
