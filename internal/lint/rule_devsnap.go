package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// Device snapshot coverage — R9's sub-check for the accelerator layer.
//
// A device that implements isa.AccelSnapshotter participates in simulator
// checkpointing: its SnapshotState frame is the only thing that carries the
// device's runtime state across a checkpoint/restore boundary. A field the
// device mutates at run time (a diagnostic counter bumped in Invoke, a
// mode latch flipped in Mark/Rewind) but never captures silently diverges
// on every checkpoint fork: the forked run reports zeros while the straight
// run reports totals, and nothing fails. Statically, "mutated by a non-
// snapshot method" is a precise stand-in for "runtime state", so the audit
// is: every exported field assigned (or ++/--'d) by any method of a
// snapshottable device other than SnapshotState/RestoreState must be
// referenced by BOTH SnapshotState and RestoreState, or carry a
// //lint:exempt-field R9 manifest naming why it may legally diverge
// (per-invocation scratch dead at cycle boundaries, for example).
//
// Construction-time configuration (set once by a New* constructor, never
// assigned by a method) is not runtime state and is not audited — the
// snapshot protocol deliberately excludes it, because the restore target is
// always constructed with the same configuration first.

// devSnapAudit gathers one snapshottable device type's declarations.
type devSnapAudit struct {
	named    *types.Named
	snapshot *ast.FuncDecl
	restore  *ast.FuncDecl
	mutators []*ast.FuncDecl
}

func checkDeviceSnapshots(pass *Pass) {
	audits := map[*types.Named]*devSnapAudit{}
	var order []*types.Named
	pass.eachFile(func(f *ast.File) {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil {
				continue
			}
			recv := receiverType(pass, fd)
			named, ok := recv.(*types.Named)
			if !ok || named.Obj().Pkg() != pass.Pkg.Types {
				continue
			}
			if _, ok := named.Underlying().(*types.Struct); !ok {
				continue
			}
			a := audits[named]
			if a == nil {
				a = &devSnapAudit{named: named}
				audits[named] = a
				order = append(order, named)
			}
			switch fd.Name.Name {
			case "SnapshotState":
				a.snapshot = fd
			case "RestoreState":
				a.restore = fd
			default:
				a.mutators = append(a.mutators, fd)
			}
		}
	})
	sort.Slice(order, func(i, j int) bool {
		return order[i].Obj().Name() < order[j].Obj().Name()
	})
	for _, named := range order {
		a := audits[named]
		// Only types implementing the full snapshot pair are in the
		// checkpoint protocol; the simulator separately refuses to
		// checkpoint an invoked device without one.
		if a.snapshot == nil || a.restore == nil {
			continue
		}
		auditDeviceSnapshot(pass, a)
	}
}

func auditDeviceSnapshot(pass *Pass, a *devSnapAudit) {
	str := a.named.Underlying().(*types.Struct)
	mutatedBy := map[string]string{} // field -> method that mutates it
	for _, fd := range a.mutators {
		for field := range assignedFields(pass, a.named, fd) {
			if _, seen := mutatedBy[field]; !seen {
				mutatedBy[field] = fd.Name.Name
			}
		}
	}
	snapRefs := referencedFields(pass, a.named, a.snapshot)
	restRefs := referencedFields(pass, a.named, a.restore)

	cov := newCoverage(pass)
	cov.addRoots([]*types.Named{a.named}, func(*coverType, *types.Var) bool { return false })
	cov.collectExemptions("R9", []*Package{pass.Pkg})
	ct := cov.types[a.named]

	for i := 0; i < str.NumFields(); i++ {
		f := str.Field(i)
		method, mutated := mutatedBy[f.Name()]
		if !f.Exported() || !mutated || (ct != nil && cov.isExempt(ct, f.Name())) {
			continue
		}
		name := a.named.Obj().Name()
		if !snapRefs[f.Name()] {
			pass.Reportf(a.snapshot.Name.Pos(),
				"%s.%s is runtime state (mutated by %s) but SnapshotState never captures it: the counter silently diverges across checkpoint forks; capture it or exempt with `//lint:exempt-field R9 %s.%s <reason>`",
				name, f.Name(), method, name, f.Name())
		}
		if !restRefs[f.Name()] {
			pass.Reportf(a.restore.Name.Pos(),
				"%s.%s is runtime state (mutated by %s) but RestoreState never restores it: a restored device resumes with a stale value; restore it or exempt with `//lint:exempt-field R9 %s.%s <reason>`",
				name, f.Name(), method, name, f.Name())
		}
	}
}

// assignedFields returns the fields of named that fd's body writes through
// a selector — plain or compound assignment, or ++/--.
func assignedFields(pass *Pass, named *types.Named, fd *ast.FuncDecl) map[string]bool {
	out := map[string]bool{}
	if fd.Body == nil {
		return out
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if name := isRootSel(pass, lhs, named); name != "" {
					out[name] = true
				}
			}
		case *ast.IncDecStmt:
			if name := isRootSel(pass, s.X, named); name != "" {
				out[name] = true
			}
		}
		return true
	})
	return out
}

// referencedFields returns every selector x.F in fd's body with x of the
// named type (pointer stripped) — reads and writes alike, which is the
// right notion for both the capture and the restore side.
func referencedFields(pass *Pass, named *types.Named, fd *ast.FuncDecl) map[string]bool {
	out := map[string]bool{}
	if fd == nil || fd.Body == nil {
		return out
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if name := isRootSel(pass, sel, named); name != "" {
				out[name] = true
			}
		}
		return true
	})
	return out
}
