package bpred

import (
	"fmt"
	"sort"
)

// PredictorPair is one primed outcome of a Perfect predictor, sorted by PC.
type PredictorPair struct {
	PC    uint64
	Taken bool
}

// State is a deterministic snapshot of any predictor this package builds.
// Kind selects which fields are meaningful: counter tables for bimodal and
// gshare (plus History for gshare), Pairs for perfect, nothing for the
// static predictors.
type State struct {
	Kind    string
	Table   []uint8
	History uint64
	Pairs   []PredictorPair
}

// Snapshot captures the predictor's mutable state.
func Snapshot(p Predictor) (State, error) {
	switch t := p.(type) {
	case *Static:
		return State{Kind: t.Name()}, nil
	case *Bimodal:
		s := State{Kind: "bimodal", Table: make([]uint8, len(t.table))}
		for i, c := range t.table {
			s.Table[i] = uint8(c)
		}
		return s, nil
	case *GShare:
		s := State{Kind: "gshare", History: t.history, Table: make([]uint8, len(t.table))}
		for i, c := range t.table {
			s.Table[i] = uint8(c)
		}
		return s, nil
	case *Perfect:
		s := State{Kind: "perfect"}
		pairs := make([]PredictorPair, 0, len(t.next))
		for pc, taken := range t.next {
			pairs = append(pairs, PredictorPair{PC: pc, Taken: taken})
		}
		sort.Slice(pairs, func(i, j int) bool { return pairs[i].PC < pairs[j].PC })
		if len(pairs) > 0 {
			s.Pairs = pairs
		}
		return s, nil
	default:
		return State{}, fmt.Errorf("bpred: cannot snapshot predictor %q", p.Name())
	}
}

// Restore fills a freshly built predictor of the matching kind from a
// snapshot. Table lengths must match (they are derived from configuration).
func Restore(p Predictor, s State) error {
	switch t := p.(type) {
	case *Static:
		if s.Kind != t.Name() {
			return fmt.Errorf("bpred: restoring %q state into %q", s.Kind, t.Name())
		}
		return nil
	case *Bimodal:
		if s.Kind != "bimodal" {
			return fmt.Errorf("bpred: restoring %q state into bimodal", s.Kind)
		}
		if len(s.Table) != len(t.table) {
			return fmt.Errorf("bpred: bimodal table size mismatch: %d vs %d", len(s.Table), len(t.table))
		}
		for i, v := range s.Table {
			t.table[i] = counter(v)
		}
		return nil
	case *GShare:
		if s.Kind != "gshare" {
			return fmt.Errorf("bpred: restoring %q state into gshare", s.Kind)
		}
		if len(s.Table) != len(t.table) {
			return fmt.Errorf("bpred: gshare table size mismatch: %d vs %d", len(s.Table), len(t.table))
		}
		for i, v := range s.Table {
			t.table[i] = counter(v)
		}
		t.history = s.History
		return nil
	case *Perfect:
		if s.Kind != "perfect" {
			return fmt.Errorf("bpred: restoring %q state into perfect", s.Kind)
		}
		t.next = make(map[uint64]bool, len(s.Pairs))
		for _, pr := range s.Pairs {
			t.next[pr.PC] = pr.Taken
		}
		return nil
	default:
		return fmt.Errorf("bpred: cannot restore predictor %q", p.Name())
	}
}
