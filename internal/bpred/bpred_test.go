package bpred

import (
	"math/rand"
	"testing"
)

func TestStatic(t *testing.T) {
	st := &Static{Taken: true}
	if !st.Predict(10) {
		t.Error("static-taken predicted not taken")
	}
	st.Update(10, false) // must be a no-op
	if !st.Predict(10) {
		t.Error("static predictor must ignore updates")
	}
	snt := &Static{Taken: false}
	if snt.Predict(0) {
		t.Error("static-not-taken predicted taken")
	}
	if st.Name() == snt.Name() {
		t.Error("static names must distinguish direction")
	}
}

func TestCounterSaturation(t *testing.T) {
	c := counter(0)
	for i := 0; i < 10; i++ {
		c = c.update(false)
	}
	if c != 0 {
		t.Errorf("counter under-saturated to %d", c)
	}
	for i := 0; i < 10; i++ {
		c = c.update(true)
	}
	if c != 3 {
		t.Errorf("counter over-saturated to %d", c)
	}
	if !c.taken() {
		t.Error("saturated-taken counter predicts not taken")
	}
}

func TestBimodalLearnsLoop(t *testing.T) {
	b := NewBimodal(10)
	pc := uint64(100)
	// A loop branch: taken 9 times, not taken once, repeated.
	misses := 0
	for iter := 0; iter < 10; iter++ {
		for i := 0; i < 10; i++ {
			taken := i != 9
			if b.Predict(pc) != taken {
				misses++
			}
			b.Update(pc, taken)
		}
	}
	// A bimodal predictor should miss roughly once per loop exit (plus
	// once re-entering); anything above 30% indicates it isn't learning.
	if misses > 30 {
		t.Errorf("bimodal missed %d/100 on a simple loop", misses)
	}
}

func TestBimodalAliasingIsBounded(t *testing.T) {
	b := NewBimodal(4) // tiny table: pcs 0 and 16 alias
	b.Update(0, true)
	b.Update(0, true)
	if !b.Predict(16) {
		t.Error("aliased entries must share state in a direct-mapped table")
	}
}

func TestGShareCorrelation(t *testing.T) {
	g := NewGShare(12, 8)
	// Branch at pc=7 alternates T,N,T,N... A bimodal predictor stays
	// wrong half the time from a weakly-taken start; gshare learns the
	// alternation via history.
	misses := 0
	for i := 0; i < 400; i++ {
		taken := i%2 == 0
		if g.Predict(7) != taken {
			misses++
		}
		g.Update(7, taken)
	}
	if misses > 40 { // warmup only
		t.Errorf("gshare missed %d/400 on an alternating branch", misses)
	}
}

func TestGShareHistoryMasked(t *testing.T) {
	g := NewGShare(8, 4)
	for i := 0; i < 100; i++ {
		g.Update(uint64(i), i%3 == 0)
	}
	if g.history >= 1<<4 {
		t.Errorf("history %b exceeds configured length", g.history)
	}
}

func TestPerfectOracle(t *testing.T) {
	p := NewPerfect()
	p.Prime(5, true)
	if !p.Predict(5) {
		t.Error("oracle ignored priming")
	}
	p.Update(5, false)
	if p.Predict(5) {
		t.Error("oracle must track the most recent outcome")
	}
}

func TestBTB(t *testing.T) {
	b := NewBTB(6)
	if _, ok := b.Lookup(42); ok {
		t.Error("empty BTB returned a hit")
	}
	b.Insert(42, 7)
	tgt, ok := b.Lookup(42)
	if !ok || tgt != 7 {
		t.Errorf("Lookup(42) = (%d, %v), want (7, true)", tgt, ok)
	}
	// Conflicting insert evicts.
	b.Insert(42+64, 9)
	if _, ok := b.Lookup(42); ok {
		t.Error("evicted entry still hits")
	}
	tgt, ok = b.Lookup(42 + 64)
	if !ok || tgt != 9 {
		t.Errorf("Lookup(106) = (%d, %v), want (9, true)", tgt, ok)
	}
}

// Predictors must achieve high accuracy on strongly-biased branches and
// never crash on arbitrary pcs.
func TestPredictorsOnBiasedStream(t *testing.T) {
	preds := []Predictor{NewBimodal(10), NewGShare(10, 8)}
	for _, p := range preds {
		rng := rand.New(rand.NewSource(1))
		misses := 0
		const n = 5000
		for i := 0; i < n; i++ {
			pc := uint64(rng.Intn(32))
			taken := rng.Float64() < 0.95 // 95% taken everywhere
			if p.Predict(pc) != taken {
				misses++
			}
			p.Update(pc, taken)
		}
		if rate := float64(misses) / n; rate > 0.15 {
			t.Errorf("%s: miss rate %.2f on 95%%-biased stream", p.Name(), rate)
		}
	}
}
