// Package bpred provides branch direction predictors and a branch target
// buffer for the out-of-order core in internal/sim.
//
// The paper's analytical model treats the front end as dispatching IPC
// useful instructions per cycle except during TCA-induced stalls; branch
// prediction quality is therefore part of the baseline IPC, not a separate
// model term. The simulator still needs real predictors so baseline IPC —
// one of the model's inputs — emerges from program behaviour the way it
// does in gem5.
package bpred

// Predictor predicts the direction of conditional branches.
//
// PC values are instruction indices (the ISA addresses code in units of
// instructions).
type Predictor interface {
	// Predict returns the predicted direction for the branch at pc.
	Predict(pc uint64) bool
	// Update trains the predictor with the resolved direction.
	Update(pc uint64, taken bool)
	// Name identifies the predictor in statistics output.
	Name() string
}

// ConfidenceEstimator is implemented by predictors that can qualify a
// prediction with a confidence estimate. The simulator's partial-TCA-
// speculation extension (the paper's §VIII future-work design point between
// the L and NL modes) only lets an accelerator execute speculatively past
// high-confidence branches.
type ConfidenceEstimator interface {
	// Confident reports whether the next Predict(pc) is high confidence.
	Confident(pc uint64) bool
}

// Static predicts the same direction for every branch.
type Static struct{ Taken bool }

// Name implements Predictor.
func (s *Static) Name() string {
	if s.Taken {
		return "static-taken"
	}
	return "static-not-taken"
}

// Predict implements Predictor.
func (s *Static) Predict(uint64) bool { return s.Taken }

// Update implements Predictor.
func (s *Static) Update(uint64, bool) {}

// counter is a 2-bit saturating counter; values 0-1 predict not taken,
// 2-3 predict taken.
type counter uint8

func (c counter) taken() bool { return c >= 2 }

func (c counter) update(taken bool) counter {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// Bimodal is a classic table of 2-bit saturating counters indexed by PC.
type Bimodal struct {
	table []counter
	mask  uint64
}

// NewBimodal returns a bimodal predictor with 2^bits counters, initialized
// weakly taken (loops predict taken after one training).
func NewBimodal(bits int) *Bimodal {
	size := 1 << bits
	t := make([]counter, size)
	for i := range t {
		t[i] = 2 // weakly taken
	}
	return &Bimodal{table: t, mask: uint64(size - 1)}
}

// Name implements Predictor.
func (b *Bimodal) Name() string { return "bimodal" }

// Predict implements Predictor.
func (b *Bimodal) Predict(pc uint64) bool { return b.table[pc&b.mask].taken() }

// Confident implements ConfidenceEstimator: a saturated counter is high
// confidence.
func (b *Bimodal) Confident(pc uint64) bool {
	c := b.table[pc&b.mask]
	return c == 0 || c == 3
}

// Update implements Predictor.
func (b *Bimodal) Update(pc uint64, taken bool) {
	i := pc & b.mask
	b.table[i] = b.table[i].update(taken)
}

// GShare XORs a global history register with the PC to index the counter
// table, capturing correlated branch behaviour.
type GShare struct {
	table   []counter
	mask    uint64
	history uint64
	histLen uint
}

// NewGShare returns a gshare predictor with 2^bits counters and histBits of
// global history.
func NewGShare(bits, histBits int) *GShare {
	size := 1 << bits
	t := make([]counter, size)
	for i := range t {
		t[i] = 2
	}
	return &GShare{table: t, mask: uint64(size - 1), histLen: uint(histBits)}
}

// Name implements Predictor.
func (g *GShare) Name() string { return "gshare" }

func (g *GShare) index(pc uint64) uint64 { return (pc ^ g.history) & g.mask }

// Predict implements Predictor.
func (g *GShare) Predict(pc uint64) bool { return g.table[g.index(pc)].taken() }

// Confident implements ConfidenceEstimator: a saturated counter is high
// confidence.
func (g *GShare) Confident(pc uint64) bool {
	c := g.table[g.index(pc)]
	return c == 0 || c == 3
}

// Update implements Predictor. It trains the counter and shifts the resolved
// direction into the global history.
func (g *GShare) Update(pc uint64, taken bool) {
	i := g.index(pc)
	g.table[i] = g.table[i].update(taken)
	g.history <<= 1
	if taken {
		g.history |= 1
	}
	g.history &= (1 << g.histLen) - 1
}

// Perfect is an oracle used to isolate TCA effects from branch effects in
// experiments: Predict consults the recorded outcome for the next dynamic
// instance of each branch. It must be primed by the caller (the simulator
// primes it with the functional resolution available at fetch).
//
// Perfect implements Predictor by always returning the direction installed
// with Prime; Update clears the priming.
type Perfect struct {
	next map[uint64]bool
}

// NewPerfect returns an oracle predictor.
func NewPerfect() *Perfect { return &Perfect{next: make(map[uint64]bool)} }

// Name implements Predictor.
func (p *Perfect) Name() string { return "perfect" }

// Prime installs the direction the next Predict(pc) must return.
func (p *Perfect) Prime(pc uint64, taken bool) { p.next[pc] = taken }

// Predict implements Predictor.
func (p *Perfect) Predict(pc uint64) bool { return p.next[pc] }

// Update implements Predictor.
func (p *Perfect) Update(pc uint64, taken bool) { p.next[pc] = taken }

// BTB is a direct-mapped branch target buffer mapping branch PCs to their
// most recent targets. The ISA has statically-known branch targets, but the
// front end still uses a BTB so that target knowledge is learned the way
// hardware learns it.
type BTB struct {
	tags    []uint64
	targets []uint64
	valid   []bool
	mask    uint64
}

// NewBTB returns a BTB with 2^bits entries.
func NewBTB(bits int) *BTB {
	size := 1 << bits
	return &BTB{
		tags:    make([]uint64, size),
		targets: make([]uint64, size),
		valid:   make([]bool, size),
		mask:    uint64(size - 1),
	}
}

// Lookup returns the predicted target for pc, if present.
func (b *BTB) Lookup(pc uint64) (target uint64, ok bool) {
	i := pc & b.mask
	if b.valid[i] && b.tags[i] == pc {
		return b.targets[i], true
	}
	return 0, false
}

// Insert records the target for pc.
func (b *BTB) Insert(pc, target uint64) {
	i := pc & b.mask
	b.tags[i], b.targets[i], b.valid[i] = pc, target, true
}
