package redfa

import (
	"math/rand"
	"regexp"
	"testing"
)

func mustCompile(t *testing.T, pat string) *DFA {
	t.Helper()
	d, err := Compile(pat)
	if err != nil {
		t.Fatalf("Compile(%q): %v", pat, err)
	}
	return d
}

func TestLiteralMatch(t *testing.T) {
	d := mustCompile(t, "abc")
	cases := []struct {
		in   string
		want bool
	}{
		{"abc", true}, {"ab", false}, {"abcd", false}, {"", false}, {"abd", false},
	}
	for _, c := range cases {
		if got := d.Match([]byte(c.in)); got != c.want {
			t.Errorf("abc match %q = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestQuantifiers(t *testing.T) {
	cases := []struct {
		pat, in string
		want    bool
	}{
		{"ab*c", "ac", true},
		{"ab*c", "abbbc", true},
		{"ab*c", "abbbd", false},
		{"ab+c", "ac", false},
		{"ab+c", "abc", true},
		{"ab?c", "ac", true},
		{"ab?c", "abc", true},
		{"ab?c", "abbc", false},
		{"a*", "", true},
		{"a*", "aaaa", true},
		{"a*", "b", false},
	}
	for _, c := range cases {
		d := mustCompile(t, c.pat)
		if got := d.Match([]byte(c.in)); got != c.want {
			t.Errorf("%q match %q = %v, want %v", c.pat, c.in, got, c.want)
		}
	}
}

func TestClassesAndDot(t *testing.T) {
	cases := []struct {
		pat, in string
		want    bool
	}{
		{"[abc]x", "ax", true},
		{"[abc]x", "bx", true},
		{"[abc]x", "dx", false},
		{"[^abc]x", "dx", true},
		{"[^abc]x", "ax", false},
		{".x", "zx", true},
		{".x", "x", false},
		{"a.c", "abc", true},
		{"a.c", "ac", false},
		{"[ab]*c", "ababc", true},
		{"[ab]*c", "abxc", false},
	}
	for _, c := range cases {
		d := mustCompile(t, c.pat)
		if got := d.Match([]byte(c.in)); got != c.want {
			t.Errorf("%q match %q = %v, want %v", c.pat, c.in, got, c.want)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	for _, pat := range []string{"*a", "+", "?x", "[abc", "[]x", "a[", "[^]"} {
		if _, err := Compile(pat); err == nil {
			t.Errorf("Compile(%q) accepted", pat)
		}
	}
}

func TestDeadStateIsZero(t *testing.T) {
	d := mustCompile(t, "ab")
	if d.Start == 0 {
		t.Error("start state must not be the dead state")
	}
	if d.Final[0] {
		t.Error("dead state must not be final")
	}
	for sym := 0; sym < numSymbols; sym++ {
		if d.Next[0][sym] != 0 {
			t.Fatal("dead state must have no escape")
		}
	}
}

// Differential test against the standard library over random inputs.
func TestMatchesStdlibRegexp(t *testing.T) {
	patterns := []struct{ mine, std string }{
		{"ab*c", "^ab*c$"},
		{"[ab]+c?", "^[ab]+c?$"},
		{"a.b", "^a.b$"},
		{"[^ab]*z", "^[^ab]*z$"},
		{"ab?c*d", "^ab?c*d$"},
	}
	rng := rand.New(rand.NewSource(33))
	alphabet := []byte("abcdz")
	for _, p := range patterns {
		d := mustCompile(t, p.mine)
		std := regexp.MustCompile(p.std)
		for i := 0; i < 3000; i++ {
			n := rng.Intn(8)
			in := make([]byte, n)
			for j := range in {
				in[j] = alphabet[rng.Intn(len(alphabet))]
			}
			if got, want := d.Match(in), std.Match(in); got != want {
				t.Fatalf("%q vs %q on %q: dfa %v, stdlib %v", p.mine, p.std, in, got, want)
			}
		}
	}
}

func TestStateCountsReasonable(t *testing.T) {
	d := mustCompile(t, "[ab]*abb")
	// The classic (a|b)*abb DFA has 4 live states + dead.
	if d.NumStates() > 8 {
		t.Errorf("states = %d, want small DFA", d.NumStates())
	}
}
