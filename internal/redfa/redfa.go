// Package redfa compiles a small pattern language to table-driven
// deterministic finite automata (DFAs) — the substrate behind the regex
// TCA of the paper's Fig. 2 (reference [6] accelerates regular-expression
// matching for server-side scripting).
//
// The pattern language covers the constructs that dominate server-side
// matching loops and keeps compilation self-contained:
//
//	a        literal symbol (byte value)
//	.        any symbol
//	[abc]    symbol class
//	[^abc]   negated class
//	x*       zero or more
//	x+       one or more
//	x?       optional
//
// Compilation goes pattern → NFA (Thompson construction) → DFA (subset
// construction). The DFA's transition table serializes to simulator memory
// in a layout both the software matcher (generated ISA code) and the
// hardware matcher (accel.Regex) walk identically.
package redfa

import (
	"fmt"
	"sort"
)

// Alphabet size: symbols are byte values.
const numSymbols = 256

// nfaState is one Thompson-construction state.
type nfaState struct {
	// edges[sym] lists successor states on sym; eps lists
	// epsilon-successors.
	edges map[byte][]int
	eps   []int
	final bool
}

// nfa under construction.
type nfa struct {
	states []*nfaState
}

func (n *nfa) add() int {
	n.states = append(n.states, &nfaState{edges: make(map[byte][]int)})
	return len(n.states) - 1
}

func (n *nfa) edge(from int, sym byte, to int) {
	n.states[from].edges[sym] = append(n.states[from].edges[sym], to)
}

func (n *nfa) epsEdge(from, to int) {
	n.states[from].eps = append(n.states[from].eps, to)
}

// fragment is an NFA piece with one entry and one exit.
type fragment struct{ start, end int }

// parser compiles the pattern text.
type parser struct {
	src []byte
	pos int
	n   *nfa
}

// Compile builds the DFA for a pattern.
func Compile(pattern string) (*DFA, error) {
	p := &parser{src: []byte(pattern), n: &nfa{}}
	frag, err := p.sequence()
	if err != nil {
		return nil, fmt.Errorf("redfa: %q: %w", pattern, err)
	}
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("redfa: %q: trailing input at %d", pattern, p.pos)
	}
	p.n.states[frag.end].final = true
	return determinize(p.n, frag.start), nil
}

// sequence parses a concatenation of (possibly quantified) atoms.
func (p *parser) sequence() (fragment, error) {
	start := p.n.add()
	cur := start
	for p.pos < len(p.src) {
		atom, err := p.atom()
		if err != nil {
			return fragment{}, err
		}
		// Quantifier?
		if p.pos < len(p.src) {
			switch p.src[p.pos] {
			case '*':
				p.pos++
				atom = p.star(atom)
			case '+':
				p.pos++
				atom = p.plus(atom)
			case '?':
				p.pos++
				atom = p.opt(atom)
			}
		}
		p.n.epsEdge(cur, atom.start)
		cur = atom.end
	}
	return fragment{start: start, end: cur}, nil
}

// atom parses a literal, dot, or class.
func (p *parser) atom() (fragment, error) {
	if p.pos >= len(p.src) {
		return fragment{}, fmt.Errorf("unexpected end of pattern")
	}
	ch := p.src[p.pos]
	switch ch {
	case '*', '+', '?':
		return fragment{}, fmt.Errorf("dangling quantifier at %d", p.pos)
	case '.':
		p.pos++
		return p.classFrag(func(byte) bool { return true }), nil
	case '[':
		return p.class()
	default:
		p.pos++
		s, e := p.n.add(), p.n.add()
		p.n.edge(s, ch, e)
		return fragment{s, e}, nil
	}
}

// class parses [...] or [^...].
func (p *parser) class() (fragment, error) {
	p.pos++ // consume '['
	negate := false
	if p.pos < len(p.src) && p.src[p.pos] == '^' {
		negate = true
		p.pos++
	}
	members := make(map[byte]bool)
	for {
		if p.pos >= len(p.src) {
			return fragment{}, fmt.Errorf("unterminated class")
		}
		if p.src[p.pos] == ']' {
			p.pos++
			break
		}
		members[p.src[p.pos]] = true
		p.pos++
	}
	if len(members) == 0 {
		return fragment{}, fmt.Errorf("empty class")
	}
	return p.classFrag(func(b byte) bool { return members[b] != negate && (members[b] || negate) }), nil
}

// classFrag builds a fragment matching every symbol the predicate accepts.
func (p *parser) classFrag(accept func(byte) bool) fragment {
	s, e := p.n.add(), p.n.add()
	for sym := 0; sym < numSymbols; sym++ {
		if accept(byte(sym)) {
			p.n.edge(s, byte(sym), e)
		}
	}
	return fragment{s, e}
}

func (p *parser) star(f fragment) fragment {
	s, e := p.n.add(), p.n.add()
	p.n.epsEdge(s, f.start)
	p.n.epsEdge(s, e)
	p.n.epsEdge(f.end, f.start)
	p.n.epsEdge(f.end, e)
	return fragment{s, e}
}

func (p *parser) plus(f fragment) fragment {
	s, e := p.n.add(), p.n.add()
	p.n.epsEdge(s, f.start)
	p.n.epsEdge(f.end, f.start)
	p.n.epsEdge(f.end, e)
	return fragment{s, e}
}

func (p *parser) opt(f fragment) fragment {
	s, e := p.n.add(), p.n.add()
	p.n.epsEdge(s, f.start)
	p.n.epsEdge(s, e)
	p.n.epsEdge(f.end, e)
	return fragment{s, e}
}

// DFA is a table-driven automaton. State 0 is the dead state (no escape);
// Start names the initial state.
type DFA struct {
	// Next[state][sym] is the successor (0 = dead).
	Next [][numSymbols]uint16
	// Final[state] marks accepting states.
	Final []bool
	Start uint16
}

// NumStates returns the state count, including the dead state.
func (d *DFA) NumStates() int { return len(d.Next) }

// Match reports whether the DFA accepts the full input.
func (d *DFA) Match(input []byte) bool {
	s := d.Start
	for _, b := range input {
		s = d.Next[s][b]
		if s == 0 {
			return false
		}
	}
	return d.Final[s]
}

// determinize runs subset construction.
func determinize(n *nfa, start int) *DFA {
	closure := func(set map[int]bool) {
		stack := make([]int, 0, len(set))
		for s := range set {
			//lint:ignore R3 worklist seeding: the epsilon-closure fixpoint is the same set in any traversal order
			stack = append(stack, s)
		}
		for len(stack) > 0 {
			s := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, t := range n.states[s].eps {
				if !set[t] {
					set[t] = true
					stack = append(stack, t)
				}
			}
		}
	}
	key := func(set map[int]bool) string {
		ids := make([]int, 0, len(set))
		for s := range set {
			ids = append(ids, s)
		}
		sort.Ints(ids)
		b := make([]byte, 0, len(ids)*3)
		for _, id := range ids {
			b = append(b, byte(id), byte(id>>8), ',')
		}
		return string(b)
	}

	d := &DFA{}
	// State 0 is dead.
	d.Next = append(d.Next, [numSymbols]uint16{})
	d.Final = append(d.Final, false)

	startSet := map[int]bool{start: true}
	closure(startSet)
	ids := map[string]uint16{key(startSet): 1}
	sets := []map[int]bool{startSet}
	d.Next = append(d.Next, [numSymbols]uint16{})
	d.Final = append(d.Final, anyFinal(n, startSet))
	d.Start = 1

	for i := 0; i < len(sets); i++ {
		cur := sets[i]
		for sym := 0; sym < numSymbols; sym++ {
			succ := make(map[int]bool)
			for s := range cur {
				for _, t := range n.states[s].edges[byte(sym)] {
					succ[t] = true
				}
			}
			if len(succ) == 0 {
				continue // dead
			}
			closure(succ)
			k := key(succ)
			id, ok := ids[k]
			if !ok {
				id = uint16(len(d.Next))
				ids[k] = id
				sets = append(sets, succ)
				d.Next = append(d.Next, [numSymbols]uint16{})
				d.Final = append(d.Final, anyFinal(n, succ))
			}
			d.Next[uint16(i)+1][sym] = id
		}
	}
	return d
}

func anyFinal(n *nfa, set map[int]bool) bool {
	for s := range set {
		if n.states[s].final {
			return true
		}
	}
	return false
}
