package redfa

import (
	"fmt"

	"repro/internal/isa"
)

// Layout describes a DFA's in-memory serialization, shared by the software
// matcher (generated ISA code) and the hardware matcher (accel.Regex):
//
//	transition: TableBase + (state*256 + symbol)*8 -> next state (0 dead)
//	finality:   FinalBase + state*8               -> 1 if accepting
//
// Input strings are sequences of symbol words (values 0..255) terminated
// by the sentinel word Terminator.
type Layout struct {
	TableBase uint64
	FinalBase uint64
	Start     uint16
	States    int
}

// Terminator ends a symbol string (any value >= 256 works; matchers test
// for >= Terminator).
const Terminator = 256

// TableWords returns the transition table size in 8-byte words.
func (l Layout) TableWords() int { return l.States * numSymbols }

// Serialize writes the DFA's tables into a program's initial memory image
// and returns the layout. Only nonzero entries are emitted (memory is
// zero-filled), which keeps the image proportional to live transitions.
func (d *DFA) Serialize(b *isa.Builder, tableBase, finalBase uint64) (Layout, error) {
	if tableBase%8 != 0 || finalBase%8 != 0 {
		return Layout{}, fmt.Errorf("redfa: table bases must be 8-byte aligned")
	}
	span := uint64(d.NumStates()*numSymbols) * 8
	if tableBase < finalBase+uint64(d.NumStates())*8 && finalBase < tableBase+span {
		return Layout{}, fmt.Errorf("redfa: table and final regions overlap")
	}
	for s := 0; s < d.NumStates(); s++ {
		for sym := 0; sym < numSymbols; sym++ {
			if next := d.Next[s][sym]; next != 0 {
				b.InitWord(tableBase+uint64(s*numSymbols+sym)*8, uint64(next))
			}
		}
		if d.Final[s] {
			b.InitWord(finalBase+uint64(s)*8, 1)
		}
	}
	return Layout{TableBase: tableBase, FinalBase: finalBase, Start: d.Start, States: d.NumStates()}, nil
}

// WriteString stores an input string (symbol words + terminator) at base.
func WriteString(b *isa.Builder, base uint64, input []byte) {
	for i, sym := range input {
		b.InitWord(base+uint64(i)*8, uint64(sym))
	}
	b.InitWord(base+uint64(len(input))*8, Terminator)
}
