package accel

import (
	"fmt"

	"repro/internal/isa"
)

// HashMap is a hash-table probe TCA modeled on the hash-map accelerators
// of the paper's reference [6] (architectural support for server-side PHP:
// hash maps are one of the fine-grained Fig. 2 accelerators). The table
// lives in program memory — open addressing with linear probing over
// 16-byte {key, value} buckets — so the device is stateless: lookups read
// through the speculation-safe overlay and inserts are deferred stores,
// which makes the device safe in the L modes without a journal.
//
// Layout: bucket i occupies Base + i*16; word 0 is the key (0 = empty),
// word 1 the value. Capacity is a power of two.
type HashMap struct {
	// Base is the table's address; Buckets its capacity (power of two).
	Base    uint64
	Buckets int
	// KeyWords selects the keying scheme. Zero: Args[0] IS the key
	// (integer keys, hashed multiplicatively). Positive: Args[0] points
	// at KeyWords 8-byte words of key data that the device reads and
	// folds into the hash — the string-keyed scheme of reference [6]'s
	// PHP hash maps, which is what makes the software routine expensive
	// enough to accelerate. Buckets then store the key pointer.
	KeyWords int
	// HashLatency is the fixed cost of hashing; ProbeLatency the
	// per-bucket compute cost. Defaults 2 and 1. Key-data hashing adds
	// one cycle per 64-byte chunk.
	HashLatency  int
	ProbeLatency int

	Lookups uint64
	Inserts uint64
	Probes  uint64

	pending []isa.AccelStore
}

// HashMap operation kinds (OpAccel immediates).
const (
	HashLookup int64 = iota // Args[0] = key; result = value (0 if absent)
	HashInsert              // Args[0] = key, Args[1] = value; result = 1 on success
)

// hashMult is the multiplicative-hash constant (Fibonacci hashing), also
// used by the software baseline so both probe identical sequences.
const hashMult = 0x9E3779B97F4A7C15

// NewHashMap returns an integer-keyed probe TCA over the table at base.
func NewHashMap(base uint64, buckets int) *HashMap {
	if buckets < 2 || buckets&(buckets-1) != 0 {
		panic(fmt.Sprintf("accel: hashmap buckets %d must be a power of two >= 2", buckets))
	}
	if base%16 != 0 {
		panic(fmt.Sprintf("accel: hashmap base %#x must be 16-byte aligned", base))
	}
	return &HashMap{Base: base, Buckets: buckets, HashLatency: 2, ProbeLatency: 1}
}

// NewStringKeyedHashMap returns a TCA that hashes keyWords words of key
// data per invocation (reference [6]'s scheme).
func NewStringKeyedHashMap(base uint64, buckets, keyWords int) *HashMap {
	h := NewHashMap(base, buckets)
	if keyWords < 1 {
		panic(fmt.Sprintf("accel: key words %d must be >= 1", keyWords))
	}
	h.KeyWords = keyWords
	return h
}

// FoldHash folds key-data words into a bucket index exactly as the device
// does; the software baseline mirrors it instruction for instruction.
func FoldHash(words []uint64, buckets int) int {
	var h uint64
	for _, w := range words {
		h = (h ^ w) * hashMult
	}
	return int(h & uint64(buckets-1))
}

// Name implements isa.AccelDevice.
func (h *HashMap) Name() string { return fmt.Sprintf("hashmap-%d", h.Buckets) }

// UsesProgramMemory implements isa.AccelMemoryUser.
func (h *HashMap) UsesProgramMemory() bool { return true }

// PendingStores implements isa.AccelStorer.
func (h *HashMap) PendingStores() []isa.AccelStore { return h.pending }

// HashBucket returns the home bucket for a key.
func (h *HashMap) HashBucket(key uint64) int {
	return int((key * hashMult) & uint64(h.Buckets-1))
}

func (h *HashMap) bucketAddr(i int) uint64 { return h.Base + uint64(i)*16 }

// Invoke implements isa.AccelDevice: hash (reading key data for
// string-keyed tables), then probe until the key or an empty bucket, one
// 16-byte memory request per probe.
func (h *HashMap) Invoke(call isa.AccelCall, mem isa.WordReader) isa.AccelResult {
	h.pending = h.pending[:0]
	key := call.Args[0]
	res := isa.AccelResult{Latency: h.HashLatency}
	if key == 0 {
		// Key 0 is the empty marker; reject without probing.
		return res
	}
	var idx int
	if h.KeyWords > 0 {
		// Read and fold the key data: one contiguous request per
		// 64-byte chunk, one extra hash cycle per chunk.
		words := make([]uint64, h.KeyWords)
		for w := range words {
			words[w] = mem.Load(key + uint64(w)*8)
		}
		for off := 0; off < h.KeyWords; off += 8 {
			n := h.KeyWords - off
			if n > 8 {
				n = 8
			}
			res.MemOps = append(res.MemOps, isa.AccelMemOp{Addr: key + uint64(off)*8, Size: n * 8})
			res.Latency++
		}
		idx = FoldHash(words, h.Buckets)
	} else {
		idx = h.HashBucket(key)
	}
	for n := 0; n < h.Buckets; n++ {
		addr := h.bucketAddr(idx)
		res.MemOps = append(res.MemOps, isa.AccelMemOp{Addr: addr, Size: 16})
		res.Latency += h.ProbeLatency
		h.Probes++
		stored := mem.Load(addr)
		switch {
		case stored == key:
			if call.Kind == HashLookup {
				h.Lookups++
				res.Value = mem.Load(addr + 8)
				return res
			}
			// Insert over an existing key updates the value.
			h.Inserts++
			h.pending = append(h.pending, isa.AccelStore{Addr: addr + 8, Data: call.Args[1]})
			res.MemOps = append(res.MemOps, isa.AccelMemOp{Addr: addr + 8, Size: 8, Store: true})
			res.Value = 1
			return res
		case stored == 0:
			if call.Kind == HashLookup {
				h.Lookups++
				return res // absent: value 0
			}
			h.Inserts++
			h.pending = append(h.pending,
				isa.AccelStore{Addr: addr, Data: key},
				isa.AccelStore{Addr: addr + 8, Data: call.Args[1]})
			res.MemOps = append(res.MemOps, isa.AccelMemOp{Addr: addr, Size: 16, Store: true})
			res.Value = 1
			return res
		}
		idx = (idx + 1) & (h.Buckets - 1)
	}
	// Table full: fail (the workloads size tables to avoid this).
	res.Value = 0
	return res
}
