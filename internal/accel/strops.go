package accel

import (
	"fmt"

	"repro/internal/isa"
)

// StrCmp is a string-function TCA modeled on the string accelerators of
// the paper's reference [6] and the SSE4.2 STTNI work of reference [10] —
// another fine-grained Fig. 2 point. Strings are sequences of nonzero
// 8-byte words terminated by a zero word (one "wide character" per word
// keeps the ISA's word-granular memory simple while preserving the
// data-dependent-length behaviour that makes string functions interesting
// to accelerate).
//
// The device compares up to 8 words (64 bytes, the paper's maximum request
// width) per memory request pair, so its latency and traffic scale with
// the match length like the real hardware's would. It is stateless and
// speculation-safe.
type StrCmp struct {
	// ChunkWords is how many words one request covers (default 8 = 64B).
	ChunkWords int
	// SetupLatency and ChunkLatency shape the compute time.
	SetupLatency int
	ChunkLatency int

	Invocations uint64
	WordsTotal  uint64
}

// StrCmp operation kind (OpAccel immediate).
const (
	StrCompare int64 = iota // Args[0], Args[1] = string bases; result = cmp result
)

// StrCmp result encoding: 0 equal, 1 first greater, 2 second greater
// (avoids negative values in the unsigned result register).
const (
	StrEqual   = 0
	StrGreater = 1
	StrLess    = 2
)

// NewStrCmp returns a string-compare TCA.
func NewStrCmp() *StrCmp {
	return &StrCmp{ChunkWords: 8, SetupLatency: 1, ChunkLatency: 1}
}

// Name implements isa.AccelDevice.
func (d *StrCmp) Name() string { return "strcmp" }

// UsesProgramMemory implements isa.AccelMemoryUser.
func (d *StrCmp) UsesProgramMemory() bool { return true }

// Invoke implements isa.AccelDevice.
func (d *StrCmp) Invoke(call isa.AccelCall, mem isa.WordReader) isa.AccelResult {
	if call.Kind != StrCompare {
		panic(fmt.Sprintf("accel: strcmp kind %d unknown", call.Kind))
	}
	d.Invocations++
	a, b := call.Args[0], call.Args[1]
	res := isa.AccelResult{Latency: d.SetupLatency}

	for chunk := 0; ; chunk++ {
		base := uint64(chunk * d.ChunkWords * 8)
		res.MemOps = append(res.MemOps,
			isa.AccelMemOp{Addr: a + base, Size: d.ChunkWords * 8},
			isa.AccelMemOp{Addr: b + base, Size: d.ChunkWords * 8},
		)
		res.Latency += d.ChunkLatency
		for w := 0; w < d.ChunkWords; w++ {
			off := base + uint64(w)*8
			wa, wb := mem.Load(a+off), mem.Load(b+off)
			d.WordsTotal++
			switch {
			case wa == wb && wa == 0:
				res.Value = StrEqual
				return res
			case wa == wb:
				continue
			case wa == 0 || (wb != 0 && wa < wb):
				res.Value = StrLess
				return res
			default:
				res.Value = StrGreater
				return res
			}
		}
	}
}
