package accel

import (
	"testing"

	"repro/internal/isa"
)

func newTable(t *testing.T, buckets int) (*HashMap, *isa.Memory) {
	t.Helper()
	return NewHashMap(0x40000, buckets), isa.NewMemory()
}

func invoke(h *HashMap, m *isa.Memory, kind int64, args ...uint64) isa.AccelResult {
	var a [3]uint64
	copy(a[:], args)
	res := h.Invoke(isa.AccelCall{Kind: kind, Args: a}, m)
	isa.ApplyStores(m, h.PendingStores())
	return res
}

func TestHashMapInsertLookup(t *testing.T) {
	h, m := newTable(t, 64)
	if r := invoke(h, m, HashInsert, 42, 1000); r.Value != 1 {
		t.Fatal("insert failed")
	}
	if r := invoke(h, m, HashLookup, 42); r.Value != 1000 {
		t.Fatalf("lookup = %d, want 1000", r.Value)
	}
	if r := invoke(h, m, HashLookup, 43); r.Value != 0 {
		t.Fatalf("absent lookup = %d, want 0", r.Value)
	}
	// Update in place.
	if r := invoke(h, m, HashInsert, 42, 2000); r.Value != 1 {
		t.Fatal("update failed")
	}
	if r := invoke(h, m, HashLookup, 42); r.Value != 2000 {
		t.Fatalf("updated lookup = %d, want 2000", r.Value)
	}
}

func TestHashMapCollisionProbing(t *testing.T) {
	h, m := newTable(t, 8)
	// Find two keys with the same home bucket.
	k1 := uint64(1)
	home := h.HashBucket(k1)
	var k2 uint64
	for k := uint64(2); ; k++ {
		if h.HashBucket(k) == home {
			k2 = k
			break
		}
	}
	invoke(h, m, HashInsert, k1, 11)
	invoke(h, m, HashInsert, k2, 22)
	if r := invoke(h, m, HashLookup, k2); r.Value != 22 {
		t.Fatalf("collided lookup = %d, want 22", r.Value)
	}
	// The collided lookup needs at least two probes; the memory trace
	// must show them.
	r := invoke(h, m, HashLookup, k2)
	if len(r.MemOps) < 2 {
		t.Errorf("collided lookup issued %d mem ops, want >= 2", len(r.MemOps))
	}
	if r.Latency < h.HashLatency+2*h.ProbeLatency {
		t.Errorf("latency %d does not reflect probing", r.Latency)
	}
}

func TestHashMapZeroKeyRejected(t *testing.T) {
	h, m := newTable(t, 8)
	if r := invoke(h, m, HashInsert, 0, 5); r.Value != 0 {
		t.Error("zero key (the empty marker) must be rejected")
	}
	if r := invoke(h, m, HashLookup, 0); r.Value != 0 || len(r.MemOps) != 0 {
		t.Error("zero-key lookup must not probe")
	}
}

func TestHashMapFullTable(t *testing.T) {
	h, m := newTable(t, 4)
	inserted := 0
	for k := uint64(1); k <= 4; k++ {
		if invoke(h, m, HashInsert, k, k).Value == 1 {
			inserted++
		}
	}
	if inserted != 4 {
		t.Fatalf("inserted %d, want 4", inserted)
	}
	if r := invoke(h, m, HashInsert, 99, 1); r.Value != 0 {
		t.Error("insert into a full table must fail")
	}
}

func TestHashMapValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewHashMap(0x40000, 3) },
		func() { NewHashMap(0x40000, 0) },
		func() { NewHashMap(0x40001, 8) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestHashMapInterfaces(t *testing.T) {
	var _ isa.AccelDevice = (*HashMap)(nil)
	var _ isa.AccelStorer = (*HashMap)(nil)
	var _ isa.AccelMemoryUser = (*HashMap)(nil)
}

// --- StrCmp ---

// storeString writes words terminated by a zero word.
func storeString(m *isa.Memory, base uint64, words []uint64) {
	for i, w := range words {
		m.Store(base+uint64(i)*8, w)
	}
	m.Store(base+uint64(len(words))*8, 0)
}

func TestStrCmpBasics(t *testing.T) {
	d := NewStrCmp()
	m := isa.NewMemory()
	storeString(m, 0x1000, []uint64{5, 6, 7})
	storeString(m, 0x2000, []uint64{5, 6, 7})
	storeString(m, 0x3000, []uint64{5, 6, 8})
	storeString(m, 0x4000, []uint64{5, 6})

	cases := []struct {
		a, b uint64
		want uint64
	}{
		{0x1000, 0x2000, StrEqual},
		{0x1000, 0x3000, StrLess},    // 7 < 8
		{0x3000, 0x1000, StrGreater}, // 8 > 7
		{0x1000, 0x4000, StrGreater}, // longer wins
		{0x4000, 0x1000, StrLess},
	}
	for _, c := range cases {
		r := d.Invoke(isa.AccelCall{Kind: StrCompare, Args: [3]uint64{c.a, c.b}}, m)
		if r.Value != c.want {
			t.Errorf("cmp(%#x, %#x) = %d, want %d", c.a, c.b, r.Value, c.want)
		}
	}
}

func TestStrCmpTrafficScalesWithLength(t *testing.T) {
	d := NewStrCmp()
	m := isa.NewMemory()
	long := make([]uint64, 40) // 5 chunks of 8 words
	for i := range long {
		long[i] = uint64(i + 1)
	}
	storeString(m, 0x1000, long)
	storeString(m, 0x3000, long)
	r := d.Invoke(isa.AccelCall{Kind: StrCompare, Args: [3]uint64{0x1000, 0x3000}}, m)
	if r.Value != StrEqual {
		t.Fatalf("long equal strings compared %d", r.Value)
	}
	// 41 words -> 6 chunks -> 12 requests of 64B.
	if len(r.MemOps) != 12 {
		t.Errorf("mem ops = %d, want 12", len(r.MemOps))
	}
	if r.Latency != d.SetupLatency+6*d.ChunkLatency {
		t.Errorf("latency = %d, want %d", r.Latency, d.SetupLatency+6*d.ChunkLatency)
	}
	// Early mismatch stops traffic immediately.
	m.Store(0x3000, 999)
	r = d.Invoke(isa.AccelCall{Kind: StrCompare, Args: [3]uint64{0x1000, 0x3000}}, m)
	if len(r.MemOps) != 2 {
		t.Errorf("early-mismatch mem ops = %d, want 2", len(r.MemOps))
	}
}

func TestStrCmpInterfaces(t *testing.T) {
	var _ isa.AccelDevice = (*StrCmp)(nil)
	var _ isa.AccelMemoryUser = (*StrCmp)(nil)
}
